# Local targets mirror .github/workflows/ci.yml step for step, so local
# runs and CI can't drift: CI simply calls these targets.

GO ?= go

# Serving benchmarks guarded against throughput regressions (inst/s).
# The iteration count trades CI time for measurement-window length: 3000
# iterations of the fastest benchmarks finish in ~10ms and mostly measure
# scheduler noise; 20000 keeps every window past ~50ms.
SERVING_BENCH ?= Serve|ServiceThroughput|Replay
SERVING_ITERS ?= 20000x
BENCH_TOLERANCE ?= 0.20

.PHONY: all build vet test race bench fuzz-smoke chaos smoke torture cover bench-serving bench-guard profile-serving ci

all: ci

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# Smoke-run every benchmark once; catches bit-rot without burning CI time.
bench:
	$(GO) test -run='^$$' -bench=. -benchtime=1x ./...

# Short fuzzing passes: the three-valued expression evaluator (random
# trees + partial environments vs an independent reference evaluator),
# the dfbin wire codec (JSON/binary differential round trip, plus
# truncated/corrupt frames asserting clean errors, never panics), and
# the registry WAL record codec and the eval-capture record codec (decode
# never panics, every failure is classified torn-vs-corrupt, every
# success re-encodes identically).
fuzz-smoke:
	$(GO) test -run='^$$' -fuzz='^FuzzEval3$$' -fuzztime=10s ./internal/expr
	$(GO) test -run='^$$' -fuzz='^FuzzBinaryJSONDifferential$$' -fuzztime=5s ./internal/api
	$(GO) test -run='^$$' -fuzz='^FuzzBinaryFrameDecode$$' -fuzztime=5s ./internal/api
	$(GO) test -run='^$$' -fuzz='^FuzzWALRecordDecode$$' -fuzztime=5s ./internal/api
	$(GO) test -run='^$$' -fuzz='^FuzzCaptureRecordDecode$$' -fuzztime=5s ./internal/api

# Deterministic chaos suite: kill/stall/degrade cluster replicas mid-run
# and assert the oracle invariant, work conservation, and launch-exact
# billing under -race. The seed matrix is fixed inside the tests; -count=1
# defeats the test cache so every invocation really re-runs the faults.
chaos:
	$(GO) test -race -count=1 -run 'TestChaos' ./internal/runtime

# End-to-end binary smoke: build the real dfsd and dfserve binaries,
# launch the daemon (HTTP + dfbin listeners), drive it with `dfserve
# -remote` over both wires, SIGTERM it under in-flight binary load, and
# assert the graceful drain flushed everything. TestSmokeRestart then
# cycles the daemon over one -datadir — register, load, SIGTERM,
# relaunch, re-drive without re-registering — plus the SIGKILL and
# torn-WAL-tail crash variants. TestSmokePeerFleet boots a 3-process
# -peers fleet, drives load through one node, rolling-restarts every
# node in turn under SLO assertions, and requires every drain clean.
# TestSmokeCaptureReplay closes the record/replay loop: dfsd -capture
# records 5k mixed-tenant instances over both wires, a SIGTERM seals the
# capture, a fresh daemon comes up, and dfreplay re-issues the capture
# live on both wires demanding zero digest divergence — plus two virtual
# replays that must print bit-identical combined digests.
smoke:
	$(GO) test -count=1 -run 'TestSmokeBinaries|TestSmokeRestart|TestSmokePeerFleet|TestSmokeCaptureReplay' ./cmd/dfsd

# Crash-consistency torture: real dfsd processes with DFSD_FAILPOINTS
# crash failpoints armed at every WAL site (append write/sync, the whole
# snapshot sequence, the log reset, plus torn appends cut at random byte
# offsets), killed mid-registration and restarted, asserting acked ⇒
# recovered bit-identical and in-flight ⇒ exact-content-or-absent. The
# default is the one-cycle-per-site subset CI runs (<60s);
# TORTURE_FULL=1 runs the full randomized sweep (≥50 cycles).
torture:
	$(GO) test -count=1 -run 'TestTortureCrashConsistency' ./cmd/dfsd

# Coverage across every package; cover.out is the CI artifact, the
# function summary line is the human-readable take-away. cmd/dfsd is
# excluded: its only test is the binary e2e smoke (`make smoke` just ran
# it), which execs separate processes and contributes zero coverage.
cover:
	$(GO) test -coverprofile=cover.out -covermode=atomic $$($(GO) list ./... | grep -v '^repro/cmd/dfsd$$')
	$(GO) tool cover -func=cover.out | tail -1

# Run the serving benchmarks at a fixed iteration count and record the
# results as BENCH_serving.json (throughput, hit rates, batch shape).
bench-serving:
	$(GO) test -run='^$$' -bench='$(SERVING_BENCH)' -benchtime=$(SERVING_ITERS) ./internal/runtime ./internal/server . > bench-serving.out
	$(GO) run ./cmd/benchguard -in bench-serving.out -out BENCH_serving.json

# Fail when any serving benchmark's inst/s regressed more than
# BENCH_TOLERANCE vs the committed baseline. Refresh the baseline by
# copying BENCH_serving.json over BENCH_baseline.json in the same change
# that justifies the shift.
#
# The default guards machine-independent ratios (each benchmark vs the
# same run's serving ceiling), so `make ci` passes on any hardware. On
# the machine that recorded the baseline, `make bench-guard
# BENCH_NORMALIZE=` switches to absolute throughput, which also catches
# uniform slowdowns the ratio mode cannot see.
#
# A flagged measurement is re-taken once before failing: a real
# regression reproduces, a scheduler glitch on a busy runner does not.
BENCH_NORMALIZE ?= BenchmarkServeQuickstartPSE100
BENCH_GUARD_CMD = $(GO) run ./cmd/benchguard -current BENCH_serving.json -baseline BENCH_baseline.json -tolerance $(BENCH_TOLERANCE) $(if $(BENCH_NORMALIZE),-normalize $(BENCH_NORMALIZE))
bench-guard: bench-serving
	$(BENCH_GUARD_CMD) || { \
		echo "bench-guard: regression reported; re-measuring once to rule out runner noise"; \
		$(MAKE) bench-serving && $(BENCH_GUARD_CMD); }

# Capture CPU/heap pprof profiles of the serving hot path (dfserve closed
# loop). CI uploads prof/ with the bench output as workflow artifacts, so
# every perf PR leaves a profile trail for regression archaeology:
#   go tool pprof prof/dfserve-cpu.pprof
PROFILE_N ?= 200000
profile-serving:
	mkdir -p prof
	$(GO) run ./cmd/dfserve -n $(PROFILE_N) -cpuprofile prof/dfserve-cpu.pprof -memprofile prof/dfserve-mem.pprof
	$(GO) run ./cmd/dfserve -n $(PROFILE_N) -schema pattern -cpuprofile prof/dfserve-pattern-cpu.pprof -memprofile prof/dfserve-pattern-mem.pprof

ci: build vet test race bench fuzz-smoke chaos smoke torture cover bench-guard profile-serving
