# Local targets mirror .github/workflows/ci.yml step for step, so local
# runs and CI can't drift: CI simply calls these targets.

GO ?= go

.PHONY: all build vet test race bench ci

all: ci

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# Smoke-run every benchmark once; catches bit-rot without burning CI time.
bench:
	$(GO) test -run='^$$' -bench=. -benchtime=1x ./...

ci: build vet test race bench
