// Insurance: claims triage — another of the paper's motivating customer
// care domains (§1). Each incoming claim is scored for fraud and either
// fast-tracked, routed to an adjuster, or escalated.
//
// Besides running the flow, the example exercises the paper's *planning*
// machinery end to end: it measures the database's Db curve, builds a
// guideline map for the flow, and applies the analytical model's two
// tuning prescriptions — the maximal affordable Work for a target
// throughput, and the strategy minimizing predicted response time —
// exactly the Figure 9(b) methodology.
//
// Run with: go run ./examples/insurance
package main

import (
	"fmt"

	decisionflow "repro"
)

func buildFlow() *decisionflow.Schema {
	b := decisionflow.NewBuilder("claims-triage")
	b.Source("claim_amount")
	b.Source("policy_id")

	// Backend dips.
	b.Foreign("policy", decisionflow.TrueCond, []string{"policy_id"}, 2,
		decisionflow.ConstCompute(decisionflow.List(decisionflow.Str("active"), decisionflow.Int(3))))
	b.Foreign("claim_history", decisionflow.TrueCond, []string{"policy_id"}, 3,
		decisionflow.ConstCompute(decisionflow.Int(1))) // prior claims
	// The expensive fraud-model dip runs only for big claims.
	b.Foreign("fraud_signals", decisionflow.Cond("claim_amount > 1000"),
		[]string{"policy_id", "claim_amount"}, 5,
		decisionflow.ConstCompute(decisionflow.Float(0.35)))

	// Fraud score: rules over the dips; ⟂ signals contribute nothing.
	fraud := &decisionflow.RuleSet{
		Policy:  decisionflow.WeightedSum,
		Default: decisionflow.Float(0),
		Rules: []decisionflow.Rule{
			{Name: "model", When: decisionflow.Cond("notnull(fraud_signals)"),
				Contribute: decisionflow.MustParseExpr("fraud_signals * 100")},
			{Name: "repeat-claims", When: decisionflow.Cond("claim_history > 2"),
				Contribute: decisionflow.MustParseExpr("claim_history * 5")},
			{Name: "lapsed-policy", When: decisionflow.Cond(`not contains(policy, "active")`),
				Contribute: decisionflow.MustParseExpr("50")},
		},
	}
	b.Synthesis("fraud_score", decisionflow.TrueCond, fraud.InputAttrs(), fraud.Task())

	// Decisions: fast track small clean claims; adjust the rest; escalate
	// suspicious ones. Exactly one target fires per claim, but all three
	// are targets — execution ends when each is stable (possibly ⟂).
	b.Foreign("fast_track", decisionflow.Cond("claim_amount <= 1000 and fraud_score < 20"),
		[]string{"claim_amount"}, 1,
		decisionflow.ConstCompute(decisionflow.Str("auto-approved")))
	b.Foreign("adjuster", decisionflow.Cond("claim_amount > 1000 and fraud_score < 40"),
		[]string{"claim_amount", "fraud_score"}, 2,
		decisionflow.ConstCompute(decisionflow.Str("assigned: adjuster pool B")))
	b.Foreign("escalation", decisionflow.Cond("fraud_score >= 40"),
		[]string{"fraud_score"}, 2,
		decisionflow.ConstCompute(decisionflow.Str("SIU review")))
	b.Target("fast_track")
	b.Target("adjuster")
	b.Target("escalation")
	return b.MustBuild()
}

func main() {
	flow := buildFlow()

	claims := []decisionflow.Sources{
		{"claim_amount": decisionflow.Int(400), "policy_id": decisionflow.Int(11)},
		{"claim_amount": decisionflow.Int(8200), "policy_id": decisionflow.Int(12)},
	}
	strategy := decisionflow.MustParseStrategy("PSE100")
	for _, claim := range claims {
		res := decisionflow.Run(flow, claim, strategy)
		if res.Err != nil {
			panic(res.Err)
		}
		amount := claim["claim_amount"]
		for _, name := range []string{"fast_track", "adjuster", "escalation"} {
			if v := res.Snapshot.Val(flow.MustLookup(name).ID()); !v.IsNull() {
				fmt.Printf("claim %v -> %s: %v (time=%v units, work=%d)\n",
					amount, name, v, res.Elapsed, res.Work)
			}
		}
	}

	// --- Capacity planning (the Figure 9(b) methodology). ---
	fmt.Println("\ncapacity planning for the claims pipeline:")

	// 1. Calibrate the database's Db curve.
	curve := decisionflow.MeasureDbCurve(decisionflow.DefaultDBParams(),
		[]int{1, 2, 4, 8, 16, 32, 64}, 1500, 7)
	mdl := decisionflow.NewModel(curve)

	// 2. Measure strategy operating points on the flow itself (big-claim
	//    path, the expensive case).
	big := claims[1]
	var points []decisionflow.OperatingPoint
	for _, code := range []string{"PCE0", "PCE100", "PSE100"} {
		res := decisionflow.Run(flow, big, decisionflow.MustParseStrategy(code))
		points = append(points, decisionflow.OperatingPoint{
			Strategy: code, Work: float64(res.Work), TimeInUnits: res.Elapsed,
		})
		fmt.Printf("  %-7s Work=%2.0f TimeInUnits=%2.0f\n", code, float64(res.Work), res.Elapsed)
	}

	// 3. Apply the model's prescriptions at several claim rates.
	for _, th := range []float64{50, 200, 400} {
		if w, ok := mdl.MaxWork(th, points); ok {
			best, _ := mdl.Best(th, points)
			fmt.Printf("  at %3.0f claims/s: affordable Work <= %.0f; best strategy %s "+
				"(predicted %.1f ms, db Gmpl %.1f)\n",
				th, w, best.Strategy, best.Prediction.TimeInSeconds, best.Prediction.Gmpl)
		} else {
			fmt.Printf("  at %3.0f claims/s: no strategy sustains the load\n", th)
		}
	}
}
