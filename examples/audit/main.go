// Audit: observability for decision flows — execution traces (the paper's
// §3 "series of snapshots") and cross-execution mining of the snapshot
// relation (§2), on a loan-offer decision flow.
//
// The example prints (1) a full event timeline of one speculative
// execution, showing eager condition decisions, a speculative launch and a
// discarded result; and (2) a mining report over a population of
// applicants, flagging refinement opportunities (dead attributes,
// conditions that never differentiate).
//
// Run with: go run ./examples/audit
package main

import (
	"fmt"

	decisionflow "repro"
	"repro/internal/engine"
	"repro/internal/sim"
	"repro/internal/simdb"
)

func buildFlow() *decisionflow.Schema {
	b := decisionflow.NewBuilder("loan-offer")
	b.Source("income")
	b.Source("requested")

	// Credit bureau dip — the expensive external call.
	b.Foreign("credit_score", decisionflow.Cond("income > 0"), []string{"income"}, 4,
		func(in decisionflow.Inputs) decisionflow.Value {
			inc, _ := in.Get("income").AsInt()
			return decisionflow.Int(500 + inc/100)
		})
	// Collateral appraisal: only for big requests; can run speculatively
	// while the credit score is still pending.
	b.Foreign("appraisal", decisionflow.Cond("credit_score > 550 and requested > 10000"),
		[]string{"requested"}, 3,
		decisionflow.ConstCompute(decisionflow.Int(250000)))
	// A legacy attribute whose condition never fires for current traffic —
	// the mining report should flag it as dead.
	b.Foreign("paper_archive", decisionflow.Cond("requested > 10000000"),
		nil, 2, decisionflow.ConstCompute(decisionflow.Str("microfilm"))).
		SynthesisExpr("offer", decisionflow.Cond("credit_score > 550"),
			decisionflow.MustParseExpr("min(requested, coalesce(appraisal, 20000) / 2)"))
	b.Foreign("letter", decisionflow.Cond("notnull(offer)"), []string{"offer"}, 1,
		func(in decisionflow.Inputs) decisionflow.Value {
			v := in.Get("offer")
			return decisionflow.Str("approved up to " + v.String())
		})
	b.Target("letter")
	return b.MustBuild()
}

func main() {
	flow := buildFlow()

	// --- 1. Trace one execution. ---
	rec := decisionflow.NewTraceRecorder(flow)
	sm := sim.New()
	eng := &decisionflow.Engine{
		Sim:      sm,
		DB:       &simdb.Unbounded{S: sm},
		Strategy: decisionflow.MustParseStrategy("PSE100"),
		Hooks:    rec.Hooks(),
	}
	res := eng.Start(flow, decisionflow.Sources{
		"income":    decisionflow.Int(3000),
		"requested": decisionflow.Int(5000), // small: appraisal gets disabled mid-flight
	}, nil)
	sm.Run()
	if res.Err != nil {
		panic(res.Err)
	}
	tr := rec.Trace()
	if err := tr.Check(); err != nil {
		panic(err)
	}
	fmt.Println("execution timeline (PSE100):")
	fmt.Print(tr.Render())
	st := tr.Stats()
	fmt.Printf("summary: %d transitions, %d launches (%d speculative, %d discarded), finished at t=%v\n\n",
		st.Transitions, st.Launches, st.Speculative, st.Discarded, st.Duration)

	// --- 2. Mine a population of executions. ---
	collector := decisionflow.NewMiningCollector(flow, 2)
	applicants := []decisionflow.Sources{
		{"income": decisionflow.Int(3000), "requested": decisionflow.Int(5000)},
		{"income": decisionflow.Int(9000), "requested": decisionflow.Int(45000)},
		{"income": decisionflow.Int(500), "requested": decisionflow.Int(2000)},
		{"income": decisionflow.Int(0), "requested": decisionflow.Int(1000)},
		{"income": decisionflow.Int(12000), "requested": decisionflow.Int(90000)},
		{"income": decisionflow.Int(7000), "requested": decisionflow.Int(15000)},
	}
	for _, a := range applicants {
		r := decisionflow.Run(flow, a, decisionflow.MustParseStrategy("PSE100"))
		if r.Err != nil {
			panic(r.Err)
		}
		if err := collector.Add(r.Snapshot); err != nil {
			panic(err)
		}
	}
	fmt.Println(collector.Report())

	// --- 3. Failure injection: the bureau is down. ---
	sm2 := sim.New()
	downEng := &engine.Engine{
		Sim: sm2, DB: &simdb.Unbounded{S: sm2},
		Strategy:    decisionflow.MustParseStrategy("PCE100"),
		FailureProb: 1.0, FailureSeed: 1,
	}
	down := downEng.Start(flow, applicants[1], nil)
	sm2.Run()
	fmt.Printf("with the credit bureau down: letter=%v (failures=%d) — the flow still terminates\n",
		down.Snapshot.Val(flow.MustLookup("letter").ID()), down.Failures)
}
