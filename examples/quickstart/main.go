// Quickstart: a five-attribute decision flow that decides a shipping
// upgrade for an e-commerce order, executed under two strategies to show
// the work/time trade-off.
//
// Run with: go run ./examples/quickstart
package main

import (
	"fmt"

	decisionflow "repro"
)

func main() {
	// The flow: two database dips (customer tier, warehouse load) feed a
	// synthesized score; the upgrade decision is computed only when the
	// score clears a threshold.
	flow := decisionflow.NewBuilder("shipping-upgrade").
		Source("order_total").
		Source("customer_id").
		// Foreign task: look up the customer's loyalty tier (cost 2 units).
		Foreign("tier", decisionflow.TrueCond, []string{"customer_id"}, 2,
			func(in decisionflow.Inputs) decisionflow.Value {
				if id, ok := in.Get("customer_id").AsInt(); ok && id%2 == 1 {
					return decisionflow.Str("gold")
				}
				return decisionflow.Str("standard")
			}).
		// Foreign task: check warehouse congestion (cost 3 units) — only
		// worth asking for orders above 50.
		Foreign("warehouse_load", decisionflow.Cond("order_total > 50"), nil, 3,
			decisionflow.ConstCompute(decisionflow.Int(40))).
		// Synthesis: combine both factors into a score. Runs even if
		// warehouse_load is ⟂ (the coalesce supplies a pessimistic default).
		SynthesisExpr("score", decisionflow.TrueCond,
			decisionflow.MustParseExpr(`order_total / 10 + coalesce(warehouse_load, 100) / -2`)).
		// The target decision: only computed when the score is promising.
		Foreign("upgrade", decisionflow.Cond(`score > -10 and tier == "gold"`), []string{"tier", "score"}, 1,
			decisionflow.ConstCompute(decisionflow.Str("free 2-day shipping"))).
		Target("upgrade").
		MustBuild()

	order := decisionflow.Sources{
		"order_total": decisionflow.Int(120),
		"customer_id": decisionflow.Int(7),
	}

	for _, code := range []string{"PCE0", "PSE100"} {
		res := decisionflow.Run(flow, order, decisionflow.MustParseStrategy(code))
		if res.Err != nil {
			panic(res.Err)
		}
		upgrade := res.Snapshot.Val(flow.MustLookup("upgrade").ID())
		fmt.Printf("strategy %-7s -> decision=%v  time=%v units  work=%d units  wasted=%d\n",
			code, upgrade, res.Elapsed, res.Work, res.WastedWork)
	}

	// The declarative oracle gives the same answer regardless of strategy.
	oracle := decisionflow.Complete(flow, order)
	fmt.Printf("oracle decision: %v\n", oracle.Val(flow.MustLookup("upgrade").ID()))
}
