// Promo: the paper's running example (Figure 1) — a decision flow that
// selects and assembles promo images for a web storefront page.
//
// The flow mirrors the paper's modules: a boys'-coat promo module guarded
// by shopping-cart contents, a decision module that estimates expendable
// income and decides whether to give promos at all, and a presentation
// module that assembles image and text. Forward propagation (income = 0
// disables everything downstream) and backward propagation (the hit list
// becomes unneeded) are visible in the printed run reports.
//
// Run with: go run ./examples/promo
package main

import (
	"fmt"

	decisionflow "repro"
)

// buildFlow assembles the Figure 1 decision flow.
func buildFlow() *decisionflow.Schema {
	b := decisionflow.NewBuilder("storefront-promo")
	b.Source("customer_profile") // list: [visits, purchases_boys, income_estimate]
	b.Source("shopping_cart")    // list of category strings
	b.Source("db_load")          // current inventory-DB load (%)

	// --- Boys' coat promo module (Figure 1's detailed module). ---
	// Module condition: at least one boys item in the cart, or a child item
	// and a prior boys purchase.
	boysModule := b.Module(decisionflow.Cond(
		`contains(shopping_cart, "boys") or (contains(shopping_cart, "child") and contains(customer_profile, "bought_boys"))`))
	// Database dip: climate at the customer's home (cost 2).
	boysModule.Foreign("climate", decisionflow.TrueCond, []string{"customer_profile"}, 2,
		decisionflow.ConstCompute(decisionflow.Str("cold")))
	// Hit list of appropriate coats with price/profit/match score (cost 3).
	boysModule.Foreign("coat_hits", decisionflow.Cond(`notnull(climate)`),
		[]string{"climate"}, 3,
		decisionflow.ConstCompute(decisionflow.List(
			decisionflow.List(decisionflow.Str("parka"), decisionflow.Int(89)),
			decisionflow.List(decisionflow.Str("rain shell"), decisionflow.Int(74)),
		)))
	// Inventory check, guarded the way the paper annotates it: at least one
	// coat scored above 80, or the inventory database is lightly loaded.
	boysModule.Foreign("coat_inventory",
		decisionflow.Cond(`len(coat_hits) > 0 and (contains(coat_hits, ["parka", 89]) or db_load < 95)`),
		[]string{"coat_hits"}, 2,
		decisionflow.ConstCompute(decisionflow.List(decisionflow.Str("parka#sz8")))).
		Done()

	// --- Decision module. ---
	// Expendable income estimated by business rules over the profile.
	income := &decisionflow.RuleSet{
		Policy:  decisionflow.WeightedSum,
		Default: decisionflow.Float(0),
		Rules: []decisionflow.Rule{
			{Name: "base", Contribute: decisionflow.MustParseExpr("len(customer_profile) * 10")},
			{Name: "frequent", When: decisionflow.Cond(`contains(customer_profile, "frequent")`),
				Contribute: decisionflow.MustParseExpr("25")},
		},
	}
	b.Synthesis("expendable_income", decisionflow.TrueCond, income.InputAttrs(), income.Task())

	// Promo hit list: collect candidates from every promo module.
	b.SynthesisExpr("promo_hit_list", decisionflow.TrueCond,
		decisionflow.MustParseExpr(`coalesce(coat_inventory, [])`))

	// The give_promo(s)? decision (enabled only with positive income).
	b.SynthesisExpr("give_promo", decisionflow.Cond("expendable_income > 0"),
		decisionflow.MustParseExpr(`len(promo_hit_list) > 0`))

	// --- Presentation module, guarded by give_promo == true. ---
	pres := b.Module(decisionflow.Cond("give_promo == true"))
	pres.Foreign("image_candidates", decisionflow.TrueCond, []string{"promo_hit_list"}, 2,
		decisionflow.ConstCompute(decisionflow.List(decisionflow.Str("parka.jpg"))))
	pres.Foreign("image_selection", decisionflow.Cond("len(image_candidates) > 0"),
		[]string{"image_candidates"}, 1,
		decisionflow.ConstCompute(decisionflow.Str("parka.jpg")))
	pres.Foreign("text_selection", decisionflow.TrueCond, []string{"promo_hit_list"}, 1,
		decisionflow.ConstCompute(decisionflow.Str("Warm coats for winter!"))).
		Done()

	// Target: image and text assembly for the next web page.
	b.Synthesis("assembly", decisionflow.Cond("give_promo == true"),
		[]string{"image_selection", "text_selection"},
		func(in decisionflow.Inputs) decisionflow.Value {
			img, _ := in.Get("image_selection").AsString()
			txt, _ := in.Get("text_selection").AsString()
			return decisionflow.Str("<promo img=" + img + " text=\"" + txt + "\">")
		})
	b.Target("assembly")
	return b.MustBuild()
}

func main() {
	flow := buildFlow()

	customers := []struct {
		name    string
		sources decisionflow.Sources
	}{
		{"boys shopper, money to spend", decisionflow.Sources{
			"customer_profile": decisionflow.List(decisionflow.Str("frequent"), decisionflow.Str("bought_boys")),
			"shopping_cart":    decisionflow.List(decisionflow.Str("boys"), decisionflow.Str("socks")),
			"db_load":          decisionflow.Int(40),
		}},
		{"child shopper with history", decisionflow.Sources{
			"customer_profile": decisionflow.List(decisionflow.Str("bought_boys")),
			"shopping_cart":    decisionflow.List(decisionflow.Str("child")),
			"db_load":          decisionflow.Int(90),
		}},
		{"no relevant cart items", decisionflow.Sources{
			"customer_profile": decisionflow.List(decisionflow.Str("frequent")),
			"shopping_cart":    decisionflow.List(decisionflow.Str("garden")),
			"db_load":          decisionflow.Int(40),
		}},
		{"broke customer (income 0)", decisionflow.Sources{
			"customer_profile": decisionflow.List(),
			"shopping_cart":    decisionflow.List(decisionflow.Str("boys")),
			"db_load":          decisionflow.Int(40),
		}},
	}

	strategy := decisionflow.MustParseStrategy("PSE100")
	for _, c := range customers {
		res := decisionflow.Run(flow, c.sources, strategy)
		if res.Err != nil {
			panic(res.Err)
		}
		page := res.Snapshot.Val(flow.MustLookup("assembly").ID())
		fmt.Printf("%-32s -> ", c.name)
		if page.IsNull() {
			fmt.Printf("no promo")
		} else {
			fmt.Printf("%v", page)
		}
		fmt.Printf("  (time=%v units, work=%d, wasted=%d)\n", res.Elapsed, res.Work, res.WastedWork)
	}

	// Show the snapshot relation of the last run — the audit record the
	// paper suggests mining for policy refinement.
	res := decisionflow.Run(flow, customers[3].sources, strategy)
	fmt.Println("\nsnapshot relation for the income-0 customer:")
	for _, rec := range res.Snapshot.Relation() {
		fmt.Printf("  %-20s %-14s %s\n", rec.Attr, rec.State, rec.Value)
	}
}
