// Callcenter: near-realtime routing of an incoming customer call — one of
// the customer-care applications the paper motivates (§1). The flow looks
// up the caller across several backend systems in parallel, scores the
// interaction with business rules, and routes the call to a queue.
//
// The example compares all four strategy families on the same call and
// then uses the open-workload simulator to size the system: how does
// response time degrade as call volume grows?
//
// Run with: go run ./examples/callcenter
package main

import (
	"fmt"

	decisionflow "repro"
)

func buildFlow() *decisionflow.Schema {
	b := decisionflow.NewBuilder("call-routing")
	b.Source("caller_id")
	b.Source("dialed_line") // "sales" | "support"

	// Three independent backend dips that can run in parallel.
	b.Foreign("crm_record", decisionflow.TrueCond, []string{"caller_id"}, 3,
		func(in decisionflow.Inputs) decisionflow.Value {
			if id, ok := in.Get("caller_id").AsInt(); ok && id != 0 {
				return decisionflow.List(decisionflow.Str("known"), decisionflow.Int(id%5))
			}
			return decisionflow.Null // unknown caller
		})
	b.Foreign("open_tickets", decisionflow.Cond(`dialed_line == "support"`),
		[]string{"caller_id"}, 2,
		decisionflow.ConstCompute(decisionflow.Int(2)))
	b.Foreign("billing_status", decisionflow.Cond(`notnull(caller_id)`),
		[]string{"caller_id"}, 4,
		decisionflow.ConstCompute(decisionflow.Str("current")))

	// Priority score from business rules; every rule is an independent
	// business factor with a weight.
	priority := &decisionflow.RuleSet{
		Policy:  decisionflow.WeightedSum,
		Default: decisionflow.Float(10),
		Rules: []decisionflow.Rule{
			{Name: "known-customer", When: decisionflow.Cond(`contains(crm_record, "known")`),
				Contribute: decisionflow.MustParseExpr("30")},
			{Name: "has-open-tickets", When: decisionflow.Cond("open_tickets > 0"),
				Contribute: decisionflow.MustParseExpr("open_tickets * 10"), Weight: 1.5},
			{Name: "billing-delinquent", When: decisionflow.Cond(`billing_status == "late"`),
				Contribute: decisionflow.MustParseExpr("-20")},
		},
	}
	b.Synthesis("priority", decisionflow.TrueCond, priority.InputAttrs(), priority.Task())

	// VIP fast path: checked only for high-priority calls (speculation can
	// start it while the priority is still being decided).
	b.Foreign("vip_agent_free", decisionflow.Cond("priority >= 40"), nil, 2,
		decisionflow.ConstCompute(decisionflow.Bool(true)))

	// Routing decision.
	route := &decisionflow.RuleSet{
		Policy:  decisionflow.FirstWins,
		Default: decisionflow.Str("general-queue"),
		Rules: []decisionflow.Rule{
			{Name: "vip", When: decisionflow.Cond("vip_agent_free == true"),
				Contribute: decisionflow.MustParseExpr(`"vip-desk"`)},
			{Name: "support", When: decisionflow.Cond(`dialed_line == "support" and priority >= 20`),
				Contribute: decisionflow.MustParseExpr(`"senior-support"`)},
			{Name: "sales", When: decisionflow.Cond(`dialed_line == "sales"`),
				Contribute: decisionflow.MustParseExpr(`"sales-floor"`)},
		},
	}
	b.Synthesis("route", decisionflow.TrueCond, route.InputAttrs(), route.Task())

	// Target: the routing ticket handed to the PBX (a final cheap dip).
	b.Foreign("ticket", decisionflow.Cond("notnull(route)"), []string{"route", "priority"}, 1,
		func(in decisionflow.Inputs) decisionflow.Value {
			q, _ := in.Get("route").AsString()
			p, _ := in.Get("priority").AsFloat()
			return decisionflow.Str(fmt.Sprintf("route=%s priority=%.0f", q, p))
		})
	b.Target("ticket")
	return b.MustBuild()
}

func main() {
	flow := buildFlow()
	call := decisionflow.Sources{
		"caller_id":   decisionflow.Int(8821),
		"dialed_line": decisionflow.Str("support"),
	}

	fmt.Println("one call, four strategies:")
	for _, code := range []string{"NCC0", "PCE0", "PCE100", "PSE100"} {
		res := decisionflow.Run(flow, call, decisionflow.MustParseStrategy(code))
		if res.Err != nil {
			panic(res.Err)
		}
		fmt.Printf("  %-7s ticket=%v  time=%v units  work=%d\n",
			code, res.Snapshot.Val(flow.MustLookup("ticket").ID()), res.Elapsed, res.Work)
	}

	// Capacity study: simulate call volumes against the Table 1 database.
	fmt.Println("\ncall volume vs mean routing latency (PSE100, simulated backend):")
	for _, rate := range []float64{5, 20, 50, 100} {
		stats, err := decisionflow.RunOpenWorkload(decisionflow.OpenWorkload{
			Schema:      flow,
			Sources:     call,
			Strategy:    decisionflow.MustParseStrategy("PSE100"),
			DB:          decisionflow.DefaultDBParams(),
			ArrivalRate: rate,
			Instances:   600,
			Seed:        42,
		})
		if err != nil {
			panic(err)
		}
		fmt.Printf("  %5.0f calls/s -> %7.2f ms mean latency (db Gmpl %.1f)\n",
			rate, stats.AvgTimeInSeconds, stats.AvgGmpl)
	}
}
