// Command benchguard turns `go test -bench` output into a committed JSON
// benchmark record and enforces a throughput regression budget against a
// committed baseline.
//
// Emit mode parses benchmark output and writes the record:
//
//	go test -run '^$' -bench Serve -benchtime 3000x ./internal/runtime > bench.out
//	benchguard -in bench.out -out BENCH_serving.json
//
// Check mode compares a current record against a baseline and exits
// nonzero when any benchmark's inst/s throughput regressed more than the
// tolerance (default 0.20 = 20%):
//
//	benchguard -current BENCH_serving.json -baseline BENCH_baseline.json
//
// Beyond throughput, check mode guards the lower-is-better metrics where
// the baseline reports them: p99-ms (tail latency) fails on a regression
// past the same tolerance, and allocs/op fails on any increase beyond the
// tolerance plus half an allocation (absorbing amortization rounding) —
// so an accidental allocation on a hot path that stayed within the
// throughput budget still fails CI. These are compared absolutely, never
// normalized: allocation counts are machine-independent, and the guarded
// p99s are dominated by injected backend latency rather than CPU speed.
//
// Improvements and new benchmarks never fail the check; a benchmark
// missing from the current record does (it means coverage silently
// disappeared). A missing baseline file passes with a note, so the guard
// bootstraps cleanly on fresh branches.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"regexp"
	"strconv"
	"strings"
)

// Record is the serialized benchmark file.
type Record struct {
	// Benchmarks maps benchmark name (GOMAXPROCS suffix stripped) to its
	// measurements.
	Benchmarks map[string]Bench `json:"benchmarks"`
}

// Bench is one benchmark's measurements.
type Bench struct {
	NsPerOp float64            `json:"ns_per_op"`
	Metrics map[string]float64 `json:"metrics,omitempty"`
}

// benchLine matches e.g.
// "BenchmarkServeQuickstartPSE100-8   3000   2785 ns/op   369209 inst/s   59 B/op"
var benchLine = regexp.MustCompile(`^(Benchmark\S+?)(?:-\d+)?\s+\d+\s+([\d.]+) ns/op(.*)$`)

func main() {
	var (
		in        = flag.String("in", "", "emit: benchmark output file to parse ('-' for stdin)")
		out       = flag.String("out", "", "emit: JSON record to write")
		current   = flag.String("current", "", "check: current JSON record")
		baseline  = flag.String("baseline", "", "check: committed baseline JSON record")
		tolerance = flag.Float64("tolerance", 0.20, "check: allowed fractional inst/s regression")
		metric    = flag.String("metric", "inst/s", "check: throughput metric to guard")
		normalize = flag.String("normalize", "", "check: divide every measurement by this benchmark's, guarding machine-independent ratios instead of absolute throughput (for baselines recorded on different hardware, e.g. CI runners)")
	)
	flag.Parse()

	switch {
	case *in != "" && *out != "":
		if err := emit(*in, *out); err != nil {
			fail(err)
		}
	case *current != "" && *baseline != "":
		if err := check(*current, *baseline, *metric, *normalize, *tolerance); err != nil {
			fail(err)
		}
	default:
		fail(fmt.Errorf("usage: benchguard -in bench.out -out FILE.json | benchguard -current FILE.json -baseline BASE.json"))
	}
}

func emit(in, out string) error {
	f := os.Stdin
	if in != "-" {
		var err error
		if f, err = os.Open(in); err != nil {
			return err
		}
		defer f.Close()
	}
	rec := Record{Benchmarks: map[string]Bench{}}
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		m := benchLine.FindStringSubmatch(sc.Text())
		if m == nil {
			continue
		}
		ns, err := strconv.ParseFloat(m[2], 64)
		if err != nil {
			continue
		}
		b := Bench{NsPerOp: ns, Metrics: parseMetrics(m[3])}
		rec.Benchmarks[m[1]] = b
	}
	if err := sc.Err(); err != nil {
		return err
	}
	if len(rec.Benchmarks) == 0 {
		return fmt.Errorf("benchguard: no benchmark lines found in %s", in)
	}
	data, err := json.MarshalIndent(rec, "", "  ")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	if err := os.WriteFile(out, data, 0o644); err != nil {
		return err
	}
	fmt.Printf("benchguard: wrote %d benchmarks to %s\n", len(rec.Benchmarks), out)
	return nil
}

// parseMetrics extracts "value unit" pairs from the tail of a benchmark
// line (inst/s, B/op, allocs/op, custom ReportMetric units).
func parseMetrics(rest string) map[string]float64 {
	fields := strings.Fields(rest)
	if len(fields) == 0 {
		return nil
	}
	out := map[string]float64{}
	for i := 0; i+1 < len(fields); i += 2 {
		v, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			break
		}
		out[fields[i+1]] = v
	}
	return out
}

func check(currentPath, baselinePath, metric, normalize string, tolerance float64) error {
	cur, err := load(currentPath)
	if err != nil {
		return err
	}
	base, err := load(baselinePath)
	if os.IsNotExist(err) {
		fmt.Printf("benchguard: no baseline at %s; commit the current record to create one\n", baselinePath)
		return nil
	}
	if err != nil {
		return err
	}
	// Normalized mode divides every measurement by the reference
	// benchmark's, so machine speed cancels and the guard compares each
	// path's throughput relative to the same run's serving ceiling. A
	// uniform slowdown (including one hitting the reference itself) is
	// invisible by construction — normalized baselines guard shape, not
	// absolute speed.
	baseDiv, curDiv := 1.0, 1.0
	if normalize != "" {
		if baseDiv = base.Benchmarks[normalize].Metrics[metric]; baseDiv <= 0 {
			return fmt.Errorf("benchguard: baseline lacks normalization benchmark %s with %s", normalize, metric)
		}
		if curDiv = cur.Benchmarks[normalize].Metrics[metric]; curDiv <= 0 {
			return fmt.Errorf("benchguard: current run lacks normalization benchmark %s with %s", normalize, metric)
		}
	}
	var regressions []string
	checked := 0
	for name, bb := range base.Benchmarks {
		if name == normalize {
			continue // its ratio is 1 by construction
		}
		bv, ok := bb.Metrics[metric]
		if !ok || bv <= 0 {
			continue
		}
		cb, ok := cur.Benchmarks[name]
		if !ok {
			regressions = append(regressions, fmt.Sprintf("%s: present in baseline, missing from current run", name))
			continue
		}
		cv := cb.Metrics[metric]
		bv, cv = bv/baseDiv, cv/curDiv
		checked++
		if cv < bv*(1-tolerance) {
			regressions = append(regressions,
				fmt.Sprintf("%s: %s %.4g -> %.4g (-%.1f%%, budget %.0f%%)",
					name, metric, bv, cv, 100*(1-cv/bv), 100*tolerance))
		} else {
			fmt.Printf("benchguard: %s %s %.4g -> %.4g ok\n", name, metric, bv, cv)
		}
	}
	// Lower-is-better guards: tail latency and allocation count, where the
	// baseline reports them. Unlike throughput these are never normalized.
	lowGuards := []struct {
		metric string
		eps    float64 // absolute slack on top of the fractional budget
	}{
		{"p99-ms", 0},
		{"allocs/op", 0.5},
	}
	lowChecked := 0
	for name, bb := range base.Benchmarks {
		cb, ok := cur.Benchmarks[name]
		if !ok {
			continue // absence already reported by the throughput loop
		}
		for _, g := range lowGuards {
			bv, ok := bb.Metrics[g.metric]
			if !ok {
				continue
			}
			cv, ok := cb.Metrics[g.metric]
			if !ok {
				regressions = append(regressions,
					fmt.Sprintf("%s: %s present in baseline, missing from current run", name, g.metric))
				continue
			}
			lowChecked++
			if cv > bv*(1+tolerance)+g.eps {
				regressions = append(regressions,
					fmt.Sprintf("%s: %s %.4g -> %.4g (+%.1f%%, budget %.0f%%)",
						name, g.metric, bv, cv, 100*(cv/bv-1), 100*tolerance))
			} else {
				fmt.Printf("benchguard: %s %s %.4g -> %.4g ok\n", name, g.metric, bv, cv)
			}
		}
	}
	if len(regressions) > 0 {
		return fmt.Errorf("benchguard: %d regression(s) beyond %.0f%%:\n\t%s",
			len(regressions), 100*tolerance, strings.Join(regressions, "\n\t"))
	}
	if checked == 0 {
		return fmt.Errorf("benchguard: baseline %s has no %q measurements to guard", baselinePath, metric)
	}
	fmt.Printf("benchguard: %d benchmarks within throughput budget, %d latency/alloc measurements within budget\n",
		checked, lowChecked)
	return nil
}

func load(path string) (Record, error) {
	var rec Record
	data, err := os.ReadFile(path)
	if err != nil {
		return rec, err
	}
	if err := json.Unmarshal(data, &rec); err != nil {
		return rec, fmt.Errorf("benchguard: parsing %s: %w", path, err)
	}
	return rec, nil
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, err)
	os.Exit(1)
}
