// Command dfreplay turns a dfsd capture (dfsd -capture <dir>) back into a
// workload. It has two modes:
//
// Live replay re-issues every recorded instance against a running dfsd
// over either wire (the -addr scheme picks HTTP or dfbin), open-loop at
// the capture's own inter-arrival gaps — optionally compressed with
// -speed — per recorded tenant, and compares each live decision digest
// against the recorded one. Against an unchanged schema the divergence
// count must be zero; a non-zero count means the server no longer decides
// what it decided when the capture was taken.
//
// Virtual replay (-virtual) needs no server: every instance re-executes
// on the deterministic engine under the simulated clock, so the same
// capture always produces byte-identical digests — the debugging mode.
// -diff replays each instance against two schema versions (-schema /
// -schema2, schema text files; the recorded schema's built-in by default)
// and reports per-record divergence with internal/trace renderings of
// both executions, the offline analogue of the server's shadow compare.
//
// Examples:
//
//	dfsd -capture /tmp/cap                 # record production traffic
//	dfreplay -capture /tmp/cap -addr http://127.0.0.1:8180
//	dfreplay -capture /tmp/cap -addr dfbin://127.0.0.1:8181 -speed 2x
//	dfreplay -capture /tmp/cap -virtual    # deterministic re-execution
//	dfreplay -capture /tmp/cap -virtual -diff -schema2 v2.df
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/api"
	"repro/internal/capture"
	"repro/internal/client"
	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/flows"
	"repro/internal/sim"
	"repro/internal/simdb"
	"repro/internal/trace"
	"repro/internal/value"
)

func main() {
	var (
		capPath  = flag.String("capture", "", "capture directory or single .dfcap file (required)")
		addr     = flag.String("addr", "", "live replay target: http://host:port or dfbin://host:port")
		speed    = flag.String("speed", "1x", "live replay pacing: recorded gaps divided by this factor (e.g. 2x; max = no pacing)")
		virtual  = flag.Bool("virtual", false, "re-execute deterministically on the simulated clock (no server)")
		diff     = flag.Bool("diff", false, "with -virtual: replay against two schema versions and report divergence")
		schemaA  = flag.String("schema", "", "schema text file overriding the recorded schema (virtual modes; default: built-in by recorded name)")
		schemaB  = flag.String("schema2", "", "second schema text file for -diff")
		limit    = flag.Int("n", 0, "replay only the first n records (0 = all)")
		examples = flag.Int("examples", 4, "diverging examples to render in -diff mode")
	)
	flag.Parse()
	if *capPath == "" {
		fail(fmt.Errorf("-capture is required"))
	}
	if (*addr == "") == !*virtual {
		fail(fmt.Errorf("pick exactly one mode: -addr (live) or -virtual"))
	}
	if *diff && !*virtual {
		fail(fmt.Errorf("-diff needs -virtual"))
	}

	res, err := capture.Read(*capPath)
	if err != nil {
		fail(err)
	}
	recs := res.Records
	sort.SliceStable(recs, func(i, j int) bool { return recs[i].MonoNs < recs[j].MonoNs })
	if *limit > 0 && len(recs) > *limit {
		recs = recs[:*limit]
	}
	fmt.Printf("dfreplay: %d records from %d files", len(recs), res.Files)
	if res.TornFiles > 0 {
		fmt.Printf(" (%d torn tails, %d bytes discarded)", res.TornFiles, res.TornBytes)
	}
	fmt.Println()
	if len(recs) == 0 {
		fail(fmt.Errorf("empty capture"))
	}

	if *virtual {
		if *diff {
			runDiff(recs, *schemaA, *schemaB, *examples)
		} else {
			runVirtual(recs, *schemaA)
		}
		return
	}
	runLive(recs, *addr, *speed)
}

// sourcesOf rebuilds a record's typed source bindings.
func sourcesOf(rec *api.CaptureRecord) map[string]value.Value {
	m := make(map[string]value.Value, len(rec.Sources))
	for _, s := range rec.Sources {
		m[s.Name] = s.Val
	}
	return m
}

// parseSpeed parses -speed: "2", "2x", "0.5x", or "max" (no pacing).
func parseSpeed(s string) (float64, error) {
	if strings.EqualFold(s, "max") {
		return 0, nil // 0 sentinel: every arrival offset is zero
	}
	f, err := strconv.ParseFloat(strings.TrimSuffix(strings.ToLower(s), "x"), 64)
	if err != nil || f <= 0 {
		return 0, fmt.Errorf("bad -speed %q (want e.g. 1x, 2x, 0.5x, max)", s)
	}
	return f, nil
}

// runLive re-issues the capture against a server. Records group by
// (tenant, schema, strategy) — one client.RunLoad per group, all pacing
// off one shared base so cross-tenant interleaving is preserved — and
// every result's digest is compared to the recorded decision.
func runLive(recs []api.CaptureRecord, addr, speedStr string) {
	speed, err := parseSpeed(speedStr)
	if err != nil {
		fail(err)
	}
	type key struct{ tenant, schema, strategy string }
	groups := make(map[key][]int)
	order := []key{}
	for i := range recs {
		k := key{recs[i].Tenant, recs[i].Schema, recs[i].Strategy}
		if _, ok := groups[k]; !ok {
			order = append(order, k)
		}
		groups[k] = append(groups[k], i)
	}
	base := recs[0].MonoNs

	var diverged, compareFailed, failed, errored atomic.Int64
	var instances atomic.Int64
	var mu sync.Mutex
	var firstDiverge string
	var wg sync.WaitGroup
	start := time.Now()
	for _, k := range order {
		idx := groups[k]
		wg.Add(1)
		go func(k key, idx []int) {
			defer wg.Done()
			c, err := client.New(addr, client.WithTenant(k.tenant))
			if err != nil {
				fail(err)
			}
			rep, err := client.RunLoad(context.Background(), c, client.Load{
				Schema:   k.schema,
				Strategy: k.strategy,
				Count:    len(idx),
				SourcesFor: func(i int) map[string]value.Value {
					return sourcesOf(&recs[idx[i]])
				},
				Arrivals: func(i int) time.Duration {
					if speed == 0 {
						return 0
					}
					return time.Duration(float64(recs[idx[i]].MonoNs-base) / speed)
				},
				OnResult: func(i int, res api.EvalResult, err error) {
					if err != nil {
						return // counted by the report as a failed request
					}
					got, derr := capture.DigestEval(&res)
					if derr != nil {
						compareFailed.Add(1)
						return
					}
					if got != recs[idx[i]].Digest {
						diverged.Add(1)
						mu.Lock()
						if firstDiverge == "" {
							firstDiverge = fmt.Sprintf("record %d (tenant=%s schema=%s): recorded %016x live %016x values=%v error=%q",
								idx[i], k.tenant, k.schema, recs[idx[i]].Digest, got, res.Values, res.Error)
						}
						mu.Unlock()
					}
				},
			})
			if err != nil {
				fail(err)
			}
			instances.Add(int64(rep.Instances))
			failed.Add(int64(rep.Failed))
			errored.Add(int64(rep.Errors))
			fmt.Printf("dfreplay: tenant=%s schema=%s strategy=%s: %s\n",
				k.tenant, k.schema, k.strategy, rep)
		}(k, idx)
	}
	wg.Wait()
	fmt.Printf("dfreplay: live replay done in %v: replayed=%d diverged=%d failed-requests=%d instance-errors=%d\n",
		time.Since(start).Round(time.Millisecond), instances.Load(), diverged.Load(), failed.Load(), errored.Load())
	if firstDiverge != "" {
		fmt.Println("dfreplay: first divergence:", firstDiverge)
	}
	if diverged.Load() > 0 || compareFailed.Load() > 0 || failed.Load() > 0 {
		os.Exit(1)
	}
}

// resolveSchema loads the virtual-replay schema: an explicit text file,
// or the built-in flow matching the recorded name.
func resolveSchema(file, recorded string) *core.Schema {
	if file != "" {
		text, err := os.ReadFile(file)
		if err != nil {
			fail(err)
		}
		s, err := core.ParseSchema(string(text))
		if err != nil {
			fail(err)
		}
		// Registered schemas get their foreign results from the
		// deterministic default computes (compute functions cannot travel
		// over the wire); bind the same ones here or virtual re-execution
		// resolves every query to ⟂ and diverges from what dfsd decided.
		flows.BindDefaultComputes(s)
		return s
	}
	s, _, err := flows.ByName(recorded)
	if err != nil {
		fail(fmt.Errorf("schema %q is not built in; pass -schema <file> (%v)", recorded, err))
	}
	return s
}

// runVirtual re-executes every record on the simulated clock and reports
// a digest over the digests: two runs of the same capture print the same
// line, bit for bit, or something is nondeterministic and worth finding.
func runVirtual(recs []api.CaptureRecord, schemaFile string) {
	s := resolveSchema(schemaFile, recs[0].Schema)
	fp := s.Fingerprint()
	combined := capture.New()
	diverged, fpMismatch := 0, 0
	for i := range recs {
		rec := &recs[i]
		st, err := engine.ParseStrategy(rec.Strategy)
		if err != nil {
			fail(fmt.Errorf("record %d: %v", i, err))
		}
		res := engine.Run(s, sourcesOf(rec), st)
		d := capture.DigestResult(s, res)
		combined = combined.Target("", value.Int(int64(d)))
		if fp != rec.Fingerprint {
			fpMismatch++
			continue // recorded digest is from a different schema version
		}
		if d != rec.Digest {
			diverged++
		}
	}
	fmt.Printf("dfreplay: virtual replay: replayed=%d diverged=%d fingerprint-mismatch=%d digest=%016x\n",
		len(recs), diverged, fpMismatch, combined.Sum())
	if diverged > 0 {
		os.Exit(1)
	}
}

// runDiff replays every record against two schema versions and reports
// where their decisions diverge, rendering the first few divergences as
// side-by-side virtual-time traces.
func runDiff(recs []api.CaptureRecord, fileA, fileB string, maxExamples int) {
	if fileB == "" {
		fail(fmt.Errorf("-diff needs -schema2 (the version to compare against)"))
	}
	a := resolveSchema(fileA, recs[0].Schema)
	b := resolveSchema(fileB, recs[0].Schema)
	fmt.Printf("dfreplay: diffing %s (%016x) vs %s (%016x)\n",
		a.Name(), a.Fingerprint(), b.Name(), b.Fingerprint())
	diverged, shown := 0, 0
	for i := range recs {
		rec := &recs[i]
		st, err := engine.ParseStrategy(rec.Strategy)
		if err != nil {
			fail(fmt.Errorf("record %d: %v", i, err))
		}
		src := sourcesOf(rec)
		da := capture.DigestResult(a, engine.Run(a, src, st))
		db := capture.DigestResult(b, engine.Run(b, src, st))
		if da == db {
			continue
		}
		diverged++
		if shown < maxExamples {
			shown++
			fmt.Printf("--- divergence %d: record %d tenant=%s sources=%v\n",
				shown, i, rec.Tenant, api.EncodeSources(src))
			fmt.Printf("%s digest %016x:\n%s", a.Name(), da, replayTrace(a, st, src))
			fmt.Printf("%s digest %016x:\n%s", b.Name(), db, replayTrace(b, st, src))
		}
	}
	fmt.Printf("dfreplay: diff done: replayed=%d diverged=%d\n", len(recs), diverged)
}

// replayTrace re-runs one instance with a trace recorder attached and
// renders its timeline (the same rendering the server's shadow examples
// carry).
func replayTrace(s *core.Schema, st engine.Strategy, src map[string]value.Value) string {
	rec := trace.NewRecorder(s)
	sm := sim.New()
	e := &engine.Engine{Sim: sm, DB: &simdb.Unbounded{S: sm}, Strategy: st, Hooks: rec.Hooks()}
	res := e.Start(s, src, nil)
	sm.Run()
	if res.Err != nil {
		return fmt.Sprintf("replay error: %v\n%s", res.Err, rec.Trace().Render())
	}
	return rec.Trace().Render()
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "dfreplay:", err)
	os.Exit(1)
}
