package main

// Crash-consistency torture harness: `make torture`. Real dfsd processes
// run over one long-lived data directory with crash failpoints
// (DFSD_FAILPOINTS) armed at every WAL site — append write/sync, every
// step of the snapshot sequence, the log reset — including torn appends
// cut at random byte offsets. Each cycle registers schemas until the
// daemon kills itself at the armed site, restarts it clean, and checks
// the only two legal outcomes against a client-side model:
//
//   - every ACKED registration survives with a bit-identical fingerprint
//     at its acked version (the server re-verifies fingerprints during
//     replay, so a corrupt record refuses to boot — also a failure here);
//   - the single in-flight registration is either cleanly absent or
//     fully present with exactly the attempted content (its append may
//     have become durable before the crash landed).
//
// Anything else — a lost ack, a mutated fingerprint, a phantom entry, a
// leaked snapshot tmp file, a registry that refuses to boot — fails the
// test. Default run: one cycle per site (<60s, CI's `make torture`);
// TORTURE_FULL=1 runs the full randomized sweep (≥50 cycles).

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"repro/internal/api"
	"repro/internal/core"
	"repro/internal/fault"
	"repro/internal/flows"
)

// tortureText is one registration's schema body; k varies the arithmetic
// so every attempt has a distinct fingerprint.
func tortureText(name string, k int) string {
	return fmt.Sprintf(`
schema %s
source amount
query risk from amount cost 2 when amount > 0
synth fee when notnull(risk) = amount / %d + risk * 0
target fee
`, name, k)
}

// tortureFP computes the fingerprint the server will log and verify for
// text, exactly the way the registry does — the model's ground truth.
func tortureFP(t *testing.T, text string) string {
	t.Helper()
	sch, err := core.ParseSchema(text)
	if err != nil {
		t.Fatalf("torture schema does not parse: %v\n%s", err, text)
	}
	flows.BindDefaultComputes(sch)
	return fmt.Sprintf("%016x", sch.Fingerprint())
}

func TestTortureCrashConsistency(t *testing.T) {
	if testing.Short() {
		t.Skip("torture harness builds and crash-loops real daemons; skipped in -short")
	}
	dir := t.TempDir()
	dfsd := filepath.Join(dir, "dfsd")
	build := exec.Command("go", "build", "-o", dfsd, "repro/cmd/dfsd")
	build.Env = os.Environ()
	if out, err := build.CombinedOutput(); err != nil {
		t.Fatalf("building dfsd: %v\n%s", err, out)
	}
	dataDir := filepath.Join(dir, "registry")

	seed := time.Now().UnixNano()
	rng := rand.New(rand.NewSource(seed))
	t.Logf("torture seed %d (re-run: edit the seed in torture_test.go to reproduce)", seed)

	// One plan per WAL failpoint site. N* picks which hit crashes, so the
	// crash lands on a randomized registration; crashpartial's byte count
	// cuts the append at a random offset inside the record.
	plans := []struct {
		site string
		spec func() string
	}{
		{fault.SiteWALAppendWrite, func() string { return fmt.Sprintf("%d*crash", 1+rng.Intn(8)) }},
		{fault.SiteWALAppendWrite, func() string {
			return fmt.Sprintf("%d*crashpartial:%d", 1+rng.Intn(8), 1+rng.Intn(40))
		}},
		{fault.SiteWALAppendSync, func() string { return fmt.Sprintf("%d*crash", 1+rng.Intn(8)) }},
		{fault.SiteWALSnapOpen, func() string { return fmt.Sprintf("%d*crash", 1+rng.Intn(2)) }},
		{fault.SiteWALSnapWrite, func() string { return fmt.Sprintf("%d*crash", 1+rng.Intn(2)) }},
		{fault.SiteWALSnapSync, func() string { return "1*crash" }},
		{fault.SiteWALSnapRename, func() string { return "1*crash" }},
		{fault.SiteWALSnapDirSync, func() string { return "1*crash" }},
		{fault.SiteWALLogTruncate, func() string { return "1*crash" }},
		{fault.SiteWALLogSync, func() string { return "1*crash" }},
	}
	rounds := 1
	if os.Getenv("TORTURE_FULL") != "" {
		rounds = 6 // 60 randomized cycles
	}

	// The model: what the registry owes us. Only acked registrations (and
	// in-flight ones later observed durable) enter it.
	type schemaState struct {
		version uint64
		fp      string
	}
	model := map[string]*schemaState{}
	names := []string{"alpha", "beta", "gamma"}
	regCounter := 0
	survived, absent := 0, 0

	httpc := &http.Client{Timeout: 5 * time.Second}
	register := func(addr, text string) (api.SchemaResponse, error) {
		body, _ := json.Marshal(api.SchemaRequest{Text: text})
		req, _ := http.NewRequest(http.MethodPost, "http://"+addr+"/v1/schemas", bytes.NewReader(body))
		req.Header.Set(api.TenantHeader, "torture")
		req.Header.Set("Content-Type", "application/json")
		resp, err := httpc.Do(req)
		if err != nil {
			return api.SchemaResponse{}, err
		}
		data, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			// Non-transport refusals (503, 400) are registry bugs under a
			// pure crash plan — surface them as errors the caller fatals on.
			return api.SchemaResponse{}, fmt.Errorf("HTTP %d: %s", resp.StatusCode, data)
		}
		var ack api.SchemaResponse
		if err := json.Unmarshal(data, &ack); err != nil {
			return api.SchemaResponse{}, err
		}
		return ack, nil
	}
	launch := func(t *testing.T, env string) (*exec.Cmd, *syncBuffer, string) {
		t.Helper()
		addr := freeAddr(t)
		var out syncBuffer
		cmd := exec.Command(dfsd, "-addr", addr, "-binaddr", "",
			"-datadir", dataDir, "-snapevery", "4", "-drain", "2s")
		cmd.Env = os.Environ()
		if env != "" {
			cmd.Env = append(cmd.Env, env)
		}
		cmd.Stdout = &out
		cmd.Stderr = &out
		if err := cmd.Start(); err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { cmd.Process.Kill() })
		deadline := time.Now().Add(15 * time.Second)
		for {
			resp, err := http.Get("http://" + addr + "/healthz")
			if err == nil {
				resp.Body.Close()
				if resp.StatusCode == http.StatusOK {
					return cmd, &out, addr
				}
			}
			if time.Now().After(deadline) {
				t.Fatalf("dfsd never became healthy (env %q); output:\n%s", env, out.String())
			}
			time.Sleep(20 * time.Millisecond)
		}
	}

	cycle := 0
	for round := 0; round < rounds; round++ {
		for _, plan := range plans {
			cycle++
			spec := plan.spec()
			t.Logf("cycle %d: %s=%s", cycle, plan.site, spec)

			cmd, out, addr := launch(t, fault.EnvVar+"="+plan.site+"="+spec)
			if !strings.Contains(out.String(), "FAULT INJECTION ARMED") {
				t.Fatalf("cycle %d: no armed banner; a daemon carrying a silent fault plan is worse than the fault:\n%s",
					cycle, out.String())
			}

			// Register until the armed site kills the daemon mid-request.
			type attempt struct {
				name    string
				version uint64
				fp      string
			}
			var inflight *attempt
			const maxRegs = 24 // ≥6 snapshots at -snapevery 4: every plan's Nth hit is reachable
			for i := 0; i < maxRegs; i++ {
				name := names[regCounter%len(names)]
				text := tortureText(name, 2+regCounter)
				regCounter++
				att := attempt{name: name, version: 1, fp: tortureFP(t, text)}
				if st := model[name]; st != nil {
					att.version = st.version + 1
				}
				ack, err := register(addr, text)
				if err != nil {
					inflight = &att
					break
				}
				if ack.Version != att.version || ack.Fingerprint != att.fp {
					t.Fatalf("cycle %d: ack for %s = v%d/%s, model expected v%d/%s",
						cycle, name, ack.Version, ack.Fingerprint, att.version, att.fp)
				}
				model[name] = &schemaState{att.version, att.fp}
			}
			if inflight == nil {
				t.Fatalf("cycle %d: failpoint %s=%s never fired across %d registrations; output:\n%s",
					cycle, plan.site, spec, maxRegs, out.String())
			}

			// The death must be OUR crash: exit code 86, announced at the
			// armed site — not a panic, not a clean exit, not an OOM.
			waitErr := make(chan error, 1)
			go func() { waitErr <- cmd.Wait() }()
			select {
			case <-waitErr:
				if code := cmd.ProcessState.ExitCode(); code != fault.CrashExitCode {
					t.Fatalf("cycle %d: daemon exited %d, want crash code %d; output:\n%s",
						cycle, code, fault.CrashExitCode, out.String())
				}
			case <-time.After(15 * time.Second):
				t.Fatalf("cycle %d: daemon still alive after a failed registration; output:\n%s",
					cycle, out.String())
			}
			if want := "fault: crash at " + plan.site; !strings.Contains(out.String(), want) {
				t.Fatalf("cycle %d: crash banner %q missing:\n%s", cycle, want, out.String())
			}

			// Recovery generation, no faults. A registry that refuses to
			// boot (corrupt record, fingerprint mismatch) dies here in the
			// health wait with its output dumped — that IS the violation.
			vcmd, _, vaddr := launch(t, "")
			resp, err := http.Get("http://" + vaddr + "/v1/stats")
			if err != nil {
				t.Fatalf("cycle %d: stats after recovery: %v", cycle, err)
			}
			var st api.StatsResponse
			err = json.NewDecoder(resp.Body).Decode(&st)
			resp.Body.Close()
			if err != nil {
				t.Fatalf("cycle %d: stats decode: %v", cycle, err)
			}
			got := map[string]api.SchemaInfo{}
			for _, d := range st.SchemaDetails {
				if d.Owner == "torture" {
					got[d.Name] = d
				}
			}

			// Outcome of the in-flight registration: durable-with-exact-
			// content (adopt into the model) or cleanly absent. A torn or
			// mutated version of it is the third outcome that must not exist.
			if d, ok := got[inflight.name]; ok && d.Version == inflight.version {
				if d.Fingerprint != inflight.fp {
					t.Fatalf("cycle %d: in-flight %s v%d recovered with fingerprint %s, attempted %s — torn registration surfaced",
						cycle, inflight.name, d.Version, d.Fingerprint, inflight.fp)
				}
				model[inflight.name] = &schemaState{inflight.version, inflight.fp}
				survived++
			} else {
				absent++
			}
			// Acked ⇒ survives, bit-identical, at the acked version.
			for name, want := range model {
				d, ok := got[name]
				if !ok {
					t.Fatalf("cycle %d: ACKED schema %s v%d lost across the crash (%s=%s)",
						cycle, name, want.version, plan.site, spec)
				}
				if d.Version != want.version || d.Fingerprint != want.fp {
					t.Fatalf("cycle %d: acked %s = v%d/%s, recovered v%d/%s",
						cycle, name, want.version, want.fp, d.Version, d.Fingerprint)
				}
			}
			for name := range got {
				if _, ok := model[name]; !ok {
					t.Fatalf("cycle %d: phantom schema %s recovered — never acked at any version: %+v",
						cycle, name, got[name])
				}
			}
			// Boot swept any snapshot tmp the crash left behind.
			if _, err := os.Stat(filepath.Join(dataDir, "registry.snap.tmp")); !errors.Is(err, os.ErrNotExist) {
				t.Fatalf("cycle %d: orphaned registry.snap.tmp survived recovery (stat: %v)", cycle, err)
			}

			// SIGKILL the verifier: no drain, no sealing snapshot — the next
			// cycle inherits exactly the recovered on-disk state.
			vcmd.Process.Kill()
			vcmd.Wait()
		}
	}
	fmt.Printf("torture: %d crash/restart cycles over %d registrations — in-flight survived=%d absent=%d, 0 invariant violations\n",
		cycle, regCounter, survived, absent)
}
