package main

import (
	"bytes"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"syscall"
	"testing"
	"time"
)

// TestSmokeBinaries is the end-to-end binary smoke test `make smoke`
// runs in CI: build the real dfsd and dfserve binaries, launch the
// daemon, drive it with `dfserve -remote` (production-shaped query
// layer: batching + dedup + cache), then SIGTERM the daemon and assert
// the graceful drain completed with the final stats dump.
func TestSmokeBinaries(t *testing.T) {
	if testing.Short() {
		t.Skip("binary smoke test builds and execs; skipped in -short")
	}
	dir := t.TempDir()
	dfsd := filepath.Join(dir, "dfsd")
	dfserve := filepath.Join(dir, "dfserve")
	for bin, pkg := range map[string]string{dfsd: "repro/cmd/dfsd", dfserve: "repro/cmd/dfserve"} {
		cmd := exec.Command("go", "build", "-o", bin, pkg)
		cmd.Env = os.Environ()
		if out, err := cmd.CombinedOutput(); err != nil {
			t.Fatalf("building %s: %v\n%s", pkg, err, out)
		}
	}

	addr := freeAddr(t)
	var daemonOut bytes.Buffer
	daemon := exec.Command(dfsd,
		"-addr", addr,
		"-batch", "32", "-dedup", "-cache", "65536",
		"-tenant-inflight", "4096",
	)
	daemon.Stdout = &daemonOut
	daemon.Stderr = &daemonOut
	if err := daemon.Start(); err != nil {
		t.Fatal(err)
	}
	defer daemon.Process.Kill()

	// Wait for the daemon to accept traffic.
	deadline := time.Now().Add(15 * time.Second)
	for {
		resp, err := http.Get("http://" + addr + "/healthz")
		if err == nil {
			resp.Body.Close()
			if resp.StatusCode == http.StatusOK {
				break
			}
		}
		if time.Now().After(deadline) {
			t.Fatalf("dfsd never became healthy; output:\n%s", daemonOut.String())
		}
		time.Sleep(50 * time.Millisecond)
	}

	drive := exec.Command(dfserve,
		"-remote", addr,
		"-tenant", "smoke",
		"-n", "30000", "-c", "64", "-reqbatch", "32", "-spread", "256",
	)
	out, err := drive.CombinedOutput()
	if err != nil {
		t.Fatalf("dfserve -remote failed: %v\n%s\ndaemon output:\n%s", err, out, daemonOut.String())
	}
	text := string(out)
	if !strings.Contains(text, "instances=30000") || !strings.Contains(text, "inst/s") {
		t.Fatalf("dfserve report missing throughput:\n%s", text)
	}
	if !strings.Contains(text, "server tenant smoke:") {
		t.Fatalf("dfserve report missing server-side tenant view:\n%s", text)
	}

	// Graceful drain: SIGTERM, clean exit, final stats with our tenant.
	if err := daemon.Process.Signal(syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	waitErr := make(chan error, 1)
	go func() { waitErr <- daemon.Wait() }()
	select {
	case err := <-waitErr:
		if err != nil {
			t.Fatalf("dfsd exited non-zero after SIGTERM: %v\n%s", err, daemonOut.String())
		}
	case <-time.After(30 * time.Second):
		t.Fatalf("dfsd did not exit after SIGTERM; output:\n%s", daemonOut.String())
	}
	dtext := daemonOut.String()
	for _, want := range []string{"final stats", "completed=30000", "tenant smoke:", "drained cleanly"} {
		if !strings.Contains(dtext, want) {
			t.Fatalf("daemon drain output missing %q:\n%s", want, dtext)
		}
	}
	fmt.Println(text)
}

// freeAddr grabs an ephemeral loopback port for the daemon to bind.
func freeAddr(t *testing.T) string {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := ln.Addr().String()
	ln.Close()
	return addr
}
