package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"syscall"
	"testing"
	"time"

	"repro/internal/api"
)

// TestSmokeBinaries is the end-to-end binary smoke test `make smoke`
// runs in CI: build the real dfsd and dfserve binaries, launch the
// daemon (both wires: HTTP and dfbin), drive it with `dfserve -remote`
// over HTTP and again over dfbin:// (production-shaped query layer:
// batching + dedup + cache), then SIGTERM the daemon while a third
// binary-wire load is in flight and assert the graceful drain completed
// — in-flight binary requests flushed to their caller — with the final
// stats dump.
func TestSmokeBinaries(t *testing.T) {
	if testing.Short() {
		t.Skip("binary smoke test builds and execs; skipped in -short")
	}
	dir := t.TempDir()
	dfsd := filepath.Join(dir, "dfsd")
	dfserve := filepath.Join(dir, "dfserve")
	for bin, pkg := range map[string]string{dfsd: "repro/cmd/dfsd", dfserve: "repro/cmd/dfserve"} {
		cmd := exec.Command("go", "build", "-o", bin, pkg)
		cmd.Env = os.Environ()
		if out, err := cmd.CombinedOutput(); err != nil {
			t.Fatalf("building %s: %v\n%s", pkg, err, out)
		}
	}

	addr := freeAddr(t)
	binAddr := freeAddr(t)
	var daemonOut bytes.Buffer
	daemon := exec.Command(dfsd,
		"-addr", addr,
		"-binaddr", binAddr,
		"-batch", "32", "-dedup", "-cache", "65536",
		"-tenant-inflight", "4096",
	)
	daemon.Stdout = &daemonOut
	daemon.Stderr = &daemonOut
	if err := daemon.Start(); err != nil {
		t.Fatal(err)
	}
	defer daemon.Process.Kill()

	// Wait for the daemon to accept traffic.
	deadline := time.Now().Add(15 * time.Second)
	for {
		resp, err := http.Get("http://" + addr + "/healthz")
		if err == nil {
			resp.Body.Close()
			if resp.StatusCode == http.StatusOK {
				break
			}
		}
		if time.Now().After(deadline) {
			t.Fatalf("dfsd never became healthy; output:\n%s", daemonOut.String())
		}
		time.Sleep(50 * time.Millisecond)
	}

	drive := exec.Command(dfserve,
		"-remote", addr,
		"-tenant", "smoke",
		"-n", "30000", "-c", "64", "-reqbatch", "32", "-spread", "256",
	)
	out, err := drive.CombinedOutput()
	if err != nil {
		t.Fatalf("dfserve -remote failed: %v\n%s\ndaemon output:\n%s", err, out, daemonOut.String())
	}
	text := string(out)
	if !strings.Contains(text, "instances=30000") || !strings.Contains(text, "inst/s") {
		t.Fatalf("dfserve report missing throughput:\n%s", text)
	}
	if !strings.Contains(text, "server tenant smoke:") {
		t.Fatalf("dfserve report missing server-side tenant view:\n%s", text)
	}

	// Same load again over the binary wire: the dfbin:// scheme selects
	// the binary transport, everything else about the invocation is
	// identical — one daemon, both protocols, shared tenant accounting.
	binDrive := exec.Command(dfserve,
		"-remote", "dfbin://"+binAddr,
		"-tenant", "smokebin",
		"-n", "30000", "-c", "64", "-reqbatch", "32", "-spread", "256",
	)
	binOut, err := binDrive.CombinedOutput()
	if err != nil {
		t.Fatalf("dfserve -remote dfbin:// failed: %v\n%s\ndaemon output:\n%s", err, binOut, daemonOut.String())
	}
	binText := string(binOut)
	if !strings.Contains(binText, "over binary") {
		t.Fatalf("dfserve did not select the binary transport:\n%s", binText)
	}
	if !strings.Contains(binText, "instances=30000") || !strings.Contains(binText, "inst/s") {
		t.Fatalf("binary-wire report missing throughput:\n%s", binText)
	}
	if !strings.Contains(binText, "server tenant smokebin:") {
		t.Fatalf("binary-wire report missing server-side tenant view:\n%s", binText)
	}

	// Graceful drain under binary load: launch a third, much larger
	// binary-wire run in the background, SIGTERM the daemon once the
	// server has accepted some of it, and assert the drain still
	// completes cleanly — Drain only returns nil after every admitted
	// instance (including the binary in-flights) has flushed its result.
	bgDrive := exec.Command(dfserve,
		"-remote", "dfbin://"+binAddr,
		"-tenant", "drainbin",
		"-n", "300000", "-c", "64", "-spread", "256",
	)
	var bgOut bytes.Buffer
	bgDrive.Stdout = &bgOut
	bgDrive.Stderr = &bgOut
	if err := bgDrive.Start(); err != nil {
		t.Fatal(err)
	}
	defer bgDrive.Process.Kill()
	waitForTenant(t, addr, "drainbin", &daemonOut)

	if err := daemon.Process.Signal(syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	waitErr := make(chan error, 1)
	go func() { waitErr <- daemon.Wait() }()
	select {
	case err := <-waitErr:
		if err != nil {
			t.Fatalf("dfsd exited non-zero after SIGTERM: %v\n%s", err, daemonOut.String())
		}
	case <-time.After(30 * time.Second):
		t.Fatalf("dfsd did not exit after SIGTERM; output:\n%s", daemonOut.String())
	}
	dtext := daemonOut.String()
	for _, want := range []string{
		"serving dfbin on", "final stats", "tenant smoke:", "tenant smokebin:",
		"tenant drainbin:", "drained cleanly",
	} {
		if !strings.Contains(dtext, want) {
			t.Fatalf("daemon drain output missing %q:\n%s", want, dtext)
		}
	}

	// The background drive outlives the daemon: its in-flight requests
	// were answered during the drain, the rest failed fast against the
	// closed listener. Either way it must terminate on its own.
	bgErr := make(chan error, 1)
	go func() { bgErr <- bgDrive.Wait() }()
	select {
	case <-bgErr:
		// Exit status is irrelevant — the daemon is gone; what matters is
		// that the drive was not wedged waiting on a flushed request.
	case <-time.After(60 * time.Second):
		t.Fatalf("background dfserve wedged after daemon drain; output:\n%s", bgOut.String())
	}
	fmt.Println(text)
	fmt.Println(binText)
}

// waitForTenant polls /v1/stats until the daemon reports the tenant as
// accepted or in flight — proof the background load reached the runtime.
func waitForTenant(t *testing.T, addr, tenant string, daemonOut *bytes.Buffer) {
	t.Helper()
	deadline := time.Now().Add(15 * time.Second)
	for {
		if resp, err := http.Get("http://" + addr + "/v1/stats"); err == nil {
			var stats api.StatsResponse
			err := json.NewDecoder(resp.Body).Decode(&stats)
			resp.Body.Close()
			if err == nil {
				if adm, ok := stats.Tenants[tenant]; ok && (adm.Accepted > 0 || adm.InFlight > 0) {
					return
				}
			}
		}
		if time.Now().After(deadline) {
			t.Fatalf("tenant %s never showed up in /v1/stats; daemon output:\n%s", tenant, daemonOut.String())
		}
		time.Sleep(20 * time.Millisecond)
	}
}

// freeAddr grabs an ephemeral loopback port for the daemon to bind.
func freeAddr(t *testing.T) string {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := ln.Addr().String()
	ln.Close()
	return addr
}
