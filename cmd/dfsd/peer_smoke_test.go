package main

import (
	"encoding/json"
	"fmt"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"syscall"
	"testing"
	"time"

	"repro/internal/api"
)

// TestSmokePeerFleet is the front-end-tier smoke test `make smoke` runs
// in CI: build the real dfsd and dfserve binaries, launch a 3-node fleet
// wired by -peers/-self (one node taking its membership from a TOML
// config file, covering the config-file form), drive remote load through
// one node and assert the SLOs held (all instances answered, zero
// errors) and that queries actually crossed the fleet (?fleet=1
// aggregation shows forwards and an exact fleet-wide launch identity).
// Then the rolling-restart story: SIGTERM each node in turn, drive load
// through a survivor while it is down — zero surfaced errors, the
// breaker absorbs the dead link — relaunch it on the same address, and
// finish with the full fleet healthy and every drain clean.
func TestSmokePeerFleet(t *testing.T) {
	if testing.Short() {
		t.Skip("binary smoke test builds and execs; skipped in -short")
	}
	dir := t.TempDir()
	dfsd := filepath.Join(dir, "dfsd")
	dfserve := filepath.Join(dir, "dfserve")
	for bin, pkg := range map[string]string{dfsd: "repro/cmd/dfsd", dfserve: "repro/cmd/dfserve"} {
		cmd := exec.Command("go", "build", "-o", bin, pkg)
		cmd.Env = os.Environ()
		if out, err := cmd.CombinedOutput(); err != nil {
			t.Fatalf("building %s: %v\n%s", pkg, err, out)
		}
	}

	const nNodes = 3
	var httpAddrs, binAddrs [nNodes]string
	for i := range httpAddrs {
		httpAddrs[i] = freeAddr(t)
		binAddrs[i] = freeAddr(t)
	}
	peers := strings.Join(binAddrs[:], ",")

	// Node 2 exercises the config-file form of fleet membership.
	cfgPath := filepath.Join(dir, "node2.toml")
	cfg := fmt.Sprintf("# node 2 fleet membership\npeers = %q\nself = %q\n", peers, binAddrs[2])
	if err := os.WriteFile(cfgPath, []byte(cfg), 0o644); err != nil {
		t.Fatal(err)
	}

	cmds := make([]*exec.Cmd, nNodes)
	outs := make([]*syncBuffer, nNodes)
	launch := func(t *testing.T, i int) {
		t.Helper()
		args := []string{
			"-addr", httpAddrs[i], "-binaddr", binAddrs[i],
			"-batch", "32", "-dedup", "-cache", "65536",
			"-tenant-inflight", "4096",
		}
		if i == 2 {
			args = append(args, "-config", cfgPath)
		} else {
			args = append(args, "-peers", peers, "-self", binAddrs[i])
		}
		var out syncBuffer
		cmd := exec.Command(dfsd, args...)
		cmd.Stdout = &out
		cmd.Stderr = &out
		if err := cmd.Start(); err != nil {
			t.Fatal(err)
		}
		cmds[i], outs[i] = cmd, &out
		t.Cleanup(func() { cmd.Process.Kill() })
		deadline := time.Now().Add(15 * time.Second)
		for {
			resp, err := http.Get("http://" + httpAddrs[i] + "/healthz")
			if err == nil {
				resp.Body.Close()
				if resp.StatusCode == http.StatusOK {
					break
				}
			}
			if time.Now().After(deadline) {
				t.Fatalf("node %d never became healthy; output:\n%s", i, out.String())
			}
			time.Sleep(50 * time.Millisecond)
		}
		if want := fmt.Sprintf("fleet of %d peers", nNodes); !strings.Contains(out.String(), want) {
			t.Fatalf("node %d banner missing %q:\n%s", i, want, out.String())
		}
	}
	sigterm := func(t *testing.T, i int) {
		t.Helper()
		if err := cmds[i].Process.Signal(syscall.SIGTERM); err != nil {
			t.Fatal(err)
		}
		waitErr := make(chan error, 1)
		go func() { waitErr <- cmds[i].Wait() }()
		select {
		case err := <-waitErr:
			if err != nil {
				t.Fatalf("node %d exited non-zero after SIGTERM: %v\n%s", i, err, outs[i].String())
			}
		case <-time.After(30 * time.Second):
			t.Fatalf("node %d did not exit after SIGTERM; output:\n%s", i, outs[i].String())
		}
		if !strings.Contains(outs[i].String(), "drained cleanly") {
			t.Fatalf("node %d: no clean drain in output:\n%s", i, outs[i].String())
		}
	}
	// drive runs a remote load through node `via` and asserts the SLOs:
	// every instance answered, zero client-observed errors or failed
	// requests (Report.String only prints errors= when nonzero).
	drive := func(t *testing.T, via, n int, tenant string) {
		t.Helper()
		cmd := exec.Command(dfserve,
			"-remote", httpAddrs[via],
			"-tenant", tenant,
			"-n", fmt.Sprint(n), "-c", "32", "-reqbatch", "16", "-spread", "256",
		)
		out, err := cmd.CombinedOutput()
		if err != nil {
			t.Fatalf("dfserve via node %d failed: %v\n%s\nnode output:\n%s",
				via, err, out, outs[via].String())
		}
		text := string(out)
		if !strings.Contains(text, fmt.Sprintf("instances=%d", n)) {
			t.Fatalf("report missing instances=%d:\n%s", n, text)
		}
		if strings.Contains(text, "errors=") {
			t.Fatalf("load via node %d surfaced errors:\n%s", via, text)
		}
	}
	fleetStats := func(t *testing.T, via int) api.FleetStats {
		t.Helper()
		resp, err := http.Get("http://" + httpAddrs[via] + "/v1/stats?fleet=1")
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var st api.StatsResponse
		if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
			t.Fatal(err)
		}
		if st.Fleet == nil {
			t.Fatal("?fleet=1 response has no fleet block")
		}
		return *st.Fleet
	}

	for i := 0; i < nNodes; i++ {
		launch(t, i)
	}

	// Phase 1: load through node 0 spreads over the whole ring.
	drive(t, 0, 20000, "peer-smoke")

	// Stragglers (forwards of launches their instance abandoned) classify
	// moments after the load returns; poll until the fleet-wide identity
	// settles exactly.
	deadline := time.Now().Add(5 * time.Second)
	for {
		fs := fleetStats(t, 0)
		if len(fs.Nodes) != nNodes {
			t.Fatalf("fleet stats reports %d nodes, want %d: %+v", len(fs.Nodes), nNodes, fs)
		}
		for _, n := range fs.Nodes {
			if n.Err != "" {
				t.Fatalf("fleet stats: node %s unreachable: %s", n.Addr, n.Err)
			}
		}
		tot := fs.Totals
		if tot.PeerForwards > 0 && tot.PeerForwards == tot.PeerServed &&
			tot.Launched == tot.BackendQueries+tot.DedupHits+tot.CacheHits {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("fleet identity never settled: %+v\nnode 0 output:\n%s", tot, outs[0].String())
		}
		time.Sleep(50 * time.Millisecond)
	}

	// Phase 2: rolling restart. Each node drains out of the ring in turn;
	// load driven through a survivor while it is down must meet the same
	// SLOs (the breaker absorbs the dead link, queries fall back locally),
	// and the node relaunches on the same address to rejoin the ring.
	for i := 0; i < nNodes; i++ {
		sigterm(t, i)
		drive(t, (i+1)%nNodes, 6000, fmt.Sprintf("roll%d", i))
		launch(t, i)
	}

	// Phase 3: the restored fleet serves and aggregates as 3 nodes again.
	// (Totals identity does not apply across restarts: restarted nodes
	// reset their counters, orphaning their peers' pre-restart forwards.)
	drive(t, 1, 9000, "post-roll")
	fs := fleetStats(t, 2)
	if len(fs.Nodes) != nNodes {
		t.Fatalf("post-roll fleet stats reports %d nodes, want %d", len(fs.Nodes), nNodes)
	}
	selfs := 0
	for _, n := range fs.Nodes {
		if n.Err != "" {
			t.Fatalf("post-roll fleet stats: node %s unreachable: %s", n.Addr, n.Err)
		}
		if n.Self {
			selfs++
		}
	}
	if selfs != 1 {
		t.Fatalf("post-roll fleet stats marks %d nodes as self, want 1", selfs)
	}

	for i := 0; i < nNodes; i++ {
		sigterm(t, i)
	}
	fmt.Printf("peer smoke: %d-node fleet, rolling restart of every node, all drains clean\n", nNodes)
}
