// Command dfsd is the decision-flow server daemon: a networked,
// multi-tenant front end (internal/server) over the wall-clock serving
// runtime, speaking both wires at once — HTTP/JSON on -addr and the
// dfbin binary protocol on -binaddr, through one shared admission,
// tenant, and drain core. It accepts the same backend / query-layer /
// cluster flags as dfserve (shared via internal/cliconf, including
// -config file defaults), adds the front end's tenant and overload
// knobs, and shuts down gracefully on SIGTERM/SIGINT: stop accepting on
// both listeners, flush every in-flight instance to its caller, print
// the final stats, exit.
//
// Examples:
//
//	dfsd                                      # HTTP :8180 + dfbin :8181, instant backend
//	dfsd -addr :9000 -backend latency -base 500us
//	dfsd -batch 32 -dedup -cache 65536        # production-shaped query layer
//	dfsd -shards 4 -replicas 2 -hedge 3ms     # over a replicated cluster
//	dfsd -tenant-rate 1000 -tenant-inflight 256
//	                                          # per-tenant QoS limits
//	dfsd -config dfsd.toml                    # file defaults, flags win
//	dfsd -batch 32 -dedup -dumpconfig > dfsd.toml
//	                                          # capture effective config
//	dfserve -remote 127.0.0.1:8180            # drive it over HTTP
//	dfserve -remote dfbin://127.0.0.1:8181    # drive it over the binary wire
package main

import (
	"context"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/cliconf"
	"repro/internal/fault"
	"repro/internal/server"
)

func main() {
	var cf cliconf.Flags
	var pf cliconf.PeerFlags
	var capf cliconf.CaptureFlags
	fs := flag.CommandLine
	cf.Register(fs)
	pf.Register(fs)
	capf.Register(fs)
	var (
		addr         = fs.String("addr", ":8180", "HTTP/JSON listen address")
		binAddr      = fs.String("binaddr", ":8181", "dfbin binary-protocol listen address (empty disables)")
		tenantRate   = fs.Float64("tenant-rate", 0, "per-tenant token-bucket rate limit in inst/s (0 = unlimited)")
		tenantBurst  = fs.Int("tenant-burst", 0, "per-tenant token-bucket burst (0 = max(rate, 1))")
		tenantFlight = fs.Int("tenant-inflight", 0, "per-tenant in-flight instance quota (0 = unlimited)")
		shedQueue    = fs.Int("shed-queue", 0, "shed when the worker queue is deeper than this (0 = 4096, negative disables)")
		shedP99      = fs.Duration("shed-p99", 0, "shed while the recent p99 exceeds this watermark (0 = off)")
		latWindow    = fs.Int("latwindow", 4096, "latency samples retained per stats shard (sliding percentile window; 0 = unbounded)")
		drainWait    = fs.Duration("drain", 30*time.Second, "graceful shutdown: max wait for in-flight instances")
		dataDir      = fs.String("datadir", "", "durable schema registry directory: WAL + snapshot, replayed on boot (empty = in-memory only)")
		snapEvery    = fs.Int("snapevery", 0, "WAL appends between registry snapshot rewrites (0 = 256; needs -datadir)")
	)
	flag.Parse()
	if err := cliconf.ApplyConfigFile(fs, cf.ConfigPath); err != nil {
		fail(err)
	}
	if cf.DumpConfig {
		fmt.Print(cliconf.Dump(fs))
		return
	}

	// A long-running server must not accumulate latency samples without
	// bound; the window also makes the shed-p99 watermark track *recent*
	// tail latency instead of the all-time percentile.
	cf.LatencyWindow = *latWindow
	if err := pf.Validate(&cf); err != nil {
		fail(err)
	}
	if err := capf.Validate(); err != nil {
		fail(err)
	}
	built, err := cf.Build()
	if err != nil {
		fail(err)
	}

	// Fault injection (testing only): DFSD_FAILPOINTS arms named failpoint
	// sites before anything opens files or sockets. Announce what is armed
	// so a production daemon can never carry a silent fault plan.
	if armed, err := fault.ArmFromEnv(); err != nil {
		fail(err)
	} else if len(armed) > 0 {
		fmt.Printf("dfsd: FAULT INJECTION ARMED via %s: %v\n", fault.EnvVar, armed)
	}

	srv, err := server.Open(server.Config{
		Service:  built.Service,
		Peers:    pf.Members(),
		PeerSelf: pf.Self,
		Tenant: server.TenantLimits{
			RatePerSec:  *tenantRate,
			Burst:       *tenantBurst,
			MaxInFlight: *tenantFlight,
		},
		ShedQueueDepth: *shedQueue,
		ShedP99:        *shedP99,
		DataDir:            *dataDir,
		SnapshotEvery:      *snapEvery,
		CaptureDir:         capf.Dir,
		CaptureRotateBytes: capf.RotateBytes,
		CaptureRing:        capf.Ring,
	})
	if err != nil {
		// Refusing to start on a corrupt registry is deliberate: serving
		// wrong schemas silently would be worse.
		fail(err)
	}
	if rec := srv.Recovery(); rec.Enabled {
		fmt.Printf("dfsd: registry recovered from %s: %d schemas, %d shadows in %v\n",
			*dataDir, rec.Schemas, rec.Shadows, rec.Duration.Round(time.Microsecond))
		if rec.TornBytes > 0 {
			fmt.Printf("dfsd: warning: truncated %d bytes of torn WAL tail (unacked registration from a crash)\n",
				rec.TornBytes)
		}
	}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		fail(err)
	}
	httpSrv := &http.Server{Handler: srv.Handler()}
	fmt.Printf("dfsd: serving HTTP on %s — %s\n", ln.Addr(), cf.Describe())
	if ms := pf.Members(); len(ms) > 0 {
		fmt.Printf("dfsd: fleet of %d peers %v, self=%s\n", len(ms), ms, pf.Self)
	}
	if *tenantRate > 0 || *tenantFlight > 0 {
		fmt.Printf("dfsd: tenant limits rate=%.0f/s burst=%d inflight=%d\n",
			*tenantRate, *tenantBurst, *tenantFlight)
	}
	if capf.Dir != "" {
		fmt.Printf("dfsd: capturing evals to %s (best-effort: drops counted, never blocks serving)\n", capf.Dir)
	}

	errCh := make(chan error, 2)
	go func() { errCh <- httpSrv.Serve(ln) }()
	if *binAddr != "" {
		bln, err := net.Listen("tcp", *binAddr)
		if err != nil {
			fail(err)
		}
		fmt.Printf("dfsd: serving dfbin on %s\n", bln.Addr())
		// ServeBinary returns nil when Drain closes the listener, so a nil
		// error here must not look like the daemon exiting on its own.
		go func() {
			if err := srv.ServeBinary(bln); err != nil {
				errCh <- err
			}
		}()
	}

	sigCh := make(chan os.Signal, 1)
	signal.Notify(sigCh, syscall.SIGTERM, syscall.SIGINT)
	select {
	case sig := <-sigCh:
		fmt.Printf("dfsd: %v — draining (up to %v)\n", sig, *drainWait)
	case err := <-errCh:
		fail(err)
	}

	// Drain protocol: stop accepting connections and flip the server to
	// draining concurrently — late requests on live connections get 503 —
	// then wait for every admitted instance to flush to its caller.
	ctx, cancel := context.WithTimeout(context.Background(), *drainWait)
	defer cancel()
	shutdownDone := make(chan struct{})
	go func() { httpSrv.Shutdown(ctx); close(shutdownDone) }()
	stats, err := srv.Drain(ctx)
	<-shutdownDone
	built.Stop()

	fmt.Printf("dfsd: final stats\n%s\n", stats)
	if cs := srv.CaptureStats(); cs != nil {
		fmt.Printf("dfsd: capture: appended=%d dropped=%d files=%d bytes=%d\n",
			cs.Appended, cs.Dropped, cs.Files, cs.Bytes)
		if cs.Error != "" {
			fmt.Printf("dfsd: capture degraded: %s\n", cs.Error)
		}
	}
	if rec := srv.Recovery(); rec.Enabled {
		fmt.Printf("dfsd: registry: recovered=%d schemas recovery_ms=%d\n",
			rec.Schemas, rec.Duration.Milliseconds())
	}
	if sum := built.SimdbSummary(); sum != "" {
		fmt.Println(sum)
	}
	if err != nil {
		fail(err)
	}
	fmt.Println("dfsd: drained cleanly")
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "dfsd:", err)
	os.Exit(1)
}
