package main

import (
	"context"
	"fmt"
	"os"
	"os/exec"
	"path/filepath"
	"regexp"
	"strconv"
	"strings"
	"syscall"
	"testing"
	"time"

	"repro/internal/client"
	"repro/internal/value"
)

// TestSmokeCaptureReplay is the capture→restart→replay cycle `make smoke`
// runs in CI with the real binaries: launch dfsd with -capture, drive 5k
// mixed-tenant instances over both wires, SIGTERM it (the drain seals the
// capture), relaunch a fresh daemon, and dfreplay the capture back live —
// the schema is unchanged, so the divergence count must be exactly zero
// and the replayed count must equal the recorded count. A virtual replay
// run twice must print bit-identical combined digests.
func TestSmokeCaptureReplay(t *testing.T) {
	if testing.Short() {
		t.Skip("binary smoke test builds and execs; skipped in -short")
	}
	dir := t.TempDir()
	dfsd := filepath.Join(dir, "dfsd")
	dfreplay := filepath.Join(dir, "dfreplay")
	for bin, pkg := range map[string]string{dfsd: "repro/cmd/dfsd", dfreplay: "repro/cmd/dfreplay"} {
		build := exec.Command("go", "build", "-o", bin, pkg)
		build.Env = os.Environ()
		if out, err := build.CombinedOutput(); err != nil {
			t.Fatalf("building %s: %v\n%s", pkg, err, out)
		}
	}
	capDir := filepath.Join(dir, "cap")

	launch := func(t *testing.T, extra ...string) (*exec.Cmd, *syncBuffer, string, string) {
		t.Helper()
		addr, binAddr := freeAddr(t), freeAddr(t)
		var out syncBuffer
		args := append([]string{"-addr", addr, "-binaddr", binAddr}, extra...)
		cmd := exec.Command(dfsd, args...)
		cmd.Stdout = &out
		cmd.Stderr = &out
		if err := cmd.Start(); err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { cmd.Process.Kill() })
		waitHealthy(t, addr, &out)
		return cmd, &out, "http://" + addr, "dfbin://" + binAddr
	}

	// Generation 1: capture on, 5k instances across 4 tenants and both
	// wires, batched and unbatched.
	const tenants, perTenant = 4, 1250
	gen1, out1, httpAddr, binAddr := launch(t, "-capture", capDir)
	if !strings.Contains(out1.String(), "capturing evals to") {
		t.Fatalf("no capture banner in startup output:\n%s", out1.String())
	}
	ctx := context.Background()
	for ten := 0; ten < tenants; ten++ {
		addr := httpAddr
		if ten%2 == 1 {
			addr = binAddr // odd tenants record over the binary wire
		}
		c, err := client.New(addr, client.WithTenant(fmt.Sprintf("tenant-%d", ten)))
		if err != nil {
			t.Fatal(err)
		}
		rep, err := client.RunLoad(ctx, c, client.Load{
			Schema:    "quickstart",
			Count:     perTenant,
			BatchSize: 1 + ten%3, // mix singles and batches
			SourcesFor: func(i int) map[string]value.Value {
				return map[string]value.Value{
					"visits": value.Int(int64(i % 17)),
					"spend":  value.Int(int64(i % 101)),
				}
			},
		})
		c.Close()
		if err != nil {
			t.Fatal(err)
		}
		if rep.Instances != perTenant || rep.Failed > 0 {
			t.Fatalf("tenant %d load: %+v", ten, rep)
		}
	}
	sigtermCapture(t, gen1, out1)
	want := tenants * perTenant
	if !strings.Contains(out1.String(), fmt.Sprintf("capture: appended=%d dropped=0", want)) {
		t.Fatalf("final capture stats do not show %d records, 0 drops:\n%s", want, out1.String())
	}

	// Generation 2: fresh daemon, no capture — the replay target.
	gen2, out2, httpAddr2, binAddr2 := launch(t)

	replay := func(t *testing.T, args ...string) string {
		t.Helper()
		cmd := exec.Command(dfreplay, append([]string{"-capture", capDir}, args...)...)
		out, err := cmd.CombinedOutput()
		if err != nil {
			t.Fatalf("dfreplay %v: %v\n%s", args, err, out)
		}
		return string(out)
	}

	// Live replay over both wires against the restarted daemon: the exact
	// recorded count comes back and nothing diverges.
	for _, addr := range []string{httpAddr2, binAddr2} {
		out := replay(t, "-addr", addr, "-speed", "max")
		if !strings.Contains(out, fmt.Sprintf("replayed=%d diverged=0 failed-requests=0 instance-errors=0", want)) {
			t.Fatalf("live replay against %s:\n%s", addr, out)
		}
	}
	sigtermCapture(t, gen2, out2)

	// Virtual replay twice: deterministic re-execution must print the same
	// combined digest bit for bit, and nothing may diverge from the record.
	digestRe := regexp.MustCompile(`replayed=(\d+) diverged=0 fingerprint-mismatch=0 digest=([0-9a-f]{16})`)
	var digests [2]string
	for i := range digests {
		out := replay(t, "-virtual")
		m := digestRe.FindStringSubmatch(out)
		if m == nil {
			t.Fatalf("virtual replay %d:\n%s", i, out)
		}
		if n, _ := strconv.Atoi(m[1]); n != want {
			t.Fatalf("virtual replay %d re-executed %s records, want %d", i, m[1], want)
		}
		digests[i] = m[2]
	}
	if digests[0] != digests[1] {
		t.Fatalf("virtual replay is nondeterministic: %s vs %s", digests[0], digests[1])
	}
	fmt.Printf("capture smoke: %d instances captured, replayed live on both wires with zero divergence, virtual digest %s stable\n",
		want, digests[0])
}

func waitHealthy(t *testing.T, addr string, out *syncBuffer) {
	t.Helper()
	deadline := time.Now().Add(15 * time.Second)
	for {
		c, err := client.New("http://" + addr)
		if err == nil {
			_, err = c.Stats(context.Background())
			c.Close()
			if err == nil {
				return
			}
		}
		if time.Now().After(deadline) {
			t.Fatalf("dfsd never became healthy; output:\n%s", out.String())
		}
		time.Sleep(50 * time.Millisecond)
	}
}

func sigtermCapture(t *testing.T, cmd *exec.Cmd, out *syncBuffer) {
	t.Helper()
	if err := cmd.Process.Signal(syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	waitErr := make(chan error, 1)
	go func() { waitErr <- cmd.Wait() }()
	select {
	case err := <-waitErr:
		if err != nil {
			t.Fatalf("dfsd exited non-zero after SIGTERM: %v\n%s", err, out.String())
		}
	case <-time.After(30 * time.Second):
		t.Fatalf("dfsd did not exit after SIGTERM; output:\n%s", out.String())
	}
	if !strings.Contains(out.String(), "drained cleanly") {
		t.Fatalf("no clean drain in output:\n%s", out.String())
	}
}
