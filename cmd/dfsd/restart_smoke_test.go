package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"sync"
	"syscall"
	"testing"
	"time"

	"repro/internal/api"
)

// syncBuffer guards the daemon's captured output: exec's pipe copier
// writes it from its own goroutine while the test polls String().
type syncBuffer struct {
	mu  sync.Mutex
	buf bytes.Buffer
}

func (b *syncBuffer) Write(p []byte) (int, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.Write(p)
}

func (b *syncBuffer) String() string {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.String()
}

const restartSchema = `
schema regsmoke
source amount
query risk from amount cost 2 when amount > 0
synth fee when notnull(risk) = amount / 10 + risk * 0
target fee
`

// TestSmokeRestart is the durability smoke test `make smoke` runs in CI:
// launch the real dfsd over a data directory, register a schema, drive
// load, SIGTERM it, relaunch on the same -datadir and re-drive WITHOUT
// re-registering — zero unknown-schema errors, identical fingerprint.
// Then the unclean variants: a SIGKILL mid-life (recovery from the raw
// WAL, no sealing snapshot) and a torn garbage tail appended to the log
// (truncate-and-warn, not refusal).
func TestSmokeRestart(t *testing.T) {
	if testing.Short() {
		t.Skip("binary smoke test builds and execs; skipped in -short")
	}
	dir := t.TempDir()
	dfsd := filepath.Join(dir, "dfsd")
	build := exec.Command("go", "build", "-o", dfsd, "repro/cmd/dfsd")
	build.Env = os.Environ()
	if out, err := build.CombinedOutput(); err != nil {
		t.Fatalf("building dfsd: %v\n%s", err, out)
	}
	dataDir := filepath.Join(dir, "registry")

	launch := func(t *testing.T) (*exec.Cmd, *syncBuffer, string) {
		t.Helper()
		addr := freeAddr(t)
		var out syncBuffer
		cmd := exec.Command(dfsd, "-addr", addr, "-binaddr", "", "-datadir", dataDir)
		cmd.Stdout = &out
		cmd.Stderr = &out
		if err := cmd.Start(); err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { cmd.Process.Kill() })
		deadline := time.Now().Add(15 * time.Second)
		for {
			resp, err := http.Get("http://" + addr + "/healthz")
			if err == nil {
				resp.Body.Close()
				if resp.StatusCode == http.StatusOK {
					return cmd, &out, addr
				}
			}
			if time.Now().After(deadline) {
				t.Fatalf("dfsd never became healthy; output:\n%s", out.String())
			}
			time.Sleep(50 * time.Millisecond)
		}
	}
	sigterm := func(t *testing.T, cmd *exec.Cmd, out *syncBuffer) {
		t.Helper()
		if err := cmd.Process.Signal(syscall.SIGTERM); err != nil {
			t.Fatal(err)
		}
		waitErr := make(chan error, 1)
		go func() { waitErr <- cmd.Wait() }()
		select {
		case err := <-waitErr:
			if err != nil {
				t.Fatalf("dfsd exited non-zero after SIGTERM: %v\n%s", err, out.String())
			}
		case <-time.After(30 * time.Second):
			t.Fatalf("dfsd did not exit after SIGTERM; output:\n%s", out.String())
		}
		if !strings.Contains(out.String(), "drained cleanly") {
			t.Fatalf("no clean drain in output:\n%s", out.String())
		}
	}
	// drive runs n evals against the recovered schema and fails on ANY
	// error — in particular an unknown-schema 404 after a restart.
	drive := func(t *testing.T, addr string, n int) {
		t.Helper()
		for i := 0; i < n; i++ {
			body, _ := json.Marshal(api.EvalRequest{Schema: "regsmoke",
				Sources: map[string]any{"amount": 10 * (i + 1)}})
			req, _ := http.NewRequest(http.MethodPost, "http://"+addr+"/v1/eval", bytes.NewReader(body))
			req.Header.Set(api.TenantHeader, "smokereg")
			req.Header.Set("Content-Type", "application/json")
			resp, err := http.DefaultClient.Do(req)
			if err != nil {
				t.Fatal(err)
			}
			data, _ := io.ReadAll(resp.Body)
			resp.Body.Close()
			if resp.StatusCode != http.StatusOK {
				t.Fatalf("eval %d: HTTP %d: %s", i, resp.StatusCode, data)
			}
			var res api.EvalResult
			if err := json.Unmarshal(data, &res); err != nil {
				t.Fatal(err)
			}
			if res.Error != "" {
				t.Fatalf("eval %d: instance error %q", i, res.Error)
			}
		}
	}
	register := func(t *testing.T, addr string) api.SchemaResponse {
		t.Helper()
		body, _ := json.Marshal(api.SchemaRequest{Text: restartSchema})
		req, _ := http.NewRequest(http.MethodPost, "http://"+addr+"/v1/schemas", bytes.NewReader(body))
		req.Header.Set(api.TenantHeader, "smokereg")
		req.Header.Set("Content-Type", "application/json")
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var ack api.SchemaResponse
		if err := json.NewDecoder(resp.Body).Decode(&ack); err != nil || resp.StatusCode != http.StatusOK {
			t.Fatalf("register: HTTP %d, %v", resp.StatusCode, err)
		}
		return ack
	}
	stats := func(t *testing.T, addr string) api.StatsResponse {
		t.Helper()
		resp, err := http.Get("http://" + addr + "/v1/stats")
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var out api.StatsResponse
		if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
			t.Fatal(err)
		}
		return out
	}
	detail := func(t *testing.T, addr string) api.SchemaInfo {
		t.Helper()
		for _, d := range stats(t, addr).SchemaDetails {
			if d.Name == "regsmoke" {
				return d
			}
		}
		t.Fatal("regsmoke missing from stats schema details")
		return api.SchemaInfo{}
	}

	// Generation 1: register, drive, clean SIGTERM.
	gen1, out1, addr1 := launch(t)
	ack := register(t, addr1)
	if ack.Version != 1 || ack.Fingerprint == "" {
		t.Fatalf("registration ack = %+v", ack)
	}
	drive(t, addr1, 50)
	sigterm(t, gen1, out1)

	// Generation 2: same -datadir, no re-registration. The stats dump
	// carries the recovery summary; the fingerprint is bit-identical.
	gen2, out2, addr2 := launch(t)
	if !strings.Contains(out2.String(), "registry recovered from") {
		t.Fatalf("no recovery line in startup output:\n%s", out2.String())
	}
	st := stats(t, addr2)
	if st.RecoveredSchemas != 1 {
		t.Fatalf("stats recovered_schemas = %d, want 1", st.RecoveredSchemas)
	}
	if st.RecoveryMs < 0 {
		t.Fatalf("stats recovery_ms = %d", st.RecoveryMs)
	}
	if d := detail(t, addr2); d.Fingerprint != ack.Fingerprint || d.Version != 1 {
		t.Fatalf("recovered schema = %+v, registered ack = %+v", d, ack)
	}
	drive(t, addr2, 50)

	// Generation 2 dies by SIGKILL: no drain, no sealing snapshot — the
	// raw WAL is all generation 3 gets.
	reack := register(t, addr2) // v2, so the kill loses no acked state trivially
	if reack.Version != 2 {
		t.Fatalf("re-registration version = %d, want 2", reack.Version)
	}
	if err := gen2.Process.Kill(); err != nil {
		t.Fatal(err)
	}
	gen2.Wait()

	gen3, out3, addr3 := launch(t)
	if d := detail(t, addr3); d.Version != 2 || d.Fingerprint != reack.Fingerprint {
		t.Fatalf("post-SIGKILL recovery lost the acked registration: %+v", d)
	}
	drive(t, addr3, 50)
	sigterm(t, gen3, out3)

	// Garbage torn tail: a crash mid-append leaves a half-written record.
	// The daemon must start, warn, and serve everything acked before it.
	f, err := os.OpenFile(filepath.Join(dataDir, "registry.wal"), os.O_APPEND|os.O_WRONLY, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write([]byte{0xff, 0x03, 0x00, 0x00, 0xde, 0xad, 0xbe, 0xef}); err != nil {
		t.Fatal(err)
	}
	f.Close()

	gen4, out4, addr4 := launch(t)
	if !strings.Contains(out4.String(), "torn WAL tail") {
		t.Fatalf("no torn-tail warning in startup output:\n%s", out4.String())
	}
	if d := detail(t, addr4); d.Version != 2 {
		t.Fatalf("torn tail cost acked state: %+v", d)
	}
	drive(t, addr4, 20)
	sigterm(t, gen4, out4)
	fmt.Printf("restart smoke: 4 generations over %s, fingerprint %s stable\n", dataDir, ack.Fingerprint)
}
