// Command dfviz renders a decision flow schema as Graphviz DOT, with data
// edges dashed and enabling edges solid (the paper's Figure 1(b)
// convention).
//
// Usage:
//
//	dfviz -schema flow.txt        # text schema format -> DOT on stdout
//	dfviz -json flow.json         # serialized schema  -> DOT on stdout
//	dfgen | dfviz -json -         # from a pipe
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"repro/internal/core"
)

func main() {
	var (
		schemaPath = flag.String("schema", "", "path to a text-format schema ('-' for stdin)")
		jsonPath   = flag.String("json", "", "path to a JSON schema ('-' for stdin)")
	)
	flag.Parse()

	if (*schemaPath == "") == (*jsonPath == "") {
		fmt.Fprintln(os.Stderr, "dfviz: exactly one of -schema or -json is required")
		os.Exit(2)
	}

	read := func(path string) []byte {
		if path == "-" {
			data, err := io.ReadAll(os.Stdin)
			if err != nil {
				fmt.Fprintf(os.Stderr, "dfviz: reading stdin: %v\n", err)
				os.Exit(1)
			}
			return data
		}
		data, err := os.ReadFile(path)
		if err != nil {
			fmt.Fprintf(os.Stderr, "dfviz: %v\n", err)
			os.Exit(1)
		}
		return data
	}

	var (
		s   *core.Schema
		err error
	)
	if *schemaPath != "" {
		s, err = core.ParseSchema(string(read(*schemaPath)))
	} else {
		s, err = core.UnmarshalSchemaJSON(read(*jsonPath))
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "dfviz: %v\n", err)
		os.Exit(1)
	}
	fmt.Print(s.DOT())
}
