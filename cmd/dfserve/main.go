// Command dfserve load-tests the concurrent wall-clock serving runtime:
// it fires decision flow instances — as a Poisson open workload or a
// fixed-concurrency closed workload — and prints a latency/throughput
// report. It is the wall-clock analogue of the paper's §5 open-workload
// experiment, run on real goroutines instead of the discrete-event
// simulator.
//
// By default the service runs in-process. With -remote the same
// open/closed-loop generator drives a dfsd daemon through the typed
// client instead — over JSON/HTTP (http://host:port) or the dfbin binary
// protocol (dfbin://host:port) — so the full network stack of either
// wire (client pool, codec, tenant admission, server, runtime) is
// benchmarkable end-to-end.
//
// Examples:
//
//	dfserve                                  # peak throughput, quickstart schema, PSE100
//	dfserve -n 200000 -strategy PCE0         # serial strategy ceiling
//	dfserve -schema pattern                  # Table 1 64-node generated pattern
//	dfserve -rate 20000 -n 100000            # 20k inst/s Poisson open workload
//	dfserve -backend latency -base 500us     # inject 500µs per-query latency
//	dfserve -backend simdb -scale 0.01       # paced CPU/disk sim, 100× compressed
//	dfserve -shards 4 -replicas 2 -hedge 3ms # sharded replicated cluster, hedged
//	dfserve -remote 127.0.0.1:8180           # drive a dfsd daemon over HTTP
//	dfserve -remote dfbin://127.0.0.1:8181   # same, over the binary protocol
//	dfserve -remote 127.0.0.1:8180 -tenant acme -reqbatch 64
//	                                         # tagged tenant, 64 instances/request
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"strings"

	"repro/internal/cliconf"
	"repro/internal/client"
	"repro/internal/engine"
	"repro/internal/flows"
	rt "repro/internal/runtime"
	"repro/internal/value"
)

func main() {
	var cf cliconf.Flags
	fs := flag.CommandLine
	cf.Register(fs)
	var (
		schemaName = fs.String("schema", "quickstart", "schema to serve: quickstart | pattern (Table 1 generator)")
		strategy   = fs.String("strategy", "PSE100", "strategy code, e.g. PSE100, PCE0, NCC0")
		count      = fs.Int("n", 100000, "instances to fire")
		rate       = fs.Float64("rate", 0, "Poisson arrival rate in inst/s; 0 = closed loop (peak throughput)")
		conc       = fs.Int("c", 0, "closed-loop outstanding instances (0 = 4x workers; remote: outstanding requests, 0 = 64)")
		spread     = fs.Int("spread", 1, "spread instances over this many distinct source vectors (1 = identical instances)")
		remote     = fs.String("remote", "", "drive a dfsd server at this address instead of serving in-process (http://host:port for JSON, dfbin://host:port for the binary protocol; bare host:port = HTTP)")
		tenant     = fs.String("tenant", "", "remote: tenant to tag requests with")
		reqBatch   = fs.Int("reqbatch", 1, "remote: instances per request (amortizes round trips)")
		cpuprofile = fs.String("cpuprofile", "", "write a CPU profile of the load run to this file (go tool pprof)")
		memprofile = fs.String("memprofile", "", "write a heap profile after the load run to this file")
	)
	flag.Parse()
	if err := cliconf.ApplyConfigFile(fs, cf.ConfigPath); err != nil {
		fail(err)
	}
	if cf.DumpConfig {
		fmt.Print(cliconf.Dump(fs))
		return
	}

	st, err := engine.ParseStrategy(*strategy)
	if err != nil {
		fail(err)
	}
	schema, sources, err := flows.ByName(*schemaName)
	if err != nil {
		fail(err)
	}
	var sourcesFor func(i int) map[string]value.Value
	if *spread > 1 {
		if sourcesFor, err = flows.Spread(sources, *spread); err != nil {
			fail(err)
		}
	}

	// Profiling brackets the load run only, so the profile is the serving
	// (or client) hot path — setup and report rendering excluded.
	profStart := func() func() {
		var cpuFile *os.File
		if *cpuprofile != "" {
			f, err := os.Create(*cpuprofile)
			if err != nil {
				fail(err)
			}
			if err := pprof.StartCPUProfile(f); err != nil {
				fail(err)
			}
			cpuFile = f
		}
		return func() {
			if cpuFile != nil {
				pprof.StopCPUProfile()
				cpuFile.Close()
			}
			if *memprofile != "" {
				f, ferr := os.Create(*memprofile)
				if ferr != nil {
					fail(ferr)
				}
				runtime.GC() // surface only live steady-state allocations
				if ferr := pprof.WriteHeapProfile(f); ferr != nil {
					fail(ferr)
				}
				f.Close()
			}
		}
	}

	if *remote != "" {
		// The backend/query-layer/cluster flags configure an in-process
		// service; in remote mode that stack lives in the daemon and was
		// configured by dfsd's own flags. Reject rather than silently
		// benchmark a configuration that was never applied.
		serverSide := cliconf.ServerSideFlagNames()
		var misplaced []string
		fs.Visit(func(f *flag.Flag) {
			if serverSide[f.Name] {
				misplaced = append(misplaced, "-"+f.Name)
			}
		})
		if len(misplaced) > 0 {
			fail(fmt.Errorf("flag(s) %s configure the in-process service and do not apply with -remote; pass them to dfsd instead",
				strings.Join(misplaced, " ")))
		}
		runRemote(*remote, *tenant, *schemaName, *strategy, sources, sourcesFor,
			*count, *rate, *conc, *reqBatch, cf.Seed, profStart)
		return
	}

	built, err := cf.Build()
	if err != nil {
		fail(err)
	}
	svc := built.Service
	defer svc.Close()

	mode := "closed loop (peak throughput)"
	if *rate > 0 {
		mode = fmt.Sprintf("open workload, Poisson %.0f inst/s", *rate)
	}
	fmt.Printf("serving %s under %s — %d instances, %s, %s\n",
		*schemaName, st, *count, mode, cf.Describe())

	profStop := profStart()
	rep, err := rt.RunLoad(svc, rt.Load{
		Schema:      schema,
		Sources:     sources,
		SourcesFor:  sourcesFor,
		Strategy:    st,
		Count:       *count,
		Rate:        *rate,
		Concurrency: *conc,
		Seed:        cf.Seed,
	})
	profStop()
	if err != nil {
		fail(err)
	}
	fmt.Println(rep)
	if sum := built.SimdbSummary(); sum != "" {
		fmt.Println(sum)
	}
	built.Stop()
}

// runRemote drives a dfsd daemon through the typed client: same generator
// shapes, measured at the client across the real network stack.
func runRemote(addr, tenant, schemaName, strategy string,
	sources map[string]value.Value, sourcesFor func(i int) map[string]value.Value,
	count int, rate float64, conc, reqBatch int, seed int64, profStart func() func()) {
	c, err := client.New(addr,
		client.WithTenant(tenant),
		client.WithMaxConns(max(conc, 64)))
	if err != nil {
		fail(err)
	}
	defer c.Close()
	ctx := context.Background()
	if err := c.Health(ctx); err != nil {
		fail(fmt.Errorf("server at %s not healthy: %w", addr, err))
	}

	mode := "closed loop (peak throughput)"
	if rate > 0 {
		mode = fmt.Sprintf("open workload, Poisson %.0f inst/s", rate)
	}
	who := ""
	if tenant != "" {
		who = fmt.Sprintf(" as tenant %q", tenant)
	}
	fmt.Printf("driving %s%s over %s — schema %s under %s, %d instances, %s, %d inst/request\n",
		addr, who, c.Transport(), schemaName, strategy, count, mode, reqBatch)

	profStop := profStart()
	rep, err := client.RunLoad(ctx, c, client.Load{
		Schema:      schemaName,
		Strategy:    strategy,
		Sources:     sources,
		SourcesFor:  sourcesFor,
		Count:       count,
		Rate:        rate,
		Concurrency: conc,
		BatchSize:   reqBatch,
		Seed:        seed,
	})
	profStop()
	if err != nil {
		fail(err)
	}
	fmt.Println(rep)

	// The server-side view closes the loop: how the runtime saw this load
	// (per-tenant slice included when we ran tagged).
	if stats, err := c.Stats(ctx); err == nil {
		fmt.Printf("server: uptime=%dms draining=%v\n", stats.UptimeMs, stats.Draining)
		if tenant != "" {
			if adm, ok := stats.Tenants[tenant]; ok {
				fmt.Printf("server tenant %s: accepted=%d shed rate/quota/queue=%d/%d/%d in-flight=%d\n",
					tenant, adm.Accepted, adm.ShedRate, adm.ShedQuota, adm.ShedQueue, adm.InFlight)
			}
		}
	}
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "dfserve:", err)
	os.Exit(1)
}
