// Command dfserve load-tests the concurrent wall-clock serving runtime:
// it fires decision flow instances at a runtime.Service — as a Poisson
// open workload or a fixed-concurrency closed workload — and prints a
// latency/throughput report. It is the wall-clock analogue of the paper's
// §5 open-workload experiment, run on real goroutines instead of the
// discrete-event simulator.
//
// Examples:
//
//	dfserve                                  # peak throughput, quickstart schema, PSE100
//	dfserve -n 200000 -strategy PCE0         # serial strategy ceiling
//	dfserve -schema pattern                  # Table 1 64-node generated pattern
//	dfserve -rate 20000 -n 100000            # 20k inst/s Poisson open workload
//	dfserve -backend latency -base 500us     # inject 500µs per-query latency
//	dfserve -backend simdb -scale 0.01       # paced CPU/disk sim, 100× compressed
//	dfserve -shards 4 -replicas 2 -hedge 3ms # sharded replicated cluster, hedged
//	dfserve -shards 4 -replicas 2 -skew 10 -retries 2 -failrate 0.01
//	                                         # slow replica + faults, masked by retries
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"time"

	decisionflow "repro"
	"repro/internal/gen"
)

func main() {
	var (
		schemaName = flag.String("schema", "quickstart", "schema to serve: quickstart | pattern (Table 1 generator)")
		strategy   = flag.String("strategy", "PSE100", "strategy code, e.g. PSE100, PCE0, NCC0")
		count      = flag.Int("n", 100000, "instances to fire")
		rate       = flag.Float64("rate", 0, "Poisson arrival rate in inst/s; 0 = closed loop (peak throughput)")
		conc       = flag.Int("c", 0, "closed-loop outstanding instances (0 = 4x workers)")
		workers    = flag.Int("workers", 0, "service workers (0 = GOMAXPROCS)")
		inflight   = flag.Int("inflight", 0, "global in-flight task bound (0 = 16x workers)")
		backend    = flag.String("backend", "instant", "database backend: instant | latency | simdb")
		base       = flag.Duration("base", 200*time.Microsecond, "latency backend: fixed per-query latency")
		perUnit    = flag.Duration("perunit", 50*time.Microsecond, "latency backend: latency per unit of processing")
		jitter     = flag.Float64("jitter", 0.2, "latency backend: relative jitter in [0,1)")
		parallel   = flag.Int("parallel", 0, "latency backend: max concurrent queries (0 = unbounded)")
		scale      = flag.Float64("scale", 0.01, "simdb backend: wall-clock ms per virtual ms")
		seed       = flag.Int64("seed", 1, "seed for arrivals and the simulated database")
		batch      = flag.Int("batch", 0, "query layer: max queries per combined backend call (0/1 = no batching)")
		window     = flag.Duration("window", 200*time.Microsecond, "query layer: batch deadline window")
		dedup      = flag.Bool("dedup", false, "query layer: single-flight dedup of identical in-flight queries")
		cache      = flag.Int("cache", 0, "query layer: attribute-result cache entries (0 = no cache)")
		cachettl   = flag.Duration("cachettl", 0, "query layer: cache entry TTL (0 = never expires)")
		spread     = flag.Int("spread", 1, "spread instances over this many distinct source vectors (1 = identical instances)")
		shards     = flag.Int("shards", 0, "cluster: consistent-hash shards (0 = single backend, no cluster)")
		replicas   = flag.Int("replicas", 1, "cluster: replicas per shard")
		lbName     = flag.String("lb", "rr", "cluster: replica load balancing: rr | least | p2c")
		hedge      = flag.Duration("hedge", 0, "cluster: hedge a request on a second replica after this delay (0 = off)")
		hedgeq     = flag.Float64("hedgeq", 0, "cluster: hedge past this observed latency quantile, e.g. 0.95 (used when -hedge is 0)")
		retries    = flag.Int("retries", 1, "cluster: extra attempts (on another replica) after an error or timeout")
		deadline   = flag.Duration("deadline", 0, "cluster: per-attempt deadline; timeouts retry elsewhere (0 = none)")
		skew       = flag.Float64("skew", 1, "cluster: slow down the last replica of shard 0 by this factor (tail-at-scale demo)")
		failrate   = flag.Float64("failrate", 0, "fault injection: fraction of queries erroring (latency/simdb backends)")
		stallrate  = flag.Float64("stallrate", 0, "fault injection: fraction of queries never completing (latency/simdb backends)")
		cpuprofile = flag.String("cpuprofile", "", "write a CPU profile of the load run to this file (go tool pprof)")
		memprofile = flag.String("memprofile", "", "write a heap profile after the load run to this file")
	)
	flag.Parse()

	st, err := decisionflow.ParseStrategy(*strategy)
	if err != nil {
		fail(err)
	}
	if *stallrate > 0 {
		// A stalled query never completes on its own; only a cluster
		// deadline can abandon it and retry elsewhere. Without one the run
		// would hang forever.
		if *shards == 0 && *replicas <= 1 {
			fail(fmt.Errorf("-stallrate needs a cluster (-shards/-replicas) so stalled queries can fail over"))
		}
		if *deadline <= 0 {
			fail(fmt.Errorf("-stallrate needs -deadline > 0: a stalled query only fails over when its attempt times out"))
		}
	}

	var (
		schema  *decisionflow.Schema
		sources decisionflow.Sources
	)
	switch *schemaName {
	case "quickstart":
		schema, sources = quickstartFlow()
	case "pattern":
		g := gen.Generate(gen.Default())
		schema, sources = g.Schema, g.SourceValues()
	default:
		fail(fmt.Errorf("unknown schema %q (want quickstart or pattern)", *schemaName))
	}

	// newBackend builds one backend copy — the single backend, or the
	// (shard, replica) cell of a cluster. skewFactor > 1 slows the copy
	// down, modeling the tail-at-scale slow machine.
	var pacedAll []*decisionflow.PacedSimBackend
	newBackend := func(skewFactor float64, seedOff int64) decisionflow.Backend {
		switch *backend {
		case "instant":
			return decisionflow.InstantBackend{}
		case "latency":
			return &decisionflow.LatencyBackend{
				Base:      time.Duration(float64(*base) * skewFactor),
				PerUnit:   time.Duration(float64(*perUnit) * skewFactor),
				Jitter:    *jitter,
				Parallel:  *parallel,
				FailRate:  *failrate,
				StallRate: *stallrate,
				Seed:      *seed + seedOff,
			}
		case "simdb":
			p := decisionflow.DefaultDBParams()
			p.FailProb = *failrate
			p.StallProb = *stallrate
			p.SlowFactor = skewFactor
			ps := decisionflow.NewPacedSimBackend(p, *seed+seedOff, *scale)
			pacedAll = append(pacedAll, ps)
			return ps
		default:
			fail(fmt.Errorf("unknown backend %q (want instant, latency or simdb)", *backend))
			return nil
		}
	}

	var db decisionflow.Backend
	var cluster *decisionflow.ClusterBackend
	if *shards > 0 || *replicas > 1 {
		lb, err := decisionflow.ParseLBPolicy(*lbName)
		if err != nil {
			fail(err)
		}
		cluster = decisionflow.NewClusterBackend(decisionflow.ClusterConfig{
			Shards:        max(*shards, 1),
			Replicas:      *replicas,
			LB:            lb,
			Retries:       *retries,
			Deadline:      *deadline,
			HedgeDelay:    *hedge,
			HedgeQuantile: *hedgeq,
			New: func(s, r int) decisionflow.Backend {
				sk := 1.0
				if *skew > 1 && s == 0 && r == *replicas-1 {
					sk = *skew
				}
				return newBackend(sk, int64(s*64+r+1))
			},
		})
		db = cluster
	} else {
		db = newBackend(1, 0)
	}

	svc := decisionflow.NewService(decisionflow.ServiceConfig{
		Backend:          db,
		Workers:          *workers,
		MaxInFlightTasks: *inflight,
		Query: decisionflow.QueryConfig{
			BatchSize:   *batch,
			BatchWindow: *window,
			Dedup:       *dedup,
			CacheSize:   *cache,
			CacheTTL:    *cachettl,
		},
	})
	defer svc.Close()

	mode := "closed loop (peak throughput)"
	if *rate > 0 {
		mode = fmt.Sprintf("open workload, Poisson %.0f inst/s", *rate)
	}
	layer := ""
	if *batch > 1 || *dedup || *cache > 0 {
		layer = fmt.Sprintf(", query layer [batch=%d window=%v dedup=%v cache=%d ttl=%v]",
			*batch, *window, *dedup, *cache, *cachettl)
	}
	topo := ""
	if cluster != nil {
		topo = fmt.Sprintf(", cluster [%dx%d lb=%s retries=%d deadline=%v hedge=%v/q%.2f skew=%g]",
			max(*shards, 1), *replicas, *lbName, *retries, *deadline, *hedge, *hedgeq, *skew)
	}
	fmt.Printf("serving %s under %s — %d instances, %s, %s backend%s%s\n",
		*schemaName, st, *count, mode, *backend, layer, topo)

	load := decisionflow.ServiceLoad{
		Schema:      schema,
		Sources:     sources,
		Strategy:    st,
		Count:       *count,
		Rate:        *rate,
		Concurrency: *conc,
		Seed:        *seed,
	}
	if *spread > 1 {
		load.SourcesFor = spreadSources(sources, *spread)
	}
	// Profiling brackets the load run only, so the profile is the serving
	// hot path — setup and report rendering excluded.
	var cpuFile *os.File
	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		if err != nil {
			fail(err)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			fail(err)
		}
		cpuFile = f
	}
	rep, err := decisionflow.RunLoad(svc, load)
	if cpuFile != nil {
		pprof.StopCPUProfile()
		cpuFile.Close()
	}
	if err != nil {
		fail(err)
	}
	if *memprofile != "" {
		f, ferr := os.Create(*memprofile)
		if ferr != nil {
			fail(ferr)
		}
		runtime.GC() // surface only live steady-state allocations
		if ferr := pprof.WriteHeapProfile(f); ferr != nil {
			fail(ferr)
		}
		f.Close()
	}
	fmt.Println(rep)
	if len(pacedAll) > 0 {
		var queries uint64
		var gmpl, unitTime float64
		for _, ps := range pacedAll {
			g, u, q := ps.Stats()
			queries += q
			gmpl += g
			unitTime += u
		}
		n := float64(len(pacedAll))
		fmt.Printf("simdb×%d: queries=%d avg Gmpl=%.1f avg UnitTime=%.2fms (virtual)\n",
			len(pacedAll), queries, gmpl/n, unitTime/n)
	}
	if cluster != nil {
		cluster.Stop()
	} else if len(pacedAll) == 1 {
		pacedAll[0].Stop()
	}
}

// quickstartFlow is the five-attribute shipping-upgrade flow of the
// package quick start.
func quickstartFlow() (*decisionflow.Schema, decisionflow.Sources) {
	schema := decisionflow.NewBuilder("shipping-upgrade").
		Source("order_total").
		Source("customer_id").
		Foreign("tier", decisionflow.TrueCond, []string{"customer_id"}, 2,
			func(in decisionflow.Inputs) decisionflow.Value {
				if id, ok := in.Get("customer_id").AsInt(); ok && id%2 == 1 {
					return decisionflow.Str("gold")
				}
				return decisionflow.Str("standard")
			}).
		Foreign("warehouse_load", decisionflow.Cond("order_total > 50"), nil, 3,
			decisionflow.ConstCompute(decisionflow.Int(40))).
		SynthesisExpr("score", decisionflow.TrueCond,
			decisionflow.MustParseExpr(`order_total / 10 + coalesce(warehouse_load, 100) / -2`)).
		Foreign("upgrade", decisionflow.Cond(`score > -10 and tier == "gold"`), []string{"tier", "score"}, 1,
			decisionflow.ConstCompute(decisionflow.Str("free 2-day shipping"))).
		Target("upgrade").
		MustBuild()
	return schema, decisionflow.Sources{
		"order_total": decisionflow.Int(120),
		"customer_id": decisionflow.Int(7),
	}
}

// spreadSources precomputes n variants of the base source bindings, each
// shifting every integer source by the variant index, and returns the
// per-instance selector (instance i runs variant i mod n). Distinct
// variants produce distinct query identities, which is what moves the
// query layer out of the degenerate all-instances-identical regime.
func spreadSources(base decisionflow.Sources, n int) func(i int) decisionflow.Sources {
	varied := false
	variants := make([]decisionflow.Sources, n)
	for v := range variants {
		m := make(decisionflow.Sources, len(base))
		for name, val := range base {
			if iv, ok := val.AsInt(); ok {
				m[name] = decisionflow.Int(iv + int64(v))
				varied = true
			} else {
				m[name] = val
			}
		}
		variants[v] = m
	}
	if !varied {
		fail(fmt.Errorf("-spread %d has no effect: no integer source to vary, all instances would be identical", n))
	}
	return func(i int) decisionflow.Sources { return variants[i%n] }
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "dfserve:", err)
	os.Exit(1)
}
