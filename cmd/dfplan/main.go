// Command dfplan applies the paper's §5 tuning methodology to a decision
// flow pattern: it builds the guideline map (Figure 8), calibrates the
// database's Db curve (Figure 9(a)), and answers the paper's two planning
// questions for a target throughput — the maximal affordable Work, and the
// execution strategy minimizing predicted response time (Figure 9(b)).
//
// Usage:
//
//	dfplan -rows 4 -enabled 75 -th 10
//	dfplan -rows 8 -enabled 50 -th 25 -verify   # also simulate the pick
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/engine"
	"repro/internal/gen"
	"repro/internal/guideline"
	"repro/internal/model"
	"repro/internal/simdb"
)

func main() {
	var (
		rows    = flag.Int("rows", 4, "nb_rows of the schema pattern")
		enabled = flag.Int("enabled", 75, "%enabled of the schema pattern")
		th      = flag.Float64("th", 10, "target throughput (instances/second)")
		seeds   = flag.Int("seeds", 10, "schema seeds averaged per strategy")
		dbUnits = flag.Int("dbunits", 2000, "units per Db-curve calibration level")
		verify  = flag.Bool("verify", false, "simulate the chosen strategy against the full workload")
	)
	flag.Parse()

	pattern := gen.Default()
	pattern.NbRows = *rows
	pattern.PctEnabled = *enabled

	fmt.Printf("pattern: nb_nodes=%d nb_rows=%d %%enabled=%d\n\n",
		pattern.NbNodes, *rows, *enabled)

	gmap, err := guideline.Build(pattern, guideline.DefaultStrategySet, *seeds)
	if err != nil {
		fmt.Fprintf(os.Stderr, "dfplan: %v\n", err)
		os.Exit(1)
	}
	fmt.Print(gmap)

	curve := simdb.MeasureDbCurve(simdb.DefaultParams(),
		[]int{1, 2, 4, 8, 12, 16, 24, 32, 48, 64}, *dbUnits, 1)
	fmt.Printf("\nmeasured Db curve: %s\n", curve)

	mdl := model.New(curve)
	points := gmap.OperatingPoints()

	if w, ok := mdl.MaxWork(*th, points); ok {
		fmt.Printf("\nat Th=%.0f/s the database can afford Work <= %.1f units/instance\n", *th, w)
	} else {
		fmt.Printf("\nat Th=%.0f/s no measured strategy is sustainable\n", *th)
		os.Exit(0)
	}

	best, _ := mdl.Best(*th, points)
	fmt.Printf("recommended strategy: %s (Work=%.1f, TimeInUnits=%.1f)\n",
		best.Strategy, best.Work, best.TimeInUnits)
	fmt.Printf("predicted: TimeInSeconds=%.1f ms at Gmpl=%.1f (UnitTime=%.2f ms)\n",
		best.Prediction.TimeInSeconds, best.Prediction.Gmpl, best.Prediction.UnitTime)

	if *verify {
		g := gen.Generate(pattern)
		stats, err := engine.RunOpenWorkload(engine.OpenWorkload{
			Schema:      g.Schema,
			Sources:     g.SourceValues(),
			Strategy:    engine.MustParseStrategy(best.Strategy),
			DB:          simdb.DefaultParams(),
			ArrivalRate: *th,
			Instances:   600,
			Seed:        1,
		})
		if err != nil {
			fmt.Fprintf(os.Stderr, "dfplan: verification failed: %v\n", err)
			os.Exit(1)
		}
		errPct := 100 * (stats.AvgTimeInSeconds - best.Prediction.TimeInSeconds) / stats.AvgTimeInSeconds
		fmt.Printf("simulated: TimeInSeconds=%.1f ms over %d instances (model error %.1f%%)\n",
			stats.AvgTimeInSeconds, stats.Completed, errPct)
	}
}
