// Command dfrun regenerates the figures of the paper's evaluation section.
//
// Usage:
//
//	dfrun -fig 5a            # one figure to stdout
//	dfrun -fig all -out dir  # every figure, one .txt per figure
//	dfrun -list              # list available figures
//
// Fidelity knobs: -seeds (schemas averaged per point), -instances
// (workload arrivals for Figure 9(b)), -dbunits (units per Db-curve
// calibration level).
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"repro/internal/experiments"
)

func main() {
	var (
		fig       = flag.String("fig", "all", "figure ID (5a, 5b, 6a, 6b, 7a, 7b, 8a, 8b, 9a, 9b) or 'all'")
		seeds     = flag.Int("seeds", 10, "generated schemas averaged per data point")
		instances = flag.Int("instances", 400, "workload arrivals for figure 9b")
		dbUnits   = flag.Int("dbunits", 2000, "units measured per Db-curve level")
		out       = flag.String("out", "", "directory to write one <figure>.txt per figure (default: stdout)")
		list      = flag.Bool("list", false, "list available figures and exit")
	)
	flag.Parse()

	if *list {
		for _, e := range experiments.Registry {
			fmt.Printf("%-4s %s\n", e.ID, e.Desc)
		}
		return
	}

	cfg := experiments.Config{Seeds: *seeds, WorkloadInstances: *instances, DbCurveUnits: *dbUnits}

	var ids []string
	if *fig == "all" {
		for _, e := range experiments.Registry {
			ids = append(ids, e.ID)
		}
	} else {
		ids = []string{*fig}
	}

	for _, id := range ids {
		run, ok := experiments.Lookup(id)
		if !ok {
			fmt.Fprintf(os.Stderr, "dfrun: unknown figure %q (try -list)\n", id)
			os.Exit(2)
		}
		fmt.Fprintf(os.Stderr, "dfrun: computing figure %s...\n", id)
		table := run(cfg).Table()
		if *out == "" {
			fmt.Print(table, "\n")
			continue
		}
		if err := os.MkdirAll(*out, 0o755); err != nil {
			fmt.Fprintf(os.Stderr, "dfrun: %v\n", err)
			os.Exit(1)
		}
		path := filepath.Join(*out, "fig"+id+".txt")
		if err := os.WriteFile(path, []byte(table), 0o644); err != nil {
			fmt.Fprintf(os.Stderr, "dfrun: %v\n", err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "dfrun: wrote %s\n", path)
	}
}
