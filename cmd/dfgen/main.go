// Command dfgen generates a decision flow schema pattern (Table 1 of the
// paper) and prints it as JSON, with optional execution statistics.
//
// Usage:
//
//	dfgen -nodes 64 -rows 4 -enabled 75 -seed 1
//	dfgen -rows 8 -run PSE80        # also executes one instance
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"

	"repro/internal/engine"
	"repro/internal/gen"
)

func main() {
	var (
		nodes   = flag.Int("nodes", 64, "number of internal nodes")
		rows    = flag.Int("rows", 4, "number of skeleton rows (must divide nodes)")
		enabled = flag.Int("enabled", 75, "% of enabling conditions true at execution")
		enabler = flag.Int("enabler", 50, "% of nodes usable in enabling conditions")
		seed    = flag.Int64("seed", 1, "generator seed")
		run     = flag.String("run", "", "also execute one instance with this strategy code (e.g. PSE80)")
	)
	flag.Parse()

	p := gen.Default()
	p.NbNodes = *nodes
	p.NbRows = *rows
	p.PctEnabled = *enabled
	p.PctEnabler = *enabler
	p.Seed = *seed

	g := gen.Generate(p)
	data, err := json.MarshalIndent(g.Schema, "", "  ")
	if err != nil {
		fmt.Fprintf(os.Stderr, "dfgen: %v\n", err)
		os.Exit(1)
	}
	fmt.Println(string(data))
	fmt.Fprintf(os.Stderr, "dfgen: %d attributes, diameter %d, total cost %d, enabled %d/%d nodes\n",
		g.Schema.NumAttrs(), g.Schema.Diameter(), g.Schema.TotalCost(), g.EnabledCount, p.NbNodes)

	if *run != "" {
		st, err := engine.ParseStrategy(*run)
		if err != nil {
			fmt.Fprintf(os.Stderr, "dfgen: %v\n", err)
			os.Exit(2)
		}
		res := engine.Run(g.Schema, g.SourceValues(), st)
		if res.Err != nil {
			fmt.Fprintf(os.Stderr, "dfgen: execution failed: %v\n", res.Err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "dfgen: %s -> TimeInUnits=%.0f Work=%d wasted=%d launched=%d\n",
			*run, res.Elapsed, res.Work, res.WastedWork, res.Launched)
	}
}
