package sim

import (
	"math"
	"testing"
)

func TestClockStartsAtZero(t *testing.T) {
	s := New()
	if s.Now() != 0 {
		t.Fatal("clock must start at 0")
	}
}

func TestEventOrdering(t *testing.T) {
	s := New()
	var order []int
	s.At(5, func() { order = append(order, 2) })
	s.At(1, func() { order = append(order, 1) })
	s.At(9, func() { order = append(order, 3) })
	s.Run()
	if len(order) != 3 || order[0] != 1 || order[1] != 2 || order[2] != 3 {
		t.Fatalf("order = %v", order)
	}
	if s.Now() != 9 {
		t.Fatalf("final time = %v", s.Now())
	}
}

func TestTieBreakBySchedulingOrder(t *testing.T) {
	s := New()
	var order []int
	for i := 0; i < 10; i++ {
		i := i
		s.At(3, func() { order = append(order, i) })
	}
	s.Run()
	for i, got := range order {
		if got != i {
			t.Fatalf("simultaneous events fired out of order: %v", order)
		}
	}
}

func TestAfterIsRelative(t *testing.T) {
	s := New()
	var fired Time = -1
	s.At(10, func() {
		s.After(5, func() { fired = s.Now() })
	})
	s.Run()
	if fired != 15 {
		t.Fatalf("After fired at %v, want 15", fired)
	}
}

func TestSchedulingInPastPanics(t *testing.T) {
	s := New()
	s.At(10, func() {})
	s.Run()
	defer func() {
		if recover() == nil {
			t.Error("scheduling in the past must panic")
		}
	}()
	s.At(5, func() {})
}

func TestStepAndPending(t *testing.T) {
	s := New()
	s.At(1, func() {})
	s.At(2, func() {})
	if s.Pending() != 2 {
		t.Fatal("Pending != 2")
	}
	if !s.Step() || s.Now() != 1 || s.Pending() != 1 {
		t.Fatal("Step 1 wrong")
	}
	if !s.Step() || s.Now() != 2 {
		t.Fatal("Step 2 wrong")
	}
	if s.Step() {
		t.Fatal("Step on empty queue must return false")
	}
}

func TestRunUntil(t *testing.T) {
	s := New()
	var fired []Time
	for _, tm := range []Time{1, 5, 10} {
		tm := tm
		s.At(tm, func() { fired = append(fired, tm) })
	}
	s.RunUntil(5)
	if len(fired) != 2 || s.Now() != 5 {
		t.Fatalf("RunUntil(5): fired=%v now=%v", fired, s.Now())
	}
	s.RunUntil(20)
	if len(fired) != 3 || s.Now() != 20 {
		t.Fatalf("RunUntil(20): fired=%v now=%v", fired, s.Now())
	}
}

func TestResourceSingleServerFCFS(t *testing.T) {
	s := New()
	r := NewResource(s, "disk", 1)
	var done []Time
	record := func() { done = append(done, s.Now()) }
	// Three requests of 5 each arriving at t=0: finish at 5, 10, 15.
	r.Use(5, record)
	r.Use(5, record)
	r.Use(5, record)
	s.Run()
	want := []Time{5, 10, 15}
	for i := range want {
		if done[i] != want[i] {
			t.Fatalf("completions = %v, want %v", done, want)
		}
	}
}

func TestResourceMultiServer(t *testing.T) {
	s := New()
	r := NewResource(s, "cpu", 2)
	var done []Time
	record := func() { done = append(done, s.Now()) }
	// Four requests of 4 each, 2 servers: finish at 4, 4, 8, 8.
	for i := 0; i < 4; i++ {
		r.Use(4, record)
	}
	s.Run()
	want := []Time{4, 4, 8, 8}
	for i := range want {
		if done[i] != want[i] {
			t.Fatalf("completions = %v, want %v", done, want)
		}
	}
}

func TestResourceQueueStats(t *testing.T) {
	s := New()
	r := NewResource(s, "disk", 1)
	r.Use(10, nil)
	r.Use(10, nil) // waits 10
	r.Use(10, nil) // waits 20
	if r.QueueLen() != 2 || r.InService() != 1 {
		t.Fatalf("queue=%d busy=%d", r.QueueLen(), r.InService())
	}
	s.Run()
	st := r.Stats()
	if st.Completed != 3 {
		t.Errorf("completed = %d", st.Completed)
	}
	if wantAvg := (0.0 + 10 + 20) / 3; math.Abs(st.AvgWait-wantAvg) > 1e-9 {
		t.Errorf("avg wait = %v, want %v", st.AvgWait, wantAvg)
	}
	if math.Abs(st.Utilization-1.0) > 1e-9 { // busy the whole 30 time units
		t.Errorf("utilization = %v, want 1", st.Utilization)
	}
}

func TestResourceUtilizationPartial(t *testing.T) {
	s := New()
	r := NewResource(s, "cpu", 2)
	r.Use(10, nil) // one of two servers busy for 10
	s.At(20, func() {})
	s.Run()
	st := r.Stats()
	// 10 busy-server-units over 20 time units × 2 servers = 0.25.
	if math.Abs(st.Utilization-0.25) > 1e-9 {
		t.Errorf("utilization = %v, want 0.25", st.Utilization)
	}
}

func TestResourceZeroService(t *testing.T) {
	s := New()
	r := NewResource(s, "cpu", 1)
	fired := false
	r.Use(0, func() { fired = true })
	s.Run()
	if !fired {
		t.Error("zero service must still complete")
	}
}

func TestResourceNegativeServicePanics(t *testing.T) {
	s := New()
	r := NewResource(s, "cpu", 1)
	defer func() {
		if recover() == nil {
			t.Error("negative service must panic")
		}
	}()
	r.Use(-1, nil)
}

func TestResourceNoServersPanics(t *testing.T) {
	s := New()
	defer func() {
		if recover() == nil {
			t.Error("0-server resource must panic")
		}
	}()
	NewResource(s, "bad", 0)
}

func TestResourceChainedUse(t *testing.T) {
	// A "process": CPU then disk, repeated twice; verifies composition of
	// callbacks across resources.
	s := New()
	cpu := NewResource(s, "cpu", 1)
	disk := NewResource(s, "disk", 1)
	var finish Time
	var unit func(rounds int)
	unit = func(rounds int) {
		if rounds == 0 {
			finish = s.Now()
			return
		}
		cpu.Use(1, func() {
			disk.Use(5, func() {
				unit(rounds - 1)
			})
		})
	}
	unit(2)
	s.Run()
	if finish != 12 { // (1+5)*2
		t.Fatalf("finish = %v, want 12", finish)
	}
}

func TestResourceNameAndServers(t *testing.T) {
	s := New()
	r := NewResource(s, "cpu", 4)
	if r.Name() != "cpu" || r.Servers() != 4 {
		t.Error("accessors wrong")
	}
}

func TestDeterminism(t *testing.T) {
	run := func() []Time {
		s := New()
		r := NewResource(s, "x", 2)
		var done []Time
		for i := 0; i < 20; i++ {
			d := float64(i%5 + 1)
			s.At(float64(i)/3, func() {
				r.Use(d, func() { done = append(done, s.Now()) })
			})
		}
		s.Run()
		return done
	}
	a, b := run(), run()
	if len(a) != len(b) {
		t.Fatal("different lengths")
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("nondeterministic at %d: %v vs %v", i, a[i], b[i])
		}
	}
}
