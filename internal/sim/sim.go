// Package sim is a small deterministic discrete-event simulation core: a
// virtual clock, a time-ordered event queue, and multi-server FCFS
// resources with queueing statistics.
//
// It replaces CSIM 18, the commercial simulation library the paper used to
// model its external database server (§5 "Experiment Environment"). Only
// the primitives that the database model needs are implemented — timed
// events and service-queue resources — but they are general enough to build
// other queueing substrates on.
//
// Determinism: events at equal times fire in scheduling order (a strictly
// increasing sequence number breaks ties), so a simulation driven by a
// seeded RNG reproduces exactly.
package sim

import (
	"container/heap"
	"fmt"
)

// Time is virtual time. The unit is whatever the model assigns (the
// database model uses milliseconds; the infinite-resource experiments use
// abstract units of processing).
type Time = float64

// event is one scheduled callback.
type event struct {
	t   Time
	seq uint64
	fn  func()
}

type eventHeap []event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].t != h[j].t {
		return h[i].t < h[j].t
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *eventHeap) Push(x any)   { *h = append(*h, x.(event)) }
func (h *eventHeap) Pop() any     { old := *h; n := len(old); e := old[n-1]; *h = old[:n-1]; return e }

// Sim is a discrete-event simulator. The zero value is ready to use.
type Sim struct {
	now    Time
	seq    uint64
	events eventHeap
}

// New returns a fresh simulator at time zero.
func New() *Sim { return &Sim{} }

// Now returns the current virtual time.
func (s *Sim) Now() Time { return s.now }

// At schedules fn to run at absolute virtual time t. Scheduling in the past
// panics — it would silently corrupt causality.
func (s *Sim) At(t Time, fn func()) {
	if t < s.now {
		panic(fmt.Sprintf("sim: scheduling event at %v before now %v", t, s.now))
	}
	s.seq++
	heap.Push(&s.events, event{t: t, seq: s.seq, fn: fn})
}

// After schedules fn to run d time units from now.
func (s *Sim) After(d float64, fn func()) { s.At(s.now+d, fn) }

// Step fires the next event; it reports false when no events remain.
func (s *Sim) Step() bool {
	if len(s.events) == 0 {
		return false
	}
	e := heap.Pop(&s.events).(event)
	s.now = e.t
	e.fn()
	return true
}

// Run fires events until none remain.
func (s *Sim) Run() {
	for s.Step() {
	}
}

// RunUntil fires events with time ≤ t, then advances the clock to t.
func (s *Sim) RunUntil(t Time) {
	for len(s.events) > 0 && s.events[0].t <= t {
		s.Step()
	}
	if t > s.now {
		s.now = t
	}
}

// Pending returns the number of scheduled events.
func (s *Sim) Pending() int { return len(s.events) }

// NextAt returns the virtual time of the earliest pending event; ok is
// false when no events are scheduled. Pacing drivers use it to map the
// next virtual event onto a wall-clock deadline.
func (s *Sim) NextAt() (Time, bool) {
	if len(s.events) == 0 {
		return 0, false
	}
	return s.events[0].t, true
}

// Resource is a multi-server FCFS service station (a CSIM "facility"):
// requests are served by up to Servers at once; excess requests wait in
// FIFO order. Statistics accumulate for utilization and waiting analysis.
type Resource struct {
	sim     *Sim
	name    string
	servers int

	busy  int
	queue []request

	// statistics
	completed    uint64
	totalWait    float64 // sum of queueing delays
	totalService float64 // sum of service demands
	busyIntegral float64 // ∫ busy dt, for utilization
	lastChange   Time
}

type request struct {
	service float64
	done    func()
	arrived Time
}

// NewResource creates a resource with the given number of servers.
func NewResource(s *Sim, name string, servers int) *Resource {
	if servers < 1 {
		panic("sim: resource needs at least one server")
	}
	return &Resource{sim: s, name: name, servers: servers, lastChange: s.Now()}
}

// Name returns the resource's name.
func (r *Resource) Name() string { return r.name }

// Servers returns the number of servers.
func (r *Resource) Servers() int { return r.servers }

// InService returns the number of requests currently being served.
func (r *Resource) InService() int { return r.busy }

// QueueLen returns the number of requests waiting for a server.
func (r *Resource) QueueLen() int { return len(r.queue) }

// Use requests service time on the resource; done runs at service
// completion (after any queueing delay). service must be non-negative.
func (r *Resource) Use(service float64, done func()) {
	if service < 0 {
		panic("sim: negative service demand")
	}
	req := request{service: service, done: done, arrived: r.sim.Now()}
	if r.busy < r.servers {
		r.start(req)
		return
	}
	r.queue = append(r.queue, req)
}

func (r *Resource) start(req request) {
	r.accumulate()
	r.busy++
	r.totalWait += r.sim.Now() - req.arrived
	r.totalService += req.service
	r.sim.After(req.service, func() {
		r.accumulate()
		r.busy--
		r.completed++
		if len(r.queue) > 0 {
			next := r.queue[0]
			r.queue = r.queue[1:]
			r.start(next)
		}
		if req.done != nil {
			req.done()
		}
	})
}

// accumulate folds the busy-time integral up to now.
func (r *Resource) accumulate() {
	now := r.sim.Now()
	r.busyIntegral += float64(r.busy) * (now - r.lastChange)
	r.lastChange = now
}

// Stats is a statistics snapshot of a resource.
type Stats struct {
	Completed   uint64  // requests fully served
	AvgWait     float64 // mean queueing delay per started request
	Utilization float64 // mean fraction of servers busy since t=0
}

// Stats returns current statistics. Utilization is relative to elapsed
// virtual time; it is zero before any time has passed.
func (r *Resource) Stats() Stats {
	r.accumulate()
	st := Stats{Completed: r.completed}
	started := r.completed + uint64(r.busy)
	if started > 0 {
		st.AvgWait = r.totalWait / float64(started)
	}
	if now := r.sim.Now(); now > 0 {
		st.Utilization = r.busyIntegral / (now * float64(r.servers))
	}
	return st
}
