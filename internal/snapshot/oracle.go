package snapshot

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/expr"
	"repro/internal/value"
)

// Complete computes the unique complete snapshot of §2's declarative
// semantics for the given source values: processing attributes in
// topological order, each non-source attribute is VALUE (with its task's
// output) if its enabling condition evaluates true over the already-stable
// prefix, DISABLED (with ⟂) otherwise. Acyclicity guarantees uniqueness.
//
// Complete is the oracle against which optimized executions are checked,
// and is itself the paper's "straightforward approach" baseline (a
// topological-sort execution) when paired with cost accounting in the
// engine package.
func Complete(s *core.Schema, sources map[string]value.Value) *Snapshot {
	sn := New(s, sources)
	for _, id := range s.TopoOrder() {
		a := s.Attr(id)
		if a.IsSource() {
			continue
		}
		t := expr.MustEval(a.Enabling, sn.Env())
		if t == expr.True {
			var v value.Value
			if a.Task != nil && a.Task.Compute != nil {
				v = a.Task.Compute(sn.Inputs(id))
			}
			sn.MustTransition(id, ReadyEnabled)
			if err := sn.SetValue(id, v); err != nil {
				panic(err)
			}
		} else {
			sn.MustTransition(id, Disabled)
		}
	}
	return sn
}

// CheckAgainstOracle verifies that an execution snapshot is correct with
// respect to the declarative semantics: every target attribute must be
// stable with the oracle's state and value, and no attribute may have
// reached a terminal state that contradicts the oracle. (States and values
// of non-target attributes that were never stabilized are irrelevant, per
// the paper.)
func CheckAgainstOracle(exec, oracle *Snapshot) error {
	s := exec.Schema()
	if s != oracle.Schema() {
		return fmt.Errorf("snapshot: exec and oracle use different schemas")
	}
	for i := 0; i < s.NumAttrs(); i++ {
		id := core.AttrID(i)
		a := s.Attr(id)
		es, os := exec.State(id), oracle.State(id)
		if a.IsTarget && !es.Stable() {
			return fmt.Errorf("snapshot: target %q not stable (state %v)", a.Name, es)
		}
		if !es.Stable() {
			continue
		}
		if es != os {
			return fmt.Errorf("snapshot: %q stabilized as %v but oracle says %v", a.Name, es, os)
		}
		if es == Value && !value.Identical(exec.Val(id), oracle.Val(id)) {
			return fmt.Errorf("snapshot: %q has value %v but oracle says %v",
				a.Name, exec.Val(id), oracle.Val(id))
		}
	}
	return nil
}

// Record is one attribute's row in the relational export of a snapshot.
type Record struct {
	Attr  string `json:"attr"`
	State string `json:"state"`
	Value string `json:"value,omitempty"`
}

// Relation exports the snapshot as a flat relation, one tuple per
// attribute — the paper's §2 observation that snapshots "provide a basis
// for reporting on the behavior of a decision flow" and feed post-hoc data
// mining of the decision policy.
func (sn *Snapshot) Relation() []Record {
	out := make([]Record, sn.schema.NumAttrs())
	for i := range out {
		id := core.AttrID(i)
		r := Record{Attr: sn.schema.Attr(id).Name, State: sn.states[id].String()}
		if sn.states[id] == Value || sn.states[id] == Computed {
			r.Value = sn.vals[id].String()
		}
		out[i] = r
	}
	return out
}
