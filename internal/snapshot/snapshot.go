// Package snapshot implements the execution-state model of decision flows:
// the seven-state attribute automaton of the paper's Figure 3, snapshots
// (state + value functions over attributes), the declarative
// complete-snapshot semantics of §2, and a checker that an execution is
// correct (compatible with the unique complete snapshot).
package snapshot

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/expr"
	"repro/internal/value"
)

// State is the execution state of one attribute (Figure 3 of the paper).
type State uint8

const (
	// Uninitialized: nothing is known yet.
	Uninitialized State = iota
	// Enabled: the enabling condition is known true, but some data inputs
	// are still unstable.
	Enabled
	// Ready: all data inputs are stable, but the enabling condition is still
	// undetermined. A Ready attribute may be evaluated *speculatively*.
	Ready
	// ReadyEnabled (READY+ENABLED): inputs stable and condition true —
	// the attribute is eligible for (non-speculative) evaluation.
	ReadyEnabled
	// Computed: the value was produced speculatively while the enabling
	// condition is still undetermined.
	Computed
	// Value: terminal — the condition is true and the value is assigned.
	Value
	// Disabled: terminal — the condition is false; the value is ⟂.
	Disabled
)

// String returns the paper's name for the state.
func (s State) String() string {
	switch s {
	case Uninitialized:
		return "UNINITIALIZED"
	case Enabled:
		return "ENABLED"
	case Ready:
		return "READY"
	case ReadyEnabled:
		return "READY+ENABLED"
	case Computed:
		return "COMPUTED"
	case Value:
		return "VALUE"
	case Disabled:
		return "DISABLED"
	default:
		return fmt.Sprintf("State(%d)", uint8(s))
	}
}

// Stable reports whether the state is terminal (VALUE or DISABLED).
// When an attribute is stable its value never changes again — the
// monotonicity property that underpins speculative execution.
func (s State) Stable() bool { return s == Value || s == Disabled }

// facts decomposes a state into its information content. A transition is
// legal iff it only adds information and stays consistent, which encodes
// the Figure 3 automaton plus its "combined event" shortcuts (e.g.
// UNINITIALIZED directly to READY+ENABLED when both facts arrive in one
// propagation pass).
type facts struct {
	ready    bool // all data inputs stable
	enabled  bool // condition determined true
	disabled bool // condition determined false
	computed bool // a value has been produced
}

func factsOf(s State) facts {
	switch s {
	case Uninitialized:
		return facts{}
	case Enabled:
		return facts{enabled: true}
	case Ready:
		return facts{ready: true}
	case ReadyEnabled:
		return facts{ready: true, enabled: true}
	case Computed:
		return facts{ready: true, computed: true}
	case Value:
		return facts{ready: true, enabled: true, computed: true}
	case Disabled:
		return facts{disabled: true}
	default:
		panic(fmt.Sprintf("snapshot: invalid state %d", s))
	}
}

// Allowed reports whether the automaton permits moving from state a to
// state b. Self-transitions are allowed (idempotent updates).
func Allowed(a, b State) bool {
	if a == b {
		return true
	}
	fa, fb := factsOf(a), factsOf(b)
	if fa.disabled {
		return false // DISABLED is terminal
	}
	if fa.enabled && fa.computed {
		return false // VALUE is terminal
	}
	if fb.disabled {
		// Disabling forgets readiness/computedness (the value is discarded)
		// but can never revoke an established true condition.
		return !fa.enabled
	}
	// Information can only grow.
	if fa.ready && !fb.ready || fa.enabled && !fb.enabled || fa.computed && !fb.computed {
		return false
	}
	return true
}

// Snapshot is a mutable execution snapshot of one decision flow instance:
// the pair (state function, value function) of the paper, over a fixed
// schema. It enforces the automaton on every update.
//
// Snapshot is not safe for concurrent mutation; the engine serializes
// updates per instance.
type Snapshot struct {
	schema   *core.Schema
	states   []State
	vals     []value.Value
	known    []bool // known[a] = states[a].Stable(), the dense slot mask
	observer Observer

	// env and inputs cache the interface boxes handed out by Env and
	// Inputs; both views are stateless beyond the snapshot pointer, so
	// one box each serves the snapshot's whole life (across Resets too).
	env    expr.Env
	inputs core.Inputs
}

// Observer is notified of every state transition an attribute makes —
// the hook behind execution tracing. from != to for every call.
type Observer func(id core.AttrID, from, to State)

// SetObserver installs (or clears, with nil) the transition observer.
func (sn *Snapshot) SetObserver(o Observer) { sn.observer = o }

// New creates the initial snapshot for an instance: sources carry the given
// values (missing sources default to ⟂, matching "a decision may have to be
// made with incomplete information"), all other attributes are
// UNINITIALIZED.
func New(s *core.Schema, sources map[string]value.Value) *Snapshot {
	sn := &Snapshot{}
	sn.Reset(s, sources)
	return sn
}

// Reset reinitializes the snapshot for a fresh instance of the schema,
// reusing the state and value storage when it is large enough. It clears
// any installed observer. The wall-clock runtime pools snapshots through
// Reset to keep its hot path allocation-free.
func (sn *Snapshot) Reset(s *core.Schema, sources map[string]value.Value) {
	sn.reset(s)
	for _, id := range s.Sources() {
		sn.states[id] = Value
		sn.vals[id] = sources[s.Attr(id).Name]
		sn.known[id] = true
	}
}

// ResetSlots is Reset with the source values supplied as a dense
// per-AttrID slice instead of a name-keyed map: slots[id] is the value of
// source attribute id, entries at non-source IDs are ignored, and a short
// slice leaves the remaining sources ⟂. The binary wire front end decodes
// (attrID, value) pairs straight into such a buffer, so instance setup
// skips the map entirely; the slice is copied out of during this call and
// may be reused by the caller afterwards.
func (sn *Snapshot) ResetSlots(s *core.Schema, slots []value.Value) {
	sn.reset(s)
	for _, id := range s.Sources() {
		sn.states[id] = Value
		if int(id) < len(slots) {
			sn.vals[id] = slots[id]
		}
		sn.known[id] = true
	}
}

// reset clears the snapshot storage for a fresh instance of s, leaving all
// attributes UNINITIALIZED; Reset/ResetSlots then promote the sources.
func (sn *Snapshot) reset(s *core.Schema) {
	n := s.NumAttrs()
	sn.schema = s
	sn.observer = nil
	if cap(sn.states) < n {
		sn.states = make([]State, n)
		sn.vals = make([]value.Value, n)
		sn.known = make([]bool, n)
	} else {
		sn.states = sn.states[:n]
		sn.vals = sn.vals[:n]
		sn.known = sn.known[:n]
		clear(sn.states)
		clear(sn.vals)
		clear(sn.known)
	}
}

// Schema returns the schema this snapshot ranges over.
func (sn *Snapshot) Schema() *core.Schema { return sn.schema }

// State returns the state of the attribute.
func (sn *Snapshot) State(id core.AttrID) State { return sn.states[id] }

// Val returns the current value of the attribute; ⟂ unless the attribute is
// in a state that carries a value (COMPUTED or VALUE) or is a source.
func (sn *Snapshot) Val(id core.AttrID) value.Value { return sn.vals[id] }

// Stable reports whether the attribute has reached a terminal state.
func (sn *Snapshot) Stable(id core.AttrID) bool { return sn.states[id].Stable() }

// Transition moves the attribute to a new state, enforcing the automaton.
// States that carry a value (COMPUTED, VALUE) must be set via SetComputed /
// SetValue instead so the value arrives with the state.
func (sn *Snapshot) Transition(id core.AttrID, to State) error {
	from := sn.states[id]
	if !Allowed(from, to) {
		return fmt.Errorf("snapshot: illegal transition %v -> %v for %q",
			from, to, sn.schema.Attr(id).Name)
	}
	if to == Disabled {
		sn.vals[id] = value.Null // a disabled attribute's value is ⟂
	}
	sn.states[id] = to
	if to.Stable() {
		sn.known[id] = true // stability is monotone: never reset
	}
	if sn.observer != nil && from != to {
		sn.observer(id, from, to)
	}
	return nil
}

// SetComputed records a speculatively computed value: READY → COMPUTED.
func (sn *Snapshot) SetComputed(id core.AttrID, v value.Value) error {
	if err := sn.Transition(id, Computed); err != nil {
		return err
	}
	sn.vals[id] = v
	return nil
}

// SetValue records the final value of an enabled attribute, entering the
// terminal VALUE state (from READY+ENABLED after task execution, or from
// COMPUTED when the condition resolves true).
func (sn *Snapshot) SetValue(id core.AttrID, v value.Value) error {
	if err := sn.Transition(id, Value); err != nil {
		return err
	}
	sn.vals[id] = v
	return nil
}

// MustTransition is Transition that panics on illegal moves; engine
// internals use it where legality is an invariant.
func (sn *Snapshot) MustTransition(id core.AttrID, to State) {
	if err := sn.Transition(id, to); err != nil {
		panic(err)
	}
}

// Terminal reports whether every target attribute is stable — the paper's
// terminal-snapshot condition for successful completion.
func (sn *Snapshot) Terminal() bool {
	for _, id := range sn.schema.Targets() {
		if !sn.states[id].Stable() {
			return false
		}
	}
	return true
}

// Env exposes the snapshot as an expression environment: an attribute is
// known iff it is stable (sources are stable from the start). COMPUTED
// values are deliberately *not* exposed — a speculative value must not
// influence condition evaluation until its own condition is resolved.
// The returned interface is cached so repeated calls don't allocate.
func (sn *Snapshot) Env() expr.Env {
	if sn.env == nil {
		sn.env = snapEnv{sn}
	}
	return sn.env
}

// Slots exposes the snapshot's dense per-attribute storage for compiled
// programs (core.CondProgram / core.ValueProgram): vals[id] is the current
// value and known[id] reports stability, exactly the Env contract in slot
// form — compiled conditions never observe a speculative COMPUTED value
// because its slot stays unknown until the condition resolves. Both slices
// are live views the snapshot keeps updating; callers must treat them as
// read-only and re-fetch after Reset.
func (sn *Snapshot) Slots() (vals []value.Value, known []bool) {
	return sn.vals, sn.known
}

type snapEnv struct{ sn *Snapshot }

func (e snapEnv) Lookup(name string) (value.Value, bool) {
	a, ok := e.sn.schema.Lookup(name)
	if !ok {
		return value.Null, false
	}
	if !e.sn.states[a.ID()].Stable() {
		return value.Null, false
	}
	return e.sn.vals[a.ID()], true
}

// Inputs exposes the stable inputs of the given attribute's task. It must
// only be used when the attribute is READY (all data inputs stable);
// unstable inputs read as ⟂. The returned interface is cached so repeated
// calls don't allocate.
func (sn *Snapshot) Inputs(id core.AttrID) core.Inputs {
	if sn.inputs == nil {
		sn.inputs = snapInputs{sn}
	}
	return sn.inputs
}

type snapInputs struct{ sn *Snapshot }

func (in snapInputs) Get(name string) value.Value {
	a, ok := in.sn.schema.Lookup(name)
	if !ok {
		return value.Null
	}
	return in.sn.vals[a.ID()]
}

// Clone returns an independent copy of the snapshot.
func (sn *Snapshot) Clone() *Snapshot {
	cp := &Snapshot{
		schema: sn.schema,
		states: append([]State(nil), sn.states...),
		vals:   append([]value.Value(nil), sn.vals...),
		known:  append([]bool(nil), sn.known...),
	}
	return cp
}

// String renders the snapshot for debugging: one "name=state(value)" per
// non-uninitialized attribute, in ID order.
func (sn *Snapshot) String() string {
	out := ""
	for i, st := range sn.states {
		if st == Uninitialized {
			continue
		}
		if out != "" {
			out += " "
		}
		out += fmt.Sprintf("%s=%s", sn.schema.Attr(core.AttrID(i)).Name, st)
		if st == Value || st == Computed {
			out += fmt.Sprintf("(%s)", sn.vals[i])
		}
	}
	return out
}
