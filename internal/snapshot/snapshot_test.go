package snapshot

import (
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/expr"
	"repro/internal/value"
)

// diamond builds the test schema:
//
//	src -> a(cost2) -> c(cost1, enabled iff a>10) -> tgt
//	src -> b(cost3) ----^ (data input of c)
//
// tgt enabled iff not isnull(c).
func diamond(t testing.TB) *core.Schema {
	t.Helper()
	return core.NewBuilder("diamond").
		Source("src").
		Foreign("a", expr.TrueExpr, []string{"src"}, 2,
			func(in core.Inputs) value.Value { return value.Mul(in.Get("src"), value.Int(2)) }).
		Foreign("b", expr.TrueExpr, []string{"src"}, 3,
			func(in core.Inputs) value.Value { return value.Add(in.Get("src"), value.Int(1)) }).
		Foreign("c", expr.MustParse("a > 10"), []string{"a", "b"}, 1,
			func(in core.Inputs) value.Value { return value.Add(in.Get("a"), in.Get("b")) }).
		Foreign("tgt", expr.MustParse("notnull(c)"), []string{"c"}, 1,
			func(in core.Inputs) value.Value { return in.Get("c") }).
		Target("tgt").
		MustBuild()
}

func TestStateString(t *testing.T) {
	names := map[State]string{
		Uninitialized: "UNINITIALIZED",
		Enabled:       "ENABLED",
		Ready:         "READY",
		ReadyEnabled:  "READY+ENABLED",
		Computed:      "COMPUTED",
		Value:         "VALUE",
		Disabled:      "DISABLED",
	}
	for s, want := range names {
		if s.String() != want {
			t.Errorf("State(%d).String() = %q, want %q", s, s.String(), want)
		}
	}
	if !strings.Contains(State(42).String(), "42") {
		t.Error("invalid state should render its number")
	}
}

func TestStableStates(t *testing.T) {
	for _, s := range []State{Uninitialized, Enabled, Ready, ReadyEnabled, Computed} {
		if s.Stable() {
			t.Errorf("%v should not be stable", s)
		}
	}
	if !Value.Stable() || !Disabled.Stable() {
		t.Error("VALUE and DISABLED must be stable")
	}
}

func TestAllowedTransitions(t *testing.T) {
	type tr struct {
		from, to State
		ok       bool
	}
	cases := []tr{
		// Figure 3 edges.
		{Uninitialized, Enabled, true},
		{Uninitialized, Ready, true},
		{Uninitialized, Disabled, true},
		{Enabled, ReadyEnabled, true},
		{Ready, ReadyEnabled, true},
		{Ready, Computed, true},
		{Ready, Disabled, true},
		{ReadyEnabled, Value, true},
		{Computed, Value, true},
		{Computed, Disabled, true},
		// Combined-event shortcuts.
		{Uninitialized, ReadyEnabled, true},
		{Uninitialized, Value, true},
		{Enabled, Value, true},
		{Ready, Value, true},
		// Self loops.
		{Ready, Ready, true},
		{Value, Value, true},
		// Illegal: terminal states cannot move.
		{Value, Disabled, false},
		{Value, Ready, false},
		{Disabled, Value, false},
		{Disabled, Ready, false},
		{Disabled, Uninitialized, false},
		// Illegal: information cannot be forgotten.
		{Ready, Uninitialized, false},
		{Enabled, Ready, false}, // would forget enabledness
		{ReadyEnabled, Ready, false},
		{ReadyEnabled, Computed, false}, // would forget enabledness
		{Computed, Ready, false},
		// Illegal: a true condition cannot become false.
		{Enabled, Disabled, false},
		{ReadyEnabled, Disabled, false},
	}
	for _, c := range cases {
		if got := Allowed(c.from, c.to); got != c.ok {
			t.Errorf("Allowed(%v, %v) = %v, want %v", c.from, c.to, got, c.ok)
		}
	}
}

func TestNewSnapshotSources(t *testing.T) {
	s := diamond(t)
	sn := New(s, map[string]value.Value{"src": value.Int(7)})
	src := s.MustLookup("src")
	if sn.State(src.ID()) != Value {
		t.Error("source must start in VALUE")
	}
	if !value.Identical(sn.Val(src.ID()), value.Int(7)) {
		t.Error("source value wrong")
	}
	a := s.MustLookup("a")
	if sn.State(a.ID()) != Uninitialized {
		t.Error("non-source must start UNINITIALIZED")
	}
	// Missing source defaults to ⟂ but still VALUE.
	sn2 := New(s, nil)
	if sn2.State(src.ID()) != Value || !sn2.Val(src.ID()).IsNull() {
		t.Error("missing source should be stable ⟂")
	}
}

func TestTransitionEnforcement(t *testing.T) {
	s := diamond(t)
	sn := New(s, map[string]value.Value{"src": value.Int(7)})
	a := s.MustLookup("a").ID()
	if err := sn.Transition(a, Ready); err != nil {
		t.Fatal(err)
	}
	if err := sn.SetComputed(a, value.Int(14)); err != nil {
		t.Fatal(err)
	}
	if sn.State(a) != Computed || !value.Identical(sn.Val(a), value.Int(14)) {
		t.Error("computed state/value wrong")
	}
	if err := sn.SetValue(a, value.Int(14)); err != nil {
		t.Fatal(err)
	}
	if err := sn.Transition(a, Disabled); err == nil {
		t.Error("VALUE -> DISABLED must fail")
	}
	b := s.MustLookup("b").ID()
	if err := sn.Transition(b, Enabled); err != nil {
		t.Fatal(err)
	}
	if err := sn.Transition(b, Disabled); err == nil {
		t.Error("ENABLED -> DISABLED must fail")
	}
}

func TestDisableClearsValue(t *testing.T) {
	s := diamond(t)
	sn := New(s, nil)
	c := s.MustLookup("c").ID()
	sn.MustTransition(c, Ready)
	if err := sn.SetComputed(c, value.Int(99)); err != nil {
		t.Fatal(err)
	}
	sn.MustTransition(c, Disabled)
	if !sn.Val(c).IsNull() {
		t.Error("disabling must reset the value to ⟂")
	}
}

func TestMustTransitionPanics(t *testing.T) {
	s := diamond(t)
	sn := New(s, nil)
	a := s.MustLookup("a").ID()
	sn.MustTransition(a, Disabled)
	defer func() {
		if recover() == nil {
			t.Error("MustTransition on terminal state should panic")
		}
	}()
	sn.MustTransition(a, Ready)
}

func TestEnvExposesOnlyStable(t *testing.T) {
	s := diamond(t)
	sn := New(s, map[string]value.Value{"src": value.Int(7)})
	env := sn.Env()
	if _, known := env.Lookup("a"); known {
		t.Error("uninitialized attr must be unknown")
	}
	if v, known := env.Lookup("src"); !known || !value.Identical(v, value.Int(7)) {
		t.Error("source must be known")
	}
	a := s.MustLookup("a").ID()
	sn.MustTransition(a, Ready)
	if err := sn.SetComputed(a, value.Int(14)); err != nil {
		t.Fatal(err)
	}
	if _, known := env.Lookup("a"); known {
		t.Error("COMPUTED (speculative) value must not be visible to conditions")
	}
	if err := sn.SetValue(a, value.Int(14)); err != nil {
		t.Fatal(err)
	}
	if v, known := env.Lookup("a"); !known || !value.Identical(v, value.Int(14)) {
		t.Error("VALUE attr must be visible")
	}
	if _, known := env.Lookup("ghost"); known {
		t.Error("unknown attribute name must be unknown")
	}
}

func TestTerminal(t *testing.T) {
	s := diamond(t)
	sn := New(s, map[string]value.Value{"src": value.Int(7)})
	if sn.Terminal() {
		t.Error("fresh snapshot must not be terminal")
	}
	tgt := s.MustLookup("tgt").ID()
	sn.MustTransition(tgt, Disabled)
	if !sn.Terminal() {
		t.Error("all targets stable -> terminal")
	}
}

func TestCompleteOracleEnabledPath(t *testing.T) {
	s := diamond(t)
	// src=7: a=14 (>10) so c enabled: c=14+8=22; tgt=22.
	sn := Complete(s, map[string]value.Value{"src": value.Int(7)})
	want := map[string]value.Value{
		"a":   value.Int(14),
		"b":   value.Int(8),
		"c":   value.Int(22),
		"tgt": value.Int(22),
	}
	for name, wv := range want {
		id := s.MustLookup(name).ID()
		if sn.State(id) != Value {
			t.Errorf("%s state = %v, want VALUE", name, sn.State(id))
		}
		if !value.Identical(sn.Val(id), wv) {
			t.Errorf("%s = %v, want %v", name, sn.Val(id), wv)
		}
	}
	if !sn.Terminal() {
		t.Error("complete snapshot must be terminal")
	}
}

func TestCompleteOracleDisabledPath(t *testing.T) {
	s := diamond(t)
	// src=3: a=6 (not >10) so c disabled; tgt's cond notnull(c) false -> disabled.
	sn := Complete(s, map[string]value.Value{"src": value.Int(3)})
	c := s.MustLookup("c").ID()
	tgt := s.MustLookup("tgt").ID()
	if sn.State(c) != Disabled || !sn.Val(c).IsNull() {
		t.Error("c should be DISABLED with ⟂")
	}
	if sn.State(tgt) != Disabled {
		t.Error("tgt should be DISABLED (forward propagation in semantics)")
	}
}

func TestCompleteOracleNullSource(t *testing.T) {
	s := diamond(t)
	// src=⟂: a=⟂*2=⟂; a>10 false -> c disabled; tgt disabled.
	sn := Complete(s, nil)
	a := s.MustLookup("a").ID()
	if sn.State(a) != Value || !sn.Val(a).IsNull() {
		t.Error("a should be VALUE ⟂ (task executed over ⟂ input)")
	}
	if sn.State(s.MustLookup("c").ID()) != Disabled {
		t.Error("c should be DISABLED")
	}
}

func TestCheckAgainstOracle(t *testing.T) {
	s := diamond(t)
	srcs := map[string]value.Value{"src": value.Int(7)}
	oracle := Complete(s, srcs)

	// A faithful partial execution: targets stable and consistent.
	exec := New(s, srcs)
	for _, name := range []string{"a", "b", "c", "tgt"} {
		id := s.MustLookup(name).ID()
		exec.MustTransition(id, ReadyEnabled)
		if err := exec.SetValue(id, oracle.Val(id)); err != nil {
			t.Fatal(err)
		}
	}
	if err := CheckAgainstOracle(exec, oracle); err != nil {
		t.Errorf("faithful execution rejected: %v", err)
	}

	// Unstable target must be rejected.
	exec2 := New(s, srcs)
	if err := CheckAgainstOracle(exec2, oracle); err == nil {
		t.Error("unstable target should be rejected")
	}

	// Wrong value must be rejected.
	exec3 := New(s, srcs)
	for _, name := range []string{"a", "b", "c"} {
		id := s.MustLookup(name).ID()
		exec3.MustTransition(id, ReadyEnabled)
		if err := exec3.SetValue(id, oracle.Val(id)); err != nil {
			t.Fatal(err)
		}
	}
	tgt := s.MustLookup("tgt").ID()
	exec3.MustTransition(tgt, ReadyEnabled)
	if err := exec3.SetValue(tgt, value.Int(-1)); err != nil {
		t.Fatal(err)
	}
	if err := CheckAgainstOracle(exec3, oracle); err == nil {
		t.Error("wrong target value should be rejected")
	}

	// Wrong state (disabled vs oracle value) must be rejected.
	exec4 := New(s, srcs)
	exec4.MustTransition(tgt, Disabled)
	if err := CheckAgainstOracle(exec4, oracle); err == nil {
		t.Error("wrong stable state should be rejected")
	}
}

func TestCheckDifferentSchemas(t *testing.T) {
	s1, s2 := diamond(t), diamond(t)
	if err := CheckAgainstOracle(New(s1, nil), New(s2, nil)); err == nil {
		t.Error("different schema instances should be rejected")
	}
}

func TestClone(t *testing.T) {
	s := diamond(t)
	sn := New(s, map[string]value.Value{"src": value.Int(7)})
	cp := sn.Clone()
	a := s.MustLookup("a").ID()
	sn.MustTransition(a, Disabled)
	if cp.State(a) != Uninitialized {
		t.Error("clone must be independent")
	}
}

func TestRelationExport(t *testing.T) {
	s := diamond(t)
	sn := Complete(s, map[string]value.Value{"src": value.Int(7)})
	rel := sn.Relation()
	if len(rel) != s.NumAttrs() {
		t.Fatalf("relation size = %d", len(rel))
	}
	found := false
	for _, r := range rel {
		if r.Attr == "c" {
			found = true
			if r.State != "VALUE" || r.Value != "22" {
				t.Errorf("record for c = %+v", r)
			}
		}
	}
	if !found {
		t.Error("relation missing attribute c")
	}
}

func TestSnapshotString(t *testing.T) {
	s := diamond(t)
	sn := Complete(s, map[string]value.Value{"src": value.Int(7)})
	str := sn.String()
	if !strings.Contains(str, "c=VALUE(22)") {
		t.Errorf("String() = %q", str)
	}
}

func TestInputsReadUnstableAsNull(t *testing.T) {
	s := diamond(t)
	sn := New(s, map[string]value.Value{"src": value.Int(7)})
	in := sn.Inputs(s.MustLookup("c").ID())
	if !in.Get("a").IsNull() {
		t.Error("unstable input should read ⟂")
	}
	if !in.Get("ghost").IsNull() {
		t.Error("unknown input should read ⟂")
	}
	if !value.Identical(in.Get("src"), value.Int(7)) {
		t.Error("stable input should read its value")
	}
}

// Oracle determinism: same sources, same snapshot.
func TestCompleteDeterministic(t *testing.T) {
	s := diamond(t)
	for _, src := range []int64{0, 3, 5, 6, 7, 100} {
		a := Complete(s, map[string]value.Value{"src": value.Int(src)})
		b := Complete(s, map[string]value.Value{"src": value.Int(src)})
		for i := 0; i < s.NumAttrs(); i++ {
			id := core.AttrID(i)
			if a.State(id) != b.State(id) || !value.Identical(a.Val(id), b.Val(id)) {
				t.Fatalf("oracle nondeterministic at src=%d attr=%d", src, i)
			}
		}
	}
}
