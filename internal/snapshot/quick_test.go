package snapshot

import (
	"testing"
	"testing/quick"
)

var allStates = []State{Uninitialized, Enabled, Ready, ReadyEnabled, Computed, Value, Disabled}

func stateFrom(b byte) State { return allStates[int(b)%len(allStates)] }

// Property: Allowed is reflexive.
func TestQuickAllowedReflexive(t *testing.T) {
	f := func(b byte) bool { return Allowed(stateFrom(b), stateFrom(b)) }
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: terminal states admit no outgoing transitions (other than
// self).
func TestQuickTerminalAbsorbing(t *testing.T) {
	f := func(b byte) bool {
		to := stateFrom(b)
		for _, from := range []State{Value, Disabled} {
			if to != from && Allowed(from, to) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: transitive closure stays legal along Figure 3's forward
// direction — if a→b and b→c are allowed and b is not terminal, then the
// information ordering implies a→c is allowed too (the automaton is a
// partial order plus the disable escape).
func TestQuickAllowedTransitiveOnInfoGrowth(t *testing.T) {
	f := func(x, y, z byte) bool {
		a, b, c := stateFrom(x), stateFrom(y), stateFrom(z)
		if !Allowed(a, b) || !Allowed(b, c) {
			return true // premise fails: vacuous
		}
		return Allowed(a, c)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

// Property: no state can both precede ENABLED-carrying states and later be
// DISABLED — i.e. if Allowed(s, Disabled) then s carries no established
// true condition (ENABLED, READY+ENABLED and VALUE are excluded).
func TestQuickDisableOnlyWithoutEnabled(t *testing.T) {
	f := func(b byte) bool {
		s := stateFrom(b)
		if !Allowed(s, Disabled) {
			return true
		}
		switch s {
		case Enabled, ReadyEnabled, Value:
			return false
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
