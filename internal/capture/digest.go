// Decision digests: a 64-bit fingerprint of what an eval decided, folded
// so the capturing server, a replaying client on either wire, and a
// virtual-time re-execution all compute the same bits for the same
// decision. FNV-1a over the target values in name order plus the instance
// error, with every value first canonicalized the way a JSON round trip
// canonicalizes it (api.FromJSON ∘ api.ToJSON): an integral float folds as
// the integer, because that is what an HTTP client receives back. The fold
// is a plain accumulator — no hash.Hash allocation, so the capture hook
// can digest on the Done callback without touching the heap.
package capture

import (
	"math"
	"sort"

	"repro/internal/api"
	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/value"
)

// Digest is a running FNV-1a 64 decision digest. The zero value is NOT
// ready to use; start from New().
type Digest uint64

const (
	fnvOffset64 = 14695981039346656037
	fnvPrime64  = 1099511628211
)

// New returns the empty digest.
func New() Digest { return fnvOffset64 }

func (d Digest) fold(b byte) Digest { return Digest((uint64(d) ^ uint64(b)) * fnvPrime64) }

func (d Digest) u64(x uint64) Digest {
	for i := 0; i < 8; i++ {
		d = d.fold(byte(x >> (8 * i)))
	}
	return d
}

func (d Digest) str(s string) Digest {
	d = d.u64(uint64(len(s)))
	for i := 0; i < len(s); i++ {
		d = d.fold(s[i])
	}
	return d
}

// val folds one canonicalized value: a tag byte, then the content. An
// integral float folds identically to the integer (ToJSON emits it as a
// bare JSON number, so the far side decodes an int); a non-integral float
// folds its IEEE bits, which survive a JSON round trip because
// encoding/json emits the shortest representation that parses back to the
// same float64. Known gaps, shared by the wire itself: NaN and ±Inf do
// not survive HTTP JSON, and an int beyond 2^53 loses precision there —
// both are exotic for decision targets and replay across the binary wire
// is exact.
func (d Digest) val(v value.Value) Digest {
	switch v.Kind() {
	case value.KindBool:
		if b, _ := v.AsBool(); b {
			return d.fold(2)
		}
		return d.fold(1)
	case value.KindInt:
		i, _ := v.AsInt()
		return d.fold(3).u64(uint64(i))
	case value.KindFloat:
		f, _ := v.AsFloat()
		if i := int64(f); f == float64(i) {
			return d.fold(3).u64(uint64(i))
		}
		return d.fold(4).u64(math.Float64bits(f))
	case value.KindString:
		s, _ := v.AsString()
		return d.fold(5).str(s)
	case value.KindList:
		elems, _ := v.AsList()
		d = d.fold(6).u64(uint64(len(elems)))
		for _, e := range elems {
			d = d.val(e)
		}
		return d
	default: // null / unknown fold as ⟂
		return d.fold(0)
	}
}

// Target folds one named target value. Callers must fold targets in
// ascending name order — the digest is order-sensitive by design, and the
// sort is the one convention every party shares.
func (d Digest) Target(name string, v value.Value) Digest {
	return d.str(name).val(v)
}

// Error folds the instance error message ("" when the eval succeeded).
// Fold it exactly once, after the targets.
func (d Digest) Error(msg string) Digest { return d.str(msg) }

// Sum returns the finished digest.
func (d Digest) Sum() uint64 { return uint64(d) }

// DigestEval recomputes the decision digest from a wire-form EvalResult —
// what dfreplay compares against the recorded digest after re-issuing an
// instance over HTTP or dfbin.
func DigestEval(res *api.EvalResult) (uint64, error) {
	names := make([]string, 0, len(res.Values))
	for name := range res.Values {
		names = append(names, name)
	}
	sort.Strings(names)
	d := New()
	for _, name := range names {
		v, err := api.FromJSON(res.Values[name])
		if err != nil {
			return 0, err
		}
		d = d.Target(name, v)
	}
	return d.Error(res.Error).Sum(), nil
}

// TargetOrder returns the schema's target attribute IDs in ascending name
// order — the fold order for DigestResult and the server's capture hook
// (which precomputes it per registry entry).
func TargetOrder(s *core.Schema) ([]core.AttrID, []string) {
	// Targets() exposes the schema's own slice; sort a copy.
	ids := append([]core.AttrID(nil), s.Targets()...)
	names := make([]string, len(ids))
	for i, id := range ids {
		names[i] = s.Attr(id).Name
	}
	sort.Sort(&byName{ids: ids, names: names})
	return ids, names
}

type byName struct {
	ids   []core.AttrID
	names []string
}

func (b *byName) Len() int           { return len(b.ids) }
func (b *byName) Less(i, j int) bool { return b.names[i] < b.names[j] }
func (b *byName) Swap(i, j int) {
	b.ids[i], b.ids[j] = b.ids[j], b.ids[i]
	b.names[i], b.names[j] = b.names[j], b.names[i]
}

// DigestResult computes the decision digest of an engine result against
// s — the virtual-replay side of the comparison. It must equal what the
// capturing server recorded for the same sources iff the schema decides
// the same way.
func DigestResult(s *core.Schema, res *engine.Result) uint64 {
	ids, names := TargetOrder(s)
	d := New()
	for i, id := range ids {
		d = d.Target(names[i], res.Snapshot.Val(id))
	}
	msg := ""
	if res.Err != nil {
		msg = res.Err.Error()
	}
	return d.Error(msg).Sum()
}
