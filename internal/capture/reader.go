package capture

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"repro/internal/api"
)

// ReadResult is a decoded capture: every record across every file of a
// capture directory, in file-sequence then append order, plus the damage
// accounting a replay driver reports before trusting the data.
type ReadResult struct {
	Records []api.CaptureRecord
	// Files is the number of capture files read.
	Files int
	// TornFiles counts files that ended in a torn record — expected after
	// a crash or a faulted append; the complete prefix is kept.
	TornFiles int
	// TornBytes is the total bytes discarded as torn tails.
	TornBytes int64
}

// Read loads a capture from path: a capture directory (every *.dfcap file
// in sequence order) or a single capture file. A torn tail truncates that
// file's records and is counted, mirroring WAL recovery; a corrupt record
// in the middle of a file is an error — replaying silently past damage
// would fabricate a workload.
func Read(path string) (*ReadResult, error) {
	info, err := os.Stat(path)
	if err != nil {
		return nil, fmt.Errorf("capture: %w", err)
	}
	files := []string{path}
	if info.IsDir() {
		ents, err := os.ReadDir(path)
		if err != nil {
			return nil, fmt.Errorf("capture: %w", err)
		}
		files = files[:0]
		for _, e := range ents {
			if !e.IsDir() && strings.HasSuffix(e.Name(), FileSuffix) {
				files = append(files, filepath.Join(path, e.Name()))
			}
		}
		if len(files) == 0 {
			return nil, fmt.Errorf("capture: no %s files in %s", FileSuffix, path)
		}
		sortFiles(files)
	}
	res := &ReadResult{}
	for _, name := range files {
		if err := res.readFile(name); err != nil {
			return nil, err
		}
	}
	return res, nil
}

func (r *ReadResult) readFile(name string) error {
	b, err := os.ReadFile(name)
	if err != nil {
		return fmt.Errorf("capture: %w", err)
	}
	if len(b) < len(api.CaptureMagic) || string(b[:len(api.CaptureMagic)]) != api.CaptureMagic {
		return fmt.Errorf("capture: %s: not a capture file (bad magic)", name)
	}
	b = b[len(api.CaptureMagic):]
	r.Files++
	for len(b) > 0 {
		rec, n, err := api.DecodeCaptureRecord(b)
		switch {
		case err == nil:
			r.Records = append(r.Records, rec)
			b = b[n:]
		case errors.Is(err, api.ErrCaptureTorn):
			r.TornFiles++
			r.TornBytes += int64(len(b))
			return nil
		default:
			return fmt.Errorf("capture: %s: record %d: %w", name, len(r.Records), err)
		}
	}
	return nil
}
