package capture

import (
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"repro/internal/api"
	"repro/internal/engine"
	"repro/internal/fault"
	"repro/internal/flows"
	"repro/internal/value"
)

func testRecord(i int) api.CaptureRecord {
	return api.CaptureRecord{
		MonoNs:      uint64(i) * 1000,
		WallNs:      uint64(1700000000000000000 + i),
		Tenant:      fmt.Sprintf("tenant-%d", i%3),
		Schema:      "quickstart",
		Version:     1,
		Fingerprint: 0xfeed,
		Strategy:    "PSE100",
		Sources: []api.CaptureSource{
			{Name: "customer_id", Val: value.Int(int64(i))},
		},
		Digest: uint64(i) * 7,
	}
}

// enqueue encodes and enqueues one record, failing the test on a ring drop
// (tests size their rings to never drop unless dropping is the point).
func enqueue(t *testing.T, w *Writer, rec api.CaptureRecord) {
	t.Helper()
	if !w.Enqueue(api.AppendCaptureRecord(w.Buf(), &rec)) {
		t.Fatal("ring full")
	}
}

func TestWriterRoundTrip(t *testing.T) {
	dir := t.TempDir()
	w, err := NewWriter(Config{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	const n = 500
	for i := 0; i < n; i++ {
		enqueue(t, w, testRecord(i))
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	st := w.Stats()
	if st.Appended != n || st.Dropped() != 0 {
		t.Fatalf("stats: %+v", st)
	}
	res, err := Read(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Records) != n || res.TornFiles != 0 {
		t.Fatalf("read %d records (%d torn files), want %d", len(res.Records), res.TornFiles, n)
	}
	for i, rec := range res.Records {
		want := testRecord(i)
		if rec.MonoNs != want.MonoNs || rec.Tenant != want.Tenant || rec.Digest != want.Digest {
			t.Fatalf("record %d: got %+v want %+v", i, rec, want)
		}
	}
}

// Rotation: a tiny RotateBytes forces many files; every record must
// survive across the seals, in order, and restarting a writer in the same
// directory must append new files, never clobber old ones.
func TestWriterRotationAndRestart(t *testing.T) {
	dir := t.TempDir()
	w, err := NewWriter(Config{Dir: dir, RotateBytes: 256})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 100; i++ {
		enqueue(t, w, testRecord(i))
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	firstFiles := w.Stats().Files
	if firstFiles < 2 {
		t.Fatalf("expected rotation, got %d files", firstFiles)
	}

	w2, err := NewWriter(Config{Dir: dir, RotateBytes: 256})
	if err != nil {
		t.Fatal(err)
	}
	for i := 100; i < 150; i++ {
		enqueue(t, w2, testRecord(i))
	}
	if err := w2.Close(); err != nil {
		t.Fatal(err)
	}

	res, err := Read(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Records) != 150 {
		t.Fatalf("read %d records, want 150", len(res.Records))
	}
	for i, rec := range res.Records {
		if rec.MonoNs != uint64(i)*1000 {
			t.Fatalf("record %d out of order: MonoNs=%d", i, rec.MonoNs)
		}
	}
}

// A full ring drops and counts — never blocks. The writer is wedged by
// arming a long delay on the append site so the ring genuinely backs up.
func TestWriterRingFullDrops(t *testing.T) {
	defer fault.Reset()
	dir := t.TempDir()
	w, err := NewWriter(Config{Dir: dir, Ring: 4})
	if err != nil {
		t.Fatal(err)
	}
	if err := fault.Arm(fault.SiteCaptureAppendWrite, "delay:200ms"); err != nil {
		t.Fatal(err)
	}
	start := time.Now()
	dropped := 0
	for i := 0; i < 64; i++ {
		if !w.Enqueue(api.AppendCaptureRecord(w.Buf(), testRecordPtr(i))) {
			dropped++
		}
	}
	if elapsed := time.Since(start); elapsed > 100*time.Millisecond {
		t.Fatalf("Enqueue blocked for %v with a wedged disk", elapsed)
	}
	if dropped == 0 || w.Stats().DroppedRing == 0 {
		t.Fatalf("expected ring drops, got %d (stats %+v)", dropped, w.Stats())
	}
	fault.Reset()
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
}

func testRecordPtr(i int) *api.CaptureRecord {
	r := testRecord(i)
	return &r
}

// Disk faults degrade the capture — drop, count, sticky error — and the
// writer abandons the faulted file and recovers onto a fresh one.
func TestWriterIOFaultDegradesAndRecovers(t *testing.T) {
	defer fault.Reset()
	dir := t.TempDir()
	w, err := NewWriter(Config{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	enqueue(t, w, testRecord(0))
	waitFor(t, func() bool { return w.Stats().Appended == 1 })

	if err := fault.Arm(fault.SiteCaptureAppendWrite, "error"); err != nil {
		t.Fatal(err)
	}
	enqueue(t, w, testRecord(1))
	waitFor(t, func() bool { return w.Stats().DroppedIO == 1 })
	if st := w.Stats(); st.Err == "" {
		t.Fatalf("no sticky error after IO fault: %+v", st)
	}
	fault.Reset()

	enqueue(t, w, testRecord(2))
	waitFor(t, func() bool { return w.Stats().Appended == 2 })
	// Close still reports the degradation even after recovery.
	if err := w.Close(); err == nil {
		t.Fatal("Close did not report the degraded capture")
	}
	res, err := Read(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Records) != 2 {
		t.Fatalf("read %d records, want 2 (record 1 dropped)", len(res.Records))
	}
	if res.Records[0].MonoNs != 0 || res.Records[1].MonoNs != 2000 {
		t.Fatalf("wrong survivors: %+v", res.Records)
	}
}

func waitFor(t *testing.T, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatal("condition not reached")
		}
		time.Sleep(time.Millisecond)
	}
}

// A torn tail — the signature of a crash mid-append — truncates to the
// complete prefix and is counted, never an error; a corrupt record in the
// middle is an error.
func TestReadTornAndCorrupt(t *testing.T) {
	dir := t.TempDir()
	w, err := NewWriter(Config{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		enqueue(t, w, testRecord(i))
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	var name string
	ents, _ := os.ReadDir(dir)
	for _, e := range ents {
		if strings.HasSuffix(e.Name(), FileSuffix) {
			name = filepath.Join(dir, e.Name())
		}
	}
	b, err := os.ReadFile(name)
	if err != nil {
		t.Fatal(err)
	}

	if err := os.WriteFile(name, b[:len(b)-3], 0o644); err != nil {
		t.Fatal(err)
	}
	res, err := Read(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Records) != 9 || res.TornFiles != 1 || res.TornBytes == 0 {
		t.Fatalf("torn tail: %d records, %d torn files, %d torn bytes",
			len(res.Records), res.TornFiles, res.TornBytes)
	}

	mut := append([]byte(nil), b...)
	mut[len(api.CaptureMagic)+8] ^= 0x40 // inside the first record's payload
	if err := os.WriteFile(name, mut, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Read(dir); err == nil || !errors.Is(err, api.ErrCaptureCorrupt) {
		t.Fatalf("mid-file corruption: got %v, want ErrCaptureCorrupt", err)
	}

	if err := os.WriteFile(name, []byte("not a capture"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Read(dir); err == nil || !strings.Contains(err.Error(), "bad magic") {
		t.Fatalf("bad magic: got %v", err)
	}
}

// The digest must agree across every path that computes it: the engine
// result (what the capturing server and virtual replay fold) and the
// wire-form EvalResult after a JSON round trip (what a live replay over
// HTTP folds). Int/float canonicalization is the trap this pins.
func TestDigestConsistencyAcrossPaths(t *testing.T) {
	s, sources, err := flows.ByName("quickstart")
	if err != nil {
		t.Fatal(err)
	}
	res := engine.Run(s, sources, engine.MustParseStrategy("PSE100"))
	if res.Err != nil {
		t.Fatal(res.Err)
	}
	want := DigestResult(s, res)

	// Re-fold twice: determinism of the fold itself.
	if again := DigestResult(s, res); again != want {
		t.Fatalf("DigestResult not deterministic: %x vs %x", again, want)
	}

	// Build the wire form the way the server does (api.ToJSON per target),
	// push it through a real JSON round trip, and fold the client side.
	vals := make(map[string]any)
	ids, names := TargetOrder(s)
	for i, id := range ids {
		vals[names[i]] = api.ToJSON(res.Snapshot.Val(id))
	}
	wire, err := json.Marshal(api.EvalResult{Values: vals})
	if err != nil {
		t.Fatal(err)
	}
	var decoded api.EvalResult
	if err := json.Unmarshal(wire, &decoded); err != nil {
		t.Fatal(err)
	}
	got, err := DigestEval(&decoded)
	if err != nil {
		t.Fatal(err)
	}
	if got != want {
		t.Fatalf("digest diverges across JSON round trip: %016x vs %016x", got, want)
	}
}

// Integral floats fold as their integer — the canonical form a JSON round
// trip produces — and non-integral floats fold their bits.
func TestDigestCanonicalization(t *testing.T) {
	if a, b := New().val(value.Float(2.0)), New().val(value.Int(2)); a != b {
		t.Fatalf("Float(2.0) folds %x, Int(2) folds %x", a, b)
	}
	if a, b := New().val(value.Float(2.5)), New().val(value.Int(2)); a == b {
		t.Fatal("Float(2.5) must not fold like Int(2)")
	}
	if a, b := New().val(value.Str("2")), New().val(value.Int(2)); a == b {
		t.Fatal("Str(\"2\") must not fold like Int(2)")
	}
	// Error vs target fold positions must not collide.
	if a, b := New().Target("x", value.Null).Error(""), New().Error("x"); a == b {
		t.Fatal("target/error folds collide")
	}
}
