// Package capture records admitted evals to disk for later replay and
// reads them back. The writer is strictly off the serving latency path:
// the hot path encodes a record into a pooled buffer and hands it to a
// bounded ring (a buffered channel); one background goroutine drains the
// ring to size-rotated files. Capture is best-effort by contract — the
// opposite of the registry WAL's fail-closed poisoning. When the ring is
// full or the disk faults, the record is dropped and counted, serving
// never blocks and never sees an error. A capture is an observability
// artifact; a hole in it is a counter, not an outage.
package capture

import (
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"sync/atomic"

	"repro/internal/api"
	"repro/internal/fault"
)

// FileSuffix names capture files: capture-<seq>.dfcap under Config.Dir.
const FileSuffix = ".dfcap"

// Config configures a Writer.
type Config struct {
	// Dir is the capture directory; created if absent. Files are named
	// capture-<seq>.dfcap with seq continuing past files already present,
	// so restarts append new files rather than clobbering a prior capture.
	Dir string
	// RotateBytes seals the current file and opens the next one once it
	// exceeds this size (0 = 64 MiB).
	RotateBytes int64
	// Ring is the capacity of the hand-off ring between the serving hot
	// path and the disk goroutine (0 = 1024). When the ring is full,
	// records are dropped and counted.
	Ring int
}

// Stats is a point-in-time snapshot of a Writer's counters, surfaced
// under /v1/stats.
type Stats struct {
	// Appended counts records written to the current or a sealed file.
	Appended uint64
	// DroppedRing counts records dropped because the ring was full —
	// the disk could not keep up with the admission rate.
	DroppedRing uint64
	// DroppedIO counts records dropped because a file operation failed.
	DroppedIO uint64
	// Files counts capture files this writer has opened.
	Files uint64
	// Bytes counts record bytes successfully written (excluding headers).
	Bytes uint64
	// Err is the sticky most-recent IO error ("" when healthy). A
	// non-empty Err means the capture is degraded; serving is unaffected.
	Err string
}

// Dropped is the total records lost for any reason.
func (s Stats) Dropped() uint64 { return s.DroppedRing + s.DroppedIO }

// Writer appends capture records asynchronously. All exported methods are
// safe for concurrent use; a nil *Writer is a valid "capture off" writer
// whose Enabled reports false.
type Writer struct {
	cfg  Config
	fs   fault.FS
	ring chan []byte
	pool sync.Pool
	quit chan struct{}
	wg   sync.WaitGroup

	appended    atomic.Uint64
	droppedRing atomic.Uint64
	droppedIO   atomic.Uint64
	files       atomic.Uint64
	bytes       atomic.Uint64
	lastErr     atomic.Pointer[string]

	// Owned by the drain goroutine.
	file    *fault.File
	written int64
	seq     int
}

// NewWriter opens a capture writer over cfg.Dir. The directory is created
// if needed; an unusable directory is the one capture error that is
// surfaced synchronously — the operator asked for a capture and should
// learn at startup, not from a counter, that it cannot exist at all.
func NewWriter(cfg Config) (*Writer, error) {
	if cfg.Dir == "" {
		return nil, fmt.Errorf("capture: Config.Dir is required")
	}
	if cfg.RotateBytes <= 0 {
		cfg.RotateBytes = 64 << 20
	}
	if cfg.Ring <= 0 {
		cfg.Ring = 1024
	}
	if err := os.MkdirAll(cfg.Dir, 0o755); err != nil {
		return nil, fmt.Errorf("capture: %w", err)
	}
	w := &Writer{
		cfg:  cfg,
		ring: make(chan []byte, cfg.Ring),
		quit: make(chan struct{}),
		seq:  nextSeq(cfg.Dir),
	}
	w.pool.New = func() any { return []byte(nil) }
	w.wg.Add(1)
	go w.drain()
	return w, nil
}

// nextSeq scans dir for existing capture files and returns the first
// unused sequence number.
func nextSeq(dir string) int {
	ents, err := os.ReadDir(dir)
	if err != nil {
		return 0
	}
	next := 0
	for _, e := range ents {
		var n int
		if _, err := fmt.Sscanf(e.Name(), "capture-%d"+FileSuffix, &n); err == nil && n >= next {
			next = n + 1
		}
	}
	return next
}

// Enabled reports whether capture is on; nil-receiver safe, so call sites
// can hold a possibly-nil *Writer and skip all capture work on one
// comparison.
func (w *Writer) Enabled() bool { return w != nil }

// Buf returns a pooled buffer to encode a record into; hand it to Enqueue
// (which recycles it) whether or not the enqueue is accepted.
func (w *Writer) Buf() []byte {
	return w.pool.Get().([]byte)[:0]
}

// Enqueue hands one encoded record to the disk goroutine without ever
// blocking: if the ring is full the record is dropped and counted. The
// buffer must come from Buf and must not be touched after the call.
func (w *Writer) Enqueue(b []byte) bool {
	select {
	case w.ring <- b:
		return true
	default:
		w.droppedRing.Add(1)
		w.pool.Put(b)
		return false
	}
}

// Stats snapshots the counters.
func (w *Writer) Stats() Stats {
	st := Stats{
		Appended:    w.appended.Load(),
		DroppedRing: w.droppedRing.Load(),
		DroppedIO:   w.droppedIO.Load(),
		Files:       w.files.Load(),
		Bytes:       w.bytes.Load(),
	}
	if p := w.lastErr.Load(); p != nil {
		st.Err = *p
	}
	return st
}

// Close stops the drain goroutine, flushes every record already in the
// ring, and seals the current file (fsync + close). The server calls it
// after its eval WaitGroup drains, so no capture hook can race the seal;
// a straggler Enqueue after Close does not panic — its record is simply
// never drained.
func (w *Writer) Close() error {
	close(w.quit)
	w.wg.Wait()
	if p := w.lastErr.Load(); p != nil {
		return fmt.Errorf("capture: degraded: %s", *p)
	}
	return nil
}

// drain is the disk goroutine: records in, rotated files out. Every IO
// failure degrades the capture (drop + count + sticky error) and abandons
// the current file so the next record starts a fresh one; nothing
// propagates back to serving.
func (w *Writer) drain() {
	defer w.wg.Done()
	for {
		select {
		case b := <-w.ring:
			w.write(b)
		case <-w.quit:
			for {
				select {
				case b := <-w.ring:
					w.write(b)
				default:
					w.seal()
					return
				}
			}
		}
	}
}

func (w *Writer) write(b []byte) {
	defer w.pool.Put(b)
	if w.file == nil && !w.open() {
		w.droppedIO.Add(1)
		return
	}
	if _, err := w.file.Write(fault.SiteCaptureAppendWrite, b); err != nil {
		// The file now ends in a torn record; readers stop at it. Abandon
		// the file rather than appending after a hole.
		w.degrade(err)
		w.droppedIO.Add(1)
		return
	}
	w.written += int64(len(b))
	w.bytes.Add(uint64(len(b)))
	w.appended.Add(1)
	if w.written >= w.cfg.RotateBytes {
		w.seal()
	}
}

func (w *Writer) open() bool {
	name := filepath.Join(w.cfg.Dir, fmt.Sprintf("capture-%06d%s", w.seq, FileSuffix))
	f, err := w.fs.OpenFile(fault.SiteCaptureOpen, name, os.O_CREATE|os.O_EXCL|os.O_WRONLY, 0o644)
	if err != nil {
		w.degrade(err)
		return false
	}
	w.seq++
	if _, err := f.Write(fault.SiteCaptureAppendWrite, []byte(api.CaptureMagic)); err != nil {
		w.degrade(err)
		f.Close()
		return false
	}
	w.file = f
	w.written = 0
	w.files.Add(1)
	return true
}

// seal fsyncs and closes the current file; the next record opens a new
// one. Called at rotation and on Close.
func (w *Writer) seal() {
	f := w.file
	if f == nil {
		return
	}
	// Detach before syncing: degrade closes w.file when set, so a failed
	// fsync must not leave seal holding a file degrade already closed.
	w.file = nil
	w.written = 0
	if err := f.Sync(fault.SiteCaptureAppendSync); err != nil {
		w.degrade(err)
	}
	f.Close()
}

func (w *Writer) degrade(err error) {
	msg := err.Error()
	w.lastErr.Store(&msg)
	if w.file != nil {
		w.file.Close()
		w.file = nil
	}
}

// sortFiles orders capture file names by sequence (zero-padded names sort
// lexically, but be robust to hand-named fixtures too).
func sortFiles(names []string) {
	sort.Slice(names, func(i, j int) bool {
		return strings.Compare(names[i], names[j]) < 0
	})
}
