// Package flows holds the built-in decision flows shared by the serving
// CLIs: cmd/dfserve runs them in-process, cmd/dfsd serves them over HTTP,
// and dfserve's -remote mode names them on the server. Keeping them in one
// package guarantees both ends of a remote benchmark execute the same
// schema.
package flows

import (
	"fmt"
	"hash/fnv"

	"repro/internal/core"
	"repro/internal/expr"
	"repro/internal/gen"
	"repro/internal/value"
)

// Quickstart is the five-attribute shipping-upgrade flow of the package
// quick start, with its default source bindings.
func Quickstart() (*core.Schema, map[string]value.Value) {
	schema := core.NewBuilder("quickstart").
		Source("order_total").
		Source("customer_id").
		Foreign("tier", expr.TrueExpr, []string{"customer_id"}, 2,
			func(in core.Inputs) value.Value {
				if id, ok := in.Get("customer_id").AsInt(); ok && id%2 == 1 {
					return value.Str("gold")
				}
				return value.Str("standard")
			}).
		Foreign("warehouse_load", expr.MustParse("order_total > 50"), nil, 3,
			core.ConstCompute(value.Int(40))).
		SynthesisExpr("score", expr.TrueExpr,
			expr.MustParse(`order_total / 10 + coalesce(warehouse_load, 100) / -2`)).
		Foreign("upgrade", expr.MustParse(`score > -10 and tier == "gold"`), []string{"tier", "score"}, 1,
			core.ConstCompute(value.Str("free 2-day shipping"))).
		Target("upgrade").
		MustBuild()
	return schema, map[string]value.Value{
		"order_total": value.Int(120),
		"customer_id": value.Int(7),
	}
}

// Pattern is the Table 1 default 64-node generated pattern (named
// "pattern" for lookup), with its scripted source bindings.
func Pattern() (*core.Schema, map[string]value.Value) {
	g := gen.Generate(gen.Default())
	return g.Schema, g.SourceValues()
}

// ByName resolves a built-in flow: "quickstart" or "pattern".
func ByName(name string) (*core.Schema, map[string]value.Value, error) {
	switch name {
	case "quickstart":
		s, src := Quickstart()
		return s, src, nil
	case "pattern":
		s, src := Pattern()
		return s, src, nil
	default:
		return nil, nil, fmt.Errorf("flows: unknown schema %q (want quickstart or pattern)", name)
	}
}

// Spread precomputes n variants of the base source bindings, each shifting
// every integer source by the variant index, and returns the per-instance
// selector (instance i runs variant i mod n). Distinct variants produce
// distinct query identities, which moves the query layer out of the
// degenerate all-instances-identical regime. It fails when no integer
// source exists to vary.
func Spread(base map[string]value.Value, n int) (func(i int) map[string]value.Value, error) {
	varied := false
	variants := make([]map[string]value.Value, n)
	for v := range variants {
		m := make(map[string]value.Value, len(base))
		for name, val := range base {
			if iv, ok := val.AsInt(); ok {
				m[name] = value.Int(iv + int64(v))
				varied = true
			} else {
				m[name] = val
			}
		}
		variants[v] = m
	}
	if !varied {
		return nil, fmt.Errorf("flows: spread %d has no effect: no integer source to vary, all instances would be identical", n)
	}
	return func(i int) map[string]value.Value { return variants[i%n] }, nil
}

// BindDefaultComputes installs a deterministic compute on every foreign
// task of the schema that lacks one: an FNV-1a hash of the attribute name
// and its stable input values, as an Int. Registered (wire-parsed) schemas
// get their foreign results this way — compute functions cannot travel
// over HTTP — so the same inputs always produce the same value, keeping
// the query layer's dedup/cache sound and runs reproducible across
// servers.
func BindDefaultComputes(s *core.Schema) {
	for id := 0; id < s.NumAttrs(); id++ {
		a := s.Attr(core.AttrID(id))
		if a.Task == nil || a.Task.Kind != core.ForeignTask || a.Task.Compute != nil {
			continue
		}
		name, inputs := a.Name, a.Inputs
		s.BindCompute(name, func(in core.Inputs) value.Value {
			h := fnv.New64a()
			h.Write([]byte(name))
			for _, dep := range inputs {
				h.Write([]byte{0x1f})
				h.Write([]byte(in.Get(dep).String()))
			}
			// Keep the value small and positive so wire-registered schemas
			// can write readable range predicates over it.
			return value.Int(int64(h.Sum64() % 1000))
		})
	}
}
