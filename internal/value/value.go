// Package value implements the dynamic value domain used by decision flow
// attributes.
//
// The decision flow model of Hull et al. (ICDE 2000) requires every attribute
// to carry either a concrete value or the distinguished null value ⟂ (the
// value taken by an attribute whose enabling condition is false, or whose
// producing task could not supply data). Tasks must be able to execute even
// when some of their inputs are ⟂, so ⟂ is a first-class citizen of the
// domain rather than an error.
//
// The domain is deliberately small — null, booleans, 64-bit integers, 64-bit
// floats, strings and lists — matching what the paper's schemas need
// (scores, hit lists, profile fields, flags). Comparison semantics follow
// SQL-style null handling: any ordering or equality comparison involving ⟂
// is false; IsNull is the only predicate that observes ⟂ directly. This
// keeps the declarative complete-snapshot semantics total and deterministic.
package value

import (
	"fmt"
	"math"
	"sort"
	"strconv"
	"strings"
)

// Kind enumerates the dynamic types a Value may hold.
type Kind uint8

// The possible kinds of a Value.
const (
	KindNull Kind = iota
	KindBool
	KindInt
	KindFloat
	KindString
	KindList
)

// String returns the lower-case name of the kind.
func (k Kind) String() string {
	switch k {
	case KindNull:
		return "null"
	case KindBool:
		return "bool"
	case KindInt:
		return "int"
	case KindFloat:
		return "float"
	case KindString:
		return "string"
	case KindList:
		return "list"
	default:
		return fmt.Sprintf("Kind(%d)", uint8(k))
	}
}

// Value is a dynamically typed attribute value. The zero Value is ⟂ (null).
//
// Value is immutable by convention: once constructed it must not be
// modified. This matches the paper's monotonicity property — an attribute
// value, once assigned, is never overwritten — and makes Values safe to
// share across goroutines without synchronization.
type Value struct {
	kind Kind
	b    bool
	i    int64
	f    float64
	s    string
	list []Value
}

// Null is the distinguished ⟂ value.
var Null = Value{}

// Bool returns a boolean Value.
func Bool(b bool) Value { return Value{kind: KindBool, b: b} }

// Int returns an integer Value.
func Int(i int64) Value { return Value{kind: KindInt, i: i} }

// Float returns a floating-point Value.
func Float(f float64) Value { return Value{kind: KindFloat, f: f} }

// String_ returns a string Value. (Named with a trailing underscore so the
// type's String method keeps the canonical fmt.Stringer meaning.)
func String_(s string) Value { return Value{kind: KindString, s: s} }

// Str is a shorter alias for String_.
func Str(s string) Value { return String_(s) }

// List returns a list Value holding the given elements. The slice is copied
// so later mutation of the argument cannot break immutability.
func List(elems ...Value) Value {
	cp := make([]Value, len(elems))
	copy(cp, elems)
	return Value{kind: KindList, list: cp}
}

// Kind reports the dynamic kind of v.
func (v Value) Kind() Kind { return v.kind }

// IsNull reports whether v is ⟂.
func (v Value) IsNull() bool { return v.kind == KindNull }

// AsBool returns the boolean held by v. ok is false when v is not a bool.
func (v Value) AsBool() (b, ok bool) { return v.b, v.kind == KindBool }

// AsInt returns the integer held by v. ok is false when v is not an int.
func (v Value) AsInt() (i int64, ok bool) { return v.i, v.kind == KindInt }

// AsFloat returns the numeric content of v as a float64. Both int and float
// kinds succeed; ok is false otherwise.
func (v Value) AsFloat() (f float64, ok bool) {
	switch v.kind {
	case KindFloat:
		return v.f, true
	case KindInt:
		return float64(v.i), true
	default:
		return 0, false
	}
}

// AsString returns the string held by v. ok is false when v is not a string.
func (v Value) AsString() (s string, ok bool) { return v.s, v.kind == KindString }

// AsList returns the elements held by v. The returned slice must not be
// modified. ok is false when v is not a list.
func (v Value) AsList() (elems []Value, ok bool) { return v.list, v.kind == KindList }

// Len returns the number of elements of a list value, the number of bytes of
// a string, and 0 for every other kind (including ⟂).
func (v Value) Len() int {
	switch v.kind {
	case KindList:
		return len(v.list)
	case KindString:
		return len(v.s)
	default:
		return 0
	}
}

// IsNumeric reports whether v holds an int or a float.
func (v Value) IsNumeric() bool { return v.kind == KindInt || v.kind == KindFloat }

// Truth converts v to a truth value for use in conditions. A bool converts
// to itself; ⟂ has no truth value (ok = false); every other kind also has no
// truth value. The three-valued condition evaluator builds on this.
func (v Value) Truth() (truth, ok bool) {
	if v.kind == KindBool {
		return v.b, true
	}
	return false, false
}

// Equal reports whether two values are equal under SQL-style semantics:
// any comparison involving ⟂ is false; numeric int/float compare by value;
// lists compare element-wise. Note that Equal(Null, Null) is false — use
// Identical for structural equality including nulls.
func Equal(a, b Value) bool {
	if a.kind == KindNull || b.kind == KindNull {
		return false
	}
	return Identical(a, b)
}

// Identical reports structural equality, treating ⟂ as equal to ⟂.
// It is the equality used for snapshot comparison and testing.
func Identical(a, b Value) bool {
	if a.IsNumeric() && b.IsNumeric() {
		af, _ := a.AsFloat()
		bf, _ := b.AsFloat()
		return af == bf
	}
	if a.kind != b.kind {
		return false
	}
	switch a.kind {
	case KindNull:
		return true
	case KindBool:
		return a.b == b.b
	case KindInt:
		return a.i == b.i
	case KindFloat:
		return a.f == b.f
	case KindString:
		return a.s == b.s
	case KindList:
		if len(a.list) != len(b.list) {
			return false
		}
		for i := range a.list {
			if !Identical(a.list[i], b.list[i]) {
				return false
			}
		}
		return true
	default:
		return false
	}
}

// Compare orders two values. It returns (ordering, ok); ok is false when the
// values are not comparable (either is ⟂, kinds are incompatible, or either
// is a list or bool). Numeric values compare numerically across int/float;
// strings compare lexicographically.
func Compare(a, b Value) (cmp int, ok bool) {
	if a.kind == KindNull || b.kind == KindNull {
		return 0, false
	}
	if a.IsNumeric() && b.IsNumeric() {
		af, _ := a.AsFloat()
		bf, _ := b.AsFloat()
		switch {
		case af < bf:
			return -1, true
		case af > bf:
			return 1, true
		default:
			return 0, true
		}
	}
	if a.kind == KindString && b.kind == KindString {
		return strings.Compare(a.s, b.s), true
	}
	return 0, false
}

// Add returns a+b for numeric values, string concatenation for strings, and
// list concatenation for lists; ⟂ if either operand is ⟂ or the kinds are
// incompatible. Integer addition stays integral; mixing int and float
// produces a float.
func Add(a, b Value) Value {
	switch {
	case a.kind == KindInt && b.kind == KindInt:
		return Int(a.i + b.i)
	case a.IsNumeric() && b.IsNumeric():
		af, _ := a.AsFloat()
		bf, _ := b.AsFloat()
		return Float(af + bf)
	case a.kind == KindString && b.kind == KindString:
		return Str(a.s + b.s)
	case a.kind == KindList && b.kind == KindList:
		elems := make([]Value, 0, len(a.list)+len(b.list))
		elems = append(elems, a.list...)
		elems = append(elems, b.list...)
		return Value{kind: KindList, list: elems}
	default:
		return Null
	}
}

// Sub returns a-b for numeric values; ⟂ otherwise.
func Sub(a, b Value) Value {
	switch {
	case a.kind == KindInt && b.kind == KindInt:
		return Int(a.i - b.i)
	case a.IsNumeric() && b.IsNumeric():
		af, _ := a.AsFloat()
		bf, _ := b.AsFloat()
		return Float(af - bf)
	default:
		return Null
	}
}

// Mul returns a*b for numeric values; ⟂ otherwise.
func Mul(a, b Value) Value {
	switch {
	case a.kind == KindInt && b.kind == KindInt:
		return Int(a.i * b.i)
	case a.IsNumeric() && b.IsNumeric():
		af, _ := a.AsFloat()
		bf, _ := b.AsFloat()
		return Float(af * bf)
	default:
		return Null
	}
}

// Div returns a/b for numeric values; ⟂ for division by zero or
// non-numeric operands. Integer division of ints truncates toward zero.
func Div(a, b Value) Value {
	switch {
	case a.kind == KindInt && b.kind == KindInt:
		if b.i == 0 {
			return Null
		}
		return Int(a.i / b.i)
	case a.IsNumeric() && b.IsNumeric():
		af, _ := a.AsFloat()
		bf, _ := b.AsFloat()
		if bf == 0 {
			return Null
		}
		return Float(af / bf)
	default:
		return Null
	}
}

// Neg returns -a for numeric values; ⟂ otherwise.
func Neg(a Value) Value {
	switch a.kind {
	case KindInt:
		return Int(-a.i)
	case KindFloat:
		return Float(-a.f)
	default:
		return Null
	}
}

// Min returns the smaller of a and b under Compare; ⟂ when incomparable.
func Min(a, b Value) Value {
	c, ok := Compare(a, b)
	if !ok {
		return Null
	}
	if c <= 0 {
		return a
	}
	return b
}

// Max returns the larger of a and b under Compare; ⟂ when incomparable.
func Max(a, b Value) Value {
	c, ok := Compare(a, b)
	if !ok {
		return Null
	}
	if c >= 0 {
		return a
	}
	return b
}

// String renders v in the textual syntax accepted by the expression parser:
// null, true/false, decimal numbers, double-quoted strings, and
// bracket-delimited lists.
func (v Value) String() string {
	switch v.kind {
	case KindNull:
		return "null"
	case KindBool:
		return strconv.FormatBool(v.b)
	case KindInt:
		return strconv.FormatInt(v.i, 10)
	case KindFloat:
		if math.IsInf(v.f, 1) {
			return "+inf"
		}
		if math.IsInf(v.f, -1) {
			return "-inf"
		}
		s := strconv.FormatFloat(v.f, 'g', -1, 64)
		// Ensure floats round-trip as floats, not ints.
		if !strings.ContainsAny(s, ".eE") && !strings.Contains(s, "inf") && !strings.Contains(s, "NaN") {
			s += ".0"
		}
		return s
	case KindString:
		return strconv.Quote(v.s)
	case KindList:
		parts := make([]string, len(v.list))
		for i, e := range v.list {
			parts[i] = e.String()
		}
		return "[" + strings.Join(parts, ", ") + "]"
	default:
		return fmt.Sprintf("Value(kind=%d)", v.kind)
	}
}

// SortValues sorts a slice of mutually comparable values in ascending order.
// Incomparable pairs keep their relative order (the sort is stable and
// treats them as equal), so the function is total.
func SortValues(vs []Value) {
	sort.SliceStable(vs, func(i, j int) bool {
		c, ok := Compare(vs[i], vs[j])
		return ok && c < 0
	})
}
