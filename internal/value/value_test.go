package value

import (
	"math"
	"testing"
	"testing/quick"
)

func TestKindString(t *testing.T) {
	cases := map[Kind]string{
		KindNull:   "null",
		KindBool:   "bool",
		KindInt:    "int",
		KindFloat:  "float",
		KindString: "string",
		KindList:   "list",
		Kind(99):   "Kind(99)",
	}
	for k, want := range cases {
		if got := k.String(); got != want {
			t.Errorf("Kind(%d).String() = %q, want %q", k, got, want)
		}
	}
}

func TestZeroValueIsNull(t *testing.T) {
	var v Value
	if !v.IsNull() {
		t.Fatal("zero Value must be null")
	}
	if v.Kind() != KindNull {
		t.Fatalf("zero Value kind = %v, want null", v.Kind())
	}
	if !Identical(v, Null) {
		t.Fatal("zero Value must be identical to Null")
	}
}

func TestConstructorsAndAccessors(t *testing.T) {
	if b, ok := Bool(true).AsBool(); !ok || !b {
		t.Error("Bool(true) round trip failed")
	}
	if i, ok := Int(-7).AsInt(); !ok || i != -7 {
		t.Error("Int(-7) round trip failed")
	}
	if f, ok := Float(2.5).AsFloat(); !ok || f != 2.5 {
		t.Error("Float(2.5) round trip failed")
	}
	if f, ok := Int(4).AsFloat(); !ok || f != 4 {
		t.Error("Int(4).AsFloat() should widen to 4.0")
	}
	if s, ok := Str("hi").AsString(); !ok || s != "hi" {
		t.Error("Str round trip failed")
	}
	l, ok := List(Int(1), Str("x")).AsList()
	if !ok || len(l) != 2 {
		t.Fatal("List round trip failed")
	}
	if _, ok := Null.AsBool(); ok {
		t.Error("Null.AsBool() should not be ok")
	}
	if _, ok := Null.AsInt(); ok {
		t.Error("Null.AsInt() should not be ok")
	}
	if _, ok := Str("x").AsFloat(); ok {
		t.Error("string AsFloat should not be ok")
	}
}

func TestListCopiesInput(t *testing.T) {
	src := []Value{Int(1), Int(2)}
	v := List(src...)
	src[0] = Int(99)
	l, _ := v.AsList()
	if got, _ := l[0].AsInt(); got != 1 {
		t.Error("List must copy its input slice")
	}
}

func TestLen(t *testing.T) {
	if Null.Len() != 0 {
		t.Error("Null.Len() != 0")
	}
	if Str("abc").Len() != 3 {
		t.Error("string Len failed")
	}
	if List(Int(1), Int(2), Int(3)).Len() != 3 {
		t.Error("list Len failed")
	}
	if Int(5).Len() != 0 {
		t.Error("int Len should be 0")
	}
}

func TestTruth(t *testing.T) {
	if tr, ok := Bool(true).Truth(); !ok || !tr {
		t.Error("Bool(true).Truth() failed")
	}
	if tr, ok := Bool(false).Truth(); !ok || tr {
		t.Error("Bool(false).Truth() failed")
	}
	if _, ok := Null.Truth(); ok {
		t.Error("Null has no truth value")
	}
	if _, ok := Int(1).Truth(); ok {
		t.Error("Int has no truth value")
	}
}

func TestEqualNullSemantics(t *testing.T) {
	if Equal(Null, Null) {
		t.Error("Equal(null, null) must be false (SQL semantics)")
	}
	if Equal(Null, Int(1)) || Equal(Int(1), Null) {
		t.Error("Equal with one null must be false")
	}
	if !Identical(Null, Null) {
		t.Error("Identical(null, null) must be true")
	}
}

func TestEqualCrossNumeric(t *testing.T) {
	if !Equal(Int(3), Float(3.0)) {
		t.Error("Int(3) should equal Float(3.0)")
	}
	if Equal(Int(3), Float(3.5)) {
		t.Error("Int(3) should not equal Float(3.5)")
	}
	if Equal(Int(3), Str("3")) {
		t.Error("int and string are never equal")
	}
}

func TestIdenticalLists(t *testing.T) {
	a := List(Int(1), List(Str("x"), Null))
	b := List(Int(1), List(Str("x"), Null))
	c := List(Int(1), List(Str("y"), Null))
	if !Identical(a, b) {
		t.Error("structurally equal lists should be identical")
	}
	if Identical(a, c) {
		t.Error("different lists should not be identical")
	}
	if Identical(List(Int(1)), List(Int(1), Int(2))) {
		t.Error("different-length lists should not be identical")
	}
}

func TestCompare(t *testing.T) {
	tests := []struct {
		a, b Value
		cmp  int
		ok   bool
	}{
		{Int(1), Int(2), -1, true},
		{Int(2), Int(2), 0, true},
		{Int(3), Int(2), 1, true},
		{Int(1), Float(1.5), -1, true},
		{Float(2.5), Int(2), 1, true},
		{Str("a"), Str("b"), -1, true},
		{Str("b"), Str("b"), 0, true},
		{Null, Int(1), 0, false},
		{Int(1), Null, 0, false},
		{Bool(true), Bool(true), 0, false},
		{List(Int(1)), List(Int(1)), 0, false},
		{Int(1), Str("1"), 0, false},
	}
	for _, tc := range tests {
		cmp, ok := Compare(tc.a, tc.b)
		if ok != tc.ok || (ok && cmp != tc.cmp) {
			t.Errorf("Compare(%v, %v) = (%d, %v), want (%d, %v)", tc.a, tc.b, cmp, ok, tc.cmp, tc.ok)
		}
	}
}

func TestArithmetic(t *testing.T) {
	if got := Add(Int(2), Int(3)); !Identical(got, Int(5)) {
		t.Errorf("2+3 = %v", got)
	}
	if got := Add(Int(2), Float(0.5)); !Identical(got, Float(2.5)) {
		t.Errorf("2+0.5 = %v", got)
	}
	if got := Add(Str("a"), Str("b")); !Identical(got, Str("ab")) {
		t.Errorf(`"a"+"b" = %v`, got)
	}
	if got := Add(List(Int(1)), List(Int(2))); !Identical(got, List(Int(1), Int(2))) {
		t.Errorf("list concat = %v", got)
	}
	if got := Add(Null, Int(1)); !got.IsNull() {
		t.Errorf("null+1 = %v, want null", got)
	}
	if got := Add(Int(1), Str("x")); !got.IsNull() {
		t.Errorf("1+\"x\" = %v, want null", got)
	}
	if got := Sub(Int(5), Int(3)); !Identical(got, Int(2)) {
		t.Errorf("5-3 = %v", got)
	}
	if got := Sub(Float(1), Float(0.25)); !Identical(got, Float(0.75)) {
		t.Errorf("1-0.25 = %v", got)
	}
	if got := Sub(Str("a"), Str("b")); !got.IsNull() {
		t.Error("string subtraction must be null")
	}
	if got := Mul(Int(4), Int(3)); !Identical(got, Int(12)) {
		t.Errorf("4*3 = %v", got)
	}
	if got := Mul(Float(0.5), Int(4)); !Identical(got, Float(2)) {
		t.Errorf("0.5*4 = %v", got)
	}
	if got := Div(Int(7), Int(2)); !Identical(got, Int(3)) {
		t.Errorf("7/2 = %v (integer division)", got)
	}
	if got := Div(Float(7), Int(2)); !Identical(got, Float(3.5)) {
		t.Errorf("7.0/2 = %v", got)
	}
	if got := Div(Int(1), Int(0)); !got.IsNull() {
		t.Error("division by zero must be null")
	}
	if got := Div(Float(1), Float(0)); !got.IsNull() {
		t.Error("float division by zero must be null")
	}
	if got := Neg(Int(3)); !Identical(got, Int(-3)) {
		t.Errorf("-3 = %v", got)
	}
	if got := Neg(Float(2.5)); !Identical(got, Float(-2.5)) {
		t.Errorf("-2.5 = %v", got)
	}
	if got := Neg(Str("x")); !got.IsNull() {
		t.Error("negating a string must be null")
	}
}

func TestMinMax(t *testing.T) {
	if got := Min(Int(2), Int(5)); !Identical(got, Int(2)) {
		t.Errorf("Min = %v", got)
	}
	if got := Max(Int(2), Int(5)); !Identical(got, Int(5)) {
		t.Errorf("Max = %v", got)
	}
	if got := Min(Null, Int(1)); !got.IsNull() {
		t.Error("Min with null must be null")
	}
	if got := Max(Str("a"), Int(1)); !got.IsNull() {
		t.Error("Max of incomparable must be null")
	}
}

func TestStringRendering(t *testing.T) {
	cases := map[string]Value{
		"null":        Null,
		"true":        Bool(true),
		"false":       Bool(false),
		"42":          Int(42),
		"-3":          Int(-3),
		"2.5":         Float(2.5),
		"3.0":         Float(3), // float must not print as int
		`"hi"`:        Str("hi"),
		`"a\"b"`:      Str(`a"b`),
		"[1, \"x\"]":  List(Int(1), Str("x")),
		"[]":          List(),
		"+inf":        Float(math.Inf(1)),
		"-inf":        Float(math.Inf(-1)),
		"[null, 2.5]": List(Null, Float(2.5)),
	}
	for want, v := range cases {
		if got := v.String(); got != want {
			t.Errorf("String(%#v) = %q, want %q", v, got, want)
		}
	}
}

func TestSortValues(t *testing.T) {
	vs := []Value{Int(3), Int(1), Float(2.5), Int(2)}
	SortValues(vs)
	want := []Value{Int(1), Int(2), Float(2.5), Int(3)}
	for i := range want {
		if !Identical(vs[i], want[i]) {
			t.Fatalf("sorted[%d] = %v, want %v", i, vs[i], want[i])
		}
	}
}

func TestSortValuesWithIncomparable(t *testing.T) {
	vs := []Value{Str("b"), Null, Str("a")}
	SortValues(vs) // must not panic; nulls treated as equal to everything
	n := 0
	for _, v := range vs {
		if v.IsNull() {
			n++
		}
	}
	if n != 1 || len(vs) != 3 {
		t.Fatal("sort must preserve elements")
	}
}

// Property: Identical is reflexive for any int/float/string/bool value.
func TestIdenticalReflexiveQuick(t *testing.T) {
	f := func(i int64, fl float64, s string, b bool) bool {
		for _, v := range []Value{Int(i), Float(fl), Str(s), Bool(b)} {
			if fl != fl && v.Kind() == KindFloat {
				continue // NaN is not equal to itself; acceptable
			}
			if !Identical(v, v) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: Compare is antisymmetric on integers.
func TestCompareAntisymmetricQuick(t *testing.T) {
	f := func(a, b int64) bool {
		c1, ok1 := Compare(Int(a), Int(b))
		c2, ok2 := Compare(Int(b), Int(a))
		return ok1 && ok2 && c1 == -c2
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: Add/Sub are inverse on integers (no overflow checks needed for
// the property modulo 2^64 arithmetic).
func TestAddSubInverseQuick(t *testing.T) {
	f := func(a, b int64) bool {
		sum := Add(Int(a), Int(b))
		back := Sub(sum, Int(b))
		return Identical(back, Int(a))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: any arithmetic op with a null operand yields null.
func TestNullAbsorbsQuick(t *testing.T) {
	f := func(a int64) bool {
		v := Int(a)
		return Add(v, Null).IsNull() && Add(Null, v).IsNull() &&
			Sub(v, Null).IsNull() && Mul(Null, v).IsNull() && Div(v, Null).IsNull()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
