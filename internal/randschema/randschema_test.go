package randschema

import (
	"math/rand"
	"testing"

	"repro/internal/core"
	"repro/internal/snapshot"
	"repro/internal/value"
)

func TestGenerateIsWellFormed(t *testing.T) {
	for seed := int64(0); seed < 50; seed++ {
		rng := rand.New(rand.NewSource(seed))
		s := Generate(rng, Defaults()) // MustBuild inside panics if invalid
		if s.NumAttrs() < 5 {
			t.Fatalf("seed %d: too small (%d attrs)", seed, s.NumAttrs())
		}
		if len(s.Targets()) < 1 || len(s.Sources()) < 1 {
			t.Fatalf("seed %d: missing sources or targets", seed)
		}
	}
}

func TestGenerateDeterministic(t *testing.T) {
	a := Generate(rand.New(rand.NewSource(7)), Defaults())
	b := Generate(rand.New(rand.NewSource(7)), Defaults())
	if a.NumAttrs() != b.NumAttrs() {
		t.Fatal("same seed produced different sizes")
	}
	for i := 0; i < a.NumAttrs(); i++ {
		x, y := a.Attr(core.AttrID(i)), b.Attr(core.AttrID(i))
		if x.Name != y.Name || x.Cost() != y.Cost() {
			t.Fatal("same seed produced different attributes")
		}
		if x.Enabling != nil && x.Enabling.String() != y.Enabling.String() {
			t.Fatal("same seed produced different conditions")
		}
	}
}

func TestRandomSourcesCoverKinds(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	s := Generate(rng, Defaults())
	sawNull, sawInt := false, false
	for i := 0; i < 50; i++ {
		for _, v := range RandomSources(rng, s) {
			if v.IsNull() {
				sawNull = true
			}
			if v.Kind() == value.KindInt {
				sawInt = true
			}
		}
	}
	if !sawNull || !sawInt {
		t.Error("source distribution should include ⟂ and ints")
	}
}

func TestComputeFunctionsArePure(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	s := Generate(rng, Defaults())
	srcs := RandomSources(rand.New(rand.NewSource(5)), s)
	a := snapshot.Complete(s, srcs)
	b := snapshot.Complete(s, srcs)
	for i := 0; i < s.NumAttrs(); i++ {
		id := core.AttrID(i)
		if a.State(id) != b.State(id) || !value.Identical(a.Val(id), b.Val(id)) {
			t.Fatalf("oracle differs across evaluations at %s: impure compute",
				s.Attr(id).Name)
		}
	}
}

func TestDataEdgesMatter(t *testing.T) {
	// Different source values should change some downstream value in at
	// least one of several schemas (affine computes with nonzero coeffs).
	changed := false
	for seed := int64(0); seed < 10 && !changed; seed++ {
		rng := rand.New(rand.NewSource(seed))
		s := Generate(rng, Defaults())
		src1 := map[string]value.Value{}
		src2 := map[string]value.Value{}
		for _, id := range s.Sources() {
			src1[s.Attr(id).Name] = value.Int(1)
			src2[s.Attr(id).Name] = value.Int(17)
		}
		a, b := snapshot.Complete(s, src1), snapshot.Complete(s, src2)
		for i := 0; i < s.NumAttrs(); i++ {
			id := core.AttrID(i)
			if !value.Identical(a.Val(id), b.Val(id)) {
				changed = true
				break
			}
		}
	}
	if !changed {
		t.Error("no schema propagated source changes downstream; computes degenerate?")
	}
}
