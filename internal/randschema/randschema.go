// Package randschema generates *unstructured* random decision flow schemas
// for property-based testing. Unlike package gen — which reproduces the
// paper's regular row/column patterns with scripted condition truth —
// randschema draws arbitrary DAGs, arbitrary condition ASTs and arbitrary
// (but pure) task functions, exercising corner cases the experiment
// patterns never hit: multi-source flows, conditions mixing isnull with
// deep boolean nesting, synthesis/foreign mixes, fan-in joins, multiple
// targets, and attributes with no consumers.
//
// The invariant the rest of the system is tested against: for any schema
// from this package, any strategy's execution must terminate and agree
// with the declarative oracle.
package randschema

import (
	"fmt"
	"math/rand"

	"repro/internal/core"
	"repro/internal/expr"
	"repro/internal/value"
)

// Config bounds the random draw. The zero value is replaced by Defaults.
type Config struct {
	// MinAttrs/MaxAttrs bound the total attribute count (sources included).
	MinAttrs, MaxAttrs int
	// MaxSources bounds the number of source attributes (at least 1).
	MaxSources int
	// MaxInputs bounds the data-flow fan-in per task.
	MaxInputs int
	// MaxCondDepth bounds enabling-condition AST depth.
	MaxCondDepth int
	// MaxCost bounds foreign task costs (minimum 1).
	MaxCost int
	// SynthesisProb is the probability a task is synthesis rather than
	// foreign.
	SynthesisProb float64
}

// Defaults returns the standard fuzzing envelope.
func Defaults() Config {
	return Config{
		MinAttrs:      5,
		MaxAttrs:      40,
		MaxSources:    3,
		MaxInputs:     3,
		MaxCondDepth:  3,
		MaxCost:       5,
		SynthesisProb: 0.3,
	}
}

// Generate draws a random well-formed schema. The same rng state yields
// the same schema, so failures shrink to a seed.
func Generate(rng *rand.Rand, cfg Config) *core.Schema {
	if cfg.MinAttrs == 0 {
		cfg = Defaults()
	}
	n := cfg.MinAttrs + rng.Intn(cfg.MaxAttrs-cfg.MinAttrs+1)
	nSources := 1 + rng.Intn(cfg.MaxSources)
	if nSources >= n {
		nSources = 1
	}

	b := core.NewBuilder(fmt.Sprintf("rand-%d", rng.Int63()))
	names := make([]string, 0, n)
	for i := 0; i < nSources; i++ {
		name := fmt.Sprintf("s%d", i)
		b.Source(name)
		names = append(names, name)
	}

	for i := nSources; i < n; i++ {
		name := fmt.Sprintf("a%d", i)
		// Data inputs: random subset of earlier attributes.
		var inputs []string
		for _, j := range rng.Perm(len(names))[:rng.Intn(min(cfg.MaxInputs, len(names))+1)] {
			inputs = append(inputs, names[j])
		}
		cond := randCond(rng, names, cfg.MaxCondDepth)
		if rng.Float64() < cfg.SynthesisProb {
			b.Synthesis(name, cond, inputs, randCompute(rng, inputs))
		} else {
			b.Foreign(name, cond, inputs, 1+rng.Intn(cfg.MaxCost), randCompute(rng, inputs))
		}
		names = append(names, name)
	}

	// Targets: the last attribute plus a few random non-sources.
	b.Target(names[len(names)-1])
	for i := 0; i < rng.Intn(3); i++ {
		pick := names[nSources+rng.Intn(n-nSources)]
		b.Target(pick)
	}
	return b.MustBuild()
}

// RandomSources draws source bindings exercising ints, bools and ⟂.
func RandomSources(rng *rand.Rand, s *core.Schema) map[string]value.Value {
	out := map[string]value.Value{}
	for _, id := range s.Sources() {
		switch rng.Intn(4) {
		case 0:
			out[s.Attr(id).Name] = value.Null
		case 1:
			out[s.Attr(id).Name] = value.Bool(rng.Intn(2) == 0)
		default:
			out[s.Attr(id).Name] = value.Int(int64(rng.Intn(41) - 20))
		}
	}
	return out
}

// randCond draws an enabling condition AST over earlier attributes.
func randCond(rng *rand.Rand, names []string, depth int) expr.Expr {
	if depth == 0 || rng.Intn(3) == 0 {
		return randLeaf(rng, names)
	}
	switch rng.Intn(4) {
	case 0:
		k := 2 + rng.Intn(2)
		sub := make([]expr.Expr, k)
		for i := range sub {
			sub[i] = randCond(rng, names, depth-1)
		}
		return expr.And{Exprs: sub}
	case 1:
		k := 2 + rng.Intn(2)
		sub := make([]expr.Expr, k)
		for i := range sub {
			sub[i] = randCond(rng, names, depth-1)
		}
		return expr.Or{Exprs: sub}
	case 2:
		return expr.Not{E: randCond(rng, names, depth-1)}
	default:
		return randLeaf(rng, names)
	}
}

func randLeaf(rng *rand.Rand, names []string) expr.Expr {
	if len(names) == 0 || rng.Intn(8) == 0 {
		// Constant leaves keep some conditions trivially decidable.
		return expr.Const{Val: value.Bool(rng.Intn(2) == 0)}
	}
	attr := expr.Attr{Name: names[rng.Intn(len(names))]}
	switch rng.Intn(5) {
	case 0:
		return expr.IsNull{E: attr}
	case 1:
		return expr.Not{E: expr.IsNull{E: attr}}
	case 2:
		if len(names) > 1 {
			other := expr.Attr{Name: names[rng.Intn(len(names))]}
			return expr.Cmp{Op: randOp(rng), L: attr, R: other}
		}
		fallthrough
	default:
		return expr.Cmp{Op: randOp(rng), L: attr, R: expr.Const{Val: value.Int(int64(rng.Intn(41) - 20))}}
	}
}

func randOp(rng *rand.Rand) expr.CmpOp {
	return []expr.CmpOp{expr.EQ, expr.NE, expr.LT, expr.LE, expr.GT, expr.GE}[rng.Intn(6)]
}

// randCompute builds a pure task function: a fixed affine combination of
// the numeric inputs (⟂ inputs count as a fixed constant), so data-flow
// edges genuinely influence downstream values.
func randCompute(rng *rand.Rand, inputs []string) core.ComputeFunc {
	offset := int64(rng.Intn(21) - 10)
	coeffs := make(map[string]int64, len(inputs))
	nullSub := int64(rng.Intn(5))
	for _, in := range inputs {
		coeffs[in] = int64(rng.Intn(5) - 2)
	}
	mode := rng.Intn(10)
	return func(in core.Inputs) value.Value {
		if mode == 0 {
			return value.Null // tasks may legitimately produce ⟂
		}
		total := offset
		for name, c := range coeffs {
			v := in.Get(name)
			if iv, ok := v.AsInt(); ok {
				total += c * iv
			} else if bv, ok := v.AsBool(); ok && bv {
				total += c
			} else if v.IsNull() {
				total += c * nullSub
			}
		}
		if mode == 1 {
			return value.Bool(total%2 == 0)
		}
		return value.Int(total)
	}
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
