// Package simdb models the external database server of the paper's
// experiments (§5): a physical model in the style of Agrawal, Carey and
// Livny [ACL87] where CPUs and disks are service queues.
//
// A query's cost is expressed in units of processing. Executing one unit
// consumes CPU service time on one of the database's CPUs and, per accessed
// page, a disk IO on one of its disks unless the page hits the buffer pool.
// Units of one query execute sequentially; units of different queries
// compete for the same CPUs and disks, which is what makes the database's
// per-unit response time (UnitTime) grow with its multiprogramming level
// (Gmpl) — the empirically measured Db function of Figure 9(a).
//
// Defaults reproduce Table 1's last six rows: 4 CPUs, 10 disks, unit CPU
// cost 1 (ms), 1 IO page per unit, 50 % buffer hit probability, 5 ms IO
// delay.
//
// The package also provides Unbounded, the infinite-resource database used
// by the first half of the evaluation, where a query of cost c simply
// completes c units of virtual time after submission.
package simdb

import (
	"errors"
	"fmt"
	"math/rand"

	"repro/internal/sim"
)

// Params configures the simulated database (Table 1, last six rows).
type Params struct {
	// NumCPUs is the number of CPU servers (Table 1: 4).
	NumCPUs int
	// NumDisks is the number of disk servers (Table 1: 10).
	NumDisks int
	// UnitCPUTime is the CPU service demand, in milliseconds, of one unit
	// of processing (Table 1: unit_CPU_cost = 1).
	UnitCPUTime float64
	// UnitIOPages is the number of page accesses per unit of processing
	// (Table 1: unit_IO_cost = 1).
	UnitIOPages int
	// IOHitProb is the probability a page access hits the buffer pool and
	// needs no disk IO (Table 1: %IO_hit = 50 → 0.5).
	IOHitProb float64
	// IODelay is the disk service time per physical IO in milliseconds
	// (Table 1: IO_delay = 5).
	IODelay float64
	// OverheadUnits is a fixed per-query cost in units of processing
	// (parsing, optimization, connection handling), charged before the
	// query's own units. It is 0 in the paper's Table 1 configuration; the
	// query-clustering ablation (§6 future work) sets it positive so that
	// batching queries amortizes the overhead.
	OverheadUnits int

	// Fault injection and degradation, all zero in the paper's
	// configuration. Faults are observable only through the error-aware
	// submission paths (SubmitErr/SubmitBatchErr); the plain paths stay
	// fault-blind, so the virtual-time engine's own failure injection
	// (engine.FailureProb) is unaffected.

	// FailProb is the probability a query executes fully (consuming CPU
	// and disk as usual) but reports ErrInjected — a transaction abort
	// after the work was done.
	FailProb float64
	// StallProb is the probability a query executes fully but never
	// reports — a hung connection whose resources were nevertheless
	// consumed.
	StallProb float64
	// SlowFactor multiplies every service time (CPU and IO) — a degraded
	// replica running on ailing hardware. 0 or 1 means nominal speed.
	SlowFactor float64
}

// DefaultParams returns the Table 1 database configuration.
func DefaultParams() Params {
	return Params{
		NumCPUs:     4,
		NumDisks:    10,
		UnitCPUTime: 1,
		UnitIOPages: 1,
		IOHitProb:   0.5,
		IODelay:     5,
	}
}

// validate panics on nonsensical parameters; configurations come from code,
// not user input, so misconfiguration is a programming error.
func (p Params) validate() {
	if p.NumCPUs < 1 || p.NumDisks < 1 {
		panic(fmt.Sprintf("simdb: need at least one CPU and disk (got %d, %d)", p.NumCPUs, p.NumDisks))
	}
	if p.UnitCPUTime < 0 || p.IODelay < 0 || p.UnitIOPages < 0 {
		panic("simdb: negative service demands")
	}
	if p.IOHitProb < 0 || p.IOHitProb > 1 {
		panic(fmt.Sprintf("simdb: IOHitProb %v out of [0,1]", p.IOHitProb))
	}
	if p.OverheadUnits < 0 {
		panic("simdb: negative per-query overhead")
	}
	if p.FailProb < 0 || p.FailProb > 1 || p.StallProb < 0 || p.StallProb > 1 {
		panic(fmt.Sprintf("simdb: fault probabilities %v/%v out of [0,1]", p.FailProb, p.StallProb))
	}
	if p.FailProb+p.StallProb > 1 {
		panic("simdb: FailProb + StallProb > 1")
	}
	if p.SlowFactor < 0 {
		panic("simdb: negative SlowFactor")
	}
}

// Unbounded is the infinite-resource database: one unit of processing takes
// exactly one unit of virtual time, with no contention. TimeInUnits and
// Work in the paper's first experiment block are measured against it.
type Unbounded struct {
	S *sim.Sim
}

// Submit schedules done to run cost time units from now.
func (u *Unbounded) Submit(cost int, done func()) {
	if cost < 0 {
		panic("simdb: negative query cost")
	}
	u.S.After(float64(cost), done)
}

// ErrInjected is the error reported (via SubmitErr/SubmitBatchErr) for
// queries chosen to fail by Params.FailProb.
var ErrInjected = errors.New("simdb: injected query failure")

// Server is the bounded-resource database.
type Server struct {
	s      *sim.Sim
	params Params
	cpus   *sim.Resource
	disks  *sim.Resource
	rng    *rand.Rand
	// cpuTime and ioDelay are the effective service times: the configured
	// demands scaled by SlowFactor.
	cpuTime float64
	ioDelay float64

	active         int     // queries currently executing (= Gmpl)
	activeIntegral float64 // ∫ active dt
	lastChange     sim.Time
	unitsDone      uint64
	unitTimeSum    float64 // sum of individual unit durations
	queriesDone    uint64
	batchesDone    uint64
}

// NewServer creates a database server on the given simulator. seed fixes
// the buffer-hit coin flips, making runs reproducible.
func NewServer(s *sim.Sim, p Params, seed int64) *Server {
	p.validate()
	factor := p.SlowFactor
	if factor == 0 {
		factor = 1
	}
	return &Server{
		s:          s,
		params:     p,
		cpus:       sim.NewResource(s, "cpu", p.NumCPUs),
		disks:      sim.NewResource(s, "disk", p.NumDisks),
		rng:        rand.New(rand.NewSource(seed)),
		cpuTime:    p.UnitCPUTime * factor,
		ioDelay:    p.IODelay * factor,
		lastChange: s.Now(),
	}
}

// Params returns the server's configuration.
func (db *Server) Params() Params { return db.params }

// Submit starts a query of the given cost; done runs when its last unit
// completes. cost 0 completes immediately (at the current time, via an
// event, preserving causal ordering).
func (db *Server) Submit(cost int, done func()) {
	if cost < 0 {
		panic("simdb: negative query cost")
	}
	if cost == 0 {
		db.s.After(0, done)
		return
	}
	db.noteActive(+1)
	db.runUnit(cost+db.params.OverheadUnits, done)
}

// SubmitBatch starts one combined query executing the given per-query
// costs back to back; done runs when the last unit completes. The batch
// occupies a single multiprogramming slot (one Gmpl entry) and is charged
// the fixed per-query overhead (Params.OverheadUnits) exactly once — the
// amortization that makes query clustering/batching pay off (§6 future
// work). Each member still counts as one completed query in QueriesDone,
// so logical query accounting is unchanged by batching.
func (db *Server) SubmitBatch(costs []int, done func()) {
	total := 0
	nonzero := uint64(0)
	for _, c := range costs {
		if c < 0 {
			panic("simdb: negative query cost")
		}
		if c > 0 {
			nonzero++
		}
		total += c
	}
	if total == 0 {
		// Mirror Submit(0): complete immediately with no accounting, so
		// batched and unbatched zero-cost queries read identically.
		db.s.After(0, done)
		return
	}
	db.noteActive(+1)
	db.runUnit(total+db.params.OverheadUnits, func() {
		// runUnit credited the batch as one query; re-credit as its
		// members. Zero-cost members count nothing, exactly as Submit(0).
		db.queriesDone += nonzero - 1
		db.batchesDone++
		if done != nil {
			done()
		}
	})
}

// SubmitErr is Submit with fault reporting: with probability FailProb the
// query executes fully but reports ErrInjected; with probability StallProb
// it executes fully but never reports. Fault draws come from the server's
// seeded stream, so runs reproduce.
func (db *Server) SubmitErr(cost int, done func(error)) {
	fail, stall := db.drawFault()
	switch {
	case stall:
		db.Submit(cost, func() {})
	case fail:
		db.Submit(cost, func() { done(ErrInjected) })
	default:
		db.Submit(cost, func() { done(nil) })
	}
}

// SubmitBatchErr is SubmitBatch with fault reporting; the combined query
// draws one fault, shared by every member.
func (db *Server) SubmitBatchErr(costs []int, done func(error)) {
	fail, stall := db.drawFault()
	switch {
	case stall:
		db.SubmitBatch(costs, func() {})
	case fail:
		db.SubmitBatch(costs, func() { done(ErrInjected) })
	default:
		db.SubmitBatch(costs, func() { done(nil) })
	}
}

// drawFault decides one query's injected fate.
func (db *Server) drawFault() (fail, stall bool) {
	if db.params.FailProb == 0 && db.params.StallProb == 0 {
		return false, false
	}
	u := db.rng.Float64()
	fail = u < db.params.FailProb
	stall = !fail && u < db.params.FailProb+db.params.StallProb
	return fail, stall
}

// runUnit executes one unit of processing, then recurses for the remainder.
func (db *Server) runUnit(remaining int, done func()) {
	unitStart := db.s.Now()
	db.cpus.Use(db.cpuTime, func() {
		db.ioPhase(db.params.UnitIOPages, func() {
			db.unitsDone++
			db.unitTimeSum += db.s.Now() - unitStart
			if remaining > 1 {
				db.runUnit(remaining-1, done)
				return
			}
			db.queriesDone++
			db.noteActive(-1)
			if done != nil {
				done()
			}
		})
	})
}

// ioPhase performs the unit's page accesses sequentially; buffer hits skip
// the disk entirely.
func (db *Server) ioPhase(pages int, then func()) {
	if pages == 0 {
		then()
		return
	}
	if db.rng.Float64() < db.params.IOHitProb {
		db.ioPhase(pages-1, then)
		return
	}
	db.disks.Use(db.ioDelay, func() {
		db.ioPhase(pages-1, then)
	})
}

func (db *Server) noteActive(delta int) {
	now := db.s.Now()
	db.activeIntegral += float64(db.active) * (now - db.lastChange)
	db.lastChange = now
	db.active += delta
}

// Active returns the current multiprogramming level Gmpl: the number of
// queries executing on the database right now.
func (db *Server) Active() int { return db.active }

// AvgActive returns the time-averaged multiprogramming level since t=0.
func (db *Server) AvgActive() float64 {
	now := db.s.Now()
	if now == 0 {
		return 0
	}
	return (db.activeIntegral + float64(db.active)*(now-db.lastChange)) / now
}

// UnitsDone returns the total units of processing completed.
func (db *Server) UnitsDone() uint64 { return db.unitsDone }

// QueriesDone returns the total queries completed (batch members count
// individually).
func (db *Server) QueriesDone() uint64 { return db.queriesDone }

// BatchesDone returns the number of combined queries executed via
// SubmitBatch.
func (db *Server) BatchesDone() uint64 { return db.batchesDone }

// AvgUnitTime returns the mean response time per unit of processing, in
// milliseconds — the UnitTime of the analytical model.
func (db *Server) AvgUnitTime() float64 {
	if db.unitsDone == 0 {
		return 0
	}
	return db.unitTimeSum / float64(db.unitsDone)
}

// CPUStats and DiskStats expose the underlying resource statistics.
func (db *Server) CPUStats() sim.Stats  { return db.cpus.Stats() }
func (db *Server) DiskStats() sim.Stats { return db.disks.Stats() }
