package simdb

import (
	"fmt"
	"sort"

	"repro/internal/sim"
)

// CurvePoint is one measured (Gmpl, UnitTime) pair.
type CurvePoint struct {
	Gmpl     int     // database multiprogramming level
	UnitTime float64 // mean milliseconds per unit of processing
}

// DbCurve is the empirically determined Db function of the analytical
// model: the mapping from the database's multiprogramming level to its
// response time per unit of processing (Figure 9(a)). Between measured
// points it interpolates linearly; beyond the last point it extrapolates
// with the final slope (the curve is asymptotically linear once the
// bottleneck resource saturates).
type DbCurve struct {
	points []CurvePoint
}

// NewDbCurve builds a curve from measured points (sorted internally).
func NewDbCurve(points []CurvePoint) *DbCurve {
	if len(points) == 0 {
		panic("simdb: empty Db curve")
	}
	ps := append([]CurvePoint(nil), points...)
	sort.Slice(ps, func(i, j int) bool { return ps[i].Gmpl < ps[j].Gmpl })
	return &DbCurve{points: ps}
}

// Points returns the measured points in ascending Gmpl order.
func (c *DbCurve) Points() []CurvePoint { return c.points }

// UnitTime returns Db(gmpl) in milliseconds, interpolating between
// measurements. gmpl may be fractional (the analytical model works with
// averages).
func (c *DbCurve) UnitTime(gmpl float64) float64 {
	ps := c.points
	if gmpl <= float64(ps[0].Gmpl) {
		return ps[0].UnitTime
	}
	for i := 1; i < len(ps); i++ {
		if gmpl <= float64(ps[i].Gmpl) {
			return lerp(ps[i-1], ps[i], gmpl)
		}
	}
	if len(ps) == 1 {
		return ps[0].UnitTime
	}
	// Extrapolate with the last segment's slope.
	return lerp(ps[len(ps)-2], ps[len(ps)-1], gmpl)
}

func lerp(a, b CurvePoint, g float64) float64 {
	dg := float64(b.Gmpl - a.Gmpl)
	if dg == 0 {
		return b.UnitTime
	}
	f := (g - float64(a.Gmpl)) / dg
	return a.UnitTime + f*(b.UnitTime-a.UnitTime)
}

// String renders the curve compactly for reports.
func (c *DbCurve) String() string {
	s := "Db{"
	for i, p := range c.points {
		if i > 0 {
			s += " "
		}
		s += fmt.Sprintf("%d:%.2f", p.Gmpl, p.UnitTime)
	}
	return s + "}"
}

// MeasureDbCurve runs a closed-loop calibration against a fresh server for
// each requested multiprogramming level: gmpl perpetual workers each
// execute single-unit queries back to back, and the mean per-unit response
// time is measured over unitsPerLevel completed units (after discarding the
// first tenth as warm-up). This is how the paper "empirically determined"
// its Db function.
func MeasureDbCurve(p Params, levels []int, unitsPerLevel int, seed int64) *DbCurve {
	if unitsPerLevel < 10 {
		unitsPerLevel = 10
	}
	points := make([]CurvePoint, 0, len(levels))
	for _, g := range levels {
		if g < 1 {
			panic(fmt.Sprintf("simdb: Gmpl level %d < 1", g))
		}
		points = append(points, CurvePoint{Gmpl: g, UnitTime: measureLevel(p, g, unitsPerLevel, seed)})
	}
	return NewDbCurve(points)
}

func measureLevel(p Params, gmpl, units int, seed int64) float64 {
	s := sim.New()
	db := NewServer(s, p, seed)
	warmup := units / 10
	measured := 0
	var sum float64
	stop := false

	var worker func()
	worker = func() {
		if stop {
			return
		}
		start := s.Now()
		db.Submit(1, func() {
			if !stop {
				if db.UnitsDone() > uint64(warmup) {
					sum += s.Now() - start
					measured++
					if measured >= units {
						stop = true
						return
					}
				}
				worker()
			}
		})
	}
	for i := 0; i < gmpl; i++ {
		worker()
	}
	s.Run()
	if measured == 0 {
		return 0
	}
	return sum / float64(measured)
}
