package simdb

import (
	"math"
	"testing"

	"repro/internal/sim"
)

func TestDefaultParamsMatchTable1(t *testing.T) {
	p := DefaultParams()
	if p.NumCPUs != 4 || p.NumDisks != 10 || p.UnitCPUTime != 1 ||
		p.UnitIOPages != 1 || p.IOHitProb != 0.5 || p.IODelay != 5 {
		t.Fatalf("defaults diverge from Table 1: %+v", p)
	}
}

func TestParamValidation(t *testing.T) {
	bad := []Params{
		{NumCPUs: 0, NumDisks: 1},
		{NumCPUs: 1, NumDisks: 0},
		{NumCPUs: 1, NumDisks: 1, UnitCPUTime: -1},
		{NumCPUs: 1, NumDisks: 1, IOHitProb: 1.5},
		{NumCPUs: 1, NumDisks: 1, IOHitProb: -0.1},
		{NumCPUs: 1, NumDisks: 1, UnitIOPages: -1},
		{NumCPUs: 1, NumDisks: 1, IODelay: -1},
	}
	for i, p := range bad {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("case %d: bad params should panic: %+v", i, p)
				}
			}()
			s := sim.New()
			NewServer(s, p, 1)
		}()
	}
}

func TestUnboundedTiming(t *testing.T) {
	s := sim.New()
	u := &Unbounded{S: s}
	var doneAt []sim.Time
	u.Submit(3, func() { doneAt = append(doneAt, s.Now()) })
	u.Submit(5, func() { doneAt = append(doneAt, s.Now()) })
	s.Run()
	if len(doneAt) != 2 || doneAt[0] != 3 || doneAt[1] != 5 {
		t.Fatalf("unbounded completions = %v", doneAt)
	}
}

func TestUnboundedNoContention(t *testing.T) {
	s := sim.New()
	u := &Unbounded{S: s}
	n := 0
	for i := 0; i < 100; i++ {
		u.Submit(4, func() { n++ })
	}
	s.Run()
	if n != 100 || s.Now() != 4 {
		t.Fatalf("100 parallel cost-4 queries should all finish at t=4, got t=%v", s.Now())
	}
}

func TestUnboundedNegativeCostPanics(t *testing.T) {
	s := sim.New()
	u := &Unbounded{S: s}
	defer func() {
		if recover() == nil {
			t.Error("negative cost must panic")
		}
	}()
	u.Submit(-1, nil)
}

func TestServerSingleQueryNoIO(t *testing.T) {
	// With IOHitProb=1 every page hits the buffer: a cost-c query takes
	// exactly c × UnitCPUTime on an idle server.
	s := sim.New()
	p := DefaultParams()
	p.IOHitProb = 1
	db := NewServer(s, p, 42)
	var at sim.Time = -1
	db.Submit(3, func() { at = s.Now() })
	s.Run()
	if at != 3 {
		t.Fatalf("completion at %v, want 3 (3 units × 1 ms CPU)", at)
	}
	if db.UnitsDone() != 3 || db.QueriesDone() != 1 {
		t.Fatalf("units=%d queries=%d", db.UnitsDone(), db.QueriesDone())
	}
}

func TestServerAllMisses(t *testing.T) {
	// IOHitProb=0: every unit takes CPU + one disk IO = 1 + 5 ms.
	s := sim.New()
	p := DefaultParams()
	p.IOHitProb = 0
	db := NewServer(s, p, 42)
	var at sim.Time = -1
	db.Submit(2, func() { at = s.Now() })
	s.Run()
	if at != 12 {
		t.Fatalf("completion at %v, want 12", at)
	}
	if math.Abs(db.AvgUnitTime()-6) > 1e-9 {
		t.Fatalf("AvgUnitTime = %v, want 6", db.AvgUnitTime())
	}
}

func TestServerZeroCost(t *testing.T) {
	s := sim.New()
	db := NewServer(s, DefaultParams(), 1)
	fired := false
	db.Submit(0, func() { fired = true })
	s.Run()
	if !fired || db.QueriesDone() != 0 {
		t.Error("zero-cost query should complete without touching resources")
	}
}

func TestServerNegativeCostPanics(t *testing.T) {
	s := sim.New()
	db := NewServer(s, DefaultParams(), 1)
	defer func() {
		if recover() == nil {
			t.Error("negative cost must panic")
		}
	}()
	db.Submit(-2, nil)
}

func TestServerCPUContention(t *testing.T) {
	// 8 single-unit queries, 4 CPUs, no IO: two CPU waves of 1 ms.
	s := sim.New()
	p := DefaultParams()
	p.IOHitProb = 1
	db := NewServer(s, p, 7)
	var last sim.Time
	for i := 0; i < 8; i++ {
		db.Submit(1, func() { last = s.Now() })
	}
	s.Run()
	if last != 2 {
		t.Fatalf("last completion at %v, want 2 (two CPU waves)", last)
	}
}

func TestServerActiveTracking(t *testing.T) {
	s := sim.New()
	p := DefaultParams()
	p.IOHitProb = 1
	db := NewServer(s, p, 7)
	db.Submit(4, nil)
	db.Submit(4, nil)
	if db.Active() != 2 {
		t.Fatalf("Active = %d, want 2", db.Active())
	}
	s.Run()
	if db.Active() != 0 {
		t.Fatalf("Active after completion = %d", db.Active())
	}
	if avg := db.AvgActive(); math.Abs(avg-2) > 0.2 {
		t.Errorf("AvgActive = %v, want ≈2", avg)
	}
}

func TestServerDeterministicWithSeed(t *testing.T) {
	run := func(seed int64) sim.Time {
		s := sim.New()
		db := NewServer(s, DefaultParams(), seed)
		var last sim.Time
		for i := 0; i < 50; i++ {
			db.Submit(3, func() { last = s.Now() })
		}
		s.Run()
		return last
	}
	if run(5) != run(5) {
		t.Error("same seed must reproduce")
	}
	// Different seeds almost surely differ (buffer-hit coin flips).
	if run(5) == run(6) {
		t.Log("note: different seeds coincided; not failing but suspicious")
	}
}

func TestResourceStatsExposed(t *testing.T) {
	s := sim.New()
	p := DefaultParams()
	p.IOHitProb = 0
	db := NewServer(s, p, 3)
	db.Submit(5, nil)
	s.Run()
	if db.CPUStats().Completed != 5 {
		t.Errorf("cpu completions = %d, want 5", db.CPUStats().Completed)
	}
	if db.DiskStats().Completed != 5 {
		t.Errorf("disk completions = %d, want 5", db.DiskStats().Completed)
	}
}

func TestDbCurveInterpolation(t *testing.T) {
	c := NewDbCurve([]CurvePoint{{Gmpl: 10, UnitTime: 20}, {Gmpl: 1, UnitTime: 4}, {Gmpl: 5, UnitTime: 10}})
	// Sorted internally.
	if c.Points()[0].Gmpl != 1 {
		t.Fatal("points not sorted")
	}
	cases := []struct{ g, want float64 }{
		{0.5, 4}, // clamp below
		{1, 4},
		{3, 7}, // midpoint of (1,4)-(5,10)
		{5, 10},
		{7.5, 15}, // midpoint of (5,10)-(10,20)
		{10, 20},
		{15, 30}, // extrapolate slope 2
	}
	for _, cse := range cases {
		if got := c.UnitTime(cse.g); math.Abs(got-cse.want) > 1e-9 {
			t.Errorf("UnitTime(%v) = %v, want %v", cse.g, got, cse.want)
		}
	}
}

func TestDbCurveSinglePoint(t *testing.T) {
	c := NewDbCurve([]CurvePoint{{Gmpl: 4, UnitTime: 8}})
	for _, g := range []float64{1, 4, 100} {
		if c.UnitTime(g) != 8 {
			t.Errorf("single-point curve should be constant, got %v at %v", c.UnitTime(g), g)
		}
	}
}

func TestDbCurveEmptyPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("empty curve must panic")
		}
	}()
	NewDbCurve(nil)
}

func TestMeasureDbCurveMonotone(t *testing.T) {
	// The measured Db function must be (weakly) increasing in Gmpl and
	// bounded below by the no-contention unit time.
	curve := MeasureDbCurve(DefaultParams(), []int{1, 4, 8, 16, 32}, 400, 11)
	pts := curve.Points()
	minUnit := 1.0 // UnitCPUTime; IO adds more on misses
	prev := 0.0
	for _, p := range pts {
		if p.UnitTime < minUnit {
			t.Errorf("UnitTime(%d) = %v below physical floor", p.Gmpl, p.UnitTime)
		}
		if p.UnitTime+1e-6 < prev {
			t.Errorf("Db not monotone at %d: %v after %v", p.Gmpl, p.UnitTime, prev)
		}
		prev = p.UnitTime
	}
	// Heavy load must be clearly slower than light load.
	if pts[len(pts)-1].UnitTime < 1.5*pts[0].UnitTime {
		t.Errorf("contention too weak: %v -> %v", pts[0].UnitTime, pts[len(pts)-1].UnitTime)
	}
}

func TestMeasureDbCurveBadLevelPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("level < 1 must panic")
		}
	}()
	MeasureDbCurve(DefaultParams(), []int{0}, 100, 1)
}

func TestDbCurveString(t *testing.T) {
	c := NewDbCurve([]CurvePoint{{Gmpl: 1, UnitTime: 3.5}})
	if c.String() != "Db{1:3.50}" {
		t.Errorf("String = %q", c.String())
	}
}
