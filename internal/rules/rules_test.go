package rules

import (
	"testing"

	"repro/internal/core"
	"repro/internal/expr"
	"repro/internal/value"
)

func scoreSet() *Set {
	return &Set{
		Policy:  WeightedSum,
		Default: value.Float(0),
		Rules: []Rule{
			{Name: "loyalty", When: expr.MustParse("visits > 10"), Contribute: expr.MustParse("20"), Weight: 1},
			{Name: "cart", When: expr.MustParse("cart_total > 100"), Contribute: expr.MustParse("cart_total / 10"), Weight: 2},
			{Name: "penalty", When: expr.MustParse("returns > 3"), Contribute: expr.MustParse("-15"), Weight: 1},
		},
	}
}

func in(kv map[string]value.Value) core.Inputs { return core.MapInputs(kv) }

func TestPolicyString(t *testing.T) {
	names := map[Policy]string{
		WeightedSum: "weighted-sum",
		MaxOf:       "max",
		MinOf:       "min",
		FirstWins:   "first-wins",
		Collect:     "collect",
		Policy(9):   "Policy(9)",
	}
	for p, want := range names {
		if p.String() != want {
			t.Errorf("Policy(%d) = %q, want %q", p, p.String(), want)
		}
	}
}

func TestWeightedSum(t *testing.T) {
	s := scoreSet()
	v, audit := s.Evaluate(in(map[string]value.Value{
		"visits":     value.Int(20),
		"cart_total": value.Int(200),
		"returns":    value.Int(0),
	}))
	// loyalty 20×1 + cart (200/10)×2 = 60.
	if f, ok := v.AsFloat(); !ok || f != 60 {
		t.Errorf("score = %v, want 60", v)
	}
	if !audit[0].Fired || !audit[1].Fired || audit[2].Fired {
		t.Errorf("audit = %+v", audit)
	}
}

func TestNoRuleFiresUsesDefault(t *testing.T) {
	s := scoreSet()
	v, _ := s.Evaluate(in(map[string]value.Value{
		"visits": value.Int(1), "cart_total": value.Int(5), "returns": value.Int(0),
	}))
	if f, ok := v.AsFloat(); !ok || f != 0 {
		t.Errorf("default = %v, want 0", v)
	}
	empty := &Set{Policy: FirstWins}
	v, _ = empty.Evaluate(in(nil))
	if !v.IsNull() {
		t.Error("zero-value default must be ⟂")
	}
}

func TestNullInputsDontFire(t *testing.T) {
	// ⟂ inputs make conditions false (never true), matching the model's
	// incomplete-information semantics.
	s := scoreSet()
	v, audit := s.Evaluate(in(map[string]value.Value{
		"visits": value.Null, "cart_total": value.Null, "returns": value.Null,
	}))
	for _, a := range audit {
		if a.Fired {
			t.Errorf("rule %s fired on ⟂ inputs", a.Rule)
		}
	}
	if f, _ := v.AsFloat(); f != 0 {
		t.Errorf("score = %v", v)
	}
}

func TestNilWhenAlwaysFires(t *testing.T) {
	s := &Set{Policy: WeightedSum, Rules: []Rule{{Name: "base", Contribute: expr.MustParse("5")}}}
	v, audit := s.Evaluate(in(nil))
	if !audit[0].Fired {
		t.Error("nil When should always fire")
	}
	if f, _ := v.AsFloat(); f != 5 {
		t.Errorf("v = %v", v)
	}
}

func TestMaxMinPolicies(t *testing.T) {
	mk := func(p Policy) *Set {
		return &Set{Policy: p, Rules: []Rule{
			{Name: "a", Contribute: expr.MustParse("3")},
			{Name: "b", Contribute: expr.MustParse("7")},
			{Name: "c", Contribute: expr.MustParse("5")},
		}}
	}
	v, _ := mk(MaxOf).Evaluate(in(nil))
	if i, _ := v.AsInt(); i != 7 {
		t.Errorf("max = %v", v)
	}
	v, _ = mk(MinOf).Evaluate(in(nil))
	if i, _ := v.AsInt(); i != 3 {
		t.Errorf("min = %v", v)
	}
}

func TestFirstWins(t *testing.T) {
	s := &Set{Policy: FirstWins, Rules: []Rule{
		{Name: "vip", When: expr.MustParse("tier == \"vip\""), Contribute: expr.MustParse("\"gold\"")},
		{Name: "fallback", Contribute: expr.MustParse("\"standard\"")},
	}}
	v, _ := s.Evaluate(in(map[string]value.Value{"tier": value.Str("vip")}))
	if sv, _ := v.AsString(); sv != "gold" {
		t.Errorf("priority pick = %v", v)
	}
	v, _ = s.Evaluate(in(map[string]value.Value{"tier": value.Str("basic")}))
	if sv, _ := v.AsString(); sv != "standard" {
		t.Errorf("fallback = %v", v)
	}
}

func TestCollect(t *testing.T) {
	s := &Set{Policy: Collect, Rules: []Rule{
		{Name: "coat", When: expr.MustParse("cold == true"), Contribute: expr.MustParse("\"coat\"")},
		{Name: "hat", Contribute: expr.MustParse("\"hat\"")},
	}}
	v, _ := s.Evaluate(in(map[string]value.Value{"cold": value.Bool(true)}))
	l, ok := v.AsList()
	if !ok || len(l) != 2 {
		t.Fatalf("collect = %v", v)
	}
	v, _ = s.Evaluate(in(map[string]value.Value{"cold": value.Bool(false)}))
	l, _ = v.AsList()
	if len(l) != 1 {
		t.Fatalf("conditional collect = %v", v)
	}
}

func TestWeightedSumIgnoresNonNumeric(t *testing.T) {
	s := &Set{Policy: WeightedSum, Default: value.Int(-1), Rules: []Rule{
		{Name: "str", Contribute: expr.MustParse("\"oops\"")},
	}}
	v, _ := s.Evaluate(in(nil))
	if i, _ := v.AsInt(); i != -1 {
		t.Errorf("non-numeric contributions should fall back to default, got %v", v)
	}
}

func TestZeroWeightMeansOne(t *testing.T) {
	s := &Set{Policy: WeightedSum, Rules: []Rule{
		{Name: "w0", Contribute: expr.MustParse("4")}, // Weight 0 -> 1
	}}
	v, _ := s.Evaluate(in(nil))
	if f, _ := v.AsFloat(); f != 4 {
		t.Errorf("zero weight should scale by 1, got %v", v)
	}
}

func TestInputAttrs(t *testing.T) {
	s := scoreSet()
	got := s.InputAttrs()
	want := []string{"cart_total", "returns", "visits"}
	if len(got) != len(want) {
		t.Fatalf("InputAttrs = %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("InputAttrs = %v, want %v", got, want)
		}
	}
}

func TestTaskAdapterInDecisionFlow(t *testing.T) {
	s := scoreSet()
	schema := core.NewBuilder("ruleflow").
		Source("visits").
		Source("cart_total").
		Source("returns").
		Synthesis("score", expr.TrueExpr, s.InputAttrs(), s.Task()).
		Foreign("tgt", expr.MustParse("score > 50"), []string{"score"}, 1, core.ConstCompute(value.Str("promo!"))).
		Target("tgt").
		MustBuild()
	// Executing through the full engine is exercised in the engine tests;
	// here check the compute binding directly.
	score := schema.MustLookup("score")
	v := score.Task.Compute(core.MapInputs{
		"visits": value.Int(20), "cart_total": value.Int(200), "returns": value.Int(0),
	})
	if f, _ := v.AsFloat(); f != 60 {
		t.Errorf("score via Task() = %v", v)
	}
}
