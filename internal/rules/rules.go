// Package rules implements the "generalized form of business rules" that
// the decision flow model offers for specifying synthesis tasks (paper §2,
// citing the Vortex workflow model of [HLS+99a]).
//
// A rule set computes one attribute: each rule has a firing condition over
// the task's input attributes and a contribution expression; the
// contributions of all firing rules are combined under a declared policy
// (weighted sum, min/max, first-wins, or list collection). This is the
// mechanism behind attributes like the paper's "promo hit list" — many
// independent business factors each contribute a score, and the policy
// states how the factors aggregate — and it is what makes decision flows
// "more structured than expert systems", confining the effect of editing
// one rule to one attribute.
package rules

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/expr"
	"repro/internal/value"
)

// Policy states how the contributions of firing rules combine into the
// attribute's value.
type Policy uint8

const (
	// WeightedSum sums numeric contributions scaled by rule weights.
	WeightedSum Policy = iota
	// MaxOf takes the maximum contribution (ties keep the earlier rule).
	MaxOf
	// MinOf takes the minimum contribution.
	MinOf
	// FirstWins takes the contribution of the first firing rule in
	// declaration order — a priority list.
	FirstWins
	// Collect gathers all contributions into a list value, in declaration
	// order (e.g. assembling a hit list).
	Collect
)

// String names the policy.
func (p Policy) String() string {
	switch p {
	case WeightedSum:
		return "weighted-sum"
	case MaxOf:
		return "max"
	case MinOf:
		return "min"
	case FirstWins:
		return "first-wins"
	case Collect:
		return "collect"
	default:
		return fmt.Sprintf("Policy(%d)", uint8(p))
	}
}

// Rule is one business rule.
type Rule struct {
	// Name identifies the rule in audits.
	Name string
	// When guards the rule; a nil condition always fires. Evaluated over
	// the task's (stable) inputs, so ⟂-handling follows the expression
	// language's semantics.
	When expr.Expr
	// Contribute produces the rule's contribution when it fires.
	Contribute expr.Expr
	// Weight scales numeric contributions under the WeightedSum policy;
	// a zero weight is treated as 1.
	Weight float64
}

// Set is an ordered rule set with a combining policy.
type Set struct {
	// Policy combines firing-rule contributions.
	Policy Policy
	// Default is the attribute value when no rule fires. The zero Value is
	// ⟂, which matches the model's "no information" convention.
	Default value.Value
	// Rules fire independently; order matters for FirstWins and Collect.
	Rules []Rule
}

// InputAttrs returns the sorted union of attributes referenced by all rule
// conditions and contributions — the data inputs the owning synthesis task
// must declare.
func (s *Set) InputAttrs() []string {
	seen := map[string]bool{}
	var union []string
	add := func(e expr.Expr) {
		if e == nil {
			return
		}
		for _, n := range expr.Attrs(e) {
			if !seen[n] {
				seen[n] = true
				union = append(union, n)
			}
		}
	}
	for _, r := range s.Rules {
		add(r.When)
		add(r.Contribute)
	}
	// Keep deterministic order.
	for i := 1; i < len(union); i++ {
		for j := i; j > 0 && union[j] < union[j-1]; j-- {
			union[j], union[j-1] = union[j-1], union[j]
		}
	}
	return union
}

// Firing describes one rule's outcome in an evaluation, for audit trails.
type Firing struct {
	Rule  string
	Fired bool
	Value value.Value // contribution if fired
}

// Evaluate runs the rule set over the inputs, returning the combined value
// and the per-rule audit trail.
func (s *Set) Evaluate(in core.Inputs) (value.Value, []Firing) {
	env := inputsEnv{in}
	audit := make([]Firing, len(s.Rules))
	var contributions []value.Value
	var weights []float64
	for i, r := range s.Rules {
		audit[i] = Firing{Rule: r.Name}
		fired := true
		if r.When != nil {
			fired = expr.Eval3(r.When, env) == expr.True
		}
		if !fired {
			continue
		}
		v, _ := expr.EvalValue(r.Contribute, env)
		audit[i].Fired = true
		audit[i].Value = v
		contributions = append(contributions, v)
		w := r.Weight
		if w == 0 {
			w = 1
		}
		weights = append(weights, w)
	}
	if len(contributions) == 0 {
		return s.Default, audit
	}
	return s.combine(contributions, weights), audit
}

func (s *Set) combine(vals []value.Value, weights []float64) value.Value {
	switch s.Policy {
	case WeightedSum:
		sum := 0.0
		any := false
		for i, v := range vals {
			if f, ok := v.AsFloat(); ok {
				sum += f * weights[i]
				any = true
			}
		}
		if !any {
			return s.Default
		}
		return value.Float(sum)
	case MaxOf:
		best := value.Null
		for _, v := range vals {
			if best.IsNull() {
				best = v
				continue
			}
			if c, ok := value.Compare(v, best); ok && c > 0 {
				best = v
			}
		}
		return best
	case MinOf:
		best := value.Null
		for _, v := range vals {
			if best.IsNull() {
				best = v
				continue
			}
			if c, ok := value.Compare(v, best); ok && c < 0 {
				best = v
			}
		}
		return best
	case FirstWins:
		return vals[0]
	case Collect:
		return value.List(vals...)
	default:
		return s.Default
	}
}

// Task adapts the rule set to a core.ComputeFunc for use as a synthesis
// task (audit discarded).
func (s *Set) Task() core.ComputeFunc {
	return func(in core.Inputs) value.Value {
		v, _ := s.Evaluate(in)
		return v
	}
}

// inputsEnv exposes task inputs as an expression environment; inputs are
// stable by construction, so every attribute is known.
type inputsEnv struct{ in core.Inputs }

func (e inputsEnv) Lookup(name string) (value.Value, bool) { return e.in.Get(name), true }
