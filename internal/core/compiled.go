package core

import (
	"math/bits"

	"repro/internal/expr"
)

// This file implements schema compilation: at Build time every enabling
// condition (and every ExprCompute value expression) is compiled into a
// flat expr.Program over the schema's dense AttrID slots, and every
// attribute gets precomputed dependency bitsets over the enabling-flow
// graph. The prequalifier executes the programs against the snapshot's
// dense slot arrays and uses the bitsets to dirty exactly the conditions a
// completion can decide — no interface dispatch, no string lookups, no
// allocation on the serving hot path. The tree-walking evaluator remains
// the reference semantics; any condition the compiler cannot handle (e.g.
// a test-only Cmp3Adapter predicate) simply keeps a nil program and falls
// back to the walker.

// AttrSet is a bitset over a schema's AttrIDs. The underlying words are
// exported by the slice type so hot paths can iterate set bits without a
// callback; use Words (len(s)) and bit tricks, or ForEach for clarity.
type AttrSet []uint64

// NewAttrSet returns an empty set sized for n attributes.
func NewAttrSet(n int) AttrSet { return make(AttrSet, (n+63)/64) }

// Add inserts id into the set.
func (s AttrSet) Add(id AttrID) { s[id>>6] |= 1 << (uint(id) & 63) }

// Has reports membership of id.
func (s AttrSet) Has(id AttrID) bool { return s[id>>6]&(1<<(uint(id)&63)) != 0 }

// Or unions o into s. Both sets must be sized for the same schema.
func (s AttrSet) Or(o AttrSet) {
	for i, w := range o {
		s[i] |= w
	}
}

// ContainsAll reports whether every member of o is in s.
func (s AttrSet) ContainsAll(o AttrSet) bool {
	for i, w := range o {
		if w&^s[i] != 0 {
			return false
		}
	}
	return true
}

// Clear empties the set in place.
func (s AttrSet) Clear() { clear(s) }

// Empty reports whether no bit is set.
func (s AttrSet) Empty() bool {
	for _, w := range s {
		if w != 0 {
			return false
		}
	}
	return true
}

// Count returns the number of members.
func (s AttrSet) Count() int {
	n := 0
	for _, w := range s {
		n += bits.OnesCount64(w)
	}
	return n
}

// ForEach calls f for every member in ascending ID order.
func (s AttrSet) ForEach(f func(AttrID)) {
	for wi, w := range s {
		for w != 0 {
			f(AttrID(wi<<6 + bits.TrailingZeros64(w)))
			w &= w - 1
		}
	}
}

// CondProgram returns the compiled program of a's enabling condition, or
// nil when the condition is absent (sources) or not compilable — callers
// then fall back to tree-walking expr.Eval3. Program slots are AttrIDs of
// this schema, matching snapshot.Slots.
func (s *Schema) CondProgram(a AttrID) *expr.Program { return s.condProgs[a] }

// ValueProgram returns the compiled program of a's synthesis value
// expression (Task.Expr), or nil when the task's value is computed by an
// opaque ComputeFunc. The program is evaluated over a total environment
// (nil known mask): every slot reads its current value, ⟂ when never set,
// exactly as core.Inputs exposes them to ComputeFuncs.
func (s *Schema) ValueProgram(a AttrID) *expr.Program { return s.valProgs[a] }

// EnablingDeps returns the set of attributes a's enabling condition reads —
// the attribute's dependency bitset. The set must not be modified.
func (s *Schema) EnablingDeps(a AttrID) AttrSet { return s.enabDepsOf[a] }

// EnablingDependentsSet returns the set of attributes whose enabling
// condition reads a — the transpose of EnablingDeps, which is what a
// completion of a dirties. The set must not be modified.
func (s *Schema) EnablingDependentsSet(a AttrID) AttrSet { return s.enabDepOn[a] }

// compilePrograms builds the compiled execution artifacts. Called once by
// finalize after validation succeeds, so name resolution cannot fail for
// enabling conditions (validation already resolved every reference).
func (s *Schema) compilePrograms() {
	n := len(s.attrs)
	s.condProgs = make([]*expr.Program, n)
	s.valProgs = make([]*expr.Program, n)
	s.enabDepsOf = make([]AttrSet, n)
	s.enabDepOn = make([]AttrSet, n)
	resolve := func(name string) (int, bool) {
		id, ok := s.byName[name]
		return int(id), ok
	}
	for i, a := range s.attrs {
		deps := NewAttrSet(n)
		for _, in := range s.enabIn[i] {
			deps.Add(in)
		}
		s.enabDepsOf[i] = deps
		outs := NewAttrSet(n)
		for _, b := range s.enabOut[i] {
			outs.Add(b)
		}
		s.enabDepOn[i] = outs
		if a.Enabling != nil {
			if prog, err := expr.Compile(a.Enabling, resolve); err == nil {
				s.condProgs[i] = prog
			}
		}
		if a.Task != nil && a.Task.Expr != nil && a.Task.Compute != nil {
			if prog, err := expr.Compile(a.Task.Expr, resolve); err == nil {
				s.valProgs[i] = prog
			}
		}
	}
}
