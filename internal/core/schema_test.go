package core

import (
	"strings"
	"testing"

	"repro/internal/expr"
	"repro/internal/value"
)

// chain builds source -> a -> b -> target for graph tests.
func chainSchema(t *testing.T) *Schema {
	t.Helper()
	return NewBuilder("chain").
		Source("src").
		Foreign("a", expr.TrueExpr, []string{"src"}, 2, ConstCompute(value.Int(1))).
		Foreign("b", expr.MustParse("a > 0"), []string{"a"}, 3, ConstCompute(value.Int(2))).
		Foreign("tgt", expr.TrueExpr, []string{"b"}, 1, ConstCompute(value.Int(3))).
		Target("tgt").
		MustBuild()
}

func TestBuilderBasics(t *testing.T) {
	s := chainSchema(t)
	if s.Name() != "chain" {
		t.Errorf("Name = %q", s.Name())
	}
	if s.NumAttrs() != 4 {
		t.Errorf("NumAttrs = %d", s.NumAttrs())
	}
	if len(s.Sources()) != 1 || s.Attr(s.Sources()[0]).Name != "src" {
		t.Error("sources wrong")
	}
	if len(s.Targets()) != 1 || s.Attr(s.Targets()[0]).Name != "tgt" {
		t.Error("targets wrong")
	}
	a := s.MustLookup("a")
	if a.IsSource() || a.IsTarget || a.Cost() != 2 {
		t.Error("attribute a metadata wrong")
	}
	if src := s.MustLookup("src"); !src.IsSource() || src.Cost() != 0 {
		t.Error("source metadata wrong")
	}
	if _, ok := s.Lookup("nope"); ok {
		t.Error("Lookup of unknown name should fail")
	}
}

func TestMustLookupPanics(t *testing.T) {
	s := chainSchema(t)
	defer func() {
		if recover() == nil {
			t.Error("MustLookup should panic for unknown attribute")
		}
	}()
	s.MustLookup("nope")
}

func TestGraphEdges(t *testing.T) {
	s := chainSchema(t)
	b := s.MustLookup("b")
	din := s.DataInputs(b.ID())
	if len(din) != 1 || s.Attr(din[0]).Name != "a" {
		t.Errorf("data inputs of b = %v", din)
	}
	ein := s.EnablingInputs(b.ID())
	if len(ein) != 1 || s.Attr(ein[0]).Name != "a" {
		t.Errorf("enabling inputs of b = %v", ein)
	}
	a := s.MustLookup("a")
	if dd := s.DataDependents(a.ID()); len(dd) != 1 || s.Attr(dd[0]).Name != "b" {
		t.Errorf("data dependents of a = %v", dd)
	}
	if ed := s.EnablingDependents(a.ID()); len(ed) != 1 || s.Attr(ed[0]).Name != "b" {
		t.Errorf("enabling dependents of a = %v", ed)
	}
}

func TestTopoAndRank(t *testing.T) {
	s := chainSchema(t)
	topo := s.TopoOrder()
	pos := map[string]int{}
	for i, id := range topo {
		pos[s.Attr(id).Name] = i
	}
	if !(pos["src"] < pos["a"] && pos["a"] < pos["b"] && pos["b"] < pos["tgt"]) {
		t.Errorf("topo order wrong: %v", pos)
	}
	wantRank := map[string]int{"src": 0, "a": 1, "b": 2, "tgt": 3}
	for name, want := range wantRank {
		if got := s.Rank(s.MustLookup(name).ID()); got != want {
			t.Errorf("Rank(%s) = %d, want %d", name, got, want)
		}
	}
	if s.Diameter() != 3 {
		t.Errorf("Diameter = %d, want 3", s.Diameter())
	}
	if s.TotalCost() != 6 {
		t.Errorf("TotalCost = %d, want 6", s.TotalCost())
	}
}

func TestWideSchemaRank(t *testing.T) {
	// Two independent rows: diameter is per-row length, not total nodes.
	b := NewBuilder("wide").Source("s")
	b.Foreign("a1", expr.TrueExpr, []string{"s"}, 1, nil)
	b.Foreign("a2", expr.TrueExpr, []string{"a1"}, 1, nil)
	b.Foreign("b1", expr.TrueExpr, []string{"s"}, 1, nil)
	b.Foreign("t", expr.TrueExpr, []string{"a2", "b1"}, 1, nil)
	b.Target("t")
	s := b.MustBuild()
	if s.Diameter() != 3 {
		t.Errorf("Diameter = %d, want 3", s.Diameter())
	}
	if got := s.Rank(s.MustLookup("b1").ID()); got != 1 {
		t.Errorf("Rank(b1) = %d, want 1", got)
	}
}

func TestModuleFlattening(t *testing.T) {
	modCond := expr.MustParse(`contains(cart, "boys")`)
	s := NewBuilder("flat").
		Source("cart").
		Module(modCond).
		Foreign("climate", expr.TrueExpr, nil, 1, nil).
		Foreign("hits", expr.MustParse("climate > 0"), []string{"climate"}, 2, nil).
		Done().
		Foreign("t", expr.TrueExpr, nil, 1, nil).
		Target("t").
		MustBuild()

	// The module condition must be conjoined into both members.
	climate := s.MustLookup("climate")
	if climate.Enabling.String() != modCond.String() {
		t.Errorf("climate condition = %v (true conjunct should fold away)", climate.Enabling)
	}
	hits := s.MustLookup("hits")
	wantStr := `contains(cart, "boys") and climate > 0`
	if hits.Enabling.String() != wantStr {
		t.Errorf("hits condition = %q, want %q", hits.Enabling.String(), wantStr)
	}
	// Flattening creates enabling edges from cart into module members.
	found := false
	for _, in := range s.EnablingInputs(climate.ID()) {
		if s.Attr(in).Name == "cart" {
			found = true
		}
	}
	if !found {
		t.Error("module condition should add enabling edge cart -> climate")
	}
}

func TestNestedModules(t *testing.T) {
	s := NewBuilder("nested").
		Source("x").
		Module(expr.MustParse("x > 0")).
		Module(expr.MustParse("x < 10")).
		Foreign("inner", expr.MustParse("x != 5"), nil, 1, nil).
		Done().
		Foreign("t", expr.TrueExpr, nil, 1, nil).
		Target("t").
		MustBuild()
	want := "x > 0 and x < 10 and x != 5"
	if got := s.MustLookup("inner").Enabling.String(); got != want {
		t.Errorf("nested module condition = %q, want %q", got, want)
	}
}

func TestValidationDuplicateName(t *testing.T) {
	_, err := NewBuilder("dup").
		Source("x").
		Foreign("x", expr.TrueExpr, nil, 1, nil).
		Target("x").
		Build()
	requireProblem(t, err, "duplicate attribute name")
}

func TestValidationUnknownInput(t *testing.T) {
	_, err := NewBuilder("unk").
		Source("x").
		Foreign("a", expr.TrueExpr, []string{"ghost"}, 1, nil).
		Target("a").
		Build()
	requireProblem(t, err, "unknown attribute")
}

func TestValidationUnknownEnablingRef(t *testing.T) {
	_, err := NewBuilder("unk2").
		Source("x").
		Foreign("a", expr.MustParse("ghost > 1"), nil, 1, nil).
		Target("a").
		Build()
	requireProblem(t, err, "unknown attribute")
}

func TestValidationCycle(t *testing.T) {
	b := NewBuilder("cyc").Source("s")
	b.Foreign("a", expr.TrueExpr, []string{"b"}, 1, nil)
	b.Foreign("b", expr.TrueExpr, []string{"a"}, 1, nil)
	b.Target("a")
	_, err := b.Build()
	requireProblem(t, err, "cyclic")
}

func TestValidationEnablingCycle(t *testing.T) {
	// Cycle through an enabling edge only.
	b := NewBuilder("cyc2").Source("s")
	b.Foreign("a", expr.MustParse("b > 0"), []string{"s"}, 1, nil)
	b.Foreign("b", expr.TrueExpr, []string{"a"}, 1, nil)
	b.Target("b")
	_, err := b.Build()
	requireProblem(t, err, "cyclic")
}

func TestValidationNoTarget(t *testing.T) {
	_, err := NewBuilder("nt").
		Source("x").
		Foreign("a", expr.TrueExpr, nil, 1, nil).
		Build()
	requireProblem(t, err, "no target")
}

func TestValidationTargetUnknown(t *testing.T) {
	_, err := NewBuilder("tu").
		Source("x").
		Foreign("a", expr.TrueExpr, nil, 1, nil).
		Target("ghost").
		Build()
	requireProblem(t, err, "no task")
}

func TestValidationBadCosts(t *testing.T) {
	_, err := NewBuilder("bc").
		Source("x").
		Foreign("a", expr.TrueExpr, nil, 0, nil).
		Target("a").
		Build()
	requireProblem(t, err, "cost >= 1")

	b := NewBuilder("bc2").Source("x")
	b.add(&Attribute{Name: "a", Enabling: expr.TrueExpr, Task: &Task{Kind: SynthesisTask, Cost: 3}})
	b.Target("a")
	_, err = b.Build()
	requireProblem(t, err, "cost 0")
}

func TestValidationDuplicateInput(t *testing.T) {
	_, err := NewBuilder("di").
		Source("x").
		Foreign("a", expr.TrueExpr, []string{"x", "x"}, 1, nil).
		Target("a").
		Build()
	requireProblem(t, err, "twice")
}

func TestValidationSourceTarget(t *testing.T) {
	b := NewBuilder("st").Source("x")
	b.attrs[0].IsTarget = true
	b.Foreign("a", expr.TrueExpr, nil, 1, nil)
	_, err := b.Build()
	requireProblem(t, err, "both source and target")
}

func TestValidationAggregatesProblems(t *testing.T) {
	b := NewBuilder("multi").Source("x")
	b.Foreign("a", expr.TrueExpr, []string{"ghost"}, 0, nil)
	_, err := b.Build()
	ve, ok := err.(*ValidationError)
	if !ok {
		t.Fatalf("error type = %T", err)
	}
	if len(ve.Problems) < 3 { // unknown input, bad cost, no target
		t.Errorf("expected >= 3 problems, got %v", ve.Problems)
	}
	if !strings.Contains(ve.Error(), "multi") {
		t.Error("error should name the schema")
	}
}

func requireProblem(t *testing.T, err error, substr string) {
	t.Helper()
	if err == nil {
		t.Fatalf("expected validation error containing %q", substr)
	}
	if !strings.Contains(err.Error(), substr) {
		t.Fatalf("error %q does not contain %q", err.Error(), substr)
	}
}

func TestExprCompute(t *testing.T) {
	fn := ExprCompute(expr.MustParse("a * 2 + b"))
	v := fn(MapInputs{"a": value.Int(3), "b": value.Int(1)})
	if !value.Identical(v, value.Int(7)) {
		t.Errorf("ExprCompute = %v", v)
	}
	// Null inputs flow through as nulls.
	v = fn(MapInputs{"a": value.Null, "b": value.Int(1)})
	if !v.IsNull() {
		t.Errorf("ExprCompute with null = %v", v)
	}
}

func TestConstCompute(t *testing.T) {
	fn := ConstCompute(value.Str("x"))
	if v := fn(MapInputs{}); !value.Identical(v, value.Str("x")) {
		t.Errorf("ConstCompute = %v", v)
	}
}

func TestSynthesisExprDerivesInputs(t *testing.T) {
	s := NewBuilder("sx").
		Source("a").
		Source("b").
		SynthesisExpr("sum", expr.TrueExpr, expr.MustParse("a + b")).
		Foreign("t", expr.TrueExpr, []string{"sum"}, 1, nil).
		Target("t").
		MustBuild()
	sum := s.MustLookup("sum")
	if len(sum.Inputs) != 2 {
		t.Errorf("derived inputs = %v", sum.Inputs)
	}
	if sum.Task.Kind != SynthesisTask || sum.Cost() != 0 {
		t.Error("synthesis task metadata wrong")
	}
}

func TestAttrNames(t *testing.T) {
	s := chainSchema(t)
	names := s.AttrNames()
	want := []string{"src", "a", "b", "tgt"}
	for i := range want {
		if names[i] != want[i] {
			t.Fatalf("AttrNames = %v, want %v", names, want)
		}
	}
}

func TestTaskKindString(t *testing.T) {
	if ForeignTask.String() != "foreign" || SynthesisTask.String() != "synthesis" {
		t.Error("TaskKind.String wrong")
	}
}
