package core

import (
	"fmt"
	"strconv"
	"strings"

	"repro/internal/expr"
)

// parseCond parses an enabling condition string; empty means "true".
func parseCond(src string) (expr.Expr, error) {
	if strings.TrimSpace(src) == "" {
		return expr.TrueExpr, nil
	}
	return expr.Parse(src)
}

// ParseSchema parses the decision flow text format. The format exists so
// examples and tools can define schemas readably; it expresses structure
// (attributes, conditions, costs, modules) while foreign-task compute
// functions are bound afterwards with Schema.BindCompute.
//
// Grammar (line-oriented; '#' starts a comment; indentation is free):
//
//	schema <name>
//	source <attr>
//	module when <condition>        # opens a module scope
//	end                            # closes the innermost module
//	query <attr> [from a,b,...] [cost <n>] [when <condition>]
//	synth <attr> [from a,b,...] [when <condition>] [= <expression>]
//	target <attr>                  # marks an existing attribute
//
// query declares a foreign task (default cost 1); synth declares a
// synthesis task, computed by the trailing expression when given (its
// referenced attributes are added to the inputs).
func ParseSchema(src string) (*Schema, error) {
	var b *Builder
	var modStack []expr.Expr // accumulated module conditions
	curCond := func() expr.Expr {
		if len(modStack) == 0 {
			return expr.TrueExpr
		}
		return modStack[len(modStack)-1]
	}
	var targets []string

	for lineNo, raw := range strings.Split(src, "\n") {
		line := raw
		if i := strings.IndexByte(line, '#'); i >= 0 {
			line = line[:i]
		}
		line = strings.TrimSpace(line)
		if line == "" {
			continue
		}
		fail := func(format string, args ...any) error {
			return fmt.Errorf("core: schema text line %d: %s", lineNo+1, fmt.Sprintf(format, args...))
		}
		word, rest := splitWord(line)
		if b == nil && word != "schema" {
			return nil, fail("expected 'schema <name>' first, found %q", line)
		}
		switch word {
		case "schema":
			if b != nil {
				return nil, fail("duplicate schema declaration")
			}
			if rest == "" {
				return nil, fail("schema needs a name")
			}
			b = NewBuilder(rest)
		case "source":
			if rest == "" {
				return nil, fail("source needs a name")
			}
			b.Source(rest)
		case "module":
			kw, condSrc := splitWord(rest)
			if kw != "when" {
				return nil, fail("module requires 'when <condition>'")
			}
			cond, err := parseCond(condSrc)
			if err != nil {
				return nil, fail("bad module condition: %v", err)
			}
			modStack = append(modStack, expr.AndOf(curCond(), cond))
		case "end":
			if len(modStack) == 0 {
				return nil, fail("'end' without open module")
			}
			modStack = modStack[:len(modStack)-1]
		case "query", "synth":
			name, opts := splitWord(rest)
			if name == "" {
				return nil, fail("%s needs a name", word)
			}
			inputs, cost, cond, synthE, err := parseTaskOpts(opts)
			if err != nil {
				return nil, fail("%v", err)
			}
			full := expr.AndOf(curCond(), cond)
			if word == "query" {
				if cost == 0 {
					cost = 1
				}
				b.Foreign(name, full, inputs, cost, nil)
			} else {
				if cost != 0 {
					return nil, fail("synth tasks cannot have a cost")
				}
				if synthE != nil {
					b.addSynthesisExpr(name, full, mergeInputs(inputs, expr.Attrs(synthE)), synthE)
				} else {
					b.Synthesis(name, full, inputs, nil)
				}
			}
		case "target":
			if rest == "" {
				return nil, fail("target needs a name")
			}
			targets = append(targets, rest)
		default:
			return nil, fail("unknown directive %q", word)
		}
	}
	if b == nil {
		return nil, fmt.Errorf("core: schema text is empty")
	}
	if len(modStack) > 0 {
		return nil, fmt.Errorf("core: schema text has %d unclosed module(s)", len(modStack))
	}
	for _, t := range targets {
		b.Target(t)
	}
	return b.Build()
}

// parseTaskOpts parses the option tail of query/synth lines:
// [from a,b,...] [cost n] [when <condition...>] [= <expression...>]
// 'when' and '=' consume the rest of the line up to the other marker; to
// keep the grammar simple, 'when' must precede '='.
func parseTaskOpts(opts string) (inputs []string, cost int, cond expr.Expr, synth expr.Expr, err error) {
	cond = expr.TrueExpr
	s := strings.TrimSpace(opts)

	// Split off trailing "= expr".
	if i := findTopLevel(s, "="); i >= 0 {
		synthSrc := strings.TrimSpace(s[i+1:])
		s = strings.TrimSpace(s[:i])
		if synthSrc == "" {
			return nil, 0, nil, nil, fmt.Errorf("'=' needs an expression")
		}
		synth, err = expr.Parse(synthSrc)
		if err != nil {
			return nil, 0, nil, nil, fmt.Errorf("bad synthesis expression: %v", err)
		}
	}
	// Split off trailing "when cond".
	if i := findKeyword(s, "when"); i >= 0 {
		condSrc := strings.TrimSpace(s[i+len("when"):])
		s = strings.TrimSpace(s[:i])
		cond, err = parseCond(condSrc)
		if err != nil {
			return nil, 0, nil, nil, fmt.Errorf("bad condition: %v", err)
		}
	}
	// Remaining: [from a,b,...] [cost n] in any order.
	for s != "" {
		var word string
		word, s = splitWord(s)
		switch word {
		case "from":
			var list string
			list, s = splitWord(s)
			if list == "" {
				return nil, 0, nil, nil, fmt.Errorf("'from' needs attribute names")
			}
			for _, in := range strings.Split(list, ",") {
				if in = strings.TrimSpace(in); in != "" {
					inputs = append(inputs, in)
				}
			}
		case "cost":
			var num string
			num, s = splitWord(s)
			cost, err = strconv.Atoi(num)
			if err != nil {
				return nil, 0, nil, nil, fmt.Errorf("bad cost %q", num)
			}
		default:
			return nil, 0, nil, nil, fmt.Errorf("unexpected %q in task options", word)
		}
	}
	return inputs, cost, cond, synth, nil
}

// findKeyword locates a whitespace-delimited keyword at top level of s.
func findKeyword(s, kw string) int {
	fields := strings.Fields(s)
	pos := 0
	for _, f := range fields {
		i := strings.Index(s[pos:], f)
		abs := pos + i
		if f == kw {
			return abs
		}
		pos = abs + len(f)
	}
	return -1
}

// findTopLevel locates op in s outside any parentheses/brackets/strings,
// skipping comparison operators that contain '=' ("==", "!=", "<=", ">=").
func findTopLevel(s, op string) int {
	depth := 0
	inStr := false
	for i := 0; i < len(s); i++ {
		c := s[i]
		if inStr {
			if c == '\\' {
				i++
			} else if c == '"' {
				inStr = false
			}
			continue
		}
		switch c {
		case '"':
			inStr = true
		case '(', '[':
			depth++
		case ')', ']':
			depth--
		default:
			if depth == 0 && strings.HasPrefix(s[i:], op) {
				if op == "=" {
					prev := byte(0)
					if i > 0 {
						prev = s[i-1]
					}
					next := byte(0)
					if i+1 < len(s) {
						next = s[i+1]
					}
					if prev == '=' || prev == '!' || prev == '<' || prev == '>' || next == '=' {
						continue
					}
				}
				return i
			}
		}
	}
	return -1
}

func splitWord(s string) (word, rest string) {
	s = strings.TrimSpace(s)
	i := strings.IndexAny(s, " \t")
	if i < 0 {
		return s, ""
	}
	return s[:i], strings.TrimSpace(s[i+1:])
}

// mergeInputs unions two input lists preserving order of first occurrence.
func mergeInputs(a, b []string) []string {
	seen := map[string]bool{}
	var out []string
	for _, lists := range [][]string{a, b} {
		for _, n := range lists {
			if !seen[n] {
				seen[n] = true
				out = append(out, n)
			}
		}
	}
	return out
}
