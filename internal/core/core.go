// Package core implements the decision flow model of Hull, Llirbat, Kumar,
// Zhou, Dong and Su, "Optimization Techniques for Data-Intensive Decision
// Flows" (ICDE 2000), §2.
//
// A decision flow is attribute-centric: execution determines the values of a
// set of attributes. Formally a (flattened) decision flow schema is a
// 4-tuple (A, Source, Target, {EC_a}) where A is a set of attributes, Source
// and Target are disjoint subsets of A, and EC_a is an enabling condition
// for every non-source attribute. Every non-source attribute is computed by
// exactly one task — either a foreign task (a database query or other
// external call, with a cost in units of processing) or a synthesis task (a
// user-defined function or expression over other attributes).
//
// The schema induces a dependency graph with two kinds of edges: a data-flow
// edge a→b when a is a data input of b's task, and an enabling-flow edge a→b
// when a occurs in EC_b. A schema is well-formed iff this graph is acyclic;
// Build rejects cyclic schemas.
//
// Schemas are presented to users modularly (modules group tasks and carry
// their own enabling conditions) and flattened for execution: flattening
// "and"s a module's condition into the condition of each member, exactly as
// the paper's Figure 1(b) derives from Figure 1(a).
package core

import (
	"fmt"

	"repro/internal/expr"
	"repro/internal/value"
)

// AttrID is a dense index identifying an attribute within one Schema.
// IDs are assigned in declaration order and are stable for the schema's
// lifetime; all engine bookkeeping is arrays indexed by AttrID.
type AttrID int

// NoAttr is the invalid attribute ID.
const NoAttr AttrID = -1

// TaskKind distinguishes the two task families of the model.
type TaskKind uint8

const (
	// ForeignTask is a task external to the execution engine — in this
	// paper's experiments, always a database query with a cost measured in
	// units of processing.
	ForeignTask TaskKind = iota
	// SynthesisTask produces an attribute value from other attribute values
	// via a user-defined function or expression; it executes locally and is
	// treated as free relative to database work.
	SynthesisTask
)

// String returns "foreign" or "synthesis".
func (k TaskKind) String() string {
	if k == SynthesisTask {
		return "synthesis"
	}
	return "foreign"
}

// Inputs gives a task read access to its stable input attributes. Get
// returns ⟂ for inputs whose attributes were disabled — tasks must be able
// to execute even when some inputs are ⟂ (the paper's requirement that
// decisions can be made with incomplete information).
type Inputs interface {
	Get(name string) value.Value
}

// MapInputs is an Inputs backed by a map; absent names read as ⟂.
type MapInputs map[string]value.Value

// Get implements Inputs.
func (m MapInputs) Get(name string) value.Value { return m[name] }

// ComputeFunc produces the attribute value of a task from its inputs.
// Implementations must be pure: same inputs, same value. Purity is what
// lets the engine execute tasks speculatively and in any schedule while
// remaining faithful to the declarative semantics.
type ComputeFunc func(in Inputs) value.Value

// Task describes how a non-source attribute's value is produced.
type Task struct {
	// Kind classifies the task.
	Kind TaskKind
	// Cost is the task's execution cost in units of processing. It is
	// meaningful for foreign tasks (the paper draws costs from [1,5]);
	// synthesis tasks have cost 0. Cost doubles as the estimate used by the
	// "cheapest first" scheduling heuristic.
	Cost int
	// Compute produces the value. nil Compute yields ⟂ (a foreign task
	// whose binding is not yet supplied).
	Compute ComputeFunc
	// DB optionally names the database the task's query targets. Empty
	// means the engine's default database. The paper assumes a single
	// database "to simplify the discussion" and raises multi-database
	// execution as future work (§6); this field implements that extension.
	DB string
	// Volatile marks a foreign task whose query result may differ between
	// executions with identical inputs (a read of mutating external state,
	// a side-effecting call). The serving runtime's query layer never
	// deduplicates or caches volatile tasks across instances; each launch
	// performs its own backend round trip. Non-volatile tasks inherit the
	// ComputeFunc purity contract, which is what makes a shared or cached
	// result indistinguishable from a fresh one.
	Volatile bool
	// Expr, when non-nil, records the expression Compute was built from
	// (ExprCompute). The schema compiler turns it into a flat value program
	// executed over dense slots on the hot path; Compute remains the
	// reference semantics (and the oracle's evaluator). Both must be set
	// from the same expression — Expr with a divergent Compute breaks the
	// compiled path's equivalence guarantee.
	Expr expr.Expr
}

// Attribute is one node of a decision flow.
type Attribute struct {
	// Name is the attribute's unique name within its schema.
	Name string
	// Enabling is the attribute's enabling condition; nil for sources.
	// If the condition evaluates false the attribute is DISABLED and takes
	// the value ⟂.
	Enabling expr.Expr
	// Inputs names the data-flow inputs of the attribute's task, in the
	// order the task wants them. Source attributes have none.
	Inputs []string
	// Task computes the attribute; nil for sources.
	Task *Task
	// IsTarget marks target attributes: execution of an instance completes
	// successfully when every enabled target has a value (and may halt early
	// once every target is stable).
	IsTarget bool

	id       AttrID
	isSource bool
}

// ID returns the attribute's dense index in its schema.
func (a *Attribute) ID() AttrID { return a.id }

// IsSource reports whether the attribute is a source (given as input to the
// decision flow instance rather than computed).
func (a *Attribute) IsSource() bool { return a.isSource }

// Cost returns the task cost in units of processing (0 for sources and
// synthesis tasks).
func (a *Attribute) Cost() int {
	if a.Task == nil {
		return 0
	}
	return a.Task.Cost
}

// ExprCompute adapts an expression to a ComputeFunc: the expression is
// evaluated over the task's stable inputs. Referenced attributes that are
// ⟂ behave per the expression language's null semantics.
func ExprCompute(e expr.Expr) ComputeFunc {
	return func(in Inputs) value.Value {
		v, _ := expr.EvalValue(e, inputsEnv{in})
		return v
	}
}

// inputsEnv adapts Inputs to expr.Env. Every lookup is "known" because
// tasks run only when their inputs are stable.
type inputsEnv struct{ in Inputs }

func (e inputsEnv) Lookup(name string) (value.Value, bool) { return e.in.Get(name), true }

// ConstCompute returns a ComputeFunc producing a fixed value; used heavily
// by the schema generator, whose complete snapshot is scripted.
func ConstCompute(v value.Value) ComputeFunc {
	return func(Inputs) value.Value { return v }
}

// ValidationError reports why a schema is not well-formed. It aggregates
// all problems found rather than stopping at the first.
type ValidationError struct {
	Schema   string
	Problems []string
}

// Error implements the error interface.
func (e *ValidationError) Error() string {
	msg := fmt.Sprintf("core: schema %q is not well-formed (%d problem(s))", e.Schema, len(e.Problems))
	for _, p := range e.Problems {
		msg += "\n\t- " + p
	}
	return msg
}
