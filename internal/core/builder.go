package core

import (
	"repro/internal/expr"
)

// Builder assembles a decision flow schema. It supports the modular form
// presented to users: modules carry enabling conditions that flattening
// "and"s into every member, recursively (paper §2, Figure 1(a)→1(b)).
//
// Builder methods record declarations; Build performs flattening and
// validation, returning all problems at once.
type Builder struct {
	name  string
	attrs []*Attribute
}

// NewBuilder creates a schema builder.
func NewBuilder(name string) *Builder {
	return &Builder{name: name}
}

// Module is a named group of attributes sharing an enabling condition.
// Modules support the specification-scalability story of the paper; they
// have no runtime existence after flattening.
type Module struct {
	b    *Builder
	cond expr.Expr
}

// Source declares a source attribute (an input of the flow instance).
func (b *Builder) Source(name string) *Builder {
	b.attrs = append(b.attrs, &Attribute{Name: name, isSource: true})
	return b
}

// Module opens a module whose members' enabling conditions are all
// conjoined with cond.
func (b *Builder) Module(cond expr.Expr) *Module {
	return &Module{b: b, cond: cond}
}

// Module opens a nested module; conditions accumulate conjunctively.
func (m *Module) Module(cond expr.Expr) *Module {
	return &Module{b: m.b, cond: expr.AndOf(m.cond, cond)}
}

// add appends a flattened attribute.
func (b *Builder) add(a *Attribute) { b.attrs = append(b.attrs, a) }

// Foreign declares a foreign-task attribute (e.g. a database dip) at the
// builder's top level.
//
// name: attribute name; cond: enabling condition (expr.TrueExpr for the
// unconditional diamonds of Fig 1); inputs: data-flow input attribute
// names; cost: units of processing; compute: result function (nil yields ⟂).
func (b *Builder) Foreign(name string, cond expr.Expr, inputs []string, cost int, compute ComputeFunc) *Builder {
	b.add(&Attribute{
		Name:     name,
		Enabling: cond,
		Inputs:   inputs,
		Task:     &Task{Kind: ForeignTask, Cost: cost, Compute: compute},
	})
	return b
}

// ForeignDB declares a foreign-task attribute whose query targets the
// named database (multi-database execution, the paper's §6 extension).
func (b *Builder) ForeignDB(name, db string, cond expr.Expr, inputs []string, cost int, compute ComputeFunc) *Builder {
	b.add(&Attribute{
		Name:     name,
		Enabling: cond,
		Inputs:   inputs,
		Task:     &Task{Kind: ForeignTask, Cost: cost, Compute: compute, DB: db},
	})
	return b
}

// Synthesis declares a synthesis-task attribute computed by fn.
func (b *Builder) Synthesis(name string, cond expr.Expr, inputs []string, fn ComputeFunc) *Builder {
	b.add(&Attribute{
		Name:     name,
		Enabling: cond,
		Inputs:   inputs,
		Task:     &Task{Kind: SynthesisTask, Compute: fn},
	})
	return b
}

// SynthesisExpr declares a synthesis-task attribute computed by evaluating
// e over its referenced attributes; the data inputs are derived from e.
func (b *Builder) SynthesisExpr(name string, cond expr.Expr, e expr.Expr) *Builder {
	b.addSynthesisExpr(name, cond, expr.Attrs(e), e)
	return b
}

// addSynthesisExpr records an expression-computed synthesis attribute,
// keeping the source expression on the Task so the schema compiler can
// build its flat value program.
func (b *Builder) addSynthesisExpr(name string, cond expr.Expr, inputs []string, e expr.Expr) {
	b.add(&Attribute{
		Name:     name,
		Enabling: cond,
		Inputs:   inputs,
		Task:     &Task{Kind: SynthesisTask, Compute: ExprCompute(e), Expr: e},
	})
}

// Target marks a previously declared attribute as a target. Unknown names
// are reported by Build.
func (b *Builder) Target(name string) *Builder {
	for _, a := range b.attrs {
		if a.Name == name {
			a.IsTarget = true
			return b
		}
	}
	// Record a placeholder the validator will flag (empty-name dup avoided
	// by using the requested name with no task: caught as "no task").
	b.add(&Attribute{Name: name, IsTarget: true, Enabling: expr.TrueExpr})
	return b
}

// Foreign declares a foreign-task attribute inside the module; the module's
// condition is conjoined with cond.
func (m *Module) Foreign(name string, cond expr.Expr, inputs []string, cost int, compute ComputeFunc) *Module {
	m.b.add(&Attribute{
		Name:     name,
		Enabling: expr.AndOf(m.cond, cond),
		Inputs:   inputs,
		Task:     &Task{Kind: ForeignTask, Cost: cost, Compute: compute},
	})
	return m
}

// Synthesis declares a synthesis-task attribute inside the module.
func (m *Module) Synthesis(name string, cond expr.Expr, inputs []string, fn ComputeFunc) *Module {
	m.b.add(&Attribute{
		Name:     name,
		Enabling: expr.AndOf(m.cond, cond),
		Inputs:   inputs,
		Task:     &Task{Kind: SynthesisTask, Compute: fn},
	})
	return m
}

// SynthesisExpr declares an expression synthesis attribute inside the module.
func (m *Module) SynthesisExpr(name string, cond expr.Expr, e expr.Expr) *Module {
	m.b.addSynthesisExpr(name, expr.AndOf(m.cond, cond), expr.Attrs(e), e)
	return m
}

// Done returns the parent builder for call chaining.
func (m *Module) Done() *Builder { return m.b }

// AddAttribute appends a fully specified attribute. Used by the generator,
// which constructs attributes directly.
func (b *Builder) AddAttribute(a *Attribute) *Builder {
	b.add(a)
	return b
}

// Build flattens, validates and returns the schema. The builder must not be
// reused after Build.
func (b *Builder) Build() (*Schema, error) {
	s := &Schema{name: b.name, attrs: b.attrs}
	if err := s.finalize(); err != nil {
		return nil, err
	}
	return s, nil
}

// MustBuild is Build that panics on validation errors; for tests and
// examples with statically known-good schemas.
func (b *Builder) MustBuild() *Schema {
	s, err := b.Build()
	if err != nil {
		panic(err)
	}
	return s
}
