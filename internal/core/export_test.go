package core

import (
	"encoding/json"
	"strings"
	"testing"

	"repro/internal/expr"

	"repro/internal/value"
)

func TestDOT(t *testing.T) {
	s := chainSchema(t)
	dot := s.DOT()
	for _, want := range []string{
		"digraph \"chain\"",
		"\"src\" [label=\"src\", shape=ellipse]",
		"style=filled",                   // target styling
		"\"a\" -> \"b\" [style=dashed];", // data edge
		"\"a\" -> \"b\";",                // enabling edge
		"xlabel=\"cost 2\"",              // cost annotation
	} {
		if !strings.Contains(dot, want) {
			t.Errorf("DOT output missing %q:\n%s", want, dot)
		}
	}
}

func TestJSONRoundTrip(t *testing.T) {
	s := chainSchema(t)
	data, err := json.Marshal(s)
	if err != nil {
		t.Fatal(err)
	}
	s2, err := UnmarshalSchemaJSON(data)
	if err != nil {
		t.Fatal(err)
	}
	if s2.Name() != s.Name() || s2.NumAttrs() != s.NumAttrs() {
		t.Fatal("round trip changed shape")
	}
	for i := 0; i < s.NumAttrs(); i++ {
		a, b := s.Attr(AttrID(i)), s2.Attr(AttrID(i))
		if a.Name != b.Name || a.IsSource() != b.IsSource() || a.IsTarget != b.IsTarget {
			t.Errorf("attribute %d differs: %+v vs %+v", i, a, b)
		}
		if a.Cost() != b.Cost() {
			t.Errorf("attribute %d cost differs", i)
		}
		if (a.Enabling == nil) != (b.Enabling == nil) {
			t.Errorf("attribute %d enabling nil-ness differs", i)
		}
		if a.Enabling != nil && a.Enabling.String() != b.Enabling.String() {
			t.Errorf("attribute %d enabling %q vs %q", i, a.Enabling, b.Enabling)
		}
	}
	// Deserialized tasks have no compute; binding restores executability.
	if s2.MustLookup("a").Task.Compute != nil {
		t.Error("deserialized compute should be nil")
	}
	if !s2.BindCompute("a", ConstCompute(value.Int(9))) {
		t.Error("BindCompute failed")
	}
	if v := s2.MustLookup("a").Task.Compute(MapInputs{}); !value.Identical(v, value.Int(9)) {
		t.Error("bound compute not effective")
	}
	if s2.BindCompute("src", nil) {
		t.Error("BindCompute on a source should fail")
	}
	if s2.BindCompute("ghost", nil) {
		t.Error("BindCompute on unknown attr should fail")
	}
}

func TestUnmarshalBadJSON(t *testing.T) {
	if _, err := UnmarshalSchemaJSON([]byte("{")); err == nil {
		t.Error("bad JSON should fail")
	}
	if _, err := UnmarshalSchemaJSON([]byte(`{"name":"x","attributes":[{"name":"a","enabling":"(((","task":"foreign","cost":1}]}`)); err == nil {
		t.Error("bad condition should fail")
	}
}

const promoText = `
schema promo
  source customer_profile
  source cart
  source catalog

  # Boys' coat promo module (Figure 1 of the paper).
  module when contains(cart, "boys") or contains(cart, "child")
    query climate from customer_profile cost 2
    query coat_hits from climate,catalog cost 3 when notnull(climate)
    query inventory from coat_hits cost 2 when len(coat_hits) > 0
  end

  synth income from customer_profile = len(customer_profile) * 10
  synth give_promo when income > 0 = len(coat_hits) > 0
  query assembly from give_promo cost 1 when give_promo == true
  target assembly
`

func TestParseSchemaText(t *testing.T) {
	s, err := ParseSchema(promoText)
	if err != nil {
		t.Fatal(err)
	}
	if s.Name() != "promo" {
		t.Errorf("name = %q", s.Name())
	}
	if len(s.Sources()) != 3 {
		t.Errorf("sources = %d", len(s.Sources()))
	}
	if len(s.Targets()) != 1 || s.Attr(s.Targets()[0]).Name != "assembly" {
		t.Error("target wrong")
	}
	// Module condition folded into members.
	coat := s.MustLookup("coat_hits")
	cond := coat.Enabling.String()
	if !strings.Contains(cond, "contains") || !strings.Contains(cond, "notnull") && !strings.Contains(cond, "isnull") {
		t.Errorf("coat_hits condition = %q", cond)
	}
	if coat.Cost() != 3 {
		t.Errorf("coat_hits cost = %d", coat.Cost())
	}
	// synth with expression derives inputs.
	gp := s.MustLookup("give_promo")
	if gp.Task.Kind != SynthesisTask {
		t.Error("give_promo should be synthesis")
	}
	hasInput := false
	for _, in := range gp.Inputs {
		if in == "coat_hits" {
			hasInput = true
		}
	}
	if !hasInput {
		t.Errorf("give_promo inputs = %v, want coat_hits included", gp.Inputs)
	}
	// Enabling deps: income -> give_promo.
	found := false
	for _, d := range s.EnablingDependents(s.MustLookup("income").ID()) {
		if s.Attr(d).Name == "give_promo" {
			found = true
		}
	}
	if !found {
		t.Error("missing enabling edge income -> give_promo")
	}
}

func TestParseSchemaErrors(t *testing.T) {
	cases := []struct {
		src, want string
	}{
		{"", "empty"},
		{"source x", "expected 'schema"},
		{"schema a\nschema b", "duplicate schema"},
		{"schema a\nsource", "source needs a name"},
		{"schema a\nmodule x > 1", "requires 'when"},
		{"schema a\nend", "'end' without open module"},
		{"schema a\nmodule when true\nquery q cost 1", "unclosed module"},
		{"schema a\nquery", "query needs a name"},
		{"schema a\nquery q cost x", "bad cost"},
		{"schema a\nquery q blah", "unexpected"},
		{"schema a\nsynth s cost 2", "cannot have a cost"},
		{"schema a\nsynth s =", "'=' needs an expression"},
		{"schema a\nquery q when ((", "bad condition"},
		{"schema a\nsynth s = ((", "bad synthesis expression"},
		{"schema a\ntarget", "target needs a name"},
		{"schema a\nfrobnicate x", "unknown directive"},
		{"schema a\nquery q from", "'from' needs attribute names"},
	}
	for _, c := range cases {
		_, err := ParseSchema(c.src)
		if err == nil || !strings.Contains(err.Error(), c.want) {
			t.Errorf("ParseSchema(%q) error = %v, want containing %q", c.src, err, c.want)
		}
	}
}

func TestParseSchemaWhenWithEquality(t *testing.T) {
	// '==' inside a when-condition must not be mistaken for synth '='.
	s, err := ParseSchema(`
schema eq
  source x
  query q cost 1 when x == 3
  target q
`)
	if err != nil {
		t.Fatal(err)
	}
	if got := s.MustLookup("q").Enabling.String(); got != "x == 3" {
		t.Errorf("condition = %q", got)
	}
}

func TestParseSchemaSynthExprWithEquality(t *testing.T) {
	s, err := ParseSchema(`
schema eq2
  source x
  synth s when x > 0 = x == 3
  query q from s cost 1
  target q
`)
	if err != nil {
		t.Fatal(err)
	}
	syn := s.MustLookup("s")
	v := syn.Task.Compute(MapInputs{"x": value.Int(3)})
	if !value.Identical(v, value.Bool(true)) {
		t.Errorf("synth value = %v", v)
	}
}

func TestParseSchemaComments(t *testing.T) {
	s, err := ParseSchema("schema c # trailing\n# full line\n  source x\nquery q cost 2 # another\ntarget q\n")
	if err != nil {
		t.Fatal(err)
	}
	if s.MustLookup("q").Cost() != 2 {
		t.Error("comment handling broke cost parse")
	}
}

// TestFingerprint pins the schema fingerprint's contract: deterministic
// across independent builds of the same structure, insensitive to compute
// bindings (which MarshalJSON omits), and sensitive to structural change —
// the properties the binary wire handshake relies on to validate its
// attribute-id table.
func TestFingerprint(t *testing.T) {
	a, b := chainSchema(t), chainSchema(t)
	if a.Fingerprint() == 0 {
		t.Fatal("fingerprint is zero")
	}
	if a.Fingerprint() != b.Fingerprint() {
		t.Fatalf("same structure, different fingerprints: %x vs %x",
			a.Fingerprint(), b.Fingerprint())
	}
	// Rebinding a compute function must not change the fingerprint.
	b.BindCompute("a", ConstCompute(value.Int(99)))
	if a.Fingerprint() != b.Fingerprint() {
		t.Fatal("compute binding changed the fingerprint")
	}
	// A JSON round trip preserves structure, hence the fingerprint.
	data, err := json.Marshal(a)
	if err != nil {
		t.Fatal(err)
	}
	rt, err := UnmarshalSchemaJSON(data)
	if err != nil {
		t.Fatal(err)
	}
	if rt.Fingerprint() != a.Fingerprint() {
		t.Fatal("JSON round trip changed the fingerprint")
	}
	// A structurally different schema must (overwhelmingly) disagree.
	other, err := NewBuilder("chain2").
		Source("src").
		Foreign("a", expr.TrueExpr, []string{"src"}, 3, nil).
		Target("a").
		Build()
	if err != nil {
		t.Fatal(err)
	}
	if other.Fingerprint() == a.Fingerprint() {
		t.Fatal("different structures share a fingerprint")
	}
}
