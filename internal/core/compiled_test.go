package core

import (
	"testing"

	"repro/internal/expr"
	"repro/internal/value"
)

func compiledTestSchema(t *testing.T) *Schema {
	t.Helper()
	s, err := NewBuilder("compiled").
		Source("src").
		Foreign("a", expr.MustParse("src > 0"), []string{"src"}, 2, ConstCompute(value.Int(3))).
		Foreign("b", expr.MustParse("a > 1 and src < 100"), []string{"a"}, 1, ConstCompute(value.Int(7))).
		SynthesisExpr("s", expr.TrueExpr, expr.MustParse("a + coalesce(b, 10)")).
		Foreign("tgt", expr.MustParse("s >= 0 or isnull(b)"), []string{"s"}, 1, ConstCompute(value.Int(1))).
		Target("tgt").
		Build()
	if err != nil {
		t.Fatal(err)
	}
	return s
}

// TestSchemaCompilesConditionPrograms: every non-source attribute gets a
// compiled condition program at Build time, and the program agrees with
// tree-walking the enabling condition over equivalent environments.
func TestSchemaCompilesConditionPrograms(t *testing.T) {
	s := compiledTestSchema(t)
	var m expr.Machine
	n := s.NumAttrs()
	vals := make([]value.Value, n)
	known := make([]bool, n)
	vals[s.MustLookup("src").ID()] = value.Int(5)
	known[s.MustLookup("src").ID()] = true
	env := expr.MapEnv{"src": value.Int(5)}
	for i := 0; i < n; i++ {
		id := AttrID(i)
		a := s.Attr(id)
		prog := s.CondProgram(id)
		if a.IsSource() {
			if prog != nil {
				t.Errorf("source %q has a condition program", a.Name)
			}
			continue
		}
		if prog == nil {
			t.Fatalf("attribute %q has no compiled condition program", a.Name)
		}
		if got, want := prog.Eval3(&m, vals, known), expr.Eval3(a.Enabling, env); got != want {
			t.Errorf("%q: compiled condition %v, tree %v", a.Name, got, want)
		}
	}
}

// TestSchemaValueProgram: SynthesisExpr attributes carry a value program
// equivalent to their ComputeFunc; opaque ComputeFuncs get none.
func TestSchemaValueProgram(t *testing.T) {
	s := compiledTestSchema(t)
	sid := s.MustLookup("s").ID()
	prog := s.ValueProgram(sid)
	if prog == nil {
		t.Fatal("SynthesisExpr attribute has no value program")
	}
	// Dense total env: a=3, b unset (⟂) — coalesce picks the fallback.
	vals := make([]value.Value, s.NumAttrs())
	vals[s.MustLookup("a").ID()] = value.Int(3)
	var m expr.Machine
	got, ok := prog.EvalValue(&m, vals, nil)
	if !ok {
		t.Fatal("total env evaluation must be known")
	}
	want := s.Attr(sid).Task.Compute(MapInputs{"a": value.Int(3)})
	if !value.Identical(got, want) {
		t.Errorf("value program = %v, ComputeFunc = %v", got, want)
	}
	if s.ValueProgram(s.MustLookup("a").ID()) != nil {
		t.Error("opaque ConstCompute task has a value program")
	}
}

// TestSchemaDependencyBitsets: EnablingDeps matches EnablingInputs and
// EnablingDependentsSet is its exact transpose.
func TestSchemaDependencyBitsets(t *testing.T) {
	s := compiledTestSchema(t)
	n := s.NumAttrs()
	for i := 0; i < n; i++ {
		id := AttrID(i)
		deps := s.EnablingDeps(id)
		if got, want := deps.Count(), len(s.EnablingInputs(id)); got != want {
			t.Errorf("%q: deps bitset has %d members, adjacency %d", s.Attr(id).Name, got, want)
		}
		for _, in := range s.EnablingInputs(id) {
			if !deps.Has(in) {
				t.Errorf("%q: dependency %q missing from bitset", s.Attr(id).Name, s.Attr(in).Name)
			}
			if !s.EnablingDependentsSet(in).Has(id) {
				t.Errorf("%q: transpose bitset of %q misses it", s.Attr(id).Name, s.Attr(in).Name)
			}
		}
		// Transpose consistency the other way.
		s.EnablingDependentsSet(id).ForEach(func(b AttrID) {
			if !s.EnablingDeps(b).Has(id) {
				t.Errorf("dependents set of %q lists %q, but forward set disagrees",
					s.Attr(id).Name, s.Attr(b).Name)
			}
		})
	}
}

// TestAttrSetOps covers the bitset primitives across word boundaries.
func TestAttrSetOps(t *testing.T) {
	s := NewAttrSet(130)
	for _, id := range []AttrID{0, 63, 64, 129} {
		s.Add(id)
	}
	if s.Count() != 4 {
		t.Errorf("Count = %d, want 4", s.Count())
	}
	for _, id := range []AttrID{0, 63, 64, 129} {
		if !s.Has(id) {
			t.Errorf("Has(%d) = false", id)
		}
	}
	if s.Has(1) || s.Has(65) || s.Has(128) {
		t.Error("false positives")
	}
	o := NewAttrSet(130)
	o.Add(1)
	o.Add(63)
	s.Or(o)
	if !s.Has(1) || s.Count() != 5 {
		t.Errorf("after Or: Count = %d, Has(1) = %v", s.Count(), s.Has(1))
	}
	if !s.ContainsAll(o) {
		t.Error("ContainsAll(subset) = false")
	}
	if o.ContainsAll(s) {
		t.Error("ContainsAll(superset) = true")
	}
	var got []AttrID
	s.ForEach(func(id AttrID) { got = append(got, id) })
	want := []AttrID{0, 1, 63, 64, 129}
	if len(got) != len(want) {
		t.Fatalf("ForEach visited %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("ForEach order %v, want ascending %v", got, want)
		}
	}
	s.Clear()
	if !s.Empty() {
		t.Error("Clear left members")
	}
}

// TestModuleSynthesisExprKeepsTaskExpr: the module path records Task.Expr
// (with the module condition conjoined into Enabling) so compiled value
// programs survive flattening.
func TestModuleSynthesisExprKeepsTaskExpr(t *testing.T) {
	s, err := NewBuilder("mod").
		Source("src").
		Module(expr.MustParse("src > 0")).
		SynthesisExpr("m", expr.TrueExpr, expr.MustParse("src * 2")).
		Done().
		Target("m").
		Build()
	if err != nil {
		t.Fatal(err)
	}
	id := s.MustLookup("m").ID()
	if s.Attr(id).Task.Expr == nil {
		t.Fatal("module SynthesisExpr lost Task.Expr")
	}
	if s.ValueProgram(id) == nil {
		t.Fatal("module SynthesisExpr has no value program")
	}
	if got, want := s.Attr(id).Enabling.String(), "src > 0"; got != want {
		t.Errorf("module condition not conjoined: %q, want %q", got, want)
	}
}
