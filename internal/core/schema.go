package core

import (
	"fmt"
	"sort"

	"repro/internal/expr"
)

// Schema is a validated, flattened decision flow schema. Instances are
// immutable after Build; the engine never mutates a Schema, so one Schema
// can serve any number of concurrent flow instances.
type Schema struct {
	name  string
	attrs []*Attribute

	byName  map[string]AttrID
	sources []AttrID
	targets []AttrID

	// dataIn[a] lists the attributes that are data inputs of a's task;
	// enabIn[a] lists the attributes referenced by a's enabling condition.
	dataIn  [][]AttrID
	enabIn  [][]AttrID
	dataOut [][]AttrID
	enabOut [][]AttrID

	topo []AttrID // a topological order of the dependency graph
	rank []int    // rank[a] = longest-path distance from any source

	// Compiled execution artifacts (see compiled.go): flat condition/value
	// programs over dense AttrID slots, and the enabling-flow dependency
	// bitsets in both directions.
	condProgs  []*expr.Program
	valProgs   []*expr.Program
	enabDepsOf []AttrSet // enabDepsOf[a]: attrs a's condition reads
	enabDepOn  []AttrSet // enabDepOn[a]: attrs whose condition reads a

	// fingerprint is a deterministic hash of the schema structure, computed
	// once at finalize; see Fingerprint.
	fingerprint uint64
}

// Fingerprint returns a deterministic 64-bit hash of the schema structure
// (names, attribute graph, enabling conditions, task kinds and costs —
// everything MarshalJSON serializes; compute bindings are excluded). Two
// processes that built the same schema text agree on the fingerprint, so
// network peers can use it to verify that a schema handshake refers to the
// same attribute-id table without shipping the whole schema.
func (s *Schema) Fingerprint() uint64 { return s.fingerprint }

// Name returns the schema's name.
func (s *Schema) Name() string { return s.name }

// NumAttrs returns the number of attributes (sources included).
func (s *Schema) NumAttrs() int { return len(s.attrs) }

// Attr returns the attribute with the given ID. It panics on out-of-range
// IDs — IDs only come from this schema, so a bad one is a programming error.
func (s *Schema) Attr(id AttrID) *Attribute { return s.attrs[id] }

// Lookup finds an attribute by name.
func (s *Schema) Lookup(name string) (*Attribute, bool) {
	id, ok := s.byName[name]
	if !ok {
		return nil, false
	}
	return s.attrs[id], true
}

// MustLookup is Lookup that panics when the attribute does not exist.
func (s *Schema) MustLookup(name string) *Attribute {
	a, ok := s.Lookup(name)
	if !ok {
		panic(fmt.Sprintf("core: schema %q has no attribute %q", s.name, name))
	}
	return a
}

// Sources returns the IDs of source attributes in declaration order.
// The returned slice must not be modified.
func (s *Schema) Sources() []AttrID { return s.sources }

// Targets returns the IDs of target attributes in declaration order.
// The returned slice must not be modified.
func (s *Schema) Targets() []AttrID { return s.targets }

// DataInputs returns the IDs of a's data-flow inputs. The slice must not be
// modified.
func (s *Schema) DataInputs(a AttrID) []AttrID { return s.dataIn[a] }

// EnablingInputs returns the IDs of attributes referenced by a's enabling
// condition. The slice must not be modified.
func (s *Schema) EnablingInputs(a AttrID) []AttrID { return s.enabIn[a] }

// DataDependents returns the IDs of attributes that use a as a data input.
func (s *Schema) DataDependents(a AttrID) []AttrID { return s.dataOut[a] }

// EnablingDependents returns the IDs of attributes whose enabling condition
// references a.
func (s *Schema) EnablingDependents(a AttrID) []AttrID { return s.enabOut[a] }

// TopoOrder returns a topological order of all attributes (sources first).
// The slice must not be modified.
func (s *Schema) TopoOrder() []AttrID { return s.topo }

// Rank returns the attribute's topological rank: the length of the longest
// dependency path from any source to it. Sources have rank 0. The
// "topologically-earliest first" scheduling heuristic orders candidates by
// this rank.
func (s *Schema) Rank(a AttrID) int { return s.rank[a] }

// Diameter returns the length of the longest dependency path in the schema,
// the quantity the paper controls via nb_nodes/nb_rows: smaller diameter
// permits more parallelism.
func (s *Schema) Diameter() int {
	max := 0
	for _, r := range s.rank {
		if r > max {
			max = r
		}
	}
	return max
}

// TotalCost returns the sum of all task costs in units of processing — an
// upper bound on Work for any strategy.
func (s *Schema) TotalCost() int {
	total := 0
	for _, a := range s.attrs {
		total += a.Cost()
	}
	return total
}

// AttrNames returns all attribute names in ID order.
func (s *Schema) AttrNames() []string {
	out := make([]string, len(s.attrs))
	for i, a := range s.attrs {
		out[i] = a.Name
	}
	return out
}

// finalize computes the derived graph structures and validates
// well-formedness. Called once by the builder.
func (s *Schema) finalize() error {
	var problems []string
	n := len(s.attrs)
	s.byName = make(map[string]AttrID, n)
	for i, a := range s.attrs {
		a.id = AttrID(i)
		if a.Name == "" {
			problems = append(problems, fmt.Sprintf("attribute #%d has empty name", i))
			continue
		}
		if prev, dup := s.byName[a.Name]; dup {
			problems = append(problems, fmt.Sprintf("duplicate attribute name %q (#%d and #%d)", a.Name, prev, i))
			continue
		}
		s.byName[a.Name] = AttrID(i)
	}

	resolve := func(owner *Attribute, name string) (AttrID, bool) {
		id, ok := s.byName[name]
		if !ok {
			problems = append(problems, fmt.Sprintf("attribute %q references unknown attribute %q", owner.Name, name))
			return NoAttr, false
		}
		return id, true
	}

	s.dataIn = make([][]AttrID, n)
	s.enabIn = make([][]AttrID, n)
	s.dataOut = make([][]AttrID, n)
	s.enabOut = make([][]AttrID, n)

	for i, a := range s.attrs {
		id := AttrID(i)
		if a.isSource {
			s.sources = append(s.sources, id)
			if a.Task != nil {
				problems = append(problems, fmt.Sprintf("source attribute %q must not have a task", a.Name))
			}
			if a.Enabling != nil {
				problems = append(problems, fmt.Sprintf("source attribute %q must not have an enabling condition", a.Name))
			}
			if len(a.Inputs) > 0 {
				problems = append(problems, fmt.Sprintf("source attribute %q must not have inputs", a.Name))
			}
			if a.IsTarget {
				problems = append(problems, fmt.Sprintf("attribute %q cannot be both source and target", a.Name))
			}
			continue
		}
		if a.IsTarget {
			s.targets = append(s.targets, id)
		}
		if a.Task == nil {
			problems = append(problems, fmt.Sprintf("non-source attribute %q has no task", a.Name))
		} else {
			if a.Task.Kind == ForeignTask && a.Task.Cost < 1 {
				problems = append(problems, fmt.Sprintf("foreign task of %q must have cost >= 1 (got %d)", a.Name, a.Task.Cost))
			}
			if a.Task.Kind == SynthesisTask && a.Task.Cost != 0 {
				problems = append(problems, fmt.Sprintf("synthesis task of %q must have cost 0 (got %d)", a.Name, a.Task.Cost))
			}
		}
		if a.Enabling == nil {
			problems = append(problems, fmt.Sprintf("non-source attribute %q has no enabling condition", a.Name))
			continue
		}
		seen := map[AttrID]bool{}
		for _, in := range a.Inputs {
			if inID, ok := resolve(a, in); ok {
				if seen[inID] {
					problems = append(problems, fmt.Sprintf("attribute %q lists input %q twice", a.Name, in))
					continue
				}
				seen[inID] = true
				s.dataIn[id] = append(s.dataIn[id], inID)
				s.dataOut[inID] = append(s.dataOut[inID], id)
			}
		}
		for _, in := range expr.Attrs(a.Enabling) {
			if inID, ok := resolve(a, in); ok {
				s.enabIn[id] = append(s.enabIn[id], inID)
				s.enabOut[inID] = append(s.enabOut[inID], id)
			}
		}
	}

	if len(s.targets) == 0 {
		problems = append(problems, "schema has no target attribute")
	}

	if len(problems) == 0 {
		if cyc := s.computeTopo(); cyc != nil {
			problems = append(problems, fmt.Sprintf("dependency graph is cyclic: %v", cyc))
		}
	}

	if len(problems) > 0 {
		sort.Strings(problems)
		return &ValidationError{Schema: s.name, Problems: problems}
	}
	s.compilePrograms()
	// FNV-1a over the canonical JSON rendering: MarshalJSON iterates
	// attributes in ID order, so the hash is stable across processes.
	js, err := s.MarshalJSON()
	if err != nil {
		return fmt.Errorf("core: fingerprinting schema %q: %w", s.name, err)
	}
	const offset64, prime64 = 14695981039346656037, 1099511628211
	h := uint64(offset64)
	for _, b := range js {
		h ^= uint64(b)
		h *= prime64
	}
	s.fingerprint = h
	return nil
}

// computeTopo fills s.topo and s.rank via Kahn's algorithm over the union of
// data and enabling edges; it returns the names of attributes on a cycle if
// the graph is cyclic, nil otherwise.
func (s *Schema) computeTopo() []string {
	n := len(s.attrs)
	indeg := make([]int, n)
	// in-neighbor multiset union; duplicates (an attribute that is both a
	// data and an enabling input) count twice, which is harmless for Kahn.
	for a := 0; a < n; a++ {
		indeg[a] = len(s.dataIn[a]) + len(s.enabIn[a])
	}
	queue := make([]AttrID, 0, n)
	s.rank = make([]int, n)
	for a := 0; a < n; a++ {
		if indeg[a] == 0 {
			queue = append(queue, AttrID(a))
		}
	}
	s.topo = make([]AttrID, 0, n)
	for len(queue) > 0 {
		a := queue[0]
		queue = queue[1:]
		s.topo = append(s.topo, a)
		succ := func(b AttrID) {
			if r := s.rank[a] + 1; r > s.rank[b] {
				s.rank[b] = r
			}
			indeg[b]--
			if indeg[b] == 0 {
				queue = append(queue, b)
			}
		}
		for _, b := range s.dataOut[a] {
			succ(b)
		}
		for _, b := range s.enabOut[a] {
			succ(b)
		}
	}
	if len(s.topo) != n {
		var cyc []string
		for a := 0; a < n; a++ {
			if indeg[a] > 0 {
				cyc = append(cyc, s.attrs[a].Name)
			}
		}
		s.topo, s.rank = nil, nil
		return cyc
	}
	return nil
}
