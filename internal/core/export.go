package core

import (
	"encoding/json"
	"fmt"
	"strings"
)

// DOT renders the dependency graph in Graphviz format, with data-flow edges
// dashed and enabling-flow edges solid — the same visual convention as the
// paper's Figure 1(b). Sources are drawn as ellipses, targets as gray boxes,
// internal attributes as boxes.
func (s *Schema) DOT() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "digraph %q {\n", s.name)
	sb.WriteString("  rankdir=LR;\n  node [fontsize=10];\n")
	for _, a := range s.attrs {
		attrs := []string{fmt.Sprintf("label=%q", a.Name)}
		switch {
		case a.isSource:
			attrs = append(attrs, "shape=ellipse")
		case a.IsTarget:
			attrs = append(attrs, "shape=box", "style=filled", "fillcolor=gray85")
		default:
			attrs = append(attrs, "shape=box")
		}
		if a.Task != nil && a.Task.Kind == ForeignTask {
			attrs = append(attrs, fmt.Sprintf("xlabel=\"cost %d\"", a.Task.Cost))
		}
		fmt.Fprintf(&sb, "  %q [%s];\n", a.Name, strings.Join(attrs, ", "))
	}
	for id, ins := range s.dataIn {
		for _, in := range ins {
			fmt.Fprintf(&sb, "  %q -> %q [style=dashed];\n", s.attrs[in].Name, s.attrs[id].Name)
		}
	}
	for id, ins := range s.enabIn {
		for _, in := range ins {
			fmt.Fprintf(&sb, "  %q -> %q;\n", s.attrs[in].Name, s.attrs[id].Name)
		}
	}
	sb.WriteString("}\n")
	return sb.String()
}

// schemaJSON is the serialized shape of a schema. Compute functions are not
// serializable; deserialized schemas carry nil Compute and are suitable for
// analysis, visualization and cost planning but not execution (unless
// rebound via BindCompute).
type schemaJSON struct {
	Name  string     `json:"name"`
	Attrs []attrJSON `json:"attributes"`
}

type attrJSON struct {
	Name     string   `json:"name"`
	Source   bool     `json:"source,omitempty"`
	Target   bool     `json:"target,omitempty"`
	Enabling string   `json:"enabling,omitempty"`
	Inputs   []string `json:"inputs,omitempty"`
	Kind     string   `json:"task,omitempty"`
	Cost     int      `json:"cost,omitempty"`
}

// MarshalJSON serializes the schema structure (not compute functions).
func (s *Schema) MarshalJSON() ([]byte, error) {
	out := schemaJSON{Name: s.name}
	for _, a := range s.attrs {
		aj := attrJSON{
			Name:   a.Name,
			Source: a.isSource,
			Target: a.IsTarget,
			Inputs: a.Inputs,
		}
		if a.Enabling != nil {
			aj.Enabling = a.Enabling.String()
		}
		if a.Task != nil {
			aj.Kind = a.Task.Kind.String()
			aj.Cost = a.Task.Cost
		}
		out.Attrs = append(out.Attrs, aj)
	}
	return json.Marshal(out)
}

// UnmarshalSchemaJSON reconstructs a schema from MarshalJSON output.
// Task compute functions come back nil; bind them with BindCompute before
// executing.
func UnmarshalSchemaJSON(data []byte) (*Schema, error) {
	var in schemaJSON
	if err := json.Unmarshal(data, &in); err != nil {
		return nil, fmt.Errorf("core: decoding schema JSON: %w", err)
	}
	b := NewBuilder(in.Name)
	for _, aj := range in.Attrs {
		if aj.Source {
			b.Source(aj.Name)
			continue
		}
		cond, err := parseCond(aj.Enabling)
		if err != nil {
			return nil, fmt.Errorf("core: attribute %q: %w", aj.Name, err)
		}
		a := &Attribute{
			Name:     aj.Name,
			Enabling: cond,
			Inputs:   aj.Inputs,
			IsTarget: aj.Target,
		}
		switch aj.Kind {
		case "synthesis":
			a.Task = &Task{Kind: SynthesisTask}
		default:
			a.Task = &Task{Kind: ForeignTask, Cost: aj.Cost}
		}
		b.AddAttribute(a)
	}
	return b.Build()
}

// BindCompute installs a compute function on the named attribute's task.
// It is how deserialized or DSL-parsed schemas get their foreign-task
// bindings. It returns false when the attribute does not exist or is a
// source.
func (s *Schema) BindCompute(name string, fn ComputeFunc) bool {
	a, ok := s.Lookup(name)
	if !ok || a.Task == nil {
		return false
	}
	a.Task.Compute = fn
	return true
}
