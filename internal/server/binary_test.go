package server

import (
	"bufio"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net"
	"net/http/httptest"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/api"
	"repro/internal/client"
	"repro/internal/runtime"
	"repro/internal/value"
)

// newBinStack is newTestStack plus a dfbin TCP listener: the same server
// serves both wires, which is the whole point — tests cross-check the
// transports against each other.
func newBinStack(t *testing.T, svcCfg runtime.Config, mod func(*Config)) (*runtime.Service, *Server, *httptest.Server, string) {
	t.Helper()
	svc := runtime.New(svcCfg)
	cfg := Config{Service: svc}
	if mod != nil {
		mod(&cfg)
	}
	srv := New(cfg)
	hs := httptest.NewServer(srv.Handler())
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go srv.ServeBinary(ln)
	t.Cleanup(func() {
		hs.Close()
		if !srv.Draining() {
			srv.Drain(context.Background())
		}
	})
	return svc, srv, hs, "dfbin://" + ln.Addr().String()
}

func binClient(t testing.TB, addr string, opts ...client.Option) *client.Client {
	t.Helper()
	c, err := client.New(addr, opts...)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { c.Close() })
	if c.Transport() != client.TransportBinary {
		t.Fatalf("transport = %s, want %s", c.Transport(), client.TransportBinary)
	}
	return c
}

// rawConn drives the dfbin wire frame by frame, for tests that assert
// protocol behavior the typed client deliberately hides (stale binds,
// drain pushes, teardown on corruption).
type rawConn struct {
	t  *testing.T
	nc net.Conn
	fr *api.FrameReader
}

// dialRaw connects and completes the Hello handshake.
func dialRaw(t *testing.T, addr, tenant string) *rawConn {
	t.Helper()
	nc, err := net.Dial("tcp", strings.TrimPrefix(addr, "dfbin://"))
	if err != nil {
		t.Fatal(err)
	}
	nc.SetDeadline(time.Now().Add(30 * time.Second))
	rc := &rawConn{t: t, nc: nc, fr: api.NewFrameReader(bufio.NewReader(nc), 0)}
	t.Cleanup(func() { nc.Close() })
	rc.send(api.AppendHelloFrame(nil, tenant))
	typ, _ := rc.next()
	if typ != api.FrameHelloAck {
		t.Fatalf("handshake answered with frame %#x, want HelloAck", typ)
	}
	return rc
}

func (rc *rawConn) send(frame []byte) {
	rc.t.Helper()
	if _, err := rc.nc.Write(frame); err != nil {
		rc.t.Fatalf("write: %v", err)
	}
}

func (rc *rawConn) next() (byte, []byte) {
	rc.t.Helper()
	typ, p, err := rc.fr.Next()
	if err != nil {
		rc.t.Fatalf("reading frame: %v", err)
	}
	return typ, p
}

// bind performs Bind/BindAck and returns the attribute name table
// (position = AttrID) plus the schema fingerprint.
func (rc *rawConn) bind(reqID, bindID uint64, schema, strategy string) (names []string, flags []byte, fp uint64) {
	rc.t.Helper()
	b := api.BeginFrame(nil, api.FrameBind)
	b = api.AppendUvarint(b, reqID)
	b = api.AppendUvarint(b, bindID)
	b = api.AppendString(b, schema)
	b = api.AppendString(b, strategy)
	rc.send(api.FinishFrame(b, 0))
	typ, p := rc.next()
	if typ != api.FrameBindAck {
		rc.t.Fatalf("bind answered with frame %#x", typ)
	}
	c := api.NewCursor(p)
	if got := c.Uvarint(); got != reqID {
		rc.t.Fatalf("BindAck for request %d, want %d", got, reqID)
	}
	if got := c.Uvarint(); got != bindID {
		rc.t.Fatalf("BindAck for bind %d, want %d", got, bindID)
	}
	fp = c.U64()
	n := c.Uvarint()
	for i := uint64(0); i < n; i++ {
		flags = append(flags, c.Byte())
		names = append(names, c.String())
	}
	if err := c.Done(); err != nil {
		rc.t.Fatalf("BindAck payload: %v", err)
	}
	return names, flags, fp
}

// eval sends one Eval frame over an established bind.
func (rc *rawConn) eval(reqID, bindID uint64, pairs map[uint64]value.Value) {
	rc.t.Helper()
	b := api.BeginFrame(nil, api.FrameEval)
	b = api.AppendUvarint(b, reqID)
	b = api.AppendUvarint(b, bindID)
	b = api.AppendUvarint(b, uint64(len(pairs)))
	for id, v := range pairs {
		b = api.AppendUvarint(b, id)
		b = api.AppendValue(b, v)
	}
	rc.send(api.FinishFrame(b, 0))
}

// canonJSON renders a result-values map through the JSON codec so the
// lossless binary wire (int64) and the HTTP wire (float64) compare equal
// when they agree semantically.
func canonJSON(t *testing.T, v any) string {
	t.Helper()
	js, err := json.Marshal(v)
	if err != nil {
		t.Fatal(err)
	}
	return string(js)
}

// TestBinaryRegisterAndEval runs the whole client surface over the
// binary wire: register a text schema, bind-and-eval it (twice — the
// second hits the per-connection bind cache), batch it, read stats,
// probe health.
func TestBinaryRegisterAndEval(t *testing.T) {
	_, _, _, addr := newBinStack(t, runtime.Config{}, nil)
	c := binClient(t, addr, client.WithTenant("t0"))
	ctx := context.Background()

	ack, err := c.RegisterSchemaText(ctx, `
		schema scoring
		source amount
		query risk from amount cost 2 when amount > 0
		synth fee when notnull(risk) = amount / 10 + risk * 0
		target fee
	`)
	if err != nil {
		t.Fatal(err)
	}
	if ack.Name != "scoring" || len(ack.Targets) != 1 || ack.Targets[0] != "fee" {
		t.Fatalf("ack = %+v", ack)
	}

	eval := func() api.EvalResult {
		res, err := c.EvalValues(ctx, "scoring", "", map[string]value.Value{"amount": value.Int(120)})
		if err != nil {
			t.Fatal(err)
		}
		if res.Error != "" {
			t.Fatalf("instance error: %s", res.Error)
		}
		return res
	}
	r1, r2 := eval(), eval()
	if canonJSON(t, r1.Values["fee"]) != "12" {
		t.Fatalf("fee = %v (%T), want 12", r1.Values["fee"], r1.Values["fee"])
	}
	if canonJSON(t, r1.Values) != canonJSON(t, r2.Values) {
		t.Fatalf("evals disagree: %v vs %v", r1.Values, r2.Values)
	}
	if r1.Work == 0 || r1.Launched == 0 {
		t.Fatalf("accounting empty: %+v", r1)
	}

	// Batch: distinct instances come back in request order.
	srcs := make([]map[string]any, 5)
	for i := range srcs {
		srcs[i] = map[string]any{"amount": float64(10 * (i + 1))}
	}
	results, err := c.EvalBatch(ctx, api.BatchRequest{Schema: "scoring", Sources: srcs})
	if err != nil {
		t.Fatal(err)
	}
	for i, res := range results {
		if want := fmt.Sprint(i + 1); canonJSON(t, res.Values["fee"]) != want {
			t.Fatalf("batch[%d]: fee = %v, want %s", i, res.Values["fee"], want)
		}
	}

	// Unknown schema surfaces the server's not-found error, not a hang.
	if _, err := c.EvalValues(ctx, "nope", "", nil); err == nil || !strings.Contains(err.Error(), "unknown schema") {
		t.Fatalf("unknown schema: %v", err)
	}
	// Unknown source names are ignored, exactly like the JSON map path.
	if res, err := c.Eval(ctx, api.EvalRequest{Schema: "scoring",
		Sources: map[string]any{"amount": float64(120), "no_such_attr": true}}); err != nil || res.Error != "" {
		t.Fatalf("unknown source name must be ignored: %v %s", err, res.Error)
	}

	stats, err := c.Stats(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if fmt.Sprint(stats.Schemas) != fmt.Sprint([]string{"pattern", "quickstart", "scoring"}) {
		t.Fatalf("schemas = %v", stats.Schemas)
	}
	if err := c.Health(ctx); err != nil {
		t.Fatal(err)
	}

	// The HTTP-only extended surface refuses loudly instead of dialing.
	if _, err := c.EvalAsync(ctx, api.EvalRequest{Schema: "scoring"}); err == nil {
		t.Fatal("EvalAsync over binary must error")
	}
}

// TestBinaryMatchesHTTP is the transport-equivalence check: the same
// instances through both front ends of one server must produce
// semantically identical results — same values (modulo JSON number
// erasure), same accounting shape.
func TestBinaryMatchesHTTP(t *testing.T) {
	_, _, hs, addr := newBinStack(t, runtime.Config{}, nil)
	ctx := context.Background()
	cb := binClient(t, addr, client.WithTenant("t0"))
	ch, err := client.New(hs.URL, client.WithTenant("t0"))
	if err != nil {
		t.Fatal(err)
	}
	defer ch.Close()

	cases := []map[string]any{
		{"order_total": float64(120), "customer_id": float64(7)},
		{"order_total": float64(3), "customer_id": float64(900)},
		{"order_total": float64(-1)}, // customer_id absent: ⟂ on both wires
		{},
	}
	for i, src := range cases {
		req := api.EvalRequest{Schema: "quickstart", Sources: src}
		rb, errB := cb.Eval(ctx, req)
		rh, errH := ch.Eval(ctx, req)
		if (errB == nil) != (errH == nil) {
			t.Fatalf("case %d: binary err %v, http err %v", i, errB, errH)
		}
		if errB != nil {
			continue
		}
		if canonJSON(t, rb.Values) != canonJSON(t, rh.Values) {
			t.Fatalf("case %d: binary %s vs http %s", i, canonJSON(t, rb.Values), canonJSON(t, rh.Values))
		}
		if rb.Error != rh.Error {
			t.Fatalf("case %d: errors differ: %q vs %q", i, rb.Error, rh.Error)
		}
	}

	// Batched: same column-major batch against both wires.
	batch := api.BatchRequest{Schema: "quickstart", Sources: cases}
	bs, err := cb.EvalBatch(ctx, batch)
	if err != nil {
		t.Fatal(err)
	}
	hsRes, err := ch.EvalBatch(ctx, batch)
	if err != nil {
		t.Fatal(err)
	}
	for i := range bs {
		if canonJSON(t, bs[i].Values) != canonJSON(t, hsRes[i].Values) {
			t.Fatalf("batch[%d]: binary %s vs http %s", i, canonJSON(t, bs[i].Values), canonJSON(t, hsRes[i].Values))
		}
	}
}

// TestBinaryShedAndRetry mirrors the HTTP rate-limit test on the binary
// wire: a 1-token bucket sheds the second back-to-back eval with a
// CodeShed frame carrying a retry hint; the typed client's shared retry
// loop absorbs it, and a retry-disabled client surfaces ErrShed.
func TestBinaryShedAndRetry(t *testing.T) {
	_, srv, _, addr := newBinStack(t, runtime.Config{},
		func(cfg *Config) { cfg.Tenant = TenantLimits{RatePerSec: 50, Burst: 1} })
	ctx := context.Background()
	src := map[string]any{"order_total": float64(120), "customer_id": float64(7)}

	c := binClient(t, addr, client.WithTenant("patient"), client.WithRetryShed(10))
	for i := 0; i < 3; i++ {
		res, err := c.Eval(ctx, api.EvalRequest{Schema: "quickstart", Sources: src})
		if err != nil || res.Error != "" {
			t.Fatalf("eval %d: %v %s", i, err, res.Error)
		}
	}
	if adm := srv.tenantFor("patient").admission(); adm.ShedRate == 0 {
		t.Fatalf("shed-rate counter not bumped: %+v", adm)
	}

	c2 := binClient(t, addr, client.WithTenant("hasty"), client.WithRetryShed(-1))
	c2.Eval(ctx, api.EvalRequest{Schema: "quickstart", Sources: src})
	_, err := c2.Eval(ctx, api.EvalRequest{Schema: "quickstart", Sources: src})
	if !errors.Is(err, client.ErrShed) {
		t.Fatalf("err = %v, want ErrShed", err)
	}
}

// TestBinaryStaleBind: a bind pins the schema version it saw. After the
// schema is re-registered, evals on the old bind fail with CodeStale at
// the frame level, and the typed client re-binds transparently.
func TestBinaryStaleBind(t *testing.T) {
	_, _, _, addr := newBinStack(t, runtime.Config{}, nil)
	ctx := context.Background()
	text := "schema churn\nsource x\nsynth y = x + 1\ntarget y"

	c := binClient(t, addr, client.WithTenant("t0"))
	if _, err := c.RegisterSchemaText(ctx, text); err != nil {
		t.Fatal(err)
	}

	// Frame level: bind, then invalidate, then eval on the stale bind.
	rc := dialRaw(t, addr, "t0")
	names, flags, fp := rc.bind(1, 1, "churn", "")
	if fp == 0 {
		t.Fatal("schema fingerprint is zero")
	}
	xID := -1
	for i, name := range names {
		if name == "x" {
			xID = i
			if flags[i]&api.BindFlagSource == 0 {
				t.Fatalf("x not flagged as source: %v", flags)
			}
		}
		if name == "y" && flags[i]&api.BindFlagTarget == 0 {
			t.Fatalf("y not flagged as target: %v", flags)
		}
	}
	rc.eval(2, 1, map[uint64]value.Value{uint64(xID): value.Int(41)})
	if typ, _ := rc.next(); typ != api.FrameResult {
		t.Fatalf("eval before re-registration answered %#x", typ)
	}
	if _, err := c.RegisterSchemaText(ctx, text); err != nil { // same owner: allowed
		t.Fatal(err)
	}
	rc.eval(3, 1, map[uint64]value.Value{uint64(xID): value.Int(41)})
	typ, p := rc.next()
	if typ != api.FrameError {
		t.Fatalf("eval on stale bind answered %#x, want Error", typ)
	}
	cur := api.NewCursor(p)
	cur.Uvarint() // request id
	e, err := api.ParseError(&cur)
	if err != nil || e.Code != api.CodeStale {
		t.Fatalf("stale bind error = %+v, %v; want CodeStale", e, err)
	}

	// Client level: the cached bind from before the re-registration is
	// refreshed transparently; the eval succeeds.
	res, err := c.EvalValues(ctx, "churn", "", map[string]value.Value{"x": value.Int(41)})
	if err != nil || res.Error != "" {
		t.Fatalf("eval after re-registration: %v %s", err, res.Error)
	}
	if canonJSON(t, res.Values["y"]) != "42" {
		t.Fatalf("y = %v, want 42", res.Values["y"])
	}
}

// TestBinaryCorruptTeardown: whatever garbage arrives, the server tears
// the connection down cleanly and keeps serving everyone else.
func TestBinaryCorruptTeardown(t *testing.T) {
	_, _, _, addr := newBinStack(t, runtime.Config{}, nil)
	host := strings.TrimPrefix(addr, "dfbin://")

	expectClosed := func(nc net.Conn) {
		t.Helper()
		nc.SetReadDeadline(time.Now().Add(10 * time.Second))
		var buf [256]byte
		for {
			if _, err := nc.Read(buf[:]); err != nil {
				if err != io.EOF && !errors.Is(err, net.ErrClosed) && !strings.Contains(err.Error(), "reset") {
					t.Fatalf("connection ended with %v, want close", err)
				}
				return
			}
		}
	}

	// An HTTP request aimed at the binary port: rejected at the Hello.
	nc, err := net.Dial("tcp", host)
	if err != nil {
		t.Fatal(err)
	}
	defer nc.Close()
	nc.Write([]byte("GET / HTTP/1.1\r\nHost: x\r\n\r\n"))
	expectClosed(nc)

	// A well-formed handshake followed by an unknown frame type.
	rc := dialRaw(t, addr, "t0")
	frame := api.BeginFrame(nil, 0x7f)
	frame = api.AppendUvarint(frame, 1)
	rc.send(api.FinishFrame(frame, 0))
	expectClosed(rc.nc)

	// A truncated Eval payload (corrupt varint stream) on a live bind.
	rc2 := dialRaw(t, addr, "t0")
	rc2.bind(1, 1, "quickstart", "")
	bad := api.BeginFrame(nil, api.FrameEval)
	bad = api.AppendUvarint(bad, 2)
	bad = api.AppendUvarint(bad, 1)
	bad = api.AppendUvarint(bad, 9) // promises 9 pairs, delivers none
	rc2.send(api.FinishFrame(bad, 0))
	expectClosed(rc2.nc)

	// The server is unharmed: a fresh client round-trips fine.
	c := binClient(t, addr, client.WithTenant("t0"))
	if err := c.Health(context.Background()); err != nil {
		t.Fatal(err)
	}
}

// TestBinaryDrainFlushesInFlight is the graceful-shutdown acceptance on
// the binary wire: Drain pushes a Drain frame on live connections,
// refuses new evals with CodeDraining, completes and flushes in-flight
// results before closing the connection, and stops accepting new
// connections.
func TestBinaryDrainFlushesInFlight(t *testing.T) {
	release := make(chan struct{})
	_, srv, _, addr := newBinStack(t, runtime.Config{}, nil)
	srv.mu.Lock()
	srv.schemas["blocker"] = newEntry(blockerSchema(t, release), "", "", 1)
	srv.mu.Unlock()

	rc := dialRaw(t, addr, "t0")
	names, _, _ := rc.bind(1, 1, "blocker", "")
	xID := uint64(0)
	for i, name := range names {
		if name == "x" {
			xID = uint64(i)
		}
	}
	rc.eval(2, 1, map[uint64]value.Value{xID: value.Int(1)})

	// Wait until the eval is admitted (in flight) before draining.
	deadline := time.Now().Add(10 * time.Second)
	for srv.tenantFor("t0").admission().InFlight == 0 {
		if time.Now().After(deadline) {
			t.Fatal("eval never admitted")
		}
		time.Sleep(time.Millisecond)
	}

	drained := make(chan error, 1)
	go func() {
		_, err := srv.Drain(context.Background())
		drained <- err
	}()

	// The unsolicited Drain frame arrives while the eval is in flight.
	typ, _ := rc.next()
	if typ != api.FrameDrain {
		t.Fatalf("frame %#x, want Drain push", typ)
	}
	// New work on the draining connection is refused with CodeDraining.
	rc.eval(3, 1, map[uint64]value.Value{xID: value.Int(2)})
	typ, p := rc.next()
	if typ != api.FrameError {
		t.Fatalf("eval during drain answered %#x", typ)
	}
	cur := api.NewCursor(p)
	if got := cur.Uvarint(); got != 3 {
		t.Fatalf("error for request %d, want 3", got)
	}
	if e, err := api.ParseError(&cur); err != nil || e.Code != api.CodeDraining {
		t.Fatalf("drain refusal = %+v, %v; want CodeDraining", e, err)
	}

	// Unblock the in-flight eval: its Result must be flushed before the
	// server closes the connection.
	close(release)
	typ, p = rc.next()
	if typ != api.FrameResult {
		t.Fatalf("frame %#x, want the in-flight Result", typ)
	}
	cur = api.NewCursor(p)
	if got := cur.Uvarint(); got != 2 {
		t.Fatalf("result for request %d, want 2", got)
	}
	if _, _, err := rc.fr.Next(); err == nil {
		t.Fatal("connection still open after drain completed")
	}
	if err := <-drained; err != nil {
		t.Fatal(err)
	}

	// The listener is closed: new connections are refused or dropped at
	// the handshake.
	nc, err := net.Dial("tcp", strings.TrimPrefix(addr, "dfbin://"))
	if err == nil {
		nc.SetDeadline(time.Now().Add(5 * time.Second))
		nc.Write(api.AppendHelloFrame(nil, "t0"))
		if _, _, err := api.NewFrameReader(bufio.NewReader(nc), 0).Next(); err == nil {
			t.Fatal("drained server accepted a new binary connection")
		}
		nc.Close()
	}
}

// TestBinaryTenantIsolationUnderOverload is the acceptance scenario of
// TestTenantIsolationUnderOverload run over the binary wire: the bully's
// flood sheds with retry hints the client honors, while the in-quota
// tenant's p99 stays within 2x of its solo run.
func TestBinaryTenantIsolationUnderOverload(t *testing.T) {
	if raceEnabled {
		t.Skip("latency-bound acceptance test skipped under -race")
	}
	backend := &runtime.Latency{Base: 8 * time.Millisecond}
	svc, srv, _, addr := newBinStack(t,
		runtime.Config{Backend: backend, MaxInFlightTasks: 512},
		func(cfg *Config) {
			cfg.Tenant = TenantLimits{MaxInFlight: 12}
			cfg.ShedQueueDepth = -1 // isolate the quota: no global shed
		})
	ctx := context.Background()
	src := map[string]value.Value{"order_total": value.Int(120), "customer_id": value.Int(7)}

	runTenant := func(tenant string, conc, n int, retry int) {
		c, err := client.New(addr, client.WithTenant(tenant),
			client.WithRetryShed(retry), client.WithMaxConns(conc))
		if err != nil {
			t.Error(err)
			return
		}
		defer c.Close()
		var next atomic.Int64
		var wg sync.WaitGroup
		for w := 0; w < conc; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for {
					if next.Add(1) > int64(n) {
						return
					}
					c.EvalValues(ctx, "quickstart", "", src) // sheds surface as errors; fine
				}
			}()
		}
		wg.Wait()
	}

	runTenant("polite", 8, 200, 3)
	solo := svc.Stats().Tenants["polite"]
	if solo.Completed == 0 || solo.P99 <= 0 {
		t.Fatalf("solo run recorded nothing: %+v", solo)
	}
	svc.ResetStats()

	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		runTenant("bully", 48, 600, 1000)
	}()
	runTenant("polite", 8, 200, 3)
	wg.Wait()

	loaded := svc.Stats().Tenants["polite"]
	bullyAdm := srv.tenantFor("bully").admission()
	if bullyAdm.ShedQuota == 0 {
		t.Fatalf("bully was never shed: %+v", bullyAdm)
	}
	budget := 2*solo.P99 + 2*time.Millisecond
	if loaded.P99 > budget {
		t.Fatalf("polite p99 under load %v exceeds budget %v (solo %v)", loaded.P99, budget, solo.P99)
	}
	t.Logf("polite p99 solo=%v under-load=%v (budget %v); bully accepted=%d shed=%d",
		solo.P99, loaded.P99, budget, bullyAdm.Accepted, bullyAdm.ShedQuota)
}

// TestBinaryBatchTooLarge: the per-request instance cap applies on the
// binary wire with the permanent CodeTooLarge, not a retryable shed.
func TestBinaryBatchTooLarge(t *testing.T) {
	_, _, _, addr := newBinStack(t, runtime.Config{}, func(cfg *Config) { cfg.MaxBatch = 4 })
	c := binClient(t, addr, client.WithTenant("t0"))
	srcs := make([]map[string]any, 5)
	for i := range srcs {
		srcs[i] = map[string]any{"order_total": float64(1)}
	}
	_, err := c.EvalBatch(context.Background(), api.BatchRequest{Schema: "quickstart", Sources: srcs})
	if err == nil || errors.Is(err, client.ErrShed) || !strings.Contains(err.Error(), "exceeds limit") {
		t.Fatalf("oversized batch: %v", err)
	}
	// RunLoad over the binary wire, within the cap, drives clean.
	rep, err := client.RunLoad(context.Background(), c, client.Load{
		Schema: "quickstart",
		Sources: map[string]value.Value{
			"order_total": value.Int(120), "customer_id": value.Int(7),
		},
		Count: 64, Concurrency: 4, BatchSize: 4,
	})
	if err != nil || rep.Failed > 0 || rep.Errors > 0 {
		t.Fatalf("RunLoad over binary: %v %+v", err, rep)
	}
}
