package server

// Durable schema registry storage: an append-only write-ahead log plus a
// periodically rewritten snapshot, both streams of api.WALRecord under the
// server's data directory. Registration appends (and fsyncs) before the
// client is acked; boot replays snapshot then log, re-parses every schema
// text and verifies its deterministic fingerprint against the logged one.
//
// Damage policy follows the record codec's taxonomy: a torn final log
// record (crash mid-append) is truncated away with a warning — the
// registration it held was never acked; any corrupt record, torn snapshot,
// or fingerprint mismatch refuses recovery outright, because serving wrong
// schemas silently is worse than not serving.

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"syscall"
	"time"

	"repro/internal/api"
	"repro/internal/fault"
)

// ErrRegistryPoisoned is the fail-closed state: a write or fsync error
// on the WAL poisons the registry permanently (for this process) and
// every further registration is refused with this error. Retrying after
// a failed fsync and acking the retry would be a lie — the kernel may
// have dropped the dirty pages while clearing the error — so the only
// safe move is to stop acking durability and keep serving what is
// already registered (and therefore already durable).
var ErrRegistryPoisoned = errors.New("server: registry poisoned by a write/fsync error; registrations refused, restart to recover")

// ErrRegistryReadOnly is the graceful flavor of the same degradation:
// the disk is full (ENOSPC). Nothing is suspected corrupt — the append
// simply could not land — but the registry still refuses registrations
// until an operator makes space and restarts, for the same
// never-retry-and-ack reason.
var ErrRegistryReadOnly = errors.New("server: registry read-only: no space left on device; registrations refused until space is freed and the server restarts")

// walMagic opens both registry files; a file that exists but starts
// otherwise belongs to something else and recovery refuses it.
const walMagic = "DFWAL1\n"

const (
	walFileName  = "registry.wal"
	snapFileName = "registry.snap"
)

// defaultSnapshotEvery is how many log appends trigger a snapshot rewrite
// and log truncation.
const defaultSnapshotEvery = 256

// walStore owns the two registry files. All methods are called with the
// server's registry lock held (registration is cold), so it needs no lock
// of its own.
type walStore struct {
	dir       string
	fs        fault.FS
	log       *fault.File
	logRecs   int // records appended to the log since its last truncation
	snapEvery int
	buf       []byte
	// failed is the sticky fail-closed state: once any append or
	// log-reset IO fails, every later append returns this error without
	// touching the files again. Wraps ErrRegistryReadOnly on ENOSPC,
	// ErrRegistryPoisoned otherwise.
	failed error
}

// RecoveryInfo summarizes a boot replay of the durable registry.
type RecoveryInfo struct {
	// Enabled is true when the server runs over a data directory.
	Enabled bool
	// Schemas / Shadows count recovered live schemas and shadow candidates.
	Schemas int
	Shadows int
	// Duration is the wall-clock time of the replay (read, parse, verify).
	Duration time.Duration
	// TornBytes is the size of a torn final log record that was truncated
	// away (0 when the log ended cleanly).
	TornBytes int64
}

// openWALStore opens (creating as needed) the registry files under dir and
// returns the store plus the records to replay, snapshot first. A torn
// final log record is truncated in place and reported via tornBytes;
// corruption anywhere returns an error.
func openWALStore(dir string, snapEvery int) (w *walStore, recs []api.WALRecord, tornBytes int64, err error) {
	if snapEvery <= 0 {
		snapEvery = defaultSnapshotEvery
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, nil, 0, fmt.Errorf("server: datadir: %w", err)
	}
	// A crash between the snapshot tmp write and its rename leaks the tmp
	// file; it was never the live snapshot, so recovery just deletes it.
	if err := os.Remove(filepath.Join(dir, snapFileName+".tmp")); err != nil && !errors.Is(err, os.ErrNotExist) {
		return nil, nil, 0, fmt.Errorf("server: orphaned snapshot tmp: %w", err)
	}
	snapPath := filepath.Join(dir, snapFileName)
	if snap, err := os.ReadFile(snapPath); err == nil {
		recs, _, err = decodeWALFile(snap, false)
		if err != nil {
			return nil, nil, 0, fmt.Errorf("server: snapshot %s: %w", snapPath, err)
		}
	} else if !errors.Is(err, os.ErrNotExist) {
		return nil, nil, 0, fmt.Errorf("server: snapshot: %w", err)
	}

	logPath := filepath.Join(dir, walFileName)
	raw, err := os.ReadFile(logPath)
	if err != nil && !errors.Is(err, os.ErrNotExist) {
		return nil, nil, 0, fmt.Errorf("server: wal: %w", err)
	}
	logRecs, keep := []api.WALRecord(nil), int64(0)
	if err == nil {
		logRecs, keep, err = decodeWALFile(raw, true)
		if err != nil {
			return nil, nil, 0, fmt.Errorf("server: wal %s: %w", logPath, err)
		}
		tornBytes = int64(len(raw)) - keep
	}

	f, err := os.OpenFile(logPath, os.O_CREATE|os.O_RDWR, 0o644)
	if err != nil {
		return nil, nil, 0, fmt.Errorf("server: wal: %w", err)
	}
	if keep < int64(len(walMagic)) {
		// Fresh file, or a crash before even the magic landed.
		keep = int64(len(walMagic))
		if err := f.Truncate(0); err == nil {
			_, err = f.WriteAt([]byte(walMagic), 0)
		}
		if err != nil {
			f.Close()
			return nil, nil, 0, fmt.Errorf("server: wal init: %w", err)
		}
	} else if keep < int64(len(raw)) {
		// Torn final record: cut the log back to the last good boundary.
		if err := f.Truncate(keep); err != nil {
			f.Close()
			return nil, nil, 0, fmt.Errorf("server: wal truncate: %w", err)
		}
	}
	if _, err := f.Seek(keep, 0); err != nil {
		f.Close()
		return nil, nil, 0, fmt.Errorf("server: wal seek: %w", err)
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return nil, nil, 0, fmt.Errorf("server: wal sync: %w", err)
	}
	return &walStore{dir: dir, log: fault.NewFile(f), logRecs: len(logRecs), snapEvery: snapEvery},
		append(recs, logRecs...), tornBytes, nil
}

// decodeWALFile decodes a whole registry file. With tolerateTorn (the log),
// a torn trailing record stops the decode cleanly and keep reports the
// offset of the last good boundary; without it (the snapshot, written
// atomically) any damage is an error. Corrupt records are errors in both.
func decodeWALFile(b []byte, tolerateTorn bool) (recs []api.WALRecord, keep int64, err error) {
	if len(b) < len(walMagic) {
		if tolerateTorn {
			return nil, 0, nil
		}
		return nil, 0, fmt.Errorf("%w: missing file magic", api.ErrWALCorrupt)
	}
	if string(b[:len(walMagic)]) != walMagic {
		return nil, 0, fmt.Errorf("%w: bad file magic", api.ErrWALCorrupt)
	}
	off := int64(len(walMagic))
	rest := b[off:]
	for len(rest) > 0 {
		rec, n, err := api.DecodeWALRecord(rest)
		if err != nil {
			if tolerateTorn && errors.Is(err, api.ErrWALTorn) {
				return recs, off, nil
			}
			return nil, 0, err
		}
		recs = append(recs, rec)
		off += int64(n)
		rest = rest[n:]
	}
	return recs, off, nil
}

// poison records a fatal IO error as the store's sticky failed state and
// returns it. ENOSPC maps to the read-only degradation, anything else to
// the poisoned fail-closed state; either way no further append touches
// the files — a registry that cannot promise durability must stop acking
// it, not retry until an fsync "succeeds" over pages the kernel already
// dropped.
func (w *walStore) poison(err error) error {
	typed := ErrRegistryPoisoned
	if errors.Is(err, syscall.ENOSPC) {
		typed = ErrRegistryReadOnly
	}
	w.failed = fmt.Errorf("%w (%v)", typed, err)
	return w.failed
}

// failedErr reports the sticky fail-closed state, nil when healthy (or
// when the server runs without a data directory).
func (w *walStore) failedErr() error {
	if w == nil {
		return nil
	}
	return w.failed
}

// append durably adds one record: the write and fsync complete before the
// caller acks the registration. Any IO error fails the store closed.
func (w *walStore) append(rec api.WALRecord) error {
	if w.failed != nil {
		return w.failed
	}
	w.buf = api.AppendWALRecord(w.buf[:0], rec)
	if _, err := w.log.Write(fault.SiteWALAppendWrite, w.buf); err != nil {
		return w.poison(fmt.Errorf("server: wal append: %w", err))
	}
	if err := w.log.Sync(fault.SiteWALAppendSync); err != nil {
		return w.poison(fmt.Errorf("server: wal sync: %w", err))
	}
	w.logRecs++
	return nil
}

// wantSnapshot reports whether enough has accumulated in the log that the
// caller should hand the full registry state to snapshot.
func (w *walStore) wantSnapshot() bool { return w.logRecs >= w.snapEvery }

// snapshot atomically replaces the snapshot file with the given full
// registry state (write temp, fsync, rename, dir-sync) and truncates the
// log. A failure before the rename leaves the previous snapshot+log
// intact — the state is still fully recoverable, so those errors are
// advisory (ENOSPC excepted: a full disk also dooms the next append, so
// it degrades the store to read-only immediately). A dir-sync failure is
// NOT advisory: if the rename's directory entry never becomes durable, a
// machine crash could resurrect the old snapshot beside a log we already
// truncated, silently losing records — so the log is left alone and the
// store fails closed. Log-reset failures fail closed for the same
// reason: the log's contents no longer match what the next append
// assumes.
func (w *walStore) snapshot(recs []api.WALRecord) error {
	if w.failed != nil {
		return w.failed
	}
	tmp := filepath.Join(w.dir, snapFileName+".tmp")
	buf := append(w.buf[:0], walMagic...)
	for _, rec := range recs {
		buf = api.AppendWALRecord(buf, rec)
	}
	w.buf = buf
	advisory := func(err error) error {
		err = fmt.Errorf("server: snapshot: %w", err)
		if errors.Is(err, syscall.ENOSPC) {
			return w.poison(err)
		}
		return err
	}
	f, err := w.fs.OpenFile(fault.SiteWALSnapOpen, tmp, os.O_CREATE|os.O_TRUNC|os.O_WRONLY, 0o644)
	if err != nil {
		return advisory(err)
	}
	if _, err := f.Write(fault.SiteWALSnapWrite, buf); err == nil {
		err = f.Sync(fault.SiteWALSnapSync)
	}
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		os.Remove(tmp)
		return advisory(err)
	}
	if err := w.fs.Rename(fault.SiteWALSnapRename, tmp, filepath.Join(w.dir, snapFileName)); err != nil {
		os.Remove(tmp)
		return advisory(err)
	}
	if err := w.fs.SyncDir(fault.SiteWALSnapDirSync, w.dir); err != nil {
		return w.poison(fmt.Errorf("server: snapshot dirsync: %w", err))
	}
	// The snapshot now covers everything in the log; reset the log so a
	// crash between here and the next append replays snapshot-only.
	if err := w.log.Truncate(fault.SiteWALLogTruncate, int64(len(walMagic))); err != nil {
		return w.poison(fmt.Errorf("server: wal reset: %w", err))
	}
	if _, err := w.log.Seek(int64(len(walMagic)), 0); err != nil {
		return w.poison(fmt.Errorf("server: wal reset: %w", err))
	}
	if err := w.log.Sync(fault.SiteWALLogSync); err != nil {
		return w.poison(fmt.Errorf("server: wal reset: %w", err))
	}
	w.logRecs = 0
	return nil
}

func (w *walStore) close() {
	if w != nil && w.log != nil {
		w.log.Close()
	}
}
