package server

// Durable schema registry storage: an append-only write-ahead log plus a
// periodically rewritten snapshot, both streams of api.WALRecord under the
// server's data directory. Registration appends (and fsyncs) before the
// client is acked; boot replays snapshot then log, re-parses every schema
// text and verifies its deterministic fingerprint against the logged one.
//
// Damage policy follows the record codec's taxonomy: a torn final log
// record (crash mid-append) is truncated away with a warning — the
// registration it held was never acked; any corrupt record, torn snapshot,
// or fingerprint mismatch refuses recovery outright, because serving wrong
// schemas silently is worse than not serving.

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"time"

	"repro/internal/api"
)

// walMagic opens both registry files; a file that exists but starts
// otherwise belongs to something else and recovery refuses it.
const walMagic = "DFWAL1\n"

const (
	walFileName  = "registry.wal"
	snapFileName = "registry.snap"
)

// defaultSnapshotEvery is how many log appends trigger a snapshot rewrite
// and log truncation.
const defaultSnapshotEvery = 256

// walStore owns the two registry files. All methods are called with the
// server's registry lock held (registration is cold), so it needs no lock
// of its own.
type walStore struct {
	dir       string
	log       *os.File
	logRecs   int // records appended to the log since its last truncation
	snapEvery int
	buf       []byte
}

// RecoveryInfo summarizes a boot replay of the durable registry.
type RecoveryInfo struct {
	// Enabled is true when the server runs over a data directory.
	Enabled bool
	// Schemas / Shadows count recovered live schemas and shadow candidates.
	Schemas int
	Shadows int
	// Duration is the wall-clock time of the replay (read, parse, verify).
	Duration time.Duration
	// TornBytes is the size of a torn final log record that was truncated
	// away (0 when the log ended cleanly).
	TornBytes int64
}

// openWALStore opens (creating as needed) the registry files under dir and
// returns the store plus the records to replay, snapshot first. A torn
// final log record is truncated in place and reported via tornBytes;
// corruption anywhere returns an error.
func openWALStore(dir string, snapEvery int) (w *walStore, recs []api.WALRecord, tornBytes int64, err error) {
	if snapEvery <= 0 {
		snapEvery = defaultSnapshotEvery
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, nil, 0, fmt.Errorf("server: datadir: %w", err)
	}
	snapPath := filepath.Join(dir, snapFileName)
	if snap, err := os.ReadFile(snapPath); err == nil {
		recs, _, err = decodeWALFile(snap, false)
		if err != nil {
			return nil, nil, 0, fmt.Errorf("server: snapshot %s: %w", snapPath, err)
		}
	} else if !errors.Is(err, os.ErrNotExist) {
		return nil, nil, 0, fmt.Errorf("server: snapshot: %w", err)
	}

	logPath := filepath.Join(dir, walFileName)
	raw, err := os.ReadFile(logPath)
	if err != nil && !errors.Is(err, os.ErrNotExist) {
		return nil, nil, 0, fmt.Errorf("server: wal: %w", err)
	}
	logRecs, keep := []api.WALRecord(nil), int64(0)
	if err == nil {
		logRecs, keep, err = decodeWALFile(raw, true)
		if err != nil {
			return nil, nil, 0, fmt.Errorf("server: wal %s: %w", logPath, err)
		}
		tornBytes = int64(len(raw)) - keep
	}

	f, err := os.OpenFile(logPath, os.O_CREATE|os.O_RDWR, 0o644)
	if err != nil {
		return nil, nil, 0, fmt.Errorf("server: wal: %w", err)
	}
	if keep < int64(len(walMagic)) {
		// Fresh file, or a crash before even the magic landed.
		keep = int64(len(walMagic))
		if err := f.Truncate(0); err == nil {
			_, err = f.WriteAt([]byte(walMagic), 0)
		}
		if err != nil {
			f.Close()
			return nil, nil, 0, fmt.Errorf("server: wal init: %w", err)
		}
	} else if keep < int64(len(raw)) {
		// Torn final record: cut the log back to the last good boundary.
		if err := f.Truncate(keep); err != nil {
			f.Close()
			return nil, nil, 0, fmt.Errorf("server: wal truncate: %w", err)
		}
	}
	if _, err := f.Seek(keep, 0); err != nil {
		f.Close()
		return nil, nil, 0, fmt.Errorf("server: wal seek: %w", err)
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return nil, nil, 0, fmt.Errorf("server: wal sync: %w", err)
	}
	return &walStore{dir: dir, log: f, logRecs: len(logRecs), snapEvery: snapEvery},
		append(recs, logRecs...), tornBytes, nil
}

// decodeWALFile decodes a whole registry file. With tolerateTorn (the log),
// a torn trailing record stops the decode cleanly and keep reports the
// offset of the last good boundary; without it (the snapshot, written
// atomically) any damage is an error. Corrupt records are errors in both.
func decodeWALFile(b []byte, tolerateTorn bool) (recs []api.WALRecord, keep int64, err error) {
	if len(b) < len(walMagic) {
		if tolerateTorn {
			return nil, 0, nil
		}
		return nil, 0, fmt.Errorf("%w: missing file magic", api.ErrWALCorrupt)
	}
	if string(b[:len(walMagic)]) != walMagic {
		return nil, 0, fmt.Errorf("%w: bad file magic", api.ErrWALCorrupt)
	}
	off := int64(len(walMagic))
	rest := b[off:]
	for len(rest) > 0 {
		rec, n, err := api.DecodeWALRecord(rest)
		if err != nil {
			if tolerateTorn && errors.Is(err, api.ErrWALTorn) {
				return recs, off, nil
			}
			return nil, 0, err
		}
		recs = append(recs, rec)
		off += int64(n)
		rest = rest[n:]
	}
	return recs, off, nil
}

// append durably adds one record: the write and fsync complete before the
// caller acks the registration.
func (w *walStore) append(rec api.WALRecord) error {
	w.buf = api.AppendWALRecord(w.buf[:0], rec)
	if _, err := w.log.Write(w.buf); err != nil {
		return fmt.Errorf("server: wal append: %w", err)
	}
	if err := w.log.Sync(); err != nil {
		return fmt.Errorf("server: wal sync: %w", err)
	}
	w.logRecs++
	return nil
}

// wantSnapshot reports whether enough has accumulated in the log that the
// caller should hand the full registry state to snapshot.
func (w *walStore) wantSnapshot() bool { return w.logRecs >= w.snapEvery }

// snapshot atomically replaces the snapshot file with the given full
// registry state (write temp, fsync, rename) and truncates the log. A
// failed snapshot leaves the previous snapshot+log intact — the state is
// still fully recoverable, so the error is advisory.
func (w *walStore) snapshot(recs []api.WALRecord) error {
	tmp := filepath.Join(w.dir, snapFileName+".tmp")
	buf := append(w.buf[:0], walMagic...)
	for _, rec := range recs {
		buf = api.AppendWALRecord(buf, rec)
	}
	w.buf = buf
	f, err := os.OpenFile(tmp, os.O_CREATE|os.O_TRUNC|os.O_WRONLY, 0o644)
	if err != nil {
		return fmt.Errorf("server: snapshot: %w", err)
	}
	if _, err := f.Write(buf); err == nil {
		err = f.Sync()
	}
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		os.Remove(tmp)
		return fmt.Errorf("server: snapshot: %w", err)
	}
	if err := os.Rename(tmp, filepath.Join(w.dir, snapFileName)); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("server: snapshot: %w", err)
	}
	if d, err := os.Open(w.dir); err == nil {
		d.Sync()
		d.Close()
	}
	// The snapshot now covers everything in the log; reset the log so a
	// crash between here and the next append replays snapshot-only.
	if err := w.log.Truncate(int64(len(walMagic))); err != nil {
		return fmt.Errorf("server: wal reset: %w", err)
	}
	if _, err := w.log.Seek(int64(len(walMagic)), 0); err != nil {
		return fmt.Errorf("server: wal reset: %w", err)
	}
	if err := w.log.Sync(); err != nil {
		return fmt.Errorf("server: wal reset: %w", err)
	}
	w.logRecs = 0
	return nil
}

func (w *walStore) close() {
	if w != nil && w.log != nil {
		w.log.Close()
	}
}
