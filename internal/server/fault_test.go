package server

// Disk-fault and wire-fault hardening tests, driven by internal/fault
// failpoints: the fail-closed registry contract (fsync error ⇒ poisoned,
// ENOSPC ⇒ read-only, both sticky, both typed on both wires), the
// snapshot sequence's damage policy, and the dfbin client's recovery
// from injected partial writes and connection resets.

import (
	"context"
	"errors"
	"net"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"repro/internal/api"
	"repro/internal/client"
	"repro/internal/fault"
	"repro/internal/runtime"
	"repro/internal/value"
)

// newFaultStack is a durable server on both wires: dir-backed registry,
// HTTP test server, dfbin listener.
func newFaultStack(t *testing.T, dir string) (*Server, *httptest.Server, string) {
	t.Helper()
	svc := runtime.New(runtime.Config{})
	srv, err := Open(Config{Service: svc, DataDir: dir})
	if err != nil {
		t.Fatal(err)
	}
	hs := httptest.NewServer(srv.Handler())
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go srv.ServeBinary(ln)
	t.Cleanup(func() {
		hs.Close()
		if !srv.Draining() {
			srv.Drain(context.Background())
		}
	})
	return srv, hs, "dfbin://" + ln.Addr().String()
}

// TestRegistryFailClosedOnFsyncError is the fsyncgate contract: after a
// WAL fsync error the registry refuses every further registration — even
// after the fault clears — while continuing to serve what it already
// acked. A retried fsync can "succeed" over dirty pages the kernel
// already dropped, so an ack after a sync error would be a durability
// lie; the only honest states are served-and-durable or refused.
func TestRegistryFailClosedOnFsyncError(t *testing.T) {
	t.Cleanup(fault.Reset)
	srv, hs, binAddr := newFaultStack(t, t.TempDir())
	ctx := context.Background()
	hc, err := client.New(hs.URL, client.WithTenant("t0"))
	if err != nil {
		t.Fatal(err)
	}
	defer hc.Close()

	if _, err := hc.RegisterSchemaText(ctx, durableText); err != nil {
		t.Fatal(err)
	}

	if err := fault.Arm(fault.SiteWALAppendSync, "error:simulated fsync failure"); err != nil {
		t.Fatal(err)
	}
	resp := post(t, hs, "/v1/schemas", "t0", api.SchemaRequest{Text: durableText})
	var eresp api.ErrorResponse
	drainBody(t, resp, &eresp)
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("registration after fsync error: HTTP %d, want 503", resp.StatusCode)
	}
	if !strings.Contains(eresp.Error, "poisoned") {
		t.Fatalf("error %q does not name the poisoned state", eresp.Error)
	}
	if err := srv.wal.failedErr(); !errors.Is(err, ErrRegistryPoisoned) {
		t.Fatalf("wal failed state = %v, want ErrRegistryPoisoned", err)
	}

	// Sticky: the fault is gone, the refusal is not. The fsync that failed
	// may have lost pages; only a restart re-reads the truth from disk.
	fault.Reset()
	resp = post(t, hs, "/v1/schemas", "t0", api.SchemaRequest{Text: durableText})
	drainBody(t, resp, nil)
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("registration after fault cleared: HTTP %d, want sticky 503", resp.StatusCode)
	}

	// The binary wire refuses with CodeInternal — NOT CodeDraining, whose
	// try-another-node hint would be wrong here.
	bc := binClient(t, binAddr, client.WithTenant("t0"))
	if _, err := bc.RegisterSchemaText(ctx, durableText); err == nil ||
		!strings.Contains(err.Error(), "code 7") || !strings.Contains(err.Error(), "poisoned") {
		t.Fatalf("binary registration = %v, want CodeInternal(7) naming the poisoned state", err)
	}

	// Already-registered schemas still serve, on both wires.
	if res, err := hc.EvalValues(ctx, "billing", "", map[string]value.Value{"amount": value.Int(120)}); err != nil || res.Error != "" {
		t.Fatalf("HTTP eval on poisoned registry: %v %s", err, res.Error)
	}
	if res, err := bc.EvalValues(ctx, "billing", "", map[string]value.Value{"amount": value.Int(120)}); err != nil || res.Error != "" {
		t.Fatalf("binary eval on poisoned registry: %v %s", err, res.Error)
	}

	// /v1/stats flags the degradation for operators.
	st, err := hc.Stats(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if !st.RegistryReadOnly || !strings.Contains(st.RegistryError, "poisoned") {
		t.Fatalf("stats registry flags = (%v, %q), want read-only with the poisoned cause",
			st.RegistryReadOnly, st.RegistryError)
	}
}

// TestRegistryReadOnlyOnENOSPC: disk-full degrades to the same serve-
// existing/refuse-new mode, but with the distinct read-only typed error —
// nothing is suspected corrupt, the operator just needs to free space.
func TestRegistryReadOnlyOnENOSPC(t *testing.T) {
	t.Cleanup(fault.Reset)
	srv, hs, _ := newFaultStack(t, t.TempDir())
	ctx := context.Background()
	hc, err := client.New(hs.URL, client.WithTenant("t0"))
	if err != nil {
		t.Fatal(err)
	}
	defer hc.Close()

	if err := fault.Arm(fault.SiteWALAppendWrite, "enospc"); err != nil {
		t.Fatal(err)
	}
	resp := post(t, hs, "/v1/schemas", "t0", api.SchemaRequest{Text: durableText})
	var eresp api.ErrorResponse
	drainBody(t, resp, &eresp)
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("registration on full disk: HTTP %d, want 503", resp.StatusCode)
	}
	if !strings.Contains(eresp.Error, "read-only") {
		t.Fatalf("error %q does not name the read-only state", eresp.Error)
	}
	if err := srv.wal.failedErr(); !errors.Is(err, ErrRegistryReadOnly) {
		t.Fatalf("wal failed state = %v, want ErrRegistryReadOnly", err)
	}
	if err := srv.wal.failedErr(); errors.Is(err, ErrRegistryPoisoned) {
		t.Fatal("ENOSPC must surface as read-only, not poisoned — the errors are distinct")
	}
	fault.Reset()

	// Sticky, flagged, and still serving built-ins.
	resp = post(t, hs, "/v1/schemas", "t0", api.SchemaRequest{Text: durableText})
	drainBody(t, resp, nil)
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("registration after ENOSPC cleared: HTTP %d, want sticky 503", resp.StatusCode)
	}
	st, err := hc.Stats(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if !st.RegistryReadOnly || !strings.Contains(st.RegistryError, "read-only") {
		t.Fatalf("stats registry flags = (%v, %q), want read-only with the ENOSPC cause",
			st.RegistryReadOnly, st.RegistryError)
	}
	if res, err := hc.EvalValues(ctx, "quickstart", "", map[string]value.Value{
		"visits": value.Int(3), "spend": value.Int(10)}); err != nil || res.Error != "" {
		t.Fatalf("eval on read-only registry: %v %s", err, res.Error)
	}
}

// TestBinaryPartialWriteRedial proves the claim the tentpole makes about
// the dfbin wire: a partial frame write on the server side surfaces as a
// connection error that the multiplexed client's redial+re-bind path
// absorbs — the caller sees a correct answer, not an error or a stall.
func TestBinaryPartialWriteRedial(t *testing.T) {
	t.Cleanup(fault.Reset)
	_, _, binAddr := newFaultStack(t, t.TempDir())
	ctx := context.Background()

	// Server-side writes on the connection about to be made: HelloAck is
	// write 1, BindAck write 2, the first eval Result write 3 — which gets
	// cut 4 bytes in, leaving the client a torn frame and the server
	// writer a broken stream it must close promptly.
	if err := fault.Arm(fault.SiteBinConnWrite, "3*partial:4"); err != nil {
		t.Fatal(err)
	}
	bc := binClient(t, binAddr, client.WithTenant("t0"))
	sources := map[string]value.Value{"visits": value.Int(3), "spend": value.Int(10)}

	want := ""
	deadline := time.Now().Add(10 * time.Second)
	for {
		res, err := bc.EvalValues(ctx, "quickstart", "", sources)
		if err == nil && res.Error == "" {
			want = canonJSON(t, res.Values)
			break
		}
		// The one retry the client burns internally can race the server's
		// close; what may never happen is a stall or a panic.
		if time.Now().After(deadline) {
			t.Fatalf("eval never recovered from the partial write: %v", err)
		}
	}
	if _, fired := fault.Hits(fault.SiteBinConnWrite); fired != 1 {
		t.Fatalf("partial-write failpoint fired %d times, want exactly 1", fired)
	}
	// The connection the client is now on is the redialed one, with its
	// bind restored: further evals answer identically with no faults left.
	res, err := bc.EvalValues(ctx, "quickstart", "", sources)
	if err != nil || res.Error != "" {
		t.Fatalf("eval after recovery: %v %s", err, res.Error)
	}
	if got := canonJSON(t, res.Values); got != want {
		t.Fatalf("answer changed across the redial: %s vs %s", got, want)
	}
}

// TestBinaryClientReadFaultRecovery: an injected read error on the
// client's side of an established connection kills that connection; the
// next eval transparently redials and answers. No panic, no stall, no
// wrong answer.
func TestBinaryClientReadFaultRecovery(t *testing.T) {
	t.Cleanup(fault.Reset)
	_, _, binAddr := newFaultStack(t, t.TempDir())
	ctx := context.Background()

	// The client wraps its conns only when some site is armed at dial
	// time, so arm a never-firing one-shot before the first dial, then
	// re-arm the real fault once the connection is up.
	if err := fault.Arm(fault.SiteClientConnRead, "1000000*error"); err != nil {
		t.Fatal(err)
	}
	bc := binClient(t, binAddr, client.WithTenant("t0"))
	sources := map[string]value.Value{"visits": value.Int(3), "spend": value.Int(10)}
	res, err := bc.EvalValues(ctx, "quickstart", "", sources)
	if err != nil || res.Error != "" {
		t.Fatalf("pre-fault eval: %v %s", err, res.Error)
	}
	want := canonJSON(t, res.Values)

	// One-shot: the reader's next Read call on the live conn fires it.
	if err := fault.Arm(fault.SiteClientConnRead, "1*error:injected conn reset"); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(10 * time.Second)
	for {
		res, err = bc.EvalValues(ctx, "quickstart", "", sources)
		if err == nil && res.Error == "" {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("eval never recovered from the injected read fault: %v", err)
		}
	}
	if got := canonJSON(t, res.Values); got != want {
		t.Fatalf("answer changed across the reconnect: %s vs %s", got, want)
	}
}

// TestOrphanSnapshotTmpCleanedAtBoot pins the small-fix satellite: a
// crash between the snapshot tmp write and its rename leaks
// registry.snap.tmp; recovery deletes it (it was never the live
// snapshot) instead of leaking one per crash forever.
func TestOrphanSnapshotTmpCleanedAtBoot(t *testing.T) {
	dir := t.TempDir()
	tmp := filepath.Join(dir, snapFileName+".tmp")
	if err := os.WriteFile(tmp, []byte("half-written snapshot from a crash"), 0o644); err != nil {
		t.Fatal(err)
	}
	w, recs, torn, err := openWALStore(dir, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer w.close()
	if len(recs) != 0 || torn != 0 {
		t.Fatalf("recovery = (%d recs, %d torn), want clean empty", len(recs), torn)
	}
	if _, err := os.Stat(tmp); !errors.Is(err, os.ErrNotExist) {
		t.Fatalf("orphaned %s survived recovery: %v", tmp, err)
	}
}

// TestSnapshotRenameFailureIsAdvisory: a failed snapshot before the
// rename completes leaves the previous snapshot+log fully recoverable,
// so the store stays healthy and keeps appending.
func TestSnapshotRenameFailureIsAdvisory(t *testing.T) {
	t.Cleanup(fault.Reset)
	dir := t.TempDir()
	w, _, _, err := openWALStore(dir, 2)
	if err != nil {
		t.Fatal(err)
	}
	defer w.close()
	rec := api.WALRecord{Kind: api.WALKindSchema, Tenant: "t0", Name: "x",
		Version: 1, Fingerprint: 1, Text: "schema x\nsource a\nsynth b = a\ntarget b"}
	if err := w.append(rec); err != nil {
		t.Fatal(err)
	}
	if err := fault.Arm(fault.SiteWALSnapRename, "error"); err != nil {
		t.Fatal(err)
	}
	if err := w.snapshot([]api.WALRecord{rec}); err == nil {
		t.Fatal("snapshot with failed rename reported success")
	}
	if w.failedErr() != nil {
		t.Fatalf("advisory snapshot failure poisoned the store: %v", w.failedErr())
	}
	if _, err := os.Stat(filepath.Join(dir, snapFileName+".tmp")); !errors.Is(err, os.ErrNotExist) {
		t.Fatalf("tmp file survived the failed rename: %v", err)
	}
	fault.Reset()
	rec.Version = 2
	if err := w.append(rec); err != nil {
		t.Fatalf("append after advisory snapshot failure: %v", err)
	}
}

// TestSnapshotDirSyncFailurePoisons: once the rename has happened, a
// failed directory sync is NOT advisory. If the rename's directory entry
// never becomes durable, a machine crash could resurrect the OLD
// snapshot — so the log must not be truncated (its records are the only
// copy of the state under that outcome) and the store fails closed.
func TestSnapshotDirSyncFailurePoisons(t *testing.T) {
	t.Cleanup(fault.Reset)
	dir := t.TempDir()
	w, _, _, err := openWALStore(dir, 2)
	if err != nil {
		t.Fatal(err)
	}
	defer w.close()
	rec := api.WALRecord{Kind: api.WALKindSchema, Tenant: "t0", Name: "x",
		Version: 1, Fingerprint: 1, Text: "schema x\nsource a\nsynth b = a\ntarget b"}
	if err := w.append(rec); err != nil {
		t.Fatal(err)
	}
	logSize := func() int64 {
		fi, err := os.Stat(filepath.Join(dir, walFileName))
		if err != nil {
			t.Fatal(err)
		}
		return fi.Size()
	}
	before := logSize()

	if err := fault.Arm(fault.SiteWALSnapDirSync, "error"); err != nil {
		t.Fatal(err)
	}
	err = w.snapshot([]api.WALRecord{rec})
	if !errors.Is(err, ErrRegistryPoisoned) {
		t.Fatalf("snapshot with failed dirsync = %v, want poisoned", err)
	}
	if got := logSize(); got != before {
		t.Fatalf("log truncated (%d → %d bytes) under an undurable rename; its records were the only safe copy", before, got)
	}
	fault.Reset()
	rec.Version = 2
	if err := w.append(rec); !errors.Is(err, ErrRegistryPoisoned) {
		t.Fatalf("append after dirsync poisoning = %v, want sticky refusal", err)
	}
}
