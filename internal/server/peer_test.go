package server

import (
	"context"
	"fmt"
	"net"
	"net/http/httptest"
	"slices"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/client"
	"repro/internal/fault"
	"repro/internal/flows"
	"repro/internal/runtime"
)

// The in-process fleet harness: N dfsd cores (runtime.Service + Server +
// dfbin listener) wired into one peer ring over loopback TCP, close
// enough to the real 3-process deployment that the routing, forwarding,
// breaker, and drain paths are all the production code — while staying
// addressable from test code for chaos injection (killNode below reaches
// into the server's connection table the way SIGKILL reaches a process).

type fleetNode struct {
	svc  *runtime.Service
	srv  *Server
	ln   net.Listener
	addr string
	// backend is the node's gateBackend when the fleet was built with
	// gated backends (chaos tests); nil otherwise.
	backend *gateBackend
}

type fleetOpts struct {
	nodes        int
	gated        bool          // gateBackend per node instead of Instant
	noCache      bool          // dedup-only query layer: every query reaches the backend
	timeout      time.Duration // forward timeout (0 = 5s)
	after        int           // breaker trip threshold (0 = 3)
	cooldown     time.Duration // breaker cooldown (0 = 250ms)
	statsTimeout time.Duration // per-peer ?fleet=1 stats fetch bound (0 = server default)
}

// newFleet builds the ring: listeners first (the full member list must
// exist before any node starts), then one stack per node.
func newFleet(t testing.TB, o fleetOpts) []*fleetNode {
	t.Helper()
	if o.timeout <= 0 {
		o.timeout = 5 * time.Second
	}
	if o.cooldown <= 0 {
		o.cooldown = 250 * time.Millisecond
	}
	lns := make([]net.Listener, o.nodes)
	addrs := make([]string, o.nodes)
	for i := range lns {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		lns[i] = ln
		addrs[i] = ln.Addr().String()
	}
	nodes := make([]*fleetNode, o.nodes)
	for i := range nodes {
		var be runtime.Backend = runtime.Instant{}
		var gate *gateBackend
		if o.gated {
			gate = &gateBackend{}
			be = gate
		}
		cache := 65536
		if o.noCache {
			cache = 0
		}
		svc := runtime.New(runtime.Config{
			Backend: be,
			Workers: 8,
			Query:   runtime.QueryConfig{Dedup: true, CacheSize: cache},
		})
		srv, err := Open(Config{
			Service:             svc,
			Peers:               slices.Clone(addrs),
			PeerSelf:            addrs[i],
			PeerForwardTimeout:  o.timeout,
			PeerBreakerAfter:    o.after,
			PeerBreakerCooldown: o.cooldown,
			PeerStatsTimeout:    o.statsTimeout,
		})
		if err != nil {
			t.Fatal(err)
		}
		go srv.ServeBinary(lns[i])
		nodes[i] = &fleetNode{svc: svc, srv: srv, ln: lns[i], addr: addrs[i], backend: gate}
	}
	t.Cleanup(func() {
		for _, n := range nodes {
			if n.backend != nil {
				n.backend.unstall() // never leave flights parked across cleanup
			}
		}
		for _, n := range nodes {
			if !n.srv.Draining() {
				ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
				if _, err := n.srv.Drain(ctx); err != nil {
					t.Errorf("drain %s: %v", n.addr, err)
				}
				cancel()
			}
		}
	})
	return nodes
}

// killNode is the in-process SIGKILL: stop accepting and sever every live
// connection abruptly — no Drain frame, no flush, exactly what peers of a
// kill -9'd process observe. The node's goroutines keep running (as a
// real dead process's kernel state does not), but nothing can reach it.
func killNode(n *fleetNode) {
	srv := n.srv
	srv.bmu.Lock()
	lns := slices.Clone(srv.blisteners)
	conns := make([]*binConn, 0, len(srv.bconns))
	for c := range srv.bconns {
		conns = append(conns, c)
	}
	srv.bmu.Unlock()
	for _, ln := range lns {
		ln.Close()
	}
	for _, c := range conns {
		c.conn.Close()
	}
}

// gateBackend is an Instant backend with a stall valve: while stalled,
// completions park until unstall releases them — a recoverable version of
// a database that stops answering.
type gateBackend struct {
	mu      sync.Mutex
	stalled bool
	parked  []func()
}

func (g *gateBackend) Submit(cost int, done func()) {
	g.mu.Lock()
	if g.stalled {
		g.parked = append(g.parked, done)
		g.mu.Unlock()
		return
	}
	g.mu.Unlock()
	done()
}

func (g *gateBackend) stall() {
	g.mu.Lock()
	g.stalled = true
	g.mu.Unlock()
}

func (g *gateBackend) unstall() {
	g.mu.Lock()
	g.stalled = false
	parked := g.parked
	g.parked = nil
	g.mu.Unlock()
	for _, done := range parked {
		done()
	}
}

func fleetClient(t testing.TB, n *fleetNode, tenant string) *client.Client {
	t.Helper()
	return binClient(t, "dfbin://"+n.addr, client.WithTenant(tenant), client.WithMaxConns(8))
}

// hitRate is the cache-efficiency figure the equivalence test compares:
// the fraction of keyed cache lookups answered from the cache.
func hitRate(hits, misses uint64) float64 {
	if hits+misses == 0 {
		return 0
	}
	return float64(hits) / float64(hits+misses)
}

// TestPeerFleetCacheEquivalence is the tentpole's headline claim: because
// every attribute identity has exactly one home node, a 3-node fleet's
// cache behaves like one shared cache — the cluster-wide hit rate lands
// within 10 points of an identical single node serving the identical
// workload, instead of paying the cold-miss cost three times.
func TestPeerFleetCacheEquivalence(t *testing.T) {
	const variants = 256
	perNode := 2000
	if testing.Short() {
		perNode = 500
	}

	_, sources, err := flows.ByName("quickstart")
	if err != nil {
		t.Fatal(err)
	}
	sourcesFor, err := flows.Spread(sources, variants)
	if err != nil {
		t.Fatal(err)
	}
	load := func(c *client.Client, count int) client.Report {
		rep, err := client.RunLoad(context.Background(), c, client.Load{
			Schema: "quickstart", Sources: sources, SourcesFor: sourcesFor,
			Count: count, Concurrency: 32, BatchSize: 8,
		})
		if err != nil {
			t.Fatal(err)
		}
		if rep.Failed > 0 || rep.Errors > 0 {
			t.Fatalf("load not clean: %+v", rep)
		}
		return rep
	}

	// Baseline: one node, no peers, same stack shape, whole workload.
	refSvc := runtime.New(runtime.Config{
		Backend: runtime.Instant{},
		Workers: 8,
		Query:   runtime.QueryConfig{Dedup: true, CacheSize: 65536},
	})
	refSrv := New(Config{Service: refSvc})
	refLn, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go refSrv.ServeBinary(refLn)
	t.Cleanup(func() { refSrv.Drain(context.Background()) })
	load(binClient(t, "dfbin://"+refLn.Addr().String(), client.WithTenant("ref")), 3*perNode)
	refStats := refSvc.Stats()
	refRate := hitRate(refStats.CacheHits, refStats.CacheMisses)

	// Fleet: the same total workload, a third through each node.
	nodes := newFleet(t, fleetOpts{nodes: 3})
	var wg sync.WaitGroup
	for _, n := range nodes {
		c := fleetClient(t, n, "equiv")
		wg.Add(1)
		go func() {
			defer wg.Done()
			load(c, perNode)
		}()
	}
	wg.Wait()

	var fleet runtime.Stats
	for _, n := range nodes {
		st := n.svc.Stats()
		fleet.Launched += st.Launched
		fleet.BackendQueries += st.BackendQueries
		fleet.DedupHits += st.DedupHits
		fleet.CacheHits += st.CacheHits
		fleet.CacheMisses += st.CacheMisses
		fleet.PeerForwards += st.PeerForwards
		fleet.PeerFallbacks += st.PeerFallbacks
		fleet.PeerServed += st.PeerServed
	}
	fleetRate := hitRate(fleet.CacheHits, fleet.CacheMisses)
	t.Logf("hit rate: single=%.4f fleet=%.4f (fleet: %d forwards, %d fallbacks, %d served)",
		refRate, fleetRate, fleet.PeerForwards, fleet.PeerFallbacks, fleet.PeerServed)

	if fleet.PeerForwards == 0 {
		t.Fatal("no queries were peer-forwarded; the ring is not routing")
	}
	if fleet.PeerForwards != fleet.PeerServed {
		t.Errorf("forwards=%d served=%d; transport lost acks on a healthy fleet",
			fleet.PeerForwards, fleet.PeerServed)
	}
	if fleet.PeerFallbacks != 0 {
		t.Errorf("fallbacks=%d on a healthy fleet, want 0", fleet.PeerFallbacks)
	}
	// Fleet-wide, forwards and serves cancel: the launch-exact identity of
	// the single-node query layer must hold over the summed counters.
	if fleet.Launched != fleet.BackendQueries+fleet.DedupHits+fleet.CacheHits {
		t.Errorf("fleet launch identity broken: launched=%d != backend=%d + dedup=%d + cache=%d",
			fleet.Launched, fleet.BackendQueries, fleet.DedupHits, fleet.CacheHits)
	}
	if diff := fleetRate - refRate; diff < -0.10 || diff > 0.10 {
		t.Errorf("fleet hit rate %.4f not within 10 points of single-node %.4f", fleetRate, refRate)
	}
}

// TestPeerFleetStatsAggregation: GET /v1/stats?fleet=1 on any node fans
// out over dfbin and answers with every member plus summed totals; the
// plain GET /v1/stats stays local.
func TestPeerFleetStatsAggregation(t *testing.T) {
	nodes := newFleet(t, fleetOpts{nodes: 3})
	_, sources, err := flows.ByName("quickstart")
	if err != nil {
		t.Fatal(err)
	}
	sourcesFor, err := flows.Spread(sources, 64)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := client.RunLoad(context.Background(), fleetClient(t, nodes[0], "agg"), client.Load{
		Schema: "quickstart", Sources: sources, SourcesFor: sourcesFor,
		Count: 400, Concurrency: 16,
	}); err != nil {
		t.Fatal(err)
	}

	hs := httptest.NewServer(nodes[0].srv.Handler())
	defer hs.Close()
	hc, err := client.New(hs.URL, client.WithTenant("agg"))
	if err != nil {
		t.Fatal(err)
	}
	defer hc.Close()

	local, err := hc.Stats(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if local.Fleet != nil {
		t.Fatal("plain GET /v1/stats grew a fleet view; aggregation must be opt-in")
	}

	fl, err := hc.FleetStats(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if fl.Fleet == nil {
		t.Fatal("GET /v1/stats?fleet=1 returned no fleet view")
	}
	if len(fl.Fleet.Nodes) != 3 {
		t.Fatalf("fleet view has %d nodes, want 3", len(fl.Fleet.Nodes))
	}
	selfSeen := 0
	for _, n := range fl.Fleet.Nodes {
		if n.Err != "" {
			t.Errorf("node %s unreachable on a healthy fleet: %s", n.Addr, n.Err)
		}
		if n.Self {
			selfSeen++
		}
	}
	if selfSeen != 1 {
		t.Fatalf("fleet view marks %d nodes as self, want exactly 1", selfSeen)
	}
	tot := fl.Fleet.Totals
	if tot.Launched == 0 || tot.Completed == 0 {
		t.Fatalf("fleet totals empty after load: %+v", tot)
	}
	if tot.Launched != tot.BackendQueries+tot.DedupHits+tot.CacheHits {
		t.Errorf("fleet totals identity broken: %+v", tot)
	}
	var wantSum uint64
	for _, n := range nodes {
		wantSum += n.svc.Stats().Completed
	}
	if tot.Completed != wantSum {
		t.Errorf("fleet Completed=%d, summed per-node stats=%d", tot.Completed, wantSum)
	}
}

// TestPeerFleetKillMidLoad is the tentpole's survival claim: hard-kill a
// node mid-load and the survivors neither surface a single failure nor
// diverge from the single-node oracle by a single value — forwards to
// the dead node fail over to local flights behind the breaker, and the
// live ring absorbs its key range.
func TestPeerFleetKillMidLoad(t *testing.T) {
	const variants = 128
	perDriver := 1500
	if testing.Short() {
		perDriver = 400
	}

	_, sources, err := flows.ByName("quickstart")
	if err != nil {
		t.Fatal(err)
	}
	sourcesFor, err := flows.Spread(sources, variants)
	if err != nil {
		t.Fatal(err)
	}

	// Oracle: the built-in flow is deterministic in its sources, so one
	// reference evaluation per variant pins every correct answer.
	refSvc := runtime.New(runtime.Config{Backend: runtime.Instant{}, Workers: 4})
	refSrv := New(Config{Service: refSvc})
	refLn, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go refSrv.ServeBinary(refLn)
	t.Cleanup(func() { refSrv.Drain(context.Background()) })
	refCli := binClient(t, "dfbin://"+refLn.Addr().String(), client.WithTenant("oracle"))
	oracle := make([]string, variants)
	for i := range oracle {
		res, err := refCli.EvalValues(context.Background(), "quickstart", "", sourcesFor(i))
		if err != nil || res.Error != "" {
			t.Fatalf("oracle eval %d: %v %s", i, err, res.Error)
		}
		oracle[i] = canonJSON(t, res.Values)
	}

	// Short breaker trip threshold and a long-enough cooldown that the
	// dead node mostly stays out of the ring once evicted.
	nodes := newFleet(t, fleetOpts{nodes: 3, timeout: 2 * time.Second, after: 2, cooldown: time.Second})

	var evals atomic.Int64
	var killed sync.WaitGroup
	killed.Add(1)
	go func() {
		defer killed.Done()
		// Kill node 1 once the drivers are genuinely mid-load. Deadlined:
		// if the drivers wedge before the halfway mark, fail with the
		// observed progress instead of hanging the suite.
		deadline := time.Now().Add(60 * time.Second)
		for evals.Load() < int64(perDriver/2) {
			if time.Now().After(deadline) {
				t.Errorf("drivers wedged before the kill point: %d of %d evals after 60s",
					evals.Load(), perDriver/2)
				return
			}
			time.Sleep(time.Millisecond)
		}
		killNode(nodes[1])
	}()

	var wg sync.WaitGroup
	errCh := make(chan error, 2*perDriver)
	for _, n := range []*fleetNode{nodes[0], nodes[2]} {
		c := fleetClient(t, n, "chaos")
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perDriver; i++ {
				res, err := c.EvalValues(context.Background(), "quickstart", "", sourcesFor(i))
				evals.Add(1)
				if err != nil {
					errCh <- fmt.Errorf("eval %d surfaced %v", i, err)
					return
				}
				if res.Error != "" {
					errCh <- fmt.Errorf("eval %d surfaced instance error %s", i, res.Error)
					return
				}
				if got := canonJSON(t, res.Values); got != oracle[i%variants] {
					errCh <- fmt.Errorf("eval %d diverged: got %s, oracle %s", i, got, oracle[i%variants])
					return
				}
			}
		}()
	}
	wg.Wait()
	killed.Wait()
	close(errCh)
	for err := range errCh {
		t.Error(err)
	}

	// The survivors took over: they fell back locally for the dead node's
	// key range, their breakers to it opened, and they still answer.
	var trips, fallbacks uint64
	for _, n := range []*fleetNode{nodes[0], nodes[2]} {
		if err := fleetClient(t, n, "post").Health(context.Background()); err != nil {
			t.Errorf("surviving node %s unhealthy after kill: %v", n.addr, err)
		}
		st := n.svc.Stats()
		fallbacks += st.PeerFallbacks
		trips += n.srv.peers.links[nodes[1].addr].brk.Trips()
	}
	if fallbacks == 0 {
		t.Error("no local fallbacks recorded; the kill never exercised failover")
	}
	if trips == 0 {
		t.Error("no breaker trips recorded against the killed node")
	}
	// The killed node cannot be drained (its listeners and conns are
	// gone, but its in-process service is fine); close it directly so the
	// fleet cleanup only drains the survivors.
	nodes[1].srv.drainMu.Lock()
	nodes[1].srv.draining = true
	nodes[1].srv.drainMu.Unlock()
	nodes[1].svc.Close()
}

// TestPeerFleetStatsTimeout: the ?fleet=1 fan-out is bounded per peer. A
// peer.stats.dial delay failpoint wedges every remote stats fetch far past
// the configured PeerStatsTimeout; the aggregate must come back promptly
// with Err markers on the wedged peers instead of stalling until they
// answer.
func TestPeerFleetStatsTimeout(t *testing.T) {
	nodes := newFleet(t, fleetOpts{nodes: 3, statsTimeout: 200 * time.Millisecond})
	t.Cleanup(fault.Reset)
	if err := fault.Arm(fault.SitePeerStatsDial, "delay:3s"); err != nil {
		t.Fatal(err)
	}

	hs := httptest.NewServer(nodes[0].srv.Handler())
	defer hs.Close()
	hc, err := client.New(hs.URL, client.WithTenant("agg"))
	if err != nil {
		t.Fatal(err)
	}
	defer hc.Close()

	start := time.Now()
	fl, err := hc.FleetStats(context.Background())
	elapsed := time.Since(start)
	if err != nil {
		t.Fatal(err)
	}
	if elapsed > 1500*time.Millisecond {
		t.Fatalf("fleet stats took %v; a wedged peer must degrade at the %v per-peer bound, not stall", elapsed, 200*time.Millisecond)
	}
	if fl.Fleet == nil || len(fl.Fleet.Nodes) != 3 {
		t.Fatalf("fleet view = %+v, want 3 nodes", fl.Fleet)
	}
	for _, n := range fl.Fleet.Nodes {
		if n.Self {
			if n.Err != "" {
				t.Errorf("self node carries error %q", n.Err)
			}
			continue
		}
		if n.Err == "" || !strings.Contains(n.Err, "deadline") {
			t.Errorf("wedged peer %s: Err = %q, want a deadline marker", n.Addr, n.Err)
		}
	}
	// Disarmed, the same fan-out answers cleanly again.
	fault.Reset()
	fl, err = hc.FleetStats(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	for _, n := range fl.Fleet.Nodes {
		if n.Err != "" {
			t.Errorf("post-disarm node %s still errored: %s", n.Addr, n.Err)
		}
	}
}
