package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"slices"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/api"
	"repro/internal/client"
	"repro/internal/fault"
	"repro/internal/runtime"
)

// This file is the front-end peer tier: with Config.Peers set, a fleet of
// dfsd nodes shares one consistent routing ring over attribute-level
// backend queries. Every node hashes a query's sharing identity exactly
// the way the backend cluster does (FNV over schema name + attribute +
// args, then jump hash) but over the MEMBER list instead of the shard
// list, so each identity has one home node — and therefore one
// single-flight entry and one cache slot fleet-wide, instead of one per
// node. Non-home nodes forward over dfbin (Forward/ForwardAck frames) and
// share the home flight's fate; a per-peer breaker falls back to a local
// flight when the home is down, stalled, or draining, trading fleet-wide
// sharing for availability until the peer recovers.
//
// The ring is the LIVE member list: self plus every remote whose breaker
// currently admits traffic. A draining or dead node fails its forwards,
// trips its peers' breakers, and thereby leaves the ring — the survivors'
// jump hash remaps only the departed node's key range (that is the point
// of jump hash), so a rolling restart moves each key at most twice.

// peerLink is one remote fleet member as seen from this node.
type peerLink struct {
	addr string
	cli  *client.Client
	brk  *runtime.PeerBreaker
	// forwards / fallbacks count queries this node routed to the peer
	// and forwards that failed over to a local flight instead.
	forwards  atomic.Uint64
	fallbacks atomic.Uint64
}

// peerTier routes keyed backend queries to their home nodes; it is the
// runtime.PeerExec installed into the service's query layer.
type peerTier struct {
	members []string // sorted full fleet, self included
	selfIdx int
	links   map[string]*peerLink // remotes only
	timeout time.Duration
	// statsTimeout bounds each per-peer fetch of the ?fleet=1 fan-out.
	statsTimeout time.Duration

	fwd    sync.WaitGroup // in-flight forward goroutines
	closed atomic.Bool
}

func newPeerTier(cfg Config) (*peerTier, error) {
	members := slices.Clone(cfg.Peers)
	slices.Sort(members)
	members = slices.Compact(members)
	if len(members) < 2 {
		return nil, errors.New("server: peer tier needs at least two distinct members")
	}
	selfIdx := slices.Index(members, cfg.PeerSelf)
	if selfIdx < 0 {
		return nil, fmt.Errorf("server: PeerSelf %q is not in the Peers list", cfg.PeerSelf)
	}
	timeout := cfg.PeerForwardTimeout
	if timeout <= 0 {
		timeout = 10 * time.Second
	}
	after := cfg.PeerBreakerAfter
	if after <= 0 {
		after = 3
	}
	cooldown := cfg.PeerBreakerCooldown
	if cooldown <= 0 {
		cooldown = 2 * time.Second
	}
	statsTimeout := cfg.PeerStatsTimeout
	if statsTimeout <= 0 {
		statsTimeout = 2 * time.Second
	}
	p := &peerTier{members: members, selfIdx: selfIdx, timeout: timeout,
		statsTimeout: statsTimeout,
		links:        make(map[string]*peerLink, len(members)-1)}
	for i, addr := range members {
		if i == selfIdx {
			continue
		}
		cli, err := client.New("dfbin://"+addr,
			client.WithTenant("peer"),
			client.WithTimeout(timeout),
			client.WithMaxConns(8),
			client.WithRetryShed(-1))
		if err != nil {
			for _, l := range p.links {
				l.cli.Close()
			}
			return nil, fmt.Errorf("server: peer %s: %w", addr, err)
		}
		p.links[addr] = &peerLink{addr: addr, cli: cli,
			brk: runtime.NewPeerBreaker(after, cooldown)}
	}
	return p, nil
}

// home resolves the hash's home node over the live ring and returns the
// link to forward on — nil when this node is the home (or is the only
// live member) and the query should run locally.
func (p *peerTier) home(hash uint64) *peerLink {
	var liveArr [16]int
	live := liveArr[:0]
	for i, addr := range p.members {
		if i == p.selfIdx || p.links[addr].brk.Admissible() {
			live = append(live, i)
		}
	}
	idx := live[runtime.JumpHash(hash, len(live))]
	if idx == p.selfIdx {
		return nil
	}
	return p.links[p.members[idx]]
}

// SubmitPeer implements runtime.PeerExec: false keeps the query local
// (this node is the home, the tier is closing, or the chosen peer's
// breaker refuses the attempt); true takes ownership and later reports
// through outcome from a forward goroutine.
func (p *peerTier) SubmitPeer(q runtime.PeerQuery, outcome func(err error, remote bool)) bool {
	if p.closed.Load() {
		return false
	}
	link := p.home(q.Hash)
	if link == nil {
		return false
	}
	// Admit separately from the Admissible check inside home: in
	// half-open state exactly one attempt claims the probe; the rest run
	// locally rather than pile onto a peer that may still be down.
	if !link.brk.Admit() {
		return false
	}
	p.fwd.Add(1)
	go p.forward(link, q, outcome)
	return true
}

func (p *peerTier) forward(link *peerLink, q runtime.PeerQuery, outcome func(err error, remote bool)) {
	defer p.fwd.Done()
	ctx, cancel := context.WithTimeout(context.Background(), p.timeout)
	err := fault.Eval(fault.SitePeerForwardSend)
	if err == nil {
		err = link.cli.Forward(ctx, client.ForwardQuery{
			Schema:      q.Schema.Name(),
			Fingerprint: q.Schema.Fingerprint(),
			Attr:        uint64(q.Attr),
			Args:        []byte(q.Args),
			Cost:        q.Cost,
		})
	}
	cancel()
	var qf *client.QueryFailedError
	if err == nil || errors.As(err, &qf) {
		// The home ran the flight; success or failure, we share its fate.
		// A failed flight is not a peer-health signal — the peer answered.
		link.brk.Success()
		link.forwards.Add(1)
		outcome(err, true)
		return
	}
	// Refusal (draining, unknown schema, stale fingerprint), transport
	// fault, or timeout: the query did not complete remotely. Count
	// against the breaker and fall back to a local flight.
	link.brk.Failure()
	link.fallbacks.Add(1)
	outcome(err, false)
}

// close stops new forwards, waits out in-flight ones, and releases the
// peer connections. Forwards raced past the closed flag still complete —
// the wait covers them — so no outcome callback is ever dropped.
func (p *peerTier) close() {
	if p.closed.Swap(true) {
		return
	}
	p.fwd.Wait()
	for _, l := range p.links {
		l.cli.Close()
	}
}

// fleet builds the aggregated stats view for GET /v1/stats?fleet=1: fan
// the stats query out to every remote over dfbin (each answers with its
// LOCAL view — the binary Stats frame never fans out, so this cannot
// recurse), then merge the counters of every reachable node. local is the
// answering node's own already-built response.
func (p *peerTier) fleet(ctx context.Context, local *api.StatsResponse) *api.FleetStats {
	nodes := make([]api.FleetNode, len(p.members))
	var wg sync.WaitGroup
	for i, addr := range p.members {
		if i == p.selfIdx {
			nodes[i] = api.FleetNode{Addr: addr, Self: true,
				Draining: local.Draining, Service: local.Service}
			continue
		}
		link := p.links[addr]
		wg.Add(1)
		go func(i int, link *peerLink) {
			defer wg.Done()
			n := api.FleetNode{Addr: link.addr,
				Forwards:     link.forwards.Load(),
				Fallbacks:    link.fallbacks.Load(),
				BreakerTrips: link.brk.Trips(),
			}
			// Per-peer deadline: one dead or wedged peer must degrade to
			// an Err marker, not stall the whole aggregate. The fetch runs
			// in its own goroutine with a buffered reply so a fetch that
			// outlives the deadline parks harmlessly instead of racing
			// this frame's locals.
			sctx, cancel := context.WithTimeout(ctx, p.statsTimeout)
			defer cancel()
			type reply struct {
				st  api.StatsResponse
				err error
			}
			ch := make(chan reply, 1)
			go func() {
				err := fault.Eval(fault.SitePeerStatsDial)
				var st api.StatsResponse
				if err == nil {
					st, err = link.cli.Stats(sctx)
				}
				ch <- reply{st, err}
			}()
			select {
			case r := <-ch:
				if r.err != nil {
					n.Err = r.err.Error()
				} else {
					n.Draining = r.st.Draining
					n.Service = r.st.Service
				}
			case <-sctx.Done():
				n.Err = fmt.Sprintf("stats fetch: %v", sctx.Err())
			}
			nodes[i] = n
		}(i, link)
	}
	wg.Wait()
	fs := &api.FleetStats{Nodes: nodes}
	for _, n := range nodes {
		if n.Err != "" || len(n.Service) == 0 {
			continue
		}
		var st runtime.Stats
		if json.Unmarshal(n.Service, &st) != nil {
			continue
		}
		fs.Totals.Submitted += st.Submitted
		fs.Totals.Completed += st.Completed
		fs.Totals.Errors += st.Errors
		fs.Totals.Launched += st.Launched
		fs.Totals.BackendQueries += st.BackendQueries
		fs.Totals.DedupHits += st.DedupHits
		fs.Totals.CacheHits += st.CacheHits
		fs.Totals.PeerForwards += st.PeerForwards
		fs.Totals.PeerFallbacks += st.PeerFallbacks
		fs.Totals.PeerServed += st.PeerServed
	}
	return fs
}
