package server

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/api"
	"repro/internal/client"
	"repro/internal/core"
	"repro/internal/expr"
	"repro/internal/runtime"
	"repro/internal/value"
)

// newTestStack builds a service + server + httptest listener + typed
// client. mod edits the server config before construction; the listener
// and client are torn down with the test, the service with Drain or
// Close by the test itself when it cares, else here.
func newTestStack(t *testing.T, svcCfg runtime.Config, mod func(*Config)) (*runtime.Service, *Server, *httptest.Server, *client.Client) {
	t.Helper()
	svc := runtime.New(svcCfg)
	cfg := Config{Service: svc}
	if mod != nil {
		mod(&cfg)
	}
	srv := New(cfg)
	hs := httptest.NewServer(srv.Handler())
	c, err := client.New(hs.URL, client.WithTenant("t0"))
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		c.Close()
		hs.Close()
		if !srv.Draining() {
			srv.Drain(context.Background())
		}
	})
	return svc, srv, hs, c
}

// post sends a raw JSON request, for tests that must see raw status
// codes and headers (the typed client hides retries).
func post(t *testing.T, hs *httptest.Server, path, tenant string, body any) *http.Response {
	t.Helper()
	data, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	req, err := http.NewRequest(http.MethodPost, hs.URL+path, bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	if tenant != "" {
		req.Header.Set(api.TenantHeader, tenant)
	}
	resp, err := hs.Client().Do(req)
	if err != nil {
		t.Fatal(err)
	}
	return resp
}

func drainBody(t *testing.T, resp *http.Response, out any) {
	t.Helper()
	defer resp.Body.Close()
	if out == nil {
		return
	}
	if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
		t.Fatalf("decoding %s response: %v", resp.Request.URL.Path, err)
	}
}

// TestRegisterAndEval registers a text schema over the wire and evaluates
// it: the server-side default computes must be deterministic (same
// sources, same values) and synthesis expressions must evaluate exactly.
func TestRegisterAndEval(t *testing.T) {
	_, _, _, c := newTestStack(t, runtime.Config{}, nil)
	ctx := context.Background()

	ack, err := c.RegisterSchemaText(ctx, `
		schema scoring
		source amount
		query risk from amount cost 2 when amount > 0
		synth fee when notnull(risk) = amount / 10 + risk * 0
		target fee
	`)
	if err != nil {
		t.Fatal(err)
	}
	if ack.Name != "scoring" || len(ack.Targets) != 1 || ack.Targets[0] != "fee" {
		t.Fatalf("ack = %+v", ack)
	}

	eval := func() api.EvalResult {
		res, err := c.EvalValues(ctx, "scoring", "", map[string]value.Value{"amount": value.Int(120)})
		if err != nil {
			t.Fatal(err)
		}
		if res.Error != "" {
			t.Fatalf("instance error: %s", res.Error)
		}
		return res
	}
	r1, r2 := eval(), eval()
	if fee, _ := r1.Values["fee"].(float64); fee != 12 {
		t.Fatalf("fee = %v (%T), want 12", r1.Values["fee"], r1.Values["fee"])
	}
	if fmt.Sprint(r1.Values) != fmt.Sprint(r2.Values) {
		t.Fatalf("default computes not deterministic: %v vs %v", r1.Values, r2.Values)
	}
	if r1.Work == 0 || r1.Launched == 0 {
		t.Fatalf("accounting empty: %+v", r1)
	}

	// Built-in flows are preloaded and listed.
	stats, err := c.Stats(ctx)
	if err != nil {
		t.Fatal(err)
	}
	want := []string{"pattern", "quickstart", "scoring"}
	if fmt.Sprint(stats.Schemas) != fmt.Sprint(want) {
		t.Fatalf("schemas = %v, want %v", stats.Schemas, want)
	}
}

// TestEvalErrors covers the 4xx paths: unknown schema, bad strategy, bad
// tenant header, oversized batch, empty batch, bad schema text.
func TestEvalErrors(t *testing.T) {
	_, _, hs, _ := newTestStack(t, runtime.Config{}, func(cfg *Config) { cfg.MaxBatch = 4 })

	cases := []struct {
		name   string
		path   string
		tenant string
		body   any
		want   int
	}{
		{"unknown schema", "/v1/eval", "", api.EvalRequest{Schema: "nope", Sources: map[string]any{}}, http.StatusNotFound},
		{"bad strategy", "/v1/eval", "", api.EvalRequest{Schema: "quickstart", Strategy: "XYZ", Sources: map[string]any{}}, http.StatusBadRequest},
		{"bad tenant", "/v1/eval", "has space", api.EvalRequest{Schema: "quickstart", Sources: map[string]any{}}, http.StatusBadRequest},
		{"empty batch", "/v1/eval/batch", "", api.BatchRequest{Schema: "quickstart"}, http.StatusBadRequest},
		{"oversized batch", "/v1/eval/batch", "", api.BatchRequest{Schema: "quickstart", Sources: make([]map[string]any, 5)}, http.StatusBadRequest},
		{"bad schema text", "/v1/schemas", "", api.SchemaRequest{Text: "query before schema"}, http.StatusBadRequest},
	}
	for _, tc := range cases {
		resp := post(t, hs, tc.path, tc.tenant, tc.body)
		var e api.ErrorResponse
		drainBody(t, resp, &e)
		if resp.StatusCode != tc.want {
			t.Errorf("%s: status %d, want %d (%s)", tc.name, resp.StatusCode, tc.want, e.Error)
		}
		if e.Error == "" {
			t.Errorf("%s: error body empty", tc.name)
		}
	}
}

// TestSchemaOwnership: the schema namespace is shared for reads, but
// only the registering tenant may replace its entry, and built-ins are
// immutable — otherwise one tenant could silently change another's
// results.
func TestSchemaOwnership(t *testing.T) {
	_, _, hs, _ := newTestStack(t, runtime.Config{}, nil)
	text := "schema owned\nsource x\nsynth y = x + 1\ntarget y"
	reg := func(tenant, text string) int {
		resp := post(t, hs, "/v1/schemas", tenant, api.SchemaRequest{Text: text})
		drainBody(t, resp, nil)
		return resp.StatusCode
	}
	if code := reg("alice", text); code != http.StatusOK {
		t.Fatalf("initial registration: %d", code)
	}
	if code := reg("bob", text); code != http.StatusForbidden {
		t.Fatalf("foreign overwrite: %d, want 403", code)
	}
	if code := reg("alice", text); code != http.StatusOK {
		t.Fatalf("owner re-registration: %d", code)
	}
	if code := reg("alice", "schema quickstart\nsource a\nsynth b = a\ntarget b"); code != http.StatusForbidden {
		t.Fatalf("built-in overwrite: %d, want 403", code)
	}
}

// TestBatchExceedsBurst: a batch larger than the bucket can ever hold is
// rejected permanently with 400 — a 429 + Retry-After would send the
// client into a futile retry loop against an idle server.
func TestBatchExceedsBurst(t *testing.T) {
	_, _, hs, _ := newTestStack(t, runtime.Config{},
		func(cfg *Config) { cfg.Tenant = TenantLimits{RatePerSec: 100, Burst: 8} })
	srcs := make([]map[string]any, 20)
	src := api.EncodeSources(map[string]value.Value{
		"order_total": value.Int(120), "customer_id": value.Int(7),
	})
	for i := range srcs {
		srcs[i] = src
	}
	resp := post(t, hs, "/v1/eval/batch", "big", api.BatchRequest{Schema: "quickstart", Sources: srcs})
	var e api.ErrorResponse
	drainBody(t, resp, &e)
	if resp.StatusCode != http.StatusBadRequest || e.RetryAfterMs != 0 {
		t.Fatalf("status %d retry %dms (%s), want permanent 400", resp.StatusCode, e.RetryAfterMs, e.Error)
	}
}

// TestShedP99Recovers: the p99 watermark must not latch. Once the slow
// backlog drains, a quiet sampling tick clears the overload bit so
// admitted traffic can probe the backend again.
func TestShedP99Recovers(t *testing.T) {
	_, srv, hs, _ := newTestStack(t, runtime.Config{LatencyWindow: 64},
		func(cfg *Config) {
			cfg.ShedP99 = time.Nanosecond // every completion trips the watermark
			cfg.WatermarkInterval = 5 * time.Millisecond
			cfg.ShedQueueDepth = -1
		})
	src := api.EncodeSources(map[string]value.Value{
		"order_total": value.Int(120), "customer_id": value.Int(7),
	})
	eval := func() int {
		resp := post(t, hs, "/v1/eval", "probe", api.EvalRequest{Schema: "quickstart", Sources: src})
		drainBody(t, resp, nil)
		return resp.StatusCode
	}
	if code := eval(); code != http.StatusOK {
		t.Fatalf("first eval: %d", code)
	}
	// The completion's sample trips the watermark within a tick. Keep
	// completions flowing while we wait: with a single sample the bit is
	// set for only one watermark interval before the quiet tick clears
	// it, and a loaded machine can sleep straight through that window.
	deadline := time.Now().Add(2 * time.Second)
	for !srv.p99High.Load() && time.Now().Before(deadline) {
		eval()
		time.Sleep(time.Millisecond)
	}
	if !srv.p99High.Load() {
		t.Fatal("watermark never tripped")
	}
	// With no completions flowing, a quiet tick must clear it — and an
	// eval admitted by the probe window succeeds (its own completion may
	// re-trip the bit; retry through the oscillation).
	ok := false
	for time.Now().Before(deadline) {
		if eval() == http.StatusOK {
			ok = true
			break
		}
		time.Sleep(2 * time.Millisecond)
	}
	if !ok {
		t.Fatal("watermark latched: no eval admitted after the backlog drained")
	}
}

// TestBatchOrderAndStream: a batch response preserves request order; a
// streamed batch delivers every result tagged with its request index.
func TestBatchOrderAndStream(t *testing.T) {
	_, _, _, c := newTestStack(t, runtime.Config{}, nil)
	ctx := context.Background()

	const n = 40
	srcs := make([]map[string]any, n)
	for i := range srcs {
		srcs[i] = api.EncodeSources(map[string]value.Value{
			"order_total": value.Int(int64(10*i + 60)), // varies the score target
			"customer_id": value.Int(7),
		})
	}
	results, err := c.EvalBatch(ctx, api.BatchRequest{Schema: "quickstart", Sources: srcs})
	if err != nil {
		t.Fatal(err)
	}
	for i, res := range results {
		if res.Error != "" {
			t.Fatalf("instance %d error: %s", i, res.Error)
		}
	}

	seen := make([]bool, n)
	err = c.EvalBatchStream(ctx, api.BatchRequest{Schema: "quickstart", Sources: srcs}, func(item api.BatchItem) {
		if item.Index < 0 || item.Index >= n || seen[item.Index] {
			t.Errorf("bad or duplicate stream index %d", item.Index)
			return
		}
		seen[item.Index] = true
	})
	if err != nil {
		t.Fatal(err)
	}
	for i, ok := range seen {
		if !ok {
			t.Fatalf("stream missed index %d", i)
		}
	}
}

// TestAsyncLongPoll: an async eval returns 202 + ID; the result long-polls
// to pending while the instance runs, delivers exactly once, and the ID is
// scoped to the submitting tenant.
func TestAsyncLongPoll(t *testing.T) {
	_, _, hs, _ := newTestStack(t, runtime.Config{Backend: &runtime.Latency{Base: 120 * time.Millisecond}}, nil)

	resp := post(t, hs, "/v1/eval", "alice", api.EvalRequest{
		Schema: "quickstart", Async: true,
		Sources: api.EncodeSources(map[string]value.Value{
			"order_total": value.Int(120), "customer_id": value.Int(7),
		}),
	})
	var ack api.AsyncResponse
	drainBody(t, resp, &ack)
	if resp.StatusCode != http.StatusAccepted || ack.ID == "" {
		t.Fatalf("async submit: status %d ack %+v", resp.StatusCode, ack)
	}

	get := func(tenant, query string) (*http.Response, []byte) {
		req, err := http.NewRequest(http.MethodGet, hs.URL+"/v1/results/"+ack.ID+query, nil)
		if err != nil {
			t.Fatal(err)
		}
		req.Header.Set(api.TenantHeader, tenant)
		r, err := hs.Client().Do(req)
		if err != nil {
			t.Fatal(err)
		}
		defer r.Body.Close()
		var buf bytes.Buffer
		buf.ReadFrom(r.Body)
		return r, buf.Bytes()
	}

	// Immediate poll with a tiny timeout: still pending.
	if r, body := get("alice", "?timeout=1ms"); r.StatusCode != http.StatusAccepted {
		t.Fatalf("early poll: status %d body %s", r.StatusCode, body)
	}
	// Another tenant must not see the result (capability scoping).
	if r, _ := get("bob", ""); r.StatusCode != http.StatusNotFound {
		t.Fatalf("foreign tenant poll: status %d, want 404", r.StatusCode)
	}
	// Patient poll: the result arrives.
	r, body := get("alice", "?timeout=10s")
	if r.StatusCode != http.StatusOK {
		t.Fatalf("poll: status %d body %s", r.StatusCode, body)
	}
	var res api.EvalResult
	if err := json.Unmarshal(body, &res); err != nil || res.Error != "" {
		t.Fatalf("result: %v %+v", err, res)
	}
	if got, _ := res.Values["upgrade"].(string); got != "free 2-day shipping" {
		t.Fatalf("upgrade = %v", res.Values["upgrade"])
	}
	// Results deliver once.
	if r, _ := get("alice", ""); r.StatusCode != http.StatusNotFound {
		t.Fatalf("second fetch: status %d, want 404", r.StatusCode)
	}
}

// TestTenantQuotaShed: with a per-tenant in-flight quota and a slow
// backend, a flood sheds the overflow with 429 + Retry-After while
// admitted instances complete; the admission counters account for every
// request by cause.
func TestTenantQuotaShed(t *testing.T) {
	const quota, flood = 4, 12
	_, srv, hs, _ := newTestStack(t,
		runtime.Config{Backend: &runtime.Latency{Base: 150 * time.Millisecond}},
		func(cfg *Config) { cfg.Tenant = TenantLimits{MaxInFlight: quota} })

	var ok200, shed429 atomic.Int64
	var retryAfterSeen atomic.Bool
	var wg sync.WaitGroup
	for i := 0; i < flood; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			resp := post(t, hs, "/v1/eval", "greedy", api.EvalRequest{
				Schema: "quickstart",
				Sources: api.EncodeSources(map[string]value.Value{
					"order_total": value.Int(120), "customer_id": value.Int(7),
				}),
			})
			var e api.ErrorResponse
			drainBody(t, resp, &e)
			switch resp.StatusCode {
			case http.StatusOK:
				ok200.Add(1)
			case http.StatusTooManyRequests:
				shed429.Add(1)
				if resp.Header.Get("Retry-After") != "" && e.RetryAfterMs > 0 {
					retryAfterSeen.Store(true)
				}
			default:
				t.Errorf("unexpected status %d: %s", resp.StatusCode, e.Error)
			}
		}()
	}
	wg.Wait()

	if ok200.Load() < quota || shed429.Load() == 0 {
		t.Fatalf("ok=%d shed=%d, want >=%d admitted and some shed", ok200.Load(), shed429.Load(), quota)
	}
	if !retryAfterSeen.Load() {
		t.Fatal("no shed response carried Retry-After")
	}
	adm := srv.tenantFor("greedy").admission()
	if int64(adm.Accepted) != ok200.Load() || int64(adm.ShedQuota) != shed429.Load() {
		t.Fatalf("admission counters %+v disagree with observed ok=%d shed=%d", adm, ok200.Load(), shed429.Load())
	}
	if adm.InFlight != 0 {
		t.Fatalf("in-flight gauge leaked: %d", adm.InFlight)
	}
}

// TestRateLimitAndClientRetry: a tight token bucket sheds the burst
// overflow with the refill time as Retry-After, and the typed client's
// retry-on-shed turns those 429s into eventual success.
func TestRateLimitAndClientRetry(t *testing.T) {
	_, srv, hs, _ := newTestStack(t, runtime.Config{},
		func(cfg *Config) { cfg.Tenant = TenantLimits{RatePerSec: 50, Burst: 1} })

	// Raw back-to-back requests: the second inside the same refill period
	// must shed.
	src := api.EncodeSources(map[string]value.Value{
		"order_total": value.Int(120), "customer_id": value.Int(7),
	})
	resp := post(t, hs, "/v1/eval", "bursty", api.EvalRequest{Schema: "quickstart", Sources: src})
	drainBody(t, resp, nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("first request: status %d", resp.StatusCode)
	}
	resp = post(t, hs, "/v1/eval", "bursty", api.EvalRequest{Schema: "quickstart", Sources: src})
	var e api.ErrorResponse
	drainBody(t, resp, &e)
	if resp.StatusCode != http.StatusTooManyRequests || e.RetryAfterMs <= 0 {
		t.Fatalf("second request: status %d body %+v, want 429 with retry hint", resp.StatusCode, e)
	}
	if adm := srv.tenantFor("bursty").admission(); adm.ShedRate == 0 {
		t.Fatalf("shed-rate counter not bumped: %+v", adm)
	}

	// The typed client retries on shed: three sequential evals all succeed
	// despite the 1-token bucket.
	c, err := client.New(hs.URL, client.WithTenant("patient"), client.WithRetryShed(10))
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	for i := 0; i < 3; i++ {
		res, err := c.Eval(context.Background(), api.EvalRequest{Schema: "quickstart", Sources: src})
		if err != nil || res.Error != "" {
			t.Fatalf("eval %d: %v %s", i, err, res.Error)
		}
	}
	// A client with retries disabled surfaces the typed shed error.
	c2, err := client.New(hs.URL, client.WithTenant("patient"), client.WithRetryShed(-1))
	if err != nil {
		t.Fatal(err)
	}
	defer c2.Close()
	c2.Eval(context.Background(), api.EvalRequest{Schema: "quickstart", Sources: src})
	_, err = c2.Eval(context.Background(), api.EvalRequest{Schema: "quickstart", Sources: src})
	if !errors.Is(err, client.ErrShed) {
		t.Fatalf("err = %v, want ErrShed", err)
	}
}

// blockerSchema is a one-foreign-task schema whose compute blocks until
// release is closed — it pins a worker, making queue depth controllable.
func blockerSchema(t *testing.T, release chan struct{}) *core.Schema {
	t.Helper()
	return core.NewBuilder("blocker").
		Source("x").
		Foreign("y", expr.TrueExpr, []string{"x"}, 1, func(core.Inputs) value.Value {
			<-release
			return value.Int(1)
		}).
		Target("y").
		MustBuild()
}

// TestQueueWatermarkShed: when the worker queue backs up past the
// watermark, new work is shed regardless of tenant, with the queue cause
// counted; the backlog still completes.
func TestQueueWatermarkShed(t *testing.T) {
	release := make(chan struct{})
	_, srv, hs, _ := newTestStack(t,
		runtime.Config{Workers: 1}, // single worker: one blocked compute stalls the queue
		func(cfg *Config) { cfg.ShedQueueDepth = 2 })
	srv.mu.Lock()
	srv.schemas["blocker"] = newEntry(blockerSchema(t, release), "", "", 1)
	srv.mu.Unlock()

	// One blocking instance pins the worker; the next three queue up
	// behind it (depth 3 > watermark 2). All four are async so the HTTP
	// round trips complete before the flood check.
	ids := make([]string, 4)
	for i := range ids {
		resp := post(t, hs, "/v1/eval", "any", api.EvalRequest{
			Schema: "blocker", Async: true,
			Sources: map[string]any{"x": 1},
		})
		var ack api.AsyncResponse
		drainBody(t, resp, &ack)
		if resp.StatusCode != http.StatusAccepted {
			t.Fatalf("async %d: status %d", i, resp.StatusCode)
		}
		ids[i] = ack.ID
		if i == 0 {
			// Wait for the worker to actually enter the blocked compute, so
			// the next three sit in the queue rather than racing it.
			deadline := time.Now().Add(2 * time.Second)
			for srv.svc.QueueDepth() != 0 && time.Now().Before(deadline) {
				time.Sleep(time.Millisecond)
			}
		}
	}
	deadline := time.Now().Add(2 * time.Second)
	for srv.svc.QueueDepth() < 3 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	if d := srv.svc.QueueDepth(); d < 3 {
		t.Fatalf("queue depth %d, want >= 3", d)
	}

	resp := post(t, hs, "/v1/eval", "victim", api.EvalRequest{
		Schema: "blocker", Sources: map[string]any{"x": 2},
	})
	var e api.ErrorResponse
	drainBody(t, resp, &e)
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("status %d (%s), want 429 queue shed", resp.StatusCode, e.Error)
	}
	if adm := srv.tenantFor("victim").admission(); adm.ShedQueue != 1 {
		t.Fatalf("shed-queue counter = %d, want 1", adm.ShedQueue)
	}

	close(release)
	for _, id := range ids {
		req, _ := http.NewRequest(http.MethodGet, hs.URL+"/v1/results/"+id+"?timeout=10s", nil)
		req.Header.Set(api.TenantHeader, "any")
		r, err := hs.Client().Do(req)
		if err != nil {
			t.Fatal(err)
		}
		r.Body.Close()
		if r.StatusCode != http.StatusOK {
			t.Fatalf("backlog result %s: status %d", id, r.StatusCode)
		}
	}
}

// TestDrainUnderLiveLoad: starting the drain while evals are in flight
// 503s new work, completes every admitted instance to its caller, and
// closes the service — the wire analogue of the runtime's Close contract.
func TestDrainUnderLiveLoad(t *testing.T) {
	svc, srv, _, c := newTestStack(t,
		runtime.Config{Backend: &runtime.Latency{Base: 100 * time.Millisecond}}, nil)
	ctx := context.Background()
	src := map[string]value.Value{"order_total": value.Int(120), "customer_id": value.Int(7)}

	const inFlight = 6
	results := make(chan error, inFlight)
	for i := 0; i < inFlight; i++ {
		go func() {
			res, err := c.EvalValues(ctx, "quickstart", "", src)
			if err == nil && res.Error != "" {
				err = errors.New(res.Error)
			}
			results <- err
		}()
	}
	// Wait until all six are admitted (the runtime sees them in flight).
	deadline := time.Now().Add(2 * time.Second)
	for svc.Stats().Submitted-svc.Stats().Completed < inFlight && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}

	drained := make(chan error, 1)
	go func() {
		st, err := srv.Drain(ctx)
		if err == nil && st.Completed < inFlight {
			err = fmt.Errorf("final stats completed=%d, want >= %d", st.Completed, inFlight)
		}
		drained <- err
	}()
	for !srv.Draining() {
		time.Sleep(time.Millisecond)
	}

	// New work is refused with the draining cause while old work flushes.
	if _, err := c.EvalValues(ctx, "quickstart", "", src); !errors.Is(err, client.ErrDraining) {
		t.Fatalf("eval during drain: %v, want ErrDraining", err)
	}
	if err := c.Health(ctx); err == nil {
		t.Fatal("healthz must fail while draining")
	}
	for i := 0; i < inFlight; i++ {
		if err := <-results; err != nil {
			t.Fatalf("in-flight eval lost during drain: %v", err)
		}
	}
	if err := <-drained; err != nil {
		t.Fatal(err)
	}
	if err := svc.Submit(runtime.Request{}); !errors.Is(err, runtime.ErrClosed) && err == nil {
		t.Fatalf("service still accepting after drain: %v", err)
	}
}

// TestTenantIsolationUnderOverload is the acceptance scenario: an
// over-quota tenant's flood is shed with 429s while an in-quota tenant's
// p99 stays within 2x of its solo run. The quota caps the bully's
// admitted concurrency, so the polite tenant's latency stays pinned to
// the backend's service time instead of the bully's offered load.
func TestTenantIsolationUnderOverload(t *testing.T) {
	if raceEnabled {
		// Shedding the bully costs real CPU per 429; under -race that cost
		// inflates ~10x and the polite tail reflects instrumentation, not
		// the quota. The uninstrumented run (make test) asserts the bound.
		t.Skip("latency-bound acceptance test skipped under -race")
	}
	// The 8ms base keeps injected backend latency dominant over scheduler
	// noise, so the assertion measures the quota's effect, not the test
	// host's churn. Global task admission is sized for the offered load
	// (the 1-core default of 16 tokens would serialize both tenants in a
	// tenant-blind queue — exactly what the per-tenant quota prevents
	// needing), and backend parallelism is unbounded: the isolation being
	// proven is at admission, where the bully's overflow never reaches
	// the runtime at all.
	backend := &runtime.Latency{Base: 8 * time.Millisecond}
	svc, srv, hs, _ := newTestStack(t,
		runtime.Config{Backend: backend, MaxInFlightTasks: 512},
		func(cfg *Config) {
			cfg.Tenant = TenantLimits{MaxInFlight: 12}
			cfg.ShedQueueDepth = -1 // isolate the quota: no global shed
		})
	ctx := context.Background()
	src := map[string]value.Value{"order_total": value.Int(120), "customer_id": value.Int(7)}

	// runTenant drives a closed loop of conc workers for n instances and
	// returns nothing; latencies are read server-side per tenant.
	runTenant := func(tenant string, conc, n int, retry int) {
		c, err := client.New(hs.URL, client.WithTenant(tenant),
			client.WithRetryShed(retry), client.WithMaxConns(conc))
		if err != nil {
			t.Error(err)
			return
		}
		defer c.Close()
		var next atomic.Int64
		var wg sync.WaitGroup
		for w := 0; w < conc; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for {
					if next.Add(1) > int64(n) {
						return
					}
					c.EvalValues(ctx, "quickstart", "", src) // sheds surface as errors; fine
				}
			}()
		}
		wg.Wait()
	}

	// Phase 1: the polite tenant solo.
	runTenant("polite", 8, 200, 3)
	solo := svc.Stats().Tenants["polite"]
	if solo.Completed == 0 || solo.P99 <= 0 {
		t.Fatalf("solo run recorded nothing: %+v", solo)
	}
	svc.ResetStats()

	// Phase 2: the same polite load, with a bully flooding at 48-way
	// concurrency against a 12-instance quota — its overflow sheds, and
	// (like any well-behaved client) it honors the Retry-After hints
	// rather than busy-looping the connection pool.
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		runTenant("bully", 48, 600, 1000)
	}()
	runTenant("polite", 8, 200, 3)
	wg.Wait()

	loaded := svc.Stats().Tenants["polite"]
	bullyAdm := srv.tenantFor("bully").admission()
	if bullyAdm.ShedQuota == 0 {
		t.Fatalf("bully was never shed: %+v", bullyAdm)
	}
	// 2x the solo p99, plus 2ms of scheduler slack so a microsecond-scale
	// solo baseline doesn't make the bound vacuously tight.
	budget := 2*solo.P99 + 2*time.Millisecond
	if loaded.P99 > budget {
		t.Fatalf("polite p99 under load %v exceeds budget %v (solo %v)", loaded.P99, budget, solo.P99)
	}
	t.Logf("polite p99 solo=%v under-load=%v (budget %v); bully accepted=%d shed=%d",
		solo.P99, loaded.P99, budget, bullyAdm.Accepted, bullyAdm.ShedQuota)
}

// TestUnadmitRefundsTokens: a request shed by a layer above the tenant
// bucket (global watermark, draining) must return its rate tokens —
// otherwise the shed layers compound and a tenant pays its rate budget
// for work that never ran.
func TestUnadmitRefundsTokens(t *testing.T) {
	tn := newTenant(TenantLimits{RatePerSec: 0.001, Burst: 2, MaxInFlight: 8})
	if ok, _, _ := tn.admit(2); !ok {
		t.Fatal("initial admit refused")
	}
	tn.unadmit(2)
	// The bucket refills at ~1 token per 1000s, so a second success can
	// only come from the refund.
	ok, cause, _ := tn.admit(2)
	if !ok {
		t.Fatalf("admit after unadmit refused (cause %v): tokens were burned", cause)
	}
	tn.release(2)
	if got := tn.inFlight.Load(); got != 0 {
		t.Fatalf("in-flight gauge = %d, want 0", got)
	}
}

// TestMaxTenants: tenant names are client-supplied, so the table is
// capped — unseen tenants past the cap shed with 429 while known
// tenants keep working.
func TestMaxTenants(t *testing.T) {
	_, srv, hs, _ := newTestStack(t, runtime.Config{},
		func(cfg *Config) { cfg.MaxTenants = 3 })
	src := api.EncodeSources(map[string]value.Value{
		"order_total": value.Int(120), "customer_id": value.Int(7),
	})
	eval := func(tenant string) int {
		resp := post(t, hs, "/v1/eval", tenant, api.EvalRequest{Schema: "quickstart", Sources: src})
		drainBody(t, resp, nil)
		return resp.StatusCode
	}
	for _, tenant := range []string{"a", "b", "c"} {
		if code := eval(tenant); code != http.StatusOK {
			t.Fatalf("tenant %s: status %d", tenant, code)
		}
	}
	for _, tenant := range []string{"d", "e"} {
		if code := eval(tenant); code != http.StatusTooManyRequests {
			t.Fatalf("over-cap tenant %s: status %d, want 429", tenant, code)
		}
	}
	if code := eval("b"); code != http.StatusOK {
		t.Fatalf("known tenant after cap: status %d", code)
	}
	srv.tmu.Lock()
	n := len(srv.tenants)
	srv.tmu.Unlock()
	if n != 3 {
		t.Fatalf("tenant table holds %d entries, want 3", n)
	}
}

// TestStatsEndpoint: the service stats round-trip as JSON and the
// per-tenant admission view matches runtime completions.
func TestStatsEndpoint(t *testing.T) {
	_, _, _, c := newTestStack(t, runtime.Config{}, nil)
	ctx := context.Background()
	src := map[string]value.Value{"order_total": value.Int(120), "customer_id": value.Int(7)}
	for i := 0; i < 5; i++ {
		if _, err := c.EvalValues(ctx, "quickstart", "", src); err != nil {
			t.Fatal(err)
		}
	}
	stats, err := c.Stats(ctx)
	if err != nil {
		t.Fatal(err)
	}
	var svcStats runtime.Stats
	if err := json.Unmarshal(stats.Service, &svcStats); err != nil {
		t.Fatal(err)
	}
	if svcStats.Completed != 5 {
		t.Fatalf("service completed = %d, want 5", svcStats.Completed)
	}
	if ts, ok := svcStats.Tenants["t0"]; !ok || ts.Completed != 5 {
		t.Fatalf("tenant slice = %+v, want completed 5", svcStats.Tenants)
	}
	if adm := stats.Tenants["t0"]; adm.Accepted != 5 || adm.InFlight != 0 {
		t.Fatalf("admission = %+v", adm)
	}
	if stats.Draining || stats.UptimeMs < 0 {
		t.Fatalf("stats header: %+v", stats)
	}
}
