package server

import (
	"bufio"
	"encoding/json"
	"errors"
	"fmt"
	"net"
	"net/http"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/api"
	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/fault"
	"repro/internal/runtime"
	"repro/internal/value"
)

// This file is the binary ("dfbin") front end: persistent TCP connections
// speaking the length-prefixed frame protocol of internal/api (binary.go),
// served beside the HTTP handlers over the same schema registry, tenant
// admission, drain machinery and runtime. The hot path is allocation-lean
// by construction: frames decode into pooled dense value.Value slot
// buffers that the runtime consumes directly (runtime.Request.SourceSlots),
// and results encode into pooled write buffers that a per-connection
// writer goroutine flushes — runtime workers never block on the TCP write.

// ServeBinary accepts dfbin connections from ln until the listener closes
// (Drain closes registered listeners itself, so callers can just let
// Drain take it down). Each connection is handled on its own goroutines.
func (s *Server) ServeBinary(ln net.Listener) error {
	s.bmu.Lock()
	s.blisteners = append(s.blisteners, ln)
	s.bmu.Unlock()
	for {
		conn, err := ln.Accept()
		if err != nil {
			if errors.Is(err, net.ErrClosed) {
				return nil
			}
			return err
		}
		go s.serveBinConn(conn)
	}
}

// binBind is one prepared (schema, strategy) binding on a connection.
type binBind struct {
	entry *schemaEntry
	st    engine.Strategy
	name  string
	// gen is the server's schemaGen observed when the bind last verified
	// its entry against the registry; a cheap equality check on the hot
	// path detects possible supersession without touching the registry.
	gen uint64
}

// binConn is one accepted binary connection.
type binConn struct {
	s          *Server
	conn       net.Conn
	tenantName string

	binds map[uint64]*binBind

	out outbox

	// evals tracks this connection's in-flight instances so teardown can
	// wait for their Done callbacks (which touch the outbox) to finish.
	evals sync.WaitGroup

	closeOnce sync.Once
}

// outbox is the connection's outbound frame queue: producers (runtime Done
// callbacks) never block, the writer goroutine drains in order, and
// buffers recycle through an embedded free list so the steady state
// allocates nothing. Queue growth is bounded by admission: every queued
// frame is an admitted instance's result (or a small control frame).
type outbox struct {
	mu     sync.Mutex
	q      [][]byte
	free   [][]byte
	wake   chan struct{}
	closed bool
}

func (o *outbox) init() { o.wake = make(chan struct{}, 1) }

// buf returns a recycled buffer (or nil — append grows it on first use).
func (o *outbox) buf() []byte {
	o.mu.Lock()
	defer o.mu.Unlock()
	if n := len(o.free); n > 0 {
		b := o.free[n-1]
		o.free = o.free[:n-1]
		return b[:0]
	}
	return nil
}

// recycle returns a buffer to the free list without queueing it.
func (o *outbox) recycle(b []byte) {
	o.mu.Lock()
	if !o.closed && len(o.free) < 64 {
		o.free = append(o.free, b)
	}
	o.mu.Unlock()
}

// put queues a frame for writing. After close it drops the frame (the
// connection is gone; results are undeliverable).
func (o *outbox) put(b []byte) {
	o.mu.Lock()
	if o.closed {
		o.mu.Unlock()
		return
	}
	o.q = append(o.q, b)
	o.mu.Unlock()
	select {
	case o.wake <- struct{}{}:
	default:
	}
}

// take removes the queued frames, blocking until at least one is
// available. done=true means the outbox closed and everything queued
// before the close has been taken.
func (o *outbox) take(into [][]byte) (frames [][]byte, done bool) {
	for {
		o.mu.Lock()
		if len(o.q) > 0 {
			frames = append(into[:0], o.q...)
			o.q = o.q[:0]
			o.mu.Unlock()
			return frames, false
		}
		if o.closed {
			o.mu.Unlock()
			return into[:0], true
		}
		o.mu.Unlock()
		<-o.wake
	}
}

func (o *outbox) close() {
	o.mu.Lock()
	o.closed = true
	o.mu.Unlock()
	select {
	case o.wake <- struct{}{}:
	default:
	}
}

// slotBuf is a pooled dense source buffer (see runtime.Request.SourceSlots).
type slotBuf struct{ v []value.Value }

var slotPool = sync.Pool{New: func() any { return new(slotBuf) }}

// getSlots returns a cleared slot buffer of length n.
func getSlots(n int) *slotBuf {
	sb := slotPool.Get().(*slotBuf)
	if cap(sb.v) < n {
		sb.v = make([]value.Value, n)
	} else {
		sb.v = sb.v[:n]
		clear(sb.v)
	}
	return sb
}

// serveBinConn owns one connection: handshake, then the read loop. The
// paired writer goroutine owns all writes.
func (s *Server) serveBinConn(nc net.Conn) {
	// Interpose the conn failpoints only while some site is armed: the
	// wrapper hides *net.TCPConn from net.Buffers' writev fast path, so
	// the disarmed hot path must keep the raw conn.
	if fault.Active() {
		nc = fault.WrapConn(nc, fault.SiteBinConnRead, fault.SiteBinConnWrite)
	}
	// The handshake must arrive promptly; afterwards the connection is
	// persistent and idles freely.
	nc.SetReadDeadline(time.Now().Add(30 * time.Second))
	fr := api.NewFrameReader(bufio.NewReaderSize(nc, 64<<10), int(s.cfg.MaxBodyBytes))
	typ, payload, err := fr.Next()
	if err != nil || typ != api.FrameHello {
		nc.Close()
		return
	}
	rawTenant, err := api.ParseHello(payload)
	if err != nil {
		nc.Close()
		return
	}
	tenantName, err := api.CleanTenant(rawTenant)
	if err != nil {
		nc.Close()
		return
	}
	nc.SetReadDeadline(time.Time{})

	c := &binConn{s: s, conn: nc, tenantName: tenantName, binds: make(map[uint64]*binBind)}
	c.out.init()

	s.bmu.Lock()
	s.bconns[c] = struct{}{}
	s.bmu.Unlock()
	go c.writer()

	c.out.put(api.AppendHelloAckFrame(c.out.buf(), s.Draining(), int(s.cfg.MaxBodyBytes)))

	c.readLoop(fr)

	// Reader is done (client disconnect, protocol error, or drain close).
	// Wait for in-flight instances — their Done callbacks queue into the
	// outbox — then flush and close.
	c.evals.Wait()
	c.shutdown()
	s.bmu.Lock()
	delete(s.bconns, c)
	s.bmu.Unlock()
}

// writer drains the outbox to the socket, coalescing every frame queued
// since the last flush into a single vectored write — with a multiplexed
// client pipelining many requests per connection, this is most of the
// syscall saving on the server side. Write errors don't stop it — it
// keeps consuming so producers' buffers recycle — and it closes the
// socket when the outbox closes, which is what unblocks the reader on a
// server-initiated shutdown.
func (c *binConn) writer() {
	var scratch [][]byte
	var vecs net.Buffers
	var broken bool
	for {
		frames, done := c.out.take(scratch)
		if done {
			c.conn.Close()
			return
		}
		scratch = frames
		if !broken {
			// WriteTo consumes its receiver, so it gets a copy of the
			// slice headers; the frames themselves still recycle below.
			vecs = append(vecs[:0], frames...)
			if _, err := vecs.WriteTo(c.conn); err != nil {
				// A partial or failed frame write leaves the stream
				// unframeable; close the socket now so the client sees a
				// prompt conn error and redials, instead of waiting out its
				// request timeout against a wedged half-written stream.
				broken = true
				c.conn.Close()
			}
		}
		for _, b := range frames {
			c.out.recycle(b)
		}
	}
}

// sendDrain pushes the unsolicited Drain frame (server going down).
func (c *binConn) sendDrain() {
	b := c.out.buf()
	start := len(b)
	b = api.BeginFrame(b, api.FrameDrain)
	c.out.put(api.FinishFrame(b, start))
}

// shutdown flushes queued frames and closes the connection. Idempotent;
// called from both the reader teardown and Server.Drain.
func (c *binConn) shutdown() { c.closeOnce.Do(c.out.close) }

// sendErr queues an Error frame.
func (c *binConn) sendErr(reqID uint64, code byte, retry time.Duration, msg string) {
	c.out.put(api.AppendErrorFrame(c.out.buf(), reqID, code, retry.Milliseconds(), msg))
}

// readLoop dispatches request frames until the stream ends or turns
// malformed (either way the connection is torn down — a frame boundary
// can't be recovered).
func (c *binConn) readLoop(fr *api.FrameReader) {
	for {
		typ, payload, err := fr.Next()
		if err != nil {
			return
		}
		cur := api.NewCursor(payload)
		reqID := cur.Uvarint()
		if cur.Err() != nil {
			return
		}
		switch typ {
		case api.FrameEval:
			if !c.handleEval(reqID, &cur) {
				return
			}
		case api.FrameEvalBatch:
			if !c.handleEvalBatch(reqID, &cur) {
				return
			}
		case api.FrameBind:
			if !c.handleBind(reqID, &cur) {
				return
			}
		case api.FrameRegister:
			if !c.handleRegister(reqID, &cur) {
				return
			}
		case api.FrameForward:
			if !c.handleForward(reqID, &cur) {
				return
			}
		case api.FrameStats:
			c.handleStats(reqID)
		case api.FramePing:
			b := c.out.buf()
			start := len(b)
			b = api.BeginFrame(b, api.FramePong)
			b = api.AppendUvarint(b, reqID)
			b = append(b, 0)
			if c.s.Draining() {
				b[len(b)-1] = 1
			}
			c.out.put(api.FinishFrame(b, start))
		default:
			// Unknown frame type: protocol mismatch, tear down.
			return
		}
	}
}

// handleBind resolves a (schema, strategy) pair and installs it under the
// client-chosen bind id, answering with the schema fingerprint and the
// attribute-id table that Eval frames will address.
func (c *binConn) handleBind(reqID uint64, cur *api.Cursor) bool {
	bindID := cur.Uvarint()
	name := cur.String()
	stCode := cur.String()
	if cur.Done() != nil {
		return false
	}
	if len(c.binds) >= 1024 {
		c.sendErr(reqID, api.CodeTooLarge, 0, "too many binds on one connection")
		return true
	}
	s := c.s
	s.mu.RLock()
	entry := s.schemas[name]
	s.mu.RUnlock()
	if entry == nil {
		c.sendErr(reqID, api.CodeNotFound, 0, fmt.Sprintf("unknown schema %q", name))
		return true
	}
	st := s.cfg.DefaultStrategy
	if stCode != "" {
		var err error
		if st, err = engine.ParseStrategy(stCode); err != nil {
			c.sendErr(reqID, api.CodeBadRequest, 0, err.Error())
			return true
		}
	}
	c.binds[bindID] = &binBind{entry: entry, st: st, name: name, gen: s.schemaGen.Load()}

	sch := entry.schema
	b := c.out.buf()
	start := len(b)
	b = api.BeginFrame(b, api.FrameBindAck)
	b = api.AppendUvarint(b, reqID)
	b = api.AppendUvarint(b, bindID)
	var fp [8]byte
	for i, v := 0, sch.Fingerprint(); i < 8; i++ {
		fp[i] = byte(v >> (8 * i))
	}
	b = append(b, fp[:]...)
	n := sch.NumAttrs()
	b = api.AppendUvarint(b, uint64(n))
	for id := 0; id < n; id++ {
		a := sch.Attr(core.AttrID(id))
		var flags byte
		if a.IsSource() {
			flags |= api.BindFlagSource
		}
		if a.IsTarget {
			flags |= api.BindFlagTarget
		}
		b = append(b, flags)
		b = api.AppendString(b, a.Name)
	}
	c.out.put(api.FinishFrame(b, start))
	return true
}

// resolveBind returns the bind for the id, verifying it has not been
// superseded by a re-registration (CodeStale tells the client to
// re-bind; its cached attribute table may no longer match).
func (c *binConn) resolveBind(reqID, bindID uint64) *binBind {
	bd := c.binds[bindID]
	if bd == nil {
		c.sendErr(reqID, api.CodeNotFound, 0, fmt.Sprintf("unknown bind id %d", bindID))
		return nil
	}
	if gen := c.s.schemaGen.Load(); gen != bd.gen {
		c.s.mu.RLock()
		cur := c.s.schemas[bd.name]
		c.s.mu.RUnlock()
		if cur != bd.entry {
			c.sendErr(reqID, api.CodeStale, 0,
				fmt.Sprintf("schema %q re-registered since bind; re-bind", bd.name))
			return nil
		}
		bd.gen = gen
	}
	return bd
}

// admitBin is admitShared for the binary path: on refusal the Error frame
// has been queued.
func (c *binConn) admitBin(reqID uint64, t *tenant, n int) bool {
	if ref := c.s.admitShared(t, n); ref != nil {
		c.sendErr(reqID, ref.binCode(), ref.retry, ref.msg)
		return false
	}
	return true
}

// handleEval serves one Eval frame: decode (attrID, value) pairs into a
// pooled slot buffer and hand it to the runtime. Returns false only on a
// malformed frame (connection teardown).
func (c *binConn) handleEval(reqID uint64, cur *api.Cursor) bool {
	bd := c.resolveBind(reqID, cur.Uvarint())
	if cur.Err() != nil {
		return false
	}
	if bd == nil {
		return true // Error frame queued; rest of the payload is moot
	}
	s := c.s
	t := s.tenantFor(c.tenantName)
	if !c.admitBin(reqID, t, 1) {
		return true
	}
	nattrs := bd.entry.schema.NumAttrs()
	sb := getSlots(nattrs)
	npairs := cur.Uvarint()
	if npairs > uint64(len(cur.Rest())) { // each pair costs ≥ 2 bytes
		s.unwind(t, 1)
		slotPool.Put(sb)
		return false
	}
	for i := uint64(0); i < npairs; i++ {
		id := cur.Uvarint()
		v := cur.Value()
		if cur.Err() != nil {
			break
		}
		if id >= uint64(nattrs) {
			s.unwind(t, 1)
			slotPool.Put(sb)
			c.sendErr(reqID, api.CodeBadRequest, 0,
				fmt.Sprintf("attribute id %d out of range", id))
			return false
		}
		sb.v[id] = v
	}
	if cur.Done() != nil {
		s.unwind(t, 1)
		slotPool.Put(sb)
		return false
	}

	entry := bd.entry
	shc := s.shadowSample(entry, c.tenantName, bd.st, nil, sb.v)
	c.evals.Add(1)
	err := s.svc.Submit(runtime.Request{
		Schema:      entry.schema,
		SourceSlots: sb.v,
		Strategy:    bd.st,
		Tenant:      c.tenantName,
		Done: func(res *engine.Result) {
			s.shadowFinish(shc, entry, res)
			// Before slotPool.Put below: the hook reads the dense slots.
			s.captureEval(entry, c.tenantName, bd.st, nil, sb.v, res)
			b := c.out.buf()
			start := len(b)
			b = api.BeginFrame(b, api.FrameResult)
			b = api.AppendUvarint(b, reqID)
			b = appendResultBody(b, entry, res)
			c.out.put(api.FinishFrame(b, start))
			slotPool.Put(sb)
			t.release(1)
			s.evals.Done()
			c.evals.Done()
		},
	})
	if err != nil {
		c.evals.Done()
		s.unwind(t, 1)
		slotPool.Put(sb)
		c.sendErr(reqID, api.CodeInternal, 0, err.Error())
	}
	return true
}

// batchCtx coordinates one EvalBatch frame's instances: each Done encodes
// its result body (while its pooled snapshot is valid) into its slot of
// bodies; the last to finish assembles and queues the BatchResult frame
// and releases the batch's admission claims.
type batchCtx struct {
	c      *binConn
	t      *tenant
	reqID  uint64
	bodies [][]byte
	slots  []*slotBuf
	left   atomic.Int64
}

// finish records instance i's encoded body and, when it is the last,
// assembles the frame. Called from runtime Done callbacks (any worker).
func (bc *batchCtx) finish(i int, body []byte) {
	bc.bodies[i] = body
	if bc.left.Add(-1) > 0 {
		return
	}
	c := bc.c
	n := len(bc.bodies)
	b := c.out.buf()
	start := len(b)
	b = api.BeginFrame(b, api.FrameBatchResult)
	b = api.AppendUvarint(b, bc.reqID)
	b = api.AppendUvarint(b, uint64(n))
	for _, body := range bc.bodies {
		b = append(b, body...)
	}
	c.out.put(api.FinishFrame(b, start))
	for _, body := range bc.bodies {
		c.out.recycle(body)
	}
	for _, sb := range bc.slots {
		slotPool.Put(sb)
	}
	bc.t.release(n)
	c.s.evals.Add(-n)
	c.evals.Add(-n)
}

// handleEvalBatch serves one columnar EvalBatch frame. Admission covers
// the whole batch before the values decode — the frame header names the
// instance count up front, so unlike HTTP there is no two-step admit.
func (c *binConn) handleEvalBatch(reqID uint64, cur *api.Cursor) bool {
	bd := c.resolveBind(reqID, cur.Uvarint())
	if cur.Err() != nil {
		return false
	}
	if bd == nil {
		return true
	}
	n := int(cur.Uvarint())
	ncols := int(cur.Uvarint())
	if cur.Err() != nil {
		return false
	}
	s := c.s
	if n <= 0 {
		c.sendErr(reqID, api.CodeBadRequest, 0, "empty batch")
		return true
	}
	if n > s.cfg.MaxBatch {
		c.sendErr(reqID, api.CodeTooLarge, 0,
			fmt.Sprintf("batch of %d exceeds limit %d", n, s.cfg.MaxBatch))
		return true
	}
	nattrs := bd.entry.schema.NumAttrs()
	if ncols < 0 || ncols > nattrs {
		c.sendErr(reqID, api.CodeBadRequest, 0, "more columns than attributes")
		return false
	}
	cols := make([]int, ncols)
	for i := range cols {
		id := cur.Uvarint()
		if cur.Err() != nil {
			return false
		}
		if id >= uint64(nattrs) {
			c.sendErr(reqID, api.CodeBadRequest, 0,
				fmt.Sprintf("attribute id %d out of range", id))
			return false
		}
		cols[i] = int(id)
	}

	t := s.tenantFor(c.tenantName)
	if !c.admitBin(reqID, t, n) {
		return true
	}

	slots := make([]*slotBuf, n)
	for i := range slots {
		slots[i] = getSlots(nattrs)
	}
	fail := func() bool {
		s.unwind(t, n)
		for _, sb := range slots {
			slotPool.Put(sb)
		}
		return false
	}
	// Column-major: all n values of column 0, then column 1, …
	for _, id := range cols {
		for i := 0; i < n; i++ {
			slots[i].v[id] = cur.Value()
		}
		if cur.Err() != nil {
			return fail()
		}
	}
	if cur.Done() != nil {
		return fail()
	}

	entry := bd.entry
	bc := &batchCtx{c: c, t: t, reqID: reqID, bodies: make([][]byte, n), slots: slots}
	bc.left.Store(int64(n))
	c.evals.Add(n)
	for i := 0; i < n; i++ {
		i := i
		shc := s.shadowSample(entry, c.tenantName, bd.st, nil, slots[i].v)
		err := s.svc.Submit(runtime.Request{
			Schema:      entry.schema,
			SourceSlots: slots[i].v,
			Strategy:    bd.st,
			Tenant:      c.tenantName,
			Done: func(res *engine.Result) {
				s.shadowFinish(shc, entry, res)
				s.captureEval(entry, c.tenantName, bd.st, nil, slots[i].v, res)
				bc.finish(i, appendResultBody(c.out.buf(), entry, res))
			},
		})
		if err != nil {
			b := c.out.buf()
			b = api.AppendUvarint(b, 0) // elapsedUs
			for k := 0; k < 5; k++ {
				b = api.AppendUvarint(b, 0)
			}
			b = api.AppendString(b, err.Error())
			b = api.AppendUvarint(b, 0) // no targets
			bc.finish(i, b)
		}
	}
	return true
}

// appendResultBody encodes one completed instance per the result-body
// grammar of internal/api. It runs inside the runtime's Done callback,
// while the pooled snapshot is still valid — the binary sibling of
// buildResult.
func appendResultBody(b []byte, entry *schemaEntry, res *engine.Result) []byte {
	b = api.AppendUvarint(b, uint64(max(res.Elapsed*1000, 0))) // µs
	b = api.AppendUvarint(b, uint64(res.Work))
	b = api.AppendUvarint(b, uint64(res.WastedWork))
	b = api.AppendUvarint(b, uint64(res.Launched))
	b = api.AppendUvarint(b, uint64(res.SynthesisRuns))
	b = api.AppendUvarint(b, uint64(res.Failures))
	errStr := ""
	if res.Err != nil {
		errStr = res.Err.Error()
	}
	b = api.AppendString(b, errStr)
	b = api.AppendUvarint(b, uint64(len(entry.targetIDs)))
	for _, id := range entry.targetIDs {
		b = api.AppendUvarint(b, uint64(id))
		b = api.AppendValue(b, res.Snapshot.Val(id))
	}
	return b
}

// handleRegister mirrors POST /v1/schemas: metered under the tenant's
// admission, then the shared registration core.
func (c *binConn) handleRegister(reqID uint64, cur *api.Cursor) bool {
	text := cur.String()
	if cur.Done() != nil {
		return false
	}
	s := c.s
	t := s.tenantFor(c.tenantName)
	if t == nil {
		c.sendErr(reqID, api.CodeShed, time.Second, "tenant table full")
		return true
	}
	if ok, cause, retry := t.admit(1); !ok {
		code := api.CodeShed
		if cause == shedTooLarge {
			code = api.CodeTooLarge
		}
		c.sendErr(reqID, code, retry, registerShedMsg(cause))
		return true
	}
	defer t.release(1)
	resp, rerr := s.registerSchema(c.tenantName, text, false, 0)
	if rerr != nil {
		code := api.CodeBadRequest
		switch rerr.httpStatus {
		case http.StatusForbidden, http.StatusNotFound:
			code = api.CodeNotFound
		case http.StatusInsufficientStorage:
			code = api.CodeTooLarge
		case http.StatusServiceUnavailable:
			code = api.CodeDraining
		case http.StatusInternalServerError:
			code = api.CodeInternal
		}
		if rerr.binCode != 0 {
			// The registration core pinned the wire code (poisoned /
			// read-only registry must not read as CodeDraining's
			// try-another-node hint).
			code = rerr.binCode
		}
		c.sendErr(reqID, code, 0, rerr.msg)
		return true
	}
	fp, _ := strconv.ParseUint(resp.Fingerprint, 16, 64)
	b := c.out.buf()
	start := len(b)
	b = api.BeginFrame(b, api.FrameRegisterAck)
	b = api.AppendUvarint(b, reqID)
	b = api.AppendString(b, resp.Name)
	b = api.AppendUvarint(b, uint64(resp.Attrs))
	b = api.AppendUvarint(b, uint64(len(resp.Targets)))
	for _, tgt := range resp.Targets {
		b = api.AppendString(b, tgt)
	}
	b = api.AppendUvarint(b, resp.Version)
	b = append(b, byte(fp), byte(fp>>8), byte(fp>>16), byte(fp>>24),
		byte(fp>>32), byte(fp>>40), byte(fp>>48), byte(fp>>56))
	c.out.put(api.FinishFrame(b, start))
	return true
}

// handleForward serves one peer-forwarded backend query (see peer.go):
// this node is the query's home, so it runs the flight under its own
// single-flight/cache tables and acks with the flight's fate. Schemas are
// addressed by name + fingerprint (peers share a registry, not a
// connection); a name miss, a fingerprint mismatch, or a draining server
// refuses with an Error frame, which tells the forwarder to fall back to
// a local flight. Forwarded queries hold the same drain claim as evals —
// Drain flushes their acks before closing connections — but bypass
// tenant admission: the forwarder's node already admitted the eval that
// spawned the query, and double-metering would shed fleet traffic twice.
func (c *binConn) handleForward(reqID uint64, cur *api.Cursor) bool {
	name := cur.String()
	fp := cur.U64()
	attr := cur.Uvarint()
	cost := cur.Uvarint()
	args := cur.Bytes()
	if cur.Done() != nil {
		return false
	}
	s := c.s
	s.mu.RLock()
	entry := s.schemas[name]
	s.mu.RUnlock()
	if entry == nil {
		c.sendErr(reqID, api.CodeNotFound, 0, fmt.Sprintf("unknown schema %q", name))
		return true
	}
	if entry.fingerprint != fp {
		c.sendErr(reqID, api.CodeStale, 0, fmt.Sprintf(
			"schema %q fingerprint mismatch (registry %016x, forwarded %016x)",
			name, entry.fingerprint, fp))
		return true
	}
	if attr >= uint64(entry.schema.NumAttrs()) {
		c.sendErr(reqID, api.CodeBadRequest, 0,
			fmt.Sprintf("attribute id %d out of range", attr))
		return true
	}
	s.drainMu.RLock()
	if s.draining {
		s.drainMu.RUnlock()
		c.sendErr(reqID, api.CodeDraining, 0, ErrDraining.Error())
		return true
	}
	s.evals.Add(1)
	s.drainMu.RUnlock()
	// The payload buffer recycles when the read loop advances; the flight
	// outlives this frame, so the args must be copied out.
	argsCopy := append([]byte(nil), args...)
	c.evals.Add(1)
	done := func(err error) {
		b := c.out.buf()
		start := len(b)
		b = api.BeginFrame(b, api.FrameForwardAck)
		b = api.AppendUvarint(b, reqID)
		msg := ""
		if err != nil {
			msg = err.Error()
		}
		b = api.AppendString(b, msg)
		c.out.put(api.FinishFrame(b, start))
		s.evals.Done()
		c.evals.Done()
	}
	// ServePeerQuery can block on backend token admission; a dedicated
	// goroutine keeps the read loop serving other frames meanwhile.
	go func() {
		err := s.svc.ServePeerQuery(entry.schema, core.AttrID(attr), argsCopy, int(cost), done)
		if err != nil {
			// Never entered the query layer (service closed mid-drain,
			// or no query layer at all): an Error frame, not a failed
			// ack, so the forwarder falls back instead of sharing fate.
			c.sendErr(reqID, api.CodeInternal, 0, err.Error())
			s.evals.Done()
			c.evals.Done()
		}
	}()
	return true
}

// handleStats answers with the JSON StatsResponse — the cold path reuses
// the JSON rendering rather than duplicating the stats grammar in binary.
func (c *binConn) handleStats(reqID uint64) {
	s := c.s
	resp, err := s.statsResponse()
	if err != nil {
		c.sendErr(reqID, api.CodeInternal, 0, err.Error())
		return
	}
	js, err := json.Marshal(resp)
	if err != nil {
		c.sendErr(reqID, api.CodeInternal, 0, err.Error())
		return
	}
	b := c.out.buf()
	start := len(b)
	b = api.BeginFrame(b, api.FrameStatsAck)
	b = api.AppendUvarint(b, reqID)
	b = api.AppendUvarint(b, uint64(len(js)))
	b = append(b, js...)
	c.out.put(api.FinishFrame(b, start))
}
