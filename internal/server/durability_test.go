package server

import (
	"context"
	"errors"
	"fmt"
	"io"
	"net"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/api"
	"repro/internal/client"
	"repro/internal/core"
	"repro/internal/flows"
	"repro/internal/runtime"
	"repro/internal/value"
)

const durableText = `
	schema billing
	source amount
	query risk from amount cost 2 when amount > 0
	synth fee when notnull(risk) = amount / 10 + risk * 0
	target fee
`

// newDurableStack is newTestStack over a data directory. Unlike the
// shared helper it returns the server too, and its cleanup tolerates a
// server the test already drained (the restart tests drain generation
// one themselves).
func newDurableStack(t *testing.T, dir string, mod func(*Config)) (*Server, *httptest.Server, *client.Client) {
	t.Helper()
	svc := runtime.New(runtime.Config{})
	cfg := Config{Service: svc, DataDir: dir}
	if mod != nil {
		mod(&cfg)
	}
	srv, err := Open(cfg)
	if err != nil {
		t.Fatal(err)
	}
	hs := httptest.NewServer(srv.Handler())
	c, err := client.New(hs.URL, client.WithTenant("t0"))
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		c.Close()
		hs.Close()
		if !srv.Draining() {
			srv.Drain(context.Background())
		}
	})
	return srv, hs, c
}

func fingerprintOf(t *testing.T, text string) uint64 {
	t.Helper()
	sch, err := core.ParseSchema(text)
	if err != nil {
		t.Fatal(err)
	}
	flows.BindDefaultComputes(sch)
	return sch.Fingerprint()
}

func schemaDetail(t *testing.T, c *client.Client, name string) api.SchemaInfo {
	t.Helper()
	stats, err := c.Stats(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range stats.SchemaDetails {
		if d.Name == name {
			return d
		}
	}
	t.Fatalf("schema %q not in stats details %+v", name, stats.SchemaDetails)
	return api.SchemaInfo{}
}

// TestRegistryRecovery is the restart round trip: a schema registered
// against generation one is served by generation two without
// re-registration, at the same version and fingerprint, after a clean
// drain (recovery comes from the final snapshot).
func TestRegistryRecovery(t *testing.T) {
	dir := t.TempDir()
	ctx := context.Background()

	srv1, _, c1 := newDurableStack(t, dir, nil)
	ack, err := c1.RegisterSchemaText(ctx, durableText)
	if err != nil {
		t.Fatal(err)
	}
	if ack.Version != 1 {
		t.Fatalf("first registration version = %d, want 1", ack.Version)
	}
	// Re-register to prove versions persist, not just texts.
	ack2, err := c1.RegisterSchemaText(ctx, durableText)
	if err != nil {
		t.Fatal(err)
	}
	if ack2.Version != 2 {
		t.Fatalf("second registration version = %d, want 2", ack2.Version)
	}
	if _, err := c1.EvalValues(ctx, "billing", "", map[string]value.Value{"amount": value.Int(120)}); err != nil {
		t.Fatal(err)
	}
	if _, err := srv1.Drain(ctx); err != nil {
		t.Fatal(err)
	}

	srv2, _, c2 := newDurableStack(t, dir, nil)
	rec := srv2.Recovery()
	if !rec.Enabled || rec.Schemas != 1 || rec.TornBytes != 0 {
		t.Fatalf("recovery = %+v, want 1 schema, no torn tail", rec)
	}
	res, err := c2.EvalValues(ctx, "billing", "", map[string]value.Value{"amount": value.Int(120)})
	if err != nil {
		t.Fatalf("eval after restart without re-registering: %v", err)
	}
	if res.Error != "" {
		t.Fatalf("instance error after restart: %s", res.Error)
	}
	d := schemaDetail(t, c2, "billing")
	if d.Version != 2 || d.Owner != "t0" {
		t.Fatalf("recovered detail = %+v, want version 2 owned by t0", d)
	}
	if want := fmt.Sprintf("%016x", fingerprintOf(t, durableText)); d.Fingerprint != want {
		t.Fatalf("recovered fingerprint %s, want %s", d.Fingerprint, want)
	}
	if d.Fingerprint != ack2.Fingerprint {
		t.Fatalf("fingerprint changed across restart: %s vs %s", d.Fingerprint, ack2.Fingerprint)
	}
	// The version counter recovered too: the next registration is v3.
	ack3, err := c2.RegisterSchemaText(ctx, durableText)
	if err != nil {
		t.Fatal(err)
	}
	if ack3.Version != 3 {
		t.Fatalf("post-restart registration version = %d, want 3", ack3.Version)
	}
}

// TestRegistryRecoveryUncleanLog replays from the log rather than the
// snapshot: the files are copied aside before the drain-time snapshot
// and restored after, simulating a crash that never sealed the WAL.
func TestRegistryRecoveryUncleanLog(t *testing.T) {
	dir := t.TempDir()
	ctx := context.Background()

	srv1, _, c1 := newDurableStack(t, dir, nil)
	if _, err := c1.RegisterSchemaText(ctx, durableText); err != nil {
		t.Fatal(err)
	}
	// Freeze the WAL as it stands mid-flight (no snapshot yet).
	raw, err := os.ReadFile(filepath.Join(dir, walFileName))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := srv1.Drain(ctx); err != nil {
		t.Fatal(err)
	}
	// Undo the clean shutdown: drop the snapshot, restore the live log.
	os.Remove(filepath.Join(dir, snapFileName))
	if err := os.WriteFile(filepath.Join(dir, walFileName), raw, 0o644); err != nil {
		t.Fatal(err)
	}

	srv2, _, c2 := newDurableStack(t, dir, nil)
	if rec := srv2.Recovery(); rec.Schemas != 1 || rec.TornBytes != 0 {
		t.Fatalf("recovery = %+v, want 1 schema from the raw log", rec)
	}
	if _, err := c2.EvalValues(ctx, "billing", "", map[string]value.Value{"amount": value.Int(7)}); err != nil {
		t.Fatal(err)
	}
}

// TestRegistryTornTailTruncated: a crash mid-append leaves a final
// record whose declared extent exceeds the file. Recovery truncates it
// away — that registration was never acked — and keeps everything
// before it.
func TestRegistryTornTailTruncated(t *testing.T) {
	dir := t.TempDir()
	ctx := context.Background()

	srv1, _, c1 := newDurableStack(t, dir, nil)
	if _, err := c1.RegisterSchemaText(ctx, durableText); err != nil {
		t.Fatal(err)
	}
	if _, err := srv1.Drain(ctx); err != nil {
		t.Fatal(err)
	}

	// A torn append: a full record, cut after its length prefix and half
	// its payload.
	whole := api.AppendWALRecord(nil, api.WALRecord{
		Kind: api.WALKindSchema, Tenant: "t0", Name: "torn",
		Version: 1, Fingerprint: 1, Text: "never finished",
	})
	logPath := filepath.Join(dir, walFileName)
	f, err := os.OpenFile(logPath, os.O_APPEND|os.O_WRONLY, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	torn := whole[:len(whole)-7]
	if _, err := f.Write(torn); err != nil {
		t.Fatal(err)
	}
	f.Close()

	srv2, _, c2 := newDurableStack(t, dir, nil)
	rec := srv2.Recovery()
	if rec.Schemas != 1 || rec.TornBytes != int64(len(torn)) {
		t.Fatalf("recovery = %+v, want 1 schema and %d torn bytes", rec, len(torn))
	}
	if _, err := c2.EvalValues(ctx, "billing", "", map[string]value.Value{"amount": value.Int(1)}); err != nil {
		t.Fatal(err)
	}
	// The truncation is physical: a third generation sees a clean log.
	raw, err := os.ReadFile(logPath)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := decodeWALFile(raw, false); err != nil {
		t.Fatalf("log still damaged after truncation: %v", err)
	}
}

// TestRegistryCorruptionRefused: unlike a torn tail, a complete-but-wrong
// record (bit rot, splice) must refuse recovery — serving a silently
// altered schema is worse than not starting.
func TestRegistryCorruptionRefused(t *testing.T) {
	write := func(t *testing.T, dir string, rec api.WALRecord, corrupt func([]byte) []byte) {
		t.Helper()
		b := append([]byte(walMagic), api.AppendWALRecord(nil, rec)...)
		if corrupt != nil {
			b = corrupt(b)
		}
		if err := os.WriteFile(filepath.Join(dir, walFileName), b, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	open := func(dir string) error {
		svc := runtime.New(runtime.Config{})
		defer svc.Close()
		_, err := Open(Config{Service: svc, DataDir: dir})
		return err
	}
	goodRec := func(t *testing.T) api.WALRecord {
		return api.WALRecord{Kind: api.WALKindSchema, Tenant: "t0", Name: "billing",
			Version: 1, Fingerprint: fingerprintOf(t, durableText), Text: durableText}
	}

	t.Run("flipped byte", func(t *testing.T) {
		dir := t.TempDir()
		write(t, dir, goodRec(t), func(b []byte) []byte {
			b[len(b)/2] ^= 0x40
			return b
		})
		err := open(dir)
		if err == nil || !errors.Is(err, api.ErrWALCorrupt) {
			t.Fatalf("corrupt interior accepted: %v", err)
		}
	})
	t.Run("fingerprint mismatch", func(t *testing.T) {
		dir := t.TempDir()
		rec := goodRec(t)
		rec.Fingerprint ^= 1 // CRC-valid record lying about its schema
		write(t, dir, rec, nil)
		err := open(dir)
		if err == nil || !strings.Contains(err.Error(), "fingerprint mismatch") {
			t.Fatalf("fingerprint mismatch accepted: %v", err)
		}
	})
	t.Run("corrupt snapshot", func(t *testing.T) {
		dir := t.TempDir()
		b := append([]byte(walMagic), api.AppendWALRecord(nil, goodRec(t))...)
		b = b[:len(b)-3] // snapshots are written atomically: torn = corrupt
		if err := os.WriteFile(filepath.Join(dir, snapFileName), b, 0o644); err != nil {
			t.Fatal(err)
		}
		if err := open(dir); err == nil {
			t.Fatal("torn snapshot accepted")
		}
	})
}

// TestRegistrySnapshotCompaction: crossing SnapshotEvery appends rewrites
// the snapshot and truncates the log, and the compacted state recovers.
func TestRegistrySnapshotCompaction(t *testing.T) {
	dir := t.TempDir()
	ctx := context.Background()

	srv1, _, c1 := newDurableStack(t, dir, func(cfg *Config) { cfg.SnapshotEvery = 3 })
	for i := 0; i < 4; i++ {
		if _, err := c1.RegisterSchemaText(ctx, durableText); err != nil {
			t.Fatal(err)
		}
	}
	logInfo, err := os.Stat(filepath.Join(dir, walFileName))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(filepath.Join(dir, snapFileName)); err != nil {
		t.Fatalf("no snapshot after %d appends with SnapshotEvery=3: %v", 4, err)
	}
	// The log holds only the post-snapshot tail (one record), not four.
	oneRec := len(api.AppendWALRecord(nil, api.WALRecord{Kind: api.WALKindSchema,
		Tenant: "t0", Name: "billing", Version: 4,
		Fingerprint: fingerprintOf(t, durableText), Text: durableText}))
	if want := int64(len(walMagic) + oneRec); logInfo.Size() != want {
		t.Fatalf("log size %d after compaction, want %d", logInfo.Size(), want)
	}
	if _, err := srv1.Drain(ctx); err != nil {
		t.Fatal(err)
	}

	srv2, _, c2 := newDurableStack(t, dir, nil)
	if rec := srv2.Recovery(); rec.Schemas != 1 {
		t.Fatalf("recovery = %+v, want 1 schema", rec)
	}
	if d := schemaDetail(t, c2, "billing"); d.Version != 4 {
		t.Fatalf("recovered version = %d, want 4", d.Version)
	}
}

// TestShadowDivergence is the dark-launch loop end to end: a candidate
// version that computes a deliberately different target runs beside the
// live one and every sampled comparison reports the divergence, with
// example vectors, while the live answers stay the live version's.
func TestShadowDivergence(t *testing.T) {
	live := "schema shaded\nsource x\nsynth y = x + 1\ntarget y"
	cand := "schema shaded\nsource x\nsynth y = x + 2\ntarget y"
	ctx := context.Background()
	_, _, hs, c := newTestStack(t, runtime.Config{}, nil)

	if _, err := c.RegisterSchemaText(ctx, live); err != nil {
		t.Fatal(err)
	}
	resp := post(t, hs, "/v1/schemas", "t0", api.SchemaRequest{Text: cand, Shadow: true})
	var ack api.SchemaResponse
	drainBody(t, resp, &ack)
	if resp.StatusCode != http.StatusOK || !ack.Shadow || ack.Version != 2 {
		t.Fatalf("shadow registration: HTTP %d, ack %+v", resp.StatusCode, ack)
	}

	const n = 16
	for i := 0; i < n; i++ {
		res, err := c.EvalValues(ctx, "shaded", "", map[string]value.Value{"x": value.Int(int64(i))})
		if err != nil {
			t.Fatal(err)
		}
		if got, _ := res.Values["y"].(float64); got != float64(i+1) {
			t.Fatalf("live answer changed under shadow: y = %v for x = %d", res.Values["y"], i)
		}
	}

	// Shadow work is off the latency path; poll until it lands.
	var rep api.ShadowReport
	deadline := time.Now().Add(5 * time.Second)
	for {
		var err error
		rep, err = c.ShadowReport(ctx, "shaded")
		if err != nil {
			t.Fatal(err)
		}
		if ts := rep.Tenants["t0"]; ts.Sampled+rep.Skipped >= n {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("shadow comparisons never completed: %+v", rep)
		}
		time.Sleep(10 * time.Millisecond)
	}
	if rep.LiveVersion != 1 || rep.ShadowVersion != 2 || rep.SampleEvery != 1 {
		t.Fatalf("report header %+v, want live v1, shadow v2, sample 1", rep)
	}
	ts := rep.Tenants["t0"]
	if ts.Diverged != ts.Sampled || ts.Sampled == 0 {
		t.Fatalf("diverged %d of %d sampled, want all (every instance differs by 1)", ts.Diverged, ts.Sampled)
	}
	if ts.Errors != 0 {
		t.Fatalf("spurious shadow errors: %d", ts.Errors)
	}
	if len(ts.Examples) == 0 || len(ts.Examples) > maxShadowExamples {
		t.Fatalf("examples = %d, want 1..%d", len(ts.Examples), maxShadowExamples)
	}
	ex := ts.Examples[0]
	x, _ := ex.Sources["x"].(float64)
	if lv, sv := ex.Live["y"], ex.Shadow["y"]; lv != x+1 || sv != x+2 {
		t.Fatalf("example for x=%v: live y=%v shadow y=%v, want %v and %v", x, lv, sv, x+1, x+2)
	}

	// Re-registering the live schema ends the experiment: the baseline
	// the candidate was compared against is gone.
	if _, err := c.RegisterSchemaText(ctx, live); err != nil {
		t.Fatal(err)
	}
	resp = post(t, hs, "/v1/schemas/shaded/shadow", "t0", nil)
	resp.Body.Close()
	greq, _ := http.NewRequest(http.MethodGet, hs.URL+"/v1/schemas/shaded/shadow", nil)
	gresp, err := hs.Client().Do(greq)
	if err != nil {
		t.Fatal(err)
	}
	gresp.Body.Close()
	if gresp.StatusCode != http.StatusNotFound {
		t.Fatalf("shadow report after live re-registration: HTTP %d, want 404", gresp.StatusCode)
	}
}

// TestShadowIdenticalVersionsAgree is the control: shadowing a candidate
// with identical semantics must report zero divergence — the comparison
// machinery itself does not invent differences.
func TestShadowIdenticalVersionsAgree(t *testing.T) {
	live := "schema calm\nsource x\nsynth y = x * 2\ntarget y"
	ctx := context.Background()
	_, _, hs, c := newTestStack(t, runtime.Config{}, nil)
	if _, err := c.RegisterSchemaText(ctx, live); err != nil {
		t.Fatal(err)
	}
	resp := post(t, hs, "/v1/schemas", "t0", api.SchemaRequest{Text: live, Shadow: true})
	drainBody(t, resp, nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("shadow registration: HTTP %d", resp.StatusCode)
	}
	const n = 8
	for i := 0; i < n; i++ {
		if _, err := c.EvalValues(ctx, "calm", "", map[string]value.Value{"x": value.Int(int64(i))}); err != nil {
			t.Fatal(err)
		}
	}
	deadline := time.Now().Add(5 * time.Second)
	for {
		rep, err := c.ShadowReport(ctx, "calm")
		if err != nil {
			t.Fatal(err)
		}
		ts := rep.Tenants["t0"]
		if ts.Diverged > 0 {
			t.Fatalf("identical versions diverged: %+v", ts)
		}
		if ts.Sampled+rep.Skipped >= n {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("shadow comparisons never completed: %+v", rep)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestShadowRequiresLive: shadow registration without a live schema of
// that name is a 404 — there is nothing to compare against.
func TestShadowRequiresLive(t *testing.T) {
	_, _, hs, _ := newTestStack(t, runtime.Config{}, nil)
	resp := post(t, hs, "/v1/schemas", "t0",
		api.SchemaRequest{Text: "schema ghost\nsource x\nsynth y = x\ntarget y", Shadow: true})
	drainBody(t, resp, nil)
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("shadow without live: HTTP %d, want 404", resp.StatusCode)
	}
}

// TestBinaryRestartRecovery crosses the durable registry with the binary
// wire's reconnect path: a schema registered and bound over dfbin against
// generation one must survive a server restart on the same data
// directory, with the client transparently redialing — Hello handshake,
// proactive re-bind of every known bind — and evaluating against
// generation two without re-registering.
func TestBinaryRestartRecovery(t *testing.T) {
	dir := t.TempDir()
	ctx := context.Background()

	newGen := func(addr string) (*Server, string) {
		t.Helper()
		svc := runtime.New(runtime.Config{})
		srv, err := Open(Config{Service: svc, DataDir: dir})
		if err != nil {
			t.Fatal(err)
		}
		ln, err := net.Listen("tcp", addr)
		if err != nil {
			t.Fatal(err)
		}
		go srv.ServeBinary(ln)
		t.Cleanup(func() {
			if !srv.Draining() {
				srv.Drain(context.Background())
			}
		})
		return srv, ln.Addr().String()
	}

	srv1, addr := newGen("127.0.0.1:0")
	c := binClient(t, "dfbin://"+addr, client.WithTenant("t0"))
	ack, err := c.RegisterSchemaText(ctx, durableText)
	if err != nil {
		t.Fatal(err)
	}
	// The binary RegisterAck carries the version chain fields too.
	if ack.Version != 1 || ack.Fingerprint != fmt.Sprintf("%016x", fingerprintOf(t, durableText)) {
		t.Fatalf("binary ack = %+v", ack)
	}
	r1, err := c.EvalValues(ctx, "billing", "", map[string]value.Value{"amount": value.Int(50)})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := srv1.Drain(ctx); err != nil {
		t.Fatal(err)
	}

	srv2, _ := newGen(addr) // same port: the client's dial target is unchanged
	if rec := srv2.Recovery(); rec.Schemas != 1 {
		t.Fatalf("recovery = %+v, want 1 schema", rec)
	}
	var r2 api.EvalResult
	deadline := time.Now().Add(5 * time.Second)
	for {
		// The same client, no re-registration: the first attempt may land on
		// a connection the old server closed; the retry dials generation two
		// and restores the bind before replaying.
		r2, err = c.EvalValues(ctx, "billing", "", map[string]value.Value{"amount": value.Int(50)})
		if err == nil {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("eval after restart: %v", err)
		}
		time.Sleep(20 * time.Millisecond)
	}
	if r2.Error != "" || fmt.Sprint(r2.Values) != fmt.Sprint(r1.Values) {
		t.Fatalf("restart changed the answer: %+v vs %+v", r2, r1)
	}
}

// TestAsyncResultTimerSwept covers the TTL-timer bugfix pair: a delivered
// result removes its registry entry (and stops its timer) immediately,
// and Drain sweeps whatever is still pending instead of leaving timers
// to fire into a dead server.
func TestAsyncResultTimerSwept(t *testing.T) {
	ctx := context.Background()
	_, srv, hs, c := newTestStack(t, runtime.Config{},
		func(cfg *Config) { cfg.ResultTTL = time.Hour })

	countPending := func() int {
		n := 0
		srv.results.Range(func(any, any) bool { n++; return true })
		return n
	}

	id, err := c.EvalAsync(ctx, api.EvalRequest{Schema: "quickstart",
		Sources: map[string]any{"visits": 3, "spend": 10}})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.Result(ctx, id); err != nil {
		t.Fatal(err)
	}
	if n := countPending(); n != 0 {
		t.Fatalf("%d pending results after delivery, want 0", n)
	}

	// Undelivered results: with an hour-long TTL only the drain sweep can
	// clear them.
	for i := 0; i < 3; i++ {
		if _, err := c.EvalAsync(ctx, api.EvalRequest{Schema: "quickstart",
			Sources: map[string]any{"visits": 3, "spend": 10}}); err != nil {
			t.Fatal(err)
		}
	}
	deadline := time.Now().Add(5 * time.Second)
	for countPending() != 3 {
		if time.Now().After(deadline) {
			t.Fatalf("pending = %d, want 3", countPending())
		}
		time.Sleep(5 * time.Millisecond)
	}
	if _, err := srv.Drain(ctx); err != nil {
		t.Fatal(err)
	}
	hs.Close()
	if n := countPending(); n != 0 {
		t.Fatalf("%d pending results survived drain, want 0", n)
	}
}

// TestDrainWakesLongPoll: a long poll parked in handleResult must not
// ride out its full timeout when the server begins draining — it is
// woken immediately, delivering the result if it is already there and
// 503 otherwise.
func TestDrainWakesLongPoll(t *testing.T) {
	ctx := context.Background()
	release := make(chan struct{})
	svc := runtime.New(runtime.Config{Workers: 1})
	srv := New(Config{Service: svc, ResultTTL: time.Hour})
	srv.schemas["blocker"] = newEntry(blockerSchema(t, release), "", "", 1)
	hs := httptest.NewServer(srv.Handler())
	defer hs.Close()
	c, err := client.New(hs.URL, client.WithTenant("t0"))
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	id, err := c.EvalAsync(ctx, api.EvalRequest{Schema: "blocker", Sources: map[string]any{"x": 1}})
	if err != nil {
		t.Fatal(err)
	}

	var wg sync.WaitGroup
	wg.Add(1)
	var pollStatus int
	go func() {
		defer wg.Done()
		req, _ := http.NewRequest(http.MethodGet, hs.URL+"/v1/results/"+id+"?timeout=300s", nil)
		req.Header.Set(api.TenantHeader, "t0")
		resp, err := hs.Client().Do(req)
		if err != nil {
			return
		}
		resp.Body.Close()
		pollStatus = resp.StatusCode
	}()
	time.Sleep(50 * time.Millisecond) // let the poll park

	drained := make(chan struct{})
	go func() {
		defer close(drained)
		ctx, cancel := context.WithTimeout(ctx, 10*time.Second)
		defer cancel()
		srv.Drain(ctx)
	}()
	time.Sleep(20 * time.Millisecond) // drain flips, then blocks on the eval

	done := make(chan struct{})
	go func() { wg.Wait(); close(done) }()
	select {
	case <-done:
	case <-time.After(2 * time.Second):
		t.Fatal("long poll still parked after drain began")
	}
	if pollStatus != http.StatusServiceUnavailable {
		t.Fatalf("woken long poll got HTTP %d, want 503", pollStatus)
	}
	close(release) // let the blocked eval finish so drain completes
	<-drained
}

// TestAsyncResultNotDurableAcrossRestart pins the restart contract for
// async result IDs: they are process state, not registry state. The ID
// must answer a clean, immediate 404 after a restart on the HTTP wire —
// never a parked long-poll or a 500 — and the dfbin wire, which has no
// async-results surface at all, must refuse with a typed error instead
// of hanging. The contract is documented under "Durability" in
// DESIGN.md.
func TestAsyncResultNotDurableAcrossRestart(t *testing.T) {
	dir := t.TempDir()
	ctx := context.Background()

	srv1, _, c1 := newDurableStack(t, dir, nil)
	if _, err := c1.RegisterSchemaText(ctx, durableText); err != nil {
		t.Fatal(err)
	}
	id, err := c1.EvalAsync(ctx, api.EvalRequest{Schema: "billing",
		Sources: map[string]any{"amount": 120}})
	if err != nil {
		t.Fatal(err)
	}
	// Drain without ever fetching: generation one finishes the eval
	// (Drain waits on it) and sweeps the undelivered result.
	if _, err := srv1.Drain(ctx); err != nil {
		t.Fatal(err)
	}

	srv2, hs2, c2 := newDurableStack(t, dir, nil)

	// Raw HTTP with a long-poll window that would park for minutes if the
	// unknown ID were treated as still pending: the 404 must be
	// immediate, because an ID the server has never heard of can never
	// become ready.
	req, err := http.NewRequest(http.MethodGet, hs2.URL+"/v1/results/"+id+"?timeout=120s", nil)
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set(api.TenantHeader, "t0")
	start := time.Now()
	resp, err := hs2.Client().Do(req)
	if err != nil {
		t.Fatal(err)
	}
	body, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("post-restart poll: HTTP %d (%s), want 404", resp.StatusCode, body)
	}
	if !strings.Contains(string(body), "unknown or expired result id") {
		t.Fatalf("post-restart poll body %q lacks the contract message", body)
	}
	if d := time.Since(start); d > 5*time.Second {
		t.Fatalf("post-restart poll took %v; the 404 must not wait out the long-poll window", d)
	}

	// The typed client surfaces the same 404 as an error.
	if _, err := c2.Result(ctx, id); err == nil ||
		!strings.Contains(err.Error(), "unknown or expired result id") {
		t.Fatalf("typed client post-restart Result = %v, want the 404 contract error", err)
	}

	// The binary wire: no async-results frame exists, and the client says
	// so up front rather than inventing one.
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go srv2.ServeBinary(ln)
	bc := binClient(t, "dfbin://"+ln.Addr().String(), client.WithTenant("t0"))
	if _, err := bc.Result(ctx, id); err == nil ||
		!strings.Contains(err.Error(), "JSON/HTTP") {
		t.Fatalf("dfbin Result = %v, want a typed HTTP-only refusal", err)
	}
}

// TestShadowDivergenceTrace: a retained diverging example carries a
// virtual-time replay of both versions — both verdicts named with their
// versions, then each side's event timeline — so the report explains how
// the candidate reached a different decision, not just that it did.
func TestShadowDivergenceTrace(t *testing.T) {
	ctx := context.Background()
	_, _, hs, c := newTestStack(t, runtime.Config{}, nil)

	if _, err := c.RegisterSchemaText(ctx,
		"schema shaded\nsource x\nsynth y = x + 1\ntarget y"); err != nil {
		t.Fatal(err)
	}
	resp := post(t, hs, "/v1/schemas", "t0",
		api.SchemaRequest{Text: "schema shaded\nsource x\nsynth y = x + 2\ntarget y", Shadow: true})
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("shadow registration: HTTP %d", resp.StatusCode)
	}

	if _, err := c.EvalValues(ctx, "shaded", "", map[string]value.Value{"x": value.Int(3)}); err != nil {
		t.Fatal(err)
	}
	var ex api.ShadowExample
	deadline := time.Now().Add(5 * time.Second)
	for {
		rep, err := c.ShadowReport(ctx, "shaded")
		if err != nil {
			t.Fatal(err)
		}
		if ts := rep.Tenants["t0"]; len(ts.Examples) > 0 {
			ex = ts.Examples[0]
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("no diverging example retained")
		}
		time.Sleep(10 * time.Millisecond)
	}

	for _, want := range []string{
		`live v1 verdict: {"y":4}`,
		`shadow v2 verdict: {"y":5}`,
		"--- live v1 replay ---",
		"--- shadow v2 replay ---",
		"** terminal snapshot **",
		"synthesized",
	} {
		if !strings.Contains(ex.Trace, want) {
			t.Errorf("example trace lacks %q:\n%s", want, ex.Trace)
		}
	}
}
