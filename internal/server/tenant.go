package server

import (
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/api"
)

// TenantLimits bounds each tenant's admission. The zero value means
// unlimited — every tenant gets the same limits; tenants themselves are
// created on first use.
type TenantLimits struct {
	// RatePerSec is the token-bucket refill rate in instances/second
	// (batch members each consume one token). 0 disables rate limiting.
	RatePerSec float64
	// Burst is the bucket capacity; it defaults to max(RatePerSec, 1)
	// when rate limiting is on.
	Burst int
	// MaxInFlight bounds the tenant's concurrently evaluating instances.
	// 0 disables the quota.
	MaxInFlight int
}

// shedCause classifies a 429 for the per-tenant counters.
type shedCause int

const (
	shedNone shedCause = iota
	shedRate
	shedQuota
	shedQueue
	// shedTooLarge is permanent, not transient: the request asks for more
	// instances at once than the tenant's bucket can ever hold, so no
	// amount of waiting admits it. The server answers 400, not 429.
	shedTooLarge
)

// tenant is one tenant's admission state: a token bucket, an in-flight
// gauge, and shed counters. Completion counts and latency percentiles
// live in runtime.Stats.Tenants — the runtime tags every instance with
// its tenant.
type tenant struct {
	limits TenantLimits

	mu     sync.Mutex // guards the bucket
	tokens float64
	last   time.Time

	inFlight  atomic.Int64
	accepted  atomic.Uint64
	shedRate  atomic.Uint64
	shedQuota atomic.Uint64
	shedQueue atomic.Uint64
}

func newTenant(limits TenantLimits) *tenant {
	if limits.RatePerSec > 0 && limits.Burst <= 0 {
		limits.Burst = int(max(limits.RatePerSec, 1))
	}
	return &tenant{
		limits: limits,
		tokens: float64(limits.Burst),
		last:   time.Now(),
	}
}

// admit tries to claim n instances for the tenant. On success the
// tenant's in-flight gauge has been raised by n (the caller must release
// it as instances complete). On refusal it reports the cause and how long
// the caller should wait before retrying.
func (t *tenant) admit(n int) (ok bool, cause shedCause, retryAfter time.Duration) {
	if lim := t.limits.MaxInFlight; lim > 0 {
		if cur := t.inFlight.Add(int64(n)); cur > int64(lim) {
			t.inFlight.Add(int64(-n))
			t.shedQuota.Add(uint64(n))
			// The quota frees as in-flight instances finish; a beat of a
			// typical instance is the honest hint.
			return false, shedQuota, 10 * time.Millisecond
		}
	} else {
		t.inFlight.Add(int64(n))
	}
	if t.limits.RatePerSec > 0 {
		if n > t.limits.Burst {
			// Tokens never exceed Burst, so this request can never be
			// admitted; a Retry-After would send the client into a futile
			// retry loop against an idle server. Answered 400 and, like
			// other client errors, kept out of the shed counters — they
			// track transient overload, which this is not.
			t.inFlight.Add(int64(-n))
			return false, shedTooLarge, 0
		}
		t.mu.Lock()
		now := time.Now()
		t.tokens = min(float64(t.limits.Burst), t.tokens+now.Sub(t.last).Seconds()*t.limits.RatePerSec)
		t.last = now
		if t.tokens < float64(n) {
			need := float64(n) - t.tokens
			t.mu.Unlock()
			t.inFlight.Add(int64(-n))
			t.shedRate.Add(uint64(n))
			return false, shedRate, time.Duration(need / t.limits.RatePerSec * float64(time.Second))
		}
		t.tokens -= float64(n)
		t.mu.Unlock()
	}
	return true, shedNone, 0
}

// accept counts n instances as admitted to the runtime. Separate from
// admit because the caller's global checks (queue watermark, draining)
// run between the two; only what passes them all is truly accepted.
func (t *tenant) accept(n int) { t.accepted.Add(uint64(n)) }

// unaccept reverses accept for admitted instances that never reached
// the runtime after all (decode/resolve failure, batch second-step
// refusal), keeping the accepted counter equal to instances run.
func (t *tenant) unaccept(n int) { t.accepted.Add(^uint64(n - 1)) }

// release returns n in-flight claims (instances completed).
func (t *tenant) release(n int) { t.inFlight.Add(int64(-n)) }

// unadmit rolls back a successful admit whose request was then refused
// by a later layer (global watermark, draining): the in-flight claim
// and the rate-bucket tokens both return, so the shed layers compose
// instead of compounding — a tenant shed by the global queue must not
// also find its rate budget burned once the overload clears.
func (t *tenant) unadmit(n int) {
	t.inFlight.Add(int64(-n))
	if t.limits.RatePerSec > 0 {
		t.mu.Lock()
		t.tokens = min(float64(t.limits.Burst), t.tokens+float64(n))
		t.mu.Unlock()
	}
}

// shedByQueue counts a global-watermark shed against the tenant.
func (t *tenant) shedByQueue(n int) { t.shedQueue.Add(uint64(n)) }

// admission snapshots the tenant's counters for /v1/stats.
func (t *tenant) admission() api.TenantAdmission {
	return api.TenantAdmission{
		Accepted:  t.accepted.Load(),
		ShedRate:  t.shedRate.Load(),
		ShedQuota: t.shedQuota.Load(),
		ShedQueue: t.shedQueue.Load(),
		InFlight:  t.inFlight.Load(),
	}
}
