package server

// Shadow evaluation: a candidate schema version registered with
// shadow=true runs alongside the live version on a sampled fraction of the
// owning tenant's traffic, and the server reports where the two versions'
// decisions diverge — the dark-launch check before cutting a new version
// over. Shadow instances are background work: they run with
// runtime.Request.Shadow set (invisible to serving metrics and the
// overload sampler), under their own in-flight cap, and a sampled eval
// that cannot run (cap hit, drain) is counted as skipped rather than
// queued — the live path never waits for its shadow.

import (
	"encoding/json"
	"fmt"
	"reflect"
	"strings"
	"sync"
	"sync/atomic"

	"repro/internal/api"
	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/runtime"
	"repro/internal/sim"
	"repro/internal/simdb"
	"repro/internal/trace"
	"repro/internal/value"
)

// maxShadowExamples bounds the diverging source vectors retained per
// tenant for the report.
const maxShadowExamples = 4

// shadowState is one schema's running comparison, attached to the live
// entry it shadows (re-registering the live schema detaches it: the
// experiment's baseline is gone).
type shadowState struct {
	cand        *schemaEntry // the candidate version under test
	sampleEvery uint64
	ctr         atomic.Uint64 // live evals seen, for stride sampling
	inflight    atomic.Int64
	skipped     atomic.Uint64

	mu      sync.Mutex
	tenants map[string]*shadowTenantState
}

type shadowTenantState struct {
	sampled  uint64
	diverged uint64
	errs     uint64
	examples []api.ShadowExample
}

func newShadowState(cand *schemaEntry, sampleEvery int) *shadowState {
	if sampleEvery < 1 {
		sampleEvery = 1
	}
	return &shadowState{cand: cand, sampleEvery: uint64(sampleEvery),
		tenants: make(map[string]*shadowTenantState)}
}

// shadowCapture carries one sampled live eval from its admission to the
// candidate's completion: the source vector, the live decision, and where
// to record the comparison.
type shadowCapture struct {
	sh       *shadowState
	live     *schemaEntry // the live version the candidate shadows
	tenant   string
	strategy engine.Strategy
	src      map[string]value.Value
	liveVals map[string]any
	liveErr  string
}

// shadowSample decides on the eval hot path whether this live eval is
// sampled for shadow comparison; the unsampled (and un-shadowed) cost is
// one atomic load. Sources arrive either name-keyed (src) or as the binary
// path's dense slots, which are copied out here — the pooled slot buffer
// recycles when the live eval completes, the shadow outlives it.
func (s *Server) shadowSample(entry *schemaEntry, tenantName string, st engine.Strategy, src map[string]value.Value, slots []value.Value) *shadowCapture {
	sh := entry.shadow.Load()
	if sh == nil {
		return nil
	}
	if (sh.ctr.Add(1)-1)%sh.sampleEvery != 0 {
		return nil
	}
	shc := &shadowCapture{sh: sh, live: entry, tenant: tenantName, strategy: st, src: src}
	if src == nil {
		m := make(map[string]value.Value)
		sch := entry.schema
		for id := 0; id < sch.NumAttrs() && id < len(slots); id++ {
			a := sch.Attr(core.AttrID(id))
			if a.IsSource() && !slots[id].IsNull() {
				m[a.Name] = slots[id]
			}
		}
		shc.src = m
	}
	return shc
}

// shadowFinish runs inside the live instance's Done callback: it captures
// the live decision while the pooled snapshot is still valid, then submits
// the candidate as background work. nil capture (unsampled) is a no-op.
func (s *Server) shadowFinish(shc *shadowCapture, entry *schemaEntry, res *engine.Result) {
	if shc == nil {
		return
	}
	shc.liveVals = targetJSON(entry, res)
	if res.Err != nil {
		shc.liveErr = res.Err.Error()
	}
	sh := shc.sh
	if s.Draining() {
		sh.skipped.Add(1)
		return
	}
	if sh.inflight.Add(1) > int64(s.cfg.MaxShadowInFlight) {
		sh.inflight.Add(-1)
		sh.skipped.Add(1)
		return
	}
	cand := sh.cand
	err := s.svc.Submit(runtime.Request{
		Schema:   cand.schema,
		Sources:  shc.src,
		Strategy: shc.strategy,
		Shadow:   true,
		Done: func(res *engine.Result) {
			shadowVals := targetJSON(cand, res)
			shadowErr := ""
			if res.Err != nil {
				shadowErr = res.Err.Error()
			}
			sh.recordOutcome(shc, shadowVals, shadowErr)
			sh.inflight.Add(-1)
		},
	})
	if err != nil {
		// Service closed under us (drain race): coverage lost, counted.
		sh.inflight.Add(-1)
		sh.skipped.Add(1)
	}
}

// targetJSON renders an instance's target values in the JSON-any form of
// EvalResult.Values — a deep copy, so nothing aliases the pooled snapshot.
func targetJSON(entry *schemaEntry, res *engine.Result) map[string]any {
	out := make(map[string]any, len(entry.targetIDs))
	for i, id := range entry.targetIDs {
		out[entry.targetNames[i]] = api.ToJSON(res.Snapshot.Val(id))
	}
	return out
}

// recordOutcome folds one completed comparison into the per-tenant
// counters. Divergence means the versions decided differently: any target
// value differing (targets are compared by name over both versions'
// target sets; a target only one version has diverges unless it is ⟂), or
// exactly one side erroring.
func (sh *shadowState) recordOutcome(shc *shadowCapture, shadowVals map[string]any, shadowErr string) {
	liveOK, shadowOK := shc.liveErr == "", shadowErr == ""
	diverged := liveOK != shadowOK
	if liveOK && shadowOK {
		diverged = !targetsEqual(shc.liveVals, shadowVals)
	}
	sh.mu.Lock()
	ts := sh.tenants[shc.tenant]
	if ts == nil {
		ts = &shadowTenantState{}
		sh.tenants[shc.tenant] = ts
	}
	ts.sampled++
	if diverged {
		ts.diverged++
		if !shadowOK && liveOK {
			ts.errs++
		}
		if len(ts.examples) < maxShadowExamples {
			ts.examples = append(ts.examples, api.ShadowExample{
				Sources:     api.EncodeSources(shc.src),
				Live:        shc.liveVals,
				Shadow:      shadowVals,
				LiveError:   shc.liveErr,
				ShadowError: shadowErr,
				Trace:       sh.divergenceTrace(shc, shadowVals, shadowErr),
			})
		}
	}
	sh.mu.Unlock()
}

// divergenceTrace replays both versions of a diverging eval in virtual
// time — sim clock, unbounded database, the eval's own strategy — and
// renders one combined record: both verdicts up top, then each side's
// internal/trace timeline, so a retained example explains *how* the two
// versions reached different decisions, not just that they did. Targets
// are deterministic in the sources, so the replayed decisions match the
// recorded ones; only the wall-clock interleaving is idealized. Replay is
// bounded by maxShadowExamples per tenant, off every hot path.
func (sh *shadowState) divergenceTrace(shc *shadowCapture, shadowVals map[string]any, shadowErr string) string {
	var b strings.Builder
	fmt.Fprintf(&b, "live v%d verdict: %s\n", shc.live.version, verdictJSON(shc.liveVals, shc.liveErr))
	fmt.Fprintf(&b, "shadow v%d verdict: %s\n", sh.cand.version, verdictJSON(shadowVals, shadowErr))
	fmt.Fprintf(&b, "--- live v%d replay ---\n%s", shc.live.version, replayTrace(shc.live.schema, shc.strategy, shc.src))
	fmt.Fprintf(&b, "--- shadow v%d replay ---\n%s", sh.cand.version, replayTrace(sh.cand.schema, shc.strategy, shc.src))
	return b.String()
}

// verdictJSON renders one side's decision: its target values, or its
// instance error.
func verdictJSON(vals map[string]any, errMsg string) string {
	if errMsg != "" {
		return "error: " + errMsg
	}
	j, err := json.Marshal(vals)
	if err != nil {
		return fmt.Sprintf("%v", vals)
	}
	return string(j)
}

// replayTrace runs one instance of s under the simulated clock with a
// trace recorder attached and renders its timeline.
func replayTrace(s *core.Schema, st engine.Strategy, src map[string]value.Value) string {
	rec := trace.NewRecorder(s)
	sm := sim.New()
	e := &engine.Engine{Sim: sm, DB: &simdb.Unbounded{S: sm}, Strategy: st, Hooks: rec.Hooks()}
	res := e.Start(s, src, nil)
	sm.Run()
	if res.Err != nil {
		return fmt.Sprintf("replay error: %v\n%s", res.Err, rec.Trace().Render())
	}
	return rec.Trace().Render()
}

// targetsEqual compares two JSON-form target maps over the union of their
// keys; a key only one side has counts as equal only when its value is
// null (a missing target is ⟂).
func targetsEqual(a, b map[string]any) bool {
	for k, va := range a {
		if !reflect.DeepEqual(va, b[k]) {
			return false
		}
	}
	for k, vb := range b {
		if _, ok := a[k]; !ok && vb != nil {
			return false
		}
	}
	return true
}

// report renders the running comparison for GET /v1/schemas/{name}/shadow.
func (sh *shadowState) report(name string, liveVersion uint64) api.ShadowReport {
	rep := api.ShadowReport{
		Schema:        name,
		LiveVersion:   liveVersion,
		ShadowVersion: sh.cand.version,
		SampleEvery:   int(sh.sampleEvery),
		Skipped:       sh.skipped.Load(),
		Tenants:       make(map[string]api.ShadowTenant),
	}
	sh.mu.Lock()
	for tenant, ts := range sh.tenants {
		rep.Tenants[tenant] = api.ShadowTenant{
			Sampled:  ts.sampled,
			Diverged: ts.diverged,
			Errors:   ts.errs,
			Examples: append([]api.ShadowExample(nil), ts.examples...),
		}
	}
	sh.mu.Unlock()
	return rep
}
