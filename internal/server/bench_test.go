package server

import (
	"context"
	"net"
	"net/http/httptest"
	stdruntime "runtime"
	"testing"
	"time"

	"repro/internal/client"
	"repro/internal/flows"
	"repro/internal/runtime"
)

// benchServeHTTP drives the full network stack — typed client, loopback
// HTTP, tenant admission, server, runtime — with the production-shaped
// query layer of the e2e acceptance run (Instant backend, batching,
// dedup, cache) and reports client-observed instances per second.
// reqBatch is the number of instances per HTTP request: 1 measures
// per-request protocol overhead, larger values amortize it exactly like
// `dfserve -remote -reqbatch`.
func benchServeHTTP(b *testing.B, reqBatch int) {
	svc := runtime.New(runtime.Config{
		Backend: runtime.Instant{},
		Query: runtime.QueryConfig{
			BatchSize:   32,
			BatchWindow: 200 * time.Microsecond,
			Dedup:       true,
			CacheSize:   65536,
		},
	})
	srv := New(Config{Service: svc})
	hs := httptest.NewServer(srv.Handler())
	defer hs.Close()
	c, err := client.New(hs.URL, client.WithTenant("bench"), client.WithMaxConns(128))
	if err != nil {
		b.Fatal(err)
	}
	defer c.Close()

	_, sources, err := flows.ByName("quickstart")
	if err != nil {
		b.Fatal(err)
	}
	sourcesFor, err := flows.Spread(sources, 512)
	if err != nil {
		b.Fatal(err)
	}

	// Warm the connection pool, the JIT-shaped schema state, and the
	// attribute cache so the measured window is steady state rather than
	// TCP handshakes.
	if _, err := client.RunLoad(context.Background(), c, client.Load{
		Schema: "quickstart", Sources: sources, SourcesFor: sourcesFor,
		Count: 4096, Concurrency: 64, BatchSize: reqBatch,
	}); err != nil {
		b.Fatal(err)
	}
	svc.ResetStats()
	stdruntime.GC() // clean heap: keep warmup/prior-benchmark GC debt out of the window

	b.ReportAllocs()
	b.ResetTimer()
	rep, err := client.RunLoad(context.Background(), c, client.Load{
		Schema:      "quickstart",
		Sources:     sources,
		SourcesFor:  sourcesFor,
		Count:       b.N,
		Concurrency: 64,
		BatchSize:   reqBatch,
	})
	b.StopTimer()
	if err != nil {
		b.Fatal(err)
	}
	if rep.Failed > 0 || rep.Errors > 0 {
		b.Fatalf("load run not clean: %+v", rep)
	}
	b.ReportMetric(rep.Throughput, "inst/s")
	srv.Drain(context.Background())
}

// BenchmarkServeHTTPBatched is the e2e acceptance configuration: 32
// instances per HTTP request (dfserve -remote -reqbatch 32).
func BenchmarkServeHTTPBatched(b *testing.B) { benchServeHTTP(b, 32) }

// BenchmarkServeHTTPSingle pays the full HTTP/JSON round trip per
// instance — the per-request protocol overhead floor.
func BenchmarkServeHTTPSingle(b *testing.B) { benchServeHTTP(b, 1) }

// benchServeBinary is benchServeHTTP over the dfbin wire: the same
// warmed production-shaped stack, but driven through real TCP
// connections speaking length-prefixed frames with bound schemas and
// dense attribute IDs instead of HTTP/JSON. The delta between the two
// benchmark families is exactly the protocol cost.
func benchServeBinary(b *testing.B, reqBatch int) {
	svc := runtime.New(runtime.Config{
		Backend: runtime.Instant{},
		Query: runtime.QueryConfig{
			BatchSize:   32,
			BatchWindow: 200 * time.Microsecond,
			Dedup:       true,
			CacheSize:   65536,
		},
	})
	srv := New(Config{Service: svc})
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		b.Fatal(err)
	}
	go srv.ServeBinary(ln)
	c, err := client.New("dfbin://"+ln.Addr().String(),
		client.WithTenant("bench"), client.WithMaxConns(128))
	if err != nil {
		b.Fatal(err)
	}
	defer c.Close()

	_, sources, err := flows.ByName("quickstart")
	if err != nil {
		b.Fatal(err)
	}
	sourcesFor, err := flows.Spread(sources, 512)
	if err != nil {
		b.Fatal(err)
	}

	if _, err := client.RunLoad(context.Background(), c, client.Load{
		Schema: "quickstart", Sources: sources, SourcesFor: sourcesFor,
		Count: 4096, Concurrency: 64, BatchSize: reqBatch,
	}); err != nil {
		b.Fatal(err)
	}
	svc.ResetStats()
	stdruntime.GC()

	b.ReportAllocs()
	b.ResetTimer()
	rep, err := client.RunLoad(context.Background(), c, client.Load{
		Schema:      "quickstart",
		Sources:     sources,
		SourcesFor:  sourcesFor,
		Count:       b.N,
		Concurrency: 64,
		BatchSize:   reqBatch,
	})
	b.StopTimer()
	if err != nil {
		b.Fatal(err)
	}
	if rep.Failed > 0 || rep.Errors > 0 {
		b.Fatalf("load run not clean: %+v", rep)
	}
	b.ReportMetric(rep.Throughput, "inst/s")
	srv.Drain(context.Background())
}

// BenchmarkServeBinaryBatched: 32 instances per EvalBatch frame
// (dfserve -remote dfbin://... -reqbatch 32), columnar encoding.
func BenchmarkServeBinaryBatched(b *testing.B) { benchServeBinary(b, 32) }

// BenchmarkServeBinarySingle pays one Eval frame round trip per
// instance — the binary protocol's per-request overhead floor, to
// compare against BenchmarkServeHTTPSingle.
func BenchmarkServeBinarySingle(b *testing.B) { benchServeBinary(b, 1) }

// BenchmarkServePeerForwarded measures the front-end tier's forwarding
// cost: a 2-node in-process fleet (real TCP between peers), driven over
// dfbin through one node, so roughly half the attribute identities home
// on the other node and every launch of those rides a Forward frame to
// its home's cache/single-flight tables. The delta against
// BenchmarkServeBinaryBatched is the price of fleet-wide sharing.
func BenchmarkServePeerForwarded(b *testing.B) {
	nodes := newFleet(b, fleetOpts{nodes: 2})
	c := fleetClient(b, nodes[0], "bench")

	_, sources, err := flows.ByName("quickstart")
	if err != nil {
		b.Fatal(err)
	}
	sourcesFor, err := flows.Spread(sources, 512)
	if err != nil {
		b.Fatal(err)
	}

	if _, err := client.RunLoad(context.Background(), c, client.Load{
		Schema: "quickstart", Sources: sources, SourcesFor: sourcesFor,
		Count: 4096, Concurrency: 64, BatchSize: 32,
	}); err != nil {
		b.Fatal(err)
	}
	for _, n := range nodes {
		n.svc.ResetStats()
	}
	stdruntime.GC()

	b.ReportAllocs()
	b.ResetTimer()
	rep, err := client.RunLoad(context.Background(), c, client.Load{
		Schema:      "quickstart",
		Sources:     sources,
		SourcesFor:  sourcesFor,
		Count:       b.N,
		Concurrency: 64,
		BatchSize:   32,
	})
	b.StopTimer()
	if err != nil {
		b.Fatal(err)
	}
	if rep.Failed > 0 || rep.Errors > 0 {
		b.Fatalf("load run not clean: %+v", rep)
	}
	var forwards, fallbacks uint64
	for _, n := range nodes {
		st := n.svc.Stats()
		forwards += st.PeerForwards
		fallbacks += st.PeerFallbacks
	}
	if b.N > 512 && forwards == 0 {
		b.Fatal("no peer forwards: the benchmark is not measuring the peer tier")
	}
	if fallbacks > 0 {
		b.Fatalf("%d fallbacks on a healthy in-process fleet", fallbacks)
	}
	b.ReportMetric(rep.Throughput, "inst/s")
}
