//go:build race

package server

// raceEnabled reports that this test binary was built with -race, whose
// ~10x CPU instrumentation cost invalidates wall-clock latency assertions.
const raceEnabled = true
