package server

import (
	"context"
	"fmt"
	"math/rand"
	"net"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/client"
	"repro/internal/flows"
	"repro/internal/runtime"
)

// The peer-tier chaos matrix: every way a home node can fail under live
// forwarded load — killed abruptly, stalled (accepting forwards whose
// flights never complete), or draining gracefully — crossed with seeds
// that vary the disruption point and traffic interleaving. The invariant
// is the same in every cell: the survivors surface zero failures and zero
// oracle divergence, the fallback breaker trips the dead link out of the
// ring, and (where the failure is recoverable) forwarding resumes after
// the peer comes back. The single-node sibling of this suite is
// internal/runtime's chaos_test.go; this one exercises the network tier
// above it.

type peerChaos struct {
	name string
	// disrupt takes down nodes[1] once load is mid-flight; recover (nil
	// when the failure is terminal in-process) brings it back.
	disrupt func(t *testing.T, n *fleetNode)
	recover func(t *testing.T, n *fleetNode)
}

var peerChaosScenarios = []peerChaos{
	{
		name:    "kill",
		disrupt: func(t *testing.T, n *fleetNode) { killNode(n) },
	},
	{
		name:    "stall",
		disrupt: func(t *testing.T, n *fleetNode) { n.backend.stall() },
		recover: func(t *testing.T, n *fleetNode) { n.backend.unstall() },
	},
	{
		name: "drain",
		disrupt: func(t *testing.T, n *fleetNode) {
			ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
			defer cancel()
			if _, err := n.srv.Drain(ctx); err != nil {
				t.Errorf("draining the home node: %v", err)
			}
		},
	},
}

func TestPeerChaosMatrix(t *testing.T) {
	for _, sc := range peerChaosScenarios {
		for seed := int64(1); seed <= 3; seed++ {
			t.Run(fmt.Sprintf("%s/seed=%d", sc.name, seed), func(t *testing.T) {
				runPeerChaos(t, sc, seed)
			})
		}
	}
}

func runPeerChaos(t *testing.T, sc peerChaos, seed int64) {
	const variants = 96
	perDriver := 400
	if testing.Short() {
		perDriver = 120
	}
	rng := rand.New(rand.NewSource(seed))

	_, sources, err := flows.ByName("quickstart")
	if err != nil {
		t.Fatal(err)
	}
	sourcesFor, err := flows.Spread(sources, variants)
	if err != nil {
		t.Fatal(err)
	}

	// Oracle answers, one per variant (the flow is deterministic).
	refSvc := runtime.New(runtime.Config{Backend: runtime.Instant{}, Workers: 4})
	refSrv := New(Config{Service: refSvc})
	t.Cleanup(func() { refSrv.Drain(context.Background()) })
	hsOracle := newOracleStack(t, refSrv)
	oracle := make([]string, variants)
	for i := range oracle {
		res, err := hsOracle.EvalValues(context.Background(), "quickstart", "", sourcesFor(i))
		if err != nil || res.Error != "" {
			t.Fatalf("oracle eval %d: %v %s", i, err, res.Error)
		}
		oracle[i] = canonJSON(t, res.Values)
	}

	// Dedup-only (no cache): every keyed query reaches the home's
	// backend, so a stalled home actually stalls forwards instead of
	// answering them from cache. A short forward timeout converts the
	// stall to a local fallback quickly; a short cooldown makes recovery
	// observable within the test.
	nodes := newFleet(t, fleetOpts{nodes: 3, gated: true, noCache: true,
		timeout: 250 * time.Millisecond, after: 2, cooldown: 300 * time.Millisecond})

	disruptAt := int64(perDriver/4 + rng.Intn(perDriver/2))
	var evals atomic.Int64
	var disrupted sync.WaitGroup
	disrupted.Add(1)
	go func() {
		defer disrupted.Done()
		for evals.Load() < disruptAt {
			time.Sleep(time.Millisecond)
		}
		sc.disrupt(t, nodes[1])
	}()

	// Per-seed interleaving: each driver walks the variant space from its
	// own random offset with its own random stride.
	drive := func(c *client.Client, count, offset, stride int) error {
		for i := 0; i < count; i++ {
			v := (offset + i*stride) % variants
			res, err := c.EvalValues(context.Background(), "quickstart", "", sourcesFor(v))
			evals.Add(1)
			if err != nil {
				return fmt.Errorf("eval %d surfaced %v", i, err)
			}
			if res.Error != "" {
				return fmt.Errorf("eval %d surfaced instance error %s", i, res.Error)
			}
			if got := canonJSON(t, res.Values); got != oracle[v] {
				return fmt.Errorf("eval %d diverged: got %s, oracle %s", i, got, oracle[v])
			}
		}
		return nil
	}

	var wg sync.WaitGroup
	errCh := make(chan error, 2)
	drivers := []*fleetNode{nodes[0], nodes[2]}
	for _, n := range drivers {
		c := fleetClient(t, n, "chaos")
		offset, stride := rng.Intn(variants), 1+rng.Intn(7)
		wg.Add(1)
		go func() {
			defer wg.Done()
			if err := drive(c, perDriver, offset, stride); err != nil {
				errCh <- err
			}
		}()
	}
	wg.Wait()
	disrupted.Wait()
	close(errCh)
	for err := range errCh {
		t.Error(err)
	}

	var trips, fallbacks uint64
	for _, n := range drivers {
		st := n.svc.Stats()
		fallbacks += st.PeerFallbacks
		trips += n.srv.peers.links[nodes[1].addr].brk.Trips()
		if err := fleetClient(t, n, "post").Health(context.Background()); err != nil {
			t.Errorf("surviving node %s unhealthy: %v", n.addr, err)
		}
	}
	if fallbacks == 0 {
		t.Error("no local fallbacks recorded; the disruption never exercised failover")
	}
	if trips == 0 {
		t.Error("no breaker trips recorded against the disrupted home")
	}

	if sc.recover != nil {
		// Bring the home back, let the cooldown lapse, and show the ring
		// heals: a fresh load round forwards to it again without a single
		// surfaced failure, and its link admits traffic.
		sc.recover(t, nodes[1])
		time.Sleep(500 * time.Millisecond) // > cooldown: breakers may probe
		before := nodes[0].svc.Stats().PeerForwards + nodes[2].svc.Stats().PeerForwards
		for _, n := range drivers {
			c := fleetClient(t, n, "heal")
			offset := rng.Intn(variants)
			if err := drive(c, perDriver/2, offset, 1); err != nil {
				t.Error(err)
			}
		}
		after := nodes[0].svc.Stats().PeerForwards + nodes[2].svc.Stats().PeerForwards
		if after <= before {
			t.Errorf("no forwards after recovery (before=%d after=%d); the breaker never closed", before, after)
		}
		for _, n := range drivers {
			if !n.srv.peers.links[nodes[1].addr].brk.Admissible() {
				t.Errorf("node %s still refuses the recovered home", n.addr)
			}
		}
	} else if sc.name == "kill" {
		// Terminal in-process failure: close the carcass so cleanup only
		// drains the survivors (same dance as the tentpole kill test).
		nodes[1].srv.drainMu.Lock()
		nodes[1].srv.draining = true
		nodes[1].srv.drainMu.Unlock()
		nodes[1].svc.Close()
	}
}

// newOracleStack serves the reference server over dfbin and returns a
// typed client on it, so oracle answers ride the same lossless codec as
// the fleet drivers'.
func newOracleStack(t *testing.T, srv *Server) *client.Client {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go srv.ServeBinary(ln)
	return binClient(t, "dfbin://"+ln.Addr().String(), client.WithTenant("oracle"))
}
