package server

// Eval-capture tests: every admitted eval on either wire lands in the
// capture with a digest that virtual replay reproduces bit-exactly, and
// the writer is fail-open — armed capture failpoints degrade the capture
// (drops counted, stats flagged) while serving latency and correctness
// are untouched. That is deliberately the opposite contract of
// fault_test.go's fail-closed registry: losing a capture record costs a
// counter, lying about durability would cost correctness.

import (
	"context"
	"net"
	"net/http/httptest"
	"testing"
	"time"

	"repro/internal/api"
	"repro/internal/capture"
	"repro/internal/client"
	"repro/internal/engine"
	"repro/internal/core"
	"repro/internal/fault"
	"repro/internal/flows"
	"repro/internal/runtime"
	"repro/internal/value"
)

// newCaptureStack is a capturing server on both wires.
func newCaptureStack(t *testing.T, dir string, rotateBytes int64) (*Server, *httptest.Server, string) {
	t.Helper()
	svc := runtime.New(runtime.Config{})
	srv, err := Open(Config{Service: svc, CaptureDir: dir, CaptureRotateBytes: rotateBytes})
	if err != nil {
		t.Fatal(err)
	}
	hs := httptest.NewServer(srv.Handler())
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go srv.ServeBinary(ln)
	t.Cleanup(func() {
		hs.Close()
		if !srv.Draining() {
			srv.Drain(context.Background())
		}
	})
	return srv, hs, "dfbin://" + ln.Addr().String()
}

func quickstartSources(i int) map[string]value.Value {
	_, base, err := flows.ByName("quickstart")
	if err != nil {
		panic(err)
	}
	m := make(map[string]value.Value, len(base))
	for name, v := range base {
		if iv, ok := v.AsInt(); ok {
			m[name] = value.Int(iv + int64(i))
		} else {
			m[name] = v
		}
	}
	return m
}

// TestCaptureBothWiresDigestParity drives singles and batches over HTTP
// and dfbin, drains, reads the capture back, and re-executes every record
// in virtual time: each recorded digest must match the deterministic
// re-execution exactly, whichever wire recorded it.
func TestCaptureBothWiresDigestParity(t *testing.T) {
	dir := t.TempDir()
	srv, hs, binAddr := newCaptureStack(t, dir, 0)
	ctx := context.Background()

	hc, err := client.New(hs.URL, client.WithTenant("alice"))
	if err != nil {
		t.Fatal(err)
	}
	defer hc.Close()
	bc := binClient(t, binAddr, client.WithTenant("bob"))

	const singles, batch = 8, 8
	for i := 0; i < singles; i++ {
		if res, err := hc.EvalValues(ctx, "quickstart", "", quickstartSources(i)); err != nil || res.Error != "" {
			t.Fatalf("HTTP eval %d: %v %s", i, err, res.Error)
		}
		if res, err := bc.EvalValues(ctx, "quickstart", "", quickstartSources(100+i)); err != nil || res.Error != "" {
			t.Fatalf("binary eval %d: %v %s", i, err, res.Error)
		}
	}
	srcs := make([]map[string]any, batch)
	for i := range srcs {
		srcs[i] = api.EncodeSources(quickstartSources(200 + i))
	}
	for _, c := range []*client.Client{hc, bc} {
		results, err := c.EvalBatch(ctx, api.BatchRequest{Schema: "quickstart", Sources: srcs})
		if err != nil {
			t.Fatal(err)
		}
		for i, res := range results {
			if res.Error != "" {
				t.Fatalf("batch item %d: %s", i, res.Error)
			}
		}
	}
	want := 2*singles + 2*batch

	if st := srv.CaptureStats(); st == nil || st.Dropped != 0 {
		t.Fatalf("capture stats before drain: %+v", st)
	}
	if _, err := srv.Drain(ctx); err != nil {
		t.Fatal(err)
	}

	got, err := capture.Read(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Records) != want || got.TornFiles != 0 {
		t.Fatalf("capture has %d records (%d torn files), want %d", len(got.Records), got.TornFiles, want)
	}
	sch, _, err := flows.ByName("quickstart")
	if err != nil {
		t.Fatal(err)
	}
	tenants := map[string]int{}
	for i := range got.Records {
		rec := &got.Records[i]
		tenants[rec.Tenant]++
		if rec.Schema != "quickstart" || rec.Fingerprint != sch.Fingerprint() {
			t.Fatalf("record %d identity: %+v", i, rec)
		}
		st, err := engine.ParseStrategy(rec.Strategy)
		if err != nil {
			t.Fatal(err)
		}
		res := engine.Run(sch, sourcesOf(rec), st)
		if d := capture.DigestResult(sch, res); d != rec.Digest {
			t.Fatalf("record %d (tenant %s): recorded digest %016x, virtual replay %016x",
				i, rec.Tenant, rec.Digest, d)
		}
	}
	if tenants["alice"] != singles+batch || tenants["bob"] != singles+batch {
		t.Fatalf("per-tenant record counts: %v", tenants)
	}
}

// TestCaptureRegisteredSchemaVirtualParity pins digest parity for
// wire-registered schemas, whose foreign results come from the
// deterministic default computes: virtual re-execution must bind the
// same computes (flows.BindDefaultComputes, as dfreplay does) and then
// reproduce every recorded digest exactly.
func TestCaptureRegisteredSchemaVirtualParity(t *testing.T) {
	const text = `
schema capreg
source amount
query risk from amount cost 2 when amount > 0
synth fee when notnull(risk) = amount / 10 + risk * 0
target fee
`
	dir := t.TempDir()
	srv, hs, _ := newCaptureStack(t, dir, 0)
	ctx := context.Background()
	hc, err := client.New(hs.URL, client.WithTenant("ops"))
	if err != nil {
		t.Fatal(err)
	}
	defer hc.Close()
	if _, err := hc.RegisterSchemaText(ctx, text); err != nil {
		t.Fatal(err)
	}
	const n = 8
	for i := 0; i < n; i++ {
		src := map[string]value.Value{"amount": value.Int(int64(10 * (i + 1)))}
		if res, err := hc.EvalValues(ctx, "capreg", "", src); err != nil || res.Error != "" {
			t.Fatalf("eval %d: %v %s", i, err, res.Error)
		}
	}
	if _, err := srv.Drain(ctx); err != nil {
		t.Fatal(err)
	}
	got, err := capture.Read(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Records) != n {
		t.Fatalf("capture has %d records, want %d", len(got.Records), n)
	}
	sch, err := core.ParseSchema(text)
	if err != nil {
		t.Fatal(err)
	}
	flows.BindDefaultComputes(sch)
	for i := range got.Records {
		rec := &got.Records[i]
		if rec.Fingerprint != sch.Fingerprint() {
			t.Fatalf("record %d fingerprint %016x != parsed %016x", i, rec.Fingerprint, sch.Fingerprint())
		}
		st, err := engine.ParseStrategy(rec.Strategy)
		if err != nil {
			t.Fatal(err)
		}
		if d := capture.DigestResult(sch, engine.Run(sch, sourcesOf(rec), st)); d != rec.Digest {
			t.Fatalf("record %d: recorded %016x, virtual %016x — default computes not bound identically",
				i, rec.Digest, d)
		}
	}
}

func sourcesOf(rec *api.CaptureRecord) map[string]value.Value {
	m := make(map[string]value.Value, len(rec.Sources))
	for _, s := range rec.Sources {
		m[s.Name] = s.Val
	}
	return m
}

// TestCaptureWriteFaultNeverPoisonsServing arms the capture append-write
// failpoint and drives both wires: every eval must keep succeeding with
// correct results (the fail-open contract), the lost records must be
// counted, and /v1/stats must flag the degraded capture. Clearing the
// fault resumes capturing without a restart — unlike the registry, whose
// refusal is deliberately sticky.
func TestCaptureWriteFaultNeverPoisonsServing(t *testing.T) {
	t.Cleanup(fault.Reset)
	dir := t.TempDir()
	srv, hs, binAddr := newCaptureStack(t, dir, 0)
	ctx := context.Background()
	hc, err := client.New(hs.URL, client.WithTenant("t0"))
	if err != nil {
		t.Fatal(err)
	}
	defer hc.Close()
	bc := binClient(t, binAddr, client.WithTenant("t0"))

	// One healthy eval so the capture file exists, then fault every write.
	res, err := hc.EvalValues(ctx, "quickstart", "", quickstartSources(0))
	if err != nil || res.Error != "" {
		t.Fatalf("pre-fault eval: %v %s", err, res.Error)
	}
	want := canonJSON(t, res.Values)

	if err := fault.Arm(fault.SiteCaptureAppendWrite, "error:injected capture disk failure"); err != nil {
		t.Fatal(err)
	}
	const n = 16
	for i := 0; i < n; i++ {
		hres, err := hc.EvalValues(ctx, "quickstart", "", quickstartSources(0))
		if err != nil || hres.Error != "" {
			t.Fatalf("HTTP eval %d under capture fault: %v %s", i, err, hres.Error)
		}
		if got := canonJSON(t, hres.Values); got != want {
			t.Fatalf("HTTP eval %d answer changed under capture fault: %s vs %s", i, got, want)
		}
		bres, err := bc.EvalValues(ctx, "quickstart", "", quickstartSources(0))
		if err != nil || bres.Error != "" {
			t.Fatalf("binary eval %d under capture fault: %v %s", i, err, bres.Error)
		}
		if got := canonJSON(t, bres.Values); got != want {
			t.Fatalf("binary eval %d answer changed under capture fault: %s vs %s", i, got, want)
		}
	}

	// The writer is asynchronous; wait for the dropped evals to surface.
	waitForStat(t, srv, func(cs *api.CaptureStats) bool { return cs.DroppedIO >= n })
	st, err := hc.Stats(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if st.Capture == nil || !st.Capture.Degraded || st.Capture.Error == "" {
		t.Fatalf("/v1/stats does not flag the degraded capture: %+v", st.Capture)
	}
	if st.Capture.Dropped < n {
		t.Fatalf("capture_dropped = %d, want >= %d", st.Capture.Dropped, n)
	}
	if st.RegistryReadOnly {
		t.Fatal("capture fault must not touch the registry's state")
	}

	// Fail-open also means self-healing: clear the fault and records flow
	// again onto a fresh file.
	fault.Reset()
	appended := srv.CaptureStats().Appended
	if res, err := hc.EvalValues(ctx, "quickstart", "", quickstartSources(0)); err != nil || res.Error != "" {
		t.Fatalf("eval after fault cleared: %v %s", err, res.Error)
	}
	waitForStat(t, srv, func(cs *api.CaptureStats) bool { return cs.Appended > appended })
}

// TestCaptureSyncFaultOnlyDegradesCapture arms the capture fsync site —
// it fires at rotation/seal — and asserts the same isolation: serving
// stays correct, the capture flags degraded, the complete records written
// before the fault still read back.
func TestCaptureSyncFaultOnlyDegradesCapture(t *testing.T) {
	t.Cleanup(fault.Reset)
	dir := t.TempDir()
	// Tiny rotation so a handful of evals crosses a seal boundary.
	srv, hs, _ := newCaptureStack(t, dir, 128)
	ctx := context.Background()
	hc, err := client.New(hs.URL, client.WithTenant("t0"))
	if err != nil {
		t.Fatal(err)
	}
	defer hc.Close()

	if err := fault.Arm(fault.SiteCaptureAppendSync, "error:injected fsync failure"); err != nil {
		t.Fatal(err)
	}
	const n = 8
	for i := 0; i < n; i++ {
		if res, err := hc.EvalValues(ctx, "quickstart", "", quickstartSources(i)); err != nil || res.Error != "" {
			t.Fatalf("eval %d under sync fault: %v %s", i, err, res.Error)
		}
	}
	waitForStat(t, srv, func(cs *api.CaptureStats) bool { return cs.Appended >= n })
	if _, err := srv.Drain(ctx); err != nil {
		t.Fatal(err)
	}
	if cs := srv.CaptureStats(); !cs.Degraded || cs.Error == "" {
		t.Fatalf("sync fault not flagged: %+v", cs)
	}
	got, err := capture.Read(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Records) != n {
		t.Fatalf("read %d records, want %d (sync faults must not lose written records)", len(got.Records), n)
	}
}

// waitForStat polls the async writer's counters; the capture hook returns
// before the drain goroutine touches the disk, so tests wait, not assert.
func waitForStat(t *testing.T, srv *Server, cond func(*api.CaptureStats) bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for {
		if cs := srv.CaptureStats(); cs != nil && cond(cs) {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("capture stats never converged: %+v", srv.CaptureStats())
		}
		time.Sleep(2 * time.Millisecond)
	}
}

// TestCaptureOffStatsAbsent: without -capture the stats block is absent —
// operators can tell "off" from "healthy with zero traffic".
func TestCaptureOffStatsAbsent(t *testing.T) {
	svc := runtime.New(runtime.Config{})
	srv := New(Config{Service: svc})
	defer srv.Drain(context.Background())
	resp, err := srv.statsResponse()
	if err != nil {
		t.Fatal(err)
	}
	if resp.Capture != nil {
		t.Fatalf("capture stats present with capture off: %+v", resp.Capture)
	}
}
