package server

// Eval capture: with Config.CaptureDir set, every admitted eval — both
// wires, single and batch — appends one capture record (codec in
// internal/api, writer in internal/capture) from inside its Done
// callback, while the pooled snapshot and slot buffers are still valid.
// The hook encodes into a pooled buffer and hands it to the writer's
// ring; everything slow (disk, rotation, fsync) happens on the writer's
// own goroutine. With capture off the entire cost is one nil check.

import (
	"sort"
	"time"

	"repro/internal/api"
	"repro/internal/capture"
	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/value"
)

// captureEval records one completed eval. Sources arrive either
// name-keyed (src, the HTTP paths) or as the binary path's dense slots;
// the hook runs before the slot buffer recycles. The record's source
// vector is emitted in a deterministic order (sorted names / ascending
// attribute IDs) so identical workloads produce byte-identical captures.
func (s *Server) captureEval(entry *schemaEntry, tenantName string, st engine.Strategy, src map[string]value.Value, slots []value.Value, res *engine.Result) {
	w := s.capture
	if w == nil {
		return
	}
	d := capture.New()
	for i, id := range entry.digestIDs {
		d = d.Target(entry.digestNames[i], res.Snapshot.Val(id))
	}
	msg := ""
	if res.Err != nil {
		msg = res.Err.Error()
	}
	rec := api.CaptureRecord{
		MonoNs:      uint64(time.Since(s.start)),
		WallNs:      uint64(time.Now().UnixNano()),
		Tenant:      tenantName,
		Schema:      entry.schema.Name(),
		Version:     entry.version,
		Fingerprint: entry.fingerprint,
		Strategy:    st.String(),
		Digest:      d.Error(msg).Sum(),
	}
	if src != nil {
		rec.Sources = make([]api.CaptureSource, 0, len(src))
		for name, v := range src {
			rec.Sources = append(rec.Sources, api.CaptureSource{Name: name, Val: v})
		}
		sort.Slice(rec.Sources, func(i, j int) bool {
			return rec.Sources[i].Name < rec.Sources[j].Name
		})
	} else {
		sch := entry.schema
		for id := 0; id < sch.NumAttrs() && id < len(slots); id++ {
			a := sch.Attr(core.AttrID(id))
			if a.IsSource() && !slots[id].IsNull() {
				rec.Sources = append(rec.Sources, api.CaptureSource{Name: a.Name, Val: slots[id]})
			}
		}
	}
	w.Enqueue(api.AppendCaptureRecord(w.Buf(), &rec))
}

// CaptureStats reports the capture writer's health, or nil when capture
// is off — the /v1/stats block and dfsd's shutdown summary.
func (s *Server) CaptureStats() *api.CaptureStats {
	if s.capture == nil {
		return nil
	}
	st := s.capture.Stats()
	return &api.CaptureStats{
		Appended:    st.Appended,
		Dropped:     st.Dropped(),
		DroppedRing: st.DroppedRing,
		DroppedIO:   st.DroppedIO,
		Files:       st.Files,
		Bytes:       st.Bytes,
		Degraded:    st.Dropped() > 0 || st.Err != "",
		Error:       st.Err,
	}
}
