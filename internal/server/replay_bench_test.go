package server

import (
	"bytes"
	"context"
	"fmt"
	"net"
	"net/http/httptest"
	"os"
	"path/filepath"
	"sort"
	stdruntime "runtime"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/api"
	"repro/internal/capture"
	"repro/internal/client"
	"repro/internal/engine"
	"repro/internal/flows"
	"repro/internal/runtime"
	"repro/internal/value"
)

// replayFixturePath is the committed capture fixture the replay
// benchmarks cycle: 256 quickstart instances across 4 tenants at a
// 250µs recorded inter-arrival gap, digests computed by deterministic
// virtual execution. TestReplayFixtureDeterministic regenerates it in
// memory on every run and fails on any byte of drift, so the committed
// file can never silently disagree with the encoder or the engine.
const replayFixturePath = "testdata/capture_mixed.dfcap"

const (
	replayFixtureRecords = 256
	replayFixtureTenants = 4
	replayFixtureGapNs   = 250_000 // recorded pace: 4k inst/s across tenants
)

// generateReplayFixture builds the fixture capture byte-for-byte: every
// input is fixed, every digest comes from engine.Run on the simulated
// clock, so two generations anywhere produce identical bytes.
func generateReplayFixture(tb testing.TB) []byte {
	tb.Helper()
	s, _, err := flows.ByName("quickstart")
	if err != nil {
		tb.Fatal(err)
	}
	st, err := engine.ParseStrategy("PSE100")
	if err != nil {
		tb.Fatal(err)
	}
	buf := []byte(api.CaptureMagic)
	for i := 0; i < replayFixtureRecords; i++ {
		src := quickstartSources(i)
		names := make([]string, 0, len(src))
		for name := range src {
			names = append(names, name)
		}
		sort.Strings(names)
		rec := api.CaptureRecord{
			MonoNs:      uint64(i) * replayFixtureGapNs,
			WallNs:      1_700_000_000_000_000_000 + uint64(i)*replayFixtureGapNs,
			Tenant:      fmt.Sprintf("tenant-%d", i%replayFixtureTenants),
			Schema:      s.Name(),
			Version:     1,
			Fingerprint: s.Fingerprint(),
			Strategy:    st.String(),
			Digest:      capture.DigestResult(s, engine.Run(s, src, st)),
		}
		for _, name := range names {
			rec.Sources = append(rec.Sources, api.CaptureSource{Name: name, Val: src[name]})
		}
		buf = api.AppendCaptureRecord(buf, &rec)
	}
	return buf
}

// TestReplayFixtureDeterministic pins the committed fixture to its
// generator. Refresh with REGEN_FIXTURE=1 go test ./internal/server
// -run TestReplayFixtureDeterministic — any other drift is a codec or
// engine determinism break.
func TestReplayFixtureDeterministic(t *testing.T) {
	want := generateReplayFixture(t)
	if os.Getenv("REGEN_FIXTURE") != "" {
		if err := os.MkdirAll(filepath.Dir(replayFixturePath), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(replayFixturePath, want, 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("rewrote %s: %d bytes", replayFixturePath, len(want))
	}
	got, err := os.ReadFile(replayFixturePath)
	if err != nil {
		t.Fatalf("committed fixture missing (regenerate with REGEN_FIXTURE=1): %v", err)
	}
	if !bytes.Equal(got, want) {
		t.Fatalf("committed fixture (%d bytes) != deterministic regeneration (%d bytes)", len(got), len(want))
	}
	res, err := capture.Read(replayFixturePath)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Records) != replayFixtureRecords {
		t.Fatalf("fixture has %d records, want %d", len(res.Records), replayFixtureRecords)
	}
}

// benchReplayMixedTenants replays the committed fixture against the
// production-shaped stack the way dfreplay does: per-tenant clients,
// open-loop Arrivals at the recorded inter-arrival gaps (compressed so
// pacing exercises the schedule without throttling the measurement),
// and a digest comparison on every result. It is the one guarded
// benchmark whose offered load is a recorded trace rather than a
// Poisson process or a closed loop.
func benchReplayMixedTenants(b *testing.B, binary bool) {
	res, err := capture.Read(replayFixturePath)
	if err != nil {
		b.Fatal(err)
	}
	recs := res.Records
	byTenant := map[string][]int{}
	for i := range recs {
		byTenant[recs[i].Tenant] = append(byTenant[recs[i].Tenant], i)
	}

	svc := runtime.New(runtime.Config{
		Backend: runtime.Instant{},
		Query: runtime.QueryConfig{
			BatchSize:   32,
			BatchWindow: 200 * time.Microsecond,
			Dedup:       true,
			CacheSize:   65536,
		},
	})
	srv := New(Config{Service: svc})
	var addr string
	if binary {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			b.Fatal(err)
		}
		go srv.ServeBinary(ln)
		addr = "dfbin://" + ln.Addr().String()
	} else {
		hs := httptest.NewServer(srv.Handler())
		defer hs.Close()
		addr = hs.URL
	}
	defer srv.Drain(context.Background())

	// The recorded schedule cycles: instance i of a tenant replays its
	// (i mod n)-th record, shifted by whole fixture spans, compressed
	// 2000x so the schedule always runs ahead of serving.
	const speed = 2000.0
	span := uint64(replayFixtureRecords) * replayFixtureGapNs
	base := recs[0].MonoNs
	tenants := make([]string, 0, len(byTenant))
	for tenant := range byTenant {
		tenants = append(tenants, tenant)
	}
	sort.Strings(tenants)
	clients := map[string]*client.Client{}
	for _, tenant := range tenants {
		c, err := client.New(addr, client.WithTenant(tenant), client.WithMaxConns(64))
		if err != nil {
			b.Fatal(err)
		}
		defer c.Close()
		clients[tenant] = c
	}

	var diverged atomic.Int64
	run := func(count int) int {
		var wg sync.WaitGroup
		fired := 0
		for _, tenant := range tenants {
			idx := byTenant[tenant]
			share := max(1, count/len(tenants))
			fired += share
			wg.Add(1)
			go func(c *client.Client, idx []int, share int) {
				defer wg.Done()
				rep, err := client.RunLoad(context.Background(), c, client.Load{
					Schema: "quickstart",
					Count:  share,
					SourcesFor: func(i int) map[string]value.Value {
						return sourcesOf(&recs[idx[i%len(idx)]])
					},
					Arrivals: func(i int) time.Duration {
						rec := &recs[idx[i%len(idx)]]
						cycle := uint64(i / len(idx))
						return time.Duration(float64(rec.MonoNs-base+cycle*span) / speed)
					},
					OnResult: func(i int, res api.EvalResult, err error) {
						if err != nil {
							return // surfaces as rep.Failed below
						}
						got, derr := capture.DigestEval(&res)
						if derr != nil || got != recs[idx[i%len(idx)]].Digest {
							diverged.Add(1)
						}
					},
				})
				if err != nil || rep.Failed > 0 || rep.Errors > 0 {
					panic(fmt.Sprintf("replay load not clean: %v %+v", err, rep))
				}
			}(clients[tenant], idx, share)
		}
		wg.Wait()
		return fired
	}

	run(4 * replayFixtureRecords) // warm connections, cache, schema state
	if diverged.Load() > 0 {
		b.Fatalf("%d digests diverged during warmup: replay is not faithful", diverged.Load())
	}
	svc.ResetStats()
	stdruntime.GC()

	b.ReportAllocs()
	b.ResetTimer()
	start := time.Now()
	fired := run(b.N)
	elapsed := time.Since(start)
	b.StopTimer()
	if diverged.Load() > 0 {
		b.Fatalf("%d digests diverged: the server no longer decides what the capture recorded", diverged.Load())
	}
	if elapsed > 0 {
		b.ReportMetric(float64(fired)/elapsed.Seconds(), "inst/s")
	}
}

// BenchmarkReplayMixedTenantsHTTP: recorded-trace replay over HTTP/JSON.
func BenchmarkReplayMixedTenantsHTTP(b *testing.B) { benchReplayMixedTenants(b, false) }

// BenchmarkReplayMixedTenantsBinary: the same trace over the dfbin wire.
func BenchmarkReplayMixedTenantsBinary(b *testing.B) { benchReplayMixedTenants(b, true) }
