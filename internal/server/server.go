// Package server is the networked front end of the serving runtime: a
// multi-tenant HTTP/JSON API (wire shapes in internal/api) over
// runtime.Service, with per-tenant admission control, global load
// shedding, long-poll delivery for slow instances, and a graceful drain
// protocol. cmd/dfsd is the daemon wrapper; internal/client is the typed
// Go client.
//
// Endpoints:
//
//	POST /v1/schemas      register a schema (text format)
//	POST /v1/eval         evaluate one instance (sync, or async via 202+ID)
//	POST /v1/eval/batch   evaluate many instances (one response or NDJSON stream)
//	GET  /v1/results/{id} long-poll an async result
//	GET  /v1/stats        runtime + per-tenant metrics
//	GET  /healthz         liveness (503 while draining)
//
// Admission runs in layers: per-tenant token-bucket rate limit and
// in-flight quota first (429 + Retry-After, counted per cause), then the
// global overload watermarks — worker queue depth and recent p99 — which
// shed regardless of tenant (a full queue hurts everyone's latency). What
// is admitted runs under the service's own backend admission.
package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net"
	"net/http"
	"slices"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/api"
	"repro/internal/capture"
	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/flows"
	"repro/internal/runtime"
	"repro/internal/value"
)

// Config configures a Server.
type Config struct {
	// Service is the serving runtime to front. Required.
	Service *runtime.Service
	// DefaultStrategy runs instances whose request names none.
	// Zero value means PSE100.
	DefaultStrategy engine.Strategy
	// Tenant are the per-tenant admission limits (each tenant gets its
	// own bucket/quota with these bounds). Zero means unlimited.
	Tenant TenantLimits
	// ShedQueueDepth sheds new work once the service's worker queue is
	// deeper than this watermark (0 = 4096). Negative disables.
	ShedQueueDepth int
	// ShedP99 sheds new work while the service's recent p99 exceeds this
	// watermark (0 disables). The p99 is sampled in the background every
	// WatermarkInterval; pair it with runtime.Config.LatencyWindow so the
	// percentile covers a recent window rather than all time.
	ShedP99 time.Duration
	// WatermarkInterval is the p99 sampling period (0 = 250ms).
	WatermarkInterval time.Duration
	// ResultTTL bounds how long an unfetched async result is retained
	// (0 = 1 minute).
	ResultTTL time.Duration
	// MaxBatch bounds instances per batch request (0 = 4096).
	MaxBatch int
	// MaxSchemas bounds registered schemas (0 = 1024).
	MaxSchemas int
	// MaxTenants bounds the distinct tenants tracked (0 = 4096). Tenant
	// names are client-supplied, and each one pins admission state here
	// plus latency cells in the runtime's stats shards for the server's
	// lifetime — without a cap, a client cycling X-Tenant values grows
	// server memory without bound. Past the cap, requests from unseen
	// tenants are shed with 429.
	MaxTenants int
	// MaxBodyBytes bounds request bodies (0 = 8 MiB).
	MaxBodyBytes int64
	// DataDir, when non-empty, makes the schema registry durable: accepted
	// registrations append to a write-ahead log under this directory
	// before acking, and Open replays snapshot+log on boot (verifying each
	// schema's fingerprint). Empty keeps the registry in memory only.
	DataDir string
	// SnapshotEvery is how many WAL appends trigger a snapshot rewrite and
	// log truncation (0 = 256). Only meaningful with DataDir.
	SnapshotEvery int
	// CaptureDir, when non-empty, records every admitted eval (both wires)
	// as a capture record under this directory for later replay with
	// dfreplay (see internal/capture). Capture is best-effort by contract:
	// a full ring or a disk fault drops records and counts them in
	// /v1/stats, and never blocks or fails serving — the opposite of the
	// registry WAL's fail-closed semantics.
	CaptureDir string
	// CaptureRotateBytes rotates capture files past this size (0 = 64 MiB).
	CaptureRotateBytes int64
	// CaptureRing is the capture hand-off ring capacity (0 = 1024).
	CaptureRing int
	// MaxShadowInFlight bounds concurrent shadow-candidate evaluations
	// (0 = 64); sampled evals beyond it are counted as skipped, never
	// queued — shadow work must not be able to starve live traffic.
	MaxShadowInFlight int
	// Peers, when non-empty, joins this node to a front-end fleet: the
	// full member list of dfbin addresses, this node's own included (as
	// PeerSelf). Each attribute-level backend query is routed to its home
	// node by the same hash the backend cluster shards on, so the fleet
	// shares one single-flight/cache entry per identity (see peer.go).
	// Requires the service's query layer (dedup or cache) to be on.
	Peers []string
	// PeerSelf is this node's own address in Peers. Required with Peers.
	PeerSelf string
	// PeerForwardTimeout bounds one forwarded query round trip, after
	// which the forwarder falls back to a local flight (0 = 10s).
	PeerForwardTimeout time.Duration
	// PeerBreakerAfter is how many consecutive forward failures open a
	// peer's fallback breaker (0 = 3); PeerBreakerCooldown is how long an
	// open breaker waits before probing the peer again (0 = 2s).
	PeerBreakerAfter    int
	PeerBreakerCooldown time.Duration
	// PeerStatsTimeout bounds each per-peer stats fetch during the
	// GET /v1/stats?fleet=1 fan-out (0 = 2s): a dead or hung peer
	// degrades to an Err marker in the aggregate instead of stalling it.
	PeerStatsTimeout time.Duration
}

// Server is the HTTP front end. Create with New, expose via Handler,
// shut down with Drain.
type Server struct {
	cfg   Config
	svc   *runtime.Service
	mux   *http.ServeMux
	start time.Time

	mu      sync.RWMutex // guards schemas, versions, and the wal store
	schemas map[string]*schemaEntry
	// versions is the per-name monotone version counter, surviving head
	// replacement and shadow registration (both consume a version).
	versions map[string]uint64
	// wal is the durable registry store; nil without Config.DataDir.
	wal      *walStore
	recovery RecoveryInfo

	tmu     sync.Mutex // guards tenants
	tenants map[string]*tenant

	results   sync.Map // async result id → *pending
	resultSeq atomic.Uint64

	// drainMu orders eval admission against Drain: evals hold the read
	// side while raising the in-flight count, so once Drain's write lock
	// falls every later eval observes draining and the WaitGroup can only
	// go down.
	drainMu  sync.RWMutex
	draining bool
	evals    sync.WaitGroup // admitted instances not yet completed

	p99High  atomic.Bool
	stopWake chan struct{}

	// schemaGen counts schema registrations; binary connections use it to
	// detect that a bound schema may have been superseded (see binary.go).
	schemaGen atomic.Uint64

	// Binary front end state: the accept listeners and live connections,
	// tracked so Drain can stop accepts, push Drain frames, and flush and
	// close every connection once in-flight evals have completed.
	bmu        sync.Mutex
	blisteners []net.Listener
	bconns     map[*binConn]struct{}

	// peers is the front-end fleet router; nil without Config.Peers.
	peers *peerTier

	// capture is the eval capture writer; nil without Config.CaptureDir
	// (the nil check is the entire disabled-path cost).
	capture *capture.Writer
}

// schemaEntry is one registered schema version with its pre-resolved
// targets. owner is the tenant that registered it ("" for built-ins): the
// schema namespace is shared for reads, but only the owner may replace an
// entry — without this, any tenant could silently swap another tenant's
// schema and change its eval results.
//
// Entries are immutable once installed (shadow is the one mutable slot,
// and it is atomic), which is what makes version pinning free: everything
// in flight — a sync handler, an async Done closure, a batch, a binary
// bind — captured its *schemaEntry at admission and finishes on that
// version no matter how many re-registrations land meanwhile. New
// admissions resolve the registry head.
type schemaEntry struct {
	schema      *core.Schema
	owner       string
	targetIDs   []core.AttrID
	targetNames []string
	// version is the per-name monotone registration version; text is the
	// source it was registered from ("" for built-ins, which are never
	// persisted); fingerprint caches schema.Fingerprint().
	version     uint64
	text        string
	fingerprint uint64
	// prev links the superseded version chain (introspection only;
	// pinning works by capture). Trimmed to maxVersionChain so
	// re-registration churn cannot grow memory without bound.
	prev *schemaEntry
	// shadow is the candidate version under shadow comparison, if any.
	shadow atomic.Pointer[shadowState]
	// digestIDs/digestNames are the targets re-sorted by name — the
	// decision-digest fold order, precomputed so the capture hook never
	// sorts per eval.
	digestIDs   []core.AttrID
	digestNames []string
}

// maxVersionChain bounds how many superseded versions stay linked.
const maxVersionChain = 8

func newEntry(s *core.Schema, owner, text string, version uint64) *schemaEntry {
	e := &schemaEntry{schema: s, owner: owner, targetIDs: s.Targets(),
		version: version, text: text, fingerprint: s.Fingerprint()}
	for _, id := range e.targetIDs {
		e.targetNames = append(e.targetNames, s.Attr(id).Name)
	}
	e.digestIDs, e.digestNames = capture.TargetOrder(s)
	return e
}

// chainTo links e on top of prev and trims the tail of the chain.
func (e *schemaEntry) chainTo(prev *schemaEntry) {
	e.prev = prev
	p := e
	for i := 0; i < maxVersionChain && p.prev != nil; i++ {
		p = p.prev
	}
	p.prev = nil
}

// ErrDraining is returned (as a 503) to evals arriving during shutdown.
var ErrDraining = errors.New("server: draining")

// New builds a Server over the service, preloading the built-in flows
// ("quickstart", "pattern") into the schema registry. It panics on a
// recovery failure; servers with a Config.DataDir should prefer Open,
// which surfaces a damaged data directory as an error instead.
func New(cfg Config) *Server {
	s, err := Open(cfg)
	if err != nil {
		panic(err)
	}
	return s
}

// Open is New returning recovery errors: with Config.DataDir set it
// replays the registry snapshot+WAL, verifying each recovered schema's
// fingerprint, truncating (and reporting) a torn final log record, and
// refusing to serve on any corruption or verification mismatch.
func Open(cfg Config) (*Server, error) {
	if cfg.Service == nil {
		panic("server: Config.Service is required")
	}
	if cfg.DefaultStrategy == (engine.Strategy{}) {
		cfg.DefaultStrategy = engine.MustParseStrategy("PSE100")
	}
	if cfg.ShedQueueDepth == 0 {
		cfg.ShedQueueDepth = 4096
	}
	if cfg.WatermarkInterval <= 0 {
		cfg.WatermarkInterval = 250 * time.Millisecond
	}
	if cfg.ResultTTL <= 0 {
		cfg.ResultTTL = time.Minute
	}
	if cfg.MaxBatch <= 0 {
		cfg.MaxBatch = 4096
	}
	if cfg.MaxSchemas <= 0 {
		cfg.MaxSchemas = 1024
	}
	if cfg.MaxTenants <= 0 {
		cfg.MaxTenants = 4096
	}
	if cfg.MaxBodyBytes <= 0 {
		cfg.MaxBodyBytes = 8 << 20
	}
	if cfg.MaxShadowInFlight <= 0 {
		cfg.MaxShadowInFlight = 64
	}
	s := &Server{
		cfg:      cfg,
		svc:      cfg.Service,
		mux:      http.NewServeMux(),
		start:    time.Now(),
		schemas:  make(map[string]*schemaEntry),
		versions: make(map[string]uint64),
		tenants:  make(map[string]*tenant),
		stopWake: make(chan struct{}),
		bconns:   make(map[*binConn]struct{}),
	}
	for _, name := range []string{"quickstart", "pattern"} {
		sch, _, err := flows.ByName(name)
		if err != nil {
			panic(err)
		}
		s.schemas[name] = newEntry(sch, "", "", 1)
		s.versions[name] = 1
	}
	if cfg.DataDir != "" {
		if err := s.recover(cfg.DataDir, cfg.SnapshotEvery); err != nil {
			return nil, err
		}
	}
	if len(cfg.Peers) > 0 {
		pt, err := newPeerTier(cfg)
		if err != nil {
			return nil, err
		}
		if err := cfg.Service.InstallPeerRouter(pt); err != nil {
			pt.close()
			return nil, err
		}
		s.peers = pt
	}
	if cfg.CaptureDir != "" {
		w, err := capture.NewWriter(capture.Config{
			Dir:         cfg.CaptureDir,
			RotateBytes: cfg.CaptureRotateBytes,
			Ring:        cfg.CaptureRing,
		})
		if err != nil {
			// The one fail-fast capture error: an unusable capture
			// directory at startup. Once running, capture degrades instead.
			if s.peers != nil {
				s.peers.close()
			}
			return nil, err
		}
		s.capture = w
	}
	s.mux.HandleFunc("POST /v1/schemas", s.handleSchemas)
	s.mux.HandleFunc("POST /v1/eval", s.handleEval)
	s.mux.HandleFunc("POST /v1/eval/batch", s.handleBatch)
	s.mux.HandleFunc("GET /v1/results/{id}", s.handleResult)
	s.mux.HandleFunc("GET /v1/schemas/{name}/shadow", s.handleShadowReport)
	s.mux.HandleFunc("GET /v1/stats", s.handleStats)
	s.mux.HandleFunc("GET /healthz", s.handleHealthz)
	if cfg.ShedP99 > 0 {
		go s.watchP99()
	}
	return s, nil
}

// recover opens the durable registry under dir and replays it into the
// in-memory registry: snapshot first, then the log, verifying each
// schema's deterministic fingerprint against the logged one.
func (s *Server) recover(dir string, snapEvery int) error {
	begin := time.Now()
	w, recs, torn, err := openWALStore(dir, snapEvery)
	if err != nil {
		return err
	}
	for _, rec := range recs {
		if err := s.applyRecord(rec); err != nil {
			w.close()
			return err
		}
	}
	s.wal = w
	s.recovery = RecoveryInfo{Enabled: true, TornBytes: torn}
	for _, e := range s.schemas {
		if e.text != "" {
			s.recovery.Schemas++
		}
		if e.shadow.Load() != nil {
			s.recovery.Shadows++
		}
	}
	s.recovery.Duration = time.Since(begin)
	return nil
}

// applyRecord replays one WAL record: re-parse the logged text, verify the
// fingerprint, install as head (live) or attach as shadow candidate.
func (s *Server) applyRecord(rec api.WALRecord) error {
	sch, err := core.ParseSchema(rec.Text)
	if err != nil {
		return fmt.Errorf("server: recovery: schema %q v%d does not parse: %w", rec.Name, rec.Version, err)
	}
	if sch.Name() != rec.Name {
		return fmt.Errorf("server: recovery: record for %q holds schema %q", rec.Name, sch.Name())
	}
	flows.BindDefaultComputes(sch)
	if got := sch.Fingerprint(); got != rec.Fingerprint {
		return fmt.Errorf("server: recovery: schema %q v%d fingerprint mismatch (logged %016x, recovered %016x)",
			rec.Name, rec.Version, rec.Fingerprint, got)
	}
	entry := newEntry(sch, rec.Tenant, rec.Text, rec.Version)
	if rec.Version > s.versions[rec.Name] {
		s.versions[rec.Name] = rec.Version
	}
	switch rec.Kind {
	case api.WALKindSchema:
		entry.chainTo(s.schemas[rec.Name])
		s.schemas[rec.Name] = entry
	case api.WALKindShadow:
		head := s.schemas[rec.Name]
		if head == nil {
			return fmt.Errorf("server: recovery: shadow record for %q without a live schema", rec.Name)
		}
		head.shadow.Store(newShadowState(entry, int(rec.SampleEvery)))
	}
	return nil
}

// Recovery reports the boot replay summary (zero value without a DataDir).
func (s *Server) Recovery() RecoveryInfo { return s.recovery }

// Handler returns the server's HTTP handler.
func (s *Server) Handler() http.Handler { return s.mux }

// Drain executes the graceful shutdown protocol: flip to draining (new
// evals get 503 / CodeDraining frames, /healthz reports down), stop
// accepting binary connections and push a Drain frame on the live ones,
// wait for every admitted instance to complete — bounded by ctx — then
// close the underlying service and flush-and-close the binary
// connections. It returns the final runtime stats. The HTTP listener
// should stop accepting before or concurrently with Drain
// (http.Server.Shutdown). Long-poll result fetches blocked in
// handleResult are woken immediately with 503 + Draining (delivering the
// result instead if it is already there) so clients re-resolve to a
// healthy peer; binary in-flight evals are still flushed to their
// connections. Once everything admitted has completed, pending async
// results and their TTL timers are swept, and a durable registry writes a
// final snapshot so the next boot replays snapshot-only.
func (s *Server) Drain(ctx context.Context) (runtime.Stats, error) {
	s.drainMu.Lock()
	already := s.draining
	s.draining = true
	s.drainMu.Unlock()
	if already {
		return s.svc.Stats(), errors.New("server: already draining")
	}
	close(s.stopWake)

	s.bmu.Lock()
	lns := slices.Clone(s.blisteners)
	conns := make([]*binConn, 0, len(s.bconns))
	for c := range s.bconns {
		conns = append(conns, c)
	}
	s.bmu.Unlock()
	for _, ln := range lns {
		ln.Close()
	}
	for _, c := range conns {
		c.sendDrain()
	}

	done := make(chan struct{})
	go func() { s.evals.Wait(); close(done) }()
	var err error
	select {
	case <-done:
	case <-ctx.Done():
		err = fmt.Errorf("server: drain incomplete: %w", ctx.Err())
	}
	st := s.svc.Stats()
	if err == nil {
		// Everything admitted has completed; Close is instant.
		s.svc.Close()
	}
	// Every admitted eval has completed (or the drain timed out), so no
	// new forwards can start; stop the peer tier and drop its
	// connections. Forwarded-IN queries were covered by evals.Wait via
	// the Forward handler's drain gate, same as local evals.
	if s.peers != nil {
		s.peers.close()
	}
	// Every completed eval's result frame was queued before its WaitGroup
	// claim released, so shutdown flushes all of them before closing.
	for _, c := range conns {
		c.shutdown()
	}
	// Sweep undelivered async results: every waiter has been woken via
	// stopWake, and (when the wait completed) every Done callback has run,
	// so each pending's TTL timer exists — stop them all rather than leave
	// timers firing into a closed server.
	s.results.Range(func(k, v any) bool {
		p := v.(*pending)
		select {
		case <-p.done:
			if p.tm != nil {
				p.tm.Stop()
			}
		default: // drain timed out with the instance still in flight
		}
		s.results.Delete(k)
		return true
	})
	if s.wal != nil {
		s.mu.Lock()
		if err == nil {
			s.wal.snapshot(s.walStateLocked())
		}
		s.wal.close()
		s.wal = nil
		s.mu.Unlock()
	}
	// Every admitted eval completed (or the drain timed out), so no
	// capture hook can still enqueue: flush the ring and seal the last
	// file. A degraded capture does not fail the drain — its damage is
	// already counted — so the error is dropped here; CaptureStats keeps
	// reporting it.
	if s.capture != nil {
		_ = s.capture.Close()
	}
	return st, err
}

// Draining reports whether the drain protocol has started.
func (s *Server) Draining() bool {
	s.drainMu.RLock()
	defer s.drainMu.RUnlock()
	return s.draining
}

// tenantFor returns (creating on first use) the tenant's admission
// state, or nil when the tenant table is full and the name is unseen —
// the memory-bounding backstop for client-controlled tenant names.
func (s *Server) tenantFor(name string) *tenant {
	s.tmu.Lock()
	defer s.tmu.Unlock()
	t := s.tenants[name]
	if t == nil {
		if len(s.tenants) >= s.cfg.MaxTenants {
			return nil
		}
		t = newTenant(s.cfg.Tenant)
		s.tenants[name] = t
	}
	return t
}

// watchP99 samples the tail latency of the completions of the last
// interval and flips the overload bit. Judging only the interval's own
// completions (not the whole retention window) keeps the bit honest in
// both directions: it cannot latch — a quiet interval (shedding blocked
// everything, backlog drained) clears it so admitted traffic probes the
// backend — and it cannot duty-cycle on stale samples, because a
// recovered backend's fresh completions read fast immediately instead
// of waiting for thousands of spike-era samples to age out of the ring.
func (s *Server) watchP99() {
	tick := time.NewTicker(s.cfg.WatermarkInterval)
	defer tick.Stop()
	var lastCompleted uint64
	for {
		select {
		case <-s.stopWake:
			return
		case <-tick.C:
			completed := s.svc.CompletedTotal()
			delta := completed - lastCompleted
			lastCompleted = completed
			if delta == 0 {
				s.p99High.Store(false)
				continue
			}
			s.p99High.Store(s.svc.RecentP99(int(delta)) > s.cfg.ShedP99)
		}
	}
}

// admitRefusal describes why admission refused a request, in
// transport-neutral terms: each front end renders it onto its own wire
// (writeHTTP ↔ 429/503/400 with Retry-After, binCode ↔ Error frame
// codes), so the two transports cannot drift in admission semantics.
type admitRefusal struct {
	cause     shedCause     // shedNone for draining / table-full refusals
	retry     time.Duration // retry hint; 0 when permanent or draining
	draining  bool          // server is shutting down (↔ 503 / CodeDraining)
	permanent bool          // request can never be admitted (↔ 400 / CodeTooLarge)
	msg       string
}

// admitShared runs the admission layers for n instances of tenant t: the
// per-tenant bucket and quota, the global queue-depth/p99 watermarks, and
// the drain gate. It returns nil when admitted — the caller then owns n
// claims on the tenant and the server's eval WaitGroup — or the refusal
// for the caller's wire to render.
func (s *Server) admitShared(t *tenant, n int) *admitRefusal {
	if t == nil {
		// tenantFor refused to materialize a new tenant: table full.
		return &admitRefusal{retry: time.Second, msg: "tenant table full"}
	}
	ok, cause, retry := t.admit(n)
	if !ok {
		if cause == shedTooLarge {
			// Permanent: the batch exceeds the bucket's capacity outright.
			return &admitRefusal{cause: cause, permanent: true,
				msg: "batch exceeds the tenant's burst capacity; split it"}
		}
		msg := "over tenant rate limit"
		if cause == shedQuota {
			msg = "over tenant in-flight quota"
		}
		return &admitRefusal{cause: cause, retry: retry, msg: msg}
	}
	if (s.cfg.ShedQueueDepth >= 0 && s.svc.QueueDepth() > s.cfg.ShedQueueDepth) || s.p99High.Load() {
		t.unadmit(n)
		t.shedByQueue(n)
		return &admitRefusal{cause: shedQueue, retry: 25 * time.Millisecond,
			msg: "server overloaded (queue depth or p99 past watermark)"}
	}
	s.drainMu.RLock()
	if s.draining {
		s.drainMu.RUnlock()
		t.unadmit(n)
		return &admitRefusal{draining: true, msg: ErrDraining.Error()}
	}
	s.evals.Add(n)
	s.drainMu.RUnlock()
	t.accept(n)
	return nil
}

// writeHTTP renders the refusal as the HTTP front end's status mapping:
// 429 for transient sheds (with a standards-compliant whole-second
// Retry-After header and a millisecond-precise body), 503 while draining,
// 400 for permanent refusals.
func (r *admitRefusal) writeHTTP(w http.ResponseWriter) {
	switch {
	case r.draining:
		writeErr(w, http.StatusServiceUnavailable, r.msg, 0)
	case r.permanent:
		writeErr(w, http.StatusBadRequest, r.msg, 0)
	default:
		writeErr(w, http.StatusTooManyRequests, r.msg, r.retry)
	}
}

// binCode maps the refusal onto the binary protocol's Error frame codes.
func (r *admitRefusal) binCode() byte {
	switch {
	case r.draining:
		return api.CodeDraining
	case r.permanent:
		return api.CodeTooLarge
	default:
		return api.CodeShed
	}
}

// admit is admitShared for the HTTP handlers: on refusal the response has
// been written.
func (s *Server) admit(w http.ResponseWriter, t *tenant, n int) bool {
	if ref := s.admitShared(t, n); ref != nil {
		ref.writeHTTP(w)
		return false
	}
	return true
}

func writeErr(w http.ResponseWriter, code int, msg string, retry time.Duration) {
	if retry > 0 {
		w.Header().Set("Retry-After", strconv.FormatInt(int64((retry+time.Second-1)/time.Second), 10))
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	json.NewEncoder(w).Encode(api.ErrorResponse{Error: msg, RetryAfterMs: int64(retry / time.Millisecond)})
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	json.NewEncoder(w).Encode(v)
}

// decode reads a JSON body with numbers preserved (json.Number).
func (s *Server) decode(w http.ResponseWriter, r *http.Request, v any) bool {
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, s.cfg.MaxBodyBytes))
	dec.UseNumber()
	if err := dec.Decode(v); err != nil {
		writeErr(w, http.StatusBadRequest, "bad request body: "+err.Error(), 0)
		return false
	}
	return true
}

// requestTenant resolves and validates the caller's tenant.
func requestTenant(w http.ResponseWriter, r *http.Request) (string, bool) {
	name, err := api.CleanTenant(r.Header.Get(api.TenantHeader))
	if err != nil {
		writeErr(w, http.StatusBadRequest, err.Error(), 0)
		return "", false
	}
	return name, true
}

// --- handlers ---

// registerError is a schema-registration failure with its status on each
// wire (the binary front end maps httpStatus onto Error frame codes; a
// nonzero binCode overrides that mapping for cases the default status
// table would mistranslate, like the poisoned registry's 503 which must
// NOT read as CodeDraining — draining invites a retry elsewhere, a
// poisoned registry refuses until restart).
type registerError struct {
	httpStatus int
	binCode    byte
	msg        string
}

// registerSchema parses and installs a schema for tenantName — the
// registration core shared by the HTTP and binary front ends. The caller
// has already metered the request under the tenant's admission. With
// shadow set the schema installs as a shadow candidate on the existing
// live version instead of replacing it. When the registry is durable, the
// WAL record is appended and fsynced before the caller is acked.
func (s *Server) registerSchema(tenantName, text string, shadow bool, sampleEvery int) (api.SchemaResponse, *registerError) {
	sch, err := core.ParseSchema(text)
	if err != nil {
		return api.SchemaResponse{}, &registerError{httpStatus: http.StatusBadRequest, msg: err.Error()}
	}
	// Foreign results are served by a deterministic hash compute — the
	// wire carries structure, not code (see flows.BindDefaultComputes).
	flows.BindDefaultComputes(sch)
	if s.Draining() {
		// A draining server must not accept registrations: its WAL is
		// about to seal, and an unpersisted ack would be a silent lie.
		return api.SchemaResponse{}, &registerError{httpStatus: http.StatusServiceUnavailable, msg: ErrDraining.Error()}
	}
	name := sch.Name()
	s.mu.Lock()
	prev, exists := s.schemas[name]
	if exists {
		if prev.owner != tenantName {
			s.mu.Unlock()
			return api.SchemaResponse{}, &registerError{httpStatus: http.StatusForbidden,
				msg: fmt.Sprintf("schema %q is owned by another tenant", name)}
		}
	} else {
		if shadow {
			s.mu.Unlock()
			return api.SchemaResponse{}, &registerError{httpStatus: http.StatusNotFound,
				msg: fmt.Sprintf("no live schema %q to shadow", name)}
		}
		if len(s.schemas) >= s.cfg.MaxSchemas {
			s.mu.Unlock()
			return api.SchemaResponse{}, &registerError{httpStatus: http.StatusInsufficientStorage, msg: "schema registry full"}
		}
	}
	version := s.versions[name] + 1
	entry := newEntry(sch, tenantName, text, version)
	if s.wal != nil {
		rec := api.WALRecord{Kind: api.WALKindSchema, Tenant: tenantName, Name: name,
			Version: version, Fingerprint: entry.fingerprint, Text: text}
		if shadow {
			rec.Kind = api.WALKindShadow
			rec.SampleEvery = uint64(max(sampleEvery, 1))
		}
		// Durability before acknowledgment: if the record cannot be made
		// durable the registration did not happen — and is never retried
		// (the store failed closed; see ErrRegistryPoisoned). 503 tells
		// HTTP clients the condition is operational, not a bad request;
		// the binary code is pinned to CodeInternal so it cannot read as
		// a retry-elsewhere draining hint.
		if err := s.wal.append(rec); err != nil {
			s.mu.Unlock()
			if errors.Is(err, ErrRegistryPoisoned) || errors.Is(err, ErrRegistryReadOnly) {
				return api.SchemaResponse{}, &registerError{httpStatus: http.StatusServiceUnavailable, binCode: api.CodeInternal, msg: err.Error()}
			}
			return api.SchemaResponse{}, &registerError{httpStatus: http.StatusInternalServerError, msg: err.Error()}
		}
	}
	s.versions[name] = version
	if shadow {
		prev.shadow.Store(newShadowState(entry, sampleEvery))
	} else {
		entry.chainTo(prev)
		s.schemas[name] = entry
	}
	if s.wal != nil && s.wal.wantSnapshot() {
		// Advisory: a failed snapshot leaves snapshot+log recoverable.
		s.wal.snapshot(s.walStateLocked())
	}
	s.mu.Unlock()
	if !shadow {
		// Invalidate binary binds that may now refer to a superseded entry.
		s.schemaGen.Add(1)
	}
	return api.SchemaResponse{
		Name:        name,
		Attrs:       sch.NumAttrs(),
		Targets:     entry.targetNames,
		Version:     version,
		Fingerprint: fmt.Sprintf("%016x", entry.fingerprint),
		Shadow:      shadow,
	}, nil
}

// walStateLocked renders the registry's current durable state — every
// tenant-registered head plus attached shadow candidates — as the record
// stream a snapshot holds. Called with s.mu held.
func (s *Server) walStateLocked() []api.WALRecord {
	names := make([]string, 0, len(s.schemas))
	for name, e := range s.schemas {
		if e.text != "" || e.shadow.Load() != nil {
			names = append(names, name)
		}
	}
	slices.Sort(names)
	var recs []api.WALRecord
	for _, name := range names {
		e := s.schemas[name]
		if e.text != "" {
			recs = append(recs, api.WALRecord{Kind: api.WALKindSchema, Tenant: e.owner,
				Name: name, Version: e.version, Fingerprint: e.fingerprint, Text: e.text})
		}
		if sh := e.shadow.Load(); sh != nil {
			c := sh.cand
			recs = append(recs, api.WALRecord{Kind: api.WALKindShadow, Tenant: c.owner,
				Name: name, Version: c.version, Fingerprint: c.fingerprint,
				SampleEvery: sh.sampleEvery, Text: c.text})
		}
	}
	return recs
}

func (s *Server) handleSchemas(w http.ResponseWriter, r *http.Request) {
	tenantName, ok := requestTenant(w, r)
	if !ok {
		return
	}
	// Registration runs under the tenant's rate bucket too: an 8 MiB
	// schema parse is not cheaper than an eval, and this endpoint must
	// not be the unmetered way around TenantLimits.
	t := s.tenantFor(tenantName)
	if t == nil {
		writeErr(w, http.StatusTooManyRequests, "tenant table full", time.Second)
		return
	}
	if ok, cause, retry := t.admit(1); !ok {
		(&admitRefusal{cause: cause, retry: retry, permanent: cause == shedTooLarge,
			msg: registerShedMsg(cause)}).writeHTTP(w)
		return
	}
	defer t.release(1)
	var req api.SchemaRequest
	if !s.decode(w, r, &req) {
		return
	}
	resp, rerr := s.registerSchema(tenantName, req.Text, req.Shadow, req.ShadowSampleEvery)
	if rerr != nil {
		writeErr(w, rerr.httpStatus, rerr.msg, 0)
		return
	}
	writeJSON(w, http.StatusOK, resp)
}

// handleShadowReport serves GET /v1/schemas/{name}/shadow: the running
// live-vs-candidate comparison for a schema with a shadow registration.
func (s *Server) handleShadowReport(w http.ResponseWriter, r *http.Request) {
	name := r.PathValue("name")
	s.mu.RLock()
	entry := s.schemas[name]
	s.mu.RUnlock()
	if entry == nil {
		writeErr(w, http.StatusNotFound, fmt.Sprintf("unknown schema %q", name), 0)
		return
	}
	sh := entry.shadow.Load()
	if sh == nil {
		writeErr(w, http.StatusNotFound, fmt.Sprintf("schema %q has no shadow candidate", name), 0)
		return
	}
	writeJSON(w, http.StatusOK, sh.report(name, entry.version))
}

// registerShedMsg phrases a registration shed cause (registration is
// metered but takes no second admission pass, so it renders refusals
// without admitShared).
func registerShedMsg(cause shedCause) string {
	switch cause {
	case shedQuota:
		return "over tenant in-flight quota"
	case shedTooLarge:
		return "batch exceeds the tenant's burst capacity; split it"
	default:
		return "over tenant rate limit"
	}
}

// resolveSchema maps a request's schema name and strategy code to the
// registry entry and parsed strategy (shared by single and batch eval).
func (s *Server) resolveSchema(w http.ResponseWriter, name, strategy string) (*schemaEntry, engine.Strategy, bool) {
	s.mu.RLock()
	entry := s.schemas[name]
	s.mu.RUnlock()
	if entry == nil {
		writeErr(w, http.StatusNotFound, fmt.Sprintf("unknown schema %q", name), 0)
		return nil, engine.Strategy{}, false
	}
	st := s.cfg.DefaultStrategy
	if strategy != "" {
		var err error
		if st, err = engine.ParseStrategy(strategy); err != nil {
			writeErr(w, http.StatusBadRequest, err.Error(), 0)
			return nil, engine.Strategy{}, false
		}
	}
	return entry, st, true
}

// resolve is resolveSchema plus the single instance's source decode.
func (s *Server) resolve(w http.ResponseWriter, name, strategy string, sources map[string]any) (*schemaEntry, engine.Strategy, map[string]value.Value, bool) {
	entry, st, ok := s.resolveSchema(w, name, strategy)
	if !ok {
		return nil, engine.Strategy{}, nil, false
	}
	src, err := api.DecodeSources(sources)
	if err != nil {
		writeErr(w, http.StatusBadRequest, err.Error(), 0)
		return nil, engine.Strategy{}, nil, false
	}
	return entry, st, src, true
}

// buildResult renders a completed instance for the wire. It runs inside
// the runtime's Done callback, while the pooled snapshot is still valid.
func buildResult(entry *schemaEntry, res *engine.Result) api.EvalResult {
	out := api.EvalResult{
		Values:        make(map[string]any, len(entry.targetIDs)),
		ElapsedMs:     res.Elapsed,
		Work:          res.Work,
		WastedWork:    res.WastedWork,
		Launched:      res.Launched,
		SynthesisRuns: res.SynthesisRuns,
		Failures:      res.Failures,
	}
	for i, id := range entry.targetIDs {
		out.Values[entry.targetNames[i]] = api.ToJSON(res.Snapshot.Val(id))
	}
	if res.Err != nil {
		out.Error = res.Err.Error()
	}
	return out
}

// unwind releases admission claims for a request that failed between
// admission and reaching the runtime (decode/resolve error, a refused
// batch second step, a closed service): the in-flight gauge, accepted
// counter, and eval WaitGroup return, but the rate tokens stay burned —
// metering the parse work was the point of admitting before decoding.
func (s *Server) unwind(t *tenant, n int) {
	t.release(n)
	t.unaccept(n)
	s.evals.Add(-n)
}

func (s *Server) handleEval(w http.ResponseWriter, r *http.Request) {
	tenantName, ok := requestTenant(w, r)
	if !ok {
		return
	}
	// Admission precedes the body decode, so an over-limit tenant cannot
	// use request parsing as its unmetered path around TenantLimits.
	t := s.tenantFor(tenantName)
	if !s.admit(w, t, 1) {
		return
	}
	var req api.EvalRequest
	if !s.decode(w, r, &req) {
		s.unwind(t, 1)
		return
	}
	entry, st, src, ok := s.resolve(w, req.Schema, req.Strategy, req.Sources)
	if !ok {
		s.unwind(t, 1)
		return
	}
	if req.Async {
		s.evalAsync(w, t, tenantName, entry, st, src)
		return
	}

	shc := s.shadowSample(entry, tenantName, st, src, nil)
	resCh := make(chan api.EvalResult, 1)
	cancel, err := s.svc.SubmitCancel(runtime.Request{
		Schema:   entry.schema,
		Sources:  src,
		Strategy: st,
		Tenant:   tenantName,
		Ctx:      r.Context(),
		Done: func(res *engine.Result) {
			s.shadowFinish(shc, entry, res)
			s.captureEval(entry, tenantName, st, src, nil, res)
			resCh <- buildResult(entry, res)
		},
	})
	if err != nil {
		s.unwind(t, 1)
		writeErr(w, http.StatusServiceUnavailable, err.Error(), 0)
		return
	}
	var out api.EvalResult
	select {
	case out = <-resCh:
	case <-r.Context().Done():
		// Client gone: abort the instance promptly, then wait for the
		// abort to land so the claims release only after the runtime is
		// done with the instance.
		cancel(r.Context().Err())
		out = <-resCh
	}
	t.release(1)
	s.evals.Done()
	writeJSON(w, http.StatusOK, out)
}

// pending is one async instance's rendezvous.
type pending struct {
	tenant string
	done   chan struct{}
	result api.EvalResult
	// tm is the result's TTL reaper, written before done closes and
	// stopped when the result delivers (or the server drains) — without
	// the stop, sustained async load piles up one live timer per eval for
	// the full TTL, and stragglers fire after Close.
	tm *time.Timer
}

func (s *Server) evalAsync(w http.ResponseWriter, t *tenant, tenantName string, entry *schemaEntry, st engine.Strategy, src map[string]value.Value) {
	id := strconv.FormatUint(s.resultSeq.Add(1), 36)
	p := &pending{tenant: tenantName, done: make(chan struct{})}
	s.results.Store(id, p)
	shc := s.shadowSample(entry, tenantName, st, src, nil)
	err := s.svc.Submit(runtime.Request{
		Schema:   entry.schema,
		Sources:  src,
		Strategy: st,
		Tenant:   tenantName,
		Done: func(res *engine.Result) {
			s.shadowFinish(shc, entry, res)
			s.captureEval(entry, tenantName, st, src, nil, res)
			p.result = buildResult(entry, res)
			// Unfetched results expire so abandoned polls can't pin
			// memory. The timer must exist before the WaitGroup claim
			// releases: Drain's sweep runs after evals.Wait, so it is
			// guaranteed to see (and stop) every timer.
			p.tm = time.AfterFunc(s.cfg.ResultTTL, func() { s.results.Delete(id) })
			close(p.done)
			t.release(1)
			s.evals.Done()
		},
	})
	if err != nil {
		s.results.Delete(id)
		s.unwind(t, 1)
		writeErr(w, http.StatusServiceUnavailable, err.Error(), 0)
		return
	}
	writeJSON(w, http.StatusAccepted, api.AsyncResponse{ID: id})
}

func (s *Server) handleResult(w http.ResponseWriter, r *http.Request) {
	tenantName, ok := requestTenant(w, r)
	if !ok {
		return
	}
	id := r.PathValue("id")
	v, found := s.results.Load(id)
	if !found {
		writeErr(w, http.StatusNotFound, "unknown or expired result id", 0)
		return
	}
	p := v.(*pending)
	if p.tenant != tenantName {
		// Result IDs are tenant-scoped capabilities.
		writeErr(w, http.StatusNotFound, "unknown or expired result id", 0)
		return
	}
	timeout := 30 * time.Second
	if raw := r.URL.Query().Get("timeout"); raw != "" {
		d, err := time.ParseDuration(raw)
		if err != nil {
			writeErr(w, http.StatusBadRequest, "bad timeout: "+err.Error(), 0)
			return
		}
		timeout = min(max(d, 0), 2*time.Minute)
	}
	// deliver hands the result to exactly one poller: of two concurrent
	// polls, only the one that wins the delete gets the body — and the
	// winner also retires the TTL reaper (written before done closed).
	deliver := func() {
		if _, won := s.results.LoadAndDelete(id); !won {
			writeErr(w, http.StatusNotFound, "unknown or expired result id", 0)
			return
		}
		if p.tm != nil {
			p.tm.Stop()
		}
		writeJSON(w, http.StatusOK, p.result)
	}
	timer := time.NewTimer(timeout)
	defer timer.Stop()
	select {
	case <-p.done:
		deliver()
	case <-s.stopWake:
		// Drain began: fail fast with 503 so the client re-resolves to a
		// healthy peer instead of hanging to its poll timeout — unless the
		// result is already here, in which case deliver it on the way out.
		select {
		case <-p.done:
			deliver()
		default:
			writeErr(w, http.StatusServiceUnavailable, ErrDraining.Error(), 0)
		}
	case <-timer.C:
		writeJSON(w, http.StatusAccepted, api.PendingResponse{Pending: true})
	case <-r.Context().Done():
	}
}

func (s *Server) handleBatch(w http.ResponseWriter, r *http.Request) {
	tenantName, ok := requestTenant(w, r)
	if !ok {
		return
	}
	// The batch size is unknown until the body is decoded, so admission
	// runs in two steps: one instance's worth up front — the decode of an
	// up-to-8MiB body must not be free for an over-limit tenant — and the
	// remaining n-1 once n is known.
	t := s.tenantFor(tenantName)
	if !s.admit(w, t, 1) {
		return
	}
	var req api.BatchRequest
	if !s.decode(w, r, &req) {
		s.unwind(t, 1)
		return
	}
	n := len(req.Sources)
	if n == 0 {
		s.unwind(t, 1)
		writeErr(w, http.StatusBadRequest, "empty batch", 0)
		return
	}
	if n > s.cfg.MaxBatch {
		s.unwind(t, 1)
		writeErr(w, http.StatusBadRequest, fmt.Sprintf("batch of %d exceeds limit %d", n, s.cfg.MaxBatch), 0)
		return
	}
	entry, st, ok := s.resolveSchema(w, req.Schema, req.Strategy)
	if !ok {
		s.unwind(t, 1)
		return
	}
	srcs := make([]map[string]value.Value, n)
	for i, m := range req.Sources {
		src, err := api.DecodeSources(m)
		if err != nil {
			s.unwind(t, 1)
			writeErr(w, http.StatusBadRequest, fmt.Sprintf("instance %d: %v", i, err), 0)
			return
		}
		srcs[i] = src
	}
	if n > 1 && !s.admit(w, t, n-1) {
		s.unwind(t, 1)
		return
	}
	if req.Stream {
		s.batchStream(w, r, t, tenantName, entry, st, srcs)
		return
	}

	results := make([]api.EvalResult, n)
	var wg sync.WaitGroup
	wg.Add(n)
	for i, src := range srcs {
		i := i
		shc := s.shadowSample(entry, tenantName, st, src, nil)
		err := s.svc.Submit(runtime.Request{
			Schema:   entry.schema,
			Sources:  src,
			Strategy: st,
			Tenant:   tenantName,
			Ctx:      r.Context(),
			Done: func(res *engine.Result) {
				s.shadowFinish(shc, entry, res)
				s.captureEval(entry, tenantName, st, src, nil, res)
				results[i] = buildResult(entry, res)
				wg.Done()
			},
		})
		if err != nil {
			results[i] = api.EvalResult{Error: err.Error()}
			wg.Done()
		}
	}
	wg.Wait()
	t.release(n)
	s.evals.Add(-n)
	writeJSON(w, http.StatusOK, api.BatchResponse{Results: results})
}

// batchStream delivers batch results as NDJSON in completion order, so a
// slow instance doesn't block delivery of finished ones.
func (s *Server) batchStream(w http.ResponseWriter, r *http.Request, t *tenant, tenantName string, entry *schemaEntry, st engine.Strategy, srcs []map[string]value.Value) {
	n := len(srcs)
	items := make(chan api.BatchItem, n)
	for i, src := range srcs {
		i := i
		shc := s.shadowSample(entry, tenantName, st, src, nil)
		err := s.svc.Submit(runtime.Request{
			Schema:   entry.schema,
			Sources:  src,
			Strategy: st,
			Tenant:   tenantName,
			Ctx:      r.Context(),
			Done: func(res *engine.Result) {
				s.shadowFinish(shc, entry, res)
				s.captureEval(entry, tenantName, st, src, nil, res)
				items <- api.BatchItem{Index: i, EvalResult: buildResult(entry, res)}
			},
		})
		if err != nil {
			items <- api.BatchItem{Index: i, EvalResult: api.EvalResult{Error: err.Error()}}
		}
	}
	w.Header().Set("Content-Type", "application/x-ndjson")
	w.WriteHeader(http.StatusOK)
	enc := json.NewEncoder(w)
	flusher, _ := w.(http.Flusher)
	gone := false
	for received := 0; received < n; received++ {
		item := <-items
		if gone {
			continue // keep draining so claims release correctly
		}
		if r.Context().Err() != nil || enc.Encode(item) != nil {
			gone = true
			continue
		}
		if flusher != nil {
			flusher.Flush()
		}
	}
	t.release(n)
	s.evals.Add(-n)
}

// statsResponse builds the stats view shared by GET /v1/stats and the
// binary Stats frame.
func (s *Server) statsResponse() (api.StatsResponse, error) {
	svcStats, err := json.Marshal(s.svc.Stats())
	if err != nil {
		return api.StatsResponse{}, err
	}
	s.tmu.Lock()
	tenants := make(map[string]api.TenantAdmission, len(s.tenants))
	for name, t := range s.tenants {
		tenants[name] = t.admission()
	}
	s.tmu.Unlock()
	s.mu.RLock()
	regErr := s.wal.failedErr()
	names := make([]string, 0, len(s.schemas))
	for name := range s.schemas {
		names = append(names, name)
	}
	slices.Sort(names)
	details := make([]api.SchemaInfo, 0, len(names))
	for _, name := range names {
		e := s.schemas[name]
		details = append(details, api.SchemaInfo{
			Name:        name,
			Version:     e.version,
			Fingerprint: fmt.Sprintf("%016x", e.fingerprint),
			Owner:       e.owner,
			Shadow:      e.shadow.Load() != nil,
		})
	}
	s.mu.RUnlock()
	resp := api.StatsResponse{
		Service:          svcStats,
		Tenants:          tenants,
		UptimeMs:         time.Since(s.start).Milliseconds(),
		Draining:         s.Draining(),
		Schemas:          names,
		SchemaDetails:    details,
		RecoveredSchemas: s.recovery.Schemas,
		RecoveryMs:       s.recovery.Duration.Milliseconds(),
		Capture:          s.CaptureStats(),
	}
	if regErr != nil {
		// Both degradations (poisoned, disk-full) read as read-only to an
		// operator: the server serves what it has and refuses new
		// registrations until restarted. The error text tells them which.
		resp.RegistryReadOnly = true
		resp.RegistryError = regErr.Error()
	}
	return resp, nil
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	resp, err := s.statsResponse()
	if err != nil {
		writeErr(w, http.StatusInternalServerError, err.Error(), 0)
		return
	}
	// ?fleet=1 aggregates across the peer fleet (HTTP only; the binary
	// Stats frame always answers locally, so the fan-out cannot recurse).
	if s.peers != nil && r.URL.Query().Get("fleet") != "" {
		resp.Fleet = s.peers.fleet(r.Context(), &resp)
	}
	writeJSON(w, http.StatusOK, resp)
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	if s.Draining() {
		writeErr(w, http.StatusServiceUnavailable, "draining", 0)
		return
	}
	w.Header().Set("Content-Type", "text/plain")
	io.WriteString(w, "ok\n")
}
