package cliconf

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"sort"
	"strconv"
	"strings"
)

// ApplyConfigFile merges a config file under the command line: every
// `key = value` in the file names a flag on fs, and is applied unless
// that flag was set explicitly on the command line (flags win — the file
// provides defaults, not overrides). The file is either a TOML-subset
// (one `key = value` per line, `#` comments, optionally quoted values)
// or a JSON object; the -config and -dumpconfig flags themselves cannot
// be set from a file. An empty path is a no-op. Unknown keys are errors:
// a typo in a config file must fail loudly, not silently configure
// nothing.
func ApplyConfigFile(fs *flag.FlagSet, path string) error {
	if path == "" {
		return nil
	}
	data, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	kv, err := parseConfig(data)
	if err != nil {
		return fmt.Errorf("config %s: %w", path, err)
	}

	set := make(map[string]bool) // flags the command line set explicitly
	fs.Visit(func(fl *flag.Flag) { set[fl.Name] = true })

	// Sorted for deterministic error reporting.
	keys := make([]string, 0, len(kv))
	for k := range kv {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		if k == "config" || k == "dumpconfig" {
			return fmt.Errorf("config %s: key %q cannot be set from a config file", path, k)
		}
		if fs.Lookup(k) == nil {
			return fmt.Errorf("config %s: unknown key %q (no such flag)", path, k)
		}
		if set[k] {
			continue
		}
		if err := fs.Set(k, kv[k]); err != nil {
			return fmt.Errorf("config %s: key %q: %w", path, k, err)
		}
	}
	return nil
}

// parseConfig decodes either format into flag-settable strings.
func parseConfig(data []byte) (map[string]string, error) {
	trimmed := strings.TrimSpace(string(data))
	if strings.HasPrefix(trimmed, "{") {
		return parseJSONConfig([]byte(trimmed))
	}
	return parseTOMLConfig(trimmed)
}

func parseJSONConfig(data []byte) (map[string]string, error) {
	var raw map[string]any
	if err := json.Unmarshal(data, &raw); err != nil {
		return nil, err
	}
	out := make(map[string]string, len(raw))
	for k, v := range raw {
		switch t := v.(type) {
		case string:
			out[k] = t
		case bool:
			out[k] = strconv.FormatBool(t)
		case float64:
			out[k] = strconv.FormatFloat(t, 'g', -1, 64)
		default:
			return nil, fmt.Errorf("key %q: unsupported value %v (want string, number or bool)", k, v)
		}
	}
	return out, nil
}

func parseTOMLConfig(text string) (map[string]string, error) {
	out := make(map[string]string)
	for n, line := range strings.Split(text, "\n") {
		// Strip comments outside quotes, then whitespace.
		if i := commentStart(line); i >= 0 {
			line = line[:i]
		}
		line = strings.TrimSpace(line)
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "[") {
			return nil, fmt.Errorf("line %d: sections are not supported (flags are a flat namespace)", n+1)
		}
		key, val, ok := strings.Cut(line, "=")
		if !ok {
			return nil, fmt.Errorf("line %d: want `key = value`, got %q", n+1, line)
		}
		key = strings.TrimSpace(key)
		val = strings.TrimSpace(val)
		if key == "" {
			return nil, fmt.Errorf("line %d: empty key", n+1)
		}
		if strings.HasPrefix(val, `"`) {
			var err error
			if val, err = strconv.Unquote(val); err != nil {
				return nil, fmt.Errorf("line %d: bad quoted value: %v", n+1, err)
			}
		}
		if _, dup := out[key]; dup {
			return nil, fmt.Errorf("line %d: duplicate key %q", n+1, key)
		}
		out[key] = val
	}
	return out, nil
}

// commentStart finds an unquoted # in the line, or -1.
func commentStart(line string) int {
	inStr := false
	for i := 0; i < len(line); i++ {
		switch line[i] {
		case '"':
			inStr = !inStr
		case '\\':
			if inStr {
				i++
			}
		case '#':
			if !inStr {
				return i
			}
		}
	}
	return -1
}

// Dump renders every flag of fs (the -config/-dumpconfig meta-flags
// excepted) as a config file in the TOML-subset form, one sorted
// `key = value` per line. The output round-trips through
// ApplyConfigFile, so `dfsd -dumpconfig > dfsd.toml` captures an
// invocation's effective configuration for replay with `-config`.
func Dump(fs *flag.FlagSet) string {
	var b strings.Builder
	fs.VisitAll(func(fl *flag.Flag) {
		if fl.Name == "config" || fl.Name == "dumpconfig" {
			return
		}
		v := fl.Value.String()
		if v == "" || strings.ContainsAny(v, " \t#\"=") {
			v = strconv.Quote(v)
		}
		fmt.Fprintf(&b, "%s = %s\n", fl.Name, v)
	})
	return b.String()
}
