package cliconf

import (
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

func newSet(t *testing.T) (*flag.FlagSet, *Flags) {
	t.Helper()
	var f Flags
	fs := flag.NewFlagSet("test", flag.ContinueOnError)
	f.Register(fs)
	return fs, &f
}

func writeTemp(t *testing.T, name, content string) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), name)
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

// The server-side set is what dfserve -remote rejects; -config must be
// in it (a config file configures the local stack, meaningless against
// a remote daemon), while -seed and -dumpconfig must stay usable.
func TestServerSideFlagNamesMembership(t *testing.T) {
	names := ServerSideFlagNames()
	if !names["config"] {
		t.Error("config must be server-side: -config with -remote should error loudly")
	}
	if names["seed"] {
		t.Error("seed must not be server-side: it drives the load generator too")
	}
	if names["dumpconfig"] {
		t.Error("dumpconfig must not be server-side: it only prints configuration")
	}
	if !names["backend"] || !names["shards"] {
		t.Error("derived set is missing ordinary stack flags")
	}
}

func TestApplyConfigFileTOML(t *testing.T) {
	fs, f := newSet(t)
	path := writeTemp(t, "dfsd.toml", `
# production-shaped query layer
backend = "latency"   # quoted string, trailing comment
base = 500us
batch = 32
dedup = true
lb = p2c              # bare string value
jitter = 0.5
`)
	if err := ApplyConfigFile(fs, path); err != nil {
		t.Fatal(err)
	}
	if f.Backend != "latency" || f.Base != 500*time.Microsecond || f.Batch != 32 ||
		!f.Dedup || f.LBName != "p2c" || f.Jitter != 0.5 {
		t.Fatalf("config not applied: %+v", f)
	}
	if f.Cache != 0 {
		t.Fatalf("untouched flag lost its default: cache = %d", f.Cache)
	}
}

func TestApplyConfigFileJSON(t *testing.T) {
	fs, f := newSet(t)
	path := writeTemp(t, "dfsd.json", `{
		"backend": "simdb",
		"scale": 0.25,
		"shards": 4,
		"dedup": true,
		"window": "1ms"
	}`)
	if err := ApplyConfigFile(fs, path); err != nil {
		t.Fatal(err)
	}
	if f.Backend != "simdb" || f.Scale != 0.25 || f.Shards != 4 ||
		!f.Dedup || f.Window != time.Millisecond {
		t.Fatalf("config not applied: %+v", f)
	}
}

// Explicit command-line flags beat the file: the file supplies defaults.
func TestApplyConfigFileFlagsWin(t *testing.T) {
	fs, f := newSet(t)
	if err := fs.Parse([]string{"-batch", "64", "-backend", "instant"}); err != nil {
		t.Fatal(err)
	}
	path := writeTemp(t, "c.toml", "batch = 8\nbackend = latency\ncache = 1024\n")
	if err := ApplyConfigFile(fs, path); err != nil {
		t.Fatal(err)
	}
	if f.Batch != 64 || f.Backend != "instant" {
		t.Fatalf("command line lost to the file: %+v", f)
	}
	if f.Cache != 1024 {
		t.Fatalf("file default not applied for unset flag: cache = %d", f.Cache)
	}
}

func TestApplyConfigFileErrors(t *testing.T) {
	cases := []struct {
		name, content, wantSub string
	}{
		{"unknown key", "nosuchflag = 1\n", "unknown key"},
		{"meta flag", `config = "other.toml"` + "\n", "cannot be set from a config file"},
		{"bad value", "batch = many\n", `key "batch"`},
		{"section", "[cluster]\nshards = 4\n", "sections are not supported"},
		{"no equals", "just a line\n", "want `key = value`"},
		{"duplicate", "batch = 1\nbatch = 2\n", "duplicate key"},
		{"bad json", `{"batch": [1]}`, "unsupported value"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			fs, _ := newSet(t)
			path := writeTemp(t, "bad.conf", tc.content)
			err := ApplyConfigFile(fs, path)
			if err == nil || !strings.Contains(err.Error(), tc.wantSub) {
				t.Fatalf("want error containing %q, got %v", tc.wantSub, err)
			}
		})
	}
}

func TestApplyConfigFileMissingAndEmpty(t *testing.T) {
	fs, _ := newSet(t)
	if err := ApplyConfigFile(fs, ""); err != nil {
		t.Fatalf("empty path must be a no-op, got %v", err)
	}
	if err := ApplyConfigFile(fs, filepath.Join(t.TempDir(), "absent.toml")); err == nil {
		t.Fatal("missing file must error")
	}
}

// Dump's output must load back through ApplyConfigFile and reproduce
// every flag value — the `-dumpconfig > file` / `-config file` loop.
func TestDumpRoundTrip(t *testing.T) {
	fs, f := newSet(t)
	args := []string{
		"-backend", "latency", "-base", "750us", "-batch", "16",
		"-dedup", "-lb", "least", "-jitter", "0.3", "-shards", "2",
	}
	if err := fs.Parse(args); err != nil {
		t.Fatal(err)
	}
	dump := Dump(fs)
	if strings.Contains(dump, "config") {
		t.Fatalf("dump must omit the config/dumpconfig meta-flags:\n%s", dump)
	}

	fs2, g := newSet(t)
	path := writeTemp(t, "roundtrip.toml", dump)
	if err := ApplyConfigFile(fs2, path); err != nil {
		t.Fatalf("dump does not round-trip: %v\n%s", err, dump)
	}
	if *f != *g {
		t.Fatalf("round trip changed values:\n got %+v\nwant %+v", *g, *f)
	}
}
