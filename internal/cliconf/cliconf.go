// Package cliconf is the shared CLI configuration of the serving
// commands: cmd/dfserve (in-process load generator) and cmd/dfsd (network
// daemon) accept the same backend / query-layer / cluster flags, and this
// package registers, validates, and materializes them exactly once. A
// flag added here shows up in both commands with identical semantics.
package cliconf

import (
	"flag"
	"fmt"
	"strings"
	"time"

	"repro/internal/runtime"
	"repro/internal/simdb"
)

// Flags is the shared serving configuration; Register wires it into a
// FlagSet, Build materializes the runtime.Service.
type Flags struct {
	Workers  int
	InFlight int

	Backend   string
	Base      time.Duration
	PerUnit   time.Duration
	Jitter    float64
	Parallel  int
	Scale     float64
	Seed      int64
	FailRate  float64
	StallRate float64

	Batch    int
	Window   time.Duration
	Dedup    bool
	Cache    int
	CacheTTL time.Duration

	Shards   int
	Replicas int
	LBName   string
	Hedge    time.Duration
	HedgeQ   float64
	Retries  int
	Deadline time.Duration
	Skew     float64

	LatencyWindow int

	// ConfigPath and DumpConfig are the config-file meta-flags: -config
	// loads file defaults under the explicit command line
	// (ApplyConfigFile), -dumpconfig prints the effective configuration
	// in that same format (Dump) and exits.
	ConfigPath string
	DumpConfig bool
}

// Register declares every shared flag on fs.
func (f *Flags) Register(fs *flag.FlagSet) {
	fs.IntVar(&f.Workers, "workers", 0, "service workers (0 = GOMAXPROCS)")
	fs.IntVar(&f.InFlight, "inflight", 0, "global in-flight task bound (0 = 16x workers)")
	fs.StringVar(&f.Backend, "backend", "instant", "database backend: instant | latency | simdb")
	fs.DurationVar(&f.Base, "base", 200*time.Microsecond, "latency backend: fixed per-query latency")
	fs.DurationVar(&f.PerUnit, "perunit", 50*time.Microsecond, "latency backend: latency per unit of processing")
	fs.Float64Var(&f.Jitter, "jitter", 0.2, "latency backend: relative jitter in [0,1)")
	fs.IntVar(&f.Parallel, "parallel", 0, "latency backend: max concurrent queries (0 = unbounded)")
	fs.Float64Var(&f.Scale, "scale", 0.01, "simdb backend: wall-clock ms per virtual ms")
	fs.Int64Var(&f.Seed, "seed", 1, "seed for arrivals and the simulated database")
	fs.Float64Var(&f.FailRate, "failrate", 0, "fault injection: fraction of queries erroring (latency/simdb backends)")
	fs.Float64Var(&f.StallRate, "stallrate", 0, "fault injection: fraction of queries never completing (latency/simdb backends)")
	fs.IntVar(&f.Batch, "batch", 0, "query layer: max queries per combined backend call (0/1 = no batching)")
	fs.DurationVar(&f.Window, "window", 200*time.Microsecond, "query layer: batch deadline window")
	fs.BoolVar(&f.Dedup, "dedup", false, "query layer: single-flight dedup of identical in-flight queries")
	fs.IntVar(&f.Cache, "cache", 0, "query layer: attribute-result cache entries (0 = no cache)")
	fs.DurationVar(&f.CacheTTL, "cachettl", 0, "query layer: cache entry TTL (0 = never expires)")
	fs.IntVar(&f.Shards, "shards", 0, "cluster: consistent-hash shards (0 = single backend, no cluster)")
	fs.IntVar(&f.Replicas, "replicas", 1, "cluster: replicas per shard")
	fs.StringVar(&f.LBName, "lb", "rr", "cluster: replica load balancing: rr | least | p2c")
	fs.DurationVar(&f.Hedge, "hedge", 0, "cluster: hedge a request on a second replica after this delay (0 = off)")
	fs.Float64Var(&f.HedgeQ, "hedgeq", 0, "cluster: hedge past this observed latency quantile, e.g. 0.95 (used when -hedge is 0)")
	fs.IntVar(&f.Retries, "retries", 1, "cluster: extra attempts (on another replica) after an error or timeout")
	fs.DurationVar(&f.Deadline, "deadline", 0, "cluster: per-attempt deadline; timeouts retry elsewhere (0 = none)")
	fs.Float64Var(&f.Skew, "skew", 1, "cluster: slow down the last replica of shard 0 by this factor (tail-at-scale demo)")
	fs.StringVar(&f.ConfigPath, "config", "", "load flag defaults from this file (TOML-subset `key = value` lines or a JSON object); explicit flags win")
	fs.BoolVar(&f.DumpConfig, "dumpconfig", false, "print the effective configuration as a -config file and exit")
}

// PeerFlags is the front-end fleet configuration — daemon-only (dfsd
// registers it beside the shared Flags; dfserve has no peers), but it
// lives here so the config-file machinery (ApplyConfigFile / Dump)
// covers `peers = ...` lines exactly like every other flag.
type PeerFlags struct {
	// Peers is the comma-separated full fleet member list of dfbin
	// addresses, this node's own included. Empty disables the tier.
	Peers string
	// Self is this node's own entry in Peers.
	Self string
}

// Register declares the peer flags on fs.
func (p *PeerFlags) Register(fs *flag.FlagSet) {
	fs.StringVar(&p.Peers, "peers", "", "front-end fleet: comma-separated dfbin addresses of every node, this one included (empty = standalone)")
	fs.StringVar(&p.Self, "self", "", "front-end fleet: this node's own address in -peers")
}

// Members parses the -peers list (empty slice when the tier is off).
func (p *PeerFlags) Members() []string {
	if p.Peers == "" {
		return nil
	}
	var out []string
	for _, m := range strings.Split(p.Peers, ",") {
		if m = strings.TrimSpace(m); m != "" {
			out = append(out, m)
		}
	}
	return out
}

// Validate checks the peer flags against the shared flags: peer routing
// keys off the query layer's sharing tables, so a fleet without dedup or
// cache would forward queries only to re-run every one at the home.
func (p *PeerFlags) Validate(f *Flags) error {
	members := p.Members()
	if len(members) == 0 {
		if p.Self != "" {
			return fmt.Errorf("-self without -peers")
		}
		return nil
	}
	if len(members) < 2 {
		return fmt.Errorf("-peers needs at least two members (got %d); a fleet of one is just -dedup/-cache", len(members))
	}
	if p.Self == "" {
		return fmt.Errorf("-peers needs -self naming this node's own address in the list")
	}
	found := false
	for _, m := range members {
		if m == p.Self {
			found = true
		}
	}
	if !found {
		return fmt.Errorf("-self %q is not in -peers %q", p.Self, p.Peers)
	}
	if !f.Dedup && f.Cache <= 0 {
		return fmt.Errorf("-peers needs the query layer's sharing tables: enable -dedup and/or -cache")
	}
	return nil
}

// CaptureFlags groups dfsd's eval-capture flags, registered alongside the
// shared serving flags so -config files can set them too.
type CaptureFlags struct {
	// Dir is the capture directory; empty disables capture.
	Dir string
	// RotateBytes rotates capture files past this size (0 = 64 MiB).
	RotateBytes int64
	// Ring is the hand-off ring capacity between the serving hot path and
	// the capture disk goroutine (0 = 1024).
	Ring int
}

// Register declares the capture flags on fs.
func (c *CaptureFlags) Register(fs *flag.FlagSet) {
	fs.StringVar(&c.Dir, "capture", "", "record every admitted eval to capture files in this directory for dfreplay (empty = off)")
	fs.Int64Var(&c.RotateBytes, "capture-rotate", 0, "rotate capture files past this many bytes (0 = 64 MiB; needs -capture)")
	fs.IntVar(&c.Ring, "capture-ring", 0, "capture ring capacity; a full ring drops and counts (0 = 1024; needs -capture)")
}

// Validate rejects capture tuning without capture itself.
func (c *CaptureFlags) Validate() error {
	if c.Dir == "" {
		if c.RotateBytes != 0 {
			return fmt.Errorf("-capture-rotate without -capture")
		}
		if c.Ring != 0 {
			return fmt.Errorf("-capture-ring without -capture")
		}
		return nil
	}
	if c.RotateBytes < 0 {
		return fmt.Errorf("-capture-rotate must be positive")
	}
	if c.Ring < 0 {
		return fmt.Errorf("-capture-ring must be positive")
	}
	return nil
}

// ServerSideFlagNames lists the flags Register declares that configure
// the in-process serving stack — everything except -seed (which also
// drives the load generator) and -dumpconfig (pure output, no stack
// effect). -config IS in the set: a config file configures the local
// stack, so combining it with dfserve -remote must error loudly rather
// than silently configure a stack that will never be built. A command
// that is not going to Build() the stack (dfserve -remote drives a
// daemon that was configured with its own flags) uses this to reject
// such flags instead of silently ignoring them. The set is derived from
// Register itself so a new flag can never be forgotten here.
func ServerSideFlagNames() map[string]bool {
	var f Flags
	fs := flag.NewFlagSet("cliconf", flag.ContinueOnError)
	f.Register(fs)
	m := make(map[string]bool)
	fs.VisitAll(func(fl *flag.Flag) {
		if fl.Name != "seed" && fl.Name != "dumpconfig" {
			m[fl.Name] = true
		}
	})
	return m
}

// Validate rejects inconsistent combinations (same rules dfserve has
// always enforced).
func (f *Flags) Validate() error {
	if f.StallRate > 0 {
		// A stalled query never completes on its own; only a cluster
		// deadline can abandon it and retry elsewhere. Without one the run
		// would hang forever.
		if f.Shards == 0 && f.Replicas <= 1 {
			return fmt.Errorf("-stallrate needs a cluster (-shards/-replicas) so stalled queries can fail over")
		}
		if f.Deadline <= 0 {
			return fmt.Errorf("-stallrate needs -deadline > 0: a stalled query only fails over when its attempt times out")
		}
	}
	return nil
}

// Built is the materialized serving stack.
type Built struct {
	// Service is the running serving runtime.
	Service *runtime.Service
	// Cluster is non-nil when the backend is a shard × replica cluster.
	Cluster *runtime.Cluster
	// Paced holds every paced-simdb backend cell, for stats and Stop.
	Paced []*runtime.PacedSim
	f     *Flags
}

// Build validates the flags and starts the service.
func (f *Flags) Build() (*Built, error) {
	if err := f.Validate(); err != nil {
		return nil, err
	}
	bu := &Built{f: f}

	// newBackend builds one backend copy — the single backend, or the
	// (shard, replica) cell of a cluster. skewFactor > 1 slows the copy
	// down, modeling the tail-at-scale slow machine.
	newBackend := func(skewFactor float64, seedOff int64) (runtime.Backend, error) {
		switch f.Backend {
		case "instant":
			return runtime.Instant{}, nil
		case "latency":
			return &runtime.Latency{
				Base:      time.Duration(float64(f.Base) * skewFactor),
				PerUnit:   time.Duration(float64(f.PerUnit) * skewFactor),
				Jitter:    f.Jitter,
				Parallel:  f.Parallel,
				FailRate:  f.FailRate,
				StallRate: f.StallRate,
				Seed:      f.Seed + seedOff,
			}, nil
		case "simdb":
			p := simdb.DefaultParams()
			p.FailProb = f.FailRate
			p.StallProb = f.StallRate
			p.SlowFactor = skewFactor
			ps := runtime.NewPacedSim(p, f.Seed+seedOff, f.Scale)
			bu.Paced = append(bu.Paced, ps)
			return ps, nil
		default:
			return nil, fmt.Errorf("unknown backend %q (want instant, latency or simdb)", f.Backend)
		}
	}

	var db runtime.Backend
	if f.Shards > 0 || f.Replicas > 1 {
		lb, err := runtime.ParseLBPolicy(f.LBName)
		if err != nil {
			return nil, err
		}
		var buildErr error
		bu.Cluster = runtime.NewCluster(runtime.ClusterConfig{
			Shards:        max(f.Shards, 1),
			Replicas:      f.Replicas,
			LB:            lb,
			Retries:       f.Retries,
			Deadline:      f.Deadline,
			HedgeDelay:    f.Hedge,
			HedgeQuantile: f.HedgeQ,
			New: func(s, r int) runtime.Backend {
				sk := 1.0
				if f.Skew > 1 && s == 0 && r == f.Replicas-1 {
					sk = f.Skew
				}
				b, err := newBackend(sk, int64(s*64+r+1))
				if err != nil && buildErr == nil {
					buildErr = err
				}
				return b
			},
		})
		if buildErr != nil {
			return nil, buildErr
		}
		db = bu.Cluster
	} else {
		var err error
		if db, err = newBackend(1, 0); err != nil {
			return nil, err
		}
	}

	bu.Service = runtime.New(runtime.Config{
		Backend:          db,
		Workers:          f.Workers,
		MaxInFlightTasks: f.InFlight,
		LatencyWindow:    f.LatencyWindow,
		Query: runtime.QueryConfig{
			BatchSize:   f.Batch,
			BatchWindow: f.Window,
			Dedup:       f.Dedup,
			CacheSize:   f.Cache,
			CacheTTL:    f.CacheTTL,
		},
	})
	return bu, nil
}

// Describe renders the configured stack for startup banners: backend name
// plus the optional query-layer and cluster suffixes dfserve has always
// printed.
func (f *Flags) Describe() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s backend", f.Backend)
	if f.Batch > 1 || f.Dedup || f.Cache > 0 {
		fmt.Fprintf(&b, ", query layer [batch=%d window=%v dedup=%v cache=%d ttl=%v]",
			f.Batch, f.Window, f.Dedup, f.Cache, f.CacheTTL)
	}
	if f.Shards > 0 || f.Replicas > 1 {
		fmt.Fprintf(&b, ", cluster [%dx%d lb=%s retries=%d deadline=%v hedge=%v/q%.2f skew=%g]",
			max(f.Shards, 1), f.Replicas, f.LBName, f.Retries, f.Deadline, f.Hedge, f.HedgeQ, f.Skew)
	}
	return b.String()
}

// SimdbSummary renders the paced-simdb stats line (empty when the backend
// is not simdb).
func (bu *Built) SimdbSummary() string {
	if len(bu.Paced) == 0 {
		return ""
	}
	var queries uint64
	var gmpl, unitTime float64
	for _, ps := range bu.Paced {
		g, u, q := ps.Stats()
		queries += q
		gmpl += g
		unitTime += u
	}
	n := float64(len(bu.Paced))
	return fmt.Sprintf("simdb×%d: queries=%d avg Gmpl=%.1f avg UnitTime=%.2fms (virtual)",
		len(bu.Paced), queries, gmpl/n, unitTime/n)
}

// Stop shuts the backends down (after the service has drained): the
// cluster's replicas, or the standalone paced sim.
func (bu *Built) Stop() {
	if bu.Cluster != nil {
		bu.Cluster.Stop()
		return
	}
	for _, ps := range bu.Paced {
		ps.Stop()
	}
}
