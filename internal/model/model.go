// Package model implements the analytical model for finite database
// resources of the paper's §5 ("An Analytical Model for Finite Database
// Resources"): the system of equations relating throughput, per-instance
// work, and response time through the database's load curve.
//
// Variables (paper's names):
//
//	Th            — decision flow instances processed per second
//	Work          — units of processing per instance
//	TimeInUnits   — instance response time in units of processing
//	TimeInSeconds — instance response time in wall time (milliseconds here)
//	UnitTime      — database response time per unit of processing (ms)
//	Lmpl          — per-instance multiprogramming level (queries in parallel)
//	Impl          — instances executing in parallel
//	Gmpl          — database multiprogramming level
//	Db            — the empirically measured map Gmpl → UnitTime
//
// Equations (1)–(6) of the paper reduce, in steady state, to
//
//	Lmpl = Work / TimeInUnits                  (parallelism within one instance)
//	Impl = Th × TimeInSeconds                  (Little's law over instances)
//	Gmpl = Impl × Lmpl                         (total units in flight)
//	UnitTime = Db(Gmpl)
//	TimeInSeconds = TimeInUnits × UnitTime     (each unit stretches by UnitTime)
//
// whose combination is the fixed-point equation
//
//	TimeInSeconds = TimeInUnits × Db(Th × TimeInSeconds × Work / TimeInUnits).
//
// Predict solves it iteratively. Because Db is non-decreasing, the iteration
// either converges (the database can sustain the load) or diverges — the
// paper's criterion for the maximal Work a given throughput can afford.
package model

import (
	"fmt"
	"math"

	"repro/internal/simdb"
)

// Model is the analytical model around a measured Db curve.
type Model struct {
	// Curve is the database's measured Gmpl → UnitTime function.
	Curve *simdb.DbCurve
}

// New returns a model over the given curve.
func New(curve *simdb.DbCurve) *Model {
	if curve == nil {
		panic("model: nil Db curve")
	}
	return &Model{Curve: curve}
}

// Prediction is the model's solution for one operating point.
type Prediction struct {
	// Converged is false when the fixed-point iteration diverges: the
	// database cannot sustain the requested throughput at this Work level.
	Converged bool
	// TimeInSeconds is the predicted instance response time (milliseconds).
	TimeInSeconds float64
	// UnitTime is the database's per-unit response time at the operating
	// point (milliseconds).
	UnitTime float64
	// Gmpl is the database multiprogramming level at the operating point.
	Gmpl float64
	// Impl is the number of instances in flight.
	Impl float64
	// Lmpl is the per-instance multiprogramming level.
	Lmpl float64
}

// maxIterations bounds the fixed-point iteration; convergence, when it
// happens, is geometric, so this is generous.
const maxIterations = 10_000

// divergenceGmpl: if the iterate's Gmpl exceeds the last measured point by
// this factor, the operating point is declared unsustainable.
const divergenceFactor = 100

// Predict solves the model for a throughput th (instances/second), a
// per-instance response time in units timeInUnits, and per-instance work.
func (m *Model) Predict(th, timeInUnits, work float64) Prediction {
	if th <= 0 || timeInUnits <= 0 || work <= 0 {
		panic(fmt.Sprintf("model: Predict needs positive inputs (th=%v, units=%v, work=%v)",
			th, timeInUnits, work))
	}
	lmpl := work / timeInUnits
	pts := m.Curve.Points()
	gmplCap := float64(pts[len(pts)-1].Gmpl) * divergenceFactor

	// Fixed point of T = timeInUnits × Db(th/1000 × T × lmpl), T in ms.
	t := timeInUnits * m.Curve.UnitTime(0)
	for i := 0; i < maxIterations; i++ {
		gmpl := th / 1000 * t * lmpl
		if gmpl > gmplCap {
			return Prediction{Converged: false, Lmpl: lmpl, Gmpl: gmpl, TimeInSeconds: math.Inf(1)}
		}
		next := timeInUnits * m.Curve.UnitTime(gmpl)
		if math.Abs(next-t) < 1e-9*(1+t) {
			u := m.Curve.UnitTime(gmpl)
			return Prediction{
				Converged:     true,
				TimeInSeconds: next,
				UnitTime:      u,
				Gmpl:          gmpl,
				Impl:          th / 1000 * next,
				Lmpl:          lmpl,
			}
		}
		// Damped update keeps oscillation-free convergence near the
		// stability boundary.
		t = 0.5*t + 0.5*next
	}
	return Prediction{Converged: false, Lmpl: lmpl, TimeInSeconds: math.Inf(1)}
}

// OperatingPoint is a (Work, TimeInUnits) pair offered by some execution
// strategy — one row of a guideline map.
type OperatingPoint struct {
	// Strategy is the strategy code that realizes the point (e.g. "PC*100").
	Strategy string
	// Work is the strategy's average units of processing per instance.
	Work float64
	// TimeInUnits is the strategy's average response time in units.
	TimeInUnits float64
}

// MaxWork returns, per the paper's first tuning prescription, the largest
// Work among the offered operating points that the given throughput can
// sustain (i.e. whose prediction converges); ok is false when none can.
func (m *Model) MaxWork(th float64, points []OperatingPoint) (maxWork float64, ok bool) {
	for _, p := range points {
		if pr := m.Predict(th, p.TimeInUnits, p.Work); pr.Converged && p.Work > maxWork {
			maxWork = p.Work
			ok = true
		}
	}
	return maxWork, ok
}

// Choice is the model's recommendation for one operating point.
type Choice struct {
	OperatingPoint
	Prediction Prediction
}

// Best applies the paper's second tuning prescription: among the offered
// operating points, choose the one with the smallest predicted
// TimeInSeconds at throughput th. ok is false when no point is sustainable.
func (m *Model) Best(th float64, points []OperatingPoint) (Choice, bool) {
	var best Choice
	found := false
	for _, p := range points {
		pr := m.Predict(th, p.TimeInUnits, p.Work)
		if !pr.Converged {
			continue
		}
		if !found || pr.TimeInSeconds < best.Prediction.TimeInSeconds {
			best = Choice{OperatingPoint: p, Prediction: pr}
			found = true
		}
	}
	return best, found
}
