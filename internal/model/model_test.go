package model

import (
	"math"
	"testing"

	"repro/internal/simdb"
)

// flatCurve: constant UnitTime regardless of load (no contention).
func flatCurve(u float64) *simdb.DbCurve {
	return simdb.NewDbCurve([]simdb.CurvePoint{{Gmpl: 1, UnitTime: u}})
}

// risingCurve: UnitTime = 2 + 0.5*Gmpl over the measured range.
func risingCurve() *simdb.DbCurve {
	pts := []simdb.CurvePoint{}
	for _, g := range []int{1, 2, 4, 8, 16, 32} {
		pts = append(pts, simdb.CurvePoint{Gmpl: g, UnitTime: 2 + 0.5*float64(g)})
	}
	return simdb.NewDbCurve(pts)
}

func TestNewNilPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("nil curve must panic")
		}
	}()
	New(nil)
}

func TestPredictFlatCurve(t *testing.T) {
	// With a flat Db, TimeInSeconds = TimeInUnits × UnitTime exactly.
	m := New(flatCurve(3.5))
	pr := m.Predict(10, 40, 100)
	if !pr.Converged {
		t.Fatal("flat curve must converge")
	}
	if math.Abs(pr.TimeInSeconds-140) > 1e-6 {
		t.Errorf("TimeInSeconds = %v, want 140", pr.TimeInSeconds)
	}
	if math.Abs(pr.UnitTime-3.5) > 1e-9 {
		t.Errorf("UnitTime = %v", pr.UnitTime)
	}
	if math.Abs(pr.Lmpl-2.5) > 1e-9 { // 100/40
		t.Errorf("Lmpl = %v, want 2.5", pr.Lmpl)
	}
	// Little's law: Impl = Th × T = 10/s × 0.14 s = 1.4.
	if math.Abs(pr.Impl-1.4) > 1e-6 {
		t.Errorf("Impl = %v, want 1.4", pr.Impl)
	}
	// Gmpl = Impl × Lmpl.
	if math.Abs(pr.Gmpl-pr.Impl*pr.Lmpl) > 1e-6 {
		t.Errorf("Gmpl = %v, want Impl×Lmpl = %v", pr.Gmpl, pr.Impl*pr.Lmpl)
	}
}

func TestPredictSelfConsistent(t *testing.T) {
	// At the fixed point, T = TimeInUnits × Db(Gmpl) must hold.
	m := New(risingCurve())
	pr := m.Predict(10, 40, 100)
	if !pr.Converged {
		t.Fatal("should converge at moderate load")
	}
	if math.Abs(pr.TimeInSeconds-40*m.Curve.UnitTime(pr.Gmpl)) > 1e-6 {
		t.Errorf("fixed point violated: T=%v, units×Db=%v",
			pr.TimeInSeconds, 40*m.Curve.UnitTime(pr.Gmpl))
	}
	// Higher throughput -> strictly higher response time on a rising curve.
	// (th=20 would sit exactly on the stability boundary for these inputs,
	// so probe at 15.)
	pr2 := m.Predict(15, 40, 100)
	if !pr2.Converged || pr2.TimeInSeconds <= pr.TimeInSeconds {
		t.Errorf("T(th=15)=%v should exceed T(th=10)=%v", pr2.TimeInSeconds, pr.TimeInSeconds)
	}
}

func TestPredictDivergesUnderOverload(t *testing.T) {
	// risingCurve slope b=0.5 ms per Gmpl unit: capacity ≈ 1000/(b×Lmpl×...)
	// — at absurd throughput the iteration must diverge.
	m := New(risingCurve())
	pr := m.Predict(10000, 40, 400)
	if pr.Converged {
		t.Fatal("overload must diverge")
	}
	if !math.IsInf(pr.TimeInSeconds, 1) {
		t.Error("diverged prediction should report +inf response time")
	}
}

func TestPredictStabilityBoundary(t *testing.T) {
	// With Db(g) = 2 + 0.5 g, T = U×(2+0.5×th/1000×T×L) has a solution iff
	// 0.5×U×th/1000×L < 1. Pick parameters just under and just over.
	m := New(risingCurve())
	u, w := 10.0, 50.0 // Lmpl = 5
	// boundary th* = 1000/(0.5×u×L) = 1000/(0.5×10×5) = 40.
	under := m.Predict(30, u, w)
	if !under.Converged {
		t.Error("just-under-boundary must converge")
	}
	over := m.Predict(60, u, w)
	if over.Converged {
		t.Error("just-over-boundary must diverge")
	}
}

func TestPredictInvalidInputsPanic(t *testing.T) {
	m := New(flatCurve(1))
	for _, in := range [][3]float64{{0, 1, 1}, {1, 0, 1}, {1, 1, 0}, {-1, 1, 1}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("Predict%v should panic", in)
				}
			}()
			m.Predict(in[0], in[1], in[2])
		}()
	}
}

func TestMaxWork(t *testing.T) {
	m := New(risingCurve())
	points := []OperatingPoint{
		{Strategy: "PCE0", Work: 50, TimeInUnits: 50},     // Lmpl 1: easy
		{Strategy: "PC*100", Work: 60, TimeInUnits: 20},   // Lmpl 3
		{Strategy: "PS*100", Work: 5000, TimeInUnits: 20}, // absurd work
	}
	w, ok := m.MaxWork(10, points)
	if !ok {
		t.Fatal("some point must be sustainable")
	}
	if w != 60 {
		t.Errorf("MaxWork = %v, want 60 (5000-unit point unsustainable)", w)
	}
	// At impossible throughput nothing is sustainable.
	if _, ok := m.MaxWork(1e9, points); ok {
		t.Error("nothing should be sustainable at absurd throughput")
	}
}

func TestBestPicksMinPredictedTime(t *testing.T) {
	m := New(risingCurve())
	points := []OperatingPoint{
		{Strategy: "serial", Work: 100, TimeInUnits: 100},
		{Strategy: "parallel", Work: 105, TimeInUnits: 30},
	}
	best, ok := m.Best(5, points)
	if !ok {
		t.Fatal("points must be sustainable at light load")
	}
	// At light load the parallel strategy's shorter TimeInUnits wins.
	if best.Strategy != "parallel" {
		t.Errorf("best = %s, want parallel", best.Strategy)
	}
	if !best.Prediction.Converged || best.Prediction.TimeInSeconds <= 0 {
		t.Error("best prediction not populated")
	}
}

func TestBestNoneSustainable(t *testing.T) {
	m := New(risingCurve())
	points := []OperatingPoint{{Strategy: "x", Work: 1e6, TimeInUnits: 10}}
	if _, ok := m.Best(1000, points); ok {
		t.Error("unsustainable set should report !ok")
	}
}

// Prediction against the real simulated database: the model must predict
// the simulator's measured response time within a modest tolerance — the
// paper reports <10 % error for its setup (Figure 9(b)(c) vs (d)).
func TestModelMatchesSimulation(t *testing.T) {
	curve := simdb.MeasureDbCurve(simdb.DefaultParams(), []int{1, 2, 4, 8, 16, 24, 32, 48, 64}, 2000, 5)
	m := New(curve)
	// Operating point: 25 instances/s, each instance = serial chain of 8
	// unit-cost-1 queries (Work 8, TimeInUnits 8, Lmpl 1).
	pred := m.Predict(25, 8, 8)
	if !pred.Converged {
		t.Fatal("operating point should be sustainable")
	}
	t.Logf("predicted T=%.2fms at Gmpl=%.2f", pred.TimeInSeconds, pred.Gmpl)
	if pred.TimeInSeconds < 8*curve.UnitTime(0) {
		t.Error("prediction below zero-load floor")
	}
}
