package api

import (
	"errors"
	"testing"
)

func walSample() []WALRecord {
	return []WALRecord{
		{Kind: WALKindSchema, Tenant: "acme", Name: "score", Version: 1,
			Fingerprint: 0xdeadbeefcafef00d, Text: "schema score\nsource x\ntarget x\nend\n"},
		{Kind: WALKindShadow, Tenant: "acme", Name: "score", Version: 2,
			Fingerprint: 42, SampleEvery: 4, Text: "schema score\nsource x\nsource y\ntarget y\nend\n"},
		{Kind: WALKindSchema, Tenant: "", Name: "", Version: 0, Text: ""},
	}
}

func TestWALRecordRoundTrip(t *testing.T) {
	var buf []byte
	recs := walSample()
	for _, r := range recs {
		buf = AppendWALRecord(buf, r)
	}
	for i, want := range recs {
		got, n, err := DecodeWALRecord(buf)
		if err != nil {
			t.Fatalf("record %d: %v", i, err)
		}
		if got != want {
			t.Fatalf("record %d: got %+v want %+v", i, got, want)
		}
		buf = buf[n:]
	}
	if len(buf) != 0 {
		t.Fatalf("%d trailing bytes", len(buf))
	}
}

// Every strict prefix of a record decodes as torn — the signature of a
// crash mid-append — never as corrupt and never as success.
func TestWALRecordTornPrefixes(t *testing.T) {
	full := AppendWALRecord(nil, walSample()[0])
	for cut := 0; cut < len(full); cut++ {
		_, _, err := DecodeWALRecord(full[:cut])
		if !errors.Is(err, ErrWALTorn) {
			t.Fatalf("prefix of %d/%d bytes: got %v, want ErrWALTorn", cut, len(full), err)
		}
	}
}

// Flipping any payload or CRC byte of a complete record must surface as
// corrupt, not torn and not silent success.
func TestWALRecordCorruptionDetected(t *testing.T) {
	full := AppendWALRecord(nil, walSample()[0])
	for i := 4; i < len(full); i++ {
		mut := append([]byte(nil), full...)
		mut[i] ^= 0x40
		if _, _, err := DecodeWALRecord(mut); !errors.Is(err, ErrWALCorrupt) {
			t.Fatalf("flip at byte %d: got %v, want ErrWALCorrupt", i, err)
		}
	}
}

func TestWALRecordImplausibleLength(t *testing.T) {
	if _, _, err := DecodeWALRecord([]byte{0xff, 0xff, 0xff, 0xff, 0}); !errors.Is(err, ErrWALCorrupt) {
		t.Fatalf("got %v, want ErrWALCorrupt", err)
	}
	if _, _, err := DecodeWALRecord([]byte{0, 0, 0, 0}); !errors.Is(err, ErrWALCorrupt) {
		t.Fatalf("zero length: got %v, want ErrWALCorrupt", err)
	}
}

// FuzzWALRecordDecode throws arbitrary bytes at the decoder: it must never
// panic, and whenever it claims success the decoded record must re-encode
// and decode to the same value (the codec is its own oracle).
func FuzzWALRecordDecode(f *testing.F) {
	for _, r := range walSample() {
		f.Add(AppendWALRecord(nil, r))
	}
	f.Add([]byte{})
	f.Add([]byte{5, 0, 0, 0, 1, 2, 3})
	f.Fuzz(func(t *testing.T, b []byte) {
		rec, n, err := DecodeWALRecord(b)
		if err != nil {
			if !errors.Is(err, ErrWALTorn) && !errors.Is(err, ErrWALCorrupt) {
				t.Fatalf("error outside the WAL taxonomy: %v", err)
			}
			return
		}
		if n <= 0 || n > len(b) {
			t.Fatalf("claimed %d bytes of %d", n, len(b))
		}
		re := AppendWALRecord(nil, rec)
		rec2, n2, err := DecodeWALRecord(re)
		if err != nil || n2 != len(re) || rec2 != rec {
			t.Fatalf("re-encode mismatch: %+v/%d/%v vs %+v", rec2, n2, err, rec)
		}
	})
}
