// Capture record codec for request capture and deterministic replay.
// internal/capture's trace files are streams of these records; the codec
// lives here beside the WAL and dfbin codecs so every byte format the
// system persists or ships has exactly one definition.
//
// Record layout (framing identical to the WAL codec):
//
//	u32le payloadLen | payload | u32le crc32(payload, IEEE)
//
//	payload = ver:byte monoNs:uvarint wallNs:u64le tenant:string
//	          schema:string version:uvarint fingerprint:u64le
//	          strategy:string nsrc:uvarint { name:string value }*nsrc
//	          digest:u64le
//
// (strings, uvarints and values as in the dfbin frame grammar). Sources
// are name-keyed, not attribute-id-keyed, so a capture is self-contained:
// replay does not need the bind table of the connection that recorded it,
// and the same capture replays against any schema version that still
// names those sources. The trailing CRC covers the payload only. A record
// whose declared extent runs past the available bytes is "torn"
// (ErrCaptureTorn — the tail of a capture file cut short by a crash or an
// abandoned write, safe to stop at); any complete record that fails the
// CRC or does not parse is "corrupt" (ErrCaptureCorrupt).
package api

import (
	"errors"
	"fmt"
	"hash/crc32"

	"repro/internal/value"
)

// CaptureMagic opens every capture file; a reader seeing anything else
// refuses the file outright rather than guessing at a frame boundary.
const CaptureMagic = "DFCAP1\n"

// CaptureV1 is the capture record format version this build writes.
const CaptureV1 byte = 1

// MaxCaptureRecord bounds a single capture record's total encoded size; a
// length prefix beyond it is corrupt, not a request for 4 GiB of memory.
const MaxCaptureRecord = 16 << 20

// ErrCaptureTorn marks a record cut short: the bytes end before the
// record's declared extent. A torn tail is expected after a crash or a
// faulted append (the capture writer abandons partially written files)
// and is safe to stop at.
var ErrCaptureTorn = errors.New("api: torn capture record")

// ErrCaptureCorrupt marks a structurally complete record that fails its
// CRC or does not decode.
var ErrCaptureCorrupt = errors.New("api: corrupt capture record")

// CaptureSource is one named source binding of a captured eval.
type CaptureSource struct {
	Name string
	Val  value.Value
}

// CaptureRecord is one admitted eval as the capture writer logged it:
// enough to re-issue the instance (tenant, schema identity, strategy,
// dense source vector), when it happened (paired clocks), and what was
// decided (the digest live replay compares against).
type CaptureRecord struct {
	// MonoNs is the capture clock: nanoseconds since the capturing
	// server's start, monotonic within one capture. Replay paces arrivals
	// from deltas of this clock.
	MonoNs uint64
	// WallNs is the completion wall-clock time in Unix nanoseconds — for
	// humans correlating a capture with logs, never for pacing.
	WallNs uint64
	// Tenant is the admitted tenant; replay re-issues under the same one.
	Tenant string
	// Schema / Version / Fingerprint identify the registry entry the eval
	// ran against. Virtual replay verifies Fingerprint before trusting a
	// digest comparison.
	Schema      string
	Version     uint64
	Fingerprint uint64
	// Strategy is the strategy code the eval ran under (engine.Strategy
	// String form).
	Strategy string
	// Sources is the instance's dense source vector, name-keyed.
	Sources []CaptureSource
	// Digest is the decision digest of the recorded outcome (see
	// capture.Digest): target values in name order plus the instance
	// error, canonicalized so either wire recomputes it bit-identically.
	Digest uint64
}

// AppendCaptureRecord appends the encoding of r to dst.
func AppendCaptureRecord(dst []byte, r *CaptureRecord) []byte {
	start := len(dst)
	dst = append(dst, 0, 0, 0, 0) // length prefix, patched below
	dst = append(dst, CaptureV1)
	dst = AppendUvarint(dst, r.MonoNs)
	dst = le64(dst, r.WallNs)
	dst = AppendString(dst, r.Tenant)
	dst = AppendString(dst, r.Schema)
	dst = AppendUvarint(dst, r.Version)
	dst = le64(dst, r.Fingerprint)
	dst = AppendString(dst, r.Strategy)
	dst = AppendUvarint(dst, uint64(len(r.Sources)))
	for _, src := range r.Sources {
		dst = AppendString(dst, src.Name)
		dst = AppendValue(dst, src.Val)
	}
	dst = le64(dst, r.Digest)
	payload := dst[start+4:]
	putLE32(dst[start:], uint32(len(payload)))
	return le32(dst, crc32.ChecksumIEEE(payload))
}

// DecodeCaptureRecord decodes the first record in b, returning it and the
// number of bytes consumed. Errors wrap ErrCaptureTorn when b ends before
// the record's declared extent and ErrCaptureCorrupt for everything else.
func DecodeCaptureRecord(b []byte) (CaptureRecord, int, error) {
	var r CaptureRecord
	if len(b) < 4 {
		return r, 0, fmt.Errorf("%w: %d bytes of length prefix", ErrCaptureTorn, len(b))
	}
	n := int(uint32(b[0]) | uint32(b[1])<<8 | uint32(b[2])<<16 | uint32(b[3])<<24)
	if n < 1 || n+8 > MaxCaptureRecord {
		return r, 0, fmt.Errorf("%w: implausible record length %d", ErrCaptureCorrupt, n)
	}
	total := 4 + n + 4
	if len(b) < total {
		return r, 0, fmt.Errorf("%w: %d of %d bytes", ErrCaptureTorn, len(b), total)
	}
	payload := b[4 : 4+n]
	sum := uint32(b[4+n]) | uint32(b[5+n])<<8 | uint32(b[6+n])<<16 | uint32(b[7+n])<<24
	if got := crc32.ChecksumIEEE(payload); got != sum {
		return r, 0, fmt.Errorf("%w: CRC mismatch (stored %08x, computed %08x)", ErrCaptureCorrupt, sum, got)
	}
	c := NewCursor(payload)
	if ver := c.Byte(); c.Err() == nil && ver != CaptureV1 {
		return r, 0, fmt.Errorf("%w: unknown capture record version %d", ErrCaptureCorrupt, ver)
	}
	r.MonoNs = c.Uvarint()
	r.WallNs = c.U64()
	r.Tenant = c.String()
	r.Schema = c.String()
	r.Version = c.Uvarint()
	r.Fingerprint = c.U64()
	r.Strategy = c.String()
	nsrc := c.Uvarint()
	// Every source costs at least 2 bytes (empty name + value tag), so a
	// count beyond the remaining payload is corrupt — reject before
	// allocating.
	if c.Err() != nil || nsrc > uint64(len(c.Rest())) {
		return CaptureRecord{}, 0, fmt.Errorf("%w: truncated source vector", ErrCaptureCorrupt)
	}
	if nsrc > 0 {
		r.Sources = make([]CaptureSource, nsrc)
		for i := range r.Sources {
			r.Sources[i].Name = c.String()
			r.Sources[i].Val = c.Value()
			if c.Err() != nil {
				return CaptureRecord{}, 0, fmt.Errorf("%w: source %d: %v", ErrCaptureCorrupt, i, c.Err())
			}
		}
	}
	r.Digest = c.U64()
	if err := c.Done(); err != nil {
		return CaptureRecord{}, 0, fmt.Errorf("%w: %v", ErrCaptureCorrupt, err)
	}
	return r, total, nil
}
