package api

import (
	"bytes"
	"errors"
	"testing"

	"repro/internal/value"
)

func captureSample() []CaptureRecord {
	return []CaptureRecord{
		{MonoNs: 12345678, WallNs: 1700000000000000001, Tenant: "acme",
			Schema: "quickstart", Version: 3, Fingerprint: 0xdeadbeefcafef00d,
			Strategy: "PSE100",
			Sources: []CaptureSource{
				{Name: "customer_id", Val: value.Int(42)},
				{Name: "region", Val: value.Str("eu-west")},
				{Name: "score", Val: value.Float(0.25)},
				{Name: "flag", Val: value.Bool(true)},
				{Name: "missing", Val: value.Null},
			},
			Digest: 0x0123456789abcdef},
		{MonoNs: 0, WallNs: 0, Tenant: "", Schema: "", Version: 0,
			Fingerprint: 0, Strategy: "", Sources: nil, Digest: 0},
		{MonoNs: 1 << 62, Tenant: "t", Schema: "s", Strategy: "S",
			Sources: []CaptureSource{
				{Name: "xs", Val: value.List(value.Int(1), value.Str("two"))},
			},
			Digest: 7},
	}
}

// captureRecEqual compares records semantically: the encoder is
// deterministic and one-pass, so two records encode identically iff they
// are equal (CaptureRecord holds a slice of values, so == is unavailable).
func captureRecEqual(a, b CaptureRecord) bool {
	return bytes.Equal(AppendCaptureRecord(nil, &a), AppendCaptureRecord(nil, &b))
}

func TestCaptureRecordRoundTrip(t *testing.T) {
	var buf []byte
	recs := captureSample()
	for i := range recs {
		buf = AppendCaptureRecord(buf, &recs[i])
	}
	for i, want := range recs {
		got, n, err := DecodeCaptureRecord(buf)
		if err != nil {
			t.Fatalf("record %d: %v", i, err)
		}
		if !captureRecEqual(got, want) {
			t.Fatalf("record %d: got %+v want %+v", i, got, want)
		}
		if got.MonoNs != want.MonoNs || got.WallNs != want.WallNs ||
			got.Tenant != want.Tenant || got.Schema != want.Schema ||
			got.Version != want.Version || got.Fingerprint != want.Fingerprint ||
			got.Strategy != want.Strategy || got.Digest != want.Digest {
			t.Fatalf("record %d: scalar mismatch: got %+v want %+v", i, got, want)
		}
		buf = buf[n:]
	}
	if len(buf) != 0 {
		t.Fatalf("%d trailing bytes", len(buf))
	}
}

// Every strict prefix of a record decodes as torn — the signature of a
// crash or faulted append mid-record — never as corrupt, never as success.
func TestCaptureRecordTornPrefixes(t *testing.T) {
	rec := captureSample()[0]
	full := AppendCaptureRecord(nil, &rec)
	for cut := 0; cut < len(full); cut++ {
		_, _, err := DecodeCaptureRecord(full[:cut])
		if !errors.Is(err, ErrCaptureTorn) {
			t.Fatalf("prefix of %d/%d bytes: got %v, want ErrCaptureTorn", cut, len(full), err)
		}
	}
}

// Flipping any payload or CRC byte of a complete record must surface as
// corrupt, not torn and not silent success.
func TestCaptureRecordCorruptionDetected(t *testing.T) {
	rec := captureSample()[0]
	full := AppendCaptureRecord(nil, &rec)
	for i := 4; i < len(full); i++ {
		mut := append([]byte(nil), full...)
		mut[i] ^= 0x40
		if _, _, err := DecodeCaptureRecord(mut); !errors.Is(err, ErrCaptureCorrupt) {
			t.Fatalf("flip at byte %d: got %v, want ErrCaptureCorrupt", i, err)
		}
	}
}

func TestCaptureRecordImplausibleLength(t *testing.T) {
	if _, _, err := DecodeCaptureRecord([]byte{0xff, 0xff, 0xff, 0xff, 0}); !errors.Is(err, ErrCaptureCorrupt) {
		t.Fatalf("got %v, want ErrCaptureCorrupt", err)
	}
	if _, _, err := DecodeCaptureRecord([]byte{0, 0, 0, 0}); !errors.Is(err, ErrCaptureCorrupt) {
		t.Fatalf("zero length: got %v, want ErrCaptureCorrupt", err)
	}
}

// FuzzCaptureRecordDecode throws arbitrary bytes at the decoder: it must
// never panic, every failure must classify as torn or corrupt, and
// whenever it claims success the decoded record must re-encode and decode
// to the same value (the codec is its own oracle).
func FuzzCaptureRecordDecode(f *testing.F) {
	for _, r := range captureSample() {
		f.Add(AppendCaptureRecord(nil, &r))
	}
	f.Add([]byte{})
	f.Add([]byte{5, 0, 0, 0, 1, 2, 3})
	f.Fuzz(func(t *testing.T, b []byte) {
		rec, n, err := DecodeCaptureRecord(b)
		if err != nil {
			if !errors.Is(err, ErrCaptureTorn) && !errors.Is(err, ErrCaptureCorrupt) {
				t.Fatalf("error outside the capture taxonomy: %v", err)
			}
			return
		}
		if n <= 0 || n > len(b) {
			t.Fatalf("claimed %d bytes of %d", n, len(b))
		}
		re := AppendCaptureRecord(nil, &rec)
		rec2, n2, err := DecodeCaptureRecord(re)
		if err != nil || n2 != len(re) {
			t.Fatalf("re-decode failed: n=%d err=%v", n2, err)
		}
		if re2 := AppendCaptureRecord(nil, &rec2); !bytes.Equal(re, re2) {
			t.Fatalf("re-encode mismatch:\n % x\n % x", re, re2)
		}
	})
}
