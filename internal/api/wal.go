// WAL record codec for the durable schema registry. internal/server's
// write-ahead log and snapshot files are streams of these records; the
// codec lives here beside the binary frame codec so every byte format the
// system persists or ships has exactly one definition.
//
// Record layout:
//
//	u32le payloadLen | payload | u32le crc32(payload, IEEE)
//
//	payload = kind:byte tenant:string name:string version:uvarint
//	          fingerprint:u64le sampleEvery:uvarint text:string
//
// (strings and uvarints as in the dfbin frame grammar). The trailing CRC
// covers the payload only; the length prefix is validated structurally. A
// record whose declared extent runs past the available bytes is "torn"
// (ErrWALTorn — the tail of a log cut short by a crash mid-write, safe to
// truncate); any complete record that fails the CRC or does not parse is
// "corrupt" (ErrWALCorrupt — bit rot or a bug, never safe to ignore).
package api

import (
	"errors"
	"fmt"
	"hash/crc32"
)

// WAL record kinds.
const (
	// WALKindSchema records an accepted live schema registration.
	WALKindSchema byte = 1
	// WALKindShadow records an accepted shadow-candidate registration.
	WALKindShadow byte = 2
)

// MaxWALRecord bounds a single WAL record's total encoded size; a length
// prefix beyond it is corrupt, not a request for 4 GiB of memory.
const MaxWALRecord = 16 << 20

// ErrWALTorn marks a record cut short by a crash mid-append: the bytes end
// before the record's declared extent. A torn FINAL record is expected
// after a crash and is safe to truncate away.
var ErrWALTorn = errors.New("api: torn WAL record")

// ErrWALCorrupt marks a structurally complete record that fails its CRC or
// does not decode. Unlike a torn tail this is never expected and recovery
// must refuse rather than guess.
var ErrWALCorrupt = errors.New("api: corrupt WAL record")

// WALRecord is one durable registry event: an accepted schema (or shadow
// candidate) registration.
type WALRecord struct {
	// Kind is WALKindSchema or WALKindShadow.
	Kind byte
	// Tenant is the owning tenant; Name the schema's declared name.
	Tenant string
	Name   string
	// Version is the per-name monotone version assigned at registration.
	Version uint64
	// Fingerprint is the schema's deterministic text-format hash
	// (core.Schema.Fingerprint) at registration time; recovery re-parses
	// Text and refuses on mismatch.
	Fingerprint uint64
	// SampleEvery is the shadow sampling stride (every Nth live eval);
	// zero for live registrations.
	SampleEvery uint64
	// Text is the schema source in core.ParseSchema's text format.
	Text string
}

// AppendWALRecord appends the encoding of r to dst.
func AppendWALRecord(dst []byte, r WALRecord) []byte {
	start := len(dst)
	dst = append(dst, 0, 0, 0, 0) // length prefix, patched below
	dst = append(dst, r.Kind)
	dst = AppendString(dst, r.Tenant)
	dst = AppendString(dst, r.Name)
	dst = AppendUvarint(dst, r.Version)
	dst = le64(dst, r.Fingerprint)
	dst = AppendUvarint(dst, r.SampleEvery)
	dst = AppendString(dst, r.Text)
	payload := dst[start+4:]
	putLE32(dst[start:], uint32(len(payload)))
	return le32(dst, crc32.ChecksumIEEE(payload))
}

// DecodeWALRecord decodes the first record in b, returning it and the
// number of bytes consumed. Errors wrap ErrWALTorn when b ends before the
// record's declared extent and ErrWALCorrupt for everything else.
func DecodeWALRecord(b []byte) (WALRecord, int, error) {
	var r WALRecord
	if len(b) < 4 {
		return r, 0, fmt.Errorf("%w: %d bytes of length prefix", ErrWALTorn, len(b))
	}
	n := int(uint32(b[0]) | uint32(b[1])<<8 | uint32(b[2])<<16 | uint32(b[3])<<24)
	if n < 1 || n+8 > MaxWALRecord {
		return r, 0, fmt.Errorf("%w: implausible record length %d", ErrWALCorrupt, n)
	}
	total := 4 + n + 4
	if len(b) < total {
		return r, 0, fmt.Errorf("%w: %d of %d bytes", ErrWALTorn, len(b), total)
	}
	payload := b[4 : 4+n]
	sum := uint32(b[4+n]) | uint32(b[5+n])<<8 | uint32(b[6+n])<<16 | uint32(b[7+n])<<24
	if got := crc32.ChecksumIEEE(payload); got != sum {
		return r, 0, fmt.Errorf("%w: CRC mismatch (stored %08x, computed %08x)", ErrWALCorrupt, sum, got)
	}
	c := NewCursor(payload)
	r.Kind = c.Byte()
	r.Tenant = c.String()
	r.Name = c.String()
	r.Version = c.Uvarint()
	r.Fingerprint = c.U64()
	r.SampleEvery = c.Uvarint()
	r.Text = c.String()
	if err := c.Done(); err != nil {
		return WALRecord{}, 0, fmt.Errorf("%w: %v", ErrWALCorrupt, err)
	}
	if r.Kind != WALKindSchema && r.Kind != WALKindShadow {
		return WALRecord{}, 0, fmt.Errorf("%w: unknown record kind %#x", ErrWALCorrupt, r.Kind)
	}
	return r, total, nil
}

func le32(dst []byte, x uint32) []byte {
	return append(dst, byte(x), byte(x>>8), byte(x>>16), byte(x>>24))
}

func le64(dst []byte, x uint64) []byte {
	return append(dst, byte(x), byte(x>>8), byte(x>>16), byte(x>>24),
		byte(x>>32), byte(x>>40), byte(x>>48), byte(x>>56))
}

func putLE32(dst []byte, x uint32) {
	dst[0], dst[1], dst[2], dst[3] = byte(x), byte(x>>8), byte(x>>16), byte(x>>24)
}
