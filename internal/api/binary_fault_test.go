package api_test

// FrameReader behavior under injected transport faults: pathological
// fragmentation (1-byte reads), connections cut mid-frame, and outright
// read errors. The contract is uniform — frames assemble correctly no
// matter how the bytes arrive, and every failure surfaces as a typed
// error, never a panic or a garbage frame.

import (
	"encoding/binary"
	"errors"
	"io"
	"net"
	"testing"
	"time"

	"repro/internal/api"
	"repro/internal/fault"
)

// rawFrame builds one wire frame: u32-LE length prefix, type byte, payload.
func rawFrame(typ byte, payload []byte) []byte {
	b := binary.LittleEndian.AppendUint32(nil, uint32(1+len(payload)))
	b = append(b, typ)
	return append(b, payload...)
}

// faultedPipe returns a FrameReader over the read half of a net.Pipe
// wrapped in a fault.Conn, plus the write half for the test to feed.
func faultedPipe(t *testing.T) (*api.FrameReader, net.Conn) {
	t.Helper()
	rd, wr := net.Pipe()
	t.Cleanup(func() { rd.Close(); wr.Close() })
	fc := fault.WrapConn(rd, fault.SiteClientConnRead, fault.SiteClientConnWrite)
	return api.NewFrameReader(fc, 0), wr
}

// TestFrameReaderAssemblesUnderFragmentation: with every read shortened
// to a single byte, multi-frame streams still parse frame-for-frame —
// the reader owes nothing to TCP segment boundaries.
func TestFrameReaderAssemblesUnderFragmentation(t *testing.T) {
	t.Cleanup(fault.Reset)
	if err := fault.Arm(fault.SiteClientConnRead, "%1*partial:1"); err != nil {
		t.Fatal(err)
	}
	fr, wr := faultedPipe(t)

	frames := [][]byte{
		rawFrame(api.FrameHello, []byte("hello payload")),
		rawFrame(api.FrameResult, []byte{0x01, 0x02, 0x03}),
		rawFrame(api.FrameError, nil),
	}
	go func() {
		for _, f := range frames {
			wr.Write(f)
		}
		wr.Close()
	}()

	wantTypes := []byte{api.FrameHello, api.FrameResult, api.FrameError}
	wantLens := []int{13, 3, 0}
	for i := range wantTypes {
		typ, payload, err := fr.Next()
		if err != nil {
			t.Fatalf("frame %d under 1-byte reads: %v", i, err)
		}
		if typ != wantTypes[i] || len(payload) != wantLens[i] {
			t.Fatalf("frame %d = (%#x, %d bytes), want (%#x, %d)",
				i, typ, len(payload), wantTypes[i], wantLens[i])
		}
	}
	if _, _, err := fr.Next(); err != io.EOF {
		t.Fatalf("after last frame: %v, want clean io.EOF at the boundary", err)
	}
	if hits, _ := fault.Hits(fault.SiteClientConnRead); hits < 20 {
		t.Fatalf("only %d reads — fragmentation failpoint did not bite", hits)
	}
}

// TestFrameReaderMidFrameResetIsUnexpectedEOF: a connection dropped
// between a frame's header and the end of its payload is a torn frame —
// io.ErrUnexpectedEOF, distinct from the clean-boundary io.EOF that
// means "peer finished".
func TestFrameReaderMidFrameResetIsUnexpectedEOF(t *testing.T) {
	fr, wr := faultedPipe(t)
	full := rawFrame(api.FrameResult, []byte("payload that will be cut off"))
	go func() {
		wr.Write(full[:len(full)-9])
		wr.Close()
	}()
	if _, _, err := fr.Next(); err != io.ErrUnexpectedEOF {
		t.Fatalf("torn frame: %v, want io.ErrUnexpectedEOF", err)
	}

	// Cut inside the 4-byte header itself: still torn, still typed.
	fr, wr = faultedPipe(t)
	go func() {
		wr.Write(full[:2])
		wr.Close()
	}()
	if _, _, err := fr.Next(); err != io.ErrUnexpectedEOF {
		t.Fatalf("torn header: %v, want io.ErrUnexpectedEOF", err)
	}
}

// TestFrameReaderInjectedReadError: a transport error mid-stream comes
// back verbatim (wrapped as the injected fault), never as a mangled
// frame — the reader does not guess at bytes it never received.
func TestFrameReaderInjectedReadError(t *testing.T) {
	t.Cleanup(fault.Reset)
	// Frame 1 costs exactly two reads on a pipe (header, payload); the
	// third read — frame 2's header — takes the fault.
	if err := fault.Arm(fault.SiteClientConnRead, "3*error:injected reset"); err != nil {
		t.Fatal(err)
	}
	fr, wr := faultedPipe(t)
	go func() {
		wr.Write(rawFrame(api.FrameHello, []byte("ok")))
		wr.Write(rawFrame(api.FrameHello, []byte("never arrives")))
	}()
	if typ, _, err := fr.Next(); err != nil || typ != api.FrameHello {
		t.Fatalf("first frame before the fault: (%#x, %v)", typ, err)
	}
	_, _, err := fr.Next()
	if !errors.Is(err, fault.ErrInjected) {
		t.Fatalf("faulted read: %v, want the injected transport error", err)
	}
}

// TestFrameReaderDelayedReadsStillComplete: latency is not corruption —
// injected read delays slow the stream down but every frame arrives
// intact.
func TestFrameReaderDelayedReadsStillComplete(t *testing.T) {
	t.Cleanup(fault.Reset)
	if err := fault.Arm(fault.SiteClientConnRead, "delay:5ms"); err != nil {
		t.Fatal(err)
	}
	fr, wr := faultedPipe(t)
	go func() {
		wr.Write(rawFrame(api.FrameResult, []byte("slow but intact")))
		wr.Close()
	}()
	start := time.Now()
	typ, payload, err := fr.Next()
	if err != nil || typ != api.FrameResult || string(payload) != "slow but intact" {
		t.Fatalf("delayed frame: (%#x, %q, %v)", typ, payload, err)
	}
	if time.Since(start) < 5*time.Millisecond {
		t.Fatal("delay failpoint did not bite")
	}
}
