package api

import (
	"bytes"
	"encoding/json"
	"io"
	"math"
	"strings"
	"testing"

	"repro/internal/value"
)

// exactEqual is structural equality that is stricter than value.Identical:
// kinds must match exactly (Int(2) ≠ Float(2.0)) and floats compare by bit
// pattern so NaN equals NaN. It is the equality the lossless binary codec
// must preserve.
func exactEqual(a, b value.Value) bool {
	if a.Kind() != b.Kind() {
		return false
	}
	switch a.Kind() {
	case value.KindFloat:
		af, _ := a.AsFloat()
		bf, _ := b.AsFloat()
		return math.Float64bits(af) == math.Float64bits(bf)
	case value.KindList:
		al, _ := a.AsList()
		bl, _ := b.AsList()
		if len(al) != len(bl) {
			return false
		}
		for i := range al {
			if !exactEqual(al[i], bl[i]) {
				return false
			}
		}
		return true
	default:
		return value.Identical(a, b)
	}
}

func binaryRoundTrip(t *testing.T, v value.Value) value.Value {
	t.Helper()
	b := AppendValue(nil, v)
	c := NewCursor(b)
	got := c.Value()
	if err := c.Done(); err != nil {
		t.Fatalf("decoding %v: %v", v, err)
	}
	return got
}

func TestBinaryValueRoundTrip(t *testing.T) {
	cases := []value.Value{
		value.Null,
		value.Bool(true),
		value.Bool(false),
		value.Int(0),
		value.Int(-1),
		value.Int(math.MaxInt64),
		value.Int(math.MinInt64),
		value.Float(0),
		value.Float(-2.5),
		value.Float(math.NaN()),
		value.Float(math.Inf(1)),
		value.Float(math.Inf(-1)),
		value.Float(2), // stays a float, unlike a JSON round trip
		value.Str(""),
		value.Str("héllo ⟂ world"),
		value.List(),
		value.List(value.Int(1), value.Str("x"), value.Null,
			value.List(value.Float(1.5), value.Bool(false))),
	}
	for _, v := range cases {
		if got := binaryRoundTrip(t, v); !exactEqual(got, v) {
			t.Errorf("round trip of %v (%v) returned %v (%v)",
				v, v.Kind(), got, got.Kind())
		}
	}
}

func TestFrameReader(t *testing.T) {
	var b []byte
	b = AppendHelloFrame(b, "acme")
	start := len(b)
	b = BeginFrame(b, FrameEval)
	b = AppendUvarint(b, 7)
	b = FinishFrame(b, start)

	fr := NewFrameReader(bytes.NewReader(b), 0)
	typ, p, err := fr.Next()
	if err != nil || typ != FrameHello {
		t.Fatalf("first frame: typ=%#x err=%v", typ, err)
	}
	tenant, err := ParseHello(p)
	if err != nil || tenant != "acme" {
		t.Fatalf("ParseHello: %q, %v", tenant, err)
	}
	typ, p, err = fr.Next()
	if err != nil || typ != FrameEval {
		t.Fatalf("second frame: typ=%#x err=%v", typ, err)
	}
	c := NewCursor(p)
	if got := c.Uvarint(); got != 7 || c.Done() != nil {
		t.Fatalf("eval payload: %d, %v", got, c.Done())
	}
	if _, _, err := fr.Next(); err != io.EOF {
		t.Fatalf("expected clean EOF, got %v", err)
	}

	// A connection dropped mid-frame is ErrUnexpectedEOF, not a clean EOF.
	fr = NewFrameReader(bytes.NewReader(b[:len(b)-2]), 0)
	fr.Next()
	if _, _, err := fr.Next(); err != io.ErrUnexpectedEOF {
		t.Fatalf("truncated frame: %v", err)
	}

	// Oversized and zero-length frames are rejected before any allocation.
	huge := []byte{0xff, 0xff, 0xff, 0xff, FrameEval}
	if _, _, err := NewFrameReader(bytes.NewReader(huge), 0).Next(); err == nil {
		t.Fatal("oversized frame accepted")
	}
	zero := []byte{0, 0, 0, 0}
	if _, _, err := NewFrameReader(bytes.NewReader(zero), 0).Next(); err == nil {
		t.Fatal("zero-length frame accepted")
	}
}

func TestErrorFrameRoundTrip(t *testing.T) {
	b := AppendErrorFrame(nil, 42, CodeShed, 250, "rate limited")
	fr := NewFrameReader(bytes.NewReader(b), 0)
	typ, p, err := fr.Next()
	if err != nil || typ != FrameError {
		t.Fatalf("typ=%#x err=%v", typ, err)
	}
	c := NewCursor(p)
	if req := c.Uvarint(); req != 42 {
		t.Fatalf("reqID = %d", req)
	}
	e, err := ParseError(&c)
	if err != nil {
		t.Fatal(err)
	}
	if e.Code != CodeShed || e.RetryAfterMs != 250 || e.Msg != "rate limited" {
		t.Fatalf("ParseError = %+v", e)
	}
}

func TestHelloAckRoundTrip(t *testing.T) {
	b := AppendHelloAckFrame(nil, true, 1<<20)
	fr := NewFrameReader(bytes.NewReader(b), 0)
	_, p, err := fr.Next()
	if err != nil {
		t.Fatal(err)
	}
	draining, maxFrame, err := ParseHelloAck(p)
	if err != nil || !draining || maxFrame != 1<<20 {
		t.Fatalf("ParseHelloAck = %v, %d, %v", draining, maxFrame, err)
	}
}

func TestParseHelloRejectsGarbage(t *testing.T) {
	if _, err := ParseHello([]byte("GET / HTTP/1.1\r\n")); err == nil {
		t.Fatal("HTTP preamble accepted as Hello")
	}
	if _, err := ParseHello(nil); err == nil {
		t.Fatal("empty Hello accepted")
	}
}

func TestCursorRejectsCorruptValues(t *testing.T) {
	cases := [][]byte{
		{},                       // no tag
		{tagInt},                 // missing varint
		{tagFloat, 1, 2, 3},      // short float
		{tagStr, 10, 'a'},        // string length beyond payload
		{tagList, 200},           // list count beyond payload
		{99},                     // unknown tag
		{tagList, 1, tagList, 1}, // truncated nesting
		append([]byte{tagStr}, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0x01), // huge length
	}
	for i, b := range cases {
		c := NewCursor(b)
		c.Value()
		if c.Err() == nil {
			t.Errorf("case %d: corrupt value %v decoded without error", i, b)
		}
	}
	// Deep nesting beyond maxListDepth must fail cleanly, not overflow.
	deep := bytes.Repeat([]byte{tagList, 1}, maxListDepth+2)
	c := NewCursor(deep)
	c.Value()
	if c.Err() == nil {
		t.Error("over-deep nesting accepted")
	}
}

// genValue derives a value.Value from fuzz bytes: a little construction
// program so the corpus explores the whole domain, nesting included.
func genValue(data []byte, depth int) (value.Value, []byte) {
	if len(data) == 0 {
		return value.Null, nil
	}
	op := data[0]
	data = data[1:]
	take8 := func() uint64 {
		var x uint64
		for i := 0; i < 8 && len(data) > 0; i++ {
			x = x<<8 | uint64(data[0])
			data = data[1:]
		}
		return x
	}
	switch op % 7 {
	case 0:
		return value.Null, data
	case 1:
		return value.Bool(op&8 != 0), data
	case 2:
		return value.Int(int64(take8())), data
	case 3:
		return value.Float(math.Float64frombits(take8())), data
	case 4:
		n := int(op/7) % 24
		if n > len(data) {
			n = len(data)
		}
		s := string(data[:n])
		return value.Str(s), data[n:]
	default:
		if depth > 6 {
			return value.Null, data
		}
		n := int(op/7) % 5
		elems := make([]value.Value, 0, n)
		for i := 0; i < n && len(data) > 0; i++ {
			var e value.Value
			e, data = genValue(data, depth+1)
			elems = append(elems, e)
		}
		return value.List(elems...), data
	}
}

// FuzzBinaryJSONDifferential is the differential codec fuzz of the two
// wire encodings. For every generated value: (1) the binary codec must be
// a lossless identity over the whole domain; (2) on the JSON-expressible
// subdomain, a value canonicalized through the JSON codec (json.Number
// decoding: integral → Int, else Float) must round-trip identically
// through both codecs — the property that lets one server serve both
// transports without the transports disagreeing on what a request meant.
func FuzzBinaryJSONDifferential(f *testing.F) {
	f.Add([]byte("\x03\x01\x02\x03"))
	f.Add([]byte("\x06\x02\x03\x7f\x04abcd"))
	f.Add([]byte(strings.Repeat("\x06", 40)))
	f.Fuzz(func(t *testing.T, data []byte) {
		v, _ := genValue(data, 0)

		// Leg 1: binary is lossless.
		bin := AppendValue(nil, v)
		c := NewCursor(bin)
		got := c.Value()
		if err := c.Done(); err != nil {
			t.Fatalf("binary decode of encoder output failed: %v", err)
		}
		if !exactEqual(got, v) {
			t.Fatalf("binary round trip: %v (%v) -> %v (%v)", v, v.Kind(), got, got.Kind())
		}

		// Leg 2: JSON-canonicalize, then both codecs must agree exactly.
		js, err := json.Marshal(ToJSON(v))
		if err != nil {
			return // NaN/Inf: outside the JSON-expressible subdomain
		}
		dec := json.NewDecoder(bytes.NewReader(js))
		dec.UseNumber()
		var x any
		if err := dec.Decode(&x); err != nil {
			t.Fatalf("decoding own JSON %s: %v", js, err)
		}
		vj, err := FromJSON(x)
		if err != nil {
			t.Fatalf("FromJSON(%s): %v", js, err)
		}
		// Binary round trip of the canonical value.
		c2 := NewCursor(AppendValue(nil, vj))
		gotB := c2.Value()
		if err := c2.Done(); err != nil {
			t.Fatalf("binary decode of canonical value: %v", err)
		}
		// JSON round trip of the canonical value (idempotence).
		js2, err := json.Marshal(ToJSON(vj))
		if err != nil {
			t.Fatalf("re-marshaling canonical value: %v", err)
		}
		dec2 := json.NewDecoder(bytes.NewReader(js2))
		dec2.UseNumber()
		var x2 any
		if err := dec2.Decode(&x2); err != nil {
			t.Fatal(err)
		}
		gotJ, err := FromJSON(x2)
		if err != nil {
			t.Fatal(err)
		}
		if !exactEqual(gotB, vj) || !exactEqual(gotJ, vj) {
			t.Fatalf("codecs disagree on canonical %v: binary %v, json %v", vj, gotB, gotJ)
		}
	})
}

// FuzzBinaryFrameDecode feeds arbitrary bytes to the frame reader and the
// payload parsers: whatever arrives, they must return errors rather than
// panic or over-allocate — the property that lets the server tear down a
// corrupted connection cleanly.
func FuzzBinaryFrameDecode(f *testing.F) {
	f.Add(AppendHelloFrame(nil, "t"))
	f.Add(AppendErrorFrame(nil, 1, CodeShed, 9, "x"))
	f.Add([]byte{3, 0, 0, 0, FrameEval, 1, 2})
	f.Add([]byte{0xff, 0xff, 0xff, 0x7f, 1})
	f.Fuzz(func(t *testing.T, data []byte) {
		fr := NewFrameReader(bytes.NewReader(data), 1<<20)
		for i := 0; i < 64; i++ {
			typ, p, err := fr.Next()
			if err != nil {
				return
			}
			c := NewCursor(p)
			switch typ {
			case FrameHello:
				ParseHello(p)
			case FrameHelloAck:
				ParseHelloAck(p)
			case FrameError:
				c.Uvarint()
				ParseError(&c)
			default:
				// Generic scan: request id, then a run of values.
				c.Uvarint()
				for c.Err() == nil && len(c.Rest()) > 0 {
					c.Value()
				}
			}
		}
	})
}
