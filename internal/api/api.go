// Package api defines the wire protocol of the decision-flow server
// (internal/server, cmd/dfsd): the JSON request/response shapes of the
// /v1 HTTP endpoints and the codec between JSON values and the engine's
// dynamically typed value.Value. Both the server and the typed Go client
// (internal/client) build on this package, so the protocol has exactly one
// definition.
//
// Values map to native JSON: ⟂ ↔ null, bool ↔ bool, int/float ↔ number,
// string ↔ string, list ↔ array. Numbers decode through json.Number:
// integral literals come back as Int values, everything else as Float —
// matching how schema sources are typically declared.
package api

import (
	"encoding/json"
	"fmt"
	"strings"

	"repro/internal/value"
)

// TenantHeader carries the caller's tenant on every request; requests
// without it are attributed to DefaultTenant.
const TenantHeader = "X-Tenant"

// DefaultTenant attributes untagged requests.
const DefaultTenant = "anonymous"

// SchemaRequest registers a decision flow schema, written in the text
// format of core.ParseSchema. Foreign tasks of registered schemas are
// served by the backend with a deterministic server-side compute (a hash
// of the task's name and stable inputs), since compute functions cannot
// travel over the wire; synthesis expressions evaluate exactly as written.
type SchemaRequest struct {
	// Text is the schema in the line-oriented text format
	// ("schema <name>\nsource x\nquery y from x cost 2 when x > 0\n…").
	Text string `json:"text"`
	// Shadow registers the schema as a shadow candidate instead of
	// replacing the live version: the server evaluates it alongside live
	// traffic on a sampled fraction of the owning tenant's evals and
	// reports decision divergence on GET /v1/schemas/{name}/shadow. A live
	// version of the same name must already exist.
	Shadow bool `json:"shadow,omitempty"`
	// ShadowSampleEvery sets the shadow sampling stride: every Nth live
	// eval of the schema also runs the candidate (0 or 1 = every eval).
	// Ignored unless Shadow is set.
	ShadowSampleEvery int `json:"shadow_sample_every,omitempty"`
}

// SchemaResponse acknowledges a registration.
type SchemaResponse struct {
	// Name is the registered schema's name (from the text's schema line).
	Name string `json:"name"`
	// Attrs is the number of attributes in the validated schema.
	Attrs int `json:"attrs"`
	// Targets are the schema's target attribute names.
	Targets []string `json:"targets"`
	// Version is the per-name monotone version this registration was
	// assigned (1 for the first registration of a name).
	Version uint64 `json:"version"`
	// Fingerprint is the schema's deterministic text-format hash, in
	// %016x form — the value the durable registry verifies on recovery.
	Fingerprint string `json:"fingerprint"`
	// Shadow echoes whether this registration installed a shadow
	// candidate rather than a new live version.
	Shadow bool `json:"shadow,omitempty"`
}

// EvalRequest evaluates one instance of a registered schema.
type EvalRequest struct {
	// Schema names the registered (or built-in) schema to execute.
	Schema string `json:"schema"`
	// Strategy is the optimization strategy code (e.g. "PSE100"); empty
	// uses the server's default.
	Strategy string `json:"strategy,omitempty"`
	// Sources binds the instance's source attributes (JSON values).
	Sources map[string]any `json:"sources"`
	// Async, when true, makes POST /v1/eval return 202 with an ID
	// immediately; the result is fetched (long-polled) from
	// GET /v1/results/{id}. For slow instances this frees the connection.
	Async bool `json:"async,omitempty"`
}

// EvalResult reports one completed instance.
type EvalResult struct {
	// Values are the target attributes' final values (⟂ as null).
	Values map[string]any `json:"values"`
	// ElapsedMs is the wall-clock latency in milliseconds, submit to
	// terminal snapshot, measured on the server.
	ElapsedMs float64 `json:"elapsed_ms"`
	// Work / WastedWork / Launched / SynthesisRuns / Failures are the
	// instance's accounting (see engine.Result).
	Work          int `json:"work"`
	WastedWork    int `json:"wasted_work,omitempty"`
	Launched      int `json:"launched"`
	SynthesisRuns int `json:"synthesis_runs,omitempty"`
	Failures      int `json:"failures,omitempty"`
	// Error is the instance's terminal error, if any (the HTTP status is
	// still 200: the request was served, the instance failed).
	Error string `json:"error,omitempty"`
}

// AsyncResponse acknowledges an async EvalRequest.
type AsyncResponse struct {
	// ID fetches the result from GET /v1/results/{id}.
	ID string `json:"id"`
}

// PendingResponse is returned by GET /v1/results/{id} when the instance
// has not finished within the long-poll timeout; poll again.
type PendingResponse struct {
	Pending bool `json:"pending"`
}

// BatchRequest evaluates many instances of one schema in a single round
// trip.
type BatchRequest struct {
	// Schema and Strategy apply to every instance of the batch.
	Schema   string `json:"schema"`
	Strategy string `json:"strategy,omitempty"`
	// Sources holds one source binding per instance.
	Sources []map[string]any `json:"sources"`
	// Stream, when true, returns results as NDJSON (one BatchItem line per
	// instance, in completion order) instead of a single BatchResponse —
	// slow instances don't block delivery of finished ones.
	Stream bool `json:"stream,omitempty"`
}

// BatchResponse carries the batch's results, in request order.
type BatchResponse struct {
	Results []EvalResult `json:"results"`
}

// BatchItem is one NDJSON line of a streamed batch: the result tagged
// with its request index.
type BatchItem struct {
	Index int `json:"index"`
	EvalResult
}

// ErrorResponse is the body of every non-2xx response.
type ErrorResponse struct {
	Error string `json:"error"`
	// RetryAfterMs echoes the Retry-After header (in milliseconds) on 429
	// shed responses, for clients that prefer the body.
	RetryAfterMs int64 `json:"retry_after_ms,omitempty"`
}

// StatsResponse is GET /v1/stats: the serving runtime's aggregate metrics
// plus the front end's per-tenant admission view.
type StatsResponse struct {
	// Service is runtime.Stats rendered to JSON (latencies in
	// nanoseconds, as time.Duration serializes).
	Service json.RawMessage `json:"service"`
	// Tenants is the per-tenant admission/shedding view, keyed by tenant.
	Tenants map[string]TenantAdmission `json:"tenants,omitempty"`
	// UptimeMs is milliseconds since the server started.
	UptimeMs int64 `json:"uptime_ms"`
	// Draining reports whether the server is in graceful shutdown.
	Draining bool `json:"draining"`
	// Schemas lists the registered schema names.
	Schemas []string `json:"schemas"`
	// SchemaDetails carries per-schema registry metadata (version,
	// fingerprint, owner), in Schemas order.
	SchemaDetails []SchemaInfo `json:"schema_details,omitempty"`
	// RecoveredSchemas / RecoveryMs report the durable registry's boot
	// replay: how many schemas were rebuilt from the snapshot+WAL and how
	// long the replay took. Absent when the server runs without a datadir.
	RecoveredSchemas int   `json:"recovered_schemas,omitempty"`
	RecoveryMs       int64 `json:"recovery_ms,omitempty"`
	// RegistryReadOnly reports the durable registry's fail-closed state: a
	// WAL write/fsync error (or ENOSPC) degraded the server to serving
	// already-registered schemas only, refusing new registrations until it
	// restarts. RegistryError carries the cause.
	RegistryReadOnly bool   `json:"registry_readonly,omitempty"`
	RegistryError    string `json:"registry_error,omitempty"`
	// Fleet is the peer-aggregated view, present only on
	// GET /v1/stats?fleet=1 from a node running with -peers: the answering
	// node fans the stats query out to every fleet member over dfbin and
	// merges the counters. Each node always answers with its LOCAL view
	// (the binary Stats frame never fans out), so aggregation cannot
	// recurse.
	Fleet *FleetStats `json:"fleet,omitempty"`
	// Capture is the eval capture writer's health, present only when the
	// server runs with -capture. Capture is fail-open (the opposite of the
	// registry's fail-closed read-only state above): drops and disk faults
	// degrade the capture, never serving, and this block is where that
	// degradation becomes visible.
	Capture *CaptureStats `json:"capture,omitempty"`
}

// CaptureStats reports the eval capture writer's counters in /v1/stats.
type CaptureStats struct {
	// Appended counts records durably handed to capture files.
	Appended uint64 `json:"capture_appended"`
	// Dropped is the total records lost (ring full + IO faults) — the
	// headline best-effort counter.
	Dropped uint64 `json:"capture_dropped"`
	// DroppedRing / DroppedIO split Dropped by cause.
	DroppedRing uint64 `json:"capture_dropped_ring"`
	DroppedIO   uint64 `json:"capture_dropped_io"`
	// Files / Bytes size the capture so far.
	Files uint64 `json:"capture_files"`
	Bytes uint64 `json:"capture_bytes"`
	// Degraded is set once any record has been dropped or any file
	// operation failed; Error carries the sticky most-recent IO error.
	Degraded bool   `json:"capture_degraded"`
	Error    string `json:"capture_error,omitempty"`
}

// FleetStats is the peer-tier aggregation in StatsResponse: one entry per
// fleet member (the answering node included) plus fleet-wide counter sums.
type FleetStats struct {
	Nodes  []FleetNode `json:"nodes"`
	Totals FleetTotals `json:"totals"`
}

// FleetNode is one fleet member's slice of a FleetStats aggregation, as
// seen from the answering node.
type FleetNode struct {
	Addr string `json:"addr"`
	Self bool   `json:"self,omitempty"`
	// Err is why this node's stats are missing (unreachable, timeout);
	// its counters are then absent from Totals rather than silently zero.
	Err      string `json:"err,omitempty"`
	Draining bool   `json:"draining,omitempty"`
	// Forwards / Fallbacks / BreakerTrips describe the answering node's
	// link to this peer: queries it forwarded there, local fallbacks it
	// took instead, and how often the link's breaker opened.
	Forwards     uint64 `json:"forwards,omitempty"`
	Fallbacks    uint64 `json:"fallbacks,omitempty"`
	BreakerTrips uint64 `json:"breaker_trips,omitempty"`
	// Service is the node's own runtime.Stats JSON (absent on Err).
	Service json.RawMessage `json:"service,omitempty"`
}

// FleetTotals sums the load-bearing runtime counters across reachable
// nodes. Fleet-wide, Launched == BackendQueries + DedupHits + CacheHits
// holds exactly (per-node PeerForwards/PeerServed cancel pairwise).
type FleetTotals struct {
	Submitted      uint64 `json:"submitted"`
	Completed      uint64 `json:"completed"`
	Errors         uint64 `json:"errors"`
	Launched       uint64 `json:"launched"`
	BackendQueries uint64 `json:"backend_queries"`
	DedupHits      uint64 `json:"dedup_hits"`
	CacheHits      uint64 `json:"cache_hits"`
	PeerForwards   uint64 `json:"peer_forwards"`
	PeerFallbacks  uint64 `json:"peer_fallbacks"`
	PeerServed     uint64 `json:"peer_served"`
}

// SchemaInfo is one registry entry's metadata in StatsResponse.
type SchemaInfo struct {
	Name    string `json:"name"`
	Version uint64 `json:"version"`
	// Fingerprint is the deterministic text-format hash in %016x form.
	Fingerprint string `json:"fingerprint"`
	// Owner is the registering tenant ("" for built-ins).
	Owner string `json:"owner,omitempty"`
	// Shadow reports whether a shadow candidate is currently attached.
	Shadow bool `json:"shadow,omitempty"`
}

// ShadowReport is GET /v1/schemas/{name}/shadow: the running comparison of
// a shadow candidate against the live version it shadows.
type ShadowReport struct {
	Schema string `json:"schema"`
	// LiveVersion / ShadowVersion identify the pair under comparison.
	LiveVersion   uint64 `json:"live_version"`
	ShadowVersion uint64 `json:"shadow_version"`
	// SampleEvery is the sampling stride (every Nth live eval).
	SampleEvery int `json:"sample_every"`
	// Skipped counts sampled evals dropped by the shadow in-flight cap or
	// drain — coverage the report is missing, never silent.
	Skipped uint64 `json:"skipped,omitempty"`
	// Tenants breaks the comparison down per tenant driving the traffic.
	Tenants map[string]ShadowTenant `json:"tenants,omitempty"`
}

// ShadowTenant is one tenant's slice of a shadow comparison.
type ShadowTenant struct {
	// Sampled counts live evals whose candidate evaluation completed.
	Sampled uint64 `json:"sampled"`
	// Diverged counts sampled evals whose target decisions differed
	// (value mismatch on any target, or exactly one side erroring).
	Diverged uint64 `json:"diverged"`
	// Errors counts sampled evals where the candidate erred but live did
	// not (a subset of Diverged).
	Errors uint64 `json:"errors,omitempty"`
	// Examples holds up to a few diverging source vectors for debugging.
	Examples []ShadowExample `json:"examples,omitempty"`
}

// ShadowExample is one diverging eval: the source vector and both sides'
// target values (JSON-encoded like EvalResult.Values).
type ShadowExample struct {
	Sources map[string]any `json:"sources"`
	Live    map[string]any `json:"live"`
	Shadow  map[string]any `json:"shadow"`
	// LiveError / ShadowError carry either side's instance error, if any.
	LiveError   string `json:"live_error,omitempty"`
	ShadowError string `json:"shadow_error,omitempty"`
	// Trace is a readable virtual-time replay of both versions on the
	// diverging source vector — both verdicts, then each side's event
	// timeline — rendered by internal/trace for dark-launch debugging.
	Trace string `json:"trace,omitempty"`
}

// TenantAdmission is one tenant's front-end admission counters. Shed
// requests never reach the runtime, so these live here rather than in
// runtime.Stats (which carries the tenant's completion/latency slice).
type TenantAdmission struct {
	// Accepted counts requests admitted to the runtime.
	Accepted uint64 `json:"accepted"`
	// ShedRate / ShedQuota / ShedQueue count 429s by cause: token-bucket
	// rate limit, in-flight quota, global queue-depth watermark.
	ShedRate  uint64 `json:"shed_rate,omitempty"`
	ShedQuota uint64 `json:"shed_quota,omitempty"`
	ShedQueue uint64 `json:"shed_queue,omitempty"`
	// InFlight is the tenant's instances currently evaluating.
	InFlight int64 `json:"in_flight"`
}

// --- value codec ---

// ToJSON renders a value.Value as a JSON-marshalable Go value.
func ToJSON(v value.Value) any {
	switch v.Kind() {
	case value.KindNull:
		return nil
	case value.KindBool:
		b, _ := v.AsBool()
		return b
	case value.KindInt:
		i, _ := v.AsInt()
		return i
	case value.KindFloat:
		f, _ := v.AsFloat()
		return f
	case value.KindString:
		s, _ := v.AsString()
		return s
	case value.KindList:
		elems, _ := v.AsList()
		out := make([]any, len(elems))
		for i, e := range elems {
			out[i] = ToJSON(e)
		}
		return out
	default:
		return nil
	}
}

// FromJSON converts a decoded JSON value (as produced by a json.Decoder
// with UseNumber) into a value.Value. Plain float64s (a decoder without
// UseNumber) are accepted too: integral floats become Int values. Native
// int/int64 (what ToJSON emits for Int values) round-trip as well, so a
// client-built source map can pass through either codec unchanged.
func FromJSON(x any) (value.Value, error) {
	switch t := x.(type) {
	case nil:
		return value.Null, nil
	case bool:
		return value.Bool(t), nil
	case string:
		return value.Str(t), nil
	case int:
		return value.Int(int64(t)), nil
	case int64:
		return value.Int(t), nil
	case json.Number:
		if i, err := t.Int64(); err == nil {
			return value.Int(i), nil
		}
		f, err := t.Float64()
		if err != nil {
			return value.Null, fmt.Errorf("api: bad number %q", t.String())
		}
		return value.Float(f), nil
	case float64:
		if t == float64(int64(t)) {
			return value.Int(int64(t)), nil
		}
		return value.Float(t), nil
	case []any:
		elems := make([]value.Value, len(t))
		for i, e := range t {
			v, err := FromJSON(e)
			if err != nil {
				return value.Null, err
			}
			elems[i] = v
		}
		return value.List(elems...), nil
	default:
		return value.Null, fmt.Errorf("api: unsupported JSON value %T", x)
	}
}

// DecodeSources converts a JSON source map into engine source bindings.
func DecodeSources(m map[string]any) (map[string]value.Value, error) {
	out := make(map[string]value.Value, len(m))
	for name, x := range m {
		v, err := FromJSON(x)
		if err != nil {
			return nil, fmt.Errorf("source %q: %w", name, err)
		}
		out[name] = v
	}
	return out, nil
}

// EncodeSources is DecodeSources' inverse, for clients holding typed
// values.
func EncodeSources(m map[string]value.Value) map[string]any {
	out := make(map[string]any, len(m))
	for name, v := range m {
		out[name] = ToJSON(v)
	}
	return out
}

// CleanTenant validates a tenant name from the wire: printable,
// space-free, at most 64 bytes; empty maps to DefaultTenant.
func CleanTenant(raw string) (string, error) {
	if raw == "" {
		return DefaultTenant, nil
	}
	if len(raw) > 64 {
		return "", fmt.Errorf("api: tenant name longer than 64 bytes")
	}
	if strings.ContainsFunc(raw, func(r rune) bool { return r <= ' ' || r == 0x7f }) {
		return "", fmt.Errorf("api: tenant name contains whitespace or control characters")
	}
	return raw, nil
}
