// Binary wire protocol ("dfbin"): the length-prefixed frame codec served
// by the server's TCP front end beside the JSON/HTTP one. This file is the
// protocol's single authority — frame types, the frame grammar, the binary
// value codec and the shed/drain error codes — shared by internal/server
// (encode results, decode requests) and internal/client (the inverse), so
// the two directions cannot drift apart.
//
// Framing: every frame is
//
//	uint32 length (little endian, of everything that follows)
//	byte   frame type
//	...    payload
//
// Integers in payloads are unsigned varints (uvarint) unless noted; floats
// and the schema fingerprint are 8-byte little-endian fixeds; strings are
// uvarint length + UTF-8 bytes.
//
// Connection lifecycle: the client opens with Hello (magic, protocol
// version, tenant — the binary analogue of the X-Tenant header); the
// server answers HelloAck. The client then binds schemas it wants to
// evaluate: Bind(schema, strategy) → BindAck carrying the schema's
// deterministic fingerprint and its attribute-id table, after which Eval /
// EvalBatch frames address attributes by dense AttrID instead of name. A
// bind is a prepared statement: it pins the schema version it saw; if the
// schema is re-registered the server fails the bind's evals with CodeStale
// and the client re-binds.
//
// Request/response frames after Hello all begin with a uvarint request id
// chosen by the client; the server echoes it, so one connection can have
// any number of requests outstanding. Admission failures mirror the HTTP
// semantics as Error frames: CodeShed ↔ 429 (with the same retry-after
// hint, in milliseconds), CodeDraining ↔ 503. When the server starts a
// graceful drain it pushes one unsolicited Drain frame on every
// connection; in-flight evals still complete and are flushed before the
// server closes the connection.
//
// Frame grammar (→ client-to-server, ← server-to-client):
//
//	→ Hello       "DFB1" version:uvarint tenant:string
//	← HelloAck    version:uvarint draining:byte maxFrame:uvarint
//	→ Bind        req:uvarint bind:uvarint schema:string strategy:string
//	← BindAck     req:uvarint bind:uvarint fingerprint:u64le
//	              nattrs:uvarint { flags:byte name:string }*nattrs
//	              (flags bit0 = source, bit1 = target)
//	→ Eval        req:uvarint bind:uvarint npairs:uvarint
//	              { attr:uvarint value }*npairs
//	← Result      req:uvarint result-body
//	→ EvalBatch   req:uvarint bind:uvarint ninst:uvarint ncols:uvarint
//	              cols:{ attr:uvarint }*ncols { value }*(ncols×ninst)
//	              (column-major: all ninst values of col 0, then col 1, …)
//	← BatchResult req:uvarint ninst:uvarint { result-body }*ninst
//	← Error       req:uvarint code:byte retryAfterMs:uvarint msg:string
//	→ Register    req:uvarint text:string
//	← RegisterAck req:uvarint name:string nattrs:uvarint
//	              ntargets:uvarint { target:string }*ntargets
//	              version:uvarint fingerprint:u64le
//	→ Stats       req:uvarint
//	← StatsAck    req:uvarint json:string   (a StatsResponse)
//	→ Ping        req:uvarint
//	← Pong        req:uvarint draining:byte
//	← Drain       (no payload; unsolicited)
//	→ Forward     req:uvarint schema:string fingerprint:u64le
//	              attr:uvarint cost:uvarint args:string
//	← ForwardAck  req:uvarint err:string   (empty = the home's flight
//	              succeeded; non-empty = it ran and failed — shared fate)
//
// Forward is peer-to-peer only: a dfsd front-end node routes an
// attribute-level backend query to the attribute's home node (jump hash
// over the fleet's live member list) so each sharing identity has exactly
// one single-flight/cache entry fleet-wide. The schema is addressed by
// name + fingerprint rather than a bind id — peers share a registry, not a
// connection — and the home refuses with CodeNotFound (name unknown
// there), CodeStale (fingerprint mismatch: one side is mid-upgrade) or
// CodeDraining, all of which tell the forwarder to fall back to a local
// flight rather than retry.
//
//	result-body   elapsedUs:uvarint work:uvarint wasted:uvarint
//	              launched:uvarint synth:uvarint failures:uvarint
//	              err:string ntargets:uvarint { attr:uvarint value }*ntargets
//
// Value encoding (tag byte first): 0 ⟂, 1 false, 2 true, 3 int (zigzag
// varint), 4 float (8-byte LE), 5 string, 6 list (uvarint count +
// elements). Unlike JSON this is lossless over the whole value domain:
// Int(2) and Float(2.0) stay distinct, and non-finite floats survive.
package api

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"math"

	"repro/internal/value"
)

// BinMagic opens every Hello payload; a server reading anything else on a
// fresh connection closes it immediately (e.g. an HTTP request aimed at
// the wrong port).
const BinMagic = "DFB1"

// BinVersion is the protocol version spoken by this build.
const BinVersion = 1

// DefaultMaxFrame bounds accepted frame sizes (type byte + payload) unless
// configured otherwise; it matches the HTTP front end's default body cap
// order of magnitude while leaving room for large batches.
const DefaultMaxFrame = 16 << 20

// Frame types.
const (
	FrameHello       byte = 0x01
	FrameHelloAck    byte = 0x02
	FrameBind        byte = 0x03
	FrameBindAck     byte = 0x04
	FrameEval        byte = 0x05
	FrameResult      byte = 0x06
	FrameEvalBatch   byte = 0x07
	FrameBatchResult byte = 0x08
	FrameError       byte = 0x09
	FrameRegister    byte = 0x0A
	FrameRegisterAck byte = 0x0B
	FrameStats       byte = 0x0C
	FrameStatsAck    byte = 0x0D
	FramePing        byte = 0x0E
	FramePong        byte = 0x0F
	FrameDrain       byte = 0x10
	FrameForward     byte = 0x11
	FrameForwardAck  byte = 0x12
)

// Error frame codes, mirroring the HTTP front end's status mapping.
const (
	CodeShed       byte = 1 // ↔ 429: admission shed; retryAfterMs is the hint
	CodeDraining   byte = 2 // ↔ 503: server is draining
	CodeBadRequest byte = 3 // ↔ 400: malformed frame content
	CodeNotFound   byte = 4 // ↔ 404: unknown schema / bind id
	CodeTooLarge   byte = 5 // ↔ 413: batch or frame over limit
	CodeStale      byte = 6 // bind refers to a superseded schema; re-bind
	CodeInternal   byte = 7 // ↔ 500
)

// BindFlag bits of the per-attribute flags byte in a BindAck table.
const (
	BindFlagSource byte = 1 << 0
	BindFlagTarget byte = 1 << 1
)

// --- frame construction ---

// BeginFrame starts a frame of the given type in dst, reserving the length
// prefix. Append the payload with the Append* helpers, then patch the
// length with FinishFrame.
func BeginFrame(dst []byte, typ byte) []byte {
	return append(dst, 0, 0, 0, 0, typ)
}

// FinishFrame patches the length prefix of the frame begun at offset start
// (the value of len(dst) before BeginFrame) and returns b unchanged
// otherwise. Frames can be concatenated in one buffer by passing the
// running offset.
func FinishFrame(b []byte, start int) []byte {
	binary.LittleEndian.PutUint32(b[start:], uint32(len(b)-start-4))
	return b
}

// AppendUvarint appends x as an unsigned varint.
func AppendUvarint(dst []byte, x uint64) []byte { return binary.AppendUvarint(dst, x) }

// AppendString appends a uvarint-length-prefixed string.
func AppendString(dst []byte, s string) []byte {
	dst = binary.AppendUvarint(dst, uint64(len(s)))
	return append(dst, s...)
}

// AppendU64 appends x as an 8-byte little-endian fixed — the encoding
// used for floats and schema fingerprints.
func AppendU64(dst []byte, x uint64) []byte {
	return binary.LittleEndian.AppendUint64(dst, x)
}

// Value encoding tags.
const (
	tagNull  byte = 0
	tagFalse byte = 1
	tagTrue  byte = 2
	tagInt   byte = 3
	tagFloat byte = 4
	tagStr   byte = 5
	tagList  byte = 6
)

// AppendValue appends the binary encoding of v.
func AppendValue(dst []byte, v value.Value) []byte {
	switch v.Kind() {
	case value.KindNull:
		return append(dst, tagNull)
	case value.KindBool:
		if b, _ := v.AsBool(); b {
			return append(dst, tagTrue)
		}
		return append(dst, tagFalse)
	case value.KindInt:
		i, _ := v.AsInt()
		dst = append(dst, tagInt)
		return binary.AppendVarint(dst, i)
	case value.KindFloat:
		f, _ := v.AsFloat()
		dst = append(dst, tagFloat)
		return binary.LittleEndian.AppendUint64(dst, math.Float64bits(f))
	case value.KindString:
		s, _ := v.AsString()
		dst = append(dst, tagStr)
		return AppendString(dst, s)
	case value.KindList:
		elems, _ := v.AsList()
		dst = append(dst, tagList)
		dst = binary.AppendUvarint(dst, uint64(len(elems)))
		for _, e := range elems {
			dst = AppendValue(dst, e)
		}
		return dst
	default:
		return append(dst, tagNull)
	}
}

// --- frame parsing ---

// ErrFrame is the class of all malformed-frame errors the cursor and frame
// reader produce; a handler that sees one tears the connection down (the
// stream offset is unrecoverable).
var ErrFrame = errors.New("api: malformed binary frame")

// errTruncated is the sticky cursor error for running off the payload end.
var errTruncated = fmt.Errorf("%w: truncated payload", ErrFrame)

// maxListDepth bounds value nesting so a malicious frame cannot overflow
// the decoder's stack.
const maxListDepth = 64

// Cursor decodes a frame payload sequentially. Decoding errors are sticky:
// after the first failure every method returns a zero value and Err()
// reports the cause, so parse code can run straight-line and check once.
type Cursor struct {
	b   []byte
	err error
}

// NewCursor returns a cursor over a frame payload.
func NewCursor(p []byte) Cursor { return Cursor{b: p} }

// Err returns the first decoding error, if any.
func (c *Cursor) Err() error { return c.err }

// Rest returns the undecoded remainder of the payload.
func (c *Cursor) Rest() []byte { return c.b }

// Done returns the sticky error, or an error if payload bytes are left
// over — a well-formed frame is consumed exactly.
func (c *Cursor) Done() error {
	if c.err != nil {
		return c.err
	}
	if len(c.b) != 0 {
		return fmt.Errorf("%w: %d trailing bytes", ErrFrame, len(c.b))
	}
	return nil
}

func (c *Cursor) fail() {
	if c.err == nil {
		c.err = errTruncated
	}
}

// Byte decodes one byte.
func (c *Cursor) Byte() byte {
	if c.err != nil || len(c.b) < 1 {
		c.fail()
		return 0
	}
	v := c.b[0]
	c.b = c.b[1:]
	return v
}

// Uvarint decodes an unsigned varint.
func (c *Cursor) Uvarint() uint64 {
	if c.err != nil {
		return 0
	}
	v, n := binary.Uvarint(c.b)
	if n <= 0 {
		c.fail()
		return 0
	}
	c.b = c.b[n:]
	return v
}

// Varint decodes a signed (zigzag) varint.
func (c *Cursor) Varint() int64 {
	if c.err != nil {
		return 0
	}
	v, n := binary.Varint(c.b)
	if n <= 0 {
		c.fail()
		return 0
	}
	c.b = c.b[n:]
	return v
}

// U64 decodes an 8-byte little-endian fixed.
func (c *Cursor) U64() uint64 {
	if c.err != nil || len(c.b) < 8 {
		c.fail()
		return 0
	}
	v := binary.LittleEndian.Uint64(c.b)
	c.b = c.b[8:]
	return v
}

// F64 decodes an 8-byte little-endian float.
func (c *Cursor) F64() float64 { return math.Float64frombits(c.U64()) }

// String decodes a length-prefixed string (allocates the string).
func (c *Cursor) String() string {
	n := c.Uvarint()
	if c.err != nil || n > uint64(len(c.b)) {
		c.fail()
		return ""
	}
	s := string(c.b[:n])
	c.b = c.b[n:]
	return s
}

// Bytes decodes a length-prefixed byte string as a view into the payload,
// valid only until the frame buffer is reused.
func (c *Cursor) Bytes() []byte {
	n := c.Uvarint()
	if c.err != nil || n > uint64(len(c.b)) {
		c.fail()
		return nil
	}
	b := c.b[:n]
	c.b = c.b[n:]
	return b
}

// Value decodes one binary-encoded value.
func (c *Cursor) Value() value.Value { return c.value(0) }

func (c *Cursor) value(depth int) value.Value {
	if depth > maxListDepth {
		if c.err == nil {
			c.err = fmt.Errorf("%w: value nesting deeper than %d", ErrFrame, maxListDepth)
		}
		return value.Null
	}
	switch tag := c.Byte(); tag {
	case tagNull:
		return value.Null
	case tagFalse:
		return value.Bool(false)
	case tagTrue:
		return value.Bool(true)
	case tagInt:
		return value.Int(c.Varint())
	case tagFloat:
		return value.Float(c.F64())
	case tagStr:
		return value.Str(c.String())
	case tagList:
		n := c.Uvarint()
		// Every element costs at least one byte, so a count beyond the
		// remaining payload is corrupt — reject before allocating.
		if c.err != nil || n > uint64(len(c.b)) {
			c.fail()
			return value.Null
		}
		elems := make([]value.Value, n)
		for i := range elems {
			elems[i] = c.value(depth + 1)
			if c.err != nil {
				return value.Null
			}
		}
		return value.List(elems...)
	default:
		if c.err == nil {
			c.err = fmt.Errorf("%w: unknown value tag %#x", ErrFrame, tag)
		}
		return value.Null
	}
}

// --- frame reading ---

// FrameReader reads length-prefixed frames from a stream into a reusable
// buffer. It is not safe for concurrent use.
type FrameReader struct {
	r   io.Reader
	hdr [4]byte
	buf []byte
	max int
}

// NewFrameReader returns a reader enforcing the given frame-size cap
// (0 means DefaultMaxFrame).
func NewFrameReader(r io.Reader, max int) *FrameReader {
	if max <= 0 {
		max = DefaultMaxFrame
	}
	return &FrameReader{r: r, max: max}
}

// Next reads one frame and returns its type and payload. The payload is a
// view into the reader's buffer, valid only until the next call. io.EOF is
// returned exactly at a clean frame boundary; a connection dropped
// mid-frame surfaces io.ErrUnexpectedEOF.
func (fr *FrameReader) Next() (typ byte, payload []byte, err error) {
	if _, err := io.ReadFull(fr.r, fr.hdr[:]); err != nil {
		return 0, nil, err
	}
	n := binary.LittleEndian.Uint32(fr.hdr[:])
	if n < 1 {
		return 0, nil, fmt.Errorf("%w: zero-length frame", ErrFrame)
	}
	if int64(n) > int64(fr.max) {
		return 0, nil, fmt.Errorf("%w: frame of %d bytes exceeds cap %d", ErrFrame, n, fr.max)
	}
	if cap(fr.buf) < int(n) {
		fr.buf = make([]byte, n)
	}
	fr.buf = fr.buf[:n]
	if _, err := io.ReadFull(fr.r, fr.buf); err != nil {
		if err == io.EOF {
			err = io.ErrUnexpectedEOF
		}
		return 0, nil, err
	}
	return fr.buf[0], fr.buf[1:], nil
}

// --- whole-frame helpers for the cold control frames ---

// AppendHelloFrame appends a complete Hello frame.
func AppendHelloFrame(dst []byte, tenant string) []byte {
	start := len(dst)
	dst = BeginFrame(dst, FrameHello)
	dst = append(dst, BinMagic...)
	dst = AppendUvarint(dst, BinVersion)
	dst = AppendString(dst, tenant)
	return FinishFrame(dst, start)
}

// ParseHello decodes a Hello payload.
func ParseHello(p []byte) (tenant string, err error) {
	c := NewCursor(p)
	if len(p) < len(BinMagic) || string(p[:len(BinMagic)]) != BinMagic {
		return "", fmt.Errorf("%w: bad magic", ErrFrame)
	}
	c.b = c.b[len(BinMagic):]
	if v := c.Uvarint(); c.err == nil && v != BinVersion {
		return "", fmt.Errorf("%w: unsupported protocol version %d", ErrFrame, v)
	}
	tenant = c.String()
	return tenant, c.Done()
}

// AppendHelloAckFrame appends a complete HelloAck frame.
func AppendHelloAckFrame(dst []byte, draining bool, maxFrame int) []byte {
	start := len(dst)
	dst = BeginFrame(dst, FrameHelloAck)
	dst = AppendUvarint(dst, BinVersion)
	dst = append(dst, boolByte(draining))
	dst = AppendUvarint(dst, uint64(maxFrame))
	return FinishFrame(dst, start)
}

// ParseHelloAck decodes a HelloAck payload.
func ParseHelloAck(p []byte) (draining bool, maxFrame int, err error) {
	c := NewCursor(p)
	if v := c.Uvarint(); c.err == nil && v != BinVersion {
		return false, 0, fmt.Errorf("%w: unsupported protocol version %d", ErrFrame, v)
	}
	draining = c.Byte() != 0
	maxFrame = int(c.Uvarint())
	return draining, maxFrame, c.Done()
}

// AppendErrorFrame appends a complete Error frame.
func AppendErrorFrame(dst []byte, reqID uint64, code byte, retryAfterMs int64, msg string) []byte {
	start := len(dst)
	dst = BeginFrame(dst, FrameError)
	dst = AppendUvarint(dst, reqID)
	dst = append(dst, code)
	dst = AppendUvarint(dst, uint64(max(retryAfterMs, 0)))
	dst = AppendString(dst, msg)
	return FinishFrame(dst, start)
}

// BinError is a decoded Error frame.
type BinError struct {
	Code         byte
	RetryAfterMs int64
	Msg          string
}

// ParseError decodes an Error payload after its request id.
func ParseError(c *Cursor) (BinError, error) {
	var e BinError
	e.Code = c.Byte()
	e.RetryAfterMs = int64(c.Uvarint())
	e.Msg = c.String()
	return e, c.Done()
}

func boolByte(b bool) byte {
	if b {
		return 1
	}
	return 0
}
