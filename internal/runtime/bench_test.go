package runtime

import (
	stdruntime "runtime"
	"testing"
	"time"

	"repro/internal/capture"
	"repro/internal/engine"
	"repro/internal/fault"
	"repro/internal/gen"
	"repro/internal/value"
)

// benchLoad runs a closed-loop load of b.N instances and reports
// throughput plus the query layer's hit-rate trajectory (all zero when the
// layer is off), so BENCH files track sharing effectiveness over time. It
// returns the report for benchmark-specific extra metrics.
func benchLoad(b *testing.B, svc *Service, l Load) Report {
	b.Helper()
	defer svc.Close()
	l.Count = b.N
	// Start the measured window on a clean heap: earlier benchmarks in
	// the same process leave GC debt, and a collection landing inside a
	// ~50ms window skews a CPU-bound benchmark by double digits — the
	// dominant run-to-run noise on a 1-core runner.
	stdruntime.GC()
	b.ReportAllocs()
	b.ResetTimer()
	rep, err := RunLoad(svc, l)
	if err != nil {
		b.Fatal(err)
	}
	b.StopTimer()
	if rep.Stats.Errors > 0 {
		b.Fatalf("%d errored instances", rep.Stats.Errors)
	}
	b.ReportMetric(rep.Throughput, "inst/s")
	reportQueryMetrics(b, rep.Stats)
	return rep
}

// reportQueryMetrics emits the query layer's hit rates and batch shape.
func reportQueryMetrics(b *testing.B, st Stats) {
	b.Helper()
	if st.Launched > 0 {
		b.ReportMetric(float64(st.CacheHits)/float64(st.Launched), "cache-hit-rate")
		b.ReportMetric(float64(st.DedupHits)/float64(st.Launched), "dedup-rate")
	}
	if st.Batches > 0 {
		b.ReportMetric(st.AvgBatchSize(), "queries/batch")
	}
}

// BenchmarkServeQuickstartPSE100 measures peak serving throughput for the
// quickstart schema — the engine-side ceiling with a zero-latency backend
// (the acceptance number for cmd/dfserve).
func BenchmarkServeQuickstartPSE100(b *testing.B) {
	s, sources := quickstart(b)
	svc := New(Config{})
	benchLoad(b, svc, Load{Schema: s, Sources: sources, Strategy: engine.MustParseStrategy("PSE100")})
}

// BenchmarkServePattern64PSE100 serves the Table 1 default 64-node
// pattern, the paper's experimental workload, at full speculation.
func BenchmarkServePattern64PSE100(b *testing.B) {
	g := gen.Generate(gen.Default())
	svc := New(Config{})
	benchLoad(b, svc, Load{Schema: g.Schema, Sources: g.SourceValues(), Strategy: engine.MustParseStrategy("PSE100")})
}

// BenchmarkServeLatencyBackend serves the quickstart schema against a
// 100µs-per-query backend, measuring how well the service overlaps
// database waits across instances.
func BenchmarkServeLatencyBackend(b *testing.B) {
	s, sources := quickstart(b)
	svc := New(Config{
		Backend:          &Latency{Base: 100 * time.Microsecond},
		MaxInFlightTasks: 4096,
	})
	benchLoad(b, svc, Load{
		Schema: s, Sources: sources,
		Strategy:    engine.MustParseStrategy("PSE100"),
		Concurrency: 512,
	})
}

// BenchmarkServeDedupLatency is the acceptance scenario: identical
// instances against a 32-parallel latency backend with batching+dedup on,
// so nearly every launch shares an in-flight round trip.
func BenchmarkServeDedupLatency(b *testing.B) {
	s, sources := quickstart(b)
	svc := New(Config{
		Backend:          &Latency{Base: 200 * time.Microsecond, PerUnit: 50 * time.Microsecond, Parallel: 32},
		MaxInFlightTasks: 4096,
		Query:            QueryConfig{BatchSize: 32, BatchWindow: 200 * time.Microsecond, Dedup: true},
	})
	benchLoad(b, svc, Load{
		Schema: s, Sources: sources,
		Strategy:    engine.MustParseStrategy("PSE100"),
		Concurrency: 256,
	})
}

// BenchmarkServeBatchDiverse spreads instances over 4096 distinct source
// vectors, the regime where dedup rarely fires and cross-instance
// batching does the amortization (queries/batch tracks the coalescing).
func BenchmarkServeBatchDiverse(b *testing.B) {
	s, sources := quickstart(b)
	svc := New(Config{
		Backend:          &Latency{Base: 200 * time.Microsecond, PerUnit: 10 * time.Microsecond, Parallel: 32},
		MaxInFlightTasks: 4096,
		Query:            QueryConfig{BatchSize: 32, BatchWindow: 200 * time.Microsecond, Dedup: true, CacheSize: 16384},
	})
	benchLoad(b, svc, Load{
		Schema:      s,
		SourcesFor:  spreadVariants(sources, 4096),
		Strategy:    engine.MustParseStrategy("PSE100"),
		Concurrency: 256,
	})
}

// spreadVariants precomputes n source vectors varying every integer source
// by the variant index, so query identities spread across cluster shards.
func spreadVariants(sources map[string]value.Value, n int) func(i int) map[string]value.Value {
	variants := make([]map[string]value.Value, n)
	for v := range variants {
		m := make(map[string]value.Value, len(sources))
		for name, val := range sources {
			if iv, ok := val.AsInt(); ok {
				m[name] = value.Int(iv + int64(v))
			} else {
				m[name] = val
			}
		}
		variants[v] = m
	}
	return func(i int) map[string]value.Value { return variants[i%n] }
}

// benchCluster is the tail-tolerance acceptance scenario: a 4-shard ×
// 2-replica Latency cluster with one replica (shard 0, replica 1) skewed
// 10× slower — the "slow machine" of the tail-at-scale setting. Instances
// spread over 4096 source vectors, so ~1/8 of queries land on the slow
// replica under round-robin. Hedging (just past the healthy latency band)
// re-issues exactly those queries to the shard's healthy replica; p99-ms
// and hedge-win-rate make the cut visible in BENCH_serving.json.
func benchCluster(b *testing.B, hedge time.Duration) {
	s, sources := quickstart(b)
	cl := NewCluster(ClusterConfig{
		Shards:     4,
		Replicas:   2,
		LB:         RoundRobin,
		Retries:    1,
		HedgeDelay: hedge,
		New: func(shard, rep int) Backend {
			l := &Latency{Base: 2 * time.Millisecond, PerUnit: 50 * time.Microsecond}
			if shard == 0 && rep == 1 {
				l.Base *= 10
				l.PerUnit *= 10
			}
			return l
		},
	})
	// Vary sources in steps of two: customer_id stays odd, so every
	// instance runs the full three-query chain (tier ∥ warehouse_load →
	// upgrade) and the sequential tail the hedge must cut is always there.
	variants := make([]map[string]value.Value, 4096)
	for v := range variants {
		m := make(map[string]value.Value, len(sources))
		for name, val := range sources {
			if iv, ok := val.AsInt(); ok {
				m[name] = value.Int(iv + 2*int64(v))
			} else {
				m[name] = val
			}
		}
		variants[v] = m
	}
	svc := New(Config{Backend: cl, MaxInFlightTasks: 4096})
	rep := benchLoad(b, svc, Load{
		Schema:      s,
		SourcesFor:  func(i int) map[string]value.Value { return variants[i%len(variants)] },
		Strategy:    engine.MustParseStrategy("PSE100"),
		Concurrency: 32,
	})
	b.ReportMetric(float64(rep.Stats.P99)/float64(time.Millisecond), "p99-ms")
	if rep.Stats.Hedges > 0 {
		b.ReportMetric(float64(rep.Stats.HedgeWins)/float64(rep.Stats.Hedges), "hedge-win-rate")
	}
}

// BenchmarkServeClusterUnhedged is the slow-replica baseline: the tail of
// every closed-loop window is dominated by the 10×-slow replica.
func BenchmarkServeClusterUnhedged(b *testing.B) { benchCluster(b, 0) }

// BenchmarkServeClusterHedged is the same cluster with 3ms hedging (just
// past the healthy chain latency); the acceptance criterion is p99 ≥3×
// below the unhedged baseline at equal (closed-loop) load.
func BenchmarkServeClusterHedged(b *testing.B) { benchCluster(b, 3*time.Millisecond) }

// BenchmarkServeCachedInstant measures the cache-hit fast path itself: an
// instant backend plus a warm cache, so the benchmark is dominated by key
// rendering, shard lookup, and completion delivery.
func BenchmarkServeCachedInstant(b *testing.B) {
	s, sources := quickstart(b)
	svc := New(Config{
		Query: QueryConfig{CacheSize: 1024},
	})
	benchLoad(b, svc, Load{
		Schema: s, Sources: sources,
		Strategy: engine.MustParseStrategy("PSE100"),
	})
}

// BenchmarkServeCachedInstantFaultSites is BenchmarkServeCachedInstant
// with two disarmed failpoint sites evaluated on every instance — the
// instrumentation cost a production build carries all the time. Its
// baseline entry pins the same inst/s and allocs/op as the fault-free
// benchmark, so bench-guard turns any disarmed-path overhead (an
// allocation, a lock, a map lookup on the fast path) into a regression
// failure rather than a slow drift.
func BenchmarkServeCachedInstantFaultSites(b *testing.B) {
	if fault.Active() {
		b.Fatal("failpoints armed; this benchmark measures the disarmed fast path")
	}
	s, sources := quickstart(b)
	svc := New(Config{
		Query: QueryConfig{CacheSize: 1024},
	})
	benchLoad(b, svc, Load{
		Schema: s,
		SourcesFor: func(i int) map[string]value.Value {
			fault.Eval(fault.SiteWALAppendSync)
			fault.Eval(fault.SiteBinConnWrite)
			return sources
		},
		Strategy: engine.MustParseStrategy("PSE100"),
	})
}

// captureOff stays nil for the whole process: the benchmark below prices
// exactly what dfsd pays per eval when -capture is unset — one nil-writer
// check — and nothing else.
var captureOff *capture.Writer

// BenchmarkServeCachedInstantCaptureOff is BenchmarkServeCachedInstant
// with the capture-off probe evaluated on every instance, the same
// contract FaultSites pins for disarmed failpoints: its baseline entry
// carries the identical inst/s and allocs/op as the capture-free
// benchmark, so any cost leaking onto the fast path while capture is
// disabled (an allocation, an atomic, a map lookup) fails bench-guard
// instead of drifting in silently.
func BenchmarkServeCachedInstantCaptureOff(b *testing.B) {
	s, sources := quickstart(b)
	svc := New(Config{
		Query: QueryConfig{CacheSize: 1024},
	})
	benchLoad(b, svc, Load{
		Schema: s,
		SourcesFor: func(i int) map[string]value.Value {
			if captureOff.Enabled() {
				panic("capture writer must be nil: this benchmark measures the disabled path")
			}
			return sources
		},
		Strategy: engine.MustParseStrategy("PSE100"),
	})
}
