package runtime

import (
	"testing"
	"time"

	"repro/internal/engine"
	"repro/internal/gen"
	"repro/internal/value"
)

// benchLoad runs a closed-loop load of b.N instances and reports
// throughput plus the query layer's hit-rate trajectory (all zero when the
// layer is off), so BENCH files track sharing effectiveness over time.
func benchLoad(b *testing.B, svc *Service, l Load) {
	b.Helper()
	defer svc.Close()
	l.Count = b.N
	b.ReportAllocs()
	b.ResetTimer()
	rep, err := RunLoad(svc, l)
	if err != nil {
		b.Fatal(err)
	}
	b.StopTimer()
	if rep.Stats.Errors > 0 {
		b.Fatalf("%d errored instances", rep.Stats.Errors)
	}
	b.ReportMetric(rep.Throughput, "inst/s")
	reportQueryMetrics(b, rep.Stats)
}

// reportQueryMetrics emits the query layer's hit rates and batch shape.
func reportQueryMetrics(b *testing.B, st Stats) {
	b.Helper()
	if st.Launched > 0 {
		b.ReportMetric(float64(st.CacheHits)/float64(st.Launched), "cache-hit-rate")
		b.ReportMetric(float64(st.DedupHits)/float64(st.Launched), "dedup-rate")
	}
	if st.Batches > 0 {
		b.ReportMetric(st.AvgBatchSize(), "queries/batch")
	}
}

// BenchmarkServeQuickstartPSE100 measures peak serving throughput for the
// quickstart schema — the engine-side ceiling with a zero-latency backend
// (the acceptance number for cmd/dfserve).
func BenchmarkServeQuickstartPSE100(b *testing.B) {
	s, sources := quickstart(b)
	svc := New(Config{})
	benchLoad(b, svc, Load{Schema: s, Sources: sources, Strategy: engine.MustParseStrategy("PSE100")})
}

// BenchmarkServePattern64PSE100 serves the Table 1 default 64-node
// pattern, the paper's experimental workload, at full speculation.
func BenchmarkServePattern64PSE100(b *testing.B) {
	g := gen.Generate(gen.Default())
	svc := New(Config{})
	benchLoad(b, svc, Load{Schema: g.Schema, Sources: g.SourceValues(), Strategy: engine.MustParseStrategy("PSE100")})
}

// BenchmarkServeLatencyBackend serves the quickstart schema against a
// 100µs-per-query backend, measuring how well the service overlaps
// database waits across instances.
func BenchmarkServeLatencyBackend(b *testing.B) {
	s, sources := quickstart(b)
	svc := New(Config{
		Backend:          &Latency{Base: 100 * time.Microsecond},
		MaxInFlightTasks: 4096,
	})
	benchLoad(b, svc, Load{
		Schema: s, Sources: sources,
		Strategy:    engine.MustParseStrategy("PSE100"),
		Concurrency: 512,
	})
}

// BenchmarkServeDedupLatency is the acceptance scenario: identical
// instances against a 32-parallel latency backend with batching+dedup on,
// so nearly every launch shares an in-flight round trip.
func BenchmarkServeDedupLatency(b *testing.B) {
	s, sources := quickstart(b)
	svc := New(Config{
		Backend:          &Latency{Base: 200 * time.Microsecond, PerUnit: 50 * time.Microsecond, Parallel: 32},
		MaxInFlightTasks: 4096,
		Query:            QueryConfig{BatchSize: 32, BatchWindow: 200 * time.Microsecond, Dedup: true},
	})
	benchLoad(b, svc, Load{
		Schema: s, Sources: sources,
		Strategy:    engine.MustParseStrategy("PSE100"),
		Concurrency: 256,
	})
}

// BenchmarkServeBatchDiverse spreads instances over 4096 distinct source
// vectors, the regime where dedup rarely fires and cross-instance
// batching does the amortization (queries/batch tracks the coalescing).
func BenchmarkServeBatchDiverse(b *testing.B) {
	s, sources := quickstart(b)
	variants := make([]map[string]value.Value, 4096)
	for v := range variants {
		m := make(map[string]value.Value, len(sources))
		for name, val := range sources {
			if iv, ok := val.AsInt(); ok {
				m[name] = value.Int(iv + int64(v))
			} else {
				m[name] = val
			}
		}
		variants[v] = m
	}
	svc := New(Config{
		Backend:          &Latency{Base: 200 * time.Microsecond, PerUnit: 10 * time.Microsecond, Parallel: 32},
		MaxInFlightTasks: 4096,
		Query:            QueryConfig{BatchSize: 32, BatchWindow: 200 * time.Microsecond, Dedup: true, CacheSize: 16384},
	})
	benchLoad(b, svc, Load{
		Schema:      s,
		SourcesFor:  func(i int) map[string]value.Value { return variants[i%len(variants)] },
		Strategy:    engine.MustParseStrategy("PSE100"),
		Concurrency: 256,
	})
}

// BenchmarkServeCachedInstant measures the cache-hit fast path itself: an
// instant backend plus a warm cache, so the benchmark is dominated by key
// rendering, shard lookup, and completion delivery.
func BenchmarkServeCachedInstant(b *testing.B) {
	s, sources := quickstart(b)
	svc := New(Config{
		Query: QueryConfig{CacheSize: 1024},
	})
	benchLoad(b, svc, Load{
		Schema: s, Sources: sources,
		Strategy: engine.MustParseStrategy("PSE100"),
	})
}
