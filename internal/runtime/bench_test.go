package runtime

import (
	"testing"
	"time"

	"repro/internal/engine"
	"repro/internal/gen"
)

// benchLoad runs a closed-loop load of b.N instances and reports
// throughput.
func benchLoad(b *testing.B, svc *Service, l Load) {
	b.Helper()
	defer svc.Close()
	l.Count = b.N
	b.ReportAllocs()
	b.ResetTimer()
	rep, err := RunLoad(svc, l)
	if err != nil {
		b.Fatal(err)
	}
	b.StopTimer()
	if rep.Stats.Errors > 0 {
		b.Fatalf("%d errored instances", rep.Stats.Errors)
	}
	b.ReportMetric(rep.Throughput, "inst/s")
}

// BenchmarkServeQuickstartPSE100 measures peak serving throughput for the
// quickstart schema — the engine-side ceiling with a zero-latency backend
// (the acceptance number for cmd/dfserve).
func BenchmarkServeQuickstartPSE100(b *testing.B) {
	s, sources := quickstart(b)
	svc := New(Config{})
	benchLoad(b, svc, Load{Schema: s, Sources: sources, Strategy: engine.MustParseStrategy("PSE100")})
}

// BenchmarkServePattern64PSE100 serves the Table 1 default 64-node
// pattern, the paper's experimental workload, at full speculation.
func BenchmarkServePattern64PSE100(b *testing.B) {
	g := gen.Generate(gen.Default())
	svc := New(Config{})
	benchLoad(b, svc, Load{Schema: g.Schema, Sources: g.SourceValues(), Strategy: engine.MustParseStrategy("PSE100")})
}

// BenchmarkServeLatencyBackend serves the quickstart schema against a
// 100µs-per-query backend, measuring how well the service overlaps
// database waits across instances.
func BenchmarkServeLatencyBackend(b *testing.B) {
	s, sources := quickstart(b)
	svc := New(Config{
		Backend:          &Latency{Base: 100 * time.Microsecond},
		MaxInFlightTasks: 4096,
	})
	benchLoad(b, svc, Load{
		Schema: s, Sources: sources,
		Strategy:    engine.MustParseStrategy("PSE100"),
		Concurrency: 512,
	})
}
