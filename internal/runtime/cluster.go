package runtime

import (
	"errors"
	"math"
	"sync"
	"sync/atomic"
	"time"
)

// Cluster is a sharded, replicated Backend: N consistent-hash shards ×
// R replicas of any underlying Backend, with the tail-tolerance layer the
// single-backend runtime lacks — replica load balancing, per-attempt
// deadlines, retry-with-backoff on a different replica, hedged requests,
// and a per-replica circuit breaker.
//
// Placement is by the query's 64-bit sharing-identity hash (the same
// identity the query layer deduplicates and caches on, rendered by
// engine.Core.AppendQueryArgs), so the same logical query always lands on
// the same shard — which is what lets per-shard data locality, caches and
// batches compose. The query layer sits *above* the cluster: batching,
// dedup and the attribute cache see one Backend; the cluster fans batches
// out per shard underneath (RoutedBatch) and masks replica faults before
// the layer ever observes them.
//
// Failure semantics: an attempt that errors or exceeds Deadline is retried
// on a different replica, up to Retries times, with exponential backoff.
// Only when every attempt fails does the query surface a non-nil error to
// the caller (the service then completes the instance's task as failed —
// value ⟂, counted in Result.Failures). With at least one healthy replica
// per shard and Retries ≥ 1, faults are fully masked: results are
// indistinguishable from a healthy single backend, which is the oracle
// invariant the chaos suite pins.
type Cluster struct {
	cfg    ClusterConfig
	shards []*cshard
	seq    atomic.Uint64 // spreads unroutable queries over shards

	hedges     atomic.Uint64
	hedgeWins  atomic.Uint64
	retriesN   atomic.Uint64
	timeoutsN  atomic.Uint64
	errorsN    atomic.Uint64
	failed     atomic.Uint64
	subBatches atomic.Uint64 // per-shard sub-batches cut from routed batches
}

// ClusterConfig configures a Cluster. The zero value of every optional
// field is a sane default; Shards, Replicas and New define the topology.
type ClusterConfig struct {
	// Shards is the number of consistent-hash partitions (default 1).
	Shards int
	// Replicas is the number of backend copies per shard (default 1).
	Replicas int
	// New constructs the backend of (shard, replica); required. Backends
	// implementing Fallible/FallibleBatch report faults the cluster can
	// retry around; plain backends are treated as infallible.
	New func(shard, replica int) Backend
	// LB selects the replica load-balancing policy (default RoundRobin).
	LB LBPolicy
	// Retries is the maximum extra attempts after the first, each
	// preferring an untried replica (default 0: fail fast).
	Retries int
	// RetryBackoff delays retry k by RetryBackoff × 2^(k-1); 0 retries
	// immediately.
	RetryBackoff time.Duration
	// Deadline bounds each attempt; an attempt that hasn't completed in
	// time is abandoned (its late result ignored) and retried elsewhere.
	// 0 disables — required for stall faults to be survivable.
	Deadline time.Duration
	// HedgeDelay launches one backup attempt on a different replica when
	// the first hasn't completed after this fixed delay. 0 defers to
	// HedgeQuantile.
	HedgeDelay time.Duration
	// HedgeQuantile, when HedgeDelay is 0, derives the hedge delay from
	// the shard's observed latency distribution: e.g. 0.95 hedges only the
	// slowest ~5% of requests ("The Tail at Scale"). 0 disables hedging.
	HedgeQuantile float64
	// BreakAfter consecutive failures open a replica's circuit breaker
	// (default 5; negative disables breaking entirely).
	BreakAfter int
	// BreakCooldown is how long an open breaker rejects traffic before
	// admitting a half-open probe (default 250ms).
	BreakCooldown time.Duration
}

// errDeadline is the terminal error of a query whose every attempt timed
// out.
var errDeadline = errors.New("runtime: cluster query deadline exceeded")

// NewCluster builds the shard × replica topology.
func NewCluster(cfg ClusterConfig) *Cluster {
	if cfg.New == nil {
		panic("runtime: ClusterConfig.New is required")
	}
	if cfg.Shards <= 0 {
		cfg.Shards = 1
	}
	if cfg.Replicas <= 0 {
		cfg.Replicas = 1
	}
	breakAfter := int32(cfg.BreakAfter)
	if cfg.BreakAfter == 0 {
		breakAfter = 5
	} else if cfg.BreakAfter < 0 {
		breakAfter = math.MaxInt32
	}
	if cfg.BreakCooldown <= 0 {
		cfg.BreakCooldown = 250 * time.Millisecond
	}
	cl := &Cluster{cfg: cfg, shards: make([]*cshard, cfg.Shards)}
	for s := range cl.shards {
		sh := &cshard{replicas: make([]*replica, cfg.Replicas)}
		for r := range sh.replicas {
			sh.replicas[r] = newReplica(cfg.New(s, r), breakAfter, cfg.BreakCooldown)
		}
		cl.shards[s] = sh
	}
	return cl
}

// Config returns the cluster's (defaulted) configuration.
func (cl *Cluster) Config() ClusterConfig { return cl.cfg }

// shardFor maps a sharing-identity hash to its consistent partition.
func (cl *Cluster) shardFor(hash uint64) *cshard {
	return cl.shards[jumpHash(hash, len(cl.shards))]
}

// nextHash spreads queries without a sharing identity uniformly.
func (cl *Cluster) nextHash() uint64 { return splitmix64(cl.seq.Add(1)) }

// Submit routes an unidentified query to an arbitrary shard; faults are
// masked by retries but unreportable on this path.
func (cl *Cluster) Submit(cost int, done func()) {
	cl.start(cl.shardFor(cl.nextHash()), cost, nil, func(error) { done() })
}

// SubmitErr routes an unidentified query with fault reporting.
func (cl *Cluster) SubmitErr(cost int, done func(error)) {
	cl.start(cl.shardFor(cl.nextHash()), cost, nil, done)
}

// SubmitRouted places the query on its consistent shard by sharing-identity
// hash.
func (cl *Cluster) SubmitRouted(hash uint64, cost int, done func(error)) {
	cl.start(cl.shardFor(hash), cost, nil, done)
}

// SubmitBatch executes the combined batch on one (arbitrary) shard: a
// single sub-batch, one round-trip amortization, faults masked.
func (cl *Cluster) SubmitBatch(costs []int, done func()) {
	cl.start(cl.shardFor(cl.nextHash()), 0, costs, func(error) { done() })
}

// SubmitBatchErr is SubmitBatch with fault reporting.
func (cl *Cluster) SubmitBatchErr(costs []int, done func(error)) {
	cl.start(cl.shardFor(cl.nextHash()), 0, costs, done)
}

// SubmitRoutedBatch fans one combined batch out per shard: members are
// grouped by their identity hash, each group executes as one sub-batch on
// its shard (with the full retry/hedge machinery), and each member's
// callback fires as its group lands — fast shards don't wait for slow
// ones.
func (cl *Cluster) SubmitRoutedBatch(hashes []uint64, costs []int, each func(i int, err error)) {
	n := len(cl.shards)
	if n == 1 {
		cl.start(cl.shards[0], 0, costs, func(err error) {
			for i := range costs {
				each(i, err)
			}
		})
		return
	}
	groups := make([][]int, n)
	for i, h := range hashes {
		s := jumpHash(h, n)
		groups[s] = append(groups[s], i)
	}
	for s, members := range groups {
		switch {
		case len(members) == 0:
		case len(members) == 1:
			i := members[0]
			cl.start(cl.shards[s], costs[i], nil, func(err error) { each(i, err) })
		default:
			members := members
			sub := make([]int, len(members))
			for j, i := range members {
				sub[j] = costs[i]
			}
			cl.start(cl.shards[s], 0, sub, func(err error) {
				for _, i := range members {
					each(i, err)
				}
			})
		}
	}
}

// --- per-query lifecycle ---

// call is one logical query's journey through the cluster: up to
// 1 + Retries attempts plus at most one hedge, first success wins.
type call struct {
	cl    *Cluster
	sh    *cshard
	cost  int
	costs []int // non-nil for a sub-batch
	done  func(error)

	mu          sync.Mutex
	settled     bool
	tried       uint64 // replica exclusion mask
	retriesLeft int
	retriesUsed int
	outstanding int // live (unresolved) attempts
	hedged      bool
	hedgeTimer  *time.Timer
	lastErr     error
}

// attempt is one submission to one replica. It is referenced only by the
// closures of its completion and deadline paths; resolved (guarded by the
// call's mutex) makes those paths meet exactly once.
type attempt struct {
	rep      *replica
	start    time.Time
	isHedge  bool
	resolved bool
	deadline *time.Timer
}

// start launches one logical query (or sub-batch) on the shard.
func (cl *Cluster) start(sh *cshard, cost int, costs []int, done func(error)) {
	c := &call{cl: cl, sh: sh, cost: cost, costs: costs, done: done, retriesLeft: cl.cfg.Retries}
	if costs != nil {
		cl.subBatches.Add(1)
	}
	c.mu.Lock()
	exec := c.launchLocked(false)
	if delay := cl.hedgeDelay(sh); delay > 0 && len(sh.replicas) > 1 {
		c.hedgeTimer = time.AfterFunc(delay, c.hedge)
	}
	c.mu.Unlock()
	exec()
}

// hedgeDelay resolves the hedge trigger: fixed, or the shard's observed
// latency quantile (0 until the histogram has warmed past 64 samples).
func (cl *Cluster) hedgeDelay(sh *cshard) time.Duration {
	if cl.cfg.HedgeDelay > 0 {
		return cl.cfg.HedgeDelay
	}
	if q := cl.cfg.HedgeQuantile; q > 0 {
		return sh.hist.quantile(q, 64)
	}
	return 0
}

// launchLocked prepares one attempt: picks a replica (preferring untried,
// breaker-admitted ones), marks it tried, arms the deadline. It returns
// the submission closure, to invoke after releasing the lock — backends
// may complete synchronously, and the completion path takes the lock.
func (c *call) launchLocked(isHedge bool) func() {
	now := time.Now()
	rep := c.sh.pick(c.cl.cfg.LB, c.tried, now.UnixNano())
	if i := c.sh.index(rep); i >= 0 {
		c.tried |= 1 << uint(i)
	}
	at := &attempt{rep: rep, start: now, isHedge: isHedge}
	c.outstanding++
	if d := c.cl.cfg.Deadline; d > 0 {
		at.deadline = time.AfterFunc(d, func() { c.timeout(at) })
	}
	return func() {
		rep.exec(c.cost, c.costs, func(err error) { c.finish(at, err) })
	}
}

// finish is an attempt's completion path. Errors and latencies feed the
// breaker and histogram even for abandoned attempts — they are real
// observations of the replica — but a breaker *success* is only fed for
// in-time completions: a replica that answers after its deadline is alive
// yet useless, and crediting its late successes would keep re-closing the
// breaker of a replica every caller times out on.
func (c *call) finish(at *attempt, err error) {
	now := time.Now()
	if err != nil {
		at.rep.errors.Add(1)
		at.rep.brk.failure(now.UnixNano())
		c.cl.errorsN.Add(1)
	} else {
		c.sh.hist.observe(now.Sub(at.start))
	}
	c.mu.Lock()
	if at.resolved {
		c.mu.Unlock() // late completion of a timed-out attempt
		return
	}
	at.resolved = true
	if err == nil {
		at.rep.brk.success()
	}
	if at.deadline != nil {
		at.deadline.Stop()
	}
	c.outstanding--
	if c.settled {
		c.mu.Unlock() // the other attempt already won
		return
	}
	if err == nil {
		c.settleLocked(nil, at.isHedge)
		return
	}
	c.lastErr = err
	c.resolveFailureLocked()
}

// timeout abandons one attempt at its deadline: the attempt counts as a
// failure (feeding the breaker) and the retry machinery takes over; the
// attempt's real completion, whenever it arrives, is ignored.
func (c *call) timeout(at *attempt) {
	c.mu.Lock()
	if at.resolved || c.settled {
		c.mu.Unlock()
		return
	}
	at.resolved = true
	c.outstanding--
	at.rep.timeouts.Add(1)
	at.rep.brk.failure(time.Now().UnixNano())
	c.cl.timeoutsN.Add(1)
	c.lastErr = errDeadline
	c.resolveFailureLocked()
}

// hedge fires at the hedge delay: if the primary attempt is still out, a
// backup attempt races it on a different replica. At most one hedge per
// call.
func (c *call) hedge() {
	c.mu.Lock()
	if c.settled || c.hedged || c.outstanding == 0 {
		c.mu.Unlock() // done, already hedged, or a retry is driving
		return
	}
	c.hedged = true
	c.cl.hedges.Add(1)
	exec := c.launchLocked(true)
	c.mu.Unlock()
	exec()
}

// resolveFailureLocked decides what a failed/timed-out attempt means for
// the call: wait (another attempt still racing), retry (budget left), or
// surface the failure. Called with the lock held; releases it.
func (c *call) resolveFailureLocked() {
	if c.outstanding > 0 {
		c.mu.Unlock() // the hedge (or primary) is still racing; let it decide
		return
	}
	if c.retriesLeft > 0 {
		c.retriesLeft--
		c.retriesUsed++
		c.cl.retriesN.Add(1)
		if c.tried == 1<<uint(len(c.sh.replicas))-1 {
			c.tried = 0 // every replica tried: allow repeats
		}
		if backoff := c.backoff(); backoff > 0 {
			c.mu.Unlock()
			time.AfterFunc(backoff, c.retry)
			return
		}
		exec := c.launchLocked(false)
		c.mu.Unlock()
		exec()
		return
	}
	c.settleLocked(c.lastErr, false)
}

// backoff returns the exponential delay before the next retry.
func (c *call) backoff() time.Duration {
	if c.cl.cfg.RetryBackoff <= 0 {
		return 0
	}
	return c.cl.cfg.RetryBackoff << uint(c.retriesUsed-1)
}

// retry launches the next attempt after its backoff.
func (c *call) retry() {
	c.mu.Lock()
	if c.settled {
		c.mu.Unlock()
		return
	}
	exec := c.launchLocked(false)
	c.mu.Unlock()
	exec()
}

// settleLocked delivers the call's terminal outcome exactly once. Called
// with the lock held; releases it.
func (c *call) settleLocked(err error, hedgeWon bool) {
	c.settled = true
	if c.hedgeTimer != nil {
		c.hedgeTimer.Stop()
	}
	c.mu.Unlock()
	if hedgeWon {
		c.cl.hedgeWins.Add(1)
	}
	if err != nil {
		c.cl.failed.Add(1)
	}
	c.done(err)
}

// --- stats ---

// ReplicaStats is one replica's traffic view.
type ReplicaStats struct {
	// Queries counts attempts handed to the replica, including hedges,
	// retries and sub-batches.
	Queries uint64
	// Errors counts attempts that reported a failure.
	Errors uint64
	// Timeouts counts attempts abandoned at the per-attempt deadline.
	Timeouts uint64
	// BreakerTrips counts closed→open transitions of the replica's
	// circuit breaker.
	BreakerTrips uint64
	// InFlight is the replica's current outstanding-attempt gauge.
	InFlight int
}

// ClusterStats aggregates the cluster's resilience counters: the totals
// the serving Stats report, plus the per-shard/per-replica breakdown.
type ClusterStats struct {
	Shards   int
	Replicas int
	// Hedges / HedgeWins count backup attempts launched and backup
	// attempts that completed first.
	Hedges, HedgeWins uint64
	// Retries counts re-attempts after an error or timeout; Timeouts and
	// Errors count the attempt-level observations that caused them.
	Retries, Timeouts, Errors uint64
	// BreakerTrips sums closed→open transitions across replicas.
	BreakerTrips uint64
	// Failed counts queries whose every attempt failed — the only case a
	// fault surfaces to the caller.
	Failed uint64
	// SubBatches counts per-shard sub-batches cut from routed batches.
	SubBatches uint64
	// Replica is the per-[shard][replica] breakdown.
	Replica [][]ReplicaStats
}

// ClusterStats snapshots the counters.
func (cl *Cluster) ClusterStats() ClusterStats {
	st := ClusterStats{
		Shards:     len(cl.shards),
		Replicas:   cl.cfg.Replicas,
		Hedges:     cl.hedges.Load(),
		HedgeWins:  cl.hedgeWins.Load(),
		Retries:    cl.retriesN.Load(),
		Timeouts:   cl.timeoutsN.Load(),
		Errors:     cl.errorsN.Load(),
		Failed:     cl.failed.Load(),
		SubBatches: cl.subBatches.Load(),
	}
	st.Replica = make([][]ReplicaStats, len(cl.shards))
	for s, sh := range cl.shards {
		row := make([]ReplicaStats, len(sh.replicas))
		for r, rep := range sh.replicas {
			row[r] = ReplicaStats{
				Queries:      rep.queries.Load(),
				Errors:       rep.errors.Load(),
				Timeouts:     rep.timeouts.Load(),
				BreakerTrips: rep.brk.trips.Load(),
				InFlight:     int(rep.inFlight.Load()),
			}
			st.BreakerTrips += row[r].BreakerTrips
		}
		st.Replica[s] = row
	}
	return st
}

// ResetStats zeroes the run-scoped counters (breaker state and the learned
// latency histograms are operational state, not run metrics, and persist).
func (cl *Cluster) ResetStats() {
	cl.hedges.Store(0)
	cl.hedgeWins.Store(0)
	cl.retriesN.Store(0)
	cl.timeoutsN.Store(0)
	cl.errorsN.Store(0)
	cl.failed.Store(0)
	cl.subBatches.Store(0)
	for _, sh := range cl.shards {
		for _, rep := range sh.replicas {
			rep.queries.Store(0)
			rep.errors.Store(0)
			rep.timeouts.Store(0)
			rep.brk.trips.Store(0)
		}
	}
}

// Stop releases backend resources: every replica implementing
// interface{ Stop() } (e.g. PacedSim) is stopped. Call after the service
// has drained.
func (cl *Cluster) Stop() {
	for _, sh := range cl.shards {
		for _, rep := range sh.replicas {
			if s, ok := rep.be.(interface{ Stop() }); ok {
				s.Stop()
			}
		}
	}
}
