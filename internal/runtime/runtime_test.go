package runtime

import (
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/expr"
	"repro/internal/gen"
	"repro/internal/simdb"
	"repro/internal/snapshot"
	"repro/internal/value"
)

// quickstart builds the five-attribute shipping-upgrade flow of the
// package quick start (examples/quickstart).
func quickstart(t testing.TB) (*core.Schema, map[string]value.Value) {
	t.Helper()
	s, err := core.NewBuilder("shipping-upgrade").
		Source("order_total").
		Source("customer_id").
		Foreign("tier", expr.TrueExpr, []string{"customer_id"}, 2,
			func(in core.Inputs) value.Value {
				if id, ok := in.Get("customer_id").AsInt(); ok && id%2 == 1 {
					return value.Str("gold")
				}
				return value.Str("standard")
			}).
		Foreign("warehouse_load", expr.MustParse("order_total > 50"), nil, 3,
			core.ConstCompute(value.Int(40))).
		SynthesisExpr("score", expr.TrueExpr,
			expr.MustParse(`order_total / 10 + coalesce(warehouse_load, 100) / -2`)).
		Foreign("upgrade", expr.MustParse(`score > -10 and tier == "gold"`), []string{"tier", "score"}, 1,
			core.ConstCompute(value.Str("free 2-day shipping"))).
		Target("upgrade").
		Build()
	if err != nil {
		t.Fatal(err)
	}
	sources := map[string]value.Value{
		"order_total": value.Int(120),
		"customer_id": value.Int(7),
	}
	return s, sources
}

// TestServiceDoMatchesOracle serves the quickstart flow under every
// strategy shape and checks each terminal snapshot against the
// declarative oracle and against the virtual-time engine's answer.
func TestServiceDoMatchesOracle(t *testing.T) {
	s, sources := quickstart(t)
	oracle := snapshot.Complete(s, sources)
	svc := New(Config{Workers: 4})
	defer svc.Close()
	for _, code := range []string{"PSE100", "PCE0", "NCC0", "PSC40", "NSE60", "PCE100"} {
		st := engine.MustParseStrategy(code)
		res, err := svc.Do(s, sources, st)
		if err != nil {
			t.Fatalf("%s: %v", code, err)
		}
		if res.Err != nil {
			t.Fatalf("%s: instance error: %v", code, res.Err)
		}
		if !res.Snapshot.Terminal() {
			t.Fatalf("%s: snapshot not terminal", code)
		}
		if err := snapshot.CheckAgainstOracle(res.Snapshot, oracle); err != nil {
			t.Fatalf("%s: oracle mismatch: %v", code, err)
		}
		sim := engine.Run(s, sources, st)
		if got, want := res.Work, sim.Work; got != want {
			t.Errorf("%s: wall-clock Work %d != virtual-time Work %d", code, got, want)
		}
	}
}

// TestSoakConcurrentInstances is the -race soak: well over 1000 instances
// in flight at once, across mixed strategies and two schemas, against a
// latency-injecting backend. Every instance must reach a terminal
// snapshot agreeing with its oracle, and the service's aggregate Work
// must equal the per-instance sum exactly — no lost or double-counted
// work anywhere in the concurrent path.
func TestSoakConcurrentInstances(t *testing.T) {
	qs, qsSources := quickstart(t)
	g := gen.Generate(gen.Default())
	type class struct {
		schema  *core.Schema
		sources map[string]value.Value
		oracle  *snapshot.Snapshot
	}
	classes := []class{
		{qs, qsSources, snapshot.Complete(qs, qsSources)},
		{g.Schema, g.SourceValues(), snapshot.Complete(g.Schema, g.SourceValues())},
	}
	strategies := engine.Strategies("PSE100", "PCE0", "NCC0", "PSC40", "NSE60", "PCE100")

	const n = 2000
	svc := New(Config{
		Backend:          &Latency{Base: 100 * time.Microsecond, PerUnit: 10 * time.Microsecond, Jitter: 0.5},
		MaxInFlightTasks: 4096,
	})
	defer svc.Close()

	var (
		wg         sync.WaitGroup
		inFlight   atomic.Int64
		maxFlight  atomic.Int64
		completed  atomic.Int64
		sumWork    atomic.Int64
		sumWasted  atomic.Int64
		sumLaunch  atomic.Int64
		sumSynth   atomic.Int64
		oracleErrs atomic.Int64
		instErrs   atomic.Int64
	)
	wg.Add(n)
	for i := 0; i < n; i++ {
		cl := classes[i%len(classes)]
		if err := svc.Submit(Request{
			Schema:   cl.schema,
			Sources:  cl.sources,
			Strategy: strategies[i%len(strategies)],
			Done: func(r *engine.Result) {
				defer wg.Done()
				defer inFlight.Add(-1)
				completed.Add(1)
				if r.Err != nil {
					instErrs.Add(1)
					return
				}
				if !r.Snapshot.Terminal() {
					instErrs.Add(1)
					return
				}
				if err := snapshot.CheckAgainstOracle(r.Snapshot, cl.oracle); err != nil {
					oracleErrs.Add(1)
					return
				}
				sumWork.Add(int64(r.Work))
				sumWasted.Add(int64(r.WastedWork))
				sumLaunch.Add(int64(r.Launched))
				sumSynth.Add(int64(r.SynthesisRuns))
			},
		}); err != nil {
			t.Fatal(err)
		}
		if f := inFlight.Add(1); f > maxFlight.Load() {
			maxFlight.Store(f)
		}
	}
	wg.Wait()

	if got := completed.Load(); got != n {
		t.Fatalf("completed %d instances, want %d", got, n)
	}
	if e := instErrs.Load(); e != 0 {
		t.Fatalf("%d instances failed to reach a clean terminal snapshot", e)
	}
	if e := oracleErrs.Load(); e != 0 {
		t.Fatalf("%d instances disagreed with the oracle", e)
	}
	if m := maxFlight.Load(); m < 1000 {
		t.Errorf("peak concurrent instances = %d, want >= 1000 (soak did not overlap)", m)
	}
	st := svc.Stats()
	if st.Completed != n {
		t.Errorf("stats completed = %d, want %d", st.Completed, n)
	}
	if st.Work != uint64(sumWork.Load()) {
		t.Errorf("aggregate Work %d != per-instance sum %d (lost or double-counted)", st.Work, sumWork.Load())
	}
	if st.WastedWork != uint64(sumWasted.Load()) {
		t.Errorf("aggregate WastedWork %d != per-instance sum %d", st.WastedWork, sumWasted.Load())
	}
	if st.Launched != uint64(sumLaunch.Load()) {
		t.Errorf("aggregate Launched %d != per-instance sum %d", st.Launched, sumLaunch.Load())
	}
	if st.SynthesisRuns != uint64(sumSynth.Load()) {
		t.Errorf("aggregate SynthesisRuns %d != per-instance sum %d", st.SynthesisRuns, sumSynth.Load())
	}
	if st.WastedWork > st.Work {
		t.Errorf("WastedWork %d > Work %d", st.WastedWork, st.Work)
	}
}

// countingBackend records the peak number of concurrently executing
// queries.
type countingBackend struct {
	mu      sync.Mutex
	current int
	peak    int
}

func (c *countingBackend) Submit(cost int, done func()) {
	c.mu.Lock()
	c.current++
	if c.current > c.peak {
		c.peak = c.current
	}
	c.mu.Unlock()
	time.AfterFunc(50*time.Microsecond, func() {
		c.mu.Lock()
		c.current--
		c.mu.Unlock()
		done()
	})
}

// TestGlobalAdmissionBound asserts the service never exceeds
// MaxInFlightTasks database tasks across all instances.
func TestGlobalAdmissionBound(t *testing.T) {
	g := gen.Generate(gen.Default())
	cb := &countingBackend{}
	const bound = 7
	svc := New(Config{Backend: cb, MaxInFlightTasks: bound, Workers: 8})
	defer svc.Close()

	var wg sync.WaitGroup
	const n = 200
	wg.Add(n)
	for i := 0; i < n; i++ {
		if err := svc.Submit(Request{
			Schema:   g.Schema,
			Sources:  g.SourceValues(),
			Strategy: engine.MustParseStrategy("PSE100"),
			Done:     func(*engine.Result) { wg.Done() },
		}); err != nil {
			t.Fatal(err)
		}
	}
	wg.Wait()
	if cb.peak > bound {
		t.Fatalf("peak in-flight tasks %d exceeded admission bound %d", cb.peak, bound)
	}
	if cb.peak == 0 {
		t.Fatal("backend never saw a task")
	}
}

// TestPacedSimBackend serves against the paced simulated CPU/disk server
// (time compressed 100×) and checks that contention statistics accumulate.
func TestPacedSimBackend(t *testing.T) {
	s, sources := quickstart(t)
	oracle := snapshot.Complete(s, sources)
	backend := NewPacedSim(simdb.DefaultParams(), 42, 0.01)
	defer backend.Stop()
	svc := New(Config{Backend: backend})
	defer svc.Close()

	var wg sync.WaitGroup
	var bad atomic.Int64
	const n = 100
	wg.Add(n)
	for i := 0; i < n; i++ {
		if err := svc.Submit(Request{
			Schema:   s,
			Sources:  sources,
			Strategy: engine.MustParseStrategy("PSE100"),
			Done: func(r *engine.Result) {
				defer wg.Done()
				if r.Err != nil || snapshot.CheckAgainstOracle(r.Snapshot, oracle) != nil {
					bad.Add(1)
				}
			},
		}); err != nil {
			t.Fatal(err)
		}
	}
	wg.Wait()
	if bad.Load() != 0 {
		t.Fatalf("%d instances failed against the paced sim backend", bad.Load())
	}
	_, unitTime, queries := backend.Stats()
	if queries == 0 {
		t.Fatal("paced sim served no queries")
	}
	if unitTime <= 0 {
		t.Fatalf("paced sim unit time = %v, want > 0", unitTime)
	}
}

// TestRunLoadOpenAndClosed exercises both load-generation modes and the
// report plumbing.
func TestRunLoadOpenAndClosed(t *testing.T) {
	s, sources := quickstart(t)
	svc := New(Config{})
	defer svc.Close()

	open, err := RunLoad(svc, Load{
		Schema: s, Sources: sources,
		Strategy: engine.MustParseStrategy("PSE100"),
		Count:    500, Rate: 50000, Seed: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if open.Stats.Completed != 500 || open.Stats.Errors != 0 {
		t.Fatalf("open load: %+v", open.Stats)
	}
	if open.Stats.P50 <= 0 || open.Stats.Max < open.Stats.P99 {
		t.Fatalf("open load percentiles inconsistent: %+v", open.Stats)
	}

	closed, err := RunLoad(svc, Load{
		Schema: s, Sources: sources,
		Strategy: engine.MustParseStrategy("PCE0"),
		Count:    500,
	})
	if err != nil {
		t.Fatal(err)
	}
	if closed.Stats.Completed != 500 || closed.Stats.Errors != 0 {
		t.Fatalf("closed load: %+v", closed.Stats)
	}
	if closed.Throughput <= 0 {
		t.Fatalf("closed load throughput = %v", closed.Throughput)
	}
}

// TestCloseDrains asserts Close waits for callbacks and then rejects
// submissions.
func TestCloseDrains(t *testing.T) {
	s, sources := quickstart(t)
	svc := New(Config{Backend: &Latency{Base: 200 * time.Microsecond}})
	var completed atomic.Int64
	const n = 50
	var wg sync.WaitGroup
	wg.Add(n)
	for i := 0; i < n; i++ {
		if err := svc.Submit(Request{
			Schema: s, Sources: sources,
			Strategy: engine.MustParseStrategy("PSE100"),
			Done:     func(*engine.Result) { completed.Add(1); wg.Done() },
		}); err != nil {
			t.Fatal(err)
		}
	}
	wg.Wait()
	svc.Close()
	if completed.Load() != n {
		t.Fatalf("Close returned with %d/%d instances completed", completed.Load(), n)
	}
	if err := svc.Submit(Request{Schema: s, Sources: sources}); err != ErrClosed {
		t.Fatalf("Submit after Close = %v, want ErrClosed", err)
	}
}

// TestSourceSlotsSubmit checks the dense slot-buffer request path (the
// zero-copy entry the binary wire front end uses): a request carrying
// SourceSlots must produce exactly the snapshot the map-keyed path does,
// and a short or over-long slot buffer must behave as documented.
func TestSourceSlotsSubmit(t *testing.T) {
	s, sources := quickstart(t)
	oracle := snapshot.Complete(s, sources)
	svc := New(Config{Workers: 4})
	defer svc.Close()

	slots := make([]value.Value, s.NumAttrs())
	for _, id := range s.Sources() {
		slots[id] = sources[s.Attr(id).Name]
	}

	done := make(chan error, 1)
	err := svc.Submit(Request{
		Schema:      s,
		SourceSlots: slots,
		Strategy:    engine.MustParseStrategy("PSE100"),
		Done: func(res *engine.Result) {
			done <- snapshot.CheckAgainstOracle(res.Snapshot, oracle)
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := <-done; err != nil {
		t.Fatalf("slot path disagrees with oracle: %v", err)
	}

	// A short buffer leaves the remaining sources ⟂ — same as omitting
	// them from the map.
	short := svc
	res, err := short.Do(s, map[string]value.Value{"order_total": value.Int(120)},
		engine.MustParseStrategy("PSE100"))
	if err != nil {
		t.Fatal(err)
	}
	done2 := make(chan *snapshot.Snapshot, 1)
	if err := svc.Submit(Request{
		Schema:      s,
		SourceSlots: slots[:1], // only order_total (AttrID 0)
		Strategy:    engine.MustParseStrategy("PSE100"),
		Done:        func(r *engine.Result) { done2 <- r.Snapshot.Clone() },
	}); err != nil {
		t.Fatal(err)
	}
	sn := <-done2
	for _, id := range s.Targets() {
		if !value.Identical(sn.Val(id), res.Snapshot.Val(id)) {
			t.Fatalf("short slot buffer target %q = %v, map path got %v",
				s.Attr(id).Name, sn.Val(id), res.Snapshot.Val(id))
		}
	}
}
