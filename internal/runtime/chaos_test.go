package runtime

import (
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/engine"
	"repro/internal/snapshot"
	"repro/internal/value"
)

// The deterministic chaos suite: replicas of a live cluster are killed,
// stalled and degraded mid-run, and every instance must still agree with
// the declarative oracle — i.e. the results are identical to a healthy
// single backend, because the cluster's retries, deadlines, hedges and
// breakers mask the faults before the engine ever sees them. Alongside
// the oracle invariant, fleet accounting must stay exactly conserved and
// the query layer's launch-exact billing identity must hold. Faults are
// drawn from fixed seeds and injected at fixed submission counts, so runs
// reproduce; the assertions are interleaving-independent, so the suite is
// sound under -race and arbitrary scheduling. `make chaos` runs it
// standalone over the seed matrix.

// chaos replica modes.
const (
	chHealthy  int32 = iota
	chKilled         // new queries error immediately; in-flight ones error now
	chStalled        // new queries never complete
	chDegraded       // new queries take slow× the normal latency
)

// chaosReplica is a fault-injectable Fallible backend double. Latency is
// base + cost×perUnit with seeded jitter; Set flips the fault mode
// mid-run, erroring everything in flight when killing — exactly what a
// crashed server does to its open connections.
type chaosReplica struct {
	base    time.Duration
	perUnit time.Duration
	slow    float64

	mu      sync.Mutex
	mode    int32
	rng     *rand.Rand
	pending map[int]func(error)
	nextID  int
}

func newChaosReplica(base, perUnit time.Duration, slow float64, seed int64) *chaosReplica {
	return &chaosReplica{
		base: base, perUnit: perUnit, slow: slow,
		rng:     rand.New(rand.NewSource(seed)),
		pending: make(map[int]func(error)),
	}
}

// Set flips the replica's fault mode. Killing errors every in-flight
// query immediately.
func (c *chaosReplica) Set(mode int32) {
	c.mu.Lock()
	c.mode = mode
	var interrupted []func(error)
	if mode == chKilled {
		for id, done := range c.pending {
			interrupted = append(interrupted, done)
			delete(c.pending, id)
		}
	}
	c.mu.Unlock()
	for _, done := range interrupted {
		done(ErrInjected)
	}
}

func (c *chaosReplica) SubmitErr(cost int, done func(error)) {
	c.mu.Lock()
	switch c.mode {
	case chKilled:
		c.mu.Unlock()
		done(ErrInjected)
		return
	case chStalled:
		id := c.nextID
		c.nextID++
		c.pending[id] = done // held forever (or until a kill errors it)
		c.mu.Unlock()
		return
	}
	d := c.base + time.Duration(cost)*c.perUnit
	d = time.Duration(float64(d) * (0.8 + 0.4*c.rng.Float64()))
	if c.mode == chDegraded {
		d = time.Duration(float64(d) * c.slow)
	}
	id := c.nextID
	c.nextID++
	c.pending[id] = done
	c.mu.Unlock()
	time.AfterFunc(d, func() { c.complete(id, nil) })
}

func (c *chaosReplica) complete(id int, err error) {
	c.mu.Lock()
	done := c.pending[id]
	delete(c.pending, id)
	c.mu.Unlock()
	if done != nil {
		done(err) // nil when a kill already errored this query
	}
}

func (c *chaosReplica) Submit(cost int, done func()) {
	c.SubmitErr(cost, func(error) { done() })
}

func (c *chaosReplica) SubmitBatchErr(costs []int, done func(error)) {
	total := 0
	for _, cost := range costs {
		total += cost
	}
	c.SubmitErr(total, done)
}

// chaosScenario is one fault-injection experiment.
type chaosScenario struct {
	name     string
	shards   int
	replicas int
	cluster  ClusterConfig // resilience knobs (topology/New filled in)
	query    QueryConfig
	// inject flips fault modes on the replica grid; called once when a
	// third of the instances have been submitted.
	inject func(reps [][]*chaosReplica)
	// masked scenarios expect zero surfaced failures and full oracle
	// agreement; unmasked ones (every replica dead) expect completion
	// without hangs, with failures surfaced as ⟂ values.
	masked bool
	// check runs scenario-specific stat assertions.
	check func(t *testing.T, st Stats)
}

func chaosScenarios() []chaosScenario {
	return []chaosScenario{
		{
			// BreakAfter 2: dedup+batching collapse the fleet's queries, so
			// the killed replica sees few (all-failing) attempts; the trip
			// threshold must sit below that attempt count for the breaker
			// assertion to be deterministic.
			name: "kill-replica", shards: 4, replicas: 2, masked: true,
			cluster: ClusterConfig{Retries: 3, BreakAfter: 2},
			query:   QueryConfig{BatchSize: 4, BatchWindow: 50 * time.Microsecond, Dedup: true},
			inject:  func(reps [][]*chaosReplica) { reps[0][0].Set(chKilled) },
			check: func(t *testing.T, st Stats) {
				if st.Retries == 0 {
					t.Error("kill scenario drove no retries")
				}
				if st.BreakerTrips == 0 {
					t.Error("killed replica never tripped its breaker")
				}
			},
		},
		{
			name: "stall-replica", shards: 2, replicas: 2, masked: true,
			cluster: ClusterConfig{Retries: 3, Deadline: 25 * time.Millisecond},
			query:   QueryConfig{Dedup: true},
			inject:  func(reps [][]*chaosReplica) { reps[1][1].Set(chStalled) },
			check: func(t *testing.T, st Stats) {
				if st.Timeouts == 0 {
					t.Error("stalled replica produced no deadline timeouts")
				}
			},
		},
		{
			name: "degrade-replica-hedged", shards: 4, replicas: 2, masked: true,
			cluster: ClusterConfig{Retries: 2, HedgeDelay: 3 * time.Millisecond},
			inject:  func(reps [][]*chaosReplica) { reps[2][0].Set(chDegraded) },
			check: func(t *testing.T, st Stats) {
				if st.Hedges == 0 {
					t.Error("degraded replica triggered no hedges")
				}
			},
		},
		{
			name: "kill-shard-to-last-replica", shards: 3, replicas: 3, masked: true,
			cluster: ClusterConfig{Retries: 4},
			query:   QueryConfig{BatchSize: 4, BatchWindow: 50 * time.Microsecond, Dedup: true, CacheSize: 512},
			inject: func(reps [][]*chaosReplica) {
				reps[1][0].Set(chKilled)
				reps[1][2].Set(chKilled)
			},
			check: func(t *testing.T, st Stats) {
				if st.Retries == 0 {
					t.Error("shard kill drove no retries")
				}
			},
		},
		{
			name: "kill-everything", shards: 2, replicas: 2, masked: false,
			cluster: ClusterConfig{Retries: 1, BreakCooldown: 5 * time.Millisecond},
			inject: func(reps [][]*chaosReplica) {
				for _, row := range reps {
					for _, rep := range row {
						rep.Set(chKilled)
					}
				}
			},
			check: func(t *testing.T, st Stats) {
				if st.FailedQueries == 0 {
					t.Error("total outage surfaced no failed queries")
				}
				if st.Failures == 0 {
					t.Error("total outage produced no instance-level task failures")
				}
			},
		},
	}
}

// TestChaosClusterFaultInjection runs every scenario over the seed matrix.
func TestChaosClusterFaultInjection(t *testing.T) {
	seeds := []int64{1, 2, 3}
	if testing.Short() {
		seeds = seeds[:1]
	}
	for _, sc := range chaosScenarios() {
		for _, seed := range seeds {
			sc, seed := sc, seed
			t.Run(fmt.Sprintf("%s/seed%d", sc.name, seed), func(t *testing.T) {
				t.Parallel()
				runChaosScenario(t, sc, seed)
			})
		}
	}
}

// runChaosScenario drives one fleet through one fault experiment.
func runChaosScenario(t *testing.T, sc chaosScenario, seed int64) {
	const n = 400
	qs, base := quickstart(t)

	// Spread instances over distinct source vectors so dedup/cache can't
	// collapse the whole fleet into one backend query — faults must be
	// hit, not hidden; precompute each variant's oracle.
	const variants = 32
	rng := rand.New(rand.NewSource(seed))
	sources := make([]map[string]value.Value, variants)
	oracles := make([]*snapshot.Snapshot, variants)
	for v := range sources {
		m := make(map[string]value.Value, len(base))
		for name, val := range base {
			if iv, ok := val.AsInt(); ok {
				m[name] = value.Int(iv + int64(rng.Intn(10000)))
			} else {
				m[name] = val
			}
		}
		sources[v] = m
		oracles[v] = snapshot.Complete(qs, m)
	}

	reps := make([][]*chaosReplica, sc.shards)
	for s := range reps {
		reps[s] = make([]*chaosReplica, sc.replicas)
		for r := range reps[s] {
			reps[s][r] = newChaosReplica(200*time.Microsecond, 20*time.Microsecond, 40, seed+int64(s*16+r))
		}
	}
	ccfg := sc.cluster
	ccfg.Shards, ccfg.Replicas = sc.shards, sc.replicas
	ccfg.New = func(s, r int) Backend { return reps[s][r] }
	cl := NewCluster(ccfg)
	svc := New(Config{
		Backend:          cl,
		Workers:          4,
		MaxInFlightTasks: 1024,
		Query:            sc.query,
	})
	defer svc.Close()

	strategies := engine.Strategies("PSE100", "PCE0", "NCC0", "PSC40", "NSE60")
	var (
		wg         sync.WaitGroup
		completed  atomic.Int64
		instErrs   atomic.Int64
		oracleErrs atomic.Int64
		failures   atomic.Int64
		sumWork    atomic.Int64
		sumWasted  atomic.Int64
		sumLaunch  atomic.Int64
		sumSynth   atomic.Int64
		firstErr   atomic.Value
	)
	wg.Add(n)
	for i := 0; i < n; i++ {
		if i == n/3 {
			sc.inject(reps)
		}
		v := i % variants
		oracle := oracles[v]
		err := svc.Submit(Request{
			Schema:   qs,
			Sources:  sources[v],
			Strategy: strategies[i%len(strategies)],
			Done: func(r *engine.Result) {
				defer wg.Done()
				completed.Add(1)
				failures.Add(int64(r.Failures))
				if r.Err != nil {
					instErrs.Add(1)
					firstErr.CompareAndSwap(nil, r.Err.Error())
					return
				}
				if sc.masked {
					if err := snapshot.CheckAgainstOracle(r.Snapshot, oracle); err != nil {
						oracleErrs.Add(1)
						firstErr.CompareAndSwap(nil, "oracle: "+err.Error())
						return
					}
				}
				sumWork.Add(int64(r.Work))
				sumWasted.Add(int64(r.WastedWork))
				sumLaunch.Add(int64(r.Launched))
				sumSynth.Add(int64(r.SynthesisRuns))
			},
		})
		if err != nil {
			t.Fatal(err)
		}
	}

	// A hung fleet is the one failure retries can't express: guard it.
	drained := make(chan struct{})
	go func() { wg.Wait(); close(drained) }()
	select {
	case <-drained:
	case <-time.After(60 * time.Second):
		t.Fatalf("fleet hung: %d/%d instances completed (queue depth %d)",
			completed.Load(), n, svc.QueueDepth())
	}

	if got := completed.Load(); got != n {
		t.Fatalf("completed %d of %d", got, n)
	}
	if e := instErrs.Load(); e != 0 {
		t.Fatalf("%d instances errored; first: %v", e, firstErr.Load())
	}
	st := svc.Stats()
	if sc.masked {
		// The oracle invariant: with a healthy replica reachable, results
		// are identical to a healthy single backend — zero divergences,
		// zero surfaced failures.
		if e := oracleErrs.Load(); e != 0 {
			t.Fatalf("%d oracle divergences under faults; first: %v", e, firstErr.Load())
		}
		if failures.Load() != 0 || st.FailedQueries != 0 {
			t.Fatalf("faults leaked through the cluster: %d task failures, %d failed queries (first: %v)",
				failures.Load(), st.FailedQueries, firstErr.Load())
		}
		// Work conservation (only meaningful when every instance summed).
		if st.Work != uint64(sumWork.Load()) {
			t.Errorf("aggregate Work %d != per-instance sum %d", st.Work, sumWork.Load())
		}
		if st.WastedWork != uint64(sumWasted.Load()) {
			t.Errorf("aggregate WastedWork %d != per-instance sum %d", st.WastedWork, sumWasted.Load())
		}
		if st.Launched != uint64(sumLaunch.Load()) {
			t.Errorf("aggregate Launched %d != per-instance sum %d", st.Launched, sumLaunch.Load())
		}
		if st.SynthesisRuns != uint64(sumSynth.Load()) {
			t.Errorf("aggregate SynthesisRuns %d != per-instance sum %d", st.SynthesisRuns, sumSynth.Load())
		}
	}
	if st.Completed != n {
		t.Fatalf("stats completed=%d, want %d", st.Completed, n)
	}
	// Launch-exact billing identity: retries, hedges and failovers all
	// happen below the query layer, so they must not disturb it.
	if sc.query.enabled() {
		if st.Launched != st.BackendQueries+st.DedupHits+st.CacheHits {
			t.Errorf("billing identity violated: launched=%d backend=%d dedup=%d cache=%d",
				st.Launched, st.BackendQueries, st.DedupHits, st.CacheHits)
		}
	}
	if sc.check != nil {
		sc.check(t, st)
	}
}

// TestChaosKilledReplicaRecovers kills a replica mid-run, heals it, and
// asserts traffic returns to it through the breaker's half-open probes —
// the full trip→cooldown→probe→close cycle under live load.
func TestChaosKilledReplicaRecovers(t *testing.T) {
	qs, sources := quickstart(t)
	oracle := snapshot.Complete(qs, sources)
	reps := [1][2]*chaosReplica{}
	for r := 0; r < 2; r++ {
		reps[0][r] = newChaosReplica(100*time.Microsecond, 10*time.Microsecond, 1, int64(r+1))
	}
	cl := NewCluster(ClusterConfig{
		Shards: 1, Replicas: 2, Retries: 2,
		BreakAfter: 3, BreakCooldown: 20 * time.Millisecond,
		New: func(s, r int) Backend { return reps[s][r] },
	})
	svc := New(Config{Backend: cl, Workers: 2, MaxInFlightTasks: 256})
	defer svc.Close()

	phase := func(count int) {
		var wg sync.WaitGroup
		var bad atomic.Int64
		wg.Add(count)
		for i := 0; i < count; i++ {
			err := svc.Submit(Request{
				Schema: qs, Sources: sources,
				Strategy: engine.MustParseStrategy("PSE100"),
				Done: func(r *engine.Result) {
					defer wg.Done()
					if r.Err != nil || snapshot.CheckAgainstOracle(r.Snapshot, oracle) != nil {
						bad.Add(1)
					}
				},
			})
			if err != nil {
				t.Fatal(err)
			}
		}
		wg.Wait()
		if bad.Load() != 0 {
			t.Fatalf("%d instances failed", bad.Load())
		}
	}

	phase(50) // warm, both replicas healthy
	reps[0][0].Set(chKilled)
	phase(100) // killed: breaker trips, replica 1 carries
	if st := cl.ClusterStats(); st.BreakerTrips == 0 {
		t.Fatal("breaker never tripped while replica was dead")
	}
	reps[0][0].Set(chHealthy)
	before := cl.ClusterStats().Replica[0][0].Queries
	deadline := time.Now().Add(5 * time.Second)
	for {
		time.Sleep(25 * time.Millisecond) // let a cooldown elapse
		phase(50)
		if cl.ClusterStats().Replica[0][0].Queries > before+5 {
			break // probes succeeded and real traffic returned
		}
		if time.Now().After(deadline) {
			t.Fatalf("healed replica regained no traffic: %d -> %d queries",
				before, cl.ClusterStats().Replica[0][0].Queries)
		}
	}
}
