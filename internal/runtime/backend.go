// Package runtime is the concurrent wall-clock serving runtime: it
// executes many decision flow instances simultaneously on real goroutines,
// in real time, against a pluggable external database backend.
//
// It is the production-facing counterpart of the virtual-time simulation
// engine (internal/engine): both drive the same clock-agnostic instance
// loop (engine.Core — evaluation → prequalifying → scheduling, §3 of the
// paper, under the full §4 strategy space), but here task completions are
// real events delivered by goroutines rather than discrete-event
// simulation callbacks.
//
// The entry point is Service (see New): a worker pool that steps
// instances, a global admission bound on in-flight database tasks, and
// per-instance state pooling via sync.Pool so the steady-state hot path is
// allocation-free. Load generation (Poisson open loop and bounded closed
// loop) lives in RunLoad; cmd/dfserve is the CLI driver.
package runtime

import (
	"errors"
	"math/rand"
	"sync"
	"time"

	"repro/internal/sim"
	"repro/internal/simdb"
)

// Backend abstracts the external database server in wall-clock time:
// Submit starts a query of the given cost in units of processing and calls
// done exactly once when the result is available.
//
// done may be invoked synchronously from Submit or from any goroutine; the
// service's completion handler is cheap and non-blocking (it releases an
// admission token and enqueues the completion for a worker), so backends
// need not defend against slow callbacks.
//
// Implementations must be safe for concurrent Submit calls.
type Backend interface {
	Submit(cost int, done func())
}

// BatchExec is an optional Backend capability: execute several queries as
// one combined round trip, paying the backend's fixed per-query cost once
// for the whole batch. done is called exactly once, when every member's
// result is available; the caller (the service's query layer) fans the
// completion out to the individual queries.
//
// Semantically a batch is the paper's §6 query clustering applied across
// instances: per-result latency is traded for fixed-cost amortization.
type BatchExec interface {
	SubmitBatch(costs []int, done func())
}

// Fallible is the optional Backend capability of reporting query outcome:
// SubmitErr behaves like Submit, but done receives a non-nil error when
// the query failed (the server is down, overloaded, or a fault was
// injected). done(nil) is a success. Callers that find the capability use
// it to drive retries, failover and failure accounting; callers that
// don't, fall back to Submit, where failure is invisible.
type Fallible interface {
	SubmitErr(cost int, done func(error))
}

// FallibleBatch is Fallible's batch counterpart: the whole combined query
// succeeds or fails as a unit.
type FallibleBatch interface {
	SubmitBatchErr(costs []int, done func(error))
}

// Routed is the optional Backend capability of placing each query by its
// 64-bit sharing-identity hash, so the same logical query consistently
// lands on the same partition of a sharded backend (implemented by
// Cluster). Callers that hold a query's sharing identity (the service's
// direct launch path and the query layer's dispatcher) prefer this over
// Submit; unroutable queries pass an arbitrary hash and land wherever it
// says.
type Routed interface {
	SubmitRouted(hash uint64, cost int, done func(error))
}

// RoutedBatch fans one combined batch out by per-member hash: each(i, err)
// is invoked exactly once per member i as its partition's sub-batch
// completes, so fast shards don't wait for slow ones.
type RoutedBatch interface {
	SubmitRoutedBatch(hashes []uint64, costs []int, each func(i int, err error))
}

// ErrInjected is the error fault-injecting backends report for queries
// chosen to fail.
var ErrInjected = errors.New("runtime: injected backend fault")

// Instant is the zero-latency backend: every query completes immediately
// on the submitting goroutine. It measures the pure engine-side throughput
// ceiling (scheduling, propagation, pooling), the wall-clock analogue of
// the paper's infinite-resource database.
type Instant struct{}

// Submit completes the query immediately.
func (Instant) Submit(cost int, done func()) { done() }

// SubmitBatch completes the whole batch immediately.
func (Instant) SubmitBatch(costs []int, done func()) { done() }

// Latency is a latency-injecting concurrent backend: a query of cost c
// completes Base + c×PerUnit (±Jitter) after submission, timed on real
// timers. With Parallel > 0 at most that many queries execute at once and
// excess submissions block, modeling a database with a bounded
// multiprogramming level.
//
// Fault injection (for resilience tests and chaos runs): FailRate queries
// report ErrInjected after their normal latency, StallRate queries never
// report at all — both drawn from a seeded stream, so runs reproduce.
// Faults are observable only through the error-aware paths (SubmitErr,
// SubmitBatchErr); the plain Submit/SubmitBatch paths stay fault-blind.
type Latency struct {
	// Base is the fixed per-query latency (connection, parse, optimize).
	Base time.Duration
	// PerUnit is the latency per unit of processing.
	PerUnit time.Duration
	// Jitter randomizes each query's latency uniformly in
	// [1-Jitter, 1+Jitter]× the deterministic value. 0 disables.
	Jitter float64
	// Parallel bounds concurrently executing queries; 0 means unbounded.
	Parallel int
	// FailRate is the fraction of queries that execute (full latency,
	// multiprogramming slot) but report ErrInjected. 0 disables.
	FailRate float64
	// StallRate is the fraction of queries that never report completion —
	// a hung connection. The multiprogramming slot is released after the
	// normal latency, so a stalled backend still drains; only the caller
	// waits forever (or until its own deadline fires). 0 disables.
	StallRate float64
	// Seed fixes the fault draws (FailRate/StallRate); runs with the same
	// seed fail the same queries in submission order.
	Seed int64

	once sync.Once
	sem  chan struct{}
	mu   sync.Mutex // guards rng
	rng  *rand.Rand
}

// Submit schedules done after the query's injected latency; it blocks
// while Parallel queries are already executing.
func (l *Latency) Submit(cost int, done func()) {
	l.run(cost, func(error) { done() })
}

// SubmitErr is Submit with fault reporting: injected failures arrive as
// ErrInjected, injected stalls never arrive.
func (l *Latency) SubmitErr(cost int, done func(error)) {
	l.run(cost, done)
}

// SubmitBatch executes the batch as one combined query: a single
// multiprogramming slot, one Base charge, and the summed per-unit latency
// — the fixed per-query cost is paid once for the whole batch.
func (l *Latency) SubmitBatch(costs []int, done func()) {
	l.SubmitBatchErr(costs, func(error) { done() })
}

// SubmitBatchErr is SubmitBatch with fault reporting; the combined query
// draws one fault, shared by every member.
func (l *Latency) SubmitBatchErr(costs []int, done func(error)) {
	total := 0
	for _, c := range costs {
		total += c
	}
	l.run(total, done)
}

// run injects the latency for one (possibly combined) query.
func (l *Latency) run(cost int, done func(error)) {
	l.once.Do(func() {
		if l.Parallel > 0 {
			l.sem = make(chan struct{}, l.Parallel)
		}
		if l.FailRate > 0 || l.StallRate > 0 {
			l.rng = rand.New(rand.NewSource(l.Seed))
		}
	})
	var fail, stall bool
	if l.rng != nil {
		l.mu.Lock()
		u := l.rng.Float64()
		l.mu.Unlock()
		fail = u < l.FailRate
		stall = !fail && u < l.FailRate+l.StallRate
	}
	if l.sem != nil {
		l.sem <- struct{}{}
	}
	d := l.Base + time.Duration(cost)*l.PerUnit
	if l.Jitter > 0 {
		d = time.Duration(float64(d) * (1 + l.Jitter*(2*rand.Float64()-1)))
	}
	time.AfterFunc(d, func() {
		if l.sem != nil {
			<-l.sem
		}
		if stall {
			return
		}
		if fail {
			done(ErrInjected)
			return
		}
		done(nil)
	})
}

// PacedSim adapts the paper's simulated CPU/disk database server (simdb,
// §5) to wall-clock execution: queries from concurrent goroutines are fed
// into one discrete-event simulation whose virtual clock is paced against
// real time, so database contention (the Gmpl → UnitTime curve of Figure
// 9(a)) emerges under real concurrent load exactly as it does in the
// virtual-time experiments.
//
// One virtual millisecond takes Scale wall-clock milliseconds; Scale < 1
// compresses time for high-throughput runs.
type PacedSim struct {
	mu     sync.Mutex
	sm     *sim.Sim
	db     *simdb.Server
	origin time.Time
	scale  float64
	timer  *time.Timer
	fired  []func()
}

// NewPacedSim creates a paced simulated database with the given physical
// parameters and seed. scale is wall-clock milliseconds per virtual
// millisecond; values ≤ 0 default to 1 (real time).
func NewPacedSim(p simdb.Params, seed int64, scale float64) *PacedSim {
	if scale <= 0 {
		scale = 1
	}
	sm := sim.New()
	return &PacedSim{
		sm:     sm,
		db:     simdb.NewServer(sm, p, seed),
		origin: time.Now(),
		scale:  scale,
	}
}

// Submit feeds the query into the simulation at the current (wall-mapped)
// virtual time.
func (b *PacedSim) Submit(cost int, done func()) {
	b.mu.Lock()
	b.advanceLocked()
	b.db.Submit(cost, func() { b.fired = append(b.fired, done) })
	b.rescheduleLocked()
	fired := b.takeFiredLocked()
	b.mu.Unlock()
	for _, f := range fired {
		f()
	}
}

// SubmitErr is Submit with fault reporting, driven by the simulated
// server's fault parameters (simdb.Params.FailProb / StallProb).
func (b *PacedSim) SubmitErr(cost int, done func(error)) {
	b.mu.Lock()
	b.advanceLocked()
	b.db.SubmitErr(cost, func(err error) { b.fired = append(b.fired, func() { done(err) }) })
	b.rescheduleLocked()
	fired := b.takeFiredLocked()
	b.mu.Unlock()
	for _, f := range fired {
		f()
	}
}

// SubmitBatch feeds the whole batch into the simulation as one combined
// query: one multiprogramming slot, the per-query overhead
// (simdb.Params.OverheadUnits) charged once.
func (b *PacedSim) SubmitBatch(costs []int, done func()) {
	b.mu.Lock()
	b.advanceLocked()
	b.db.SubmitBatch(costs, func() { b.fired = append(b.fired, done) })
	b.rescheduleLocked()
	fired := b.takeFiredLocked()
	b.mu.Unlock()
	for _, f := range fired {
		f()
	}
}

// SubmitBatchErr is SubmitBatch with fault reporting; the combined query
// draws one simulated fault, shared by every member.
func (b *PacedSim) SubmitBatchErr(costs []int, done func(error)) {
	b.mu.Lock()
	b.advanceLocked()
	b.db.SubmitBatchErr(costs, func(err error) { b.fired = append(b.fired, func() { done(err) }) })
	b.rescheduleLocked()
	fired := b.takeFiredLocked()
	b.mu.Unlock()
	for _, f := range fired {
		f()
	}
}

// Stats reports the simulated server's time-averaged multiprogramming
// level (Gmpl), mean per-unit response time in virtual milliseconds, and
// completed query count.
func (b *PacedSim) Stats() (avgGmpl, avgUnitTime float64, queries uint64) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.db.AvgActive(), b.db.AvgUnitTime(), b.db.QueriesDone()
}

// Stop cancels the pacing timer. Pending completions are dropped; only
// call after the service has drained.
func (b *PacedSim) Stop() {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.timer != nil {
		b.timer.Stop()
	}
}

// tick fires when the wall clock reaches the next virtual event.
func (b *PacedSim) tick() {
	b.mu.Lock()
	b.advanceLocked()
	b.rescheduleLocked()
	fired := b.takeFiredLocked()
	b.mu.Unlock()
	for _, f := range fired {
		f()
	}
}

// advanceLocked runs the simulation up to the virtual time corresponding
// to the wall clock now. Completion callbacks are collected in b.fired for
// dispatch outside the lock.
func (b *PacedSim) advanceLocked() {
	v := float64(time.Since(b.origin)) / (b.scale * float64(time.Millisecond))
	b.sm.RunUntil(v)
}

// rescheduleLocked arms the timer for the earliest pending virtual event.
func (b *PacedSim) rescheduleLocked() {
	next, ok := b.sm.NextAt()
	if !ok {
		return
	}
	deadline := b.origin.Add(time.Duration(next * b.scale * float64(time.Millisecond)))
	d := max(time.Until(deadline), 0)
	if b.timer == nil {
		b.timer = time.AfterFunc(d, b.tick)
	} else {
		b.timer.Reset(d)
	}
}

func (b *PacedSim) takeFiredLocked() []func() {
	fired := b.fired
	b.fired = nil
	return fired
}
