package runtime

import (
	"context"
	"errors"
	"fmt"
	stdruntime "runtime"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/value"
)

// Request asks the service to execute one decision flow instance.
type Request struct {
	// Schema is the decision flow to execute.
	Schema *core.Schema
	// Sources are the instance's source-attribute values.
	Sources map[string]value.Value
	// SourceSlots, when non-nil, supplies the source values as a dense
	// per-AttrID slice instead of Sources (which is then ignored):
	// SourceSlots[id] is the value of source attribute id, entries at
	// non-source IDs are ignored, and a short slice leaves the remaining
	// sources ⟂. The binary wire front end decodes frames straight into
	// pooled slot buffers and submits them here, skipping the name-keyed
	// map. The service reads the slice only until Done is invoked (it is
	// consumed when the instance initializes, which happens no later);
	// callers may recycle the buffer once Done returns.
	SourceSlots []value.Value
	// Strategy selects the optimization options (e.g. "PSE100").
	Strategy engine.Strategy
	// Done, if non-nil, is invoked once when the instance reaches a
	// terminal snapshot (or fails). It runs on a service worker; the
	// Result — including its Snapshot — is only valid until Done returns,
	// because the service recycles the instance's state. Clone what you
	// keep. Result.Elapsed is the wall-clock latency in milliseconds.
	Done func(*engine.Result)
	// Ctx, if non-nil, cancels the instance: once Ctx is done the instance
	// aborts at its next step instead of launching further work (tasks
	// already on the backend run to completion and are charged as waste).
	// The abort completes the instance with Result.Err wrapping Ctx.Err().
	// DoContext additionally nudges the abort immediately on cancellation.
	Ctx context.Context
	// Tenant, if non-empty, attributes this instance to a tenant in the
	// service's stats (per-tenant completion counts and latency
	// percentiles in Stats.Tenants). The empty tenant is not tracked.
	Tenant string
	// Shadow marks the instance as background comparison work (the
	// server's shadow-evaluation path): it executes normally but is kept
	// out of the serving metrics — completion counts, latency percentiles,
	// Submitted — so overload shedding and SLO reporting see only the live
	// traffic. Shadow instances count under Stats.ShadowSubmitted /
	// ShadowCompleted instead.
	Shadow bool
}

// Config configures a Service.
type Config struct {
	// Backend is the external database queries execute against.
	// Defaults to Instant{}.
	Backend Backend
	// Workers is the number of goroutines stepping instances.
	// Defaults to GOMAXPROCS.
	Workers int
	// MaxInFlightTasks bounds the database tasks in flight across all
	// instances (global admission control): launches beyond the bound
	// wait for completions. With the query layer enabled the bound
	// applies to unique backend queries — deduplicated and cached
	// launches put no task on the database and consume no admission.
	// Defaults to 16× Workers.
	MaxInFlightTasks int
	// Query configures the shared query layer between instances and the
	// Backend: cross-instance batching, single-flight deduplication of
	// identical queries, and the attribute-result cache. The zero value
	// disables the layer entirely (launches go straight to the Backend).
	Query QueryConfig
	// LatencyWindow, when > 0, bounds the latency samples retained per
	// stats shard to the most recent LatencyWindow completions, so
	// percentiles cover a sliding recent window and a long-running server
	// holds constant memory. 0 (the default) retains every sample since
	// the last ResetStats — exact percentiles for bounded load runs.
	LatencyWindow int
}

// Service executes decision flow instances concurrently in wall-clock
// time: Submit enqueues an instance; a pool of workers drives each one
// through the shared engine.Core loop; foreign tasks run on the Backend
// under a global in-flight bound. Per-instance state (snapshot,
// prequalifier, scheduler scratch) is pooled, so steady-state serving
// performs no per-instance allocation.
//
// All methods are safe for concurrent use.
type Service struct {
	cfg     Config
	queue   jobQueue
	tokens  chan struct{}
	pool    sync.Pool
	shards  []shard
	disp    *dispatcher    // shared query layer; nil when Config.Query is off
	active  sync.WaitGroup // one count per unretired instance
	workers sync.WaitGroup

	// Backend capabilities, resolved once. routed backends (Cluster) get
	// the query's sharing-identity hash for consistent shard placement;
	// fallible ones report failures, which complete the task as failed
	// (value ⟂) instead of silently succeeding.
	routed   Routed
	fallible Fallible
	routeSeq atomic.Uint64 // spreads unroutable direct launches over shards

	// closeMu makes Submit and Close safe to race: submits hold the read
	// side across the accept-and-enqueue step, so once Close's write lock
	// falls every later Submit observes closed and no active.Add can slip
	// past active.Wait.
	closeMu   sync.RWMutex
	closed    bool
	submitted atomic.Uint64
	// shadowSubmitted counts Request.Shadow submissions, kept apart from
	// submitted so the live Submitted/Completed pair stays an identity.
	shadowSubmitted atomic.Uint64
}

// ErrClosed is returned by Submit after Close.
var ErrClosed = errors.New("runtime: service closed")

// New starts a service with the given configuration.
func New(cfg Config) *Service {
	if cfg.Backend == nil {
		cfg.Backend = Instant{}
	}
	if cfg.Workers <= 0 {
		cfg.Workers = stdruntime.GOMAXPROCS(0)
	}
	if cfg.MaxInFlightTasks <= 0 {
		cfg.MaxInFlightTasks = 16 * cfg.Workers
	}
	s := &Service{
		cfg:    cfg,
		tokens: make(chan struct{}, cfg.MaxInFlightTasks),
		shards: make([]shard, cfg.Workers),
	}
	for i := range s.shards {
		s.shards[i].window = cfg.LatencyWindow
		s.shards[i].lats.window = cfg.LatencyWindow
	}
	s.routed, _ = cfg.Backend.(Routed)
	s.fallible, _ = cfg.Backend.(Fallible)
	if cfg.Query.enabled() {
		s.disp = newDispatcher(cfg.Backend, s.tokens, cfg.Query)
	}
	s.queue.cond.L = &s.queue.mu
	s.pool.New = func() any { return &inst{svc: s} }
	s.workers.Add(cfg.Workers)
	for i := 0; i < cfg.Workers; i++ {
		go s.worker(&s.shards[i])
	}
	return s
}

// Submit enqueues one instance for execution. It returns immediately; the
// request's Done callback reports completion.
func (s *Service) Submit(req Request) error {
	_, _, err := s.submit(req)
	return err
}

// SubmitCancel is Submit returning a cancel handle: calling it aborts the
// instance promptly (it stops launching work and completes with
// Result.Err wrapping cause), even while the instance idles on a slow
// backend query. Cancel after completion is a no-op; it is safe to call
// from any goroutine, any number of times. DoContext wires it to a
// context; the network front end wires it to client disconnects.
func (s *Service) SubmitCancel(req Request) (cancel func(cause error), err error) {
	in, gen, err := s.submit(req)
	if err != nil {
		return nil, err
	}
	return func(cause error) {
		if cause == nil {
			cause = context.Canceled
		}
		s.queue.push(job{in: in, gen: gen, cancel: true, cancelErr: cause})
	}, nil
}

// submit is Submit returning the accepted instance and its generation —
// the handle DoContext needs to nudge a cancellation at the instance.
func (s *Service) submit(req Request) (*inst, uint64, error) {
	if req.Schema == nil {
		return nil, 0, errors.New("runtime: request needs a Schema")
	}
	s.closeMu.RLock()
	defer s.closeMu.RUnlock()
	if s.closed {
		return nil, 0, ErrClosed
	}
	in := s.pool.Get().(*inst)
	in.req = req
	in.start = time.Now()
	// The generation stamps this occupancy of the pooled state: a cancel
	// job carrying an older generation finds the instance recycled and
	// does nothing. Submit owns the instance exclusively here (no job
	// references it yet), and the queue's lock orders the store before
	// any worker pop.
	gen := in.gen.Add(1)
	if req.Shadow {
		s.shadowSubmitted.Add(1)
	} else {
		s.submitted.Add(1)
	}
	s.active.Add(1)
	s.queue.push(job{in: in, begin: true})
	return in, gen, nil
}

// Do executes one instance synchronously and returns an independent result
// (snapshot cloned out of the pooled state).
func (s *Service) Do(schema *core.Schema, sources map[string]value.Value, st engine.Strategy) (*engine.Result, error) {
	return s.DoContext(context.Background(), schema, sources, st)
}

// DoContext is Do with cancellation: when ctx is done before the instance
// completes, the instance is aborted — it stops launching work, completes
// immediately with Result.Err wrapping ctx.Err(), and any tasks already on
// the backend finish as accounted waste. The (partial) result is returned
// either way; inspect Result.Err to distinguish.
func (s *Service) DoContext(ctx context.Context, schema *core.Schema, sources map[string]value.Value, st engine.Strategy) (*engine.Result, error) {
	var out engine.Result
	done := make(chan struct{})
	cancel, err := s.SubmitCancel(Request{
		Schema:   schema,
		Sources:  sources,
		Strategy: st,
		Ctx:      ctx,
		Done: func(r *engine.Result) {
			out = *r
			out.Snapshot = r.Snapshot.Clone()
			close(done)
		},
	})
	if err != nil {
		return nil, err
	}
	select {
	case <-done:
	case <-ctx.Done():
		// Nudge the abort: an instance idling on a slow backend query has
		// no upcoming step at which to notice the cancellation, so feed it
		// one. The generation check makes a late nudge a no-op.
		cancel(ctx.Err())
		<-done
	}
	return &out, nil
}

// ErrNoQueryLayer rejects peer routing on a service without sharing
// tables: homing queries on one node is meaningless unless that node
// deduplicates or caches them.
var ErrNoQueryLayer = errors.New("runtime: peer routing needs the query layer's sharing tables (dedup or cache)")

// InstallPeerRouter wires a front-end peer router into the query layer:
// every keyed launch consults it before the local sharing tables, so each
// sharing identity is classified at its one home node in the fleet. It is
// installed after construction because the router (one layer up, in the
// server) needs the serving stack that needs this service first.
func (s *Service) InstallPeerRouter(p PeerExec) error {
	if s.disp == nil || (!s.disp.cfg.Dedup && s.disp.cfg.CacheSize == 0) {
		return ErrNoQueryLayer
	}
	s.disp.peer.Store(&peerExecBox{p: p})
	return nil
}

// ServePeerQuery executes one attribute query forwarded in by a peer
// front-end node through this node's sharing tables: a cache hit, an
// attach to the identical in-flight query, or a fresh backend flight —
// exactly what a local launch of the same identity would do, minus the
// peer-router consult (the forwarder already resolved this node as the
// home, so forwards cannot loop). done is invoked exactly once with the
// backend verdict; the forwarder's waiters share this node's fate. The
// call may block on backend admission — callers run it off any latency-
// sensitive loop.
func (s *Service) ServePeerQuery(schema *core.Schema, id core.AttrID, args []byte, cost int, done func(error)) error {
	d := s.disp
	if d == nil || (!d.cfg.Dedup && d.cfg.CacheSize == 0) {
		return ErrNoQueryLayer
	}
	s.closeMu.RLock()
	if s.closed {
		s.closeMu.RUnlock()
		return ErrClosed
	}
	s.active.Add(1)
	s.closeMu.RUnlock()
	d.peerServed.Add(1)
	key := queryKey{schema: schema, id: id, args: string(args)}
	d.submitKeyed(key, hashKey(key), cost, func(err error) {
		done(err)
		s.active.Done()
	})
	return nil
}

// Close stops accepting new instances, waits for every submitted instance
// to finish (including stragglers of early-terminated instances), and
// shuts the workers down.
func (s *Service) Close() {
	s.closeMu.Lock()
	wasClosed := s.closed
	s.closed = true
	s.closeMu.Unlock()
	if wasClosed {
		return
	}
	s.active.Wait()
	s.queue.close()
	s.workers.Wait()
	if s.disp != nil {
		s.disp.stop()
	}
}

// worker steps instances: begin jobs initialize a pooled instance and run
// its first advance; completion jobs feed one finished database task back
// into the instance's loop.
func (s *Service) worker(sh *shard) {
	defer s.workers.Done()
	for {
		j, ok := s.queue.pop()
		if !ok {
			return
		}
		switch {
		case j.begin:
			j.in.begin(sh)
		case j.cancel:
			j.in.cancelJob(sh, j.gen, j.cancelErr)
		default:
			j.in.finishTask(sh, j.id, j.failed)
		}
	}
}

// taskDone is the backend completion path: release the admission token and
// hand the completion to the worker pool. It must stay cheap and
// non-blocking — it runs on backend goroutines (timers, pacers). A non-nil
// err means the query terminally failed (every cluster retry exhausted):
// the task completes as failed, delivering ⟂.
func (s *Service) taskDone(in *inst, id core.AttrID, err error) {
	<-s.tokens
	s.queue.push(job{in: in, id: id, failed: err != nil})
}

// taskDoneShared is the completion path for launches routed through the
// query layer: admission tokens there belong to unique backend queries
// (acquired and released by the dispatcher), not to per-instance launches
// — a deduplicated or cached launch puts no new task on the database, so
// it must not consume database admission. This only delivers.
func (s *Service) taskDoneShared(in *inst, id core.AttrID, err error) {
	s.queue.push(job{in: in, id: id, failed: err != nil})
}

// --- instance ---

// inst is one pooled wall-clock instance: the shared engine.Core loop plus
// the bookkeeping that serializes concurrent completions. mu guards all
// fields below it; the lock is held while stepping the core and while
// submitting launches (safe: completion delivery never blocks on it).
type inst struct {
	svc   *Service
	req   Request
	start time.Time
	// gen stamps each occupancy of this pooled state (incremented by
	// submit); cancel jobs carry the generation they target so a nudge
	// arriving after recycling is inert.
	gen atomic.Uint64

	mu          sync.Mutex
	core        engine.Core
	res         engine.Result
	outstanding int // backend tasks submitted but not yet completed
	finalized   bool
	// begunGen is the generation whose begin job has initialized the
	// state; a cancel nudge only acts between begin and finalize of its
	// own generation (before begin, the drive-time ctx check catches the
	// cancellation anyway).
	begunGen uint64
	refs     int // completion callbacks + result readers keeping the state alive
	// doneFns caches one completion closure per attribute so steady-state
	// launches allocate nothing; okFns are their error-less adapters for
	// backends without outcome reporting.
	doneFns []func(error)
	okFns   []func()
	// keyBuf is the scratch buffer for rendering query sharing identities.
	keyBuf []byte
}

// begin initializes the pooled state for the new request and runs the
// first advance.
func (in *inst) begin(sh *shard) {
	in.mu.Lock()
	if in.req.SourceSlots != nil {
		in.core.ResetSlots(in.req.Schema, in.req.SourceSlots, in.req.Strategy, &in.res, nil)
	} else {
		in.core.Reset(in.req.Schema, in.req.Sources, in.req.Strategy, &in.res, nil)
	}
	in.outstanding = 0
	in.finalized = false
	in.refs = 0
	in.begunGen = in.gen.Load()
	in.drive(sh)
}

// drive advances the core and submits the launches it selects. Called
// with in.mu held; releases it on every path.
func (in *inst) drive(sh *shard) {
	if ctx := in.req.Ctx; ctx != nil {
		if err := ctx.Err(); err != nil {
			in.abort(sh, err)
			return
		}
	}
	launches, status := in.core.Advance()
	if status != engine.StatusRunning {
		in.finalize(sh, status)
		return
	}
	for _, id := range launches {
		cost, _ := in.core.Book(id)
		in.outstanding++
		done := in.doneFn(id)
		in.launch(id, cost, done)
	}
	in.mu.Unlock()
}

// launch routes one booked task to the backend — through the shared query
// layer when configured. Called with in.mu held (safe: neither path blocks
// on completion delivery; see Backend docs). Admission control differs by
// path: the direct path acquires a token per launch, the query layer per
// unique backend query (deduplicated and cached launches hit no database,
// so they bypass admission).
func (in *inst) launch(id core.AttrID, cost int, done func(error)) {
	d := in.svc.disp
	if d == nil {
		svc := in.svc
		svc.tokens <- struct{}{} // global admission; blocks under overload
		switch {
		case svc.routed != nil:
			// Sharded backend: place by sharing identity so the same
			// logical query consistently lands on the same shard; volatile
			// (unroutable) launches spread by sequence instead.
			var h uint64
			var keyed bool
			in.keyBuf, keyed = in.core.AppendQueryArgs(id, in.keyBuf[:0])
			if keyed {
				h = hashIdentity(in.req.Schema, id, in.keyBuf)
			} else {
				h = splitmix64(svc.routeSeq.Add(1))
			}
			svc.routed.SubmitRouted(h, cost, done)
		case svc.fallible != nil:
			svc.fallible.SubmitErr(cost, done)
		default:
			svc.cfg.Backend.Submit(cost, in.okFn(id))
		}
		return
	}
	var key queryKey
	keyed := false
	if d.needsKey() {
		in.keyBuf, keyed = in.core.AppendQueryArgs(id, in.keyBuf[:0])
		if keyed {
			key = queryKey{schema: in.req.Schema, id: id, args: string(in.keyBuf)}
		}
	}
	d.Submit(key, keyed, cost, done)
}

// finishTask is the evaluation phase for one completed database task.
// failed completes the task as a database failure: the query's work was
// done (and stays in Work) but it delivers ⟂ (counted in Result.Failures)
// — the terminal outcome of a cluster query whose every retry failed.
func (in *inst) finishTask(sh *shard, id core.AttrID, failed bool) {
	in.mu.Lock()
	in.outstanding--
	if in.finalized {
		// Straggler of an early-terminated instance: its work was sealed
		// as waste at termination; just release the state when last out.
		in.deref()
		return
	}
	in.core.Complete(id, failed)
	in.drive(sh)
}

// cancelJob delivers a cancellation nudge from SubmitCancel: abort the
// instance unless it already finalized or the pooled state was recycled
// for a newer request (generation mismatch). A nudge that outruns its own
// begin job — possible with 2+ workers, since begin is popped first but a
// second worker can acquire in.mu before begin does — is requeued rather
// than dropped: the caller was promised a prompt abort even without a
// Request.Ctx to catch it at drive time.
func (in *inst) cancelJob(sh *shard, gen uint64, err error) {
	in.mu.Lock()
	if in.gen.Load() != gen || in.finalized {
		in.mu.Unlock()
		return
	}
	if in.begunGen != gen {
		in.mu.Unlock()
		in.svc.queue.push(job{in: in, gen: gen, cancel: true, cancelErr: err})
		return
	}
	in.abort(sh, err)
}

// abort terminates the instance early on cancellation: waste accounting is
// sealed (in-flight backend tasks complete as stragglers) and the instance
// finalizes now with the cancellation recorded on the result. Called with
// in.mu held; releases it.
func (in *inst) abort(sh *shard, cause error) {
	in.core.Abort()
	in.res.Err = fmt.Errorf("runtime: instance aborted: %w", cause)
	in.finalize(sh, engine.StatusDone)
}

// finalize records the terminal result, notifies the caller, and returns
// the instance to the pool once no completions or readers remain. Called
// with in.mu held; releases it.
func (in *inst) finalize(sh *shard, status engine.Status) {
	in.finalized = true
	if status == engine.StatusStuck {
		in.res.Err = fmt.Errorf("runtime: instance stuck; no candidates, nothing in flight:\n%s", in.core.Snapshot())
	}
	latency := time.Since(in.start)
	in.res.Elapsed = float64(latency) / float64(time.Millisecond)
	if in.req.Shadow {
		sh.recordShadow(&in.res)
	} else {
		sh.record(&in.res, latency, in.req.Tenant)
	}
	// Keep the state alive for the callback plus every outstanding
	// completion; the last dropper recycles.
	in.refs = in.outstanding + 1
	cb := in.req.Done
	res := &in.res
	in.mu.Unlock()
	if cb != nil {
		cb(res)
	}
	in.mu.Lock()
	in.deref()
}

// deref drops one reference and retires the instance when none remain.
// Called with in.mu held; releases it.
func (in *inst) deref() {
	in.refs--
	retire := in.refs == 0
	in.mu.Unlock()
	if retire {
		in.req = Request{} // drop caller references before pooling
		in.svc.pool.Put(in)
		in.svc.active.Done()
	}
}

// doneFn returns the cached completion closure for the attribute.
func (in *inst) doneFn(id core.AttrID) func(error) {
	if int(id) >= len(in.doneFns) {
		grown := make([]func(error), in.req.Schema.NumAttrs())
		copy(grown, in.doneFns)
		in.doneFns = grown
	}
	if in.doneFns[id] == nil {
		id := id
		if in.svc.disp != nil {
			in.doneFns[id] = func(err error) { in.svc.taskDoneShared(in, id, err) }
		} else {
			in.doneFns[id] = func(err error) { in.svc.taskDone(in, id, err) }
		}
	}
	return in.doneFns[id]
}

// okFn returns the cached error-less adapter for the attribute, used with
// backends that cannot report outcomes.
func (in *inst) okFn(id core.AttrID) func() {
	if int(id) >= len(in.okFns) {
		grown := make([]func(), in.req.Schema.NumAttrs())
		copy(grown, in.okFns)
		in.okFns = grown
	}
	if in.okFns[id] == nil {
		fn := in.doneFns[id] // doneFn ran first: launch resolves it before routing
		in.okFns[id] = func() { fn(nil) }
	}
	return in.okFns[id]
}

// --- worker queue ---

// job is one unit of worker work: the first advance of a freshly
// submitted instance (begin), the completion of database task id (failed
// when the query terminally failed), or a cancellation nudge (cancel,
// targeting generation gen with cancelErr as the cause).
type job struct {
	in        *inst
	id        core.AttrID
	begin     bool
	failed    bool
	cancel    bool
	gen       uint64
	cancelErr error
}

// jobQueue is an unbounded MPMC FIFO. Unbounded is deliberate: admission
// control bounds database tasks, while instance starts are the open
// workload itself — under overload the queue depth is the load shed
// signal (see Service.QueueDepth).
type jobQueue struct {
	mu     sync.Mutex
	cond   sync.Cond
	items  []job
	head   int
	closed bool
}

func (q *jobQueue) push(j job) {
	q.mu.Lock()
	// Compact when the dead prefix dominates, so a queue that never fully
	// drains (sustained overload backlog) doesn't grow without bound.
	if q.head > 32 && q.head > len(q.items)/2 {
		n := copy(q.items, q.items[q.head:])
		clear(q.items[n:])
		q.items = q.items[:n]
		q.head = 0
	}
	q.items = append(q.items, j)
	q.mu.Unlock()
	q.cond.Signal()
}

func (q *jobQueue) pop() (job, bool) {
	q.mu.Lock()
	defer q.mu.Unlock()
	for q.head == len(q.items) && !q.closed {
		q.cond.Wait()
	}
	if q.head == len(q.items) {
		return job{}, false
	}
	j := q.items[q.head]
	q.items[q.head] = job{}
	q.head++
	if q.head == len(q.items) {
		q.items = q.items[:0]
		q.head = 0
	}
	return j, true
}

func (q *jobQueue) close() {
	q.mu.Lock()
	q.closed = true
	q.mu.Unlock()
	q.cond.Broadcast()
}

func (q *jobQueue) depth() int {
	q.mu.Lock()
	defer q.mu.Unlock()
	return len(q.items) - q.head
}

// QueueDepth returns the number of pending worker jobs (instance starts
// plus undelivered completions) — the backlog signal under overload.
func (s *Service) QueueDepth() int { return s.queue.depth() }
