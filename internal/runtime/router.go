package runtime

import (
	"fmt"
	"math/bits"
	"sync/atomic"
	"time"
)

// This file is the routing half of the cluster backend: consistent shard
// placement, replica load balancing, the per-replica circuit breaker, and
// the latency histogram that drives percentile hedging. cluster.go owns
// the per-query lifecycle (attempts, retries, hedges) on top of it.

// LBPolicy selects how a shard picks the replica for a query.
type LBPolicy int

const (
	// RoundRobin rotates through the shard's healthy replicas.
	RoundRobin LBPolicy = iota
	// LeastInFlight picks the healthy replica with the fewest queries
	// currently outstanding — the strongest signal, at the cost of
	// scanning every replica.
	LeastInFlight
	// PowerOfTwo samples two healthy replicas and keeps the less loaded —
	// most of LeastInFlight's benefit at O(1) cost ("the power of two
	// choices").
	PowerOfTwo
)

// String renders the policy as its dfserve flag value.
func (p LBPolicy) String() string {
	switch p {
	case RoundRobin:
		return "rr"
	case LeastInFlight:
		return "least"
	case PowerOfTwo:
		return "p2c"
	}
	return fmt.Sprintf("LBPolicy(%d)", int(p))
}

// ParseLBPolicy parses a dfserve-style policy name.
func ParseLBPolicy(name string) (LBPolicy, error) {
	switch name {
	case "rr", "roundrobin":
		return RoundRobin, nil
	case "least", "least-in-flight":
		return LeastInFlight, nil
	case "p2c", "power-of-two":
		return PowerOfTwo, nil
	}
	return 0, fmt.Errorf("runtime: unknown load-balancing policy %q (want rr, least or p2c)", name)
}

// jumpHash is Lamping–Veach jump consistent hashing: a uniform, stateless
// map from a 64-bit key to one of n buckets where growing n from n to n+1
// moves only 1/(n+1) of the keys — the consistent-hash property without a
// ring to maintain.
func jumpHash(key uint64, n int) int {
	var b, j int64 = -1, 0
	for j < int64(n) {
		b = j
		key = key*2862933555777941757 + 1
		j = int64(float64(b+1) * (float64(int64(1)<<31) / float64((key>>33)+1)))
	}
	return int(b)
}

// splitmix64 finalizes a weak sequence number into a well-mixed hash; it
// spreads unroutable (volatile) queries uniformly over shards and feeds
// the power-of-two replica sampler.
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// JumpHash exposes jump consistent hashing for layers that build rings of
// their own above the cluster — the dfsd front-end peer tier places each
// sharing identity's home node with the same function that places its
// backend shard, so both layers agree on what "one home per query" means.
func JumpHash(key uint64, n int) int { return jumpHash(key, n) }

// PeerBreaker is the per-replica circuit breaker exported for reuse one
// layer up: the front-end peer tier runs one per remote dfsd node, with
// the same closed → open → half-open probe lifecycle replicas get.
type PeerBreaker struct{ br breaker }

// NewPeerBreaker creates a breaker that opens after `after` consecutive
// failures and admits a half-open probe every cooldown.
func NewPeerBreaker(after int, cooldown time.Duration) *PeerBreaker {
	p := &PeerBreaker{}
	p.br.after = int32(max(after, 1))
	p.br.cooldown = cooldown
	return p
}

// Admissible is the read-only availability check: closed, or open with
// the cooldown elapsed (a probe could be admitted). Ring-membership scans
// use it without claiming the probe slot.
func (p *PeerBreaker) Admissible() bool { return p.br.admissible(time.Now().UnixNano()) }

// Admit claims the admission for one attempt; for an open breaker past
// its cooldown this claims the single half-open probe.
func (p *PeerBreaker) Admit() bool { return p.br.admit(time.Now().UnixNano()) }

// Success feeds one successful round trip.
func (p *PeerBreaker) Success() { p.br.success() }

// Failure feeds one transport failure or refusal.
func (p *PeerBreaker) Failure() { p.br.failure(time.Now().UnixNano()) }

// Trips reports how many times the breaker has opened.
func (p *PeerBreaker) Trips() uint64 { return p.br.trips.Load() }

// --- circuit breaker ---

// breaker states. Transitions: closed --(BreakAfter consecutive
// failures)--> open --(cooldown elapses; one probe admitted)--> half-open
// --(probe succeeds)--> closed, or --(probe fails)--> open again.
const (
	brClosed int32 = iota
	brOpen
	brHalfOpen
)

// breaker is a per-replica circuit breaker fed by the cluster's error,
// timeout and success observations. It is lock-free: state transitions
// race benignly (the worst case is one extra probe reaching a sick
// replica).
type breaker struct {
	state    atomic.Int32
	fails    atomic.Int32 // consecutive failures while closed/half-open
	openedAt atomic.Int64 // wall time (ns) of the closed->open transition
	trips    atomic.Uint64

	after    int32 // consecutive failures that open the breaker
	cooldown time.Duration
}

// admissible is the read-only availability check: closed, or open with
// the cooldown elapsed (a probe could be admitted). Selection scans use
// it to rank candidates without claiming the probe slot.
func (b *breaker) admissible(now int64) bool {
	switch b.state.Load() {
	case brClosed:
		return true
	case brOpen:
		return now-b.openedAt.Load() >= int64(b.cooldown)
	default: // half-open: the probe is already out
		return false
	}
}

// admit claims the admission for one attempt. For an open breaker past its
// cooldown this claims the single half-open probe slot; only the caller
// that wins the claim may submit, so a probe is never stranded.
func (b *breaker) admit(now int64) bool {
	switch b.state.Load() {
	case brClosed:
		return true
	case brOpen:
		if now-b.openedAt.Load() < int64(b.cooldown) {
			return false
		}
		return b.state.CompareAndSwap(brOpen, brHalfOpen)
	default:
		return false
	}
}

// success feeds one successful completion.
func (b *breaker) success() {
	b.fails.Store(0)
	b.state.Store(brClosed)
}

// failure feeds one error or timeout observation at wall time now (ns).
func (b *breaker) failure(now int64) {
	if b.state.Load() == brHalfOpen {
		// Failed probe: straight back to open for another cooldown.
		b.openedAt.Store(now)
		b.state.Store(brOpen)
		return
	}
	if b.fails.Add(1) >= b.after && b.state.CompareAndSwap(brClosed, brOpen) {
		b.openedAt.Store(now)
		b.trips.Add(1)
		b.fails.Store(0)
	}
}

// --- latency histogram ---

// histBuckets spans 1ns..~9s in powers of two; slower completions land in
// the last bucket.
const histBuckets = 34

// latHist is a lock-free log₂ histogram of completion latencies. It backs
// percentile hedging: the hedge delay is the distribution's q-quantile,
// so only the slowest (1-q) of requests pay a second backend round trip.
type latHist struct {
	counts [histBuckets]atomic.Uint64
	total  atomic.Uint64
}

// observe records one completion latency.
func (h *latHist) observe(d time.Duration) {
	b := bits.Len64(uint64(max(d, 1))) - 1
	if b >= histBuckets {
		b = histBuckets - 1
	}
	h.counts[b].Add(1)
	h.total.Add(1)
}

// quantile returns an upper bound of the q-quantile latency, or 0 when
// fewer than minSamples completions have been observed (callers then skip
// hedging until the histogram warms up).
func (h *latHist) quantile(q float64, minSamples uint64) time.Duration {
	total := h.total.Load()
	if total < minSamples {
		return 0
	}
	rank := uint64(q * float64(total))
	var cum uint64
	for i := 0; i < histBuckets; i++ {
		cum += h.counts[i].Load()
		if cum > rank {
			return time.Duration(uint64(1) << uint(i+1)) // bucket upper bound
		}
	}
	return time.Duration(uint64(1) << histBuckets)
}

// --- replica ---

// replica is one backend copy within a shard: the backend itself with its
// capabilities resolved once, the in-flight gauge the balancers read, the
// circuit breaker, and its traffic counters.
type replica struct {
	be      Backend
	fe      Fallible      // nil when the backend cannot report errors
	feBatch FallibleBatch // nil when it cannot report batch errors
	batch   BatchExec     // nil when it cannot combine round trips

	inFlight atomic.Int64
	brk      breaker

	queries  atomic.Uint64 // attempts handed to this replica (incl. hedges/retries)
	errors   atomic.Uint64 // attempts that reported an error
	timeouts atomic.Uint64 // attempts abandoned by the per-attempt deadline
}

func newReplica(be Backend, breakAfter int32, cooldown time.Duration) *replica {
	r := &replica{be: be}
	r.fe, _ = be.(Fallible)
	r.feBatch, _ = be.(FallibleBatch)
	r.batch, _ = be.(BatchExec)
	r.brk.after = breakAfter
	r.brk.cooldown = cooldown
	return r
}

// exec submits one attempt — a single query (costs nil) or a combined
// sub-batch — and reports its outcome. Backends without error reporting
// are treated as infallible; sub-batches on backends without batch support
// fan out to member submissions and report the first member error after
// all members land.
func (r *replica) exec(cost int, costs []int, done func(error)) {
	r.queries.Add(1)
	r.inFlight.Add(1)
	wrapped := func(err error) {
		r.inFlight.Add(-1)
		done(err)
	}
	switch {
	case costs == nil && r.fe != nil:
		r.fe.SubmitErr(cost, wrapped)
	case costs == nil:
		r.be.Submit(cost, func() { wrapped(nil) })
	case r.feBatch != nil:
		r.feBatch.SubmitBatchErr(costs, wrapped)
	case r.batch != nil:
		r.batch.SubmitBatch(costs, func() { wrapped(nil) })
	default:
		// No batch capability: members travel individually; the sub-batch
		// completes when the last member lands, reporting any one error.
		var (
			left     atomic.Int64
			firstErr atomic.Value
		)
		left.Store(int64(len(costs)))
		for _, c := range costs {
			memberDone := func(err error) {
				if err != nil {
					firstErr.CompareAndSwap(nil, err)
				}
				if left.Add(-1) == 0 {
					err, _ := firstErr.Load().(error)
					wrapped(err)
				}
			}
			if r.fe != nil {
				r.fe.SubmitErr(c, memberDone)
			} else {
				r.be.Submit(c, func() { memberDone(nil) })
			}
		}
	}
}

// --- shard-level replica selection ---

// cshard is one consistent-hash partition of the cluster: R replicas plus
// the selection state and the latency histogram driving hedge delays.
type cshard struct {
	replicas []*replica
	rr       atomic.Uint64 // round-robin cursor / p2c sample stream
	hist     latHist
}

// pick selects a replica for a new attempt under the policy, skipping
// replicas whose bit is set in exclude (already tried by this query) and
// replicas whose breaker is open. When every replica is excluded or
// broken it falls back to ignoring first the breaker, then the exclusion
// — availability over perfect placement; a completely dead shard still
// gets traffic (and fast errors) rather than none.
func (sh *cshard) pick(policy LBPolicy, exclude uint64, now int64) *replica {
	if len(sh.replicas) == 1 {
		return sh.replicas[0]
	}
	if r := sh.pickAvailable(policy, exclude, now); r != nil {
		return r
	}
	if r := sh.pickAvailable(policy, 0, now); r != nil {
		return r
	}
	// Whole shard broken: least-loaded untried, then least-loaded overall.
	if r := sh.pickLeast(exclude); r != nil {
		return r
	}
	return sh.pickLeast(0)
}

// pickAvailable applies the policy over non-excluded, breaker-admitted
// replicas; nil when none qualifies. The returned replica's admission
// (including the half-open probe slot, if that's what it was) is claimed.
func (sh *cshard) pickAvailable(policy LBPolicy, exclude uint64, now int64) *replica {
	n := len(sh.replicas)
	switch policy {
	case LeastInFlight:
		// Rank read-only, then claim; a lost probe-claim race excludes the
		// candidate and re-ranks, so a probe slot is never stranded.
		for {
			var best *replica
			for i, r := range sh.replicas {
				if exclude&(1<<uint(i)) != 0 || !r.brk.admissible(now) {
					continue
				}
				if best == nil || r.inFlight.Load() < best.inFlight.Load() {
					best = r
				}
			}
			if best == nil {
				return nil
			}
			if best.brk.admit(now) {
				return best
			}
			exclude |= 1 << uint(sh.index(best))
		}
	case PowerOfTwo:
		h := splitmix64(sh.rr.Add(1))
		a := sh.replicas[int(h%uint64(n))]
		b := sh.replicas[int((h>>32)%uint64(n))]
		if b.inFlight.Load() < a.inFlight.Load() {
			a, b = b, a
		}
		for _, r := range []*replica{a, b} {
			if !sh.excluded(r, exclude) && r.brk.admit(now) {
				return r
			}
		}
		// Both samples unusable: degrade to a round-robin style scan.
		fallthrough
	default: // RoundRobin
		start := sh.rr.Add(1)
		for i := 0; i < n; i++ {
			r := sh.replicas[int((start+uint64(i))%uint64(n))]
			if !sh.excluded(r, exclude) && r.brk.admit(now) {
				return r
			}
		}
		return nil
	}
}

// pickLeast is the degraded-mode selector: least in flight among
// non-excluded replicas, breaker ignored.
func (sh *cshard) pickLeast(exclude uint64) *replica {
	var best *replica
	for i, r := range sh.replicas {
		if exclude&(1<<uint(i)) != 0 {
			continue
		}
		if best == nil || r.inFlight.Load() < best.inFlight.Load() {
			best = r
		}
	}
	return best
}

// excluded reports whether r's bit is set in the exclusion mask.
func (sh *cshard) excluded(r *replica, exclude uint64) bool {
	if exclude == 0 {
		return false
	}
	for i, cand := range sh.replicas {
		if cand == r {
			return exclude&(1<<uint(i)) != 0
		}
	}
	return false
}

// index returns r's position within the shard (for exclusion masks).
func (sh *cshard) index(r *replica) int {
	for i, cand := range sh.replicas {
		if cand == r {
			return i
		}
	}
	return -1
}
