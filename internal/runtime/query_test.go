package runtime

import (
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/expr"
	"repro/internal/gen"
	"repro/internal/snapshot"
	"repro/internal/value"
)

// genPattern generates the Table 1 default 64-node pattern.
func genPattern(t testing.TB) *gen.Generated {
	t.Helper()
	return gen.Generate(gen.Default())
}

// --- LRU unit tests ---

func qk(args string) queryKey { return queryKey{args: args} }

func TestLRUCapacityEviction(t *testing.T) {
	var c lru
	c.init(2)
	t0 := time.Unix(0, 0)
	c.put(qk("a"), t0)
	c.put(qk("b"), t0)
	if !c.get(qk("a"), t0, 0) { // refresh a; b becomes LRU
		t.Fatal("a should be cached")
	}
	c.put(qk("c"), t0) // evicts b
	if c.get(qk("b"), t0, 0) {
		t.Fatal("b should have been evicted as least recently used")
	}
	if !c.get(qk("a"), t0, 0) || !c.get(qk("c"), t0, 0) {
		t.Fatal("a and c should be cached")
	}
	c.put(qk("d"), t0) // evicts b's replacement victim: now a is LRU? a was refreshed after c... c then a order
	if len(c.entries) != 2 {
		t.Fatalf("cache holds %d entries, want 2", len(c.entries))
	}
}

func TestLRUTTLExpiry(t *testing.T) {
	var c lru
	c.init(4)
	t0 := time.Unix(100, 0)
	c.put(qk("a"), t0)
	if !c.get(qk("a"), t0.Add(time.Second), 2*time.Second) {
		t.Fatal("entry within TTL should hit")
	}
	if c.get(qk("a"), t0.Add(3*time.Second), 2*time.Second) {
		t.Fatal("entry past TTL should miss")
	}
	// Expired entry was evicted on contact; a fresh put reuses its slot.
	c.put(qk("a"), t0.Add(4*time.Second))
	if !c.get(qk("a"), t0.Add(5*time.Second), 2*time.Second) {
		t.Fatal("refreshed entry should hit")
	}
}

func TestLRUChurn(t *testing.T) {
	var c lru
	c.init(8)
	t0 := time.Unix(0, 0)
	keys := []string{"a", "b", "c", "d", "e", "f", "g", "h", "i", "j", "k", "l"}
	for round := 0; round < 50; round++ {
		for _, k := range keys {
			c.put(qk(k), t0)
			c.get(qk(k), t0, 0)
		}
		if len(c.entries) > 8 {
			t.Fatalf("cache grew past capacity: %d", len(c.entries))
		}
	}
	// The 8 most recently used keys survive.
	for _, k := range keys[len(keys)-8:] {
		if !c.get(qk(k), t0, 0) {
			t.Fatalf("recently used key %q missing", k)
		}
	}
}

// --- dispatcher behavior against a live service ---

// batchCountingBackend records individual and batched submissions.
type batchCountingBackend struct {
	mu          sync.Mutex
	submits     int
	batches     int
	batchedQs   int
	peak, inUse int
	delay       time.Duration
}

// exec tracks n member queries entering and leaving the backend, so peak
// measures concurrent queries (not round trips) against the admission
// bound.
func (b *batchCountingBackend) exec(n int, done func()) {
	b.mu.Lock()
	b.inUse += n
	if b.inUse > b.peak {
		b.peak = b.inUse
	}
	b.mu.Unlock()
	time.AfterFunc(b.delay, func() {
		b.mu.Lock()
		b.inUse -= n
		b.mu.Unlock()
		done()
	})
}

func (b *batchCountingBackend) Submit(cost int, done func()) {
	b.mu.Lock()
	b.submits++
	b.mu.Unlock()
	b.exec(1, done)
}

func (b *batchCountingBackend) SubmitBatch(costs []int, done func()) {
	b.mu.Lock()
	b.batches++
	b.batchedQs += len(costs)
	b.mu.Unlock()
	b.exec(len(costs), done)
}

// TestDedupSharesBackendRoundTrips serves many identical instances against
// a slow backend with dedup on and asserts the launch conservation
// identity: every launch is exactly one of a backend query, a dedup hit,
// or a cache hit — and far fewer backend queries than launches occur.
func TestDedupSharesBackendRoundTrips(t *testing.T) {
	s, sources := quickstart(t)
	oracle := snapshot.Complete(s, sources)
	be := &batchCountingBackend{delay: 2 * time.Millisecond}
	svc := New(Config{
		Backend:          be,
		MaxInFlightTasks: 1024,
		Query:            QueryConfig{Dedup: true},
	})
	defer svc.Close()

	const n = 500
	var wg sync.WaitGroup
	var bad atomic.Int64
	wg.Add(n)
	for i := 0; i < n; i++ {
		err := svc.Submit(Request{
			Schema: s, Sources: sources,
			Strategy: engine.MustParseStrategy("PSE100"),
			Done: func(r *engine.Result) {
				if r.Err != nil || snapshot.CheckAgainstOracle(r.Snapshot, oracle) != nil {
					bad.Add(1)
				}
				wg.Done()
			},
		})
		if err != nil {
			t.Fatal(err)
		}
	}
	wg.Wait()
	if bad.Load() != 0 {
		t.Fatalf("%d instances failed or disagreed with the oracle", bad.Load())
	}
	st := svc.Stats()
	if st.Launched != st.BackendQueries+st.DedupHits+st.CacheHits {
		t.Fatalf("launch conservation violated: launched=%d backend=%d dedup=%d cache=%d",
			st.Launched, st.BackendQueries, st.DedupHits, st.CacheHits)
	}
	if st.DedupHits == 0 {
		t.Fatal("expected dedup hits with 500 identical concurrent instances on a 2ms backend")
	}
	if st.BackendQueries >= st.Launched/2 {
		t.Fatalf("dedup barely collapsed anything: %d backend queries for %d launches",
			st.BackendQueries, st.Launched)
	}
}

// TestCacheSkipsBackend asserts cache hits complete without a backend
// round trip and respect the TTL.
func TestCacheSkipsBackend(t *testing.T) {
	s, sources := quickstart(t)
	oracle := snapshot.Complete(s, sources)
	be := &batchCountingBackend{}
	svc := New(Config{
		Backend: be,
		Query:   QueryConfig{CacheSize: 128},
	})
	defer svc.Close()

	st0 := engine.MustParseStrategy("PSE100")
	for i := 0; i < 50; i++ {
		res, err := svc.Do(s, sources, st0)
		if err != nil || res.Err != nil {
			t.Fatalf("instance %d: %v / %v", i, err, res.Err)
		}
		if err := snapshot.CheckAgainstOracle(res.Snapshot, oracle); err != nil {
			t.Fatalf("instance %d: %v", i, err)
		}
	}
	st := svc.Stats()
	if st.CacheHits == 0 {
		t.Fatal("expected cache hits across identical sequential instances")
	}
	// First instance misses (3 foreign tasks), the rest hit.
	if st.BackendQueries != 3 {
		t.Fatalf("backend queries = %d, want 3 (first instance only)", st.BackendQueries)
	}
	if st.Launched != st.BackendQueries+st.DedupHits+st.CacheHits {
		t.Fatalf("launch conservation violated: %+v", st)
	}
}

// TestCacheTTLExpiresEntries asserts a tiny TTL forces periodic backend
// refreshes.
func TestCacheTTLExpiresEntries(t *testing.T) {
	s, sources := quickstart(t)
	be := &batchCountingBackend{}
	svc := New(Config{
		Backend: be,
		Query:   QueryConfig{CacheSize: 128, CacheTTL: time.Millisecond},
	})
	defer svc.Close()
	st0 := engine.MustParseStrategy("PSE100")
	for i := 0; i < 5; i++ {
		if res, err := svc.Do(s, sources, st0); err != nil || res.Err != nil {
			t.Fatalf("instance %d: %v / %v", i, err, res.Err)
		}
		time.Sleep(2 * time.Millisecond) // let every entry expire
	}
	st := svc.Stats()
	if st.BackendQueries != 15 { // every instance re-queries all 3 tasks
		t.Fatalf("backend queries = %d, want 15 (TTL should expire all entries)", st.BackendQueries)
	}
}

// TestBatchSizeTrigger asserts full batches go to the backend as one
// BatchExec round trip.
func TestBatchSizeTrigger(t *testing.T) {
	g := genPattern(t)
	be := &batchCountingBackend{delay: time.Millisecond}
	svc := New(Config{
		Backend:          be,
		MaxInFlightTasks: 4096,
		Query:            QueryConfig{BatchSize: 8, BatchWindow: 50 * time.Millisecond},
	})
	defer svc.Close()

	var wg sync.WaitGroup
	const n = 64
	wg.Add(n)
	for i := 0; i < n; i++ {
		err := svc.Submit(Request{
			Schema: g.Schema, Sources: g.SourceValues(),
			Strategy: engine.MustParseStrategy("PSE100"),
			Done:     func(*engine.Result) { wg.Done() },
		})
		if err != nil {
			t.Fatal(err)
		}
	}
	wg.Wait()
	be.mu.Lock()
	defer be.mu.Unlock()
	if be.batches == 0 {
		t.Fatal("no batched round trips despite 64 concurrent instances and a 50ms window")
	}
	st := svc.Stats()
	if got := st.AvgBatchSize(); got < 2 {
		t.Fatalf("average batch size %.2f, want >= 2", got)
	}
}

// TestBatchDeadlineTrigger asserts a lone query is not held hostage by the
// size trigger: the window flushes it.
func TestBatchDeadlineTrigger(t *testing.T) {
	s, sources := quickstart(t)
	be := &batchCountingBackend{}
	svc := New(Config{
		Backend: be,
		Query:   QueryConfig{BatchSize: 1024, BatchWindow: 2 * time.Millisecond},
	})
	defer svc.Close()

	start := time.Now()
	res, err := svc.Do(s, sources, engine.MustParseStrategy("PCE0")) // serial: one query at a time
	if err != nil || res.Err != nil {
		t.Fatalf("%v / %v", err, res.Err)
	}
	elapsed := time.Since(start)
	// PCE0 on quickstart issues its foreign tasks serially; each waits one
	// window. Far below the size trigger, completion proves the deadline
	// trigger works; generous upper bound guards against a hung timer path.
	if elapsed > 3*time.Second {
		t.Fatalf("instance took %v; deadline trigger appears stuck", elapsed)
	}
	if st := svc.Stats(); st.BackendQueries == 0 {
		t.Fatal("no backend queries recorded")
	}
}

// TestVolatileTaskBypassesSharing asserts Task.Volatile launches are never
// deduplicated or cached.
func TestVolatileTaskBypassesSharing(t *testing.T) {
	var calls atomic.Int64
	s, err := core.NewBuilder("volatile").
		Source("x").
		Foreign("probe", expr.TrueExpr, []string{"x"}, 1,
			func(core.Inputs) value.Value { return value.Int(calls.Add(1)) }).
		Target("probe").
		Build()
	if err != nil {
		t.Fatal(err)
	}
	s.MustLookup("probe").Task.Volatile = true

	be := &batchCountingBackend{}
	svc := New(Config{
		Backend: be,
		Query:   QueryConfig{Dedup: true, CacheSize: 128},
	})
	defer svc.Close()
	sources := map[string]value.Value{"x": value.Int(1)}
	for i := 0; i < 20; i++ {
		if res, err := svc.Do(s, sources, engine.MustParseStrategy("PSE100")); err != nil || res.Err != nil {
			t.Fatalf("%v / %v", err, res.Err)
		}
	}
	st := svc.Stats()
	if st.CacheHits != 0 || st.DedupHits != 0 {
		t.Fatalf("volatile task was shared: cache=%d dedup=%d", st.CacheHits, st.DedupHits)
	}
	if st.BackendQueries != 20 {
		t.Fatalf("backend queries = %d, want 20 (one per instance)", st.BackendQueries)
	}
}

// TestAdmissionBoundsUniqueQueries asserts MaxInFlightTasks bounds
// concurrent backend work with the query layer enabled (batches count by
// their member queries).
func TestAdmissionBoundsUniqueQueries(t *testing.T) {
	g := genPattern(t)
	be := &batchCountingBackend{delay: 500 * time.Microsecond}
	const bound = 5
	svc := New(Config{
		Backend:          be,
		MaxInFlightTasks: bound,
		Workers:          4,
		Query:            QueryConfig{BatchSize: 4, BatchWindow: 100 * time.Microsecond},
	})
	defer svc.Close()
	var wg sync.WaitGroup
	const n = 100
	wg.Add(n)
	for i := 0; i < n; i++ {
		err := svc.Submit(Request{
			Schema: g.Schema, Sources: g.SourceValues(),
			Strategy: engine.MustParseStrategy("PSE100"),
			Done:     func(*engine.Result) { wg.Done() },
		})
		if err != nil {
			t.Fatal(err)
		}
	}
	wg.Wait()
	be.mu.Lock()
	defer be.mu.Unlock()
	if be.peak > bound {
		t.Fatalf("peak in-flight backend queries %d exceeded admission bound %d", be.peak, bound)
	}
	if be.peak == 0 {
		t.Fatal("backend never saw a query")
	}
}
