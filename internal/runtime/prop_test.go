package runtime

import (
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/randschema"
	"repro/internal/snapshot"
	"repro/internal/value"
)

// The service-level property suite: unstructured random schemas driven
// through the *wall-clock* runtime (real goroutines, real completions) in
// every on/off combination of the query layer's features. For every
// instance the terminal snapshot must match the declarative oracle, and at
// the end of each combination the fleet-level accounting must be exactly
// conserved:
//
//   - aggregate Work/WastedWork/Launched/SynthesisRuns equal the
//     per-instance sums (nothing lost or double-counted by sharing);
//   - every launch is exactly one of a backend query, a dedup hit, or a
//     cache hit (shared queries billed once);
//   - WastedWork never exceeds Work.
//
// Together with the engine-level property tests this pins the oracle
// invariant the query layer must preserve: a cached or deduplicated
// completion is indistinguishable from a fresh one.

// propCombo is one query-layer configuration under test.
type propCombo struct {
	name  string
	query QueryConfig
}

func propCombos() []propCombo {
	return []propCombo{
		{"off", QueryConfig{}},
		{"batch", QueryConfig{BatchSize: 4, BatchWindow: 50 * time.Microsecond}},
		{"cache", QueryConfig{CacheSize: 256, CacheTTL: time.Second}},
		{"dedup", QueryConfig{Dedup: true}},
		{"all", QueryConfig{BatchSize: 4, BatchWindow: 50 * time.Microsecond, Dedup: true, CacheSize: 256}},
	}
}

// runPropFleet drives `schemas` random schemas (two source bindings each,
// instPerBinding instances per binding over a rotating strategy mix)
// through the service, asserting per-instance oracle agreement and exact
// fleet-level work conservation. It returns the run's Stats for
// configuration-specific checks.
func runPropFleet(t *testing.T, svc *Service, schemas, instPerBinding int, seed int64) Stats {
	t.Helper()
	strategies := engine.Strategies("PSE100", "PCE0", "NCC0", "PSC40", "NSE60", "PCE100")
	var (
		wg        sync.WaitGroup
		completed atomic.Int64
		failures  atomic.Int64
		sumWork   atomic.Int64
		sumWasted atomic.Int64
		sumLaunch atomic.Int64
		sumSynth  atomic.Int64
		firstErr  atomic.Value
	)
	rng := rand.New(rand.NewSource(seed))
	total := 0
	for si := 0; si < schemas; si++ {
		schemaSeed := rng.Int63()
		s := randschema.Generate(rand.New(rand.NewSource(schemaSeed)), randschema.Config{})
		for b := 0; b < 2; b++ {
			sources := randschema.RandomSources(rng, s)
			oracle := snapshot.Complete(s, sources)
			for k := 0; k < instPerBinding; k++ {
				st := strategies[(si+b+k)%len(strategies)]
				wg.Add(1)
				total++
				err := svc.Submit(Request{
					Schema:   s,
					Sources:  sources,
					Strategy: st,
					Done: func(r *engine.Result) {
						defer wg.Done()
						completed.Add(1)
						if r.Err != nil {
							failures.Add(1)
							firstErr.CompareAndSwap(nil, fmt.Sprintf("schema seed %d strategy %s: %v", schemaSeed, st, r.Err))
							return
						}
						if err := snapshot.CheckAgainstOracle(r.Snapshot, oracle); err != nil {
							failures.Add(1)
							firstErr.CompareAndSwap(nil, fmt.Sprintf("schema seed %d strategy %s: oracle mismatch: %v", schemaSeed, st, err))
							return
						}
						if r.WastedWork > r.Work {
							failures.Add(1)
							firstErr.CompareAndSwap(nil, fmt.Sprintf("schema seed %d strategy %s: WastedWork %d > Work %d", schemaSeed, st, r.WastedWork, r.Work))
							return
						}
						sumWork.Add(int64(r.Work))
						sumWasted.Add(int64(r.WastedWork))
						sumLaunch.Add(int64(r.Launched))
						sumSynth.Add(int64(r.SynthesisRuns))
					},
				})
				if err != nil {
					t.Fatal(err)
				}
			}
		}
	}
	wg.Wait()

	if got := completed.Load(); got != int64(total) {
		t.Fatalf("completed %d of %d instances", got, total)
	}
	if f := failures.Load(); f != 0 {
		t.Fatalf("%d instances failed; first: %s", f, firstErr.Load())
	}
	st := svc.Stats()
	if st.Completed != uint64(total) || st.Errors != 0 {
		t.Fatalf("stats completed=%d errors=%d, want %d/0", st.Completed, st.Errors, total)
	}
	// Work conservation: aggregates equal per-instance sums exactly.
	if st.Work != uint64(sumWork.Load()) {
		t.Errorf("aggregate Work %d != per-instance sum %d", st.Work, sumWork.Load())
	}
	if st.WastedWork != uint64(sumWasted.Load()) {
		t.Errorf("aggregate WastedWork %d != per-instance sum %d", st.WastedWork, sumWasted.Load())
	}
	if st.Launched != uint64(sumLaunch.Load()) {
		t.Errorf("aggregate Launched %d != per-instance sum %d", st.Launched, sumLaunch.Load())
	}
	if st.SynthesisRuns != uint64(sumSynth.Load()) {
		t.Errorf("aggregate SynthesisRuns %d != per-instance sum %d", st.SynthesisRuns, sumSynth.Load())
	}
	return st
}

// TestPropertyRandomSchemasAllCombos drives ≥500 random schemas — 125 per
// combination × 5 combinations, two source bindings each, a strategy mix
// per binding — through the service. Run under -race by `make race`.
func TestPropertyRandomSchemasAllCombos(t *testing.T) {
	schemas := 125
	instPerBinding := 6
	if testing.Short() {
		schemas = 25
	}

	for ci, combo := range propCombos() {
		combo := combo
		seed := int64(1000 + 17*ci)
		t.Run(combo.name, func(t *testing.T) {
			t.Parallel()
			svc := New(Config{
				Workers:          4,
				MaxInFlightTasks: 1024,
				Query:            combo.query,
			})
			defer svc.Close()
			st := runPropFleet(t, svc, schemas, instPerBinding, seed)
			if combo.query.enabled() {
				// Billing exactness under sharing: every launch is exactly one
				// of backend query / dedup hit / cache hit.
				if st.Launched != st.BackendQueries+st.DedupHits+st.CacheHits {
					t.Errorf("launch conservation violated: launched=%d backend=%d dedup=%d cache=%d",
						st.Launched, st.BackendQueries, st.DedupHits, st.CacheHits)
				}
				if st.BackendQueries > st.Launched {
					t.Errorf("more backend queries (%d) than launches (%d)", st.BackendQueries, st.Launched)
				}
				if combo.query.CacheSize > 0 && st.CacheHits == 0 && !testing.Short() {
					t.Errorf("cache combo produced zero hits over %d instances", st.Completed)
				}
				if combo.query.CacheSize > 0 && st.CacheMisses != st.BackendQueries {
					// No volatile tasks here, so every backend query was
					// exactly one cache miss (a miss that dedup-attaches is
					// not a miss: it never reaches the backend).
					t.Errorf("cache misses %d != backend queries %d", st.CacheMisses, st.BackendQueries)
				}
			} else if st.BackendQueries+st.DedupHits+st.CacheHits+st.Batches != 0 {
				t.Errorf("query-layer metrics nonzero with layer off: %+v", st)
			}
		})
	}
}

// TestPropertyClusterTopologies extends the random-schema sweep across the
// cluster dimension: sampled topologies (1–4 shards × 1–3 replicas), every
// load-balancing policy, hedging on and off, crossed with query-layer
// configurations — so the query-layer × cluster product is covered by the
// same oracle, conservation and billing checks as the single-backend
// sweep. Replicas are jittered Latency backends, so completion
// interleavings vary while every query ultimately succeeds.
func TestPropertyClusterTopologies(t *testing.T) {
	schemas := 18
	if testing.Short() {
		schemas = 6
	}
	type topo struct {
		shards, replicas int
		lb               LBPolicy
		hedge            time.Duration
		query            QueryConfig
	}
	batchq := QueryConfig{BatchSize: 4, BatchWindow: 30 * time.Microsecond, Dedup: true}
	cacheq := QueryConfig{Dedup: true, CacheSize: 256}
	allq := QueryConfig{BatchSize: 4, BatchWindow: 30 * time.Microsecond, Dedup: true, CacheSize: 256}
	topos := []topo{
		{1, 2, RoundRobin, 0, QueryConfig{}},
		{2, 1, LeastInFlight, 0, batchq},
		{2, 3, PowerOfTwo, 500 * time.Microsecond, cacheq},
		{3, 2, RoundRobin, 500 * time.Microsecond, allq},
		{4, 2, LeastInFlight, 0, allq},
		{4, 3, PowerOfTwo, 0, batchq},
		{3, 1, RoundRobin, 0, cacheq},
		{4, 1, PowerOfTwo, 500 * time.Microsecond, QueryConfig{}},
	}
	for ti, tp := range topos {
		tp := tp
		name := fmt.Sprintf("%dx%d-%v-hedge%v", tp.shards, tp.replicas, tp.lb, tp.hedge > 0)
		seed := int64(9000 + 31*ti)
		t.Run(name, func(t *testing.T) {
			t.Parallel()
			cl := NewCluster(ClusterConfig{
				Shards:     tp.shards,
				Replicas:   tp.replicas,
				LB:         tp.lb,
				Retries:    2,
				HedgeDelay: tp.hedge,
				New: func(s, r int) Backend {
					return &Latency{Base: 50 * time.Microsecond, PerUnit: 5 * time.Microsecond, Jitter: 0.5}
				},
			})
			svc := New(Config{
				Backend:          cl,
				Workers:          4,
				MaxInFlightTasks: 1024,
				Query:            tp.query,
			})
			defer svc.Close()
			st := runPropFleet(t, svc, schemas, 4, seed)
			if st.Cluster == nil {
				t.Fatal("cluster stats not wired")
			}
			if st.FailedQueries != 0 {
				t.Errorf("healthy cluster surfaced %d failed queries", st.FailedQueries)
			}
			if tp.query.enabled() {
				if st.Launched != st.BackendQueries+st.DedupHits+st.CacheHits {
					t.Errorf("launch conservation violated over cluster: launched=%d backend=%d dedup=%d cache=%d",
						st.Launched, st.BackendQueries, st.DedupHits, st.CacheHits)
				}
			}
			// Every shard must have seen traffic on some replica (random
			// schemas spread identities across the hash space).
			for s, row := range st.Cluster.Replica {
				total := uint64(0)
				for _, rep := range row {
					total += rep.Queries
				}
				if total == 0 {
					t.Errorf("shard %d received no queries", s)
				}
			}
		})
	}
}

// TestPropertySharedVsFreshSnapshots runs each random schema twice through
// services with the layer fully on and fully off, and diffs the terminal
// snapshots attribute by attribute: cached/deduplicated results must be
// *indistinguishable* from fresh ones, not merely oracle-compatible.
func TestPropertySharedVsFreshSnapshots(t *testing.T) {
	schemas := 60
	if testing.Short() {
		schemas = 15
	}
	plain := New(Config{Workers: 2})
	defer plain.Close()
	shared := New(Config{
		Workers:          2,
		MaxInFlightTasks: 1024,
		Query:            QueryConfig{BatchSize: 4, BatchWindow: 20 * time.Microsecond, Dedup: true, CacheSize: 512},
	})
	defer shared.Close()

	rng := rand.New(rand.NewSource(424242))
	strategies := engine.Strategies("PSE100", "PCE0", "NSE60")
	for si := 0; si < schemas; si++ {
		s := randschema.Generate(rand.New(rand.NewSource(rng.Int63())), randschema.Config{})
		sources := randschema.RandomSources(rng, s)
		for _, st := range strategies {
			// Two passes on the shared service so the second draws on a warm
			// cache.
			if _, err := shared.Do(s, sources, st); err != nil {
				t.Fatal(err)
			}
			fresh, err := plain.Do(s, sources, st)
			if err != nil {
				t.Fatal(err)
			}
			warm, err := shared.Do(s, sources, st)
			if err != nil {
				t.Fatal(err)
			}
			if fresh.Err != nil || warm.Err != nil {
				t.Fatalf("schema %d %s: errs %v / %v", si, st, fresh.Err, warm.Err)
			}
			for i := 0; i < s.NumAttrs(); i++ {
				id := core.AttrID(i)
				fs, ws := fresh.Snapshot.State(id), warm.Snapshot.State(id)
				if fs.Stable() != ws.Stable() {
					continue // scheduling order may leave different non-target residue
				}
				if !fs.Stable() {
					continue
				}
				if fs != ws {
					t.Fatalf("schema %d %s: attr %s fresh state %v != warm state %v",
						si, st, s.Attr(id).Name, fs, ws)
				}
				if !value.Identical(fresh.Snapshot.Val(id), warm.Snapshot.Val(id)) {
					t.Fatalf("schema %d %s: attr %s fresh value %v != warm value %v",
						si, st, s.Attr(id).Name, fresh.Snapshot.Val(id), warm.Snapshot.Val(id))
				}
			}
		}
	}
	if st := shared.Stats(); st.CacheHits == 0 && st.DedupHits == 0 {
		t.Error("shared service never exercised sharing")
	}
}
