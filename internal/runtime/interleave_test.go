package runtime

import (
	"math/rand"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/gen"
	"repro/internal/snapshot"
	"repro/internal/value"
)

// adversarialBackend is a Backend test double that withholds completions
// and releases them in adversarial orders, pinning down the service's and
// dispatcher's behavior under completion interleavings a realistic backend
// rarely produces: strict LIFO (children complete before parents' earlier
// siblings), seeded random shuffles (deterministic per seed), and
// simultaneous bursts (every pending completion delivered from its own
// goroutine at once). Run under -race via `make race`.
type adversarialBackend struct {
	mode adversaryMode
	rng  *rand.Rand // guarded by mu; seeded, so runs are reproducible

	mu      sync.Mutex
	pending []func()
	stopped bool
	wake    chan struct{}
	done    sync.WaitGroup
}

type adversaryMode int

const (
	lifoOrder adversaryMode = iota
	shuffleOrder
	burstOrder
)

func newAdversarialBackend(mode adversaryMode, seed int64) *adversarialBackend {
	b := &adversarialBackend{
		mode: mode,
		rng:  rand.New(rand.NewSource(seed)),
		wake: make(chan struct{}, 1),
	}
	b.done.Add(1)
	go b.releaser()
	return b
}

func (b *adversarialBackend) Submit(cost int, done func()) { b.hold(done) }

// SubmitBatch participates in the dispatcher's batching: the whole batch
// completes as one unit, at an adversarial position among other pending
// completions.
func (b *adversarialBackend) SubmitBatch(costs []int, done func()) { b.hold(done) }

func (b *adversarialBackend) hold(done func()) {
	b.mu.Lock()
	b.pending = append(b.pending, done)
	b.mu.Unlock()
	select {
	case b.wake <- struct{}{}:
	default:
	}
}

// releaser periodically drains everything pending, in the adversarial
// order. The delay lets completions from many instances pile up so each
// release is a genuinely mixed batch.
func (b *adversarialBackend) releaser() {
	defer b.done.Done()
	for {
		select {
		case <-b.wake:
		case <-time.After(200 * time.Microsecond):
		}
		b.mu.Lock()
		if b.stopped && len(b.pending) == 0 {
			b.mu.Unlock()
			return
		}
		batch := b.pending
		b.pending = nil
		var order []int
		if b.mode == shuffleOrder {
			order = b.rng.Perm(len(batch))
		}
		b.mu.Unlock()
		if len(batch) == 0 {
			continue
		}
		// Letting completions pile up briefly makes each drain a mixed set.
		time.Sleep(100 * time.Microsecond)
		switch b.mode {
		case lifoOrder:
			for i := len(batch) - 1; i >= 0; i-- {
				batch[i]()
			}
		case shuffleOrder:
			for _, i := range order {
				batch[i]()
			}
		case burstOrder:
			var wg sync.WaitGroup
			wg.Add(len(batch))
			for _, f := range batch {
				f := f
				go func() {
					defer wg.Done()
					f()
				}()
			}
			wg.Wait()
		}
	}
}

// Stop shuts the releaser down after the pending queue drains.
func (b *adversarialBackend) Stop() {
	b.mu.Lock()
	b.stopped = true
	b.mu.Unlock()
	select {
	case b.wake <- struct{}{}:
	default:
	}
	b.done.Wait()
}

// TestAdversarialInterleavings runs a mixed fleet against each adversarial
// completion order, with the query layer off and fully on. Every instance
// must agree with its oracle and fleet accounting must be conserved no
// matter the delivery order.
func TestAdversarialInterleavings(t *testing.T) {
	qs, qsSources := quickstart(t)
	g := gen.Generate(gen.Default())
	type class struct {
		schema  *core.Schema
		sources map[string]value.Value
		oracle  *snapshot.Snapshot
	}
	classes := []class{
		{qs, qsSources, snapshot.Complete(qs, qsSources)},
		{g.Schema, g.SourceValues(), snapshot.Complete(g.Schema, g.SourceValues())},
	}
	strategies := engine.Strategies("PSE100", "PCE0", "NCC0", "PSC40", "NSE60")

	modes := []struct {
		name string
		mode adversaryMode
	}{
		{"lifo", lifoOrder},
		{"shuffle", shuffleOrder},
		{"burst", burstOrder},
	}
	layers := []struct {
		name  string
		query QueryConfig
	}{
		{"direct", QueryConfig{}},
		{"shared", QueryConfig{BatchSize: 8, BatchWindow: 50 * time.Microsecond, Dedup: true, CacheSize: 256}},
	}

	for _, m := range modes {
		for _, l := range layers {
			m, l := m, l
			t.Run(m.name+"/"+l.name, func(t *testing.T) {
				t.Parallel()
				be := newAdversarialBackend(m.mode, 7)
				defer be.Stop()
				svc := New(Config{
					Backend:          be,
					Workers:          4,
					MaxInFlightTasks: 4096,
					Query:            l.query,
				})
				defer svc.Close()

				const n = 400
				var (
					wg       sync.WaitGroup
					bad      atomic.Int64
					sumWork  atomic.Int64
					sumWaste atomic.Int64
				)
				wg.Add(n)
				for i := 0; i < n; i++ {
					cl := classes[i%len(classes)]
					err := svc.Submit(Request{
						Schema:   cl.schema,
						Sources:  cl.sources,
						Strategy: strategies[i%len(strategies)],
						Done: func(r *engine.Result) {
							defer wg.Done()
							if r.Err != nil || !r.Snapshot.Terminal() ||
								snapshot.CheckAgainstOracle(r.Snapshot, cl.oracle) != nil {
								bad.Add(1)
								return
							}
							sumWork.Add(int64(r.Work))
							sumWaste.Add(int64(r.WastedWork))
						},
					})
					if err != nil {
						t.Fatal(err)
					}
				}
				wg.Wait()
				if bad.Load() != 0 {
					t.Fatalf("%d instances failed under %s/%s delivery", bad.Load(), m.name, l.name)
				}
				st := svc.Stats()
				if st.Completed != n || st.Errors != 0 {
					t.Fatalf("stats: %+v", st)
				}
				if st.Work != uint64(sumWork.Load()) || st.WastedWork != uint64(sumWaste.Load()) {
					t.Fatalf("work conservation violated: stats work=%d wasted=%d, sums %d/%d",
						st.Work, st.WastedWork, sumWork.Load(), sumWaste.Load())
				}
				if l.query.enabled() && st.Launched != st.BackendQueries+st.DedupHits+st.CacheHits {
					t.Fatalf("launch conservation violated: %+v", st)
				}
			})
		}
	}
}
