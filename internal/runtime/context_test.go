package runtime

import (
	"context"
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/engine"
)

// TestDoContextCompletes: an uncancelled context behaves exactly like Do.
func TestDoContextCompletes(t *testing.T) {
	s, sources := quickstart(t)
	svc := New(Config{})
	defer svc.Close()
	res, err := svc.DoContext(context.Background(), s, sources, engine.MustParseStrategy("PSE100"))
	if err != nil {
		t.Fatal(err)
	}
	if res.Err != nil {
		t.Fatalf("unexpected instance error: %v", res.Err)
	}
	got := res.Snapshot.Val(s.MustLookup("upgrade").ID())
	if sv, _ := got.AsString(); sv != "free 2-day shipping" {
		t.Fatalf("upgrade = %v, want free 2-day shipping", got)
	}
}

// TestDoContextCancelPrompt: an instance idling on a slow backend aborts
// promptly when the context is canceled — well before the backend query
// would have completed — and its result carries the cancellation.
func TestDoContextCancelPrompt(t *testing.T) {
	s, sources := quickstart(t)
	svc := New(Config{Backend: &Latency{Base: 500 * time.Millisecond}})
	defer svc.Close()

	ctx, cancel := context.WithCancel(context.Background())
	time.AfterFunc(20*time.Millisecond, cancel)
	start := time.Now()
	res, err := svc.DoContext(ctx, s, sources, engine.MustParseStrategy("PSE100"))
	if err != nil {
		t.Fatal(err)
	}
	if waited := time.Since(start); waited > 250*time.Millisecond {
		t.Fatalf("DoContext took %v; cancellation was not prompt", waited)
	}
	if res.Err == nil || !errors.Is(res.Err, context.Canceled) {
		t.Fatalf("Result.Err = %v, want wrapped context.Canceled", res.Err)
	}
	// The aborted instance's launched-but-unfinished work is sealed as
	// waste, not lost.
	if res.Work == 0 || res.WastedWork != res.Work {
		t.Fatalf("abort accounting: work=%d wasted=%d, want equal and nonzero", res.Work, res.WastedWork)
	}
}

// TestDoContextPreCanceled: a context canceled before submission still
// yields a completed (aborted) instance, not a hang or panic.
func TestDoContextPreCanceled(t *testing.T) {
	s, sources := quickstart(t)
	svc := New(Config{})
	defer svc.Close()
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	res, err := svc.DoContext(ctx, s, sources, engine.MustParseStrategy("PSE100"))
	if err != nil {
		t.Fatal(err)
	}
	if res.Err == nil || !errors.Is(res.Err, context.Canceled) {
		t.Fatalf("Result.Err = %v, want wrapped context.Canceled", res.Err)
	}
}

// TestRunLoadContextCancel: canceling mid-run stops the generator, drains
// in-flight instances, and reports the partial run with ctx.Err().
func TestRunLoadContextCancel(t *testing.T) {
	s, sources := quickstart(t)
	svc := New(Config{Backend: &Latency{Base: 500 * time.Microsecond}})
	defer svc.Close()

	ctx, cancel := context.WithCancel(context.Background())
	time.AfterFunc(30*time.Millisecond, cancel)
	rep, err := RunLoadContext(ctx, svc, Load{
		Schema: s, Sources: sources,
		Strategy:    engine.MustParseStrategy("PSE100"),
		Count:       1 << 30, // would run ~forever without the cancel
		Concurrency: 64,
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if rep.Stats.Completed == 0 {
		t.Fatal("no instances completed before the cancel")
	}
	// After RunLoadContext returns, the service has fully drained: a fresh
	// run must observe a quiet service.
	svc.ResetStats()
	if st := svc.Stats(); st.Completed != 0 {
		t.Fatalf("stragglers completed after RunLoadContext returned: %+v", st)
	}
}

// TestRunLoadContextCancelOpen covers the open-loop generator's cancel
// path (timer interrupt + wait-group compensation).
func TestRunLoadContextCancelOpen(t *testing.T) {
	s, sources := quickstart(t)
	svc := New(Config{})
	defer svc.Close()

	ctx, cancel := context.WithCancel(context.Background())
	time.AfterFunc(30*time.Millisecond, cancel)
	rep, err := RunLoadContext(ctx, svc, Load{
		Schema: s, Sources: sources,
		Strategy: engine.MustParseStrategy("PSE100"),
		Count:    1 << 30,
		Rate:     1000,
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if rep.Stats.Completed == 0 {
		t.Fatal("no instances completed before the cancel")
	}
}

// TestTenantStats: instances tagged with tenants aggregate into
// Stats.Tenants; untagged ones only into the aggregate.
func TestTenantStats(t *testing.T) {
	s, sources := quickstart(t)
	svc := New(Config{})
	defer svc.Close()

	st := engine.MustParseStrategy("PSE100")
	var wg sync.WaitGroup
	submit := func(tenant string, n int) {
		for i := 0; i < n; i++ {
			wg.Add(1)
			if err := svc.Submit(Request{
				Schema: s, Sources: sources, Strategy: st, Tenant: tenant,
				Done: func(*engine.Result) { wg.Done() },
			}); err != nil {
				t.Error(err)
				wg.Done()
			}
		}
	}
	submit("alpha", 30)
	submit("beta", 20)
	submit("", 10)
	wg.Wait()

	stats := svc.Stats()
	if stats.Completed != 60 {
		t.Fatalf("Completed = %d, want 60", stats.Completed)
	}
	if got := stats.Tenants["alpha"].Completed; got != 30 {
		t.Fatalf("alpha completed = %d, want 30", got)
	}
	if got := stats.Tenants["beta"].Completed; got != 20 {
		t.Fatalf("beta completed = %d, want 20", got)
	}
	if _, ok := stats.Tenants[""]; ok {
		t.Fatal("empty tenant must not be tracked")
	}
	if stats.Tenants["alpha"].P99 <= 0 || stats.Tenants["alpha"].Max <= 0 {
		t.Fatalf("alpha latency summary empty: %+v", stats.Tenants["alpha"])
	}
	svc.ResetStats()
	if st := svc.Stats(); len(st.Tenants) != 0 {
		t.Fatalf("ResetStats kept tenants: %+v", st.Tenants)
	}
}

// TestLatencyWindow: with a window configured, percentile memory is
// bounded to the window while counters keep counting everything.
func TestLatencyWindow(t *testing.T) {
	s, sources := quickstart(t)
	svc := New(Config{Workers: 1, LatencyWindow: 8})
	defer svc.Close()
	st := engine.MustParseStrategy("PSE100")
	for i := 0; i < 100; i++ {
		if _, err := svc.Do(s, sources, st); err != nil {
			t.Fatal(err)
		}
	}
	stats := svc.Stats()
	if stats.Completed != 100 {
		t.Fatalf("Completed = %d, want 100", stats.Completed)
	}
	if stats.P99 <= 0 {
		t.Fatal("windowed percentiles empty")
	}
	for i := range svc.shards {
		sh := &svc.shards[i]
		sh.mu.Lock()
		n := len(sh.lats.buf)
		sh.mu.Unlock()
		if n > 8 {
			t.Fatalf("shard %d retains %d samples, window is 8", i, n)
		}
	}
}

// TestCloseDrainsAcceptedInstances pins the Close drain contract: Close
// after Submit completes every accepted instance (each Done callback fires
// before Close returns), later Submits fail with ErrClosed — a typed
// error, not a panic — and Close is idempotent under concurrency.
func TestCloseDrainsAcceptedInstances(t *testing.T) {
	s, sources := quickstart(t)
	svc := New(Config{Backend: &Latency{Base: 50 * time.Microsecond}})
	st := engine.MustParseStrategy("PSE100")

	var accepted, completed, rejected atomic.Int64
	var submitters sync.WaitGroup
	stop := make(chan struct{})
	for g := 0; g < 8; g++ {
		submitters.Add(1)
		go func() {
			defer submitters.Done()
			for i := 0; i < 2000; i++ {
				select {
				case <-stop:
					return
				default:
				}
				err := svc.Submit(Request{
					Schema: s, Sources: sources, Strategy: st,
					Done: func(*engine.Result) { completed.Add(1) },
				})
				switch {
				case err == nil:
					accepted.Add(1)
				case errors.Is(err, ErrClosed):
					rejected.Add(1)
					return
				default:
					t.Error(err)
					return
				}
			}
		}()
	}
	time.Sleep(5 * time.Millisecond)
	// Race Close against the submitters; every accepted instance must have
	// completed by the time Close returns.
	var closers sync.WaitGroup
	for c := 0; c < 3; c++ {
		closers.Add(1)
		go func() { defer closers.Done(); svc.Close() }()
	}
	closers.Wait()
	close(stop)
	submitters.Wait()

	if a, c := accepted.Load(), completed.Load(); a != c {
		t.Fatalf("accepted %d != completed %d after Close", a, c)
	}
	if accepted.Load() == 0 {
		t.Fatal("test raced trivially: nothing accepted")
	}
	if err := svc.Submit(Request{Schema: s, Sources: sources, Strategy: st}); !errors.Is(err, ErrClosed) {
		t.Fatalf("Submit after Close = %v, want ErrClosed", err)
	}
	if _, err := svc.Do(s, sources, st); !errors.Is(err, ErrClosed) {
		t.Fatalf("Do after Close = %v, want ErrClosed", err)
	}
	if _, err := svc.DoContext(context.Background(), s, sources, st); !errors.Is(err, ErrClosed) {
		t.Fatalf("DoContext after Close = %v, want ErrClosed", err)
	}
	if _, err := RunLoad(svc, Load{Schema: s, Sources: sources, Strategy: st, Count: 1}); !errors.Is(err, ErrClosed) {
		t.Fatalf("RunLoad after Close = %v, want ErrClosed", err)
	}
}

// TestSubmitCancelWithoutCtx: the cancel handle must abort promptly even
// when the request carries no Ctx — including when the cancel nudge races
// the begin job across workers (the nudge requeues behind begin rather
// than being dropped).
func TestSubmitCancelWithoutCtx(t *testing.T) {
	s, sources := quickstart(t)
	svc := New(Config{Workers: 4, Backend: &Latency{Base: 200 * time.Millisecond}})
	defer svc.Close()
	st := engine.MustParseStrategy("PSE100")

	cause := errors.New("caller gave up")
	for i := 0; i < 200; i++ {
		done := make(chan *engine.Result, 1)
		cancel, err := svc.SubmitCancel(Request{
			Schema: s, Sources: sources, Strategy: st,
			Done: func(r *engine.Result) {
				out := *r
				out.Snapshot = nil
				done <- &out
			},
		})
		if err != nil {
			t.Fatal(err)
		}
		cancel(cause) // immediately: races the begin job on purpose
		select {
		case res := <-done:
			if res.Err == nil || !errors.Is(res.Err, cause) {
				t.Fatalf("iteration %d: Result.Err = %v, want wrapped cause", i, res.Err)
			}
		case <-time.After(5 * time.Second):
			t.Fatalf("iteration %d: cancel was lost; instance still running", i)
		}
	}
}

// TestDoContextCancelStress races many cancellations against completions
// and instance-pool reuse; run with -race this exercises the generation
// guard on cancel nudges.
func TestDoContextCancelStress(t *testing.T) {
	s, sources := quickstart(t)
	svc := New(Config{Backend: &Latency{Base: 100 * time.Microsecond}})
	defer svc.Close()
	st := engine.MustParseStrategy("PSE100")

	var wg sync.WaitGroup
	for g := 0; g < 16; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				ctx, cancel := context.WithTimeout(context.Background(), time.Duration(i%7)*50*time.Microsecond)
				res, err := svc.DoContext(ctx, s, sources, st)
				cancel()
				if err != nil {
					t.Error(err)
					return
				}
				if res.Err != nil && !errors.Is(res.Err, context.DeadlineExceeded) {
					t.Errorf("unexpected instance error: %v", res.Err)
					return
				}
			}
		}(g)
	}
	wg.Wait()
}
