package runtime

import (
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/engine"
	"repro/internal/snapshot"
)

// fakeReplica is a scripted Fallible backend: submission n behaves as
// script(n) says — a delay (negative = stall forever) and an error.
type fakeReplica struct {
	mu     sync.Mutex
	n      int
	script func(n int) (time.Duration, error)
}

func (f *fakeReplica) calls() int {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.n
}

func (f *fakeReplica) SubmitErr(cost int, done func(error)) {
	f.mu.Lock()
	n := f.n
	f.n++
	f.mu.Unlock()
	d, err := f.script(n)
	switch {
	case d < 0: // stall: never complete
	case d == 0:
		done(err)
	default:
		time.AfterFunc(d, func() { done(err) })
	}
}

func (f *fakeReplica) Submit(cost int, done func()) {
	f.SubmitErr(cost, func(error) { done() })
}

// SubmitBatchErr executes the sub-batch as one scripted submission.
func (f *fakeReplica) SubmitBatchErr(costs []int, done func(error)) {
	total := 0
	for _, c := range costs {
		total += c
	}
	f.SubmitErr(total, done)
}

// always returns a constant script.
func always(d time.Duration, err error) func(int) (time.Duration, error) {
	return func(int) (time.Duration, error) { return d, err }
}

// submitWait drives one SubmitErr through the cluster and returns the
// terminal error.
func submitWait(t *testing.T, cl *Cluster, cost int) error {
	t.Helper()
	ch := make(chan error, 1)
	cl.SubmitErr(cost, func(err error) { ch <- err })
	select {
	case err := <-ch:
		return err
	case <-time.After(5 * time.Second):
		t.Fatal("cluster query never completed")
		return nil
	}
}

func TestJumpHashProperties(t *testing.T) {
	// In range and deterministic.
	for key := uint64(0); key < 1000; key++ {
		h := splitmix64(key)
		for _, n := range []int{1, 2, 3, 7, 16} {
			b := jumpHash(h, n)
			if b < 0 || b >= n {
				t.Fatalf("jumpHash(%d, %d) = %d out of range", h, n, b)
			}
			if b2 := jumpHash(h, n); b2 != b {
				t.Fatalf("jumpHash not deterministic: %d vs %d", b, b2)
			}
		}
	}
	// Consistency: growing n to n+1 only moves keys into the new bucket.
	moved, stayed := 0, 0
	for key := uint64(0); key < 4000; key++ {
		h := splitmix64(key)
		before, after := jumpHash(h, 4), jumpHash(h, 5)
		if before == after {
			stayed++
			continue
		}
		if after != 4 {
			t.Fatalf("key %d moved from %d to old bucket %d on growth", key, before, after)
		}
		moved++
	}
	// Expect ~1/5 moved.
	if moved < 4000/10 || moved > 4000*3/10 {
		t.Errorf("moved %d of 4000 keys on 4→5 growth, want ≈800", moved)
	}
	_ = stayed
	// Rough balance over 4 buckets.
	var counts [4]int
	for key := uint64(0); key < 8000; key++ {
		counts[jumpHash(splitmix64(key), 4)]++
	}
	for b, c := range counts {
		if c < 8000/4/2 || c > 8000/4*2 {
			t.Errorf("bucket %d holds %d of 8000 keys (imbalanced)", b, c)
		}
	}
}

func TestBreakerStateMachine(t *testing.T) {
	b := &breaker{after: 3, cooldown: 10 * time.Millisecond}
	now := time.Now().UnixNano()
	if !b.admit(now) {
		t.Fatal("fresh breaker must admit")
	}
	b.failure(now)
	b.failure(now)
	if !b.admissible(now) {
		t.Fatal("breaker tripped before the threshold")
	}
	b.failure(now) // third consecutive: trips
	if b.admissible(now) {
		t.Fatal("breaker failed to open after 3 consecutive failures")
	}
	if got := b.trips.Load(); got != 1 {
		t.Fatalf("trips = %d, want 1", got)
	}
	// Cooldown elapses: exactly one probe is admitted.
	later := now + int64(11*time.Millisecond)
	if !b.admit(later) {
		t.Fatal("breaker must admit a probe after the cooldown")
	}
	if b.admit(later) {
		t.Fatal("second probe admitted while half-open")
	}
	// Failed probe reopens without a new trip.
	b.failure(later)
	if b.admissible(later) {
		t.Fatal("failed probe must reopen the breaker")
	}
	if got := b.trips.Load(); got != 1 {
		t.Fatalf("trips after failed probe = %d, want 1", got)
	}
	// Successful probe closes.
	evenLater := later + int64(11*time.Millisecond)
	if !b.admit(evenLater) {
		t.Fatal("breaker must admit a second probe")
	}
	b.success()
	if !b.admit(evenLater) {
		t.Fatal("breaker must close after a successful probe")
	}
}

func TestLatHistQuantile(t *testing.T) {
	var h latHist
	if q := h.quantile(0.95, 64); q != 0 {
		t.Fatalf("cold histogram quantile = %v, want 0", q)
	}
	for i := 0; i < 95; i++ {
		h.observe(1 * time.Millisecond)
	}
	for i := 0; i < 5; i++ {
		h.observe(100 * time.Millisecond)
	}
	p50 := h.quantile(0.50, 64)
	p99 := h.quantile(0.99, 64)
	if p50 < 1*time.Millisecond || p50 > 4*time.Millisecond {
		t.Errorf("p50 = %v, want ≈1–2ms (log₂ bucket upper bound)", p50)
	}
	if p99 < 100*time.Millisecond || p99 > 400*time.Millisecond {
		t.Errorf("p99 = %v, want ≈128–256ms", p99)
	}
	if p99 <= p50 {
		t.Errorf("p99 %v ≤ p50 %v", p99, p50)
	}
}

// TestClusterRetryMasksReplicaFailure: replica 0 always errors, replica 1
// always succeeds; with one retry the query must succeed no matter which
// replica is tried first.
func TestClusterRetryMasksReplicaFailure(t *testing.T) {
	boom := errors.New("boom")
	reps := [2]*fakeReplica{
		{script: always(0, boom)},
		{script: always(0, nil)},
	}
	cl := NewCluster(ClusterConfig{
		Shards: 1, Replicas: 2, Retries: 1,
		New: func(s, r int) Backend { return reps[r] },
	})
	for i := 0; i < 50; i++ {
		if err := submitWait(t, cl, 1); err != nil {
			t.Fatalf("query %d surfaced %v despite a healthy replica", i, err)
		}
	}
	st := cl.ClusterStats()
	if st.Failed != 0 {
		t.Fatalf("failed = %d, want 0", st.Failed)
	}
	if st.Errors == 0 || st.Retries == 0 {
		t.Fatalf("expected error+retry traffic, got %+v", st)
	}
	// The breaker must eventually shield replica 0: far fewer than half of
	// all attempts land on it once it trips.
	if st.BreakerTrips == 0 {
		t.Fatalf("breaker never tripped on the always-failing replica: %+v", st)
	}
}

// TestClusterTerminalFailure: every replica fails; the error surfaces
// after the retry budget.
func TestClusterTerminalFailure(t *testing.T) {
	boom := errors.New("boom")
	cl := NewCluster(ClusterConfig{
		Shards: 2, Replicas: 2, Retries: 2,
		New: func(s, r int) Backend { return &fakeReplica{script: always(0, boom)} },
	})
	if err := submitWait(t, cl, 1); !errors.Is(err, boom) {
		t.Fatalf("err = %v, want %v", err, boom)
	}
	st := cl.ClusterStats()
	if st.Failed != 1 {
		t.Fatalf("failed = %d, want 1", st.Failed)
	}
	if st.Retries != 2 {
		t.Fatalf("retries = %d, want 2 (the full budget)", st.Retries)
	}
}

// TestClusterDeadlineRetriesStalledReplica: a stalled replica is abandoned
// at the deadline and the retry lands on the healthy one.
func TestClusterDeadlineRetriesStalledReplica(t *testing.T) {
	reps := [2]*fakeReplica{
		{script: always(-1, nil)}, // stalls forever
		{script: always(time.Millisecond, nil)},
	}
	cl := NewCluster(ClusterConfig{
		Shards: 1, Replicas: 2, Retries: 2,
		Deadline: 20 * time.Millisecond,
		New:      func(s, r int) Backend { return reps[r] },
	})
	for i := 0; i < 8; i++ {
		if err := submitWait(t, cl, 1); err != nil {
			t.Fatalf("query %d: %v", i, err)
		}
	}
	st := cl.ClusterStats()
	if reps[0].calls() > 0 && st.Timeouts == 0 {
		t.Fatalf("stalled replica was tried but no timeout recorded: %+v", st)
	}
}

// TestClusterBreakerIsolatesDegradedReplica: replica 0 is alive but
// always answers far past the deadline. Its timeouts must trip the
// breaker, and its late successes must NOT re-close it — otherwise a
// slow-but-alive replica keeps full traffic share and every query routed
// to it burns a deadline + retry forever.
func TestClusterBreakerIsolatesDegradedReplica(t *testing.T) {
	reps := [2]*fakeReplica{
		{script: always(80*time.Millisecond, nil)}, // alive, far past deadline
		{script: always(time.Millisecond, nil)},
	}
	// The deadline must dominate scheduler stalls, not just the healthy
	// replica's 1ms: a coverage-instrumented run on a throttled 1-core
	// host can stall a timer past 5ms, making the *healthy* attempt time
	// out and the query fail spuriously. 10ms keeps 8x headroom on the
	// healthy side while staying 8x under the degraded replica's 80ms.
	cl := NewCluster(ClusterConfig{
		Shards: 1, Replicas: 2, Retries: 2,
		Deadline:   10 * time.Millisecond,
		BreakAfter: 3, BreakCooldown: time.Minute, // no probes within the test
		New: func(s, r int) Backend { return reps[r] },
	})
	for i := 0; i < 40; i++ {
		if err := submitWait(t, cl, 1); err != nil {
			t.Fatalf("query %d: %v", i, err)
		}
	}
	st := cl.ClusterStats()
	if st.Replica[0][0].BreakerTrips == 0 {
		t.Fatalf("degraded replica never tripped its breaker: %+v", st.Replica[0][0])
	}
	// Once tripped (cooldown ≫ test), the degraded replica must stop
	// receiving traffic: a handful of pre-trip attempts, nothing after.
	if q := st.Replica[0][0].Queries; q > 10 {
		t.Fatalf("breaker failed to shield the degraded replica: %d queries reached it", q)
	}
}

// TestClusterHedgeWinsOverSlowReplica: the primary attempt is slow, the
// hedge is fast — the hedge must win and cut the observed latency.
func TestClusterHedgeWinsOverSlowReplica(t *testing.T) {
	var first atomic.Int64
	slowThenFast := func(rep int) func(int) (time.Duration, error) {
		return func(int) (time.Duration, error) {
			if first.CompareAndSwap(0, int64(rep)+1) {
				return 300 * time.Millisecond, nil // primary: slow
			}
			return time.Millisecond, nil // hedge: fast
		}
	}
	reps := [2]*fakeReplica{}
	for r := range reps {
		reps[r] = &fakeReplica{script: slowThenFast(r)}
	}
	cl := NewCluster(ClusterConfig{
		Shards: 1, Replicas: 2,
		HedgeDelay: 10 * time.Millisecond,
		New:        func(s, r int) Backend { return reps[r] },
	})
	start := time.Now()
	if err := submitWait(t, cl, 1); err != nil {
		t.Fatal(err)
	}
	elapsed := time.Since(start)
	if elapsed > 150*time.Millisecond {
		t.Fatalf("hedged query took %v, want well under the 300ms primary", elapsed)
	}
	st := cl.ClusterStats()
	if st.Hedges != 1 || st.HedgeWins != 1 {
		t.Fatalf("hedges=%d wins=%d, want 1/1", st.Hedges, st.HedgeWins)
	}
}

// TestClusterRoutedBatchFansOutPerShard: members group by hash; each
// member's callback fires exactly once.
func TestClusterRoutedBatchFansOutPerShard(t *testing.T) {
	var subs atomic.Int64
	cl := NewCluster(ClusterConfig{
		Shards: 4, Replicas: 1,
		New: func(s, r int) Backend {
			return &fakeReplica{script: func(int) (time.Duration, error) {
				subs.Add(1)
				return 0, nil
			}}
		},
	})
	const n = 64
	hashes := make([]uint64, n)
	costs := make([]int, n)
	for i := range hashes {
		hashes[i] = splitmix64(uint64(i))
		costs[i] = 1
	}
	var wg sync.WaitGroup
	wg.Add(n)
	var fired [n]atomic.Int64
	cl.SubmitRoutedBatch(hashes, costs, func(i int, err error) {
		if err != nil {
			t.Errorf("member %d: %v", i, err)
		}
		fired[i].Add(1)
		wg.Done()
	})
	wg.Wait()
	for i := range fired {
		if got := fired[i].Load(); got != 1 {
			t.Fatalf("member %d fired %d times", i, got)
		}
	}
	// 64 members over 4 shards must coalesce into ≤4 sub-batches (one
	// replica submission per non-empty shard group).
	if got := subs.Load(); got > 4 {
		t.Fatalf("replica submissions = %d, want ≤ 4 (per-shard sub-batches)", got)
	}
	if got := cl.ClusterStats().SubBatches; got == 0 || got > 4 {
		t.Fatalf("SubBatches = %d, want 1–4", got)
	}
}

// TestBatchingOnlyLayerKeepsConsistentPlacement: with a batching-only
// query layer (no dedup, no cache) over a cluster, launches must still
// render their sharing identity so placement stays consistent — the
// quickstart flow has exactly three query identities, so traffic must
// land on at most three shards, never spread sequence-style over all.
func TestBatchingOnlyLayerKeepsConsistentPlacement(t *testing.T) {
	s, sources := quickstart(t)
	cl := NewCluster(ClusterConfig{
		Shards: 8, Replicas: 1,
		New: func(int, int) Backend { return &fakeReplica{script: always(0, nil)} },
	})
	svc := New(Config{
		Backend: cl,
		Workers: 2,
		Query:   QueryConfig{BatchSize: 4, BatchWindow: 50 * time.Microsecond},
	})
	defer svc.Close()
	for i := 0; i < 100; i++ {
		if _, err := svc.Do(s, sources, engine.MustParseStrategy("PSE100")); err != nil {
			t.Fatal(err)
		}
	}
	busy := 0
	for _, row := range cl.ClusterStats().Replica {
		if row[0].Queries > 0 {
			busy++
		}
	}
	if busy > 3 {
		t.Fatalf("3 query identities spread over %d shards — identity routing lost under batching-only layer", busy)
	}
}

// TestServiceOnClusterMatchesOracle serves the quickstart flow on a
// 3-shard × 2-replica Instant cluster under every LB policy, with and
// without the query layer, checking terminal snapshots and stats wiring.
func TestServiceOnClusterMatchesOracle(t *testing.T) {
	s, sources := quickstart(t)
	oracle := snapshot.Complete(s, sources)
	for _, lb := range []LBPolicy{RoundRobin, LeastInFlight, PowerOfTwo} {
		for _, query := range []QueryConfig{{}, {BatchSize: 4, BatchWindow: 20 * time.Microsecond, Dedup: true, CacheSize: 128}} {
			cl := NewCluster(ClusterConfig{
				Shards: 3, Replicas: 2, LB: lb, Retries: 1,
				New: func(int, int) Backend { return Instant{} },
			})
			svc := New(Config{Backend: cl, Workers: 2, Query: query})
			for _, code := range []string{"PSE100", "PCE0", "NSE60"} {
				res, err := svc.Do(s, sources, engine.MustParseStrategy(code))
				if err != nil || res.Err != nil {
					t.Fatalf("%v/%s: %v / %v", lb, code, err, res.Err)
				}
				if err := snapshot.CheckAgainstOracle(res.Snapshot, oracle); err != nil {
					t.Fatalf("%v/%s: oracle mismatch: %v", lb, code, err)
				}
			}
			st := svc.Stats()
			if st.Cluster == nil || st.Cluster.Shards != 3 || st.Cluster.Replicas != 2 {
				t.Fatalf("%v: cluster stats not wired: %+v", lb, st.Cluster)
			}
			if st.FailedQueries != 0 {
				t.Fatalf("%v: failed queries on healthy cluster: %d", lb, st.FailedQueries)
			}
			svc.Close()
		}
	}
}
