package runtime

import (
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"
	"testing"

	"repro/internal/engine"
	"repro/internal/randschema"
	"repro/internal/snapshot"
)

// The peer-tier extension of the property suite: the same random-schema ×
// query-layer sweep, but run through a 2-node fleet whose dispatchers
// route every keyed query to its jump-hash home — node 0 and node 1 are
// full Services wired to each other through an in-process PeerExec that
// calls the other node's ServePeerQuery directly (the transport is the
// server package's concern; the accounting identity is this package's).
// Per node the launch identity picks up the peer terms
// (Launched == BQ + DH + CH − PeerServed + PeerForwards); summed over the
// fleet the forwards and serves cancel and the single-node launch-exact
// identity must hold to the unit.

// inprocPeer is the loopback PeerExec: member self of a 2-node ring,
// forwarding to the other node's ServePeerQuery on its own goroutine
// (ServePeerQuery can block on the home's backend admission). fwd is
// shared by both members and tracks every forward until its outcome has
// been classified: local classification is synchronous with the launch,
// but a forward hops goroutines, so a speculative launch abandoned by its
// strategy can classify after its instance completes — the test must
// quiesce on fwd before reading counters it wants to compare exactly.
type inprocPeer struct {
	self  int
	peers []*Service
	fwd   *sync.WaitGroup
}

func (p *inprocPeer) SubmitPeer(q PeerQuery, outcome func(err error, remote bool)) bool {
	home := JumpHash(q.Hash, len(p.peers))
	if home == p.self {
		return false
	}
	p.fwd.Add(1)
	go func() {
		err := p.peers[home].ServePeerQuery(q.Schema, q.Attr, []byte(q.Args), q.Cost,
			func(err error) { outcome(err, true); p.fwd.Done() })
		if err != nil {
			// Never entered the home's query layer; fall back locally,
			// exactly like the networked tier on a refused forward.
			outcome(err, false)
			p.fwd.Done()
		}
	}()
	return true
}

// runPropFleetPeered is runPropFleet over two peered services: schemas
// and bindings are generated once (sharing is keyed by schema pointer
// identity, as in any one process) and instances alternate between the
// nodes, so roughly half of each node's keyed queries home on the other.
func runPropFleetPeered(t *testing.T, svcs []*Service, fwd *sync.WaitGroup, schemas, instPerBinding int, seed int64) []Stats {
	t.Helper()
	strategies := engine.Strategies("PSE100", "PCE0", "NCC0", "PSC40", "NSE60", "PCE100")
	var (
		wg       sync.WaitGroup
		failures atomic.Int64
		firstErr atomic.Value
	)
	rng := rand.New(rand.NewSource(seed))
	total := 0
	for si := 0; si < schemas; si++ {
		schemaSeed := rng.Int63()
		s := randschema.Generate(rand.New(rand.NewSource(schemaSeed)), randschema.Config{})
		for b := 0; b < 2; b++ {
			sources := randschema.RandomSources(rng, s)
			oracle := snapshot.Complete(s, sources)
			for k := 0; k < instPerBinding; k++ {
				st := strategies[(si+b+k)%len(strategies)]
				svc := svcs[total%len(svcs)]
				wg.Add(1)
				total++
				err := svc.Submit(Request{
					Schema:   s,
					Sources:  sources,
					Strategy: st,
					Done: func(r *engine.Result) {
						defer wg.Done()
						if r.Err != nil {
							failures.Add(1)
							firstErr.CompareAndSwap(nil, fmt.Sprintf("schema seed %d strategy %s: %v", schemaSeed, st, r.Err))
							return
						}
						if err := snapshot.CheckAgainstOracle(r.Snapshot, oracle); err != nil {
							failures.Add(1)
							firstErr.CompareAndSwap(nil, fmt.Sprintf("schema seed %d strategy %s: oracle mismatch: %v", schemaSeed, st, err))
						}
					},
				})
				if err != nil {
					t.Fatal(err)
				}
			}
		}
	}
	wg.Wait()
	fwd.Wait() // let straggling forwards of abandoned launches classify
	if f := failures.Load(); f != 0 {
		t.Fatalf("%d instances failed; first: %s", f, firstErr.Load())
	}
	out := make([]Stats, len(svcs))
	var completed uint64
	for i, svc := range svcs {
		out[i] = svc.Stats()
		completed += out[i].Completed
	}
	if completed != uint64(total) {
		t.Fatalf("fleet completed %d of %d instances", completed, total)
	}
	return out
}

// TestPropertyPeerFleetAllCombos: 125 random schemas per query-layer
// combination (625 total, the PR-2 matrix) through the 2-node fleet.
// Combinations without sharing tables cannot route by key at all —
// InstallPeerRouter must refuse them — and for the rest both per-node and
// fleet-wide accounting identities must hold exactly, with zero
// fallbacks on a loopback that cannot fail.
func TestPropertyPeerFleetAllCombos(t *testing.T) {
	schemas := 125
	instPerBinding := 4
	if testing.Short() {
		schemas = 25
	}

	for ci, combo := range propCombos() {
		combo := combo
		seed := int64(5000 + 23*ci)
		t.Run(combo.name, func(t *testing.T) {
			t.Parallel()
			svcs := []*Service{
				New(Config{Workers: 4, MaxInFlightTasks: 1024, Query: combo.query}),
				New(Config{Workers: 4, MaxInFlightTasks: 1024, Query: combo.query}),
			}
			defer func() {
				for _, svc := range svcs {
					svc.Close()
				}
			}()

			sharing := combo.query.Dedup || combo.query.CacheSize > 0
			var fwd sync.WaitGroup
			for i, svc := range svcs {
				err := svc.InstallPeerRouter(&inprocPeer{self: i, peers: svcs, fwd: &fwd})
				if !sharing {
					if !errors.Is(err, ErrNoQueryLayer) {
						t.Fatalf("InstallPeerRouter without sharing tables = %v, want ErrNoQueryLayer", err)
					}
				} else if err != nil {
					t.Fatal(err)
				}
			}
			if !sharing {
				return // routing is impossible without a key; nothing more to assert
			}

			sts := runPropFleetPeered(t, svcs, &fwd, schemas, instPerBinding, seed)
			var fleet Stats
			for i, st := range sts {
				// Per-node identity with the peer terms.
				want := st.BackendQueries + st.DedupHits + st.CacheHits - st.PeerServed + st.PeerForwards
				if st.Launched != want {
					t.Errorf("node %d identity broken: launched=%d != backend=%d + dedup=%d + cache=%d - served=%d + forwards=%d",
						i, st.Launched, st.BackendQueries, st.DedupHits, st.CacheHits, st.PeerServed, st.PeerForwards)
				}
				if st.PeerFallbacks != 0 {
					t.Errorf("node %d recorded %d fallbacks on a loopback peer", i, st.PeerFallbacks)
				}
				fleet.Launched += st.Launched
				fleet.BackendQueries += st.BackendQueries
				fleet.DedupHits += st.DedupHits
				fleet.CacheHits += st.CacheHits
				fleet.PeerForwards += st.PeerForwards
				fleet.PeerServed += st.PeerServed
			}
			if fleet.PeerForwards == 0 {
				t.Error("no queries crossed the fleet; the routing hook never fired")
			}
			if fleet.PeerForwards != fleet.PeerServed {
				t.Errorf("forwards=%d served=%d; the loopback lost completions", fleet.PeerForwards, fleet.PeerServed)
			}
			// The launch-exact identity, restored fleet-wide.
			if fleet.Launched != fleet.BackendQueries+fleet.DedupHits+fleet.CacheHits {
				t.Errorf("fleet launch conservation violated: launched=%d backend=%d dedup=%d cache=%d",
					fleet.Launched, fleet.BackendQueries, fleet.DedupHits, fleet.CacheHits)
			}
		})
	}
}
