package runtime

import (
	"context"
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/value"
)

// Load describes one load-generation run against a Service — the
// wall-clock analogue of the paper's §5 open-workload experiment.
type Load struct {
	// Schema is the decision flow every instance executes.
	Schema *core.Schema
	// Sources are each instance's source-attribute values.
	Sources map[string]value.Value
	// SourcesFor, if non-nil, overrides Sources per instance: instance i
	// runs with SourcesFor(i). It lets a load spread instances over many
	// distinct input vectors — the knob that separates the query layer's
	// dedup/cache hit regime (identical instances) from its batching
	// regime (diverse instances). It must be safe for concurrent calls.
	SourcesFor func(i int) map[string]value.Value
	// Strategy selects the optimization options.
	Strategy engine.Strategy
	// Count is the number of instances to fire.
	Count int
	// Rate > 0 drives an open workload: instances arrive as a Poisson
	// process at Rate instances/second regardless of completions (offered
	// load — latency grows without bound past saturation, exactly as in
	// Figure 9(b)). Rate <= 0 drives a closed workload instead: Concurrency
	// instances are kept outstanding, measuring peak sustainable
	// throughput.
	Rate float64
	// Concurrency is the closed-workload outstanding-instance count
	// (default 4× the service's workers). Ignored when Rate > 0.
	Concurrency int
	// Seed drives the Poisson arrival process.
	Seed int64
}

// Report summarizes one load run.
type Report struct {
	// Stats are the service metrics scoped to this run.
	Stats Stats
	// Duration is first submit to last completion.
	Duration time.Duration
	// Throughput is completed instances per second of Duration.
	Throughput float64
	// OfferedRate echoes Load.Rate for open workloads (0 for closed).
	OfferedRate float64
}

// String renders the report for CLI output.
func (r Report) String() string {
	head := fmt.Sprintf("instances=%d duration=%v throughput=%.0f inst/s",
		r.Stats.Completed, r.Duration.Round(time.Millisecond), r.Throughput)
	if r.OfferedRate > 0 {
		head += fmt.Sprintf(" (offered %.0f inst/s)", r.OfferedRate)
	}
	return head + "\n" + r.Stats.String()
}

// RunLoad fires the load at the service, waits for every instance to
// complete, and reports throughput and latency. It resets the service's
// stats at the start, so the report covers exactly this run; don't run
// concurrent loads against one service if per-run stats matter.
func RunLoad(s *Service, l Load) (Report, error) {
	return RunLoadContext(context.Background(), s, l)
}

// RunLoadContext is RunLoad with cancellation: once ctx is done the
// generator stops submitting, instances already in flight abort at their
// next step (each Request carries ctx), and the partial report over the
// instances that did complete is returned together with ctx.Err(). A
// non-cancellation error (e.g. the service was closed mid-run) is returned
// without waiting, as from RunLoad.
func RunLoadContext(ctx context.Context, s *Service, l Load) (Report, error) {
	if l.Schema == nil {
		return Report{}, fmt.Errorf("runtime: load needs a Schema")
	}
	if l.Count <= 0 {
		return Report{}, fmt.Errorf("runtime: load needs Count > 0")
	}
	s.ResetStats()

	var wg sync.WaitGroup
	wg.Add(l.Count)
	start := time.Now()

	// Aborting instances observe ctx themselves; only a cancellable ctx is
	// worth the per-step check.
	reqCtx := ctx
	if ctx.Done() == nil {
		reqCtx = nil
	}
	var err error
	if l.Rate > 0 {
		err = runOpen(ctx, reqCtx, s, l, &wg)
	} else {
		err = runClosed(ctx, reqCtx, s, l, &wg)
	}
	if err != nil {
		return Report{}, err
	}
	wg.Wait()
	elapsed := time.Since(start)

	rep := Report{
		Stats:       s.Stats(),
		Duration:    elapsed,
		OfferedRate: max(l.Rate, 0),
	}
	if elapsed > 0 {
		rep.Throughput = float64(rep.Stats.Completed) / elapsed.Seconds()
	}
	return rep, ctx.Err()
}

// sourcesFor resolves instance i's source bindings.
func (l *Load) sourcesFor(i int) map[string]value.Value {
	if l.SourcesFor != nil {
		return l.SourcesFor(i)
	}
	return l.Sources
}

// runOpen submits Count Poisson arrivals at the offered rate, pacing
// against absolute deadlines so generator hiccups don't skew the process.
// On ctx cancellation it stops submitting, compensates the wait group for
// the instances never fired, and returns nil (the caller reports ctx.Err).
func runOpen(ctx, reqCtx context.Context, s *Service, l Load, wg *sync.WaitGroup) error {
	rng := rand.New(rand.NewSource(l.Seed))
	done := func(*engine.Result) { wg.Done() }
	next := time.Now()
	var timer *time.Timer
	for i := 0; i < l.Count; i++ {
		if d := time.Until(next); d > 0 {
			if timer == nil {
				timer = time.NewTimer(d)
				defer timer.Stop()
			} else {
				timer.Reset(d)
			}
			select {
			case <-timer.C:
			case <-ctx.Done():
			}
		}
		if ctx.Err() != nil {
			wg.Add(i - l.Count) // instances never fired
			return nil
		}
		if err := s.Submit(Request{Schema: l.Schema, Sources: l.sourcesFor(i), Strategy: l.Strategy, Done: done, Ctx: reqCtx}); err != nil {
			return err
		}
		next = next.Add(time.Duration(rng.ExpFloat64() / l.Rate * float64(time.Second)))
	}
	return nil
}

// runClosed keeps Concurrency instances outstanding: each completion
// immediately submits the next until Count have been fired (or ctx is
// canceled, after which completions stop chaining and the remaining claims
// are compensated so the load drains).
func runClosed(ctx, reqCtx context.Context, s *Service, l Load, wg *sync.WaitGroup) error {
	conc := l.Concurrency
	if conc <= 0 {
		conc = 4 * s.cfg.Workers
	}
	if conc > l.Count {
		conc = l.Count
	}
	var fired atomic.Int64
	fired.Store(int64(conc))
	var done func(*engine.Result)
	done = func(*engine.Result) {
		defer wg.Done() // this completion
		if ctx.Err() != nil {
			// Canceled: release every unfired claim in one compensating
			// swap (exactly one chain wins the CAS; later chains and
			// claims find fired already at Count).
			for {
				cur := fired.Load()
				if cur >= int64(l.Count) {
					return
				}
				if fired.CompareAndSwap(cur, int64(l.Count)) {
					wg.Add(int(cur) - l.Count)
					return
				}
			}
		}
		// Claim and submit follow-on instances until one sticks or the
		// count is exhausted. Submit only fails if the service was closed
		// mid-run (an operator action); each failed claim is compensated
		// so the load drains — this chain then claims the next instance,
		// because no other completion will.
		for {
			i := fired.Add(1)
			if i > int64(l.Count) {
				break
			}
			if s.Submit(Request{Schema: l.Schema, Sources: l.sourcesFor(int(i - 1)), Strategy: l.Strategy, Done: done, Ctx: reqCtx}) == nil {
				break
			}
			wg.Done()
		}
	}
	for i := 0; i < conc; i++ {
		if err := s.Submit(Request{Schema: l.Schema, Sources: l.sourcesFor(i), Strategy: l.Strategy, Done: done, Ctx: reqCtx}); err != nil {
			return err
		}
	}
	return nil
}
