package runtime

import (
	"fmt"
	"maps"
	"slices"
	"strings"
	"sync"
	"time"

	"repro/internal/engine"
)

// Stats aggregates the service's serving metrics since start (or the last
// ResetStats). Work metrics are summed over completed instances only —
// matching the per-instance Result accounting, so no work is lost or
// double-counted across the fleet.
type Stats struct {
	// Submitted counts accepted Submit calls.
	Submitted uint64
	// Completed counts instances that reached a terminal snapshot
	// (including those that finished with Err).
	Completed uint64
	// Errors counts completed instances with a non-nil Err.
	Errors uint64
	// Work / WastedWork / Launched / SynthesisRuns / Failures sum the
	// corresponding Result fields over completed instances.
	Work          uint64
	WastedWork    uint64
	Launched      uint64
	SynthesisRuns uint64
	Failures      uint64
	// Latency percentiles over completed instances (wall clock, submit to
	// terminal snapshot).
	P50, P95, P99, Max time.Duration
	// AvgLatency is the mean wall-clock latency.
	AvgLatency time.Duration

	// Query-layer metrics (all zero when Config.Query is off). Every
	// launched task is accounted to exactly one of BackendQueries,
	// DedupHits or CacheHits — the conservation identity
	// Launched == BackendQueries + DedupHits + CacheHits the property
	// tests assert. Unlike the Work metrics above, these count at launch
	// time, so they include queries of instances still in flight.
	BackendQueries uint64 // unique queries handed to the backend
	Batches        uint64 // backend round trips (≤ BackendQueries)
	DedupHits      uint64 // launches that shared an in-flight query
	CacheHits      uint64 // launches answered by the attribute cache
	CacheMisses    uint64 // cache lookups that went to the backend

	// Peer-tier metrics (all zero without an installed peer router). A
	// launch classified at a remote home counts in PeerForwards instead of
	// the three buckets above; a query forwarded in from a peer counts in
	// PeerServed AND exactly one of the buckets above. The per-node
	// conservation identity therefore becomes
	// Launched == BackendQueries + DedupHits + CacheHits - PeerServed + PeerForwards,
	// and summing over the fleet restores the launch-exact identity
	// (forwards and serves cancel pairwise).
	PeerForwards  uint64 // launches classified at a remote home node
	PeerFallbacks uint64 // forwards re-entered locally (peer down/draining)
	PeerServed    uint64 // forwarded-in queries served on behalf of peers

	// Cluster resilience totals (all zero unless the Backend is a
	// Cluster): hedges launched/won, retries after errors or timeouts,
	// breaker trips, and queries whose every attempt failed. Cluster
	// additionally carries the per-shard/per-replica breakdown.
	Hedges        uint64
	HedgeWins     uint64
	Retries       uint64
	Timeouts      uint64
	BreakerTrips  uint64
	FailedQueries uint64
	Cluster       *ClusterStats

	// ShadowSubmitted / ShadowCompleted / ShadowErrors count Request.Shadow
	// instances (the server's shadow-evaluation background work). They are
	// excluded from every metric above: shadow load must not move the
	// latency percentiles, completion counts, or the overload sampler.
	ShadowSubmitted uint64
	ShadowCompleted uint64
	ShadowErrors    uint64

	// Tenants breaks completions down by Request.Tenant, for requests that
	// carried one (the network front end tags every instance with its
	// tenant). Untagged instances appear only in the aggregate above.
	Tenants map[string]TenantStats
}

// TenantStats is one tenant's slice of the service metrics: completions,
// errors, and latency percentiles over that tenant's instances (subject to
// Config.LatencyWindow like the aggregate percentiles).
type TenantStats struct {
	Completed          uint64
	Errors             uint64
	P50, P95, P99, Max time.Duration
	AvgLatency         time.Duration
}

// AvgBatchSize returns the mean queries per backend round trip (1 when
// batching never coalesced anything; 0 before any query).
func (st Stats) AvgBatchSize() float64 {
	if st.Batches == 0 {
		return 0
	}
	return float64(st.BackendQueries) / float64(st.Batches)
}

// String renders the stats as a one-stop report block in a single
// strings.Builder pass; the query-layer line appears only when the layer
// saw traffic, the cluster block only when the backend is a cluster. The
// exact format is pinned by TestStatsStringGolden — extend that test with
// any new line.
func (st Stats) String() string {
	var b strings.Builder
	fmt.Fprintf(&b,
		"completed=%d errors=%d work=%d wasted=%d launched=%d synthesis=%d\n"+
			"latency p50=%v p95=%v p99=%v max=%v avg=%v",
		st.Completed, st.Errors, st.Work, st.WastedWork, st.Launched, st.SynthesisRuns,
		st.P50, st.P95, st.P99, st.Max, st.AvgLatency)
	if st.BackendQueries+st.DedupHits+st.CacheHits > 0 {
		fmt.Fprintf(&b,
			"\nquery layer: backend=%d batches=%d avg-batch=%.1f dedup-hits=%d cache-hit/miss=%d/%d",
			st.BackendQueries, st.Batches, st.AvgBatchSize(), st.DedupHits, st.CacheHits, st.CacheMisses)
	}
	if st.PeerForwards+st.PeerFallbacks+st.PeerServed > 0 {
		fmt.Fprintf(&b, "\npeer tier: forwards=%d fallbacks=%d served=%d",
			st.PeerForwards, st.PeerFallbacks, st.PeerServed)
	}
	if st.ShadowSubmitted > 0 {
		fmt.Fprintf(&b, "\nshadow: submitted=%d completed=%d errors=%d",
			st.ShadowSubmitted, st.ShadowCompleted, st.ShadowErrors)
	}
	if c := st.Cluster; c != nil {
		fmt.Fprintf(&b,
			"\ncluster: shards=%d replicas=%d hedges=%d/%d won retries=%d timeouts=%d breaker-trips=%d failed=%d",
			c.Shards, c.Replicas, c.HedgeWins, c.Hedges, c.Retries, c.Timeouts, c.BreakerTrips, c.Failed)
		for s, row := range c.Replica {
			fmt.Fprintf(&b, "\n  shard %d:", s)
			for r, rep := range row {
				fmt.Fprintf(&b, " r%d[q=%d err=%d to=%d trips=%d]",
					r, rep.Queries, rep.Errors, rep.Timeouts, rep.BreakerTrips)
			}
		}
	}
	for _, name := range slices.Sorted(maps.Keys(st.Tenants)) {
		t := st.Tenants[name]
		fmt.Fprintf(&b, "\ntenant %s: completed=%d errors=%d p50=%v p99=%v max=%v",
			name, t.Completed, t.Errors, t.P50, t.P99, t.Max)
	}
	return b.String()
}

// shard is one worker's metrics slice; finalization always happens on a
// worker, so each shard is written by exactly one goroutine (its own lock
// is only contended by Stats readers).
type shard struct {
	mu        sync.Mutex
	window    int // Config.LatencyWindow: max samples retained (0 = all)
	completed uint64
	errors    uint64
	// shadowCompleted / shadowErrors tally Request.Shadow instances, which
	// bypass every other field of the shard (see Stats.ShadowCompleted).
	shadowCompleted uint64
	shadowErrors    uint64
	work            uint64
	wasted    uint64
	launched  uint64
	synth     uint64
	failures  uint64
	lats      latRing // latency samples, ns
	tenants   map[string]*tenantCell
}

// tenantCell is one tenant's per-shard slice.
type tenantCell struct {
	completed uint64
	errors    uint64
	lats      latRing
}

// latRing holds latency samples: an unbounded append when window is 0, a
// ring of the most recent window samples otherwise (so a long-running
// server's percentiles cover a sliding window at constant memory).
type latRing struct {
	window int
	buf    []int64
	n      int // total samples recorded
}

func (r *latRing) add(v int64) {
	if r.window <= 0 {
		r.buf = append(r.buf, v)
		r.n++
		return
	}
	if len(r.buf) < r.window {
		r.buf = append(r.buf, v)
	} else {
		r.buf[r.n%r.window] = v
	}
	r.n++
}

func (r *latRing) reset() {
	r.buf = r.buf[:0]
	r.n = 0
}

// record folds one completed instance into the shard.
func (sh *shard) record(r *engine.Result, latency time.Duration, tenant string) {
	sh.mu.Lock()
	sh.completed++
	if r.Err != nil {
		sh.errors++
	}
	sh.work += uint64(r.Work)
	sh.wasted += uint64(r.WastedWork)
	sh.launched += uint64(r.Launched)
	sh.synth += uint64(r.SynthesisRuns)
	sh.failures += uint64(r.Failures)
	sh.lats.add(int64(latency))
	if tenant != "" {
		cell := sh.tenants[tenant]
		if cell == nil {
			if sh.tenants == nil {
				sh.tenants = make(map[string]*tenantCell)
			}
			cell = &tenantCell{lats: latRing{window: sh.window}}
			sh.tenants[tenant] = cell
		}
		cell.completed++
		if r.Err != nil {
			cell.errors++
		}
		cell.lats.add(int64(latency))
	}
	sh.mu.Unlock()
}

// recordShadow folds one completed shadow instance into the shard: a bare
// completion/error tally, no latency sample, no tenant attribution — the
// whole point of the Shadow flag is that this work is invisible to the
// serving metrics.
func (sh *shard) recordShadow(r *engine.Result) {
	sh.mu.Lock()
	sh.shadowCompleted++
	if r.Err != nil {
		sh.shadowErrors++
	}
	sh.mu.Unlock()
}

// clusterStatser is the Backend capability of reporting cluster stats
// (implemented by Cluster).
type clusterStatser interface {
	ClusterStats() ClusterStats
	ResetStats()
}

// Stats merges all shards into an aggregate snapshot.
func (s *Service) Stats() Stats {
	st := Stats{Submitted: s.submitted.Load(), ShadowSubmitted: s.shadowSubmitted.Load()}
	if d := s.disp; d != nil {
		st.BackendQueries = d.backendQueries.Load()
		st.Batches = d.batches.Load()
		st.DedupHits = d.dedupHits.Load()
		st.CacheHits = d.cacheHits.Load()
		st.CacheMisses = d.cacheMisses.Load()
		st.PeerForwards = d.peerForwards.Load()
		st.PeerFallbacks = d.peerFallbacks.Load()
		st.PeerServed = d.peerServed.Load()
	}
	if cs, ok := s.cfg.Backend.(clusterStatser); ok {
		c := cs.ClusterStats()
		st.Cluster = &c
		st.Hedges = c.Hedges
		st.HedgeWins = c.HedgeWins
		st.Retries = c.Retries
		st.Timeouts = c.Timeouts
		st.BreakerTrips = c.BreakerTrips
		st.FailedQueries = c.Failed
	}
	var lats []int64
	type tenantAgg struct {
		completed, errors uint64
		lats              []int64
	}
	var tenants map[string]*tenantAgg
	for i := range s.shards {
		sh := &s.shards[i]
		sh.mu.Lock()
		st.Completed += sh.completed
		st.Errors += sh.errors
		st.ShadowCompleted += sh.shadowCompleted
		st.ShadowErrors += sh.shadowErrors
		st.Work += sh.work
		st.WastedWork += sh.wasted
		st.Launched += sh.launched
		st.SynthesisRuns += sh.synth
		st.Failures += sh.failures
		lats = append(lats, sh.lats.buf...)
		for name, cell := range sh.tenants {
			if tenants == nil {
				tenants = make(map[string]*tenantAgg)
			}
			agg := tenants[name]
			if agg == nil {
				agg = &tenantAgg{}
				tenants[name] = agg
			}
			agg.completed += cell.completed
			agg.errors += cell.errors
			agg.lats = append(agg.lats, cell.lats.buf...)
		}
		sh.mu.Unlock()
	}
	if tenants != nil {
		st.Tenants = make(map[string]TenantStats, len(tenants))
		for name, agg := range tenants {
			ts := TenantStats{Completed: agg.completed, Errors: agg.errors}
			ts.P50, ts.P95, ts.P99, ts.Max, ts.AvgLatency = summarize(agg.lats)
			st.Tenants[name] = ts
		}
	}
	st.P50, st.P95, st.P99, st.Max, st.AvgLatency = summarize(lats)
	return st
}

// summarize sorts ns samples in place and returns the latency summary.
func summarize(lats []int64) (p50, p95, p99, max, avg time.Duration) {
	if len(lats) == 0 {
		return 0, 0, 0, 0, 0
	}
	slices.Sort(lats)
	var sum int64
	for _, l := range lats {
		sum += l
	}
	return pct(lats, 0.50), pct(lats, 0.95), pct(lats, 0.99),
		time.Duration(lats[len(lats)-1]), time.Duration(sum / int64(len(lats)))
}

// lastK appends up to the k most recently recorded samples to dst,
// newest first.
func (r *latRing) lastK(dst []int64, k int) []int64 {
	n := len(r.buf)
	if k > n {
		k = n
	}
	if r.window <= 0 || n < r.window {
		return append(dst, r.buf[n-k:]...)
	}
	for i := 0; i < k; i++ {
		dst = append(dst, r.buf[(r.n-1-i)%r.window])
	}
	return dst
}

// RecentP99 returns the p99 over at most the `limit` most recent latency
// samples per stats shard (limit <= 0 means every retained sample),
// without the full Stats aggregation (tenant maps, counters) — cheap
// enough for a background overload sampler to call several times a
// second. An overload sampler passes the completion count of its last
// interval as the limit, so the percentile reflects what just happened
// rather than a retention window that older (possibly pathological)
// samples still dominate.
func (s *Service) RecentP99(limit int) time.Duration {
	var lats []int64
	for i := range s.shards {
		sh := &s.shards[i]
		sh.mu.Lock()
		if limit <= 0 {
			lats = append(lats, sh.lats.buf...)
		} else {
			lats = sh.lats.lastK(lats, limit)
		}
		sh.mu.Unlock()
	}
	if len(lats) == 0 {
		return 0
	}
	slices.Sort(lats)
	return pct(lats, 0.99)
}

// CompletedTotal returns the completed-instance count alone — the cheap
// liveness companion to RecentP99 for overload samplers.
func (s *Service) CompletedTotal() uint64 {
	var total uint64
	for i := range s.shards {
		sh := &s.shards[i]
		sh.mu.Lock()
		total += sh.completed
		sh.mu.Unlock()
	}
	return total
}

// ResetStats zeroes the aggregate metrics (latency samples included); the
// load driver scopes each run this way.
func (s *Service) ResetStats() {
	s.submitted.Store(0)
	s.shadowSubmitted.Store(0)
	if d := s.disp; d != nil {
		d.backendQueries.Store(0)
		d.batches.Store(0)
		d.dedupHits.Store(0)
		d.cacheHits.Store(0)
		d.cacheMisses.Store(0)
		d.peerForwards.Store(0)
		d.peerFallbacks.Store(0)
		d.peerServed.Store(0)
	}
	if cs, ok := s.cfg.Backend.(clusterStatser); ok {
		cs.ResetStats()
	}
	for i := range s.shards {
		sh := &s.shards[i]
		sh.mu.Lock()
		sh.completed, sh.errors = 0, 0
		sh.shadowCompleted, sh.shadowErrors = 0, 0
		sh.work, sh.wasted, sh.launched, sh.synth, sh.failures = 0, 0, 0, 0, 0
		sh.lats.reset()
		sh.tenants = nil
		sh.mu.Unlock()
	}
}

// pct returns the nearest-rank percentile of sorted ns samples.
func pct(sorted []int64, p float64) time.Duration {
	idx := int(p * float64(len(sorted)-1))
	return time.Duration(sorted[idx])
}
