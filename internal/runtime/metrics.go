package runtime

import (
	"fmt"
	"slices"
	"sync"
	"time"

	"repro/internal/engine"
)

// Stats aggregates the service's serving metrics since start (or the last
// ResetStats). Work metrics are summed over completed instances only —
// matching the per-instance Result accounting, so no work is lost or
// double-counted across the fleet.
type Stats struct {
	// Submitted counts accepted Submit calls.
	Submitted uint64
	// Completed counts instances that reached a terminal snapshot
	// (including those that finished with Err).
	Completed uint64
	// Errors counts completed instances with a non-nil Err.
	Errors uint64
	// Work / WastedWork / Launched / SynthesisRuns / Failures sum the
	// corresponding Result fields over completed instances.
	Work          uint64
	WastedWork    uint64
	Launched      uint64
	SynthesisRuns uint64
	Failures      uint64
	// Latency percentiles over completed instances (wall clock, submit to
	// terminal snapshot).
	P50, P95, P99, Max time.Duration
	// AvgLatency is the mean wall-clock latency.
	AvgLatency time.Duration
}

// String renders the stats as a one-stop report block.
func (st Stats) String() string {
	return fmt.Sprintf(
		"completed=%d errors=%d work=%d wasted=%d launched=%d synthesis=%d\n"+
			"latency p50=%v p95=%v p99=%v max=%v avg=%v",
		st.Completed, st.Errors, st.Work, st.WastedWork, st.Launched, st.SynthesisRuns,
		st.P50, st.P95, st.P99, st.Max, st.AvgLatency)
}

// shard is one worker's metrics slice; finalization always happens on a
// worker, so each shard is written by exactly one goroutine (its own lock
// is only contended by Stats readers).
type shard struct {
	mu        sync.Mutex
	completed uint64
	errors    uint64
	work      uint64
	wasted    uint64
	launched  uint64
	synth     uint64
	failures  uint64
	lats      []int64 // latency samples, ns
}

// record folds one completed instance into the shard.
func (sh *shard) record(r *engine.Result, latency time.Duration) {
	sh.mu.Lock()
	sh.completed++
	if r.Err != nil {
		sh.errors++
	}
	sh.work += uint64(r.Work)
	sh.wasted += uint64(r.WastedWork)
	sh.launched += uint64(r.Launched)
	sh.synth += uint64(r.SynthesisRuns)
	sh.failures += uint64(r.Failures)
	sh.lats = append(sh.lats, int64(latency))
	sh.mu.Unlock()
}

// Stats merges all shards into an aggregate snapshot.
func (s *Service) Stats() Stats {
	st := Stats{Submitted: s.submitted.Load()}
	var lats []int64
	for i := range s.shards {
		sh := &s.shards[i]
		sh.mu.Lock()
		st.Completed += sh.completed
		st.Errors += sh.errors
		st.Work += sh.work
		st.WastedWork += sh.wasted
		st.Launched += sh.launched
		st.SynthesisRuns += sh.synth
		st.Failures += sh.failures
		lats = append(lats, sh.lats...)
		sh.mu.Unlock()
	}
	if len(lats) == 0 {
		return st
	}
	slices.Sort(lats)
	var sum int64
	for _, l := range lats {
		sum += l
	}
	st.P50 = pct(lats, 0.50)
	st.P95 = pct(lats, 0.95)
	st.P99 = pct(lats, 0.99)
	st.Max = time.Duration(lats[len(lats)-1])
	st.AvgLatency = time.Duration(sum / int64(len(lats)))
	return st
}

// ResetStats zeroes the aggregate metrics (latency samples included); the
// load driver scopes each run this way.
func (s *Service) ResetStats() {
	s.submitted.Store(0)
	for i := range s.shards {
		sh := &s.shards[i]
		sh.mu.Lock()
		sh.completed, sh.errors = 0, 0
		sh.work, sh.wasted, sh.launched, sh.synth, sh.failures = 0, 0, 0, 0, 0
		sh.lats = sh.lats[:0]
		sh.mu.Unlock()
	}
}

// pct returns the nearest-rank percentile of sorted ns samples.
func pct(sorted []int64, p float64) time.Duration {
	idx := int(p * float64(len(sorted)-1))
	return time.Duration(sorted[idx])
}
