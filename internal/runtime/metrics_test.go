package runtime

import (
	"testing"
	"time"
)

// The golden suite for Stats.String: the report is rendered in one
// strings.Builder pass, and these fixtures pin the exact output — any new
// line (per-shard cluster lines included) must show up here deliberately,
// not mangle the format silently.

func baseGoldenStats() Stats {
	return Stats{
		Submitted: 1200, Completed: 1000, Errors: 2,
		Work: 5000, WastedWork: 120, Launched: 2500, SynthesisRuns: 800,
		P50: 2 * time.Millisecond, P95: 9 * time.Millisecond,
		P99: 14 * time.Millisecond, Max: 40 * time.Millisecond,
		AvgLatency: 2500 * time.Microsecond,
	}
}

func TestStatsStringGolden(t *testing.T) {
	cases := []struct {
		name string
		st   func() Stats
		want string
	}{
		{
			name: "base",
			st:   baseGoldenStats,
			want: "completed=1000 errors=2 work=5000 wasted=120 launched=2500 synthesis=800\n" +
				"latency p50=2ms p95=9ms p99=14ms max=40ms avg=2.5ms",
		},
		{
			name: "with-query-layer",
			st: func() Stats {
				st := baseGoldenStats()
				st.BackendQueries = 1500
				st.Batches = 300
				st.DedupHits = 600
				st.CacheHits = 400
				st.CacheMisses = 1500
				return st
			},
			want: "completed=1000 errors=2 work=5000 wasted=120 launched=2500 synthesis=800\n" +
				"latency p50=2ms p95=9ms p99=14ms max=40ms avg=2.5ms\n" +
				"query layer: backend=1500 batches=300 avg-batch=5.0 dedup-hits=600 cache-hit/miss=400/1500",
		},
		{
			name: "with-cluster",
			st: func() Stats {
				st := baseGoldenStats()
				st.Cluster = &ClusterStats{
					Shards: 2, Replicas: 2,
					Hedges: 50, HedgeWins: 30, Retries: 7, Timeouts: 3,
					Errors: 9, BreakerTrips: 1, Failed: 2,
					Replica: [][]ReplicaStats{
						{{Queries: 700, Errors: 9, Timeouts: 3, BreakerTrips: 1}, {Queries: 650}},
						{{Queries: 600}, {Queries: 610}},
					},
				}
				return st
			},
			want: "completed=1000 errors=2 work=5000 wasted=120 launched=2500 synthesis=800\n" +
				"latency p50=2ms p95=9ms p99=14ms max=40ms avg=2.5ms\n" +
				"cluster: shards=2 replicas=2 hedges=30/50 won retries=7 timeouts=3 breaker-trips=1 failed=2\n" +
				"  shard 0: r0[q=700 err=9 to=3 trips=1] r1[q=650 err=0 to=0 trips=0]\n" +
				"  shard 1: r0[q=600 err=0 to=0 trips=0] r1[q=610 err=0 to=0 trips=0]",
		},
		{
			name: "with-peer-tier",
			st: func() Stats {
				st := baseGoldenStats()
				st.BackendQueries = 900
				st.Batches = 200
				st.DedupHits = 300
				st.CacheHits = 500
				st.CacheMisses = 900
				st.PeerForwards = 800
				st.PeerFallbacks = 25
				st.PeerServed = 750
				return st
			},
			want: "completed=1000 errors=2 work=5000 wasted=120 launched=2500 synthesis=800\n" +
				"latency p50=2ms p95=9ms p99=14ms max=40ms avg=2.5ms\n" +
				"query layer: backend=900 batches=200 avg-batch=4.5 dedup-hits=300 cache-hit/miss=500/900\n" +
				"peer tier: forwards=800 fallbacks=25 served=750",
		},
		{
			name: "with-shadow",
			st: func() Stats {
				st := baseGoldenStats()
				st.ShadowSubmitted = 120
				st.ShadowCompleted = 118
				st.ShadowErrors = 1
				return st
			},
			want: "completed=1000 errors=2 work=5000 wasted=120 launched=2500 synthesis=800\n" +
				"latency p50=2ms p95=9ms p99=14ms max=40ms avg=2.5ms\n" +
				"shadow: submitted=120 completed=118 errors=1",
		},
		{
			name: "with-tenants",
			st: func() Stats {
				st := baseGoldenStats()
				st.Tenants = map[string]TenantStats{
					"beta": {Completed: 400, Errors: 2,
						P50: time.Millisecond, P99: 8 * time.Millisecond, Max: 20 * time.Millisecond},
					"alpha": {Completed: 600,
						P50: 3 * time.Millisecond, P99: 15 * time.Millisecond, Max: 40 * time.Millisecond},
				}
				return st
			},
			want: "completed=1000 errors=2 work=5000 wasted=120 launched=2500 synthesis=800\n" +
				"latency p50=2ms p95=9ms p99=14ms max=40ms avg=2.5ms\n" +
				"tenant alpha: completed=600 errors=0 p50=3ms p99=15ms max=40ms\n" +
				"tenant beta: completed=400 errors=2 p50=1ms p99=8ms max=20ms",
		},
		{
			name: "everything",
			st: func() Stats {
				st := baseGoldenStats()
				st.BackendQueries = 10
				st.Batches = 10
				st.Cluster = &ClusterStats{
					Shards: 1, Replicas: 1,
					Replica: [][]ReplicaStats{{{Queries: 10}}},
				}
				return st
			},
			want: "completed=1000 errors=2 work=5000 wasted=120 launched=2500 synthesis=800\n" +
				"latency p50=2ms p95=9ms p99=14ms max=40ms avg=2.5ms\n" +
				"query layer: backend=10 batches=10 avg-batch=1.0 dedup-hits=0 cache-hit/miss=0/0\n" +
				"cluster: shards=1 replicas=1 hedges=0/0 won retries=0 timeouts=0 breaker-trips=0 failed=0\n" +
				"  shard 0: r0[q=10 err=0 to=0 trips=0]",
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if got := tc.st().String(); got != tc.want {
				t.Errorf("Stats.String mismatch\ngot:\n%s\nwant:\n%s", got, tc.want)
			}
		})
	}
}
