package runtime

import (
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/core"
)

// QueryConfig configures the service's shared query layer — the dispatcher
// that sits between instance launches and the Backend. All features are
// off by default (zero value), in which case launches go straight to the
// Backend exactly as before.
//
// The layer attacks the paper's central cost — external database queries —
// at fleet scale: when thousands of concurrent instances run the same
// flow, many issue identical foreign-attribute queries. Batching amortizes
// the per-query fixed cost, single-flight deduplication collapses
// identical in-flight queries into one backend round trip, and the
// attribute cache skips the round trip entirely for recently answered
// queries. All three preserve the oracle invariant: a cached or deduped
// completion is indistinguishable from a fresh one in every terminal
// snapshot, because a query's sharing identity (schema, attribute, stable
// data-input values) fully determines its result for pure task functions,
// and each instance still materializes the value from its own inputs.
type QueryConfig struct {
	// BatchSize > 1 coalesces up to that many in-flight launches into one
	// combined backend call (the size trigger). Backends implementing
	// BatchExec execute the batch as a single round trip; others receive
	// the members individually (same semantics, no amortization).
	BatchSize int
	// BatchWindow is the deadline trigger: a partial batch is flushed at
	// most this long after its first query arrived. Defaults to 200µs when
	// batching is enabled.
	BatchWindow time.Duration
	// Dedup enables single-flight deduplication: launches whose sharing
	// identity matches a query already in flight attach to it and share
	// its single backend round trip.
	Dedup bool
	// CacheSize > 0 enables the sharded LRU attribute-result cache with
	// that many entries: a launch whose identity was answered within
	// CacheTTL completes immediately, with no backend round trip.
	CacheSize int
	// CacheTTL bounds the age of usable cache entries; 0 means entries
	// never expire (sound for strictly pure task functions; set a TTL when
	// backing queries read slowly drifting external state).
	CacheTTL time.Duration
	// CacheShards spreads the cache and the single-flight table over this
	// many independently locked shards. Defaults to 8.
	CacheShards int
}

// enabled reports whether any feature of the layer is on.
func (q QueryConfig) enabled() bool {
	return q.BatchSize > 1 || q.Dedup || q.CacheSize > 0
}

// queryKey is the sharing identity of one foreign-task launch. Two
// launches with equal keys are the same query: same schema (by identity),
// same attribute, same stable data-input values (rendered by
// engine.Core.AppendQueryArgs).
type queryKey struct {
	schema *core.Schema
	id     core.AttrID
	args   string
}

// PeerQuery is one keyed attribute query offered to the front-end peer
// tier: the sharing identity in wire-transportable form (schema by
// name+fingerprint at the far end, attribute id, rendered args) plus the
// identity hash the ring places it by.
type PeerQuery struct {
	// Schema is the query's schema; peers resolve it remotely by
	// Schema.Name() and verify Schema.Fingerprint().
	Schema *core.Schema
	// Attr is the foreign attribute being queried.
	Attr core.AttrID
	// Args is the rendered sharing-identity arguments (AppendQueryArgs).
	Args string
	// Cost is the query's cost in units of processing.
	Cost int
	// Hash is the sharing-identity hash (hashKey), the ring placement key.
	Hash uint64
}

// PeerExec routes keyed queries whose sharing identity homes on another
// front-end node. Installed after construction via InstallPeerRouter —
// the router needs the serving stack that needs this service first.
type PeerExec interface {
	// SubmitPeer offers one keyed query to the tier. false keeps the
	// query local (this node is its home, the home's breaker is open, or
	// no live peers). true transfers ownership: the router must invoke
	// outcome exactly once — remote=true when the home node classified
	// the query (err is the backend verdict; waiters share fate with the
	// home's flight), remote=false when the forward could not be served
	// (peer died, draining, version skew) and the query must re-enter the
	// local path.
	SubmitPeer(q PeerQuery, outcome func(err error, remote bool)) bool
}

// peerExecBox wraps the interface for atomic installation.
type peerExecBox struct{ p PeerExec }

// Identity hashing is FNV-1a, deliberately unseeded: a query's hash — and
// therefore its cluster shard — must be stable across processes and
// restarts, or consistent placement (and any per-shard locality built on
// it) would reshuffle on every deploy. Inputs are schema/attribute names
// and rendered attribute values, not attacker-controlled keys, so seedless
// hashing is sound here.
const (
	fnvOffset uint64 = 14695981039346656037
	fnvPrime  uint64 = 1099511628211
)

// fnvFold folds data into a running FNV-1a state. Both hash entry points
// go through it, so the direct launch path (byte-slice args) and the
// dispatcher (interned string args) cannot drift apart and split the same
// query across cluster shards.
func fnvFold[T ~string | ~[]byte](h uint64, data T) uint64 {
	for i := 0; i < len(data); i++ {
		h = (h ^ uint64(data[i])) * fnvPrime
	}
	return h
}

// hashIdentity hashes one sharing identity (schema, attribute, rendered
// stable data-input values).
func hashIdentity(schema *core.Schema, id core.AttrID, args []byte) uint64 {
	return fnvFold(hashPrefix(schema, id), args)
}

// hashKey is hashIdentity over an interned queryKey.
func hashKey(key queryKey) uint64 {
	return fnvFold(hashPrefix(key.schema, key.id), key.args)
}

// hashPrefix folds the schema name and attribute id.
func hashPrefix(schema *core.Schema, id core.AttrID) uint64 {
	h := fnvFold(fnvOffset, schema.Name())
	h = (h ^ uint64(id&0xff)) * fnvPrime
	h = (h ^ uint64(id>>8)) * fnvPrime
	return h
}

// flight is one query on its way to the backend, with every completion
// callback waiting on it. dones is guarded by the owning shard's lock for
// keyed flights; unkeyed flights have exactly one waiter and no sharing.
// hash is the sharing-identity hash (a sequence-spread value for unkeyed
// flights), used for lock-domain selection here and consistent shard
// placement in a routed backend.
type flight struct {
	key   queryKey
	keyed bool
	hash  uint64
	cost  int
	dones []func(error)
}

// dispatcher implements the shared query layer. It is created only when
// QueryConfig.enabled(); a nil dispatcher means the pre-existing direct
// Submit path.
type dispatcher struct {
	backend Backend
	cfg     QueryConfig
	// Backend capabilities, resolved once: routed backends (Cluster) get
	// each flight's identity hash for consistent shard placement and fan
	// batches out per shard; fallible ones report failures, which fan out
	// to every waiter (shared fate, like any single-flight result).
	routed      Routed
	routedBatch RoutedBatch
	fallible    Fallible
	batchExec   BatchExec
	// tokens is the service's global admission channel. The dispatcher
	// owns admission at unique-backend-query granularity: one token per
	// flight, held from enqueue to completion. Deduplicated and cached
	// launches never touch it — they put no task on the database.
	tokens chan struct{}
	seq    atomic.Uint64 // spreads unkeyed flights over routed shards
	shards []qshard

	// peer is the optional front-end peer router, consulted before the
	// local sharing tables so every keyed query is classified at its one
	// home node in the fleet.
	peer atomic.Pointer[peerExecBox]

	// batcher state: pending flights and the deadline timer.
	bmu     sync.Mutex
	pending []*flight
	timer   *time.Timer

	// metrics (see Stats).
	backendQueries atomic.Uint64 // unique flights handed to the backend
	batches        atomic.Uint64 // backend round trips
	dedupHits      atomic.Uint64 // launches attached to an in-flight query
	cacheHits      atomic.Uint64
	cacheMisses    atomic.Uint64
	peerForwards   atomic.Uint64 // launches classified at a remote home
	peerFallbacks  atomic.Uint64 // forwards re-entered locally (peer down)
	peerServed     atomic.Uint64 // forwarded-in queries served for peers
}

// qshard is one lock domain of the single-flight table and the cache.
type qshard struct {
	mu       sync.Mutex
	inflight map[queryKey]*flight
	cache    lru
}

func newDispatcher(backend Backend, tokens chan struct{}, cfg QueryConfig) *dispatcher {
	if cfg.BatchSize > 1 && cfg.BatchWindow <= 0 {
		cfg.BatchWindow = 200 * time.Microsecond
	}
	if cfg.CacheShards <= 0 {
		cfg.CacheShards = 8
	}
	d := &dispatcher{
		backend: backend,
		cfg:     cfg,
		tokens:  tokens,
		shards:  make([]qshard, cfg.CacheShards),
	}
	d.routed, _ = backend.(Routed)
	d.routedBatch, _ = backend.(RoutedBatch)
	d.fallible, _ = backend.(Fallible)
	d.batchExec, _ = backend.(BatchExec)
	perShard := 0
	if cfg.CacheSize > 0 {
		perShard = max(1, cfg.CacheSize/cfg.CacheShards)
	}
	for i := range d.shards {
		sh := &d.shards[i]
		if cfg.Dedup {
			sh.inflight = make(map[queryKey]*flight)
		}
		if perShard > 0 {
			sh.cache.init(perShard)
		}
	}
	return d
}

// shard picks the lock domain for an identity hash.
func (d *dispatcher) shard(hash uint64) *qshard {
	return &d.shards[hash%uint64(len(d.shards))]
}

// needsKey reports whether launches should render their sharing identity:
// for the dedup/cache tables, or — even with both off — for consistent
// shard placement on a routed backend.
func (d *dispatcher) needsKey() bool {
	return d.cfg.Dedup || d.cfg.CacheSize > 0 || d.routed != nil
}

// Submit routes one foreign-task launch. done is invoked exactly once when
// the query's result is available — possibly synchronously (cache hit, or
// an immediate backend). keyed=false launches (volatile tasks) bypass the
// cache and dedup but still batch.
func (d *dispatcher) Submit(key queryKey, keyed bool, cost int, done func(error)) {
	if keyed && d.needsKey() {
		hash := hashKey(key)
		// Peer tier first, local tables second: a query homed on another
		// node is NOT checked against the local cache or single-flight
		// table — every launch of an identity is classified at its one
		// home, which is what makes the fleet-wide hit rate match a
		// single node's. The router owns accepted queries end to end; a
		// forward the home could not serve re-enters the local path below.
		if box := d.peer.Load(); box != nil {
			q := PeerQuery{Schema: key.schema, Attr: key.id, Args: key.args, Cost: cost, Hash: hash}
			if box.p.SubmitPeer(q, func(err error, remote bool) {
				if remote {
					d.peerForwards.Add(1)
					done(err)
					return
				}
				d.peerFallbacks.Add(1)
				d.submitKeyed(key, hash, cost, done)
			}) {
				return
			}
		}
		d.submitKeyed(key, hash, cost, done)
		return
	}
	d.enqueue(&flight{hash: splitmix64(d.seq.Add(1)), cost: cost, dones: []func(error){done}})
}

// submitKeyed is the local keyed path: cache lookup, single-flight attach,
// or a fresh flight. It is entered by local launches whose home is this
// node (or whose home could not serve them) and by queries forwarded in
// from peers — the latter never re-consult the peer router, so forwards
// cannot loop.
func (d *dispatcher) submitKeyed(key queryKey, hash uint64, cost int, done func(error)) {
	if !d.cfg.Dedup && d.cfg.CacheSize == 0 {
		// Keyed purely for routing (batching-only layer over a routed
		// backend): no sharing tables to consult, and exactly one
		// waiter — but the identity hash still pins the shard.
		d.enqueue(&flight{hash: hash, cost: cost, dones: []func(error){done}})
		return
	}
	sh := d.shard(hash)
	sh.mu.Lock()
	if d.cfg.CacheSize > 0 {
		if sh.cache.get(key, time.Now(), d.cfg.CacheTTL) {
			sh.mu.Unlock()
			d.cacheHits.Add(1)
			done(nil)
			return
		}
	}
	if d.cfg.Dedup {
		if f := sh.inflight[key]; f != nil {
			f.dones = append(f.dones, done)
			sh.mu.Unlock()
			d.dedupHits.Add(1)
			return
		}
		f := &flight{key: key, keyed: true, hash: hash, cost: cost, dones: []func(error){done}}
		sh.inflight[key] = f
		sh.mu.Unlock()
		// A miss is a cache lookup that reaches the backend: dedup
		// attaches above don't count.
		if d.cfg.CacheSize > 0 {
			d.cacheMisses.Add(1)
		}
		d.enqueue(f)
		return
	}
	sh.mu.Unlock()
	if d.cfg.CacheSize > 0 {
		d.cacheMisses.Add(1)
	}
	d.enqueue(&flight{key: key, keyed: true, hash: hash, cost: cost, dones: []func(error){done}})
}

// enqueue hands one unique query to the batcher (or straight to the
// backend when batching is off). It acquires the query's admission token,
// blocking under overload.
func (d *dispatcher) enqueue(f *flight) {
	d.tokens <- struct{}{}
	d.backendQueries.Add(1)
	if d.cfg.BatchSize <= 1 {
		d.batches.Add(1)
		d.submitOne(f)
		return
	}
	d.bmu.Lock()
	d.pending = append(d.pending, f)
	if len(d.pending) >= d.cfg.BatchSize {
		batch := d.pending
		d.pending = nil
		if d.timer != nil {
			d.timer.Stop()
		}
		d.bmu.Unlock()
		d.flush(batch)
		return
	}
	if len(d.pending) == 1 {
		// First query of a new batch: arm the deadline trigger.
		if d.timer == nil {
			d.timer = time.AfterFunc(d.cfg.BatchWindow, d.deadline)
		} else {
			d.timer.Reset(d.cfg.BatchWindow)
		}
	}
	d.bmu.Unlock()
}

// deadline is the batch window expiry: flush whatever accumulated.
func (d *dispatcher) deadline() {
	d.bmu.Lock()
	batch := d.pending
	d.pending = nil
	d.bmu.Unlock()
	if len(batch) > 0 {
		d.flush(batch)
	}
}

// submitOne routes one unbatched flight to the backend, preferring the
// routed (consistent shard placement) and fallible (fault reporting)
// capabilities.
func (d *dispatcher) submitOne(f *flight) {
	switch {
	case d.routed != nil:
		d.routed.SubmitRouted(f.hash, f.cost, func(err error) { d.complete(f, err) })
	case d.fallible != nil:
		d.fallible.SubmitErr(f.cost, func(err error) { d.complete(f, err) })
	default:
		d.backend.Submit(f.cost, func() { d.complete(f, nil) })
	}
}

// flush submits one cut batch to the backend. Runs on the goroutine that
// tripped the size trigger or on the deadline timer's goroutine; it may
// block on backend admission (e.g. Latency.Parallel), which back-pressures
// later batches without stalling completion delivery.
func (d *dispatcher) flush(batch []*flight) {
	if len(batch) == 1 {
		d.batches.Add(1)
		d.submitOne(batch[0])
		return
	}
	if d.routedBatch != nil {
		// Sharded backend: the batch fans out per shard underneath; each
		// member completes as its shard's sub-batch lands. Batches counts
		// dispatcher cuts; the cluster's SubBatches counts shard trips.
		hashes := make([]uint64, len(batch))
		costs := make([]int, len(batch))
		for i, f := range batch {
			hashes[i] = f.hash
			costs[i] = f.cost
		}
		d.batches.Add(1)
		d.routedBatch.SubmitRoutedBatch(hashes, costs, func(i int, err error) {
			d.complete(batch[i], err)
		})
		return
	}
	if d.batchExec != nil {
		costs := make([]int, len(batch))
		for i, f := range batch {
			costs[i] = f.cost
		}
		d.batches.Add(1)
		if fb, ok := d.batchExec.(FallibleBatch); ok {
			fb.SubmitBatchErr(costs, func(err error) {
				for _, f := range batch {
					d.complete(f, err)
				}
			})
			return
		}
		d.batchExec.SubmitBatch(costs, func() {
			for _, f := range batch {
				d.complete(f, nil)
			}
		})
		return
	}
	// Backend has no batch capability: members travel individually — same
	// completion semantics, no amortization.
	d.batches.Add(uint64(len(batch)))
	for _, f := range batch {
		d.submitOne(f)
	}
}

// complete fans a finished flight out to its waiters, retiring it from the
// single-flight table and priming the cache. It runs on backend goroutines;
// each waiter is the service's cheap non-blocking completion handler. A
// failed flight (err non-nil, every cluster retry exhausted) shares its
// fate with all deduplicated waiters — standard single-flight semantics —
// and is never cached, so the next identical launch retries the backend.
func (d *dispatcher) complete(f *flight, err error) {
	<-d.tokens // release backend admission first so capacity refills
	var dones []func(error)
	if f.keyed {
		// f.dones of a keyed flight is only readable under the shard lock:
		// dedup waiters append to it until the retirement below.
		sh := d.shard(f.hash)
		sh.mu.Lock()
		if d.cfg.Dedup {
			delete(sh.inflight, f.key)
		}
		if d.cfg.CacheSize > 0 && err == nil {
			sh.cache.put(f.key, time.Now())
		}
		dones = f.dones
		sh.mu.Unlock()
	} else {
		dones = f.dones // single waiter, never shared
	}
	for _, fn := range dones {
		fn(err)
	}
}

// stop cancels the pending deadline timer. Called after the service has
// drained, when no flights remain.
func (d *dispatcher) stop() {
	d.bmu.Lock()
	if d.timer != nil {
		d.timer.Stop()
	}
	d.bmu.Unlock()
}

// --- sharded LRU+TTL cache ---

// lru is one shard's fixed-capacity LRU of answered query identities with
// insertion timestamps. The "result" needs no payload: the key (schema,
// attribute, stable input values) fully determines the task's value for
// pure ComputeFuncs, and the hitting instance materializes it locally from
// its own identical inputs — what the cache elides is the backend round
// trip, which is the entirety of a foreign task's cost in this model.
type lru struct {
	cap     int
	entries map[queryKey]int // key -> slot index
	slots   []lruSlot
	head    int // most recently used; -1 when empty
	tail    int // least recently used
	free    []int
}

type lruSlot struct {
	key        queryKey
	at         time.Time
	prev, next int
}

func (c *lru) init(capacity int) {
	c.cap = capacity
	c.entries = make(map[queryKey]int, capacity)
	c.slots = make([]lruSlot, capacity)
	c.free = make([]int, capacity)
	for i := range c.free {
		c.free[i] = capacity - 1 - i
	}
	c.head, c.tail = -1, -1
}

// get reports whether key was answered within ttl of now, refreshing its
// recency. Expired entries are evicted on contact.
func (c *lru) get(key queryKey, now time.Time, ttl time.Duration) bool {
	i, ok := c.entries[key]
	if !ok {
		return false
	}
	if ttl > 0 && now.Sub(c.slots[i].at) > ttl {
		c.remove(i)
		return false
	}
	c.moveToFront(i)
	return true
}

// put records key as answered at time at, evicting the least recently used
// entry when full.
func (c *lru) put(key queryKey, at time.Time) {
	if c.cap == 0 {
		return
	}
	if i, ok := c.entries[key]; ok {
		c.slots[i].at = at
		c.moveToFront(i)
		return
	}
	if len(c.free) == 0 {
		c.remove(c.tail)
	}
	i := c.free[len(c.free)-1]
	c.free = c.free[:len(c.free)-1]
	c.slots[i] = lruSlot{key: key, at: at, prev: -1, next: c.head}
	if c.head >= 0 {
		c.slots[c.head].prev = i
	}
	c.head = i
	if c.tail < 0 {
		c.tail = i
	}
	c.entries[key] = i
}

func (c *lru) moveToFront(i int) {
	if c.head == i {
		return
	}
	s := &c.slots[i]
	c.slots[s.prev].next = s.next
	if s.next >= 0 {
		c.slots[s.next].prev = s.prev
	} else {
		c.tail = s.prev
	}
	s.prev, s.next = -1, c.head
	c.slots[c.head].prev = i
	c.head = i
}

func (c *lru) remove(i int) {
	s := &c.slots[i]
	if s.prev >= 0 {
		c.slots[s.prev].next = s.next
	} else {
		c.head = s.next
	}
	if s.next >= 0 {
		c.slots[s.next].prev = s.prev
	} else {
		c.tail = s.prev
	}
	delete(c.entries, s.key)
	c.free = append(c.free, i)
}
