// Package experiments regenerates every figure of the paper's evaluation
// (§5): the work and response-time comparisons over schema patterns
// (Figures 5–7), the guideline maps (Figure 8), and the analytical-model
// study against the simulated database (Figure 9). Each driver emits the
// same data series the paper plots, as numeric tables.
//
// Absolute numbers differ from the paper's (their testbed and exact
// generator are not available; see DESIGN.md), but the *shapes* — which
// strategy wins, by what factor, and where crossovers fall — reproduce,
// and EXPERIMENTS.md records the side-by-side comparison.
package experiments

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/engine"
	"repro/internal/gen"
	"repro/internal/guideline"
	"repro/internal/model"
	"repro/internal/simdb"
)

// Config tunes experiment fidelity (all drivers are deterministic for a
// fixed config).
type Config struct {
	// Seeds is the number of generated schemas averaged per data point
	// (default 10).
	Seeds int
	// BaseSeed offsets all schema seeds (default 1).
	BaseSeed int64
	// WorkloadInstances is the number of arrivals simulated per measured
	// point of Figure 9(b) (default 400).
	WorkloadInstances int
	// DbCurveUnits is the number of units measured per Gmpl level when
	// calibrating the Db curve (default 2000).
	DbCurveUnits int
}

func (c Config) withDefaults() Config {
	if c.Seeds <= 0 {
		c.Seeds = 10
	}
	if c.BaseSeed == 0 {
		c.BaseSeed = 1
	}
	if c.WorkloadInstances <= 0 {
		c.WorkloadInstances = 400
	}
	if c.DbCurveUnits <= 0 {
		c.DbCurveUnits = 2000
	}
	return c
}

// Series is one labeled curve of a figure.
type Series struct {
	Label string
	X     []float64
	Y     []float64
}

// Figure is the regenerated data of one paper figure.
type Figure struct {
	ID     string
	Title  string
	XLabel string
	YLabel string
	Series []Series
	// Notes carries derived observations checked in EXPERIMENTS.md.
	Notes []string
}

// Table renders the figure as an aligned text table (x column followed by
// one column per series).
func (f *Figure) Table() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "# Figure %s — %s\n", f.ID, f.Title)
	fmt.Fprintf(&sb, "# y: %s\n", f.YLabel)
	// Header.
	fmt.Fprintf(&sb, "%-14s", f.XLabel)
	for _, s := range f.Series {
		fmt.Fprintf(&sb, " %12s", s.Label)
	}
	sb.WriteByte('\n')
	// Merge x grids (figures here share x per series by construction, but
	// guideline frontiers differ, so merge defensively).
	xs := map[float64]bool{}
	for _, s := range f.Series {
		for _, x := range s.X {
			xs[x] = true
		}
	}
	grid := make([]float64, 0, len(xs))
	for x := range xs {
		grid = append(grid, x)
	}
	sort.Float64s(grid)
	for _, x := range grid {
		fmt.Fprintf(&sb, "%-14.6g", x)
		for _, s := range f.Series {
			v, ok := lookupXY(s, x)
			if ok {
				fmt.Fprintf(&sb, " %12.2f", v)
			} else {
				fmt.Fprintf(&sb, " %12s", "-")
			}
		}
		sb.WriteByte('\n')
	}
	for _, n := range f.Notes {
		fmt.Fprintf(&sb, "# note: %s\n", n)
	}
	return sb.String()
}

func lookupXY(s Series, x float64) (float64, bool) {
	for i, sx := range s.X {
		if sx == x {
			return s.Y[i], true
		}
	}
	return 0, false
}

// measure runs a strategy over `seeds` pattern instances and returns the
// mean (work, timeInUnits).
func measure(p gen.Params, code string, cfg Config) (work, timeUnits float64) {
	st := engine.MustParseStrategy(code)
	for s := 0; s < cfg.Seeds; s++ {
		pp := p
		pp.Seed = cfg.BaseSeed + int64(s)
		g := gen.Generate(pp)
		res := engine.Run(g.Schema, g.SourceValues(), st)
		if res.Err != nil {
			panic(fmt.Sprintf("experiments: %s on seed %d: %v", code, s, res.Err))
		}
		work += float64(res.Work)
		timeUnits += res.Elapsed
	}
	n := float64(cfg.Seeds)
	return work / n, timeUnits / n
}

// sweep produces one series per strategy over a parameter grid.
func sweep(cfg Config, strategies []string, xs []float64,
	configure func(x float64) gen.Params, pick func(work, time float64) float64) []Series {
	out := make([]Series, len(strategies))
	for i, code := range strategies {
		s := Series{Label: code}
		for _, x := range xs {
			w, t := measure(configure(x), code, cfg)
			s.X = append(s.X, x)
			s.Y = append(s.Y, pick(w, t))
		}
		out[i] = s
	}
	return out
}

func workOf(w, _ float64) float64 { return w }
func timeOf(_, t float64) float64 { return t }

// enabledGrid is the %enabled x-axis of Figures 5(a) and 6.
var enabledGrid = []float64{10, 20, 30, 40, 50, 60, 70, 80, 90, 100}

// Fig5a: work performed vs %enabled for PCC0, PCE0, NCC0, NCE0 (nb_rows=4).
func Fig5a(cfg Config) *Figure {
	cfg = cfg.withDefaults()
	strategies := []string{"PCC0", "PCE0", "NCC0", "NCE0"}
	series := sweep(cfg, strategies, enabledGrid, func(x float64) gen.Params {
		p := gen.Default()
		p.NbRows = 4
		p.PctEnabled = int(x)
		return p
	}, workOf)
	f := &Figure{
		ID: "5a", Title: "Work vs %enabled, serial strategies (nb_rows=4)",
		XLabel: "%enabled", YLabel: "Work (units)", Series: series,
	}
	f.Notes = append(f.Notes, fig5Notes(series)...)
	return f
}

// Fig5b: work performed vs nb_rows for the same strategies (%enabled=75).
func Fig5b(cfg Config) *Figure {
	cfg = cfg.withDefaults()
	strategies := []string{"PCC0", "PCE0", "NCC0", "NCE0"}
	rows := []float64{1, 2, 4, 8, 16}
	series := sweep(cfg, strategies, rows, func(x float64) gen.Params {
		p := gen.Default()
		p.NbRows = int(x)
		p.PctEnabled = 75
		return p
	}, workOf)
	return &Figure{
		ID: "5b", Title: "Work vs nb_rows, serial strategies (%enabled=75)",
		XLabel: "nb_rows", YLabel: "Work (units)", Series: series,
		Notes: []string{"divisors of 64 stand in for the paper's 2..8 grid"},
	}
}

func fig5Notes(series []Series) []string {
	// Quantify the P-vs-N cluster gap at the lowest %enabled.
	get := func(label string) Series {
		for _, s := range series {
			if s.Label == label {
				return s
			}
		}
		panic("missing series " + label)
	}
	p0, n0 := get("PCE0").Y[0], get("NCE0").Y[0]
	return []string{
		fmt.Sprintf("at %%enabled=10: Propagation saves %.0f%% of Naive work (paper: ~60%%)",
			100*(n0-p0)/n0),
	}
}

// Fig6a: TimeInUnits vs %enabled for PC*100, PS*100, PCE0 (nb_rows=4).
func Fig6a(cfg Config) *Figure {
	cfg = cfg.withDefaults()
	series := sweep(cfg, []string{"PCE100", "PSE100", "PCE0"}, enabledGrid,
		fig6Params, timeOf)
	relabelStar(series)
	return &Figure{
		ID: "6a", Title: "Response time vs %enabled under maximal parallelism (nb_rows=4)",
		XLabel: "%enabled", YLabel: "TimeInUnits", Series: series,
	}
}

// Fig6b: Work vs %enabled for the same strategies.
func Fig6b(cfg Config) *Figure {
	cfg = cfg.withDefaults()
	series := sweep(cfg, []string{"PCE100", "PSE100", "PCE0"}, enabledGrid,
		fig6Params, workOf)
	relabelStar(series)
	return &Figure{
		ID: "6b", Title: "Work vs %enabled under maximal parallelism (nb_rows=4)",
		XLabel: "%enabled", YLabel: "Work (units)", Series: series,
	}
}

func fig6Params(x float64) gen.Params {
	p := gen.Default()
	p.NbRows = 4
	p.PctEnabled = int(x)
	return p
}

// relabelStar renames PCE100/PSE100 to the paper's PC*100/PS*100 (at 100 %
// parallelism the scheduling heuristic is immaterial).
func relabelStar(series []Series) {
	for i := range series {
		switch series[i].Label {
		case "PCE100":
			series[i].Label = "PC*100"
		case "PSE100":
			series[i].Label = "PS*100"
		}
	}
}

// permittedGrid is the %Permitted x-axis of Figure 7.
var permittedGrid = []float64{0, 10, 20, 30, 40, 50, 60, 70, 80, 90, 100}

// Fig7a: TimeInUnits vs %Permitted for PCC*, PCE*, PSC*, PSE*
// (nb_rows=4, %enabled=75).
func Fig7a(cfg Config) *Figure {
	cfg = cfg.withDefaults()
	return &Figure{
		ID: "7a", Title: "Response time vs degree of parallelism (nb_rows=4, %enabled=75)",
		XLabel: "%permitted", YLabel: "TimeInUnits",
		Series: fig7Series(cfg, timeOf),
	}
}

// Fig7b: Work vs %Permitted for the same strategies.
func Fig7b(cfg Config) *Figure {
	cfg = cfg.withDefaults()
	return &Figure{
		ID: "7b", Title: "Work vs degree of parallelism (nb_rows=4, %enabled=75)",
		XLabel: "%permitted", YLabel: "Work (units)",
		Series: fig7Series(cfg, workOf),
	}
}

func fig7Series(cfg Config, pick func(w, t float64) float64) []Series {
	p := gen.Default()
	p.NbRows = 4
	p.PctEnabled = 75
	families := []string{"PCC", "PCE", "PSC", "PSE"}
	out := make([]Series, len(families))
	for i, fam := range families {
		s := Series{Label: fam + "*"}
		for _, pct := range permittedGrid {
			w, t := measure(p, fmt.Sprintf("%s%d", fam, int(pct)), cfg)
			s.X = append(s.X, pct)
			s.Y = append(s.Y, pick(w, t))
		}
		out[i] = s
	}
	return out
}

// Fig8a: guideline maps minT vs Work for %enabled ∈ {10,25,50,75,100}
// (nb_rows=4).
func Fig8a(cfg Config) *Figure {
	cfg = cfg.withDefaults()
	f := &Figure{
		ID: "8a", Title: "Guideline map: minimal TimeInUnits vs Work bound, varying %enabled (nb_rows=4)",
		XLabel: "Work bound", YLabel: "minT (units)",
	}
	for _, pct := range []int{10, 25, 50, 75, 100} {
		p := gen.Default()
		p.NbRows = 4
		p.PctEnabled = pct
		p.Seed = cfg.BaseSeed
		f.Series = append(f.Series, frontierSeries(fmt.Sprintf("%%enabled=%d", pct), p, cfg))
	}
	return f
}

// Fig8b: guideline maps minT vs Work for nb_rows ∈ {1,2,4,8,16}
// (%enabled=75).
func Fig8b(cfg Config) *Figure {
	cfg = cfg.withDefaults()
	f := &Figure{
		ID: "8b", Title: "Guideline map: minimal TimeInUnits vs Work bound, varying nb_rows (%enabled=75)",
		XLabel: "Work bound", YLabel: "minT (units)",
	}
	for _, rows := range []int{1, 2, 4, 8, 16} {
		p := gen.Default()
		p.NbRows = rows
		p.PctEnabled = 75
		p.Seed = cfg.BaseSeed
		f.Series = append(f.Series, frontierSeries(fmt.Sprintf("nb_rows=%d", rows), p, cfg))
	}
	return f
}

func frontierSeries(label string, p gen.Params, cfg Config) Series {
	m, err := guideline.Build(p, guideline.DefaultStrategySet, cfg.Seeds)
	if err != nil {
		panic(err)
	}
	s := Series{Label: label}
	for _, pt := range m.Frontier {
		s.X = append(s.X, pt.WorkBound)
		s.Y = append(s.Y, pt.MinTime)
	}
	return s
}

// dbCurveLevels is the Gmpl x-axis of Figure 9(a).
var dbCurveLevels = []int{1, 2, 4, 6, 8, 12, 16, 20, 24, 28, 32, 40, 48, 64}

// Fig9a: UnitTime vs Gmpl for the Table 1 database — the measured Db
// function.
func Fig9a(cfg Config) *Figure {
	cfg = cfg.withDefaults()
	curve := simdb.MeasureDbCurve(simdb.DefaultParams(), dbCurveLevels, cfg.DbCurveUnits, cfg.BaseSeed)
	s := Series{Label: "UnitTime"}
	for _, pt := range curve.Points() {
		s.X = append(s.X, float64(pt.Gmpl))
		s.Y = append(s.Y, pt.UnitTime)
	}
	return &Figure{
		ID: "9a", Title: "Database response time per unit vs multiprogramming level",
		XLabel: "Gmpl", YLabel: "UnitTime (ms)", Series: []Series{s},
		Notes: []string{"monotone non-decreasing; asymptotically linear past saturation"},
	}
}

// Fig9bThroughput is the arrival rate (instances/second) of the Figure 9(b)
// study; the paper uses 10.
const Fig9bThroughput = 10.0

// Fig9b: for the nb_rows=4, %enabled=75 pattern, predicted (analytical
// model) and measured (full simulation) response time in milliseconds per
// strategy operating point, at 10 instances/second.
func Fig9b(cfg Config) *Figure {
	cfg = cfg.withDefaults()
	pattern := gen.Default()
	pattern.NbRows = 4
	pattern.PctEnabled = 75
	pattern.Seed = cfg.BaseSeed

	gmap, err := guideline.Build(pattern, guideline.DefaultStrategySet, cfg.Seeds)
	if err != nil {
		panic(err)
	}
	curve := simdb.MeasureDbCurve(simdb.DefaultParams(), dbCurveLevels, cfg.DbCurveUnits, cfg.BaseSeed)
	mdl := model.New(curve)

	pred := Series{Label: "predicted"}
	meas := Series{Label: "measured"}
	var notes []string
	bestPred, bestMeas := "", ""
	bestPredT, bestMeasT := 0.0, 0.0

	for _, ms := range gmap.Measurements {
		pr := mdl.Predict(Fig9bThroughput, ms.TimeInUnits, ms.Work)
		g := gen.Generate(pattern)
		stats, err := engine.RunOpenWorkload(engine.OpenWorkload{
			Schema:      g.Schema,
			Sources:     g.SourceValues(),
			Strategy:    engine.MustParseStrategy(ms.Strategy),
			DB:          simdb.DefaultParams(),
			ArrivalRate: Fig9bThroughput,
			Instances:   cfg.WorkloadInstances,
			Seed:        cfg.BaseSeed,
		})
		if err != nil {
			panic(err)
		}
		if pr.Converged {
			pred.X = append(pred.X, ms.Work)
			pred.Y = append(pred.Y, pr.TimeInSeconds)
			if bestPred == "" || pr.TimeInSeconds < bestPredT {
				bestPred, bestPredT = ms.Strategy, pr.TimeInSeconds
			}
			errPct := 100 * (stats.AvgTimeInSeconds - pr.TimeInSeconds) / stats.AvgTimeInSeconds
			notes = append(notes, fmt.Sprintf("%s: Work=%.1f predicted=%.1fms measured=%.1fms (err %.1f%%)",
				ms.Strategy, ms.Work, pr.TimeInSeconds, stats.AvgTimeInSeconds, errPct))
		} else {
			notes = append(notes, fmt.Sprintf("%s: Work=%.1f unsustainable at Th=%.0f/s (model)",
				ms.Strategy, ms.Work, Fig9bThroughput))
		}
		meas.X = append(meas.X, ms.Work)
		meas.Y = append(meas.Y, stats.AvgTimeInSeconds)
		if bestMeas == "" || stats.AvgTimeInSeconds < bestMeasT {
			bestMeas, bestMeasT = ms.Strategy, stats.AvgTimeInSeconds
		}
	}
	notes = append(notes,
		fmt.Sprintf("model picks %s (%.1fms); simulation picks %s (%.1fms)",
			bestPred, bestPredT, bestMeas, bestMeasT))
	return &Figure{
		ID: "9b", Title: "Predicted vs measured response time at Th=10/s (nb_rows=4, %enabled=75)",
		XLabel: "Work (units)", YLabel: "TimeInSeconds (ms)",
		Series: []Series{pred, meas},
		Notes:  notes,
	}
}

// Registry maps figure IDs to their drivers, in the paper's order.
var Registry = []struct {
	ID   string
	Run  func(Config) *Figure
	Desc string
}{
	{"5a", Fig5a, "Work vs %enabled, serial strategies"},
	{"5b", Fig5b, "Work vs nb_rows, serial strategies"},
	{"6a", Fig6a, "Time vs %enabled, maximal parallelism"},
	{"6b", Fig6b, "Work vs %enabled, maximal parallelism"},
	{"7a", Fig7a, "Time vs %permitted"},
	{"7b", Fig7b, "Work vs %permitted"},
	{"8a", Fig8a, "Guideline maps, varying %enabled"},
	{"8b", Fig8b, "Guideline maps, varying nb_rows"},
	{"9a", Fig9a, "Db curve: UnitTime vs Gmpl"},
	{"9b", Fig9b, "Predicted vs measured TimeInSeconds"},
	{"ax-cluster", AblationClustering, "Ablation: query clustering (§6 future work)"},
	{"ax-prop", AblationPropagation, "Ablation: Propagation Algorithm work savings"},
}

// Lookup finds a driver by figure ID.
func Lookup(id string) (func(Config) *Figure, bool) {
	for _, e := range Registry {
		if e.ID == id {
			return e.Run, true
		}
	}
	return nil, false
}
