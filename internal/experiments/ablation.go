package experiments

import (
	"fmt"

	"repro/internal/engine"
	"repro/internal/gen"
	"repro/internal/simdb"
)

// AblationClustering explores the query-clustering question the paper
// raises as future work (§6): "whether queries from one or several
// decision flows should be clustered to reduce overall database access
// time". It sweeps the database's per-query overhead and compares mean
// instance response time with and without same-instant batching, under the
// PCE100 strategy at the Figure 9(b) operating point.
//
// Expected shape: at zero overhead, clustering only serializes work and is
// (slightly) slower; as per-query overhead grows, the amortization wins
// and the curves cross.
func AblationClustering(cfg Config) *Figure {
	cfg = cfg.withDefaults()
	pattern := gen.Default()
	pattern.NbRows = 4
	pattern.PctEnabled = 75
	pattern.Seed = cfg.BaseSeed
	g := gen.Generate(pattern)

	overheads := []float64{0, 1, 2, 4, 8}
	run := func(cluster bool, overhead int) float64 {
		db := simdb.DefaultParams()
		db.OverheadUnits = overhead
		stats, err := engine.RunOpenWorkload(engine.OpenWorkload{
			Schema:        g.Schema,
			Sources:       g.SourceValues(),
			Strategy:      engine.MustParseStrategy("PCE100"),
			DB:            db,
			ArrivalRate:   Fig9bThroughput,
			Instances:     cfg.WorkloadInstances,
			Seed:          cfg.BaseSeed,
			ClusterSameDB: cluster,
		})
		if err != nil {
			panic(err)
		}
		return stats.AvgTimeInSeconds
	}

	plain := Series{Label: "per-query"}
	clustered := Series{Label: "clustered"}
	for _, ov := range overheads {
		plain.X = append(plain.X, ov)
		plain.Y = append(plain.Y, run(false, int(ov)))
		clustered.X = append(clustered.X, ov)
		clustered.Y = append(clustered.Y, run(true, int(ov)))
	}

	f := &Figure{
		ID:     "ax-cluster",
		Title:  "Ablation: query clustering vs per-query submission (§6 future work)",
		XLabel: "per-query overhead (units)",
		YLabel: "TimeInSeconds (ms)",
		Series: []Series{plain, clustered},
	}
	// Locate the crossover for the notes.
	for i := range overheads {
		if clustered.Y[i] < plain.Y[i] {
			f.Notes = append(f.Notes,
				fmt.Sprintf("clustering first wins at overhead=%.0f units", overheads[i]))
			break
		}
	}
	return f
}

// AblationPropagation isolates the contribution of each Propagation
// Algorithm half at the serial operating point: naive (N), eager condition
// evaluation with forward propagation only (P with backward disabled is
// not separable in this engine — the closest observable is conservative
// admission), and full P. Work saved by each step is reported per
// %enabled level. This quantifies the DESIGN.md claim that backward
// propagation's savings concentrate at low %enabled.
func AblationPropagation(cfg Config) *Figure {
	cfg = cfg.withDefaults()
	naive := Series{Label: "NCE0"}
	full := Series{Label: "PCE0"}
	saved := Series{Label: "saved%"}
	for _, pct := range []float64{10, 25, 50, 75, 100} {
		p := gen.Default()
		p.NbRows = 4
		p.PctEnabled = int(pct)
		nw, _ := measure(p, "NCE0", cfg)
		pw, _ := measure(p, "PCE0", cfg)
		naive.X = append(naive.X, pct)
		naive.Y = append(naive.Y, nw)
		full.X = append(full.X, pct)
		full.Y = append(full.Y, pw)
		saved.X = append(saved.X, pct)
		saved.Y = append(saved.Y, 100*(nw-pw)/nw)
	}
	return &Figure{
		ID:     "ax-prop",
		Title:  "Ablation: work saved by the Propagation Algorithm (serial, nb_rows=4)",
		XLabel: "%enabled",
		YLabel: "Work (units) / saved (%)",
		Series: []Series{naive, full, saved},
	}
}
