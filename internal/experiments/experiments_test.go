package experiments

import (
	"strings"
	"testing"
)

// fast is a low-fidelity config keeping the test suite quick; shape
// assertions hold already at this fidelity.
var fast = Config{Seeds: 4, BaseSeed: 1, WorkloadInstances: 150, DbCurveUnits: 500}

func series(f *Figure, label string) Series {
	for _, s := range f.Series {
		if s.Label == label {
			return s
		}
	}
	panic("missing series " + label)
}

func TestFig5aShape(t *testing.T) {
	f := Fig5a(fast)
	if len(f.Series) != 4 {
		t.Fatalf("series = %d", len(f.Series))
	}
	pce, nce := series(f, "PCE0"), series(f, "NCE0")
	// Propagation cluster sits at or below the naive cluster everywhere.
	for i := range pce.X {
		if pce.Y[i] > nce.Y[i]*1.02 {
			t.Errorf("at %%enabled=%v: PCE0 work %v above NCE0 %v", pce.X[i], pce.Y[i], nce.Y[i])
		}
	}
	// The largest relative saving is at the low end (paper: ~60 % at 10 %).
	saveLow := (nce.Y[0] - pce.Y[0]) / nce.Y[0]
	saveHigh := (nce.Y[len(nce.Y)-1] - pce.Y[len(pce.Y)-1]) / nce.Y[len(nce.Y)-1]
	if saveLow < 0.30 {
		t.Errorf("saving at %%enabled=10 = %.0f%%, want >= 30%%", saveLow*100)
	}
	if saveLow <= saveHigh {
		t.Errorf("saving should shrink as %%enabled grows: low %.2f vs high %.2f", saveLow, saveHigh)
	}
	// Naive work grows roughly linearly with %enabled: monotone suffices.
	for i := 1; i < len(nce.Y); i++ {
		if nce.Y[i] < nce.Y[i-1]*0.95 {
			t.Errorf("naive work not increasing at %v", nce.X[i])
		}
	}
}

func TestFig5bShape(t *testing.T) {
	f := Fig5b(fast)
	// The P cluster stays below the N cluster across nb_rows.
	pcc, ncc := series(f, "PCC0"), series(f, "NCC0")
	for i := range pcc.X {
		if pcc.Y[i] > ncc.Y[i]*1.02 {
			t.Errorf("at rows=%v: PCC0 %v above NCC0 %v", pcc.X[i], pcc.Y[i], ncc.Y[i])
		}
	}
}

func TestFig6Shape(t *testing.T) {
	fa, fb := Fig6a(fast), Fig6b(fast)
	tConc, tSpec, tSerial := series(fa, "PC*100"), series(fa, "PS*100"), series(fa, "PCE0")
	wConc, wSpec := series(fb, "PC*100"), series(fb, "PS*100")
	for i := range tConc.X {
		// Parallelism cuts response time dramatically vs serial.
		if tConc.Y[i] > 0.8*tSerial.Y[i] {
			t.Errorf("at %%enabled=%v: PC*100 %.1f not far below PCE0 %.1f",
				tConc.X[i], tConc.Y[i], tSerial.Y[i])
		}
		// Speculation is at least as fast as conservative...
		if tSpec.Y[i] > tConc.Y[i]*1.05 {
			t.Errorf("at %%enabled=%v: PS*100 slower than PC*100", tConc.X[i])
		}
		// ...but costs at least as much work.
		if wSpec.Y[i] < wConc.Y[i]*0.98 {
			t.Errorf("at %%enabled=%v: speculation cannot reduce work", wConc.X[i])
		}
	}
	// Speculation's extra work shrinks as %enabled grows (paper's lesson 2).
	extraLow := wSpec.Y[0] - wConc.Y[0]
	extraHigh := wSpec.Y[len(wSpec.Y)-1] - wConc.Y[len(wConc.Y)-1]
	if extraLow <= extraHigh {
		t.Errorf("speculative waste should shrink with %%enabled: %v -> %v", extraLow, extraHigh)
	}
}

func TestFig7Shape(t *testing.T) {
	fa := Fig7a(fast)
	fb := Fig7b(fast)
	pce, pcc := series(fa, "PCE*"), series(fa, "PCC*")
	pse := series(fa, "PSE*")
	last := len(pce.Y) - 1
	// All curves (roughly) converge at 100 % parallelism.
	if rel(pce.Y[last], pcc.Y[last]) > 0.05 {
		t.Errorf("PCE and PCC should converge at 100%%: %v vs %v", pce.Y[last], pcc.Y[last])
	}
	// Earliest no slower than Cheapest at mid parallelism (paper lesson 3).
	mid := indexOf(pce.X, 40)
	if pce.Y[mid] > pcc.Y[mid]*1.02 {
		t.Errorf("at 40%%: Earliest %.1f should beat Cheapest %.1f", pce.Y[mid], pcc.Y[mid])
	}
	// Speculative earliest is the fastest family at mid parallelism.
	if pse.Y[mid] > pce.Y[mid]*1.02 {
		t.Errorf("at 40%%: PSE %.1f should be <= PCE %.1f", pse.Y[mid], pce.Y[mid])
	}
	// Work is flat-ish for conservative strategies across parallelism.
	wpce := series(fb, "PCE*")
	if rel(wpce.Y[0], wpce.Y[last]) > 0.15 {
		t.Errorf("conservative work should be near-flat: %v vs %v", wpce.Y[0], wpce.Y[last])
	}
}

func TestFig8Shape(t *testing.T) {
	fa := Fig8a(fast)
	if len(fa.Series) != 5 {
		t.Fatalf("8a series = %d", len(fa.Series))
	}
	for _, s := range fa.Series {
		for i := 1; i < len(s.Y); i++ {
			if s.X[i] < s.X[i-1] || s.Y[i] >= s.Y[i-1] {
				t.Errorf("%s: frontier must increase in work and decrease in time", s.Label)
			}
		}
	}
	fb := Fig8b(fast)
	// More rows -> faster best point.
	r1 := series(fb, "nb_rows=1")
	r16 := series(fb, "nb_rows=16")
	if min(r16.Y) >= min(r1.Y) {
		t.Errorf("16 rows best %.1f should beat 1 row best %.1f", min(r16.Y), min(r1.Y))
	}
}

func TestFig9aShape(t *testing.T) {
	f := Fig9a(fast)
	s := f.Series[0]
	for i := 1; i < len(s.Y); i++ {
		if s.Y[i]+0.05 < s.Y[i-1] {
			t.Errorf("Db curve not monotone at Gmpl=%v", s.X[i])
		}
	}
	if s.Y[len(s.Y)-1] < 2*s.Y[0] {
		t.Errorf("Db curve should show clear contention: %v -> %v", s.Y[0], s.Y[len(s.Y)-1])
	}
}

func TestFig9bShape(t *testing.T) {
	f := Fig9b(fast)
	pred, meas := series(f, "predicted"), series(f, "measured")
	if len(pred.Y) == 0 || len(meas.Y) == 0 {
		t.Fatal("empty series")
	}
	// Every sustainable prediction should be within 35 % of the measured
	// value at this fidelity (the paper reports <10 % at full fidelity).
	for i := range pred.X {
		m, ok := lookupXY(meas, pred.X[i])
		if !ok {
			continue
		}
		if r := rel(pred.Y[i], m); r > 0.35 {
			t.Errorf("work=%v: predicted %.1f vs measured %.1f (rel err %.0f%%)",
				pred.X[i], pred.Y[i], m, r*100)
		}
	}
	// Notes must name best strategies.
	found := false
	for _, n := range f.Notes {
		if strings.Contains(n, "model picks") {
			found = true
		}
	}
	if !found {
		t.Error("missing best-strategy note")
	}
}

func TestTableRendering(t *testing.T) {
	f := Fig9a(fast)
	tbl := f.Table()
	for _, want := range []string{"Figure 9a", "Gmpl", "UnitTime"} {
		if !strings.Contains(tbl, want) {
			t.Errorf("table missing %q:\n%s", want, tbl)
		}
	}
}

func TestRegistryComplete(t *testing.T) {
	want := []string{"5a", "5b", "6a", "6b", "7a", "7b", "8a", "8b", "9a", "9b", "ax-cluster", "ax-prop"}
	if len(Registry) != len(want) {
		t.Fatalf("registry has %d entries", len(Registry))
	}
	for i, id := range want {
		if Registry[i].ID != id {
			t.Errorf("registry[%d] = %s, want %s", i, Registry[i].ID, id)
		}
		if _, ok := Lookup(id); !ok {
			t.Errorf("Lookup(%s) failed", id)
		}
	}
	if _, ok := Lookup("nope"); ok {
		t.Error("Lookup of unknown figure should fail")
	}
}

func rel(a, b float64) float64 {
	d := a - b
	if d < 0 {
		d = -d
	}
	if b == 0 {
		return 0
	}
	return d / b
}

func indexOf(xs []float64, x float64) int {
	for i, v := range xs {
		if v == x {
			return i
		}
	}
	panic("x not on grid")
}

func min(ys []float64) float64 {
	m := ys[0]
	for _, y := range ys {
		if y < m {
			m = y
		}
	}
	return m
}
