package experiments

import "testing"

func TestAblationClusteringShape(t *testing.T) {
	f := AblationClustering(fast)
	plain, clustered := series(f, "per-query"), series(f, "clustered")
	if len(plain.Y) != len(clustered.Y) || len(plain.Y) < 3 {
		t.Fatal("series malformed")
	}
	// At zero overhead clustering cannot win (it only serializes).
	if clustered.Y[0] < plain.Y[0]*0.98 {
		t.Errorf("zero-overhead: clustered %.1f should not beat plain %.1f",
			clustered.Y[0], plain.Y[0])
	}
	// At the largest overhead clustering must win clearly.
	last := len(plain.Y) - 1
	if clustered.Y[last] >= plain.Y[last] {
		t.Errorf("high overhead: clustered %.1f should beat plain %.1f",
			clustered.Y[last], plain.Y[last])
	}
	// Plain response time grows with overhead.
	if plain.Y[last] <= plain.Y[0] {
		t.Error("per-query response should grow with overhead")
	}
}

func TestAblationPropagationShape(t *testing.T) {
	f := AblationPropagation(fast)
	saved := series(f, "saved%")
	if len(saved.Y) == 0 {
		t.Fatal("no data")
	}
	// Savings are non-negative everywhere and largest at low %enabled.
	for i, y := range saved.Y {
		if y < -1 {
			t.Errorf("negative savings at %%enabled=%v: %v", saved.X[i], y)
		}
	}
	if saved.Y[0] <= saved.Y[len(saved.Y)-1] {
		t.Errorf("savings should shrink with %%enabled: %v -> %v",
			saved.Y[0], saved.Y[len(saved.Y)-1])
	}
	if saved.Y[0] < 30 {
		t.Errorf("savings at 10%% = %.0f%%, want >= 30%%", saved.Y[0])
	}
}

func TestRegistryIncludesAblations(t *testing.T) {
	for _, id := range []string{"ax-cluster", "ax-prop"} {
		if _, ok := Lookup(id); !ok {
			t.Errorf("registry missing %s", id)
		}
	}
}
