package gen

import (
	"testing"

	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/expr"
	"repro/internal/snapshot"
)

func TestDefaultParams(t *testing.T) {
	p := Default()
	if p.NbNodes != 64 || p.PctEnabler != 50 || p.MinPred != 1 || p.MaxPred != 4 ||
		p.MinCost != 1 || p.MaxCost != 5 || p.PctEnablingHop != 50 {
		t.Fatalf("defaults diverge from Table 1: %+v", p)
	}
}

func TestValidation(t *testing.T) {
	bad := []func(*Params){
		func(p *Params) { p.NbNodes = 0 },
		func(p *Params) { p.NbRows = 0 },
		func(p *Params) { p.NbRows = 5 },   // does not divide 64
		func(p *Params) { p.NbRows = 100 }, // > NbNodes
		func(p *Params) { p.PctEnabled = -1 },
		func(p *Params) { p.PctEnabled = 101 },
		func(p *Params) { p.PctEnabler = 150 },
		func(p *Params) { p.MinPred = 0 },
		func(p *Params) { p.MaxPred = 0 },
		func(p *Params) { p.MinCost = 0 },
		func(p *Params) { p.MaxCost = 0 },
		func(p *Params) { p.PctAddedDataEdges = -200 },
	}
	for i, mutate := range bad {
		p := Default()
		mutate(&p)
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("case %d: invalid params should panic: %+v", i, p)
				}
			}()
			Generate(p)
		}()
	}
}

func TestSkeletonShape(t *testing.T) {
	p := Default()
	p.NbNodes = 16
	p.NbRows = 4
	g := Generate(p)
	s := g.Schema
	if s.NumAttrs() != 16+2 {
		t.Fatalf("attrs = %d, want 18 (source + 16 + target)", s.NumAttrs())
	}
	if g.Columns != 4 {
		t.Fatalf("columns = %d", g.Columns)
	}
	if len(s.Sources()) != 1 || len(s.Targets()) != 1 {
		t.Fatal("source/target counts wrong")
	}
	// Diameter: src -> 4 columns -> tgt = 5... rank of target is at least
	// cols+1 through the data chain.
	if d := s.Diameter(); d < 5 {
		t.Errorf("diameter = %d, want >= 5", d)
	}
	// Row chain edges: first column nodes read src; others read their
	// predecessor.
	n00 := s.MustLookup(nodeName(0, 0))
	if len(n00.Inputs) != 1 || n00.Inputs[0] != "src" {
		t.Errorf("n_0_0 inputs = %v", n00.Inputs)
	}
	n02 := s.MustLookup(nodeName(0, 2))
	if n02.Inputs[0] != nodeName(0, 1) {
		t.Errorf("n_0_2 inputs = %v", n02.Inputs)
	}
	// Target reads the last node of every row.
	tgt := s.MustLookup("tgt")
	if len(tgt.Inputs) != 4 {
		t.Errorf("target inputs = %v", tgt.Inputs)
	}
}

func TestDiameterShrinksWithRows(t *testing.T) {
	p := Default()
	var prev int
	for i, rows := range []int{1, 2, 4, 8, 16} {
		p.NbRows = rows
		d := Generate(p).Schema.Diameter()
		if i > 0 && d >= prev {
			t.Errorf("diameter with %d rows (%d) should shrink vs %d", rows, d, prev)
		}
		prev = d
	}
}

func TestExactEnabledFraction(t *testing.T) {
	for _, pct := range []int{10, 25, 50, 75, 100} {
		p := Default()
		p.PctEnabled = pct
		p.Seed = int64(pct)
		g := Generate(p)
		want := (pct*p.NbNodes + 50) / 100
		if g.EnabledCount != want {
			t.Errorf("pct=%d: enabled count %d, want %d", pct, g.EnabledCount, want)
		}
	}
}

// The generated schema's complete snapshot must realize the scripted
// enabled set exactly — the core guarantee of the generator.
func TestScriptedTruthRealized(t *testing.T) {
	for _, seed := range []int64{1, 2, 3, 7, 99} {
		for _, pct := range []int{10, 50, 90} {
			p := Default()
			p.NbNodes = 32
			p.NbRows = 4
			p.PctEnabled = pct
			p.Seed = seed
			g := Generate(p)
			oracle := snapshot.Complete(g.Schema, g.SourceValues())
			for name, wantEnabled := range g.Enabled {
				id := g.Schema.MustLookup(name).ID()
				gotEnabled := oracle.State(id) == snapshot.Value
				if gotEnabled != wantEnabled {
					t.Fatalf("seed=%d pct=%d: %s enabled=%v, scripted %v",
						seed, pct, name, gotEnabled, wantEnabled)
				}
			}
		}
	}
}

func TestCostsWithinBounds(t *testing.T) {
	p := Default()
	g := Generate(p)
	s := g.Schema
	for i := 0; i < s.NumAttrs(); i++ {
		a := s.Attr(core.AttrID(i))
		if a.IsSource() {
			continue
		}
		if a.Cost() < p.MinCost || a.Cost() > p.MaxCost {
			t.Fatalf("%s cost %d out of [%d,%d]", a.Name, a.Cost(), p.MinCost, p.MaxCost)
		}
	}
}

func TestPredicateCountBounds(t *testing.T) {
	p := Default()
	p.MinPred = 2
	p.MaxPred = 3
	g := Generate(p)
	s := g.Schema
	for i := 0; i < s.NumAttrs(); i++ {
		a := s.Attr(core.AttrID(i))
		if a.IsSource() {
			continue
		}
		n := countPreds(a)
		if n < p.MinPred || n > p.MaxPred {
			t.Fatalf("%s has %d predicates, want [2,3]: %v", a.Name, n, a.Enabling)
		}
	}
}

// countPreds counts top-level predicates of a generated condition
// (generated conditions are a single predicate or one And/Or of predicates).
func countPreds(a *core.Attribute) int {
	switch n := a.Enabling.(type) {
	case expr.And:
		return len(n.Exprs)
	case expr.Or:
		return len(n.Exprs)
	default:
		return 1
	}
}

func TestDeterministicForSeed(t *testing.T) {
	p := Default()
	a := Generate(p)
	b := Generate(p)
	if a.Schema.NumAttrs() != b.Schema.NumAttrs() {
		t.Fatal("nondeterministic size")
	}
	for i := 0; i < a.Schema.NumAttrs(); i++ {
		x, y := a.Schema.Attr(core.AttrID(i)), b.Schema.Attr(core.AttrID(i))
		if x.Name != y.Name || x.Cost() != y.Cost() {
			t.Fatal("nondeterministic attributes")
		}
		if (x.Enabling == nil) != (y.Enabling == nil) {
			t.Fatal("nondeterministic conditions")
		}
		if x.Enabling != nil && x.Enabling.String() != y.Enabling.String() {
			t.Fatalf("nondeterministic condition for %s", x.Name)
		}
	}
	// Different seed differs somewhere.
	p.Seed = 1234
	c := Generate(p)
	same := true
	for i := 0; i < a.Schema.NumAttrs(); i++ {
		x, y := a.Schema.Attr(core.AttrID(i)), c.Schema.Attr(core.AttrID(i))
		if x.Cost() != y.Cost() || (x.Enabling != nil && x.Enabling.String() != y.Enabling.String()) {
			same = false
			break
		}
	}
	if same {
		t.Error("different seeds produced identical schemas (suspicious)")
	}
}

func TestAddedDataEdges(t *testing.T) {
	p := Default()
	p.PctAddedDataEdges = 25
	g := Generate(p) // must build a valid acyclic schema
	base := Default()
	edges := func(s *core.Schema) int {
		total := 0
		for i := 0; i < s.NumAttrs(); i++ {
			total += len(s.DataInputs(core.AttrID(i)))
		}
		return total
	}
	if edges(g.Schema) <= edges(Generate(base).Schema) {
		t.Error("positive PctAddedDataEdges should add data edges")
	}
}

func TestDeletedDataEdges(t *testing.T) {
	p := Default()
	p.PctAddedDataEdges = -25
	g := Generate(p) // must still be valid; deleted edges re-root to src
	if g.Schema == nil {
		t.Fatal("nil schema")
	}
}

// End-to-end: every strategy executes generated schemas to completion and
// matches the oracle.
func TestGeneratedSchemasExecuteCorrectly(t *testing.T) {
	for _, rows := range []int{1, 4, 16} {
		for _, pct := range []int{10, 75} {
			p := Default()
			p.NbRows = rows
			p.PctEnabled = pct
			p.Seed = int64(rows*100 + pct)
			g := Generate(p)
			oracle := snapshot.Complete(g.Schema, g.SourceValues())
			for _, code := range []string{"NCC0", "PCE0", "PC" + "E" + "100", "PSE100", "PSC40"} {
				res := engine.Run(g.Schema, g.SourceValues(), engine.MustParseStrategy(code))
				if res.Err != nil {
					t.Fatalf("rows=%d pct=%d %s: %v", rows, pct, code, res.Err)
				}
				if err := snapshot.CheckAgainstOracle(res.Snapshot, oracle); err != nil {
					t.Errorf("rows=%d pct=%d %s: %v", rows, pct, code, err)
				}
			}
		}
	}
}

// Work of a conservative non-propagating run must not exceed the total
// enabled work plus nothing (it never executes disabled attributes), and
// propagation must not do more work than naive.
func TestWorkBounds(t *testing.T) {
	p := Default()
	p.PctEnabled = 50
	g := Generate(p)
	naive := engine.Run(g.Schema, g.SourceValues(), engine.MustParseStrategy("NCE0"))
	prop := engine.Run(g.Schema, g.SourceValues(), engine.MustParseStrategy("PCE0"))
	if naive.Err != nil || prop.Err != nil {
		t.Fatal(naive.Err, prop.Err)
	}
	if naive.Work > g.EnabledWork {
		t.Errorf("naive conservative work %d exceeds enabled work %d", naive.Work, g.EnabledWork)
	}
	if prop.Work > naive.Work {
		t.Errorf("propagation work %d exceeds naive %d", prop.Work, naive.Work)
	}
	if prop.Work <= 0 {
		t.Error("propagation should still do some work")
	}
}
