// Package gen generates decision flow schema patterns, reproducing the
// mechanism of the paper's §5 "Experiment Environment" (Table 1, Figure 4).
//
// A pattern starts from a dataflow *skeleton*: one source attribute,
// nb_nodes internal attributes arranged in nb_rows rows of
// nb_nodes/nb_rows columns, and one target attribute. The source feeds the
// first node of every row, each node feeds its successor in the row, and
// the last node of every row feeds the target. Varying nb_rows for fixed
// nb_nodes varies the schema's diameter and hence its potential
// parallelism.
//
// On top of the skeleton, each non-source attribute receives an enabling
// condition: a conjunction or disjunction of [Min_pred, Max_pred]
// predicates over *enabler* attributes (a %enabler-sized subset of the
// internal nodes, plus the source) at most %enabling_hop columns back.
// Task costs are drawn uniformly from the module-cost range.
//
// Scripted truth. The paper requires that "at the end of the execution
// %enabled percent of the enabling conditions will be true". The generator
// achieves this *exactly*: it first samples the desired enabled set (the
// target is always enabled), derives every attribute's final value in the
// complete snapshot (its scripted value if enabled, ⟂ if disabled), and
// then synthesizes each predicate to have a chosen truth value over those
// final values — comparisons against the known value for live enablers,
// isnull/notnull for disabled ones. The resulting schema's complete
// snapshot provably realizes the requested %enabled, which the tests check
// against the declarative oracle.
package gen

import (
	"fmt"
	"math/rand"

	"repro/internal/core"
	"repro/internal/expr"
	"repro/internal/value"
)

// Params mirrors Table 1's schema-pattern dimensions.
type Params struct {
	// NbNodes is the number of internal nodes (Table 1: 64).
	NbNodes int
	// NbRows is the number of skeleton rows (Table 1: [1,16]).
	NbRows int
	// PctEnabled is the percentage of enabling conditions that are true in
	// the complete snapshot (Table 1: [10,100]).
	PctEnabled int
	// PctEnabler is the percentage of internal nodes whose values may be
	// used in enabling conditions (Table 1: 50).
	PctEnabler int
	// PctEnablingHop bounds the column distance of enabling edges, as a
	// percentage of the number of columns (Table 1: 50).
	PctEnablingHop int
	// MinPred and MaxPred bound the number of predicates per enabling
	// condition (Table 1: 1 and 4).
	MinPred, MaxPred int
	// PctAddedDataEdges adds (positive) or deletes (negative) data edges
	// relative to the skeleton, as a percentage of skeleton row edges
	// (Table 1: [-25,+25]; the headline experiments use 0).
	PctAddedDataEdges int
	// PctDataHop bounds the column distance of added data edges, as a
	// percentage of the number of columns (Table 1: 50).
	PctDataHop int
	// MinCost and MaxCost bound task costs in units of processing
	// (Table 1 module_cost: [1,5]).
	MinCost, MaxCost int
	// Seed fixes all random choices.
	Seed int64
}

// Default returns Table 1's fixed settings with the paper's most common
// varied values (nb_rows = 4, %enabled = 75).
func Default() Params {
	return Params{
		NbNodes:        64,
		NbRows:         4,
		PctEnabled:     75,
		PctEnabler:     50,
		PctEnablingHop: 50,
		MinPred:        1,
		MaxPred:        4,
		PctDataHop:     50,
		MinCost:        1,
		MaxCost:        5,
		Seed:           1,
	}
}

// validate panics on inconsistent parameters.
func (p Params) validate() {
	switch {
	case p.NbNodes < 1:
		panic("gen: NbNodes must be >= 1")
	case p.NbRows < 1 || p.NbRows > p.NbNodes:
		panic(fmt.Sprintf("gen: NbRows %d out of [1, NbNodes]", p.NbRows))
	case p.NbNodes%p.NbRows != 0:
		panic(fmt.Sprintf("gen: NbRows %d must divide NbNodes %d", p.NbRows, p.NbNodes))
	case p.PctEnabled < 0 || p.PctEnabled > 100:
		panic("gen: PctEnabled out of [0,100]")
	case p.PctEnabler < 0 || p.PctEnabler > 100:
		panic("gen: PctEnabler out of [0,100]")
	case p.MinPred < 1 || p.MaxPred < p.MinPred:
		panic("gen: bad predicate bounds")
	case p.MinCost < 1 || p.MaxCost < p.MinCost:
		panic("gen: bad cost bounds")
	case p.PctAddedDataEdges < -100:
		panic("gen: cannot delete more than all row edges")
	}
}

// Generated bundles a generated schema with its scripted ground truth.
type Generated struct {
	// Schema is the generated, validated decision flow.
	Schema *core.Schema
	// Params echoes the generation parameters.
	Params Params
	// Enabled maps each attribute name to its scripted enabled/disabled
	// fate in the complete snapshot (sources excluded).
	Enabled map[string]bool
	// EnabledCount is the number of scripted-enabled internal nodes.
	EnabledCount int
	// Columns is the number of skeleton columns (nb_nodes / nb_rows).
	Columns int
	// EnabledWork is the total cost of enabled non-source attributes — the
	// work a perfect conservative, non-propagating executor would perform.
	EnabledWork int
}

// SourceValues returns the source bindings every instance of a generated
// schema should run with.
func (g *Generated) SourceValues() map[string]value.Value {
	return map[string]value.Value{"src": value.Int(sourceValue)}
}

const sourceValue = 50 // scripted value of the source attribute

// nodeName returns the name of the internal node at (row, col), 0-based.
func nodeName(row, col int) string { return fmt.Sprintf("n_%d_%d", row, col) }

// Generate builds a schema pattern. It panics on invalid parameters
// (experiment configurations are code, not user input).
func Generate(p Params) *Generated {
	p.validate()
	rng := rand.New(rand.NewSource(p.Seed))
	cols := p.NbNodes / p.NbRows

	type node struct {
		name    string
		col     int // 1-based skeleton column; source=0, target=cols+1
		enabled bool
		val     value.Value // final value if enabled
		enabler bool
		inputs  []string
		cost    int
	}

	// Lay out internal nodes row-major.
	nodes := make([]*node, 0, p.NbNodes)
	byCol := make([][]*node, cols+2) // index by column for hop windows
	for r := 0; r < p.NbRows; r++ {
		for c := 0; c < cols; c++ {
			nd := &node{
				name: nodeName(r, c),
				col:  c + 1,
				val:  value.Int(int64(rng.Intn(100))),
				cost: p.MinCost + rng.Intn(p.MaxCost-p.MinCost+1),
			}
			if c == 0 {
				nd.inputs = []string{"src"}
			} else {
				nd.inputs = []string{nodeName(r, c-1)}
			}
			nodes = append(nodes, nd)
			byCol[nd.col] = append(byCol[nd.col], nd)
		}
	}
	target := &node{
		name:    "tgt",
		col:     cols + 1,
		val:     value.Int(int64(rng.Intn(100))),
		cost:    p.MinCost + rng.Intn(p.MaxCost-p.MinCost+1),
		enabled: true, // the target is always enabled: the flow must produce it
	}
	for r := 0; r < p.NbRows; r++ {
		target.inputs = append(target.inputs, nodeName(r, cols-1))
	}

	// Scripted enabled set: exactly round(pct/100 × NbNodes) internal nodes.
	enabledCount := (p.PctEnabled*p.NbNodes + 50) / 100
	perm := rng.Perm(p.NbNodes)
	for i := 0; i < enabledCount; i++ {
		nodes[perm[i]].enabled = true
	}

	// Enabler set: round(PctEnabler/100 × NbNodes) internal nodes.
	enablerCount := (p.PctEnabler*p.NbNodes + 50) / 100
	perm = rng.Perm(p.NbNodes)
	for i := 0; i < enablerCount; i++ {
		nodes[perm[i]].enabler = true
	}

	// finalVal reports an attribute's value in the complete snapshot.
	finalVal := func(name string) value.Value {
		if name == "src" {
			return value.Int(sourceValue)
		}
		for _, nd := range nodes {
			if nd.name == name {
				if nd.enabled {
					return nd.val
				}
				return value.Null
			}
		}
		panic("gen: unknown attribute " + name)
	}

	hop := p.PctEnablingHop * cols / 100
	if hop < 1 {
		hop = 1
	}
	// enablersInWindow lists candidate predicate subjects for a node at the
	// given column: enabler nodes in (col-hop, col), else the source.
	enablersInWindow := func(col int) []string {
		var out []string
		lo := col - hop
		if lo < 1 {
			lo = 1
		}
		for c := lo; c < col && c <= cols; c++ {
			for _, nd := range byCol[c] {
				if nd.enabler {
					out = append(out, nd.name)
				}
			}
		}
		if len(out) == 0 {
			out = []string{"src"}
		}
		return out
	}

	// makePred builds a predicate over subject whose truth in the complete
	// snapshot equals want.
	makePred := func(subject string, want bool) expr.Expr {
		v := finalVal(subject)
		if v.IsNull() {
			if want {
				return expr.IsNull{E: expr.Attr{Name: subject}}
			}
			return expr.Not{E: expr.IsNull{E: expr.Attr{Name: subject}}}
		}
		iv, _ := v.AsInt()
		// Randomize the comparison direction for variety.
		if rng.Intn(2) == 0 {
			// subject <= c : true iff c >= iv
			var c int64
			if want {
				c = iv + 1 + int64(rng.Intn(10))
			} else {
				c = iv - 1 - int64(rng.Intn(10))
			}
			return expr.Cmp{Op: expr.LE, L: expr.Attr{Name: subject}, R: expr.Const{Val: value.Int(c)}}
		}
		// subject > c : true iff c < iv
		var c int64
		if want {
			c = iv - 1 - int64(rng.Intn(10))
		} else {
			c = iv + 1 + int64(rng.Intn(10))
		}
		return expr.Cmp{Op: expr.GT, L: expr.Attr{Name: subject}, R: expr.Const{Val: value.Int(c)}}
	}

	// makeCond builds an enabling condition for a node at col with the
	// desired overall truth.
	makeCond := func(col int, want bool) expr.Expr {
		subjects := enablersInWindow(col)
		k := p.MinPred + rng.Intn(p.MaxPred-p.MinPred+1)
		preds := make([]expr.Expr, k)
		conj := rng.Intn(2) == 0
		// Decide per-predicate truths consistent with the overall goal.
		truths := make([]bool, k)
		if conj {
			for i := range truths {
				truths[i] = true
			}
			if !want {
				// At least one false conjunct; others random.
				falseAt := rng.Intn(k)
				for i := range truths {
					if i == falseAt {
						truths[i] = false
					} else {
						truths[i] = rng.Intn(2) == 0
					}
				}
			}
		} else {
			for i := range truths {
				truths[i] = false
			}
			if want {
				trueAt := rng.Intn(k)
				for i := range truths {
					if i == trueAt {
						truths[i] = true
					} else {
						truths[i] = rng.Intn(2) == 1
					}
				}
			}
		}
		for i := range preds {
			preds[i] = makePred(subjects[rng.Intn(len(subjects))], truths[i])
		}
		if k == 1 {
			return preds[0]
		}
		if conj {
			return expr.And{Exprs: preds}
		}
		return expr.Or{Exprs: preds}
	}

	// Data-edge additions/deletions relative to the skeleton's row edges.
	rowEdges := p.NbRows * (cols - 1)
	dataHop := p.PctDataHop * cols / 100
	if dataHop < 1 {
		dataHop = 1
	}
	if p.PctAddedDataEdges > 0 {
		extra := p.PctAddedDataEdges * rowEdges / 100
		for i := 0; i < extra; i++ {
			dst := nodes[rng.Intn(len(nodes))]
			lo := dst.col - dataHop
			if lo < 1 {
				lo = 1
			}
			if dst.col == 1 {
				continue // only the source precedes column 1
			}
			srcCol := lo + rng.Intn(dst.col-lo)
			cands := byCol[srcCol]
			from := cands[rng.Intn(len(cands))]
			dup := false
			for _, in := range dst.inputs {
				if in == from.name {
					dup = true
				}
			}
			if !dup {
				dst.inputs = append(dst.inputs, from.name)
			}
		}
	} else if p.PctAddedDataEdges < 0 {
		remove := -p.PctAddedDataEdges * rowEdges / 100
		for i := 0; i < remove; i++ {
			nd := nodes[rng.Intn(len(nodes))]
			if nd.col > 1 && len(nd.inputs) > 0 {
				// Replace the row edge with a direct source edge so the node
				// keeps a well-defined readiness trigger.
				nd.inputs = []string{"src"}
			}
		}
	}

	// Assemble the schema.
	b := core.NewBuilder(fmt.Sprintf("pattern-r%d-e%d-seed%d", p.NbRows, p.PctEnabled, p.Seed))
	b.Source("src")
	g := &Generated{
		Params:  p,
		Enabled: make(map[string]bool, p.NbNodes+1),
		Columns: cols,
	}
	for _, nd := range nodes {
		cond := makeCond(nd.col, nd.enabled)
		b.Foreign(nd.name, cond, nd.inputs, nd.cost, core.ConstCompute(nd.val))
		g.Enabled[nd.name] = nd.enabled
		if nd.enabled {
			g.EnabledCount++
			g.EnabledWork += nd.cost
		}
	}
	tcond := makeCond(target.col, true)
	b.Foreign(target.name, tcond, target.inputs, target.cost, core.ConstCompute(target.val))
	b.Target(target.name)
	g.Enabled[target.name] = true
	g.EnabledWork += target.cost

	s, err := b.Build()
	if err != nil {
		panic(fmt.Sprintf("gen: generated schema invalid: %v", err))
	}
	g.Schema = s
	return g
}
