package fault

import (
	"io/fs"
	"os"
)

// FS interposes failpoint sites on filesystem operations. The zero value
// is ready to use; with no sites armed every call is the real operation
// plus one atomic load.
type FS struct{}

// OpenFile is os.OpenFile behind a site.
func (FS) OpenFile(site, name string, flag int, perm fs.FileMode) (*File, error) {
	if err := Eval(site); err != nil {
		return nil, err
	}
	f, err := os.OpenFile(name, flag, perm)
	if err != nil {
		return nil, err
	}
	return &File{f: f}, nil
}

// Rename is os.Rename behind a site.
func (FS) Rename(site, oldpath, newpath string) error {
	if err := Eval(site); err != nil {
		return err
	}
	return os.Rename(oldpath, newpath)
}

// SyncDir opens dir and fsyncs it — the directory-entry durability step
// after a rename — behind a site.
func (FS) SyncDir(site, dir string) error {
	if err := Eval(site); err != nil {
		return err
	}
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	err = d.Sync()
	if cerr := d.Close(); err == nil {
		err = cerr
	}
	return err
}

// File wraps an *os.File with per-call failpoint sites on the mutating
// operations. Reads and metadata calls pass through unfaulted — the
// registry's damage handling is exercised by corrupting bytes, not by
// failing reads.
type File struct {
	f *os.File
}

// NewFile wraps an already-open file (boot-time initialization opens the
// log raw, then hands it over).
func NewFile(f *os.File) *File { return &File{f: f} }

// Write performs f.Write behind a site; partial/crashpartial actions
// write a real prefix first, so the bytes genuinely land in the page
// cache before the fault.
func (w *File) Write(site string, b []byte) (int, error) {
	return faultedWrite(site, b, w.f.Write)
}

// Sync performs f.Sync behind a site.
func (w *File) Sync(site string) error {
	if err := Eval(site); err != nil {
		return err
	}
	return w.f.Sync()
}

// Truncate performs f.Truncate behind a site.
func (w *File) Truncate(site string, size int64) error {
	if err := Eval(site); err != nil {
		return err
	}
	return w.f.Truncate(size)
}

func (w *File) Seek(offset int64, whence int) (int64, error) { return w.f.Seek(offset, whence) }
func (w *File) Close() error                                 { return w.f.Close() }
