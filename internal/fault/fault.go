// Package fault is the unified failpoint framework: named injection
// sites compiled into the serving hot paths (WAL file IO, dfbin conn
// IO, peer forwarding) that cost one atomic load when nothing is armed
// and become deterministic fault generators when a test — or the
// DFSD_FAILPOINTS environment variable — arms them.
//
// A site is just a string constant evaluated at the moment the real
// operation would run. An armed site carries a spec:
//
//	[N*]action[:arg]     fire once, on the Nth hit (default N=1)
//	[%N*]action[:arg]    fire on every Nth hit
//	action[:arg]         fire on every hit
//
// Actions:
//
//	error[:msg]    return an error wrapping ErrInjected
//	enospc         return an error wrapping syscall.ENOSPC
//	delay:dur      sleep dur (time.ParseDuration), then proceed
//	partial:N      IO sites: perform only the first N bytes, then error
//	               (reads return the short count — legal — writes return
//	               a short-write error); non-IO sites degrade to error
//	crash          write a marker to stderr and os.Exit(CrashExitCode)
//	crashpartial:N IO writes: write the first N bytes, then crash —
//	               a deterministic torn write; elsewhere same as crash
//	panic          panic at the site
//
// DFSD_FAILPOINTS is a comma-separated list of site=spec pairs, e.g.
//
//	DFSD_FAILPOINTS='wal.append.sync=error,wal.snapshot.rename=2*crash'
//
// The disarmed fast path is a single atomic.Int32 load against zero —
// no map lookup, no allocation — so the sites can live on hot paths
// (see BenchmarkServeCachedInstantFaultSites and the bench-guard
// baseline, which pin the overhead at zero).
package fault

import (
	"errors"
	"fmt"
	"os"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"syscall"
	"time"
)

// EnvVar arms failpoints at process start (see ArmFromEnv).
const EnvVar = "DFSD_FAILPOINTS"

// CrashExitCode is the exit status of a crash/crashpartial action. It is
// deliberately distinctive so harnesses can tell an injected crash from
// an ordinary failure.
const CrashExitCode = 86

// ErrInjected is the root of every error produced by the error/partial
// actions; errors.Is(err, ErrInjected) identifies an injected fault.
var ErrInjected = errors.New("fault: injected")

// Failpoint site names. Constants rather than ad-hoc strings so arming
// code and evaluation sites cannot drift apart silently.
const (
	SiteWALAppendWrite = "wal.append.write"
	SiteWALAppendSync  = "wal.append.sync"
	SiteWALSnapOpen    = "wal.snapshot.open"
	SiteWALSnapWrite   = "wal.snapshot.write"
	SiteWALSnapSync    = "wal.snapshot.sync"
	SiteWALSnapRename  = "wal.snapshot.rename"
	SiteWALSnapDirSync = "wal.snapshot.dirsync"
	SiteWALLogTruncate = "wal.log.truncate"
	SiteWALLogSync     = "wal.log.sync"

	SiteBinConnRead  = "binary.conn.read"
	SiteBinConnWrite = "binary.conn.write"

	SiteClientConnRead  = "client.conn.read"
	SiteClientConnWrite = "client.conn.write"

	SitePeerForwardSend = "peer.forward.send"
	SitePeerStatsDial   = "peer.stats.dial"

	SiteCaptureOpen        = "capture.open"
	SiteCaptureAppendWrite = "capture.append.write"
	SiteCaptureAppendSync  = "capture.append.sync"
)

const (
	actError = iota
	actENOSPC
	actDelay
	actPartial
	actCrash
	actCrashPartial
	actPanic
)

// spec is one parsed arming: what to do and when to trigger.
type spec struct {
	action int
	msg    string        // error: custom message
	n      int           // partial/crashpartial: byte prefix
	d      time.Duration // delay
	nth    uint64        // fire once, on this hit (0 = not one-shot)
	every  uint64        // fire on every Nth hit (0 = every hit)
}

// point is one armed site with its counters.
type point struct {
	site  string
	spec  spec
	hits  atomic.Uint64 // evaluations while armed
	fired atomic.Uint64 // evaluations that triggered the action
}

// strike counts a hit and reports whether the action fires this time.
func (p *point) strike() (spec, bool) {
	h := p.hits.Add(1)
	s := p.spec
	switch {
	case s.nth > 0:
		if h != s.nth {
			return s, false
		}
	case s.every > 0:
		if h%s.every != 0 {
			return s, false
		}
	}
	p.fired.Add(1)
	return s, true
}

var (
	// armedCount is the disarmed fast path: Eval loads it and returns
	// immediately when zero. It counts armed sites, not pending fires.
	armedCount atomic.Int32

	mu     sync.Mutex
	points map[string]*point
)

// Active reports whether any site is currently armed. Wrappers that cost
// something even when their site never fires (an interposed net.Conn
// defeating the writev fast path, say) consult it at construction time.
func Active() bool { return armedCount.Load() != 0 }

// Arm installs spec at site, replacing any previous arming (the hit
// counters restart). The spec grammar is documented on the package.
func Arm(site, specStr string) error {
	s, err := parseSpec(specStr)
	if err != nil {
		return fmt.Errorf("fault: arm %s: %w", site, err)
	}
	mu.Lock()
	defer mu.Unlock()
	if points == nil {
		points = make(map[string]*point)
	}
	if _, ok := points[site]; !ok {
		armedCount.Add(1)
	}
	points[site] = &point{site: site, spec: s}
	return nil
}

// Disarm removes the arming at site, if any. Hit counts are discarded
// with it.
func Disarm(site string) {
	mu.Lock()
	defer mu.Unlock()
	if _, ok := points[site]; ok {
		delete(points, site)
		armedCount.Add(-1)
	}
}

// Reset disarms every site. Tests that arm anything should defer it.
func Reset() {
	mu.Lock()
	defer mu.Unlock()
	armedCount.Add(-int32(len(points)))
	points = nil
}

// Hits reports how many times site was evaluated while armed and how
// many of those evaluations fired its action.
func Hits(site string) (hits, fired uint64) {
	mu.Lock()
	defer mu.Unlock()
	if p, ok := points[site]; ok {
		return p.hits.Load(), p.fired.Load()
	}
	return 0, 0
}

// Sites returns the currently armed site names, sorted.
func Sites() []string {
	mu.Lock()
	defer mu.Unlock()
	out := make([]string, 0, len(points))
	for s := range points {
		out = append(out, s)
	}
	sort.Strings(out)
	return out
}

// lookup finds the armed point for site, or nil. Only called after the
// fast path has seen a nonzero armedCount.
func lookup(site string) *point {
	mu.Lock()
	p := points[site]
	mu.Unlock()
	return p
}

// Eval is the plain (non-IO) evaluation: call it where an operation
// would run; a nil return means proceed. Disarmed cost is one atomic
// load. partial degrades to error here, crashpartial to crash.
func Eval(site string) error {
	if armedCount.Load() == 0 {
		return nil
	}
	p := lookup(site)
	if p == nil {
		return nil
	}
	s, fire := p.strike()
	if !fire {
		return nil
	}
	switch s.action {
	case actDelay:
		time.Sleep(s.d)
		return nil
	case actCrash, actCrashPartial:
		crash(site)
	case actPanic:
		panic("fault: panic at " + site)
	}
	return basicErr(site, s)
}

// basicErr builds the error/enospc/partial error for site.
func basicErr(site string, s spec) error {
	switch s.action {
	case actENOSPC:
		return fmt.Errorf("fault: %s: %w", site, syscall.ENOSPC)
	default:
		msg := s.msg
		if msg == "" {
			msg = "injected fault"
		}
		return fmt.Errorf("fault: %s: %s: %w", site, msg, ErrInjected)
	}
}

// crash is the crash action: unmistakable marker on stderr, then a hard
// exit. The torture harness matches both the marker and the exit code.
func crash(site string) {
	fmt.Fprintf(os.Stderr, "fault: crash at %s (exit %d)\n", site, CrashExitCode)
	os.Exit(CrashExitCode)
}

// faultedWrite interposes a write site: op performs the real write.
// partial writes a prefix and reports a short write; crashpartial
// writes a prefix and crashes — the deterministic torn write the
// torture harness uses; delay sleeps and proceeds.
func faultedWrite(site string, b []byte, op func([]byte) (int, error)) (int, error) {
	if armedCount.Load() == 0 {
		return op(b)
	}
	p := lookup(site)
	if p == nil {
		return op(b)
	}
	s, fire := p.strike()
	if !fire {
		return op(b)
	}
	switch s.action {
	case actDelay:
		time.Sleep(s.d)
		return op(b)
	case actPartial, actCrashPartial:
		n := s.n
		if n > len(b) {
			n = len(b)
		}
		wrote := 0
		if n > 0 {
			var err error
			wrote, err = op(b[:n])
			if err != nil {
				return wrote, err
			}
		}
		if s.action == actCrashPartial {
			crash(site)
		}
		return wrote, fmt.Errorf("fault: %s: short write %d of %d: %w", site, wrote, len(b), ErrInjected)
	case actCrash:
		crash(site)
	case actPanic:
		panic("fault: panic at " + site)
	}
	return 0, basicErr(site, s)
}

// faultedRead interposes a read site. partial is a legal short read (the
// prefix of what the underlying read returned); error/enospc refuse the
// read entirely.
func faultedRead(site string, b []byte, op func([]byte) (int, error)) (int, error) {
	if armedCount.Load() == 0 {
		return op(b)
	}
	p := lookup(site)
	if p == nil {
		return op(b)
	}
	s, fire := p.strike()
	if !fire {
		return op(b)
	}
	switch s.action {
	case actDelay:
		time.Sleep(s.d)
		return op(b)
	case actPartial:
		n := s.n
		if n > len(b) {
			n = len(b)
		}
		if n == 0 {
			n = 1
		}
		return op(b[:n])
	case actCrash, actCrashPartial:
		crash(site)
	case actPanic:
		panic("fault: panic at " + site)
	}
	return 0, basicErr(site, s)
}

// parseSpec parses the [N*|%N*]action[:arg] grammar.
func parseSpec(raw string) (spec, error) {
	var s spec
	body := raw
	if i := strings.IndexByte(body, '*'); i >= 0 {
		trig := body[:i]
		body = body[i+1:]
		every := strings.HasPrefix(trig, "%")
		trig = strings.TrimPrefix(trig, "%")
		n, err := strconv.ParseUint(trig, 10, 64)
		if err != nil || n == 0 {
			return s, fmt.Errorf("bad trigger count %q in %q", trig, raw)
		}
		if every {
			s.every = n
		} else {
			s.nth = n
		}
	}
	action, arg := body, ""
	if i := strings.IndexByte(body, ':'); i >= 0 {
		action, arg = body[:i], body[i+1:]
	}
	switch action {
	case "error":
		s.action, s.msg = actError, arg
	case "enospc":
		s.action = actENOSPC
	case "delay":
		d, err := time.ParseDuration(arg)
		if err != nil {
			return s, fmt.Errorf("bad delay %q in %q", arg, raw)
		}
		s.action, s.d = actDelay, d
	case "partial", "crashpartial":
		n, err := strconv.Atoi(arg)
		if err != nil || n < 0 {
			return s, fmt.Errorf("bad byte count %q in %q", arg, raw)
		}
		s.n = n
		if action == "partial" {
			s.action = actPartial
		} else {
			s.action = actCrashPartial
		}
	case "crash":
		s.action = actCrash
	case "panic":
		s.action = actPanic
	default:
		return s, fmt.Errorf("unknown action %q in %q", action, raw)
	}
	return s, nil
}

// ArmFromEnv arms every site=spec pair in DFSD_FAILPOINTS and returns
// the armed site names (nil when the variable is empty). A malformed
// entry is an error and nothing further is armed — a daemon must not
// half-arm a fault plan.
func ArmFromEnv() ([]string, error) {
	raw := os.Getenv(EnvVar)
	if raw == "" {
		return nil, nil
	}
	var armed []string
	for _, pair := range strings.Split(raw, ",") {
		pair = strings.TrimSpace(pair)
		if pair == "" {
			continue
		}
		site, specStr, ok := strings.Cut(pair, "=")
		if !ok {
			return armed, fmt.Errorf("fault: %s: %q is not site=spec", EnvVar, pair)
		}
		if err := Arm(strings.TrimSpace(site), strings.TrimSpace(specStr)); err != nil {
			return armed, err
		}
		armed = append(armed, strings.TrimSpace(site))
	}
	return armed, nil
}
