package fault

import "net"

// Conn interposes read/write failpoint sites on a net.Conn. Wrapping a
// *net.TCPConn hides it from net.Buffers' writev fast path, so callers
// wrap only when Active() reports some site armed at the moment the
// connection is established — the disarmed hot path keeps the raw conn.
type Conn struct {
	net.Conn
	ReadSite  string
	WriteSite string
}

// WrapConn interposes the sites over nc.
func WrapConn(nc net.Conn, readSite, writeSite string) *Conn {
	return &Conn{Conn: nc, ReadSite: readSite, WriteSite: writeSite}
}

func (c *Conn) Read(b []byte) (int, error) {
	return faultedRead(c.ReadSite, b, c.Conn.Read)
}

func (c *Conn) Write(b []byte) (int, error) {
	return faultedWrite(c.WriteSite, b, c.Conn.Write)
}
