package fault

import (
	"bytes"
	"errors"
	"net"
	"strings"
	"syscall"
	"testing"
	"time"
)

func TestEvalDisarmedIsNil(t *testing.T) {
	Reset()
	if err := Eval(SiteWALAppendSync); err != nil {
		t.Fatalf("disarmed Eval = %v", err)
	}
}

func TestArmErrorAndDisarm(t *testing.T) {
	t.Cleanup(Reset)
	if err := Arm(SiteWALAppendSync, "error:disk on fire"); err != nil {
		t.Fatal(err)
	}
	err := Eval(SiteWALAppendSync)
	if !errors.Is(err, ErrInjected) || !strings.Contains(err.Error(), "disk on fire") {
		t.Fatalf("Eval = %v, want injected with message", err)
	}
	if hits, fired := Hits(SiteWALAppendSync); hits != 1 || fired != 1 {
		t.Fatalf("hits=%d fired=%d, want 1/1", hits, fired)
	}
	// Other sites stay clean while one is armed.
	if err := Eval(SiteWALSnapRename); err != nil {
		t.Fatalf("unarmed sibling site = %v", err)
	}
	Disarm(SiteWALAppendSync)
	if err := Eval(SiteWALAppendSync); err != nil {
		t.Fatalf("post-disarm Eval = %v", err)
	}
	if Active() {
		t.Fatal("Active() after last disarm")
	}
}

func TestENOSPCIsTyped(t *testing.T) {
	t.Cleanup(Reset)
	if err := Arm(SiteWALAppendWrite, "enospc"); err != nil {
		t.Fatal(err)
	}
	err := Eval(SiteWALAppendWrite)
	if !errors.Is(err, syscall.ENOSPC) {
		t.Fatalf("Eval = %v, want errors.Is ENOSPC", err)
	}
}

func TestOneShotNthTrigger(t *testing.T) {
	t.Cleanup(Reset)
	if err := Arm(SiteWALAppendSync, "3*error"); err != nil {
		t.Fatal(err)
	}
	for i := 1; i <= 5; i++ {
		err := Eval(SiteWALAppendSync)
		if (i == 3) != (err != nil) {
			t.Fatalf("hit %d: err = %v, want fire only on hit 3", i, err)
		}
	}
	if hits, fired := Hits(SiteWALAppendSync); hits != 5 || fired != 1 {
		t.Fatalf("hits=%d fired=%d, want 5/1", hits, fired)
	}
}

func TestEveryNthTrigger(t *testing.T) {
	t.Cleanup(Reset)
	if err := Arm(SiteBinConnWrite, "%2*error"); err != nil {
		t.Fatal(err)
	}
	var fires int
	for i := 1; i <= 6; i++ {
		if Eval(SiteBinConnWrite) != nil {
			fires++
		}
	}
	if fires != 3 {
		t.Fatalf("%d fires over 6 hits with %%2*, want 3", fires)
	}
}

func TestDelayAction(t *testing.T) {
	t.Cleanup(Reset)
	if err := Arm(SitePeerStatsDial, "delay:30ms"); err != nil {
		t.Fatal(err)
	}
	start := time.Now()
	if err := Eval(SitePeerStatsDial); err != nil {
		t.Fatalf("delay returned error: %v", err)
	}
	if d := time.Since(start); d < 25*time.Millisecond {
		t.Fatalf("delay slept %v, want ~30ms", d)
	}
}

func TestPartialWrite(t *testing.T) {
	t.Cleanup(Reset)
	if err := Arm(SiteBinConnWrite, "partial:4"); err != nil {
		t.Fatal(err)
	}
	var sink bytes.Buffer
	n, err := faultedWrite(SiteBinConnWrite, []byte("0123456789"), sink.Write)
	if n != 4 || !errors.Is(err, ErrInjected) {
		t.Fatalf("partial write = (%d, %v), want (4, injected)", n, err)
	}
	if sink.String() != "0123" {
		t.Fatalf("prefix on the wire = %q, want the first 4 bytes", sink.String())
	}
}

func TestPartialRead(t *testing.T) {
	t.Cleanup(Reset)
	if err := Arm(SiteClientConnRead, "partial:3"); err != nil {
		t.Fatal(err)
	}
	src := bytes.NewReader([]byte("abcdef"))
	buf := make([]byte, 6)
	n, err := faultedRead(SiteClientConnRead, buf, src.Read)
	if n != 3 || err != nil {
		t.Fatalf("partial read = (%d, %v), want legal short read of 3", n, err)
	}
	if string(buf[:n]) != "abc" {
		t.Fatalf("read %q, want abc", buf[:n])
	}
}

func TestConnWrapper(t *testing.T) {
	t.Cleanup(Reset)
	a, b := net.Pipe()
	defer a.Close()
	defer b.Close()
	fc := WrapConn(a, SiteClientConnRead, SiteClientConnWrite)
	if err := Arm(SiteClientConnWrite, "error"); err != nil {
		t.Fatal(err)
	}
	if _, err := fc.Write([]byte("x")); !errors.Is(err, ErrInjected) {
		t.Fatalf("wrapped conn write = %v, want injected", err)
	}
}

func TestParseSpecErrors(t *testing.T) {
	for _, bad := range []string{"", "bogus", "0*error", "x*error", "delay:soon", "partial:-1", "partial:x"} {
		if _, err := parseSpec(bad); err == nil {
			t.Errorf("parseSpec(%q) accepted", bad)
		}
	}
}

func TestArmFromEnv(t *testing.T) {
	t.Cleanup(Reset)
	t.Setenv(EnvVar, "wal.append.sync=error, binary.conn.write=2*partial:8")
	armed, err := ArmFromEnv()
	if err != nil {
		t.Fatal(err)
	}
	if len(armed) != 2 {
		t.Fatalf("armed %v, want 2 sites", armed)
	}
	if err := Eval(SiteWALAppendSync); !errors.Is(err, ErrInjected) {
		t.Fatalf("env-armed site = %v", err)
	}

	t.Setenv(EnvVar, "justasite")
	if _, err := ArmFromEnv(); err == nil {
		t.Fatal("malformed env accepted")
	}
	t.Setenv(EnvVar, "")
	if armed, err := ArmFromEnv(); err != nil || armed != nil {
		t.Fatalf("empty env = (%v, %v), want nil/nil", armed, err)
	}
}

// TestDisarmedZeroAlloc is the overhead contract: with nothing armed,
// an Eval at a hot-path site is one atomic load and zero allocations.
// BenchmarkServeCachedInstantFaultSites + bench-guard pin the same
// property end to end through the serving path.
func TestDisarmedZeroAlloc(t *testing.T) {
	Reset()
	allocs := testing.AllocsPerRun(1000, func() {
		if err := Eval(SiteWALAppendSync); err != nil {
			t.Fatal(err)
		}
		if err := Eval(SiteBinConnWrite); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Fatalf("disarmed Eval allocates %.1f per run, want 0", allocs)
	}
}

func BenchmarkFaultDisarmed(b *testing.B) {
	Reset()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if err := Eval(SiteWALAppendSync); err != nil {
			b.Fatal(err)
		}
	}
}
