// Package trace records decision flow executions as the "series of
// snapshots" of the paper's §3: a timestamped log of every attribute state
// transition, task launch and completion. Traces serve three purposes:
//
//   - debugging and teaching: Render prints a readable timeline of an
//     execution, making eagerness, speculation and waste visible;
//   - verification: Check validates the trace against the Figure 3
//     automaton and the monotonicity property (attributes never leave a
//     stable state, values are assigned at most once);
//   - analytics: traces feed the mining package's cross-execution
//     reporting.
package trace

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/snapshot"
)

// Kind classifies trace events.
type Kind uint8

const (
	// Transition is an attribute state change.
	Transition Kind = iota
	// Launch is a foreign task submitted to the database.
	Launch
	// Complete is a foreign task result arriving (possibly discarded).
	Complete
	// SynthesisRun is a synthesis task executed locally.
	SynthesisRun
	// Terminal marks the instance reaching a terminal snapshot.
	Terminal
)

// String names the event kind.
func (k Kind) String() string {
	switch k {
	case Transition:
		return "transition"
	case Launch:
		return "launch"
	case Complete:
		return "complete"
	case SynthesisRun:
		return "synthesis"
	case Terminal:
		return "terminal"
	default:
		return fmt.Sprintf("Kind(%d)", uint8(k))
	}
}

// Event is one entry of a trace.
type Event struct {
	// T is the virtual time of the event.
	T float64
	// Kind classifies the event.
	Kind Kind
	// Attr is the attribute involved (NoAttr for Terminal).
	Attr core.AttrID
	// From and To are set for Transition events.
	From, To snapshot.State
	// Cost is set for Launch events (units of processing).
	Cost int
	// Speculative marks launches made while the enabling condition was
	// still undetermined, and completions whose results were discarded.
	Speculative bool
	// Discarded marks Complete events whose result was thrown away.
	Discarded bool
}

// Trace is the recorded event log of one instance.
type Trace struct {
	Schema *core.Schema
	Events []Event
}

// Recorder captures a trace through engine.Hooks. Use NewRecorder, pass
// Hooks() to the engine, then read Trace after the run.
type Recorder struct {
	tr Trace
}

// NewRecorder creates a recorder for instances of the given schema.
func NewRecorder(s *core.Schema) *Recorder {
	return &Recorder{tr: Trace{Schema: s}}
}

// Hooks returns the engine hooks that feed this recorder.
func (r *Recorder) Hooks() engine.Hooks {
	return engine.Hooks{
		OnTransition: func(t float64, id core.AttrID, from, to snapshot.State) {
			r.tr.Events = append(r.tr.Events, Event{T: t, Kind: Transition, Attr: id, From: from, To: to})
		},
		OnLaunch: func(t float64, id core.AttrID, cost int, speculative bool) {
			r.tr.Events = append(r.tr.Events, Event{T: t, Kind: Launch, Attr: id, Cost: cost, Speculative: speculative})
		},
		OnComplete: func(t float64, id core.AttrID, discarded bool) {
			r.tr.Events = append(r.tr.Events, Event{T: t, Kind: Complete, Attr: id, Discarded: discarded})
		},
		OnSynthesis: func(t float64, id core.AttrID) {
			r.tr.Events = append(r.tr.Events, Event{T: t, Kind: SynthesisRun, Attr: id})
		},
		OnTerminal: func(t float64) {
			r.tr.Events = append(r.tr.Events, Event{T: t, Kind: Terminal, Attr: core.NoAttr})
		},
	}
}

// Trace returns the recorded trace.
func (r *Recorder) Trace() *Trace { return &r.tr }

// Check validates the trace against the execution model:
//
//   - every Transition is legal per the Figure 3 automaton;
//   - no attribute transitions after reaching a stable state;
//   - every non-speculative Launch happens in READY+ENABLED, every
//     speculative one in READY;
//   - at most one Launch per attribute (queries are never re-issued);
//   - events are time-ordered.
func (t *Trace) Check() error {
	state := make(map[core.AttrID]snapshot.State)
	launched := make(map[core.AttrID]bool)
	lastT := 0.0
	for i, e := range t.Events {
		if e.T < lastT {
			return fmt.Errorf("trace: event %d at t=%v before t=%v", i, e.T, lastT)
		}
		lastT = e.T
		switch e.Kind {
		case Transition:
			cur, ok := state[e.Attr]
			if !ok {
				cur = snapshot.Uninitialized
			}
			if cur != e.From {
				return fmt.Errorf("trace: event %d: %s transitions from %v but was %v",
					i, t.name(e.Attr), e.From, cur)
			}
			if cur.Stable() {
				return fmt.Errorf("trace: event %d: %s transitions out of stable %v",
					i, t.name(e.Attr), cur)
			}
			if !snapshot.Allowed(e.From, e.To) {
				return fmt.Errorf("trace: event %d: illegal %v -> %v for %s",
					i, e.From, e.To, t.name(e.Attr))
			}
			state[e.Attr] = e.To
		case Launch:
			if launched[e.Attr] {
				return fmt.Errorf("trace: event %d: %s launched twice", i, t.name(e.Attr))
			}
			launched[e.Attr] = true
			st := state[e.Attr]
			if e.Speculative && st != snapshot.Ready {
				return fmt.Errorf("trace: event %d: speculative launch of %s in %v",
					i, t.name(e.Attr), st)
			}
			if !e.Speculative && st != snapshot.ReadyEnabled {
				return fmt.Errorf("trace: event %d: launch of %s in %v", i, t.name(e.Attr), st)
			}
		case Complete:
			if !launched[e.Attr] {
				return fmt.Errorf("trace: event %d: completion of unlaunched %s", i, t.name(e.Attr))
			}
		}
	}
	return nil
}

func (t *Trace) name(id core.AttrID) string {
	if id == core.NoAttr {
		return "<none>"
	}
	return t.Schema.Attr(id).Name
}

// Stats summarizes a trace.
type Stats struct {
	Transitions   int
	Launches      int
	Speculative   int
	Discarded     int
	SynthesisRuns int
	Duration      float64
}

// Stats computes summary statistics.
func (t *Trace) Stats() Stats {
	var s Stats
	for _, e := range t.Events {
		switch e.Kind {
		case Transition:
			s.Transitions++
		case Launch:
			s.Launches++
			if e.Speculative {
				s.Speculative++
			}
		case Complete:
			if e.Discarded {
				s.Discarded++
			}
		case SynthesisRun:
			s.SynthesisRuns++
		case Terminal:
			s.Duration = e.T
		}
	}
	return s
}

// Render prints the trace as a timeline, one line per event, grouped by
// time.
func (t *Trace) Render() string {
	var sb strings.Builder
	for _, e := range t.Events {
		fmt.Fprintf(&sb, "t=%-8.4g ", e.T)
		switch e.Kind {
		case Transition:
			fmt.Fprintf(&sb, "%-20s %v -> %v", t.name(e.Attr), e.From, e.To)
		case Launch:
			tag := ""
			if e.Speculative {
				tag = " (speculative)"
			}
			fmt.Fprintf(&sb, "%-20s launch cost=%d%s", t.name(e.Attr), e.Cost, tag)
		case Complete:
			tag := ""
			if e.Discarded {
				tag = " (discarded)"
			}
			fmt.Fprintf(&sb, "%-20s complete%s", t.name(e.Attr), tag)
		case SynthesisRun:
			fmt.Fprintf(&sb, "%-20s synthesized", t.name(e.Attr))
		case Terminal:
			fmt.Fprintf(&sb, "%-20s", "** terminal snapshot **")
		}
		sb.WriteByte('\n')
	}
	return sb.String()
}

// ByAttr returns the events touching one attribute, in order.
func (t *Trace) ByAttr(name string) []Event {
	a, ok := t.Schema.Lookup(name)
	if !ok {
		return nil
	}
	var out []Event
	for _, e := range t.Events {
		if e.Attr == a.ID() {
			out = append(out, e)
		}
	}
	return out
}

// FinalStates reconstructs each attribute's last observed state, sorted by
// attribute name (attributes never observed are omitted).
func (t *Trace) FinalStates() map[string]snapshot.State {
	out := map[string]snapshot.State{}
	for _, e := range t.Events {
		if e.Kind == Transition {
			out[t.name(e.Attr)] = e.To
		}
	}
	return out
}

// SortedNames returns the attribute names present in FinalStates, sorted.
func SortedNames(m map[string]snapshot.State) []string {
	out := make([]string, 0, len(m))
	for n := range m {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}
