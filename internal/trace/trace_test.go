package trace

import (
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/expr"
	"repro/internal/gen"
	"repro/internal/sim"
	"repro/internal/simdb"
	"repro/internal/snapshot"
	"repro/internal/value"
)

// specFlow: b launches speculatively; a decides b's fate.
func specFlow(t testing.TB, aVal int64) *core.Schema {
	t.Helper()
	return core.NewBuilder("spec").
		Source("src").
		Foreign("a", expr.TrueExpr, []string{"src"}, 2, core.ConstCompute(value.Int(aVal))).
		Foreign("b", expr.MustParse("a > 0"), []string{"src"}, 3, core.ConstCompute(value.Int(7))).
		SynthesisExpr("s", expr.TrueExpr, expr.MustParse("coalesce(b, 0)")).
		Foreign("tgt", expr.TrueExpr, []string{"s"}, 1, core.ConstCompute(value.Int(9))).
		Target("tgt").
		MustBuild()
}

// record runs one instance with a recorder attached.
func record(t testing.TB, s *core.Schema, code string) (*Trace, *engine.Result) {
	t.Helper()
	rec := NewRecorder(s)
	sm := sim.New()
	e := &engine.Engine{
		Sim:      sm,
		DB:       &simdb.Unbounded{S: sm},
		Strategy: engine.MustParseStrategy(code),
		Hooks:    rec.Hooks(),
	}
	res := e.Start(s, nil, nil)
	sm.Run()
	if res.Err != nil {
		t.Fatal(res.Err)
	}
	return rec.Trace(), res
}

func TestKindString(t *testing.T) {
	for k, want := range map[Kind]string{
		Transition: "transition", Launch: "launch", Complete: "complete",
		SynthesisRun: "synthesis", Terminal: "terminal", Kind(9): "Kind(9)",
	} {
		if k.String() != want {
			t.Errorf("Kind(%d) = %q", k, k.String())
		}
	}
}

func TestTraceCapturesLifecycle(t *testing.T) {
	tr, res := record(t, specFlow(t, 5), "PSE100")
	if err := tr.Check(); err != nil {
		t.Fatal(err)
	}
	st := tr.Stats()
	if st.Launches != res.Launched {
		t.Errorf("trace launches %d != result %d", st.Launches, res.Launched)
	}
	if st.SynthesisRuns != res.SynthesisRuns {
		t.Errorf("trace synthesis %d != result %d", st.SynthesisRuns, res.SynthesisRuns)
	}
	if st.Duration != res.Elapsed {
		t.Errorf("trace duration %v != result elapsed %v", st.Duration, res.Elapsed)
	}
	if st.Transitions == 0 {
		t.Error("no transitions recorded")
	}
	// b launched speculatively (condition undetermined at t=0).
	if st.Speculative != 1 {
		t.Errorf("speculative launches = %d, want 1", st.Speculative)
	}
	if st.Discarded != 0 {
		t.Errorf("discards = %d, want 0 (condition came true)", st.Discarded)
	}
}

func TestTraceRecordsDiscard(t *testing.T) {
	tr, res := record(t, specFlow(t, -1), "PSE100")
	if err := tr.Check(); err != nil {
		t.Fatal(err)
	}
	st := tr.Stats()
	if st.Discarded != 1 {
		t.Errorf("discards = %d, want 1 (b disabled mid-flight)", st.Discarded)
	}
	if res.WastedWork == 0 {
		t.Error("result should report wasted work")
	}
	// b's event sequence: READY, launch(spec), DISABLED, complete(discarded).
	events := tr.ByAttr("b")
	var kinds []string
	for _, e := range events {
		if e.Kind == Transition {
			kinds = append(kinds, e.To.String())
		} else {
			kinds = append(kinds, e.Kind.String())
		}
	}
	want := []string{"READY", "launch", "DISABLED", "complete"}
	if len(kinds) != len(want) {
		t.Fatalf("b events = %v, want %v", kinds, want)
	}
	for i := range want {
		if kinds[i] != want[i] {
			t.Fatalf("b events = %v, want %v", kinds, want)
		}
	}
}

func TestTraceFinalStatesMatchSnapshot(t *testing.T) {
	s := specFlow(t, 5)
	tr, res := record(t, s, "PCE100")
	finals := tr.FinalStates()
	for _, name := range SortedNames(finals) {
		id := s.MustLookup(name).ID()
		if res.Snapshot.State(id) != finals[name] {
			t.Errorf("%s: trace final %v != snapshot %v", name, finals[name], res.Snapshot.State(id))
		}
	}
}

func TestRenderReadable(t *testing.T) {
	tr, _ := record(t, specFlow(t, -1), "PSE100")
	out := tr.Render()
	for _, want := range []string{"launch cost=3 (speculative)", "complete (discarded)", "terminal snapshot"} {
		if !strings.Contains(out, want) {
			t.Errorf("render missing %q:\n%s", want, out)
		}
	}
}

func TestCheckDetectsBadTraces(t *testing.T) {
	s := specFlow(t, 5)
	a := s.MustLookup("a").ID()
	cases := []struct {
		name   string
		events []Event
		want   string
	}{
		{"time going backwards", []Event{
			{T: 5, Kind: Transition, Attr: a, From: snapshot.Uninitialized, To: snapshot.Ready},
			{T: 1, Kind: Transition, Attr: a, From: snapshot.Ready, To: snapshot.ReadyEnabled},
		}, "before"},
		{"wrong from-state", []Event{
			{T: 0, Kind: Transition, Attr: a, From: snapshot.Ready, To: snapshot.ReadyEnabled},
		}, "but was"},
		{"illegal transition", []Event{
			{T: 0, Kind: Transition, Attr: a, From: snapshot.Uninitialized, To: snapshot.Enabled},
			{T: 1, Kind: Transition, Attr: a, From: snapshot.Enabled, To: snapshot.Disabled},
		}, "illegal"},
		{"transition out of stable", []Event{
			{T: 0, Kind: Transition, Attr: a, From: snapshot.Uninitialized, To: snapshot.Disabled},
			{T: 1, Kind: Transition, Attr: a, From: snapshot.Disabled, To: snapshot.Disabled},
		}, "stable"},
		{"double launch", []Event{
			{T: 0, Kind: Transition, Attr: a, From: snapshot.Uninitialized, To: snapshot.ReadyEnabled},
			{T: 0, Kind: Launch, Attr: a, Cost: 1},
			{T: 1, Kind: Launch, Attr: a, Cost: 1},
		}, "twice"},
		{"speculative launch while enabled", []Event{
			{T: 0, Kind: Transition, Attr: a, From: snapshot.Uninitialized, To: snapshot.ReadyEnabled},
			{T: 0, Kind: Launch, Attr: a, Cost: 1, Speculative: true},
		}, "speculative launch"},
		{"launch before ready", []Event{
			{T: 0, Kind: Launch, Attr: a, Cost: 1},
		}, "launch of"},
		{"completion without launch", []Event{
			{T: 0, Kind: Complete, Attr: a},
		}, "unlaunched"},
	}
	for _, c := range cases {
		tr := &Trace{Schema: s, Events: c.events}
		err := tr.Check()
		if err == nil || !strings.Contains(err.Error(), c.want) {
			t.Errorf("%s: err = %v, want containing %q", c.name, err, c.want)
		}
	}
}

// Every strategy produces automaton-valid traces on generated patterns.
func TestGeneratedTracesAlwaysValid(t *testing.T) {
	p := gen.Default()
	p.NbNodes = 32
	p.PctEnabled = 50
	for _, code := range []string{"NCC0", "PCE0", "PCE100", "PSE100", "PSC40", "NSE60"} {
		for seed := int64(1); seed <= 3; seed++ {
			p.Seed = seed
			g := gen.Generate(p)
			rec := NewRecorder(g.Schema)
			sm := sim.New()
			e := &engine.Engine{
				Sim: sm, DB: &simdb.Unbounded{S: sm},
				Strategy: engine.MustParseStrategy(code), Hooks: rec.Hooks(),
			}
			res := e.Start(g.Schema, g.SourceValues(), nil)
			sm.Run()
			if res.Err != nil {
				t.Fatalf("%s seed %d: %v", code, seed, res.Err)
			}
			if err := rec.Trace().Check(); err != nil {
				t.Errorf("%s seed %d: %v", code, seed, err)
			}
		}
	}
}

func TestByAttrUnknown(t *testing.T) {
	tr, _ := record(t, specFlow(t, 5), "PCE0")
	if tr.ByAttr("ghost") != nil {
		t.Error("unknown attribute should yield nil")
	}
}
