package client

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"strings"
	"time"

	"repro/internal/api"
)

// httpTransport speaks the JSON/HTTP wire: connection-pooled HTTP posts
// of the internal/api request shapes. Each method is a single attempt —
// a shed 429 surfaces as a shedError carrying the server's retry-after
// hint, and the Client's shared retry loop decides what to do with it.
type httpTransport struct {
	base   string
	tenant string
	httpc  *http.Client
}

func newHTTPTransport(base string, o Options) *httpTransport {
	if !strings.Contains(base, "://") {
		base = "http://" + base
	}
	base = strings.TrimRight(base, "/")
	tr := &http.Transport{
		MaxIdleConns:        o.MaxConns,
		MaxIdleConnsPerHost: o.MaxConns,
		MaxConnsPerHost:     o.MaxConns,
		IdleConnTimeout:     90 * time.Second,
	}
	return &httpTransport{
		base:   base,
		tenant: o.Tenant,
		httpc:  &http.Client{Transport: tr, Timeout: o.Timeout},
	}
}

func (t *httpTransport) Close() error {
	t.httpc.CloseIdleConnections()
	return nil
}

func (t *httpTransport) RegisterSchemaText(ctx context.Context, text string) (api.SchemaResponse, error) {
	var out api.SchemaResponse
	err := t.post(ctx, "/v1/schemas", api.SchemaRequest{Text: text}, &out)
	return out, err
}

func (t *httpTransport) Eval(ctx context.Context, req api.EvalRequest) (api.EvalResult, error) {
	var out api.EvalResult
	err := t.post(ctx, "/v1/eval", req, &out)
	return out, err
}

func (t *httpTransport) EvalBatch(ctx context.Context, req api.BatchRequest) ([]api.EvalResult, error) {
	var out api.BatchResponse
	if err := t.post(ctx, "/v1/eval/batch", req, &out); err != nil {
		return nil, err
	}
	return out.Results, nil
}

func (t *httpTransport) Stats(ctx context.Context) (api.StatsResponse, error) {
	var out api.StatsResponse
	err := t.get(ctx, "/v1/stats", &out)
	return out, err
}

func (t *httpTransport) Health(ctx context.Context) error {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, t.base+"/healthz", nil)
	if err != nil {
		return err
	}
	resp, err := t.httpc.Do(req)
	if err != nil {
		return err
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("client: health: HTTP %d", resp.StatusCode)
	}
	return nil
}

// --- the HTTP-only extended surface ---

func (t *httpTransport) registerSchemaShadow(ctx context.Context, text string, sampleEvery int) (api.SchemaResponse, error) {
	var out api.SchemaResponse
	err := t.post(ctx, "/v1/schemas",
		api.SchemaRequest{Text: text, Shadow: true, ShadowSampleEvery: sampleEvery}, &out)
	return out, err
}

func (t *httpTransport) fleetStats(ctx context.Context) (api.StatsResponse, error) {
	var out api.StatsResponse
	err := t.get(ctx, "/v1/stats?fleet=1", &out)
	return out, err
}

func (t *httpTransport) shadowReport(ctx context.Context, schema string) (api.ShadowReport, error) {
	var out api.ShadowReport
	err := t.get(ctx, "/v1/schemas/"+schema+"/shadow", &out)
	return out, err
}

func (t *httpTransport) evalAsync(ctx context.Context, req api.EvalRequest) (string, error) {
	var out api.AsyncResponse
	if err := t.post(ctx, "/v1/eval", req, &out); err != nil {
		return "", err
	}
	return out.ID, nil
}

func (t *httpTransport) result(ctx context.Context, id string) (api.EvalResult, error) {
	var out api.EvalResult
	for {
		req, err := http.NewRequestWithContext(ctx, http.MethodGet,
			t.base+"/v1/results/"+id+"?timeout=30s", nil)
		if err != nil {
			return out, err
		}
		t.setHeaders(req)
		resp, err := t.httpc.Do(req)
		if err != nil {
			return out, err
		}
		body, err := io.ReadAll(resp.Body)
		resp.Body.Close()
		if err != nil {
			return out, err
		}
		switch resp.StatusCode {
		case http.StatusOK:
			return out, json.Unmarshal(body, &out)
		case http.StatusAccepted:
			if ctx.Err() != nil {
				return out, ctx.Err()
			}
			continue // still pending; poll again
		default:
			return out, decodeError(resp, body)
		}
	}
}

func (t *httpTransport) evalBatchStream(ctx context.Context, req api.BatchRequest, fn func(api.BatchItem)) error {
	req.Stream = true
	body, err := json.Marshal(req)
	if err != nil {
		return err
	}
	hreq, err := http.NewRequestWithContext(ctx, http.MethodPost, t.base+"/v1/eval/batch", bytes.NewReader(body))
	if err != nil {
		return err
	}
	t.setHeaders(hreq)
	resp, err := t.httpc.Do(hreq)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		data, _ := io.ReadAll(resp.Body)
		return decodeError(resp, data)
	}
	dec := json.NewDecoder(resp.Body)
	for i := 0; i < len(req.Sources); i++ {
		var item api.BatchItem
		if err := dec.Decode(&item); err != nil {
			return fmt.Errorf("client: stream ended after %d/%d results: %w", i, len(req.Sources), err)
		}
		fn(item)
	}
	return nil
}

// --- plumbing ---

func (t *httpTransport) setHeaders(req *http.Request) {
	if t.tenant != "" {
		req.Header.Set(api.TenantHeader, t.tenant)
	}
	req.Header.Set("Content-Type", "application/json")
}

// post sends a JSON request and decodes the 2xx response into out. A
// single attempt: shed responses come back as a shedError for the
// Client's retry loop.
func (t *httpTransport) post(ctx context.Context, path string, in, out any) error {
	body, err := json.Marshal(in)
	if err != nil {
		return err
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, t.base+path, bytes.NewReader(body))
	if err != nil {
		return err
	}
	t.setHeaders(req)
	resp, err := t.httpc.Do(req)
	if err != nil {
		return err
	}
	data, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		return err
	}
	if resp.StatusCode/100 == 2 {
		if out == nil {
			return nil
		}
		return json.Unmarshal(data, out)
	}
	return decodeError(resp, data)
}

func (t *httpTransport) get(ctx context.Context, path string, out any) error {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, t.base+path, nil)
	if err != nil {
		return err
	}
	t.setHeaders(req)
	resp, err := t.httpc.Do(req)
	if err != nil {
		return err
	}
	data, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		return err
	}
	if resp.StatusCode/100 != 2 {
		return decodeError(resp, data)
	}
	return json.Unmarshal(data, out)
}

// retryWait extracts the backoff hint: the millisecond-precise body field
// first, the whole-seconds header as fallback, zero when neither parses
// (the retry loop substitutes its floor).
func retryWait(resp *http.Response, body []byte) time.Duration {
	var e api.ErrorResponse
	if json.Unmarshal(body, &e) == nil && e.RetryAfterMs > 0 {
		return time.Duration(e.RetryAfterMs) * time.Millisecond
	}
	if s := resp.Header.Get("Retry-After"); s != "" {
		if secs, err := strconv.Atoi(s); err == nil && secs > 0 {
			return time.Duration(secs) * time.Second
		}
	}
	return 0
}

// decodeError turns a non-2xx response into a typed error.
func decodeError(resp *http.Response, body []byte) error {
	var e api.ErrorResponse
	msg := strings.TrimSpace(string(body))
	if json.Unmarshal(body, &e) == nil && e.Error != "" {
		msg = e.Error
	}
	switch resp.StatusCode {
	case http.StatusTooManyRequests:
		return &shedError{retryAfter: retryWait(resp, body), msg: msg}
	case http.StatusServiceUnavailable:
		return fmt.Errorf("%w: %s", ErrDraining, msg)
	default:
		return fmt.Errorf("client: HTTP %d: %s", resp.StatusCode, msg)
	}
}
