// Package client is the typed Go client of the decision-flow server
// (internal/server, cmd/dfsd). One Client drives either wire the server
// speaks — JSON over pooled HTTP, or the dfbin binary protocol over
// persistent TCP — behind the same method surface: the Transport is
// picked from the address scheme ("http://" vs "dfbin://") or forced
// with WithTransport, and retry-on-shed honoring the server's
// retry-after hint sits above the transports so overload behaves
// identically on both wires. RunLoad drives the same open/closed-loop
// generators as the in-process runtime against a remote server, so the
// full network stack is benchmarkable end-to-end over either protocol.
package client

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"time"

	"repro/internal/api"
	"repro/internal/value"
)

// Transport names.
const (
	// TransportJSON is the JSON/HTTP wire (the server's REST front end).
	TransportJSON = "json-http"
	// TransportBinary is the dfbin length-prefixed binary wire over
	// persistent TCP.
	TransportBinary = "binary"
)

// Options tunes a Client. The zero value is usable; New applies the
// documented defaults. Prefer the With* functional options — the struct
// form survives for the facade's JSON-only shim.
type Options struct {
	// Tenant identifies the caller for admission control: the X-Tenant
	// header on HTTP, the Hello frame's tenant on dfbin; empty means the
	// server's default tenant.
	Tenant string
	// Transport selects the wire: TransportJSON or TransportBinary.
	// Empty infers it from the address scheme.
	Transport string
	// MaxConns bounds pooled connections to the server (0 = 512). The
	// HTTP transport keeps idle connections for reuse, so a closed-loop
	// driver at concurrency C wants MaxConns >= C there; the binary
	// transport multiplexes every request over a small shared pool and
	// uses min(MaxConns, 8) persistent connections.
	MaxConns int
	// RetryShed is how many times a shed request (HTTP 429 / dfbin
	// CodeShed) is retried, backing off per the server's retry-after
	// hint (0 = 3; negative disables).
	RetryShed int
	// MaxRetryWait caps one shed backoff (0 = 2s).
	MaxRetryWait time.Duration
	// Timeout bounds each attempt, connection setup included (0 = 60s).
	Timeout time.Duration
}

// Option mutates Options; the With* constructors below are the vocabulary
// of New.
type Option func(*Options)

// WithTenant sets the tenant identity sent on every request.
func WithTenant(t string) Option { return func(o *Options) { o.Tenant = t } }

// WithTransport forces the wire protocol (TransportJSON or
// TransportBinary) regardless of the address scheme.
func WithTransport(name string) Option { return func(o *Options) { o.Transport = name } }

// WithMaxConns bounds pooled connections.
func WithMaxConns(n int) Option { return func(o *Options) { o.MaxConns = n } }

// WithRetryShed sets the shed retry budget (negative disables retries).
func WithRetryShed(n int) Option { return func(o *Options) { o.RetryShed = n } }

// WithMaxRetryWait caps one shed backoff.
func WithMaxRetryWait(d time.Duration) Option { return func(o *Options) { o.MaxRetryWait = d } }

// WithTimeout bounds each attempt.
func WithTimeout(d time.Duration) Option { return func(o *Options) { o.Timeout = d } }

// Transport is one wire protocol to the server. Implementations perform
// single attempts; the Client layers shed retries on top, so both wires
// share one overload policy. Transports are safe for concurrent use.
type Transport interface {
	// Eval evaluates one instance synchronously.
	Eval(ctx context.Context, req api.EvalRequest) (api.EvalResult, error)
	// EvalBatch evaluates many instances in one round trip (results in
	// request order).
	EvalBatch(ctx context.Context, req api.BatchRequest) ([]api.EvalResult, error)
	// RegisterSchemaText registers a schema written in the text format.
	RegisterSchemaText(ctx context.Context, text string) (api.SchemaResponse, error)
	// Stats fetches the server's metrics.
	Stats(ctx context.Context) (api.StatsResponse, error)
	// Health probes the server; nil means serving.
	Health(ctx context.Context) error
	// Close releases the transport's connections.
	Close() error
}

// Client is a typed handle to one decision-flow server. Safe for
// concurrent use.
type Client struct {
	opts Options
	tr   Transport
}

// ErrShed is wrapped by errors returned for requests still shed after
// every retry; errors.Is(err, ErrShed) detects overload handling.
var ErrShed = errors.New("client: request shed by server")

// ErrDraining is wrapped when the server refused the request because it
// is shutting down.
var ErrDraining = errors.New("client: server draining")

// shedError is a transport's single-attempt shed report: it wraps
// ErrShed and carries the server's retry-after hint, which the Client's
// retry loop honors identically for both wires.
type shedError struct {
	retryAfter time.Duration
	msg        string
}

func (e *shedError) Error() string { return ErrShed.Error() + ": " + e.msg }
func (e *shedError) Unwrap() error { return ErrShed }

// New creates a client for the server at addr, picking the transport
// from the scheme: "http://host:port" (or a bare "host:port") speaks
// JSON over HTTP, "dfbin://host:port" speaks the binary protocol over
// persistent TCP. WithTransport overrides the inference. The binary
// transport dials lazily; New itself never touches the network.
func New(addr string, opts ...Option) (*Client, error) {
	var o Options
	for _, fn := range opts {
		fn(&o)
	}
	o = withDefaults(o)

	scheme, rest := "", addr
	if i := strings.Index(addr, "://"); i >= 0 {
		scheme, rest = addr[:i], addr[i+len("://"):]
	}
	tr := o.Transport
	if tr == "" {
		switch scheme {
		case "dfbin":
			tr = TransportBinary
		case "", "http", "https":
			tr = TransportJSON
		default:
			return nil, fmt.Errorf("client: unknown scheme %q in %q (want http://, https:// or dfbin://)", scheme, addr)
		}
	}
	switch tr {
	case TransportJSON:
		if scheme == "dfbin" {
			return nil, fmt.Errorf("client: address %q is a binary endpoint but the transport is %s", addr, TransportJSON)
		}
		return &Client{opts: o, tr: newHTTPTransport(addr, o)}, nil
	case TransportBinary:
		if scheme != "" && scheme != "dfbin" {
			return nil, fmt.Errorf("client: address %q is not a dfbin:// endpoint but the transport is %s", addr, TransportBinary)
		}
		return &Client{opts: o, tr: newBinTransport(rest, o)}, nil
	default:
		return nil, fmt.Errorf("client: unknown transport %q (want %s or %s)", tr, TransportJSON, TransportBinary)
	}
}

// NewJSON creates a JSON/HTTP-only client from the legacy Options
// struct; it never fails. The facade's NewClient shim keeps this
// surface; new code wants New.
func NewJSON(base string, o Options) *Client {
	o = withDefaults(o)
	o.Transport = TransportJSON
	return &Client{opts: o, tr: newHTTPTransport(base, o)}
}

func withDefaults(o Options) Options {
	if o.MaxConns <= 0 {
		o.MaxConns = 512
	}
	if o.RetryShed == 0 {
		o.RetryShed = 3
	}
	if o.MaxRetryWait <= 0 {
		o.MaxRetryWait = 2 * time.Second
	}
	if o.Timeout <= 0 {
		o.Timeout = 60 * time.Second
	}
	return o
}

// Transport returns the wire protocol this client speaks (TransportJSON
// or TransportBinary).
func (c *Client) Transport() string {
	if _, ok := c.tr.(*binTransport); ok {
		return TransportBinary
	}
	return TransportJSON
}

// Close releases pooled connections.
func (c *Client) Close() { c.tr.Close() }

// retry runs one attempt function under the shared shed-retry policy:
// attempts reporting a shedError are re-run up to RetryShed times,
// sleeping the server's retry-after hint (capped at MaxRetryWait)
// between attempts. Everything else — success, draining, hard errors —
// returns immediately.
func (c *Client) retry(ctx context.Context, attempt func() error) error {
	for n := 0; ; n++ {
		err := attempt()
		var shed *shedError
		if err == nil || !errors.As(err, &shed) || n >= c.opts.RetryShed {
			return err
		}
		wait := shed.retryAfter
		if wait <= 0 {
			wait = 50 * time.Millisecond
		}
		if wait > c.opts.MaxRetryWait {
			wait = c.opts.MaxRetryWait
		}
		timer := time.NewTimer(wait)
		select {
		case <-timer.C:
		case <-ctx.Done():
			timer.Stop()
			return ctx.Err()
		}
	}
}

// RegisterSchemaText registers a schema written in the text format and
// returns the server's acknowledgment.
func (c *Client) RegisterSchemaText(ctx context.Context, text string) (api.SchemaResponse, error) {
	var out api.SchemaResponse
	err := c.retry(ctx, func() error {
		var err error
		out, err = c.tr.RegisterSchemaText(ctx, text)
		return err
	})
	return out, err
}

// Eval evaluates one instance synchronously.
func (c *Client) Eval(ctx context.Context, req api.EvalRequest) (api.EvalResult, error) {
	req.Async = false
	var out api.EvalResult
	err := c.retry(ctx, func() error {
		var err error
		out, err = c.tr.Eval(ctx, req)
		return err
	})
	return out, err
}

// typedEvaler is an optional Transport fast path: a wire whose codec
// speaks value.Value natively (the binary transport) serializes typed
// sources directly, skipping the JSON any-map round trip EvalValues
// otherwise pays per instance.
type typedEvaler interface {
	EvalTyped(ctx context.Context, schema, strategy string, sources map[string]value.Value) (api.EvalResult, error)
}

// EvalValues is Eval over typed source values. On a transport with a
// native typed codec the values go to the wire without JSON conversion.
func (c *Client) EvalValues(ctx context.Context, schema, strategy string, sources map[string]value.Value) (api.EvalResult, error) {
	te, ok := c.tr.(typedEvaler)
	if !ok {
		return c.Eval(ctx, api.EvalRequest{Schema: schema, Strategy: strategy, Sources: api.EncodeSources(sources)})
	}
	var out api.EvalResult
	err := c.retry(ctx, func() error {
		var err error
		out, err = te.EvalTyped(ctx, schema, strategy, sources)
		return err
	})
	return out, err
}

// EvalBatch evaluates many instances in one round trip (results in
// request order).
func (c *Client) EvalBatch(ctx context.Context, req api.BatchRequest) ([]api.EvalResult, error) {
	req.Stream = false
	var out []api.EvalResult
	err := c.retry(ctx, func() error {
		var err error
		out, err = c.tr.EvalBatch(ctx, req)
		return err
	})
	if err != nil {
		return nil, err
	}
	if len(out) != len(req.Sources) {
		return nil, fmt.Errorf("client: batch returned %d results for %d instances", len(out), len(req.Sources))
	}
	return out, nil
}

// Stats fetches the server's metrics.
func (c *Client) Stats(ctx context.Context) (api.StatsResponse, error) {
	return c.tr.Stats(ctx)
}

// Health probes the server; nil means serving.
func (c *Client) Health(ctx context.Context) error {
	return c.tr.Health(ctx)
}

// FleetStats is Stats with peer-fleet aggregation (GET /v1/stats?fleet=1):
// on a node running with -peers the response carries a Fleet view — every
// member's local stats plus fleet-wide counter sums. On a standalone node
// the Fleet field is simply absent. JSON/HTTP only: the binary Stats
// frame deliberately answers locally so fleet fan-out cannot recurse.
func (c *Client) FleetStats(ctx context.Context) (api.StatsResponse, error) {
	ht, err := c.http("FleetStats")
	if err != nil {
		return api.StatsResponse{}, err
	}
	return ht.fleetStats(ctx)
}

// ForwardQuery is one peer-routed backend query: a front-end node asks
// the attribute's home node to run the flight under the home's own
// single-flight and cache tables. The schema is addressed by name +
// fingerprint rather than a bind id because peers share a registry, not
// a connection.
type ForwardQuery struct {
	Schema      string
	Fingerprint uint64
	Attr        uint64
	Args        []byte
	Cost        int
}

// QueryFailedError reports that the home node accepted a forwarded query
// and the flight itself failed there. The forwarder shares the flight's
// fate — the error surfaces to its caller exactly as a local backend
// failure would — and it is not a peer-health signal: the peer answered.
type QueryFailedError struct{ Msg string }

func (e *QueryFailedError) Error() string {
	return "client: forwarded query failed at its home node: " + e.Msg
}

// peerForwarder is the optional Transport capability behind Forward;
// only the binary transport implements it.
type peerForwarder interface {
	Forward(ctx context.Context, q ForwardQuery) error
}

// Forward routes one attribute-level backend query to its home peer and
// waits for the outcome. nil means the home's flight succeeded;
// *QueryFailedError means it ran and failed (shared fate). Any other
// error — refusal codes, transport faults, timeouts — means the query
// did not complete remotely and the caller should fall back to a local
// flight. dfbin only, and deliberately outside the shed-retry policy:
// the peer tier's breaker owns retry decisions.
func (c *Client) Forward(ctx context.Context, q ForwardQuery) error {
	f, ok := c.tr.(peerForwarder)
	if !ok {
		return fmt.Errorf("client: Forward is only served over the %s transport", TransportBinary)
	}
	return f.Forward(ctx, q)
}

// http returns the JSON transport behind the client, or an error for
// the HTTP-only extended surface on a binary client.
func (c *Client) http(method string) (*httpTransport, error) {
	if ht, ok := c.tr.(*httpTransport); ok {
		return ht, nil
	}
	return nil, fmt.Errorf("client: %s is only served over the JSON/HTTP transport", method)
}

// RegisterSchemaShadow registers text as a shadow candidate beside the
// live schema of the same name: the server evaluates it on every
// sampleEvery-th sampled live eval off the latency path and tallies
// divergence (see ShadowReport). sampleEvery < 1 means every eval.
// JSON/HTTP only.
func (c *Client) RegisterSchemaShadow(ctx context.Context, text string, sampleEvery int) (api.SchemaResponse, error) {
	ht, err := c.http("RegisterSchemaShadow")
	if err != nil {
		return api.SchemaResponse{}, err
	}
	var out api.SchemaResponse
	err = c.retry(ctx, func() error {
		var err error
		out, err = ht.registerSchemaShadow(ctx, text, sampleEvery)
		return err
	})
	return out, err
}

// ShadowReport fetches the running live-versus-candidate comparison for
// a schema with a registered shadow. JSON/HTTP only.
func (c *Client) ShadowReport(ctx context.Context, schema string) (api.ShadowReport, error) {
	ht, err := c.http("ShadowReport")
	if err != nil {
		return api.ShadowReport{}, err
	}
	return ht.shadowReport(ctx, schema)
}

// EvalAsync submits one instance and returns its result ID for Result.
// JSON/HTTP only.
func (c *Client) EvalAsync(ctx context.Context, req api.EvalRequest) (string, error) {
	ht, err := c.http("EvalAsync")
	if err != nil {
		return "", err
	}
	req.Async = true
	var id string
	err = c.retry(ctx, func() error {
		var err error
		id, err = ht.evalAsync(ctx, req)
		return err
	})
	return id, err
}

// Result long-polls an async result until it is ready or ctx is done,
// re-polling on server-side timeouts. JSON/HTTP only.
func (c *Client) Result(ctx context.Context, id string) (api.EvalResult, error) {
	ht, err := c.http("Result")
	if err != nil {
		return api.EvalResult{}, err
	}
	return ht.result(ctx, id)
}

// EvalBatchStream evaluates a batch with NDJSON delivery: each result is
// handed to fn as it completes on the server, tagged with its request
// index. fn runs on the reading goroutine. Streamed requests are not
// retried on shed (delivery may have begun); callers wanting retries use
// EvalBatch. JSON/HTTP only.
func (c *Client) EvalBatchStream(ctx context.Context, req api.BatchRequest, fn func(api.BatchItem)) error {
	ht, err := c.http("EvalBatchStream")
	if err != nil {
		return err
	}
	return ht.evalBatchStream(ctx, req, fn)
}
